//! A tour of the static analysis + binary patching pipeline (§4.2).
//!
//! ```sh
//! cargo run --release --example static_analysis_tour
//! ```
//!
//! Builds the paper's Fig. 6 hazard by hand — a double stored to the stack
//! and reloaded as an integer — then shows: (1) the unpatched binary
//! leaking a NaN-box into the integer world under FPVM, (2) the VSA
//! finding the sink, (3) the patched binary demoting at the correctness
//! trap and producing the right answer, (4) the dynamic taint oracle
//! auditing both runs: the unpatched leak classifies as a **missed** sink
//! (soundness hole), the patched one as **confirmed**.

use fpvm::analysis::{analyze, analyze_and_patch, audit, SiteDyn};
use fpvm::arith::Vanilla;
use fpvm::machine::{AluOp, Asm, CostModel, ExtFn, Gpr, Machine, Mem, Xmm};
use fpvm::runtime::{Fpvm, FpvmConfig, TraceEvent, TraceSink};
use std::collections::{BTreeMap, BTreeSet};

/// Folds correctness-trap trace events into the per-site observations the
/// audit consumes.
#[derive(Default)]
struct TrapLedger {
    per_rip: BTreeMap<u64, SiteDyn>,
}

impl TraceSink for TrapLedger {
    fn emit(&mut self, ev: &TraceEvent) {
        if let TraceEvent::CorrectnessTrap {
            rip,
            demoted,
            dispatch_cycles,
            handler_cycles,
            ..
        } = ev
        {
            self.per_rip
                .entry(*rip)
                .or_default()
                .record(*demoted, dispatch_cycles + handler_cycles);
        }
    }
}

fn build_fig6() -> fpvm::machine::Program {
    let mut a = Asm::new();
    let c1 = a.f64m(0.1);
    let c2 = a.f64m(0.2);
    a.alu_ri(AluOp::Sub, Gpr::RSP, 16);
    a.movsd(Xmm(0), c1);
    a.addsd(Xmm(0), c2); // rounds -> FPVM boxes the result
    a.movsd(Mem::base_disp(Gpr::RSP, 0), Xmm(0)); // box flows to the stack
    a.load(Gpr::RAX, Mem::base_disp(Gpr::RSP, 0)); // *(int64*)&x  — Fig. 6!
    a.mov_rr(Gpr::RDI, Gpr::RAX);
    a.call_ext(ExtFn::PrintI64); // the integer world sees ... what?
    a.halt();
    a.finish()
}

fn main() {
    let prog = build_fig6();
    println!("guest: x = 0.1 + 0.2; print(*(int64*)&x)   // the Fig. 6 idiom\n");

    // Native: prints the bits of 0.30000000000000004.
    let mut m = Machine::new(CostModel::r815());
    fpvm::runtime::run_native(&mut m, &prog, 10_000);
    let native_bits = match m.output[0] {
        fpvm::machine::OutputEvent::I64(v) => v,
        _ => unreachable!(),
    };
    println!("native:            {native_bits:#018x}  (bits of 0.1+0.2)");

    // Unpatched under FPVM: the NaN-box leaks.
    let mut m = Machine::new(CostModel::r815());
    m.load_program(&prog);
    let mut rt = Fpvm::new(Vanilla, FpvmConfig::default());
    rt.run(&mut m);
    let leaked = match m.output[0] {
        fpvm::machine::OutputEvent::I64(v) => v,
        _ => unreachable!(),
    };
    println!(
        "fpvm, unpatched:   {leaked:#018x}  {}",
        if fpvm::nanbox::decode(leaked as u64).is_some() {
            "<- a NaN-box leaked into the integer world!"
        } else {
            ""
        }
    );

    // The analysis sees it coming.
    let an = analyze(&prog);
    println!(
        "\nstatic analysis: {} instructions, {} integer loads, {} proven safe",
        an.stats.instructions, an.stats.loads_total, an.stats.loads_proven_safe
    );
    for s in &an.sinks {
        println!("  sink @ {:#x}: {} ({:?})", s.addr, s.inst, s.reason);
    }

    // Patched: the correctness trap demotes in place and re-executes.
    let patched = analyze_and_patch(&prog);
    let mut m = Machine::new(CostModel::r815());
    m.load_program(&patched.program);
    let mut rt = Fpvm::new(Vanilla, FpvmConfig::default());
    rt.set_side_table(patched.side_table);
    let report = rt.run(&mut m);
    let fixed = match m.output[0] {
        fpvm::machine::OutputEvent::I64(v) => v,
        _ => unreachable!(),
    };
    println!(
        "\nfpvm, patched:     {fixed:#018x}  ({} correctness trap(s), {} demotion(s))",
        report.stats.correctness_traps, report.stats.correctness_demotions
    );
    assert_eq!(fixed, native_bits);
    println!("matches native: true — demote-and-re-execute preserved the bit pattern.");

    // The audit oracle, take 1: run the UNPATCHED binary with the taint
    // plane on. The oracle watches the box bits flow into the integer load
    // and convicts the (hypothetically skipped) sink as a soundness hole.
    let an = analyze(&prog);
    let mut m = Machine::new(CostModel::r815());
    m.load_program(&prog);
    let mut rt = Fpvm::new(
        Vanilla,
        FpvmConfig {
            taint_oracle: true,
            ..FpvmConfig::default()
        },
    );
    rt.run(&mut m);
    let plane = m.taint_plane().expect("oracle enabled");
    let report = audit(&an, &BTreeSet::new(), &BTreeMap::new(), &plane.sites);
    println!("\naudit, unpatched: sound = {}", report.is_sound());
    for s in &report.sites {
        println!(
            "  {:#x} {:?} ({:?}): {} hit(s), {} carried a live box",
            s.addr, s.class, s.reason, s.hits, s.box_hits
        );
    }

    // Take 2: the PATCHED binary under the same oracle. The correctness
    // trap demotes the box before the load, the ledger records the
    // demotion, and the sink audits as confirmed — precision 1, recall 1.
    let patched = analyze_and_patch(&prog);
    let mut m = Machine::new(CostModel::r815());
    m.load_program(&patched.program);
    let mut rt = Fpvm::new(
        Vanilla,
        FpvmConfig {
            taint_oracle: true,
            ..FpvmConfig::default()
        },
    );
    rt.set_side_table(patched.side_table.clone());
    rt.set_trace_sink(Box::new(TrapLedger::default()));
    rt.run(&mut m);
    let patched_addrs: BTreeSet<u64> = patched.side_table.iter().map(|e| e.addr).collect();
    let plane = m.taint_plane().expect("oracle enabled");
    let ledger = rt.take_trace_sink().downcast::<TrapLedger>().unwrap();
    let report = audit(
        &patched.analysis,
        &patched_addrs,
        &ledger.per_rip,
        &plane.sites,
    );
    println!("audit, patched:   sound = {}", report.is_sound());
    for s in &report.sites {
        println!(
            "  {:#x} {:?} ({:?}): {} trap(s), {} demoted a live box",
            s.addr, s.class, s.reason, s.hits, s.box_hits
        );
    }
    println!(
        "precision {:.2}, recall {:.2} — the static sink set was exactly right here.",
        report.total.precision(),
        report.total.recall()
    );
    assert!(report.is_sound());
}
