//! Precision sweep: run one binary at many arbitrary precisions.
//!
//! ```sh
//! cargo run --release --example precision_sweep
//! ```
//!
//! "The precision used by FPVM is determined by a … configurable parameter"
//! (§4.3). Here the same logistic-map binary runs at 53 / 80 / 120 / 200 /
//! 400 bits; the iterate where each precision's trajectory departs from the
//! next-higher one moves out linearly with precision — chaos eats mantissa
//! bits at the map's Lyapunov rate (~0.67 bits/iterate at r = 3.9).

use fpvm::arith::BigFloatCtx;
use fpvm::ir::{compile, CompileMode};
use fpvm::ir::{CmpOp, Module, Ty};
use fpvm::machine::{CostModel, Machine, OutputEvent};
use fpvm::runtime::{Fpvm, FpvmConfig};

/// Logistic map x <- r x (1-x), printing every iterate.
fn logistic(iters: i64) -> Module {
    let mut m = Module::new();
    m.build_func("main", &[], None, |b| {
        let x = b.var(Ty::F64);
        let i = b.var(Ty::I64);
        let c = b.cf(0.2);
        b.write(x, c);
        let z = b.ci(0);
        b.write(i, z);
        let header = b.new_block();
        let body = b.new_block();
        let exit = b.new_block();
        b.br(header);
        b.switch_to(header);
        let iv = b.read(i);
        let n = b.ci(iters);
        let c = b.icmp(CmpOp::Lt, iv, n);
        b.cond_br(c, body, exit);
        b.switch_to(body);
        let xv = b.read(x);
        let one = b.cf(1.0);
        let om = b.fsub(one, xv);
        let r = b.cf(3.9);
        let rx = b.fmul(r, xv);
        let nx = b.fmul(rx, om);
        b.write(x, nx);
        b.printf(nx);
        let one_i = b.ci(1);
        let inext = b.iadd(iv, one_i);
        b.write(i, inext);
        b.br(header);
        b.switch_to(exit);
        b.ret(None);
    });
    m
}

fn series(prog: &fpvm::machine::Program, prec: u32) -> Vec<f64> {
    let mut m = Machine::new(CostModel::r815());
    m.load_program(prog);
    let mut rt = Fpvm::new(BigFloatCtx::new(prec), FpvmConfig::default());
    rt.run(&mut m);
    m.output
        .iter()
        .map(|o| match o {
            OutputEvent::F64(b) => f64::from_bits(*b),
            OutputEvent::I64(v) => *v as f64,
        })
        .collect()
}

fn main() {
    const ITERS: i64 = 400;
    let prog = compile(&logistic(ITERS), CompileMode::Native).program;
    let precisions = [53u32, 80, 120, 200, 400];
    let runs: Vec<(u32, Vec<f64>)> = precisions
        .iter()
        .map(|&p| {
            println!("running at {p} bits …");
            (p, series(&prog, p))
        })
        .collect();
    println!("\nfirst iterate where each precision departs from the next higher:");
    println!("{:>8} {:>18}", "bits", "departs at step");
    for w in runs.windows(2) {
        let (p_lo, lo) = &w[0];
        let (_p_hi, hi) = &w[1];
        let depart = lo
            .iter()
            .zip(hi)
            .position(|(a, b)| (a - b).abs() > 1e-6)
            .map_or("never".to_string(), |k| k.to_string());
        println!("{p_lo:>8} {depart:>18}");
    }
    println!("\n(the map's Lyapunov exponent is ~0.67 bits/step, so each extra mantissa");
    println!(" bit buys ~1.5 reliable steps — precision is a tunable dial on one binary.)");
}
