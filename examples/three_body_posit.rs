//! Run the three-body problem on posits of several widths and compare the
//! final configuration against IEEE — "applying FPVM to the test codes
//! where higher precision is likely to change results due to modeling of
//! chaotic dynamics" (§5.4), with the posit tapered-precision twist:
//! posit64 carries *more* fraction bits than f64 near 1.0, posit32 far
//! fewer.
//!
//! ```sh
//! cargo run --release --example three_body_posit
//! ```

use fpvm::arith::{ArithSystem, BigFloatCtx, PositCtx};
use fpvm::ir::{compile, CompileMode};
use fpvm::machine::{CostModel, Machine, OutputEvent};
use fpvm::runtime::{Fpvm, FpvmConfig};
use fpvm::workloads::three_body;

fn finals(out: &[OutputEvent]) -> Vec<f64> {
    out[out.len() - 6..]
        .iter()
        .map(|o| match o {
            OutputEvent::F64(b) => f64::from_bits(*b),
            OutputEvent::I64(v) => *v as f64,
        })
        .collect()
}

fn run_with<A: ArithSystem>(prog: &fpvm::machine::Program, arith: A) -> Vec<f64> {
    let mut m = Machine::new(CostModel::r815());
    m.load_program(prog);
    let mut rt = Fpvm::new(arith, FpvmConfig::default());
    let report = rt.run(&mut m);
    assert!(matches!(report.exit, fpvm::runtime::ExitReason::Halted));
    finals(&m.output)
}

fn main() {
    let module = three_body::build(three_body::Params {
        g: 1.0,
        dt: 0.002,
        steps: 1500,
        print_every: 1500,
    });
    let prog = compile(&module, CompileMode::Native).program;

    let mut m = Machine::new(CostModel::r815());
    fpvm::runtime::run_native(&mut m, &prog, 10_000_000_000);
    let ieee = finals(&m.output);

    let p32 = run_with(&prog, PositCtx::<32, 2>);
    let p64 = run_with(&prog, PositCtx::<64, 3>);
    let big = run_with(&prog, BigFloatCtx::new(200));

    println!("Three-body final positions (x1 y1 x2 y2 x3 y3) after 1500 steps:\n");
    let show = |name: &str, v: &[f64]| {
        print!("{name:<14}");
        for x in v {
            print!(" {x:>11.7}");
        }
        let rms = v
            .iter()
            .zip(&ieee)
            .map(|(a, b)| (a - b) * (a - b))
            .sum::<f64>()
            .sqrt();
        println!("   |Δ ieee| = {rms:.3e}");
    };
    show("ieee", &ieee);
    show("posit32", &p32);
    show("posit64", &p64);
    show("bigfloat-200", &big);

    println!("\nposit32 (≤27 fraction bits) drifts quickly; posit64 (≤58 bits) lands");
    println!("closer to the 200-bit trajectory than IEEE does — tapered precision at work.");
}
