//! fpvm-profile: trap telemetry on a live run.
//!
//! ```sh
//! cargo run --release --example fpvm_profile
//! ```
//!
//! Runs a guest with one hot FP site and a handful of cold ones under the
//! aggregating profiler + a post-mortem ring buffer, prints the hot-site
//! table and the per-component latency histograms, then uses the ranking
//! to drive profiler-guided trap-and-patch: only the #1 site gets the
//! patch budget, and the re-run shows the traps collapsing into patch
//! calls.

use fpvm::arith::Vanilla;
use fpvm::machine::{AluOp, Asm, Cond, CostModel, Gpr, Machine, Xmm};
use fpvm::runtime::{Component, Fpvm, FpvmConfig, ProfilerSink, RingBufferSink};

fn build_guest() -> fpvm::machine::Program {
    // A hot accumulation loop (one addsd trapping every iteration) plus two
    // cold sites that trap once each.
    let mut a = Asm::new();
    let tenth = a.f64m(0.1);
    let one = a.f64m(1.0);
    let three = a.f64m(3.0);
    a.movsd(Xmm(2), one);
    a.mov_ri(Gpr::RCX, 0);
    let top = a.here_label();
    let done = a.label();
    a.cmp_ri(Gpr::RCX, 2000);
    a.jcc(Cond::Ge, done);
    a.addsd(Xmm(2), tenth); // hot
    a.alu_ri(AluOp::Add, Gpr::RCX, 1);
    a.jmp(top);
    a.bind(done);
    a.movsd(Xmm(1), three);
    a.divsd(Xmm(1), tenth); // cold
    a.mulsd(Xmm(1), tenth); // cold
    a.halt();
    a.finish()
}

fn main() {
    let prog = build_guest();

    // Pass 1 — profile: every trap-pipeline event flows into the profiler,
    // and a ring buffer keeps the last few events for post-mortem.
    let mut m = Machine::new(CostModel::r815());
    m.load_program(&prog);
    let mut rt = Fpvm::new(Vanilla, FpvmConfig::default());
    rt.set_trace_sink(Box::new(fpvm::runtime::FanoutSink::new(vec![
        Box::new(ProfilerSink::new()),
        Box::new(RingBufferSink::new(6)),
    ])));
    let report = rt.run(&mut m);
    println!("{report}\n");

    // Teardown: the engine owns the sinks, so take the fanout back and
    // recover each one by downcast.
    let fan = rt
        .take_trace_sink()
        .downcast::<fpvm::runtime::FanoutSink>()
        .unwrap();
    let mut sinks = fan.into_sinks().into_iter();
    let prof = sinks.next().unwrap().downcast::<ProfilerSink>().unwrap();
    let ring = sinks.next().unwrap().downcast::<RingBufferSink>().unwrap();
    println!("hot sites:\n{}", prof.report(5));
    for c in [
        Component::UserDelivery,
        Component::Emulate,
        Component::Decode,
    ] {
        let h = prof.histogram(c);
        println!(
            "{:<14} latency: n={:<6} mean={:>8.0} max={:>8}  log2 buckets {:?}",
            c.label(),
            h.count(),
            h.mean(),
            h.max(),
            h.nonzero()
        );
    }
    println!(
        "\nlast events (ring tail, capacity 6, {} dropped):",
        ring.dropped()
    );
    print!("{}", ring.dump());

    // Pass 2 — guided: give the patch budget to the profiled #1 site only.
    let top_rip = prof.hot_sites(1)[0].0;
    let mut m2 = Machine::new(CostModel::r815());
    m2.load_program(&prog);
    let mut rt2 = Fpvm::new(
        Vanilla,
        FpvmConfig {
            trap_and_patch: true,
            ..FpvmConfig::default()
        },
    );
    rt2.restrict_patching([top_rip]);
    let report2 = rt2.run(&mut m2);
    println!("\nafter patching only {top_rip:#x} (the profiled top site):");
    println!("{report2}");
    println!(
        "traps {} -> {}; patch calls {} (fast {} / slow {}); cycles {} -> {}",
        report.stats.fp_traps,
        report2.stats.fp_traps,
        report2.stats.patch_fast + report2.stats.patch_slow,
        report2.stats.patch_fast,
        report2.stats.patch_slow,
        report.cycles,
        report2.cycles
    );
}
