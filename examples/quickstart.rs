//! Quickstart: virtualize a tiny program onto three arithmetic systems.
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```
//!
//! Builds a small guest binary that computes a running sum of `0.1`, then
//! runs it (a) natively, (b) under FPVM with Vanilla (bit-identical), (c)
//! under FPVM with 200-bit arbitrary precision, and (d) under FPVM with
//! 64-bit posits — the same binary every time, which is the whole point of
//! floating point virtualization.

use fpvm::arith::{BigFloatCtx, PositCtx, Vanilla};
use fpvm::machine::{AluOp, Asm, Cond, CostModel, ExtFn, Gpr, Machine, Xmm};
use fpvm::runtime::{Fpvm, FpvmConfig};

fn build_guest() -> fpvm::machine::Program {
    // for i in 0..1000 { acc += 0.1 }; print acc  — the classic decimal
    // accumulation error demo.
    let mut a = Asm::new();
    let tenth = a.f64m(0.1);
    let zero = a.f64m(0.0);
    a.movsd(Xmm(2), zero);
    a.mov_ri(Gpr::RCX, 0);
    let top = a.here_label();
    let done = a.label();
    a.cmp_ri(Gpr::RCX, 1000);
    a.jcc(Cond::Ge, done);
    a.addsd(Xmm(2), tenth);
    a.alu_ri(AluOp::Add, Gpr::RCX, 1);
    a.jmp(top);
    a.bind(done);
    a.movsd(Xmm(0), fpvm::machine::XM::Reg(Xmm(2)));
    a.call_ext(ExtFn::PrintF64);
    a.halt();
    a.finish()
}

fn main() {
    let prog = build_guest();

    // (a) Native: plain IEEE doubles.
    let mut m = Machine::new(CostModel::r815());
    fpvm::runtime::run_native(&mut m, &prog, 1_000_000);
    println!("native IEEE:        {}", m.output[0].render());

    // (b) FPVM + Vanilla: virtualized, but still IEEE — identical output.
    let mut m = Machine::new(CostModel::r815());
    m.load_program(&prog);
    let mut rt = Fpvm::new(Vanilla, FpvmConfig::default());
    let report = rt.run(&mut m);
    println!("fpvm  Vanilla:      {}", m.output[0].render());
    println!("      run report:   {report}");

    // (c) FPVM + 200-bit arbitrary precision: the accumulated error is gone
    //     down to demotion precision.
    let mut m = Machine::new(CostModel::r815());
    m.load_program(&prog);
    let mut rt = Fpvm::new(BigFloatCtx::new(200), FpvmConfig::default());
    rt.run(&mut m);
    println!("fpvm  bigfloat-200: {}", m.output[0].render());
    println!("      full shadow:  {}", rt.rendered_output()[0]);

    // (d) FPVM + posit64.
    let mut m = Machine::new(CostModel::r815());
    m.load_program(&prog);
    let mut rt = Fpvm::new(PositCtx::<64, 3>, FpvmConfig::default());
    rt.run(&mut m);
    println!("fpvm  posit64:      {}", m.output[0].render());

    println!("\n(0.1 is not representable in binary: IEEE accumulates ~1e-13 of error over");
    println!(" 1000 adds; the 200-bit system demotes back to exactly 100 at print time.)");
}
