//! Figure 13 in miniature: the Lorenz attractor under IEEE vs FPVM+Vanilla
//! vs FPVM+200-bit arithmetic, printed as a divergence series.
//!
//! ```sh
//! cargo run --release --example lorenz_divergence
//! ```
//!
//! The same *unmodified binary* runs three times; only the arithmetic
//! system plugged into FPVM changes. Vanilla reproduces IEEE exactly; the
//! 200-bit system rounds differently, and because the Lorenz system is
//! chaotic, each rounding difference grows exponentially until the
//! trajectories are unrelated — the paper's Fig. 13.

use fpvm::arith::{BigFloatCtx, Vanilla};
use fpvm::ir::{compile, CompileMode};
use fpvm::machine::{CostModel, Machine, OutputEvent};
use fpvm::runtime::{Fpvm, FpvmConfig};
use fpvm::workloads::lorenz;

fn xs(out: &[OutputEvent]) -> Vec<f64> {
    out.iter()
        .step_by(3)
        .map(|o| match o {
            OutputEvent::F64(b) => f64::from_bits(*b),
            OutputEvent::I64(v) => *v as f64,
        })
        .collect()
}

fn main() {
    let params = lorenz::Params::paper();
    let module = lorenz::build(params);
    let prog = compile(&module, CompileMode::Native).program;

    // Native IEEE.
    let mut m = Machine::new(CostModel::r815());
    fpvm::runtime::run_native(&mut m, &prog, 10_000_000_000);
    let ieee = xs(&m.output);

    // FPVM + Vanilla.
    let mut m = Machine::new(CostModel::r815());
    m.load_program(&prog);
    let mut rt = Fpvm::new(Vanilla, FpvmConfig::default());
    rt.run(&mut m);
    let vanilla = xs(&m.output);

    // FPVM + 200-bit arbitrary precision.
    let mut m = Machine::new(CostModel::r815());
    m.load_program(&prog);
    let mut rt = Fpvm::new(BigFloatCtx::new(200), FpvmConfig::default());
    rt.run(&mut m);
    let mpfr = xs(&m.output);

    println!("Lorenz x-coordinate every {} steps:", params.print_every);
    println!(
        "{:>6} {:>14} {:>14} {:>14} {:>12}",
        "step", "IEEE", "FPVM+Vanilla", "FPVM+200bit", "|IEEE-200b|"
    );
    for (k, ((a, b), c)) in ieee.iter().zip(&vanilla).zip(&mpfr).enumerate() {
        println!(
            "{:>6} {:>14.8} {:>14.8} {:>14.8} {:>12.3e}",
            (k + 1) * params.print_every as usize,
            a,
            b,
            c,
            (a - c).abs()
        );
    }
    assert_eq!(ieee, vanilla, "Vanilla must be bit-identical to IEEE");
    println!("\nVanilla == IEEE bit-for-bit: true");
    println!(
        "final |IEEE - 200bit| = {:.4}  (chaotic divergence, as in Fig. 13)",
        (ieee.last().unwrap() - mpfr.last().unwrap()).abs()
    );
}
