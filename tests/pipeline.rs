//! Full-pipeline integration tests (the §5.2 validation): every workload is
//! compiled, statically analyzed and patched, then run under FPVM.
//!
//! * With **Vanilla**, results must be bit-identical to native execution.
//! * All four §3 approaches must agree with each other under Vanilla.
//! * With **BigFloat/posits**, the chaotic codes must diverge (§5.4) while
//!   the numerically stable ones stay close.

use fpvm::analysis::analyze_and_patch;
use fpvm::arith::{ArithSystem, BigFloatCtx, Vanilla};
use fpvm::ir::{compile, CompileMode};
use fpvm::machine::{CostModel, Event, Machine, OutputEvent};
use fpvm::runtime::{ExitReason, Fpvm, FpvmConfig, RunReport};
use fpvm::workloads::{all_workloads, Size, Workload};

const BUDGET: u64 = 2_000_000_000;

fn native(w: &Workload) -> Vec<OutputEvent> {
    let c = compile(&w.module, CompileMode::Native);
    let mut m = Machine::new(CostModel::r815());
    let ev = fpvm::runtime::run_native(&mut m, &c.program, BUDGET);
    assert_eq!(ev, Event::Halted, "{}: {ev:?}", w.name);
    m.output
}

/// The hybrid pipeline: compile native → analyze+patch → trap-and-emulate.
fn hybrid<A: ArithSystem>(
    w: &Workload,
    arith: A,
    cfg: FpvmConfig,
) -> (RunReport, Vec<OutputEvent>) {
    let c = compile(&w.module, CompileMode::Native);
    let patched = analyze_and_patch(&c.program);
    let mut m = Machine::new(CostModel::r815());
    m.load_program(&patched.program);
    let mut rt = Fpvm::new(arith, cfg);
    rt.set_side_table(patched.side_table);
    let report = rt.run(&mut m);
    assert_eq!(report.exit, ExitReason::Halted, "{}", w.name);
    (report, m.output)
}

#[test]
fn validation_every_workload_vanilla_bit_identical() {
    // "In all of the cases, the results were identical, as expected,
    // indicating that the core emulator operates correctly." (§5.2)
    for w in all_workloads(Size::Tiny) {
        let n = native(&w);
        let (report, v) = hybrid(&w, Vanilla, FpvmConfig::default());
        assert_eq!(n, v, "{}: Vanilla under FPVM must be bit-identical", w.name);
        // Reference agreement is checked in fpvm-workloads; here we chain
        // the full pipeline on top.
        assert_eq!(v.len(), w.reference.len(), "{}", w.name);
        // FP-heavy workloads must actually exercise the trap path.
        if w.name != "NAS IS" {
            assert!(report.stats.fp_traps > 0, "{} never trapped", w.name);
        }
    }
}

#[test]
fn four_approaches_agree_under_vanilla() {
    // §3 / Fig. 3: trap-and-emulate, trap-and-patch, static analysis +
    // transform, and compiler-based FPVM are different mechanisms with the
    // same semantics.
    let w = fpvm::workloads::lorenz::workload(Size::Tiny);
    let n = native(&w);

    // 1. Pure trap-and-emulate (no static patching: this workload has no
    //    integer-view holes, so it is sound on its own).
    let c = compile(&w.module, CompileMode::Native);
    let mut m = Machine::new(CostModel::r815());
    m.load_program(&c.program);
    let mut rt = Fpvm::new(Vanilla, FpvmConfig::default());
    let r = rt.run(&mut m);
    assert_eq!(r.exit, ExitReason::Halted);
    let t_and_e = m.output.clone();

    // 2. Trap-and-patch.
    let mut m = Machine::new(CostModel::r815());
    m.load_program(&c.program);
    let mut rt = Fpvm::new(
        Vanilla,
        FpvmConfig {
            trap_and_patch: true,
            ..FpvmConfig::default()
        },
    );
    let r2 = rt.run(&mut m);
    assert_eq!(r2.exit, ExitReason::Halted);
    assert!(r2.stats.sites_patched > 0);
    let t_and_p = m.output.clone();

    // 3. Static analysis + transformation (the hybrid).
    let (_, static_out) = hybrid(&w, Vanilla, FpvmConfig::default());

    // 4. Compiler-based: FP ops are patch sites; no hardware FP traps at
    //    all (HW requirement "none" in Fig. 3).
    let ci = compile(&w.module, CompileMode::FpvmInstrumented);
    assert!(!ci.patch_sites.is_empty());
    let mut m = Machine::new(CostModel::r815());
    m.load_program(&ci.program);
    let mut rt = Fpvm::new(Vanilla, FpvmConfig::default());
    rt.preload_patch_sites(ci.patch_sites.clone());
    let r4 = rt.run(&mut m);
    assert_eq!(r4.exit, ExitReason::Halted);
    assert_eq!(
        r4.stats.fp_traps, 0,
        "compiler-based FPVM needs no hardware traps"
    );
    let compiler_out = m.output.clone();

    assert_eq!(n, t_and_e, "trap-and-emulate");
    assert_eq!(n, t_and_p, "trap-and-patch");
    assert_eq!(n, static_out, "static analysis");
    assert_eq!(n, compiler_out, "compiler-based");
}

#[test]
fn chaotic_codes_diverge_under_higher_precision() {
    // §5.4: Lorenz and three-body diverge under 200-bit arithmetic; the
    // final states differ while early outputs agree.
    for w in [
        fpvm::workloads::lorenz::workload(Size::S),
        fpvm::workloads::three_body::workload(Size::Tiny),
    ] {
        let n = native(&w);
        let (_, v) = hybrid(&w, BigFloatCtx::new(200), FpvmConfig::default());
        assert_eq!(n.len(), v.len(), "{}", w.name);
        let as_f = |o: &OutputEvent| match o {
            OutputEvent::F64(b) => f64::from_bits(*b),
            OutputEvent::I64(x) => *x as f64,
        };
        let first_diff = (as_f(&n[0]) - as_f(&v[0])).abs();
        assert!(first_diff < 1e-6, "{}: first output {first_diff}", w.name);
        if w.name == "Lorenz Attractor" {
            let last = n.len() - 1;
            let d = (as_f(&n[last]) - as_f(&v[last])).abs();
            assert!(d > 1e-3, "{}: expected divergence, got {d}", w.name);
        }
    }
}

#[test]
fn stable_codes_stay_close_under_higher_precision() {
    // CG / LU residual norms are numerically stable: 200-bit arithmetic
    // changes them only marginally.
    for w in [
        fpvm::workloads::nas_cg::workload(Size::Tiny),
        fpvm::workloads::nas_lu::workload(Size::Tiny),
    ] {
        let n = native(&w);
        let (_, v) = hybrid(&w, BigFloatCtx::new(200), FpvmConfig::default());
        for (a, b) in n.iter().zip(&v) {
            if let (OutputEvent::F64(x), OutputEvent::F64(y)) = (a, b) {
                let (x, y) = (f64::from_bits(*x), f64::from_bits(*y));
                let rel = (x - y).abs() / x.abs().max(1e-30);
                assert!(rel < 1e-9, "{}: {x} vs {y}", w.name);
            }
        }
    }
}

#[test]
fn correctness_trap_profiles_match_the_paper() {
    // §5.3: Enzo has correctness traps in critical loops whose checks
    // mostly succeed (no demotion); miniAero's checks fail (demote) but
    // rarely; the clean codes have none at all.
    let enzo = fpvm::workloads::enzo_like::workload(Size::Tiny);
    let (r, _) = hybrid(&enzo, Vanilla, FpvmConfig::default());
    let s = &r.stats;
    assert!(
        s.correctness_traps > 50,
        "Enzo must trap in hot loops: {}",
        s.correctness_traps
    );
    let demote_rate = s.correctness_demotions as f64 / s.correctness_traps as f64;
    assert!(
        demote_rate < 0.3,
        "Enzo checks mostly succeed; demote rate {demote_rate}"
    );

    let aero = fpvm::workloads::miniaero::workload(Size::Tiny);
    let (r, _) = hybrid(&aero, Vanilla, FpvmConfig::default());
    let s = &r.stats;
    assert!(s.correctness_traps > 0, "miniAero has serialization traps");
    assert!(
        s.correctness_traps < 200,
        "but off the critical path: {}",
        s.correctness_traps
    );

    let lorenz = fpvm::workloads::lorenz::workload(Size::Tiny);
    let (r, _) = hybrid(&lorenz, Vanilla, FpvmConfig::default());
    assert_eq!(
        r.stats.correctness_traps, 0,
        "Lorenz is hole-free: no correctness traps"
    );
}

#[test]
fn posit_runs_the_full_suite_sanely() {
    use fpvm::arith::PositCtx;
    for w in [
        fpvm::workloads::lorenz::workload(Size::Tiny),
        fpvm::workloads::nas_cg::workload(Size::Tiny),
    ] {
        let n = native(&w);
        let (_, v) = hybrid(&w, PositCtx::<64, 3>, FpvmConfig::default());
        assert_eq!(n.len(), v.len(), "{}", w.name);
        // posit64 has more fraction bits than f64 near 1: results are close
        // but generally not identical.
        for (a, b) in n.iter().zip(&v) {
            if let (OutputEvent::F64(x), OutputEvent::F64(y)) = (a, b) {
                let (x, y) = (f64::from_bits(*x), f64::from_bits(*y));
                assert!(
                    (x - y).abs() <= x.abs().max(1.0) * 1e-2,
                    "{}: {x} vs {y}",
                    w.name
                );
            }
        }
    }
}

#[test]
fn nan_load_hardware_extension_replaces_static_analysis() {
    // §6.2: "If the hardware could optionally trigger an exception when a
    // NaN pattern is loaded as a value, the static analysis could be
    // avoided." Run the bit-punning workloads UNPATCHED with the modeled
    // hardware extension: results must still be bit-identical to native.
    for w in [
        fpvm::workloads::enzo_like::workload(Size::Tiny),
        fpvm::workloads::miniaero::workload(Size::Tiny),
    ] {
        let n = native(&w);
        let c = compile(&w.module, CompileMode::Native);
        // No analyze_and_patch: the hardware catches the holes instead.
        let mut m = Machine::new(CostModel::r815());
        m.load_program(&c.program);
        let cfg = FpvmConfig {
            nan_load_hw: true,
            ..FpvmConfig::default()
        };
        let mut rt = Fpvm::new(Vanilla, cfg);
        let report = rt.run(&mut m);
        assert_eq!(report.exit, ExitReason::Halted, "{}", w.name);
        assert_eq!(
            n, m.output,
            "{}: hw NaN-load traps must preserve results",
            w.name
        );
        assert_eq!(report.stats.correctness_traps, 0, "no patched sites exist");
        assert!(
            report.stats.nan_hole_traps > 0,
            "{}: the hardware must have caught the punning loads",
            w.name
        );
    }
}

#[test]
fn adaptive_precision_tracks_fixed_precision() {
    // The §4.3 "adaptive precision version" (extension): running Lorenz on
    // the significance-tracking adaptive system stays within its advertised
    // error of the fixed 200-bit run. Note the textbook caveat: the +1-bit
    // worst-case error bound per addition is pessimistic, so over a long
    // loop-carried chain the advertised significance (and hence the stored
    // precision) decays toward the floor — the classic weakness of
    // significance arithmetic, and one reason MPFR chose fixed precision
    // with Ziv loops instead. The demoted outputs therefore agree with the
    // fixed-precision run to the floor precision, not to 200 bits.
    use fpvm::arith::AdaptiveCtx;
    let w = fpvm::workloads::lorenz::workload(Size::Tiny);
    let (_, fixed) = hybrid(&w, BigFloatCtx::new(200), FpvmConfig::default());
    let (report, adaptive) = hybrid(&w, AdaptiveCtx::new(200), FpvmConfig::default());
    assert_eq!(report.exit, ExitReason::Halted);
    assert_eq!(fixed.len(), adaptive.len());
    for (a, b) in fixed.iter().zip(&adaptive) {
        if let (OutputEvent::F64(x), OutputEvent::F64(y)) = (a, b) {
            let (x, y) = (f64::from_bits(*x), f64::from_bits(*y));
            assert!(
                (x - y).abs() <= x.abs().max(1.0) * 1e-4,
                "adaptive {y} vs fixed {x}"
            );
        }
    }
}

/// Full Class-S validation (same as `reproduce --exp validate`); slower,
/// so ignored by default — run with `cargo test -- --ignored`.
#[test]
#[ignore = "slow: full Class-S suite under virtualization"]
fn validation_class_s_full() {
    for w in all_workloads(Size::S) {
        let n = native(&w);
        let (_, v) = hybrid(&w, Vanilla, FpvmConfig::default());
        assert_eq!(n, v, "{}", w.name);
    }
}
