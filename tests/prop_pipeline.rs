//! Randomized test for the whole pipeline: for *random programs* — including
//! the bit-punning idioms the static analysis exists to catch — the full
//! hybrid FPVM with Vanilla arithmetic must be bit-identical to native
//! execution, and the compiler-based build must agree too.
//!
//! This is the §5.2 validation turned into a generator: if the VSA ever
//! misses a sink (soundness bug), a NaN-box leaks into the integer world
//! and the outputs diverge; if the emulator mis-computes any operation or
//! flag, the FP outputs diverge.
//!
//! One exclusion, straight from the paper's §2 "NaN-space ownership"
//! limitation: programs that *forge signaling NaN bit patterns* from
//! integer arithmetic (int → float bitcasts of arbitrary bits) are outside
//! FPVM's contract — "if the program itself is using signaling NaNs, it
//! will still operate, but will never see a signaling NaN". The generator
//! therefore masks int→float bitcasts to quiet patterns and keeps integer
//! arithmetic out of the sNaN bit range (an integer that *looks like* a
//! NaN-box and flows through a conservatively-patched load is demoted —
//! the correct behavior under FPVM's contract, but a divergence from
//! native). The `nan_space_ownership_limitation` test documents both.

use fpvm::analysis::analyze_and_patch;
use fpvm::arith::Vanilla;
use fpvm::ir::{compile, CmpOp, CompileMode, FBinOp, GlobalInit, IBinOp, MathFn, Module, Ty};
use fpvm::machine::{CostModel, Event, Machine, OutputEvent};
use fpvm::runtime::{ExitReason, Fpvm, FpvmConfig};

const NF: usize = 6; // f64 variables
const NI: usize = 4; // i64 variables
const ARR: usize = 8; // global f64 array length

/// SplitMix64: tiny, deterministic, well-distributed (the build
/// environment has no proptest, so generation is seeded and fixed).
struct Rng(u64);

impl Rng {
    fn next(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    fn below(&mut self, n: u64) -> u64 {
        self.next() % n
    }

    fn unit(&mut self) -> f64 {
        (self.next() >> 11) as f64 / (1u64 << 53) as f64
    }
}

/// One random statement operating on the variable pools.
#[derive(Debug, Clone)]
enum Stmt {
    FBin(u8, u8, u8, u8),    // op, dst, a, b
    FUn(u8, u8, u8),         // op (0=neg,1=abs,2=sqrt), dst, a
    Math(u8, u8, u8),        // fn (0=sin,1=cos,2=exp,3=fabs,4=floor), dst, a
    IBin(u8, u8, u8, u8),    // op, dst, a, b
    IToF(u8, u8),            // dst_f, src_i
    FToI(u8, u8),            // dst_i, src_f
    BitcastFI(u8, u8),       // dst_i, src_f  — the Fig. 6 hazard
    BitcastIF(u8, u8),       // dst_f, src_i
    StoreArr(u8, u8),        // arr[idx % ARR] = f[src]
    LoadArr(u8, u8),         // f[dst] = arr[idx % ARR]
    LoadArrAsInt(u8, u8),    // i[dst] = *(i64*)&arr[idx % ARR] — hazard
    FCmpToI(u8, u8, u8, u8), // pred, dst_i, a, b
    PrintF(u8),
    PrintI(u8),
}

/// One weighted-random statement (same weights the proptest strategy used).
fn random_stmt(rng: &mut Rng) -> Stmt {
    let nf = NF as u64;
    let ni = NI as u64;
    let arr = ARR as u64;
    match rng.below(22) {
        0..=3 => Stmt::FBin(
            rng.below(6) as u8,
            rng.below(nf) as u8,
            rng.below(nf) as u8,
            rng.below(nf) as u8,
        ),
        4..=5 => Stmt::FUn(rng.below(3) as u8, rng.below(nf) as u8, rng.below(nf) as u8),
        6 => Stmt::Math(rng.below(5) as u8, rng.below(nf) as u8, rng.below(nf) as u8),
        7..=9 => Stmt::IBin(
            rng.below(8) as u8,
            rng.below(ni) as u8,
            rng.below(ni) as u8,
            rng.below(ni) as u8,
        ),
        10 => Stmt::IToF(rng.below(nf) as u8, rng.below(ni) as u8),
        11 => Stmt::FToI(rng.below(ni) as u8, rng.below(nf) as u8),
        12 => Stmt::BitcastFI(rng.below(ni) as u8, rng.below(nf) as u8),
        13 => Stmt::BitcastIF(rng.below(nf) as u8, rng.below(ni) as u8),
        14..=15 => Stmt::StoreArr(rng.below(arr) as u8, rng.below(nf) as u8),
        16..=17 => Stmt::LoadArr(rng.below(nf) as u8, rng.below(arr) as u8),
        18 => Stmt::LoadArrAsInt(rng.below(ni) as u8, rng.below(arr) as u8),
        19 => Stmt::FCmpToI(
            rng.below(6) as u8,
            rng.below(ni) as u8,
            rng.below(nf) as u8,
            rng.below(nf) as u8,
        ),
        20 => Stmt::PrintF(rng.below(nf) as u8),
        _ => Stmt::PrintI(rng.below(ni) as u8),
    }
}

fn finite_f64(rng: &mut Rng) -> f64 {
    match rng.below(5) {
        0 => -100.0 + 200.0 * rng.unit(),
        1 => {
            let e = rng.below(60) as i32 - 30;
            (-1.0 + 2.0 * rng.unit()) * 2f64.powi(e)
        }
        2 => 0.0,
        3 => 1.0,
        _ => 0.1,
    }
}

/// Build an IR module from a statement list, executed in a 3-iteration
/// loop (loop-carried dataflow through the variables + global array).
fn build_module(finits: &[f64], iinits: &[i64], stmts: &[Stmt]) -> Module {
    let mut m = Module::new();
    let arr = m.global("arr", GlobalInit::F64s(vec![1.5; ARR]));
    let stmts = stmts.to_vec();
    let finits = finits.to_vec();
    let iinits = iinits.to_vec();
    m.build_func("main", &[], None, move |b| {
        let fv: Vec<_> = (0..NF).map(|_| b.var(Ty::F64)).collect();
        let iv: Vec<_> = (0..NI).map(|_| b.var(Ty::I64)).collect();
        for (k, var) in fv.iter().enumerate() {
            let c = b.cf(finits[k]);
            b.write(*var, c);
        }
        for (k, var) in iv.iter().enumerate() {
            let c = b.ci(iinits[k]);
            b.write(*var, c);
        }
        let abase_v = b.var(Ty::I64);
        let a = b.global_addr(arr);
        b.write(abase_v, a);
        fpvm::ir::build_util::loop_n(b, 3, |b, _it| {
            for s in &stmts {
                match *s {
                    Stmt::FBin(op, d, x, y) => {
                        let a = b.read(fv[x as usize]);
                        let c = b.read(fv[y as usize]);
                        let op = [
                            FBinOp::Add,
                            FBinOp::Sub,
                            FBinOp::Mul,
                            FBinOp::Div,
                            FBinOp::Min,
                            FBinOp::Max,
                        ][op as usize % 6];
                        let r = match op {
                            FBinOp::Add => b.fadd(a, c),
                            FBinOp::Sub => b.fsub(a, c),
                            FBinOp::Mul => b.fmul(a, c),
                            FBinOp::Div => b.fdiv(a, c),
                            FBinOp::Min => b.fmin(a, c),
                            FBinOp::Max => b.fmax(a, c),
                        };
                        b.write(fv[d as usize], r);
                    }
                    Stmt::FUn(op, d, x) => {
                        let a = b.read(fv[x as usize]);
                        let r = match op % 3 {
                            0 => b.fneg(a),
                            1 => b.fabs(a),
                            _ => b.fsqrt(a),
                        };
                        b.write(fv[d as usize], r);
                    }
                    Stmt::Math(f, d, x) => {
                        let a = b.read(fv[x as usize]);
                        let f = [
                            MathFn::Sin,
                            MathFn::Cos,
                            MathFn::Exp,
                            MathFn::Fabs,
                            MathFn::Floor,
                        ][f as usize % 5];
                        // Clamp exp's argument to avoid inf-vs-inf traps
                        // being the only thing tested.
                        let r = b.math(f, &[a]);
                        b.write(fv[d as usize], r);
                    }
                    Stmt::IBin(op, d, x, y) => {
                        let a = b.read(iv[x as usize]);
                        let c = b.read(iv[y as usize]);
                        let op = [
                            IBinOp::Add,
                            IBinOp::Sub,
                            IBinOp::Mul,
                            IBinOp::And,
                            IBinOp::Or,
                            IBinOp::Xor,
                            IBinOp::Shl,
                            IBinOp::Shr,
                        ][op as usize % 8];
                        let r = match op {
                            IBinOp::Add => b.iadd(a, c),
                            IBinOp::Sub => b.isub(a, c),
                            IBinOp::Mul => b.imul(a, c),
                            IBinOp::And => b.iand(a, c),
                            IBinOp::Or => b.ior(a, c),
                            IBinOp::Xor => b.ixor(a, c),
                            IBinOp::Shl => b.ishl(a, c),
                            _ => b.ishr(a, c),
                        };
                        // Keep integer results out of FPVM's sNaN space
                        // (see the module comment).
                        let mask = b.ci(0xFFFF_FFFF_FFFF);
                        let r = b.iand(r, mask);
                        b.write(iv[d as usize], r);
                    }
                    Stmt::IToF(d, s) => {
                        let a = b.read(iv[s as usize]);
                        let r = b.itof(a);
                        b.write(fv[d as usize], r);
                    }
                    Stmt::FToI(d, s) => {
                        let a = b.read(fv[s as usize]);
                        let r = b.ftoi(a);
                        b.write(iv[d as usize], r);
                    }
                    Stmt::BitcastFI(d, s) => {
                        let a = b.read(fv[s as usize]);
                        let r = b.bitcast_fi(a);
                        b.write(iv[d as usize], r);
                    }
                    Stmt::BitcastIF(d, s) => {
                        // Quiet the pattern: v | quiet-bit keeps the cast
                        // inside FPVM's contract (no forged sNaNs, §2).
                        let a = b.read(iv[s as usize]);
                        let qb = b.ci(0x0008_0000_0000_0000);
                        let quieted = b.ior(a, qb);
                        let r = b.bitcast_if(quieted);
                        b.write(fv[d as usize], r);
                    }
                    Stmt::StoreArr(i, s) => {
                        let base = b.read(abase_v);
                        let v = b.read(fv[s as usize]);
                        b.storef(base, 8 * i64::from(i % ARR as u8), v);
                    }
                    Stmt::LoadArr(d, i) => {
                        let base = b.read(abase_v);
                        let v = b.loadf(base, 8 * i64::from(i % ARR as u8));
                        b.write(fv[d as usize], v);
                    }
                    Stmt::LoadArrAsInt(d, i) => {
                        let base = b.read(abase_v);
                        let v = b.loadi(base, 8 * i64::from(i % ARR as u8));
                        b.write(iv[d as usize], v);
                    }
                    Stmt::FCmpToI(p, d, x, y) => {
                        let a = b.read(fv[x as usize]);
                        let c = b.read(fv[y as usize]);
                        let p = [
                            CmpOp::Eq,
                            CmpOp::Ne,
                            CmpOp::Lt,
                            CmpOp::Le,
                            CmpOp::Gt,
                            CmpOp::Ge,
                        ][p as usize % 6];
                        let r = b.fcmp(p, a, c);
                        b.write(iv[d as usize], r);
                    }
                    Stmt::PrintF(x) => {
                        let a = b.read(fv[x as usize]);
                        b.printf(a);
                    }
                    Stmt::PrintI(x) => {
                        let a = b.read(iv[x as usize]);
                        b.printi(a);
                    }
                }
            }
        });
        // Final state dump: every variable + the array.
        for var in &fv {
            let a = b.read(*var);
            b.printf(a);
        }
        for var in &iv {
            let a = b.read(*var);
            b.printi(a);
        }
        let base = b.read(abase_v);
        for k in 0..ARR as i64 {
            let v = b.loadf(base, 8 * k);
            b.printf(v);
        }
        b.ret(None);
    });
    m
}

fn run_native(prog: &fpvm::machine::Program) -> Vec<OutputEvent> {
    let mut m = Machine::new(CostModel::r815());
    let ev = fpvm::runtime::run_native(&mut m, prog, 50_000_000);
    assert_eq!(ev, Event::Halted);
    m.output
}

/// One random program: initial values + a weighted statement list.
fn random_case(rng: &mut Rng, max_stmts: u64) -> (Vec<f64>, Vec<i64>, Vec<Stmt>) {
    let finits: Vec<f64> = (0..NF).map(|_| finite_f64(rng)).collect();
    let iinits: Vec<i64> = (0..NI).map(|_| rng.below(2000) as i64 - 1000).collect();
    let n = 1 + rng.below(max_stmts - 1) as usize;
    let stmts: Vec<Stmt> = (0..n).map(|_| random_stmt(rng)).collect();
    (finits, iinits, stmts)
}

/// Hybrid pipeline soundness on random programs.
#[test]
fn hybrid_vanilla_bit_identical_on_random_programs() {
    let mut rng = Rng(0xF1);
    for case in 0..48 {
        let (finits, iinits, stmts) = random_case(&mut rng, 40);
        let module = build_module(&finits, &iinits, &stmts);
        let compiled = compile(&module, CompileMode::Native);
        let native = run_native(&compiled.program);

        let patched = analyze_and_patch(&compiled.program);
        let mut m = Machine::new(CostModel::r815());
        m.load_program(&patched.program);
        let mut rt = Fpvm::new(
            Vanilla,
            FpvmConfig {
                gc_epoch: 10_000,
                ..FpvmConfig::default()
            },
        );
        rt.set_side_table(patched.side_table);
        let report = rt.run(&mut m);
        assert_eq!(report.exit, ExitReason::Halted, "case {case}: {stmts:?}");
        assert_eq!(
            &m.output, &native,
            "case {case}: hybrid FPVM(Vanilla) diverged from native\n{stmts:?}"
        );
    }
}

/// Compiler-based build agrees with native on random programs.
#[test]
fn compiler_mode_bit_identical_on_random_programs() {
    let mut rng = Rng(0xF2);
    for case in 0..48 {
        let (finits, iinits, stmts) = random_case(&mut rng, 25);
        let module = build_module(&finits, &iinits, &stmts);
        let native = run_native(&compile(&module, CompileMode::Native).program);

        let instr = compile(&module, CompileMode::FpvmInstrumented);
        let mut m = Machine::new(CostModel::r815());
        m.load_program(&instr.program);
        let mut rt = Fpvm::new(Vanilla, FpvmConfig::default());
        rt.preload_patch_sites(instr.patch_sites.clone());
        let report = rt.run(&mut m);
        assert_eq!(report.exit, ExitReason::Halted, "case {case}: {stmts:?}");
        assert_eq!(
            report.stats.fp_traps, 0,
            "case {case}: compiler mode needs no hw traps"
        );
        assert_eq!(
            &m.output, &native,
            "case {case}: compiler-based FPVM diverged\n{stmts:?}"
        );
    }
}

/// §2 NaN-space ownership as a property over random payloads: a *forged*
/// signaling-NaN operand reaching the engine must surface as the canonical
/// quiet NaN — the guest never sees its own payload bits, under any sign,
/// through any NaN-propagating operation. The payloads keep a high bit set
/// so they can never alias a live arena key allocated during the run.
#[test]
fn forged_snan_operand_surfaces_as_canonical_qnan() {
    const CANONICAL_QNAN: u64 = 0x7FF8_0000_0000_0000;
    let mut rng = Rng(0x5AA5);
    for case in 0..32 {
        let payload = ((rng.next() & fpvm::nanbox::F64_PAYLOAD_MASK) | (1 << 40)).max(1);
        let sign = (rng.next() & 1) << 63;
        let snan_bits = (sign | 0x7FF0_0000_0000_0000 | payload) & !fpvm::nanbox::F64_QUIET_BIT;
        assert!(f64::from_bits(snan_bits).is_nan());
        let mut m = Module::new();
        m.build_func("main", &[], None, move |b| {
            let bits = b.ci(snan_bits as i64);
            let forged = b.bitcast_if(bits);
            let one = b.cf(1.0);
            let r = b.fadd(forged, one);
            b.printf(r);
            let r = b.fmul(forged, one);
            b.printf(r);
            let r = b.fsub(one, forged);
            b.printf(r);
            let r = b.fsqrt(forged);
            b.printf(r);
            b.ret(None);
        });
        let compiled = compile(&m, CompileMode::Native);
        let patched = analyze_and_patch(&compiled.program);
        let mut mach = Machine::new(CostModel::r815());
        mach.load_program(&patched.program);
        let mut rt = Fpvm::new(Vanilla, FpvmConfig::default());
        rt.set_side_table(patched.side_table);
        let report = rt.run(&mut mach);
        assert_eq!(report.exit, ExitReason::Halted, "case {case}");
        assert_eq!(mach.output.len(), 4, "case {case}");
        for (i, ev) in mach.output.iter().enumerate() {
            match *ev {
                OutputEvent::F64(bits) => assert_eq!(
                    bits, CANONICAL_QNAN,
                    "case {case} output {i}: forged payload {payload:#x} leaked"
                ),
                ref other => panic!("case {case} output {i}: {other:?}"),
            }
        }
    }
}

/// §2 "NaN-space ownership" documented: a guest that forges a signaling
/// NaN bit pattern from integer arithmetic sees FPVM's view of it (a
/// universal/quiet NaN after any FPVM-owned demotion), not its own bits —
/// "the program … will never see a signaling NaN".
#[test]
fn nan_space_ownership_limitation() {
    let mut module = Module::new();
    let _ = &mut module;
    let mut m = Module::new();
    m.build_func("main", &[], None, |b| {
        // Forge sNaN bits: bits(inf) | 1, then bitcast to f64 and back.
        let one = b.cf(1.0);
        let zero = b.cf(0.0);
        let inf = b.fdiv(one, zero);
        let bits = b.bitcast_fi(inf);
        let c1 = b.ci(1);
        let forged_bits = b.ior(bits, c1);
        let forged = b.bitcast_if(forged_bits);
        // Send it back to the integer world through a second bitcast.
        let back = b.bitcast_fi(forged);
        b.printi(back);
        b.ret(None);
    });
    let compiled = compile(&m, CompileMode::Native);
    let native = run_native(&compiled.program);
    // Natively the forged sNaN bits round-trip unchanged.
    assert_eq!(native[0], OutputEvent::I64(0x7FF0_0000_0000_0001u64 as i64));
    // Under the hybrid FPVM the patched load demotes the pattern: the key
    // is not live in the arena, so it reads as the universal (quiet) NaN.
    let patched = analyze_and_patch(&compiled.program);
    let mut mach = Machine::new(CostModel::r815());
    mach.load_program(&patched.program);
    let mut rt = Fpvm::new(Vanilla, FpvmConfig::default());
    rt.set_side_table(patched.side_table);
    let report = rt.run(&mut mach);
    assert_eq!(report.exit, ExitReason::Halted);
    match mach.output[0] {
        OutputEvent::I64(v) => {
            // The guest never sees its own signaling pattern: the demotion
            // resolves the forged bits through FPVM's arena — here they
            // alias the live shadow cell of the earlier division (key 1),
            // so the guest reads that value's demotion instead. Had the
            // key been dead it would have read the universal quiet NaN.
            assert_ne!(
                v as u64, 0x7FF0_0000_0000_0001,
                "the guest must not see its forged signaling pattern"
            );
        }
        ref other => panic!("{other:?}"),
    }
}
