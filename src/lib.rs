//! Facade crate: re-exports the FPVM workspace crates. See README.md.
pub use fpvm_analysis as analysis;
pub use fpvm_arith as arith;
pub use fpvm_core as runtime;
pub use fpvm_ir as ir;
pub use fpvm_machine as machine;
pub use fpvm_nanbox as nanbox;
pub use fpvm_workloads as workloads;
