//! Integration tests for the wall-clock metrics plane: the disabled path
//! emits zero samples, Fig. 9 accounting is bit-identical with metrics
//! on/off (the plane never touches `Stats`), sampled stage histograms and
//! their deterministic sample counts behave as specified, and ext-call
//! interposition is timed.

use fpvm_arith::Vanilla;
use fpvm_core::{ExitReason, Fpvm, FpvmConfig, MetricStage};
use fpvm_machine::{AluOp, Asm, Cond, CostModel, ExtFn, Gpr, Machine, Xmm};

/// A looping guest: `iters` inexact adds (one trap each) plus one math
/// ext-call and one print at the end.
fn looping_program(iters: i64) -> fpvm_machine::Program {
    let mut a = Asm::new();
    let tenth = a.f64m(0.1);
    let one = a.f64m(1.0);
    a.movsd(Xmm(2), one);
    a.mov_ri(Gpr::RCX, 0);
    let top = a.here_label();
    let done = a.label();
    a.cmp_ri(Gpr::RCX, iters);
    a.jcc(Cond::Ge, done);
    a.addsd(Xmm(2), tenth);
    a.alu_ri(AluOp::Add, Gpr::RCX, 1);
    a.jmp(top);
    a.bind(done);
    a.movsd(Xmm(0), one);
    a.call_ext(ExtFn::Sin);
    a.call_ext(ExtFn::PrintF64);
    a.halt();
    a.finish()
}

fn machine(p: &fpvm_machine::Program) -> Machine {
    let mut m = Machine::new(CostModel::r815());
    m.load_program(p);
    m
}

#[test]
fn metrics_off_emits_zero_samples() {
    let p = looping_program(50);
    let mut m = machine(&p);
    let mut vm = Fpvm::new(Vanilla, FpvmConfig::default());
    let r = vm.run(&mut m);
    assert_eq!(r.exit, ExitReason::Halted);
    assert!(r.stats.fp_traps > 0, "the guest really trapped");
    // Off means off: no plane, no snapshot, not even zero-valued metrics.
    assert!(vm.engine_metrics().is_none());
    assert!(vm.metrics_snapshot().is_none());
}

/// Enabling the metrics plane must not perturb Fig. 9 accounting, guest
/// state, or any deterministic statistic — compared against a build where
/// the plane was never constructed (the default config), same discipline
/// as tracing on/off.
#[test]
fn fig9_bit_identical_with_metrics_on_and_off() {
    let p = looping_program(300);
    let mut m_off = machine(&p);
    let mut vm_off = Fpvm::new(Vanilla, FpvmConfig::default());
    let r_off = vm_off.run(&mut m_off);

    let mut m_on = machine(&p);
    let mut vm_on = Fpvm::new(
        Vanilla,
        FpvmConfig {
            metrics: true,
            metrics_sample_shift: 2,
            ..FpvmConfig::default()
        },
    );
    let r_on = vm_on.run(&mut m_on);
    assert!(
        vm_on.engine_metrics().unwrap().samples() > 0,
        "the plane really sampled"
    );
    assert_eq!(
        r_on.stats.deterministic_view(),
        r_off.stats.deterministic_view()
    );
    assert_eq!(r_on.icount, r_off.icount);
    assert_eq!(r_on.fp_icount, r_off.fp_icount);
    assert_eq!(m_on.output, m_off.output);
    assert_eq!(m_on.xmm, m_off.xmm);
}

#[test]
fn sampled_stages_fill_histograms_with_deterministic_counts() {
    let iters = 64;
    let p = looping_program(iters);
    let mut m = machine(&p);
    let shift = 3; // sample every 8th trap
    let mut vm = Fpvm::new(
        Vanilla,
        FpvmConfig {
            metrics: true,
            metrics_sample_shift: shift,
            ..FpvmConfig::default()
        },
    );
    let r = vm.run(&mut m);
    assert_eq!(r.exit, ExitReason::Halted);
    let em = vm.engine_metrics().unwrap();
    let traps = r.stats.fp_traps;
    // Sampling every 2^shift-th trap starting at the first: exact count.
    let expect = traps.div_ceil(1 << shift);
    let frame = em.stage_histogram(MetricStage::Frame);
    assert_eq!(frame.count(), expect, "{traps} traps, shift {shift}");
    assert!(frame.sum() > 0, "frame timer measured real nanoseconds");
    // Sampled traps time every pipeline stage; scalar adds are one lane,
    // so emulate/commit counts match the frame count. (Decode can exceed
    // it: stale sample flags may time decodes outside `on_fp_trap`.)
    for st in [MetricStage::Bind, MetricStage::Emulate, MetricStage::Commit] {
        assert_eq!(
            em.stage_histogram(st).count(),
            expect,
            "{} samples",
            st.label()
        );
    }
    assert!(em.stage_histogram(MetricStage::Decode).count() >= expect);
    // The two ext-calls tick their own sequence; the first is sampled.
    assert_eq!(em.stage_histogram(MetricStage::ExtCall).count(), 1);
    // The snapshot carries the deterministic counters alongside.
    let snap = vm.metrics_snapshot().unwrap();
    assert_eq!(snap.counter("fpvm_traps_total"), Some(traps));
    assert_eq!(snap.counter("fpvm_stage_samples_frame"), Some(expect));
    assert_eq!(
        snap.histogram("fpvm_trap_ns").unwrap().count(),
        expect,
        "ns/trap distribution is the frame histogram"
    );
    assert_eq!(snap.counter("fpvm_math_interposed_total"), Some(1));
    assert_eq!(snap.counter("fpvm_output_wrapped_total"), Some(1));

    // Two identical runs agree on every deterministic metric, bit for bit.
    let mut m2 = machine(&p);
    let mut vm2 = Fpvm::new(
        Vanilla,
        FpvmConfig {
            metrics: true,
            metrics_sample_shift: shift,
            ..FpvmConfig::default()
        },
    );
    vm2.run(&mut m2);
    let snap2 = vm2.metrics_snapshot().unwrap();
    assert_eq!(snap.deterministic_view(), snap2.deterministic_view());
}

#[test]
fn shift_zero_samples_every_trap() {
    let p = looping_program(10);
    let mut m = machine(&p);
    let mut vm = Fpvm::new(
        Vanilla,
        FpvmConfig {
            metrics: true,
            metrics_sample_shift: 0,
            ..FpvmConfig::default()
        },
    );
    let r = vm.run(&mut m);
    let em = vm.engine_metrics().unwrap();
    assert_eq!(
        em.stage_histogram(MetricStage::Frame).count(),
        r.stats.fp_traps
    );
    assert_eq!(em.stage_histogram(MetricStage::ExtCall).count(), 2);
}
