//! Engine-reuse discipline: a recycled engine must be indistinguishable
//! (on the deterministic views) from a fresh one, and the per-run cache
//! retention must never leak across recycles or across *different*
//! programs of the same length (the stale-reload bug).

use fpvm_arith::{BigFloatCtx, Vanilla};
use fpvm_core::{ExitReason, Fpvm, FpvmConfig};
use fpvm_machine::{AluOp, Asm, Cond, CostModel, ExtFn, Gpr, Machine, Xmm, XM};

/// Iterated logistic map x <- r·x·(1−x): plenty of FP traps, a few sites.
fn logistic_program(r: f64, iters: i64) -> fpvm_machine::Program {
    let mut a = Asm::new();
    let x0 = a.f64m(0.34567);
    let rc = a.f64m(r);
    let one = a.f64m(1.0);
    a.movsd(Xmm(2), x0);
    a.mov_ri(Gpr::RCX, 0);
    let top = a.here_label();
    let done = a.label();
    a.cmp_ri(Gpr::RCX, iters);
    a.jcc(Cond::Ge, done);
    a.movsd(Xmm(3), one);
    a.subsd(Xmm(3), Xmm(2));
    a.mulsd(Xmm(2), rc);
    a.mulsd(Xmm(2), Xmm(3));
    a.movsd(Xmm(0), XM::Reg(Xmm(2)));
    a.call_ext(ExtFn::PrintF64);
    a.alu_ri(AluOp::Add, Gpr::RCX, 1);
    a.jmp(top);
    a.bind(done);
    a.halt();
    a.finish()
}

/// N back-to-back runs on ONE recycled engine must produce bit-identical
/// deterministic stats (and guest output) to N fresh engines — nothing may
/// leak through reused scratch, the arena slab, or the emulate cache.
#[test]
fn recycled_engine_matches_fresh_engines() {
    // Distinct programs per round so leaked cache entries can't hide.
    let programs = [
        logistic_program(3.71, 40),
        logistic_program(3.99, 40),
        logistic_program(3.71, 40), // repeat of round 0: epoch must still isolate
    ];
    for config in [
        FpvmConfig::default(),
        FpvmConfig {
            trap_and_patch: true,
            ..FpvmConfig::default()
        },
    ] {
        let mut reused = Fpvm::new(BigFloatCtx::new(120), config);
        for (i, p) in programs.iter().enumerate() {
            reused.recycle(config);
            let mut mr = Machine::new(CostModel::r815());
            mr.load_program(p);
            let rr = reused.run(&mut mr);

            let mut fresh = Fpvm::new(BigFloatCtx::new(120), config);
            let mut mf = Machine::new(CostModel::r815());
            mf.load_program(p);
            let rf = fresh.run(&mut mf);

            assert_eq!(rr.exit, ExitReason::Halted);
            assert_eq!(rf.exit, ExitReason::Halted);
            assert_eq!(
                rr.stats.deterministic_view(),
                rf.stats.deterministic_view(),
                "round {i}: recycled engine diverged from fresh (t&p={})",
                config.trap_and_patch
            );
            assert_eq!(mr.output, mf.output, "round {i}: guest output diverged");
            // Report cycles include host-measured emulate time and so are
            // not bit-stable; icount and the deterministic view above are.
            assert_eq!(rr.icount, rf.icount);
        }
    }
}

/// Without a recycle, re-running the *same* program on one engine retains
/// the decode/emulate caches (the single-tenant optimization): the second
/// run decodes nothing.
#[test]
fn same_program_rerun_retains_caches() {
    let p = logistic_program(3.71, 40);
    let mut vm = Fpvm::new(Vanilla, FpvmConfig::default());
    let mut m = Machine::new(CostModel::r815());
    m.load_program(&p);
    vm.run(&mut m);
    let after_first = vm.stats().clone();
    assert!(
        after_first.decode_misses > 0,
        "first run populates the cache"
    );
    let mut m2 = Machine::new(CostModel::r815());
    m2.load_program(&p);
    vm.run(&mut m2);
    let after_second = vm.stats().clone();
    assert_eq!(
        after_second.decode_misses, after_first.decode_misses,
        "second run of the identical program must be all cache hits"
    );
    assert!(after_second.decode_hits > after_first.decode_hits);
}

/// A recycle flushes retention even for an identical program: the epoch is
/// part of the cache identity.
#[test]
fn recycle_flushes_cache_retention() {
    let p = logistic_program(3.71, 40);
    let mut vm = Fpvm::new(Vanilla, FpvmConfig::default());
    let mut m = Machine::new(CostModel::r815());
    m.load_program(&p);
    vm.run(&mut m);
    let first_misses = vm.stats().decode_misses;
    vm.recycle(FpvmConfig::default());
    assert_eq!(vm.stats().decode_misses, 0, "recycle zeroes stats");
    let mut m2 = Machine::new(CostModel::r815());
    m2.load_program(&p);
    vm.run(&mut m2);
    assert_eq!(
        vm.stats().decode_misses,
        first_misses,
        "post-recycle run must start cold (same miss profile as a fresh engine)"
    );
}
