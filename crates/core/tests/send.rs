//! Compile-time assertions that the engine and its telemetry types are
//! [`Send`] — the property the `fpvm-fleet` sharded runner is built on.
//!
//! These are pure type-level checks: if any field of [`Fpvm`] (the boxed
//! trace sink, the boxed decode cache, the shadow arena, …) regresses to a
//! non-`Send` type such as `Rc<RefCell<_>>`, this test stops compiling,
//! which is exactly the failure mode we want — at the build, not in a
//! worker at runtime.

use fpvm_arith::{AdaptiveCtx, BigFloatCtx, PositCtx, Vanilla};
use fpvm_core::profile::ProfilerSink;
use fpvm_core::trace::{FanoutSink, NullSink, RingBufferSink, TraceSink};
use fpvm_core::{DecodeCache, Fpvm};
use fpvm_machine::Machine;

fn assert_send<T: Send>() {}

#[test]
fn engine_and_machine_are_send() {
    // The engine, for every in-tree arithmetic system.
    assert_send::<Fpvm<Vanilla>>();
    assert_send::<Fpvm<BigFloatCtx>>();
    assert_send::<Fpvm<PositCtx<32, 2>>>();
    assert_send::<Fpvm<AdaptiveCtx>>();
    // The guest machine a worker owns alongside it.
    assert_send::<Machine>();
}

#[test]
fn sink_and_cache_trait_objects_are_send() {
    // The boxed forms held inside `Fpvm` / `Accounting`.
    assert_send::<Box<dyn TraceSink>>();
    assert_send::<Box<dyn DecodeCache>>();
    // Every concrete sink that crosses a worker boundary in the fleet.
    assert_send::<NullSink>();
    assert_send::<RingBufferSink>();
    assert_send::<FanoutSink>();
    assert_send::<ProfilerSink>();
}
