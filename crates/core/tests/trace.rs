//! Integration tests for the trap telemetry subsystem: event lifecycle
//! ordering, post-mortem ring capture on `RuntimeError`, profiler hot-site
//! ranking feeding trap-and-patch site selection, tracing-on/off stats
//! identity, and the pressure-triggered GC path.
//!
//! All sinks are installed by value and recovered after the run with
//! [`Fpvm::take_trace_sink`] + `downcast` — the owned-sink teardown
//! protocol that replaced the `Rc<RefCell<_>>` handle pattern.

use fpvm_arith::Vanilla;
use fpvm_core::profile::ProfilerSink;
use fpvm_core::trace::{RingBufferSink, TraceEvent, TraceSink};
use fpvm_core::{ExitReason, Fpvm, FpvmConfig, Stage};
use fpvm_machine::{AluOp, Asm, Cond, CostModel, Gpr, Inst, Machine, TrapKind, Xmm};

/// One hot FP site (`addsd` trapping `iters` times in a loop) followed by
/// one cold site (`divsd`, trapping once).
fn hot_cold_program(iters: i64) -> fpvm_machine::Program {
    let mut a = Asm::new();
    // Seed with 1.0 so every `+ 0.1` is inexact and traps (0.0 + 0.1 and
    // 0.1 + 0.1 would be exact).
    let tenth = a.f64m(0.1);
    let one = a.f64m(1.0);
    let three = a.f64m(3.0);
    a.movsd(Xmm(2), one);
    a.mov_ri(Gpr::RCX, 0);
    let top = a.here_label();
    let done = a.label();
    a.cmp_ri(Gpr::RCX, iters);
    a.jcc(Cond::Ge, done);
    a.addsd(Xmm(2), tenth); // hot: traps every iteration
    a.alu_ri(AluOp::Add, Gpr::RCX, 1);
    a.jmp(top);
    a.bind(done);
    a.movsd(Xmm(1), three);
    a.divsd(Xmm(1), tenth); // cold: traps once
    a.halt();
    a.finish()
}

/// A guest that traps exactly once (`0.1 + 0.2` is inexact).
fn single_trap_program() -> fpvm_machine::Program {
    let mut a = Asm::new();
    let c1 = a.f64m(0.1);
    let c2 = a.f64m(0.2);
    a.movsd(Xmm(0), c1);
    a.addsd(Xmm(0), c2);
    a.halt();
    a.finish()
}

fn machine(p: &fpvm_machine::Program) -> Machine {
    let mut m = Machine::new(CostModel::r815());
    m.load_program(p);
    m
}

/// Take the installed sink back out of the engine and downcast it.
fn take_sink<S: TraceSink>(vm: &mut Fpvm<Vanilla>) -> Box<S> {
    vm.take_trace_sink()
        .downcast::<S>()
        .unwrap_or_else(|s| panic!("sink was `{}`", s.name()))
}

#[test]
fn one_trap_emits_the_full_lifecycle_in_order() {
    let p = single_trap_program();
    let mut m = machine(&p);
    let mut vm = Fpvm::new(Vanilla, FpvmConfig::default());
    vm.set_trace_sink(Box::new(RingBufferSink::new(64)));
    let r = vm.run(&mut m);
    assert_eq!(r.exit, ExitReason::Halted);
    let ring: Box<RingBufferSink> = take_sink(&mut vm);
    let kinds: Vec<&'static str> = ring.events().map(|e| e.kind()).collect();
    assert_eq!(
        kinds,
        vec!["trap_begin", "decode", "bind", "emulate", "commit"]
    );
    // The whole lifecycle is anchored to the one faulting rip, and the
    // decode was a cold miss.
    let mut evs = ring.events();
    let begin = *evs.next().unwrap();
    let TraceEvent::TrapBegin { rip, .. } = begin else {
        panic!("expected TrapBegin, got {begin:?}");
    };
    assert!(ring.events().all(|e| e.rip() == Some(rip)));
    assert!(matches!(
        ring.events().nth(1),
        Some(TraceEvent::Decode { hit: false, .. })
    ));
    // And the cycles recorded in the trace match what accounting charged.
    let traced_decode: u64 = ring
        .events()
        .filter_map(|e| match e {
            TraceEvent::Decode { cycles, .. } => Some(*cycles),
            _ => None,
        })
        .sum();
    assert_eq!(traced_decode, r.stats.cycles.decode);
}

#[test]
fn ring_buffer_post_mortem_ends_with_the_runtime_error() {
    // A correctness trap with no side-table entry aborts the run; the ring
    // tail must show the structured error as its final event.
    let mut a = Asm::new();
    a.emit(Inst::Trap {
        kind: TrapKind::Correctness,
        id: 3,
    });
    a.halt();
    let p = a.finish();
    let mut m = machine(&p);
    let mut vm = Fpvm::new(Vanilla, FpvmConfig::default());
    vm.set_trace_sink(Box::new(RingBufferSink::new(8)));
    let r = vm.run(&mut m);
    assert!(matches!(r.exit, ExitReason::RuntimeError(_)));
    let ring: Box<RingBufferSink> = take_sink(&mut vm);
    let last = ring.events().last().copied().expect("trace not empty");
    assert_eq!(
        last,
        TraceEvent::RuntimeError {
            stage: Stage::Correctness,
            rip: fpvm_machine::CODE_BASE,
            site: Some(3),
        }
    );
    assert!(ring.dump().contains("runtime_error"));
}

#[test]
fn stats_identical_with_tracing_on_and_off() {
    let p = hot_cold_program(300);
    // Off: the default NullSink.
    let mut m_off = machine(&p);
    let mut vm_off = Fpvm::new(Vanilla, FpvmConfig::default());
    let r_off = vm_off.run(&mut m_off);
    // On: ring + profiler see every event.
    let mut m_on = machine(&p);
    let mut vm_on = Fpvm::new(Vanilla, FpvmConfig::default());
    vm_on.set_trace_sink(Box::new(fpvm_core::FanoutSink::new(vec![
        Box::new(RingBufferSink::new(1024)),
        Box::new(ProfilerSink::new()),
    ])));
    let r_on = vm_on.run(&mut m_on);
    // Teardown: unpack the fanout and recover both owned sinks.
    let fan: Box<fpvm_core::FanoutSink> = take_sink(&mut vm_on);
    let mut sinks = fan.into_sinks().into_iter();
    let ring = sinks.next().unwrap().downcast::<RingBufferSink>().unwrap();
    let prof = sinks.next().unwrap().downcast::<ProfilerSink>().unwrap();
    assert!(!ring.is_empty(), "ring saw the run");
    assert!(prof.events() > 0, "profiler saw the run");
    // Enabling telemetry must not perturb any deterministic statistic,
    // any guest-visible state, or the instruction/cycle accounting that
    // Fig. 9 is built from.
    assert_eq!(
        r_on.stats.deterministic_view(),
        r_off.stats.deterministic_view()
    );
    assert_eq!(r_on.icount, r_off.icount);
    assert_eq!(r_on.fp_icount, r_off.fp_icount);
    assert_eq!(m_on.output, m_off.output);
    assert_eq!(m_on.xmm, m_off.xmm);
}

#[test]
fn profiler_top_site_is_what_trap_and_patch_patches() {
    let iters = 500;
    let p = hot_cold_program(iters);
    // Pass 1: profile without patching to rank the sites.
    let mut m = machine(&p);
    let mut vm = Fpvm::new(Vanilla, FpvmConfig::default());
    vm.set_trace_sink(Box::new(ProfilerSink::new()));
    assert_eq!(vm.run(&mut m).exit, ExitReason::Halted);
    let prof: Box<ProfilerSink> = take_sink(&mut vm);
    let top = prof.hot_sites(2);
    assert_eq!(top.len(), 2, "two distinct FP sites trapped");
    let (hot_rip, hot) = (&top[0].0, &top[0].1);
    let (cold_rip, cold) = (&top[1].0, &top[1].1);
    assert_eq!(hot.traps, iters as u64, "hot loop traps every iteration");
    assert_eq!(cold.traps, 1, "cold site traps once");
    // Pass 2: heuristic trap-and-patch patches the profiler's top site.
    let cfg = FpvmConfig {
        trap_and_patch: true,
        ..FpvmConfig::default()
    };
    let mut m2 = machine(&p);
    let mut vm2 = Fpvm::new(Vanilla, cfg);
    let r2 = vm2.run(&mut m2);
    assert_eq!(r2.exit, ExitReason::Halted);
    assert!(
        vm2.is_patched(*hot_rip),
        "top-1 profiled rip {hot_rip:#x} must be patched"
    );
    // Pass 3: profiler-guided selection patches ONLY the ranked site.
    let mut m3 = machine(&p);
    let mut vm3 = Fpvm::new(Vanilla, cfg);
    vm3.restrict_patching([*hot_rip]);
    vm3.set_trace_sink(Box::new(ProfilerSink::new()));
    let r3 = vm3.run(&mut m3);
    assert_eq!(r3.exit, ExitReason::Halted);
    assert!(vm3.is_patched(*hot_rip));
    assert!(
        !vm3.is_patched(*cold_rip),
        "allowlist excludes the cold site"
    );
    assert_eq!(r3.stats.sites_patched, 1);
    let prof3: Box<ProfilerSink> = take_sink(&mut vm3);
    assert!(prof3.site(*hot_rip).unwrap().patched);
    // Guided patching converts the hot site's traps into patch calls.
    assert!(r3.stats.patch_fast + r3.stats.patch_slow >= (iters - 1) as u64);
    assert!(r3.stats.fp_traps < iters as u64 / 2);
}

#[test]
fn pressure_triggered_gc_fires_with_epoch_not_due() {
    // Regression for the arena-pressure branch of `Fpvm::maybe_gc`: live
    // cells ≥ gc_pressure must trigger a pass even when the epoch trigger
    // is unreachable.
    let p = single_trap_program();
    let cfg = FpvmConfig {
        gc_epoch: u64::MAX, // epoch never due
        gc_pressure: 8,
        ..FpvmConfig::default()
    };
    let mut m = machine(&p);
    let mut vm = Fpvm::new(Vanilla, cfg);
    // Pre-fill the arena past the pressure threshold with unreachable
    // values; the first trip through the run loop must collect them.
    for i in 0..64 {
        vm.arena.alloc(i as f64);
    }
    let r = vm.run(&mut m);
    assert_eq!(r.exit, ExitReason::Halted);
    assert!(r.stats.gc_passes >= 1, "pressure trigger must fire");
    let first = &r.stats.gc_records[0];
    assert!(
        first.before as u64 >= 8,
        "pass ran at ≥ gc_pressure live cells (before = {})",
        first.before
    );
    assert!(first.freed >= 63, "unreachable pre-fill is collected");

    // Control: identical run below the threshold never collects.
    let cfg_quiet = FpvmConfig {
        gc_epoch: u64::MAX,
        gc_pressure: 1 << 20,
        ..FpvmConfig::default()
    };
    let mut m2 = machine(&p);
    let mut vm2 = Fpvm::new(Vanilla, cfg_quiet);
    for i in 0..64 {
        vm2.arena.alloc(i as f64);
    }
    let r2 = vm2.run(&mut m2);
    assert_eq!(r2.exit, ExitReason::Halted);
    assert_eq!(
        r2.stats.gc_passes, 0,
        "neither trigger due → no pass in maybe_gc"
    );
}
