//! Integration tests for the trap-and-emulate runtime: §5.2-style
//! validation (Vanilla ≡ native), alternative-arithmetic effects,
//! correctness traps, trap-and-patch, the GC under load, and the
//! limitation cases of §2.

use fpvm_arith::{ArithSystem, BigFloatCtx, PositCtx, Vanilla};
use fpvm_core::{ExitReason, Fpvm, FpvmConfig, SideTableEntry};
use fpvm_machine::{
    encode, AluOp, Asm, Cond, CostModel, Event, ExtFn, Gpr, Inst, Machine, Mem, OutputEvent,
    TrapKind, Xmm, XM,
};

fn native_output(p: &fpvm_machine::Program) -> Vec<OutputEvent> {
    let mut m = Machine::new(CostModel::r815());
    let ev = fpvm_core::run_native(&mut m, p, 100_000_000);
    assert!(matches!(ev, Event::Halted), "native run: {ev:?}");
    m.output
}

fn virt_run<A: ArithSystem>(
    p: &fpvm_machine::Program,
    arith: A,
    cfg: FpvmConfig,
) -> (fpvm_core::RunReport, Vec<OutputEvent>, Fpvm<A>) {
    let mut m = Machine::new(CostModel::r815());
    m.load_program(p);
    let mut fpvm = Fpvm::new(arith, cfg);
    let report = fpvm.run(&mut m);
    (report, m.output.clone(), fpvm)
}

/// A small program with lots of rounding: iterated logistic map
/// x <- r·x·(1−x), printing each iterate.
fn logistic_program(iters: i64) -> fpvm_machine::Program {
    let mut a = Asm::new();
    let x0 = a.f64m(0.34567);
    let r = a.f64m(3.71);
    let one = a.f64m(1.0);
    a.movsd(Xmm(2), x0); // x
    a.mov_ri(Gpr::RCX, 0);
    let top = a.here_label();
    let done = a.label();
    a.cmp_ri(Gpr::RCX, iters);
    a.jcc(Cond::Ge, done);
    // t = 1 - x
    a.movsd(Xmm(3), one);
    a.subsd(Xmm(3), Xmm(2));
    // x = r * x * t
    a.mulsd(Xmm(2), r);
    a.mulsd(Xmm(2), Xmm(3));
    a.movsd(Xmm(0), XM::Reg(Xmm(2)));
    a.call_ext(ExtFn::PrintF64);
    a.alu_ri(AluOp::Add, Gpr::RCX, 1);
    a.jmp(top);
    a.bind(done);
    a.halt();
    a.finish()
}

#[test]
fn validation_vanilla_bit_identical() {
    // §5.2: "When run under FPVM, we used the Vanilla math implementation…
    // In all of the cases, the results were identical."
    let p = logistic_program(50);
    let native = native_output(&p);
    let (report, virt, _) = virt_run(&p, Vanilla, FpvmConfig::default());
    assert_eq!(report.exit, ExitReason::Halted);
    assert_eq!(native, virt, "Vanilla must be bit-identical to native");
    assert!(report.stats.fp_traps > 50, "rounding ops must trap");
}

#[test]
fn bigfloat_diverges_from_ieee_on_chaotic_map() {
    // §5.4: higher precision changes the answer for chaotic dynamics.
    let p = logistic_program(200);
    let native = native_output(&p);
    let (report, virt, _) = virt_run(&p, BigFloatCtx::new(200), FpvmConfig::default());
    assert_eq!(report.exit, ExitReason::Halted);
    assert_eq!(native.len(), virt.len());
    // Early iterates agree closely, late iterates diverge.
    let f = |o: &OutputEvent| match o {
        OutputEvent::F64(b) => f64::from_bits(*b),
        _ => unreachable!(),
    };
    assert!((f(&native[0]) - f(&virt[0])).abs() < 1e-12);
    let last = native.len() - 1;
    assert!(
        (f(&native[last]) - f(&virt[last])).abs() > 1e-6,
        "chaotic divergence expected: {} vs {}",
        f(&native[last]),
        f(&virt[last])
    );
}

#[test]
fn posit_system_runs_the_same_binary() {
    let p = logistic_program(20);
    let (report, virt, _) = virt_run(&p, PositCtx::<64, 3>, FpvmConfig::default());
    assert_eq!(report.exit, ExitReason::Halted);
    assert_eq!(virt.len(), 20);
    // Values stay in [0, 1]-ish (the logistic map's range) — sanity that
    // posit arithmetic is actually computing.
    for o in &virt {
        if let OutputEvent::F64(b) = o {
            let v = f64::from_bits(*b);
            assert!((0.0..=1.0).contains(&v), "{v}");
        }
    }
}

#[test]
fn decode_cache_hits_dominate_loops() {
    let p = logistic_program(300);
    let (report, _, _) = virt_run(&p, Vanilla, FpvmConfig::default());
    let s = &report.stats;
    // §5.3 footnote: "the decode cache hit rate is nearly 100%".
    assert!(
        s.decode_hit_rate() > 0.95,
        "hit rate {}",
        s.decode_hit_rate()
    );
    // Without the cache every trap decodes.
    let cfg = FpvmConfig {
        decode_cache: false,
        ..FpvmConfig::default()
    };
    let (r2, _, _) = virt_run(&p, Vanilla, cfg);
    assert_eq!(r2.stats.decode_hits, 0);
    assert_eq!(r2.stats.decode_misses, r2.stats.fp_traps);
    assert!(r2.cycles > report.cycles, "no cache must cost more cycles");
}

#[test]
fn comparisons_on_boxed_values_branch_correctly() {
    // A boxed (promoted) value flows into ucomisd; the emulated compare
    // must produce the right branch direction.
    let mut a = Asm::new();
    let c1 = a.f64m(0.1);
    let c2 = a.f64m(0.2);
    let c3 = a.f64m(0.25);
    let t = a.label();
    let end = a.label();
    a.movsd(Xmm(0), c1);
    a.addsd(Xmm(0), c2); // traps -> boxed 0.30000000000000004ish
    a.movsd(Xmm(1), c3);
    a.ucomisd(Xmm(0), Xmm(1)); // boxed vs 0.25: traps (sNaN), emulated
    a.jcc(Cond::A, t);
    a.mov_ri(Gpr::RAX, 0);
    a.jmp(end);
    a.bind(t);
    a.mov_ri(Gpr::RAX, 1);
    a.bind(end);
    a.halt();
    let p = a.finish();
    let (report, _, _) = virt_run(&p, Vanilla, FpvmConfig::default());
    assert_eq!(report.exit, ExitReason::Halted);
    let mut m = Machine::new(CostModel::r815());
    m.load_program(&p);
    let mut fpvm = Fpvm::new(Vanilla, FpvmConfig::default());
    fpvm.run(&mut m);
    assert_eq!(m.gpr[0], 1, "0.3 > 0.25 must hold through the box");
}

#[test]
fn cvt_on_boxed_value() {
    let mut a = Asm::new();
    let c1 = a.f64m(0.1);
    let c2 = a.f64m(0.2);
    let big = a.f64m(1e18);
    a.movsd(Xmm(0), c1);
    a.addsd(Xmm(0), c2); // boxed
    a.mulsd(Xmm(0), big); // boxed ~3.0e17
    a.cvttsd2si(Gpr::RAX, Xmm(0)); // boxed input: IE trap, emulated
    a.halt();
    let p = a.finish();
    let mut m = Machine::new(CostModel::r815());
    m.load_program(&p);
    let mut fpvm = Fpvm::new(Vanilla, FpvmConfig::default());
    let report = fpvm.run(&mut m);
    assert_eq!(report.exit, ExitReason::Halted);
    let expect = ((0.1f64 + 0.2) * 1e18).trunc() as i64;
    assert_eq!(m.gpr[0] as i64, expect);
}

#[test]
fn universal_nan_flows_as_true_nan() {
    // 0/0 under any arithmetic system is NaN; it must propagate and the
    // unordered compare must see it (§2 "universal NaNs").
    let mut a = Asm::new();
    let z = a.f64m(0.0);
    let unord = a.label();
    let end = a.label();
    a.movsd(Xmm(0), z);
    a.divsd(Xmm(0), z); // IE trap -> emulated 0/0 -> NaN shadow
    a.ucomisd(Xmm(0), Xmm(0));
    a.jcc(Cond::P, unord);
    a.mov_ri(Gpr::RAX, 0);
    a.jmp(end);
    a.bind(unord);
    a.mov_ri(Gpr::RAX, 1);
    a.bind(end);
    a.halt();
    let p = a.finish();
    let mut m = Machine::new(CostModel::r815());
    m.load_program(&p);
    let mut fpvm = Fpvm::new(BigFloatCtx::new(100), FpvmConfig::default());
    let report = fpvm.run(&mut m);
    assert_eq!(report.exit, ExitReason::Halted);
    assert_eq!(m.gpr[0], 1, "NaN must compare unordered");
}

#[test]
fn gc_collects_dead_temporaries() {
    // Run enough iterations with a tiny epoch to force collections.
    let p = logistic_program(500);
    let cfg = FpvmConfig {
        gc_epoch: 2_000,
        ..FpvmConfig::default()
    };
    let mut m = Machine::new(CostModel::r815());
    m.load_program(&p);
    let mut fpvm = Fpvm::new(Vanilla, cfg);
    let run = fpvm.run(&mut m);
    assert_eq!(run.exit, ExitReason::Halted);
    // Collect the tail allocations made since the last epoch, then snapshot.
    fpvm.force_gc(&mut m);
    let report = fpvm.run(&mut m); // machine already halted; returns stats
    assert_eq!(report.exit, ExitReason::Halted);
    let s = &report.stats;
    assert!(s.gc_passes > 0, "GC must have run");
    let total_freed: usize = s.gc_records.iter().map(|r| r.freed).sum();
    assert!(total_freed > 0, "temporaries must be collected");
    // §5.3: "> 95% of shadow values are collected on each pass" — here the
    // only persistent box is x itself (plus a couple in registers).
    let last = s.gc_records.last().unwrap();
    assert!(last.alive < 10, "alive after pass: {}", last.alive);
    assert!(fpvm.arena.live() < 10);
}

#[test]
fn parallel_gc_agrees_with_serial() {
    let p = logistic_program(300);
    let mk = |parallel| FpvmConfig {
        gc_epoch: 2_000,
        gc_parallel: parallel,
        ..FpvmConfig::default()
    };
    let (r1, o1, _) = virt_run(&p, Vanilla, mk(false));
    let (r2, o2, _) = virt_run(&p, Vanilla, mk(true));
    assert_eq!(o1, o2);
    assert_eq!(r1.stats.boxes_created, r2.stats.boxes_created);
    let freed1: usize = r1.stats.gc_records.iter().map(|r| r.freed).sum();
    let freed2: usize = r2.stats.gc_records.iter().map(|r| r.freed).sum();
    assert_eq!(freed1, freed2);
}

#[test]
fn trap_and_patch_reduces_traps() {
    let p = logistic_program(400);
    let (base, out_base, _) = virt_run(&p, Vanilla, FpvmConfig::default());
    let cfg = FpvmConfig {
        trap_and_patch: true,
        ..FpvmConfig::default()
    };
    let (tp, out_tp, _) = virt_run(&p, Vanilla, cfg);
    assert_eq!(out_base, out_tp, "patching must not change results");
    let s = &tp.stats;
    assert!(s.sites_patched >= 2, "loop sites must be patched");
    // Each site traps once, then runs via patch calls.
    assert!(
        s.fp_traps < base.stats.fp_traps / 10,
        "traps {} vs {}",
        s.fp_traps,
        base.stats.fp_traps
    );
    assert!(s.patch_fast + s.patch_slow > 300);
    // §3.2: when boxed operands are frequent, trap-and-patch is much
    // cheaper than trap-and-emulate.
    assert!(
        tp.cycles < base.cycles / 2,
        "{} vs {}",
        tp.cycles,
        base.cycles
    );
}

#[test]
fn correctness_trap_demotes_and_reexecutes() {
    // Build a program with a movq leak, hand-patch it the way the static
    // patcher does, and check the integer world sees a real double.
    let mut a = Asm::new();
    let c1 = a.f64m(0.1);
    let c2 = a.f64m(0.2);
    a.movsd(Xmm(0), c1);
    a.addsd(Xmm(0), c2); // boxed after trap
    let site = a.here();
    a.movq_xg(Gpr::RAX, Xmm(0)); // leak: would expose the box
    a.halt();
    let p = a.finish();

    // Patch the movq with a correctness trap (id 0) like the patcher does.
    let original = Inst::MovQXG {
        dst: Gpr::RAX,
        src: Xmm(0),
    };
    let orig_len = fpvm_machine::encoded_len(&original);
    let mut patched = p.clone();
    let mut bytes = Vec::new();
    encode(
        &Inst::Trap {
            kind: TrapKind::Correctness,
            id: 0,
        },
        &mut bytes,
    );
    while bytes.len() < orig_len {
        encode(&Inst::Nop, &mut bytes);
    }
    let off = (site - fpvm_machine::CODE_BASE) as usize;
    patched.code[off..off + orig_len].copy_from_slice(&bytes);

    let mut m = Machine::new(CostModel::r815());
    m.load_program(&patched);
    let mut fpvm = Fpvm::new(Vanilla, FpvmConfig::default());
    fpvm.set_side_table(vec![SideTableEntry {
        addr: site,
        original,
        len: orig_len as u8,
    }]);
    let report = fpvm.run(&mut m);
    assert_eq!(report.exit, ExitReason::Halted);
    assert_eq!(report.stats.correctness_traps, 1);
    assert_eq!(report.stats.correctness_demotions, 1);
    // rax holds the demoted double's bits, not a NaN-box.
    assert_eq!(f64::from_bits(m.gpr[0]), 0.1 + 0.2);
    assert!(fpvm_nanbox::decode(m.gpr[0]).is_none());
}

#[test]
fn unpatched_leak_corrupts_as_the_paper_warns() {
    // The same program WITHOUT the correctness patch: the integer world
    // sees the NaN-box ("a sea of undefined behavior", §4.2).
    let mut a = Asm::new();
    let c1 = a.f64m(0.1);
    let c2 = a.f64m(0.2);
    a.movsd(Xmm(0), c1);
    a.addsd(Xmm(0), c2);
    a.movq_xg(Gpr::RAX, Xmm(0));
    a.halt();
    let p = a.finish();
    let mut m = Machine::new(CostModel::r815());
    m.load_program(&p);
    let mut fpvm = Fpvm::new(Vanilla, FpvmConfig::default());
    fpvm.run(&mut m);
    assert!(
        fpvm_nanbox::decode(m.gpr[0]).is_some(),
        "without patching, the box leaks into rax"
    );
}

#[test]
fn math_interposition_routes_to_arith() {
    let mut a = Asm::new();
    let half = a.f64m(0.5);
    a.movsd(Xmm(0), half);
    a.call_ext(ExtFn::Sin);
    a.call_ext(ExtFn::PrintF64);
    a.halt();
    let p = a.finish();
    let (report, out, _) = virt_run(&p, BigFloatCtx::new(200), FpvmConfig::default());
    assert_eq!(report.exit, ExitReason::Halted);
    assert_eq!(report.stats.math_interposed, 1);
    match &out[0] {
        OutputEvent::F64(bits) => {
            assert_eq!(f64::from_bits(*bits), 0.5f64.sin(), "demoted sin(0.5)");
        }
        other => panic!("{other:?}"),
    }
    // Without interposition, the demote-at-call-site path still produces
    // the correct double (sin of the demoted argument).
    let cfg = FpvmConfig {
        interpose_math: false,
        ..FpvmConfig::default()
    };
    let (report, out, _) = virt_run(&p, BigFloatCtx::new(200), cfg);
    assert_eq!(report.stats.math_interposed, 0);
    match &out[0] {
        OutputEvent::F64(bits) => assert_eq!(f64::from_bits(*bits), 0.5f64.sin()),
        other => panic!("{other:?}"),
    }
}

#[test]
fn always_demote_strawman_is_correct_but_never_gains_precision() {
    let p = logistic_program(100);
    let native = native_output(&p);
    let cfg = FpvmConfig {
        always_demote: true,
        ..FpvmConfig::default()
    };
    // Even at 500-bit precision, demoting every result back to f64 makes
    // the run identical to native — "obviates the goal" (§4.2).
    let (report, virt, _) = virt_run(&p, BigFloatCtx::new(500), cfg);
    assert_eq!(report.exit, ExitReason::Halted);
    assert_eq!(native, virt);
    assert_eq!(report.stats.boxes_created, 0);
}

#[test]
fn fp_dense_code_traps_dense_integer_code_does_not() {
    // An integer-only loop must never invoke FPVM.
    let mut a = Asm::new();
    a.mov_ri(Gpr::RAX, 0);
    a.mov_ri(Gpr::RCX, 0);
    let top = a.here_label();
    let done = a.label();
    a.cmp_ri(Gpr::RCX, 1000);
    a.jcc(Cond::Ge, done);
    a.alu_rr(AluOp::Add, Gpr::RAX, Gpr::RCX);
    a.alu_ri(AluOp::Add, Gpr::RCX, 1);
    a.jmp(top);
    a.bind(done);
    a.halt();
    let p = a.finish();
    let (report, _, _) = virt_run(&p, Vanilla, FpvmConfig::default());
    assert_eq!(report.exit, ExitReason::Halted);
    assert_eq!(
        report.stats.fp_traps, 0,
        "no FP -> zero virtualization overhead"
    );
    assert_eq!(report.stats.cycles.total(), 0);
}

#[test]
fn exact_fp_ops_run_at_full_speed() {
    // Dyadic-rational arithmetic never rounds: zero traps, zero overhead —
    // the trap-and-emulate promise ("no overhead unless an alternative
    // arithmetic value is produced or consumed").
    let mut a = Asm::new();
    let c1 = a.f64m(1.5);
    let c2 = a.f64m(0.25);
    a.movsd(Xmm(0), c1);
    for _ in 0..50 {
        a.addsd(Xmm(0), c2);
        a.subsd(Xmm(0), c2);
    }
    a.halt();
    let p = a.finish();
    let (report, _, _) = virt_run(&p, BigFloatCtx::new(200), FpvmConfig::default());
    assert_eq!(report.exit, ExitReason::Halted);
    assert_eq!(report.stats.fp_traps, 0);
}

#[test]
fn packed_instructions_emulate_per_lane() {
    let mut a = Asm::new();
    let v1 = a.u128c([0.1f64.to_bits(), 10.0f64.to_bits()]);
    let v2 = a.u128c([0.2f64.to_bits(), 20.5f64.to_bits()]);
    a.movapd(Xmm(0), Mem::abs(v1 as i64));
    a.emit(Inst::AddPd {
        dst: Xmm(0),
        src: XM::Mem(Mem::abs(v2 as i64)),
    });
    // Print both lanes: move lane1 down via a second movapd + shuffle-free
    // trick (store + reload).
    let tmp = a.global("tmp", 16);
    a.movapd(Mem::abs(tmp as i64), XM::Reg(Xmm(0)));
    a.movsd(Xmm(0), Mem::abs(tmp as i64));
    a.call_ext(ExtFn::PrintF64);
    a.movsd(Xmm(0), Mem::abs(tmp as i64 + 8));
    a.call_ext(ExtFn::PrintF64);
    a.halt();
    let p = a.finish();
    let (report, out, _) = virt_run(&p, Vanilla, FpvmConfig::default());
    assert_eq!(report.exit, ExitReason::Halted);
    // Lane0 (0.1+0.2) rounds -> whole instruction emulated, both lanes
    // boxed; lane1 (10+20.5 = 30.5 exact) still must be correct.
    assert!(report.stats.emulated_lanes >= 2);
    assert_eq!(
        out,
        vec![
            OutputEvent::F64((0.1 + 0.2f64).to_bits()),
            OutputEvent::F64(30.5f64.to_bits())
        ]
    );
}

#[test]
fn delivery_modes_change_cost_not_results() {
    use fpvm_machine::DeliveryMode;
    let p = logistic_program(100);
    let mut cycles = Vec::new();
    let mut outs = Vec::new();
    for mode in [
        DeliveryMode::UserSignal,
        DeliveryMode::KernelModule,
        DeliveryMode::PipelineInterrupt,
    ] {
        let cfg = FpvmConfig {
            delivery: mode,
            ..FpvmConfig::default()
        };
        let (r, o, _) = virt_run(&p, Vanilla, cfg);
        cycles.push(r.cycles);
        outs.push(o);
    }
    assert_eq!(outs[0], outs[1]);
    assert_eq!(outs[1], outs[2]);
    assert!(cycles[0] > cycles[1], "kernel module cheaper than signals");
    assert!(cycles[1] > cycles[2], "pipeline interrupt cheapest (§6.2)");
}

#[test]
fn gc_pressure_trigger_bounds_arena() {
    // Even with an enormous epoch, the arena-pressure trigger must keep
    // the shadow population bounded.
    let p = logistic_program(2000);
    let cfg = FpvmConfig {
        gc_epoch: u64::MAX,
        gc_pressure: 500,
        ..FpvmConfig::default()
    };
    let mut m = Machine::new(CostModel::r815());
    m.load_program(&p);
    let mut fpvm = Fpvm::new(Vanilla, cfg);
    let report = fpvm.run(&mut m);
    assert_eq!(report.exit, ExitReason::Halted);
    assert!(report.stats.gc_passes > 0, "pressure trigger must fire");
    // The arena never grew far past the pressure threshold + one epoch of
    // allocation between checks.
    assert!(
        fpvm.arena.capacity() < 5000,
        "arena capacity {} should stay bounded",
        fpvm.arena.capacity()
    );
}

#[test]
fn stale_box_after_gc_reads_as_universal_nan() {
    // A box whose shadow value was collected (because the box only lived
    // in unscanned dead-stack space) must read back as a true NaN rather
    // than resurrect garbage.
    let mut a = Asm::new();
    let c1 = a.f64m(0.1);
    let c2 = a.f64m(0.2);
    let g = a.global_f64("keep", 0.0);
    let unord = a.label();
    let end = a.label();
    a.movsd(Xmm(0), c1);
    a.addsd(Xmm(0), c2); // boxed
    a.movsd(Mem::abs(g as i64), Xmm(0)); // live in a global
    a.halt(); // pause point for the test driver
              // Phase 2 (re-entered by the test): consume the stale box.
    a.bind(unord);
    a.bind(end);
    let p = a.finish();
    let mut m = Machine::new(CostModel::r815());
    m.load_program(&p);
    let mut fpvm = Fpvm::new(Vanilla, FpvmConfig::default());
    let r = fpvm.run(&mut m);
    assert_eq!(r.exit, ExitReason::Halted);
    // Snapshot the box, then clobber its memory root and collect.
    let bits = m.mem.read_u64(g).unwrap();
    let key = fpvm_nanbox::decode(bits).expect("global holds a box");
    m.mem.write_u64(g, 0).unwrap();
    m.xmm = [[0; 2]; 16];
    m.gpr[4] = m.mem.size() - 64; // rsp
    fpvm.force_gc(&mut m);
    assert!(fpvm.shadow(key).is_none(), "shadow must be collected");
    // Emulating an op on the stale box yields NaN semantics.
    m.xmm[0][0] = fpvm_nanbox::encode(key);
    m.xmm[1][0] = 1.0f64.to_bits();
    let inst = Inst::AddSd {
        dst: Xmm(0),
        src: fpvm_machine::XM::Reg(Xmm(1)),
    };
    // Drive one emulation through the public surface: a fresh machine
    // program that consumes the stale box.
    let mut a2 = Asm::new();
    a2.addsd(Xmm(0), Xmm(1));
    a2.halt();
    let p2 = a2.finish();
    let mut m2 = Machine::new(CostModel::r815());
    m2.load_program(&p2);
    m2.xmm[0][0] = fpvm_nanbox::encode(key);
    m2.xmm[1][0] = 1.0f64.to_bits();
    let r2 = fpvm.run(&mut m2);
    assert_eq!(r2.exit, ExitReason::Halted);
    // Result is a (boxed) NaN: demote it and check.
    let out = m2.xmm[0][0];
    let nan_result = match fpvm_nanbox::decode(out) {
        Some(k) => {
            let v = fpvm.shadow(k).copied().unwrap();
            v.is_nan()
        }
        None => f64::from_bits(out).is_nan(),
    };
    assert!(nan_result, "stale box + 1.0 must be NaN");
    let _ = inst;
}
