//! Integration tests for the staged engine surface: decode-cache
//! invalidation under trap-and-patch, structured runtime errors, handler
//! registration, and stats derived through real runs.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, Mutex};

use fpvm_arith::Vanilla;
use fpvm_core::runtime::{
    DecodeCache, DirectMappedCache, ExitReason, Fpvm, FpvmConfig, RuntimeError, Stage,
};
use fpvm_machine::{AluOp, Asm, Cond, CostModel, ExtFn, Gpr, Inst, Machine, TrapKind, Xmm, XM};

/// Iterated logistic map x <- r·x·(1−x): every iteration rounds, so every
/// iteration traps.
fn logistic_program(iters: i64) -> fpvm_machine::Program {
    let mut a = Asm::new();
    let x0 = a.f64m(0.34567);
    let r = a.f64m(3.71);
    let one = a.f64m(1.0);
    a.movsd(Xmm(2), x0);
    a.mov_ri(Gpr::RCX, 0);
    let top = a.here_label();
    let done = a.label();
    a.cmp_ri(Gpr::RCX, iters);
    a.jcc(Cond::Ge, done);
    a.movsd(Xmm(3), one);
    a.subsd(Xmm(3), Xmm(2));
    a.mulsd(Xmm(2), r);
    a.mulsd(Xmm(2), Xmm(3));
    a.movsd(Xmm(0), XM::Reg(Xmm(2)));
    a.call_ext(ExtFn::PrintF64);
    a.alu_ri(AluOp::Add, Gpr::RCX, 1);
    a.jmp(top);
    a.bind(done);
    a.halt();
    a.finish()
}

/// A decode cache that records every invalidation, delegating storage to
/// the real direct-mapped policy. The shared log is `Arc<Mutex<_>>`, not
/// `Rc<RefCell<_>>`: `DecodeCache: Send` so caches can cross into fleet
/// workers, and custom caches must satisfy the same bound.
struct SpyCache {
    inner: DirectMappedCache,
    invalidated: Arc<Mutex<Vec<u64>>>,
}

impl DecodeCache for SpyCache {
    fn prepare(&mut self, code_len: usize, fingerprint: u64) {
        self.inner.prepare(code_len, fingerprint);
    }
    fn lookup(&self, rip: u64) -> Option<(Inst, u8)> {
        self.inner.lookup(rip)
    }
    fn insert(&mut self, rip: u64, entry: (Inst, u8)) {
        self.inner.insert(rip, entry);
    }
    fn invalidate(&mut self, rip: u64) {
        self.invalidated.lock().unwrap().push(rip);
        self.inner.invalidate(rip);
    }
    fn name(&self) -> &'static str {
        "spy"
    }
}

/// Trap-and-patch must invalidate the decode cache at every site it
/// rewrites: the cached entry predates the patch, so a later decode at
/// that rip would resurrect the original instruction (the old
/// `decode_cache.remove(&rip)` in the monolithic runtime).
#[test]
fn trap_and_patch_invalidates_decode_cache_at_patched_sites() {
    let p = logistic_program(50);
    let cfg = FpvmConfig {
        trap_and_patch: true,
        ..FpvmConfig::default()
    };
    let mut m = Machine::new(CostModel::r815());
    m.load_program(&p);
    let mut fpvm = Fpvm::new(Vanilla, cfg);
    let invalidated = Arc::new(Mutex::new(Vec::new()));
    fpvm.set_decode_cache(Box::new(SpyCache {
        inner: DirectMappedCache::new(),
        invalidated: Arc::clone(&invalidated),
    }));
    let report = fpvm.run(&mut m);
    assert_eq!(report.exit, ExitReason::Halted);
    let sites = report.stats.sites_patched;
    assert!(sites >= 2, "loop FP sites must be patched, got {sites}");
    let inv = invalidated.lock().unwrap();
    assert_eq!(
        inv.len() as u64,
        sites,
        "each patched site must invalidate its cache entry exactly once"
    );
    // The invalidated entries are really gone, and the machine's code at
    // those addresses now decodes as a patch trap, not the stale FP op.
    for &rip in inv.iter() {
        assert_eq!(fpvm.decode_cache_name(), "spy");
        let off = (rip - fpvm_machine::CODE_BASE) as usize;
        let (inst, _) = fpvm_machine::decode(m.mem.code_bytes(), off).unwrap();
        assert!(
            matches!(
                inst,
                Inst::Trap {
                    kind: TrapKind::PatchCall,
                    ..
                }
            ),
            "patched site at {rip:#x} decodes as {inst:?}"
        );
    }
}

/// A software trap with no side-table entry exits with a structured
/// error naming the stage, the rip, and the bad site id.
#[test]
fn missing_side_table_entry_reports_stage_rip_and_site() {
    let mut a = Asm::new();
    a.emit(Inst::Trap {
        kind: TrapKind::Correctness,
        id: 3,
    });
    a.halt();
    let p = a.finish();
    let trap_rip = fpvm_machine::CODE_BASE;
    let mut m = Machine::new(CostModel::r815());
    m.load_program(&p);
    let mut fpvm = Fpvm::new(Vanilla, FpvmConfig::default());
    let report = fpvm.run(&mut m);
    let ExitReason::RuntimeError(e) = report.exit else {
        panic!("expected runtime error, got {:?}", report.exit);
    };
    assert_eq!(e.stage, Stage::Correctness);
    assert_eq!(e.rip, trap_rip);
    assert_eq!(e.site, Some(3));
    assert!(
        report.exit.to_string().contains("site id 3"),
        "{}",
        report.exit
    );
}

/// An unknown patch-call id likewise names the patch stage and the id.
#[test]
fn unknown_patch_site_reports_patch_stage() {
    let mut a = Asm::new();
    a.emit(Inst::Trap {
        kind: TrapKind::PatchCall,
        id: 9,
    });
    a.halt();
    let p = a.finish();
    let mut m = Machine::new(CostModel::r815());
    m.load_program(&p);
    let mut fpvm = Fpvm::new(Vanilla, FpvmConfig::default());
    let report = fpvm.run(&mut m);
    assert_eq!(
        report.exit,
        ExitReason::RuntimeError(RuntimeError {
            stage: Stage::Patch,
            rip: fpvm_machine::CODE_BASE,
            site: Some(9),
        })
    );
}

static EXT_CALLS_SEEN: AtomicUsize = AtomicUsize::new(0);

/// Handlers are registered, not hard-coded: a custom external-call handler
/// observes every call and can still delegate to the built-in wrapper.
#[test]
fn custom_ext_call_handler_wraps_the_default() {
    let p = logistic_program(10);
    let mut m = Machine::new(CostModel::r815());
    m.load_program(&p);
    let mut fpvm = Fpvm::new(Vanilla, FpvmConfig::default());
    fpvm.handlers_mut().ext_call = |vm, m, f, rip, next_rip| {
        EXT_CALLS_SEEN.fetch_add(1, Ordering::Relaxed);
        vm.on_ext_call(m, f, rip, next_rip)
    };
    let report = fpvm.run(&mut m);
    assert_eq!(report.exit, ExitReason::Halted);
    assert_eq!(EXT_CALLS_SEEN.load(Ordering::Relaxed), 10);
    assert_eq!(report.stats.output_wrapped, 10);
    assert_eq!(m.output.len(), 10);
}

/// `avg_trap_cost` and `decode_hit_rate` derived through a real run match
/// the deterministic cost model exactly: every component the figure calls
/// deterministic is pinned against the R815 constants.
#[test]
fn stats_derivations_match_cost_model_through_real_run() {
    let p = logistic_program(200);
    let mut m = Machine::new(CostModel::r815());
    m.load_program(&p);
    let mut fpvm = Fpvm::new(Vanilla, FpvmConfig::default());
    let report = fpvm.run(&mut m);
    assert_eq!(report.exit, ExitReason::Halted);
    let s = &report.stats;
    let c = &s.cycles;
    let cost = CostModel::r815();

    // Deterministic Fig. 9 components, pinned to the model constants.
    assert!(s.fp_traps > 0);
    assert_eq!(c.hardware, s.fp_traps * cost.hw_exception);
    assert_eq!(c.kernel, s.fp_traps * cost.kernel_dispatch);
    assert_eq!(c.user_delivery, s.fp_traps * cost.user_delivery);
    assert_eq!(
        c.decode,
        s.decode_hits * cost.decode_hit + s.decode_misses * cost.decode_miss
    );
    assert_eq!(c.bind, s.fp_traps * cost.bind);
    assert_eq!(c.correctness_dispatch, 0);
    assert_eq!(c.patch, 0);

    // The derived figures recompute from the same breakdown.
    let numer =
        (c.hardware + c.kernel + c.user_delivery + c.decode + c.bind + c.emulate + c.gc) as f64;
    assert_eq!(s.avg_trap_cost(), numer / s.fp_traps as f64);
    assert_eq!(
        s.decode_hit_rate(),
        s.decode_hits as f64 / (s.decode_hits + s.decode_misses) as f64
    );
    assert!(s.decode_hit_rate() > 0.95, "{}", s.decode_hit_rate());

    // Live stats on the runtime agree with the report snapshot.
    assert_eq!(fpvm.stats().fp_traps, s.fp_traps);
    assert_eq!(fpvm.stats().cycles, s.cycles);
}

/// The direct-mapped cache and the ablation (passthrough) agree on
/// results; only costs differ — and the ablation's misses equal its traps.
#[test]
fn decode_cache_ablation_still_functional() {
    let p = logistic_program(100);
    let run = |cfg: FpvmConfig| {
        let mut m = Machine::new(CostModel::r815());
        m.load_program(&p);
        let mut fpvm = Fpvm::new(Vanilla, cfg);
        let r = fpvm.run(&mut m);
        (r, m.output, fpvm.decode_cache_name())
    };
    let (on, out_on, name_on) = run(FpvmConfig::default());
    let (off, out_off, name_off) = run(FpvmConfig {
        decode_cache: false,
        ..FpvmConfig::default()
    });
    assert_eq!(name_on, "direct-mapped");
    assert_eq!(name_off, "passthrough");
    assert_eq!(out_on, out_off);
    assert_eq!(off.stats.decode_hits, 0);
    assert_eq!(off.stats.decode_misses, off.stats.fp_traps);
    assert!(off.cycles > on.cycles, "no cache must cost more cycles");
}
