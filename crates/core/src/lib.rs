//! # fpvm-core — the hybrid FPVM runtime
//!
//! The paper's primary contribution (§4): a trap-and-emulate floating point
//! virtual machine that runs an existing binary on an alternative
//! arithmetic system, combined with static-analysis correctness traps for
//! the x64 instructions that cannot trap on NaN-boxed values, an
//! LD_PRELOAD-style math/output interposition layer, a conservative
//! mark-and-sweep shadow-value collector, and an optional trap-and-patch
//! engine (§3.2).
//!
//! Typical use:
//!
//! ```
//! use fpvm_core::{Fpvm, FpvmConfig, run_native};
//! use fpvm_arith::BigFloatCtx;
//! use fpvm_machine::{Asm, CostModel, Machine, Xmm, ExtFn};
//!
//! // A tiny guest: print 1.0 / 3.0.
//! let mut a = Asm::new();
//! let one = a.f64m(1.0);
//! let three = a.f64m(3.0);
//! a.movsd(Xmm(0), one);
//! a.divsd(Xmm(0), three);
//! a.call_ext(ExtFn::PrintF64);
//! a.halt();
//! let prog = a.finish();
//!
//! // Virtualize it onto 200-bit arbitrary precision arithmetic.
//! let mut m = Machine::new(CostModel::r815());
//! m.load_program(&prog);
//! let mut fpvm = Fpvm::new(BigFloatCtx::new(200), FpvmConfig::default());
//! let report = fpvm.run(&mut m);
//! assert_eq!(report.stats.fp_traps, 1); // the divsd rounded and trapped
//! assert!(fpvm.rendered_output()[0].starts_with("3.333333333333333333"));
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod bound;
pub mod engine;
pub mod gc;
pub mod metrics;
pub mod profile;
pub mod stats;
pub mod trace;

/// The staged engine under its historical name: `fpvm_core::runtime::*`
/// paths keep working.
pub use engine as runtime;

pub use bound::{
    bind, plan, Bound, BoundLane, BoundPlan, Dst, Loc, PlanLane, PlanLoc, Planability,
};
pub use engine::{
    Accounting, Counter, DecodeCache, DirectMappedCache, DirectMappedEmulateCache, EmulateCache,
    EmulateEntry, ExitReason, Fpvm, FpvmConfig, HandlerTable, HashMapCache, PassthroughCache,
    PassthroughEmulateCache, RunReport, RuntimeError, SideTableEntry, Stage, TrapFrame,
};
pub use metrics::{EngineMetrics, MetricStage};
pub use profile::{ArenaSample, Log2Histogram, ProfilerSink, SiteProfile};
pub use stats::{Component, CycleBreakdown, GcRecord, Stats};
pub use trace::{ExtDisposition, FanoutSink, NullSink, RingBufferSink, TraceEvent, TraceSink};

use fpvm_machine::{Event, Machine, Program};

/// Run a program natively (no virtualization): all exceptions masked,
/// external calls executed by the machine. The §5.2 baseline.
pub fn run_native(m: &mut Machine, p: &Program, max_insts: u64) -> Event {
    m.load_program(p);
    m.hook_ext = false;
    m.mxcsr.mask_all();
    m.run(max_insts)
}
