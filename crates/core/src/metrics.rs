//! The engine's wall-clock metrics plane: sampled host-ns stage timers
//! around the trap pipeline, exported as a [`MetricsSnapshot`].
//!
//! Fig. 9 accounting simulates trap-delivery cycles from the cost model;
//! this module measures what the *host* actually pays per pipeline stage
//! (frame/decode/bind/emulate/commit and ext-call interposition) so the
//! interpreter-speed work has real trend lines to read. It is gated behind
//! [`crate::engine::FpvmConfig::metrics`] and follows the tracing
//! discipline from PR 2: disabled costs one cached branch per trap, and
//! Fig. 9 accounting is bit-identical on/off (pinned in
//! `crates/core/tests/metrics.rs`).
//!
//! Per-trap work is on the order of a microsecond, so timing every stage
//! of every trap would dominate the thing being measured. Instead the
//! plane samples: every `2^sample_shift`-th trap (and ext-call) runs with
//! timers armed. The sampling decision is a pure function of the trap
//! sequence number — deterministic guest execution means the *set* of
//! sampled traps, and therefore every histogram's sample count, is
//! identical across runs and worker counts; only the nanosecond values
//! are host-dependent. Snapshots split accordingly: `fpvm_stage_samples_*`
//! counters are deterministic, `fpvm_stage_ns_*` histograms are not.

use crate::stats::{Component, Stats};
use fpvm_obs::{Log2Histogram, MetricsSnapshot};

/// One wall-clock-timed stage of the trap pipeline.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MetricStage {
    /// The whole `on_fp_trap` frame: trap entry to resume. Its histogram
    /// is the ns/trap distribution.
    Frame,
    /// Instruction decode (cache hit or full decode).
    Decode,
    /// Operand binding.
    Bind,
    /// Per-lane evaluation in the alternative arithmetic.
    Emulate,
    /// Per-lane result commit (boxing + writeback).
    Commit,
    /// External-call interposition (math/output/native).
    ExtCall,
}

impl MetricStage {
    /// Every stage, in pipeline order.
    pub const ALL: [MetricStage; 6] = [
        MetricStage::Frame,
        MetricStage::Decode,
        MetricStage::Bind,
        MetricStage::Emulate,
        MetricStage::Commit,
        MetricStage::ExtCall,
    ];

    /// Dense index in [`MetricStage::ALL`] order.
    pub fn index(self) -> usize {
        match self {
            MetricStage::Frame => 0,
            MetricStage::Decode => 1,
            MetricStage::Bind => 2,
            MetricStage::Emulate => 3,
            MetricStage::Commit => 4,
            MetricStage::ExtCall => 5,
        }
    }

    /// Metric-name label.
    pub fn label(self) -> &'static str {
        match self {
            MetricStage::Frame => "frame",
            MetricStage::Decode => "decode",
            MetricStage::Bind => "bind",
            MetricStage::Emulate => "emulate",
            MetricStage::Commit => "commit",
            MetricStage::ExtCall => "ext_call",
        }
    }
}

/// The per-engine metrics plane: sampling state plus one host-ns histogram
/// per stage. Owned by `Accounting` when `FpvmConfig::metrics` is on;
/// never constructed otherwise.
#[derive(Debug, Clone)]
pub struct EngineMetrics {
    shift: u32,
    trap_seq: u64,
    ext_seq: u64,
    stage_ns: [Log2Histogram; MetricStage::ALL.len()],
}

impl EngineMetrics {
    /// A fresh plane sampling every `2^shift`-th trap (shift 0 = every
    /// trap).
    pub fn new(shift: u32) -> Self {
        EngineMetrics {
            shift: shift.min(63),
            trap_seq: 0,
            ext_seq: 0,
            stage_ns: Default::default(),
        }
    }

    fn mask(&self) -> u64 {
        (1u64 << self.shift) - 1
    }

    /// Advance the trap sequence and decide whether this trap is sampled.
    /// The first trap is always sampled (seq 0 hits every mask), so short
    /// runs still produce data.
    pub fn trap_tick(&mut self) -> bool {
        let sampled = self.trap_seq & self.mask() == 0;
        self.trap_seq += 1;
        sampled
    }

    /// Advance the ext-call sequence and decide whether it is sampled.
    pub fn ext_tick(&mut self) -> bool {
        let sampled = self.ext_seq & self.mask() == 0;
        self.ext_seq += 1;
        sampled
    }

    /// Record one sampled stage latency.
    pub fn record(&mut self, stage: MetricStage, ns: u64) {
        self.stage_ns[stage.index()].record(ns);
    }

    /// One stage's host-ns histogram.
    pub fn stage_histogram(&self, stage: MetricStage) -> &Log2Histogram {
        &self.stage_ns[stage.index()]
    }

    /// Total samples recorded across all stages.
    pub fn samples(&self) -> u64 {
        self.stage_ns.iter().map(|h| h.count()).sum()
    }

    /// Export the plane as a [`MetricsSnapshot`], folding in the run's
    /// [`Stats`] so the deterministic execution counters ride along:
    ///
    /// - `fpvm_*_total` counters and `fpvm_cycles_*` — from `Stats`,
    ///   deterministic except the host-measured cycle components
    ///   (emulate/gc/correctness_handler, exactly the fields
    ///   `Stats::deterministic_view` zeroes) and the ns totals;
    /// - `fpvm_stage_samples_{stage}` — deterministic sample counts (the
    ///   sampling decision is a pure function of the trap sequence);
    /// - `fpvm_stage_ns_{stage}` and `fpvm_trap_ns` — host-measured
    ///   histograms, flagged nondeterministic.
    pub fn snapshot(&self, stats: &Stats) -> MetricsSnapshot {
        let mut s = MetricsSnapshot::new();
        for (name, v) in [
            ("fpvm_traps_total", stats.fp_traps),
            ("fpvm_decode_hits_total", stats.decode_hits),
            ("fpvm_decode_misses_total", stats.decode_misses),
            ("fpvm_emulated_total", stats.emulated),
            ("fpvm_emulated_lanes_total", stats.emulated_lanes),
            ("fpvm_promotions_total", stats.promotions),
            ("fpvm_boxes_created_total", stats.boxes_created),
            ("fpvm_demotions_total", stats.demotions),
            ("fpvm_correctness_traps_total", stats.correctness_traps),
            ("fpvm_nan_hole_traps_total", stats.nan_hole_traps),
            (
                "fpvm_correctness_demotions_total",
                stats.correctness_demotions,
            ),
            ("fpvm_math_interposed_total", stats.math_interposed),
            ("fpvm_output_wrapped_total", stats.output_wrapped),
            ("fpvm_patch_fast_total", stats.patch_fast),
            ("fpvm_patch_slow_total", stats.patch_slow),
            ("fpvm_sites_patched_total", stats.sites_patched),
            ("fpvm_gc_passes_total", stats.gc_passes),
        ] {
            s.set_counter(name, true, v);
        }
        for c in Component::ALL {
            let det = !matches!(
                c,
                Component::Emulate | Component::Gc | Component::CorrectnessHandler
            );
            s.set_counter(
                &format!("fpvm_cycles_{}", c.label()),
                det,
                stats.cycles.get(c),
            );
        }
        s.set_counter("fpvm_emulate_ns_total", false, stats.emulate_ns);
        s.set_counter("fpvm_gc_ns_total", false, stats.gc_ns);
        for stage in MetricStage::ALL {
            let h = self.stage_histogram(stage);
            s.set_counter(
                &format!("fpvm_stage_samples_{}", stage.label()),
                true,
                h.count(),
            );
            s.set_histogram(
                &format!("fpvm_stage_ns_{}", stage.label()),
                false,
                h.clone(),
            );
        }
        s.set_histogram(
            "fpvm_trap_ns",
            false,
            self.stage_histogram(MetricStage::Frame).clone(),
        );
        s
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stage_index_matches_all_order() {
        for (i, s) in MetricStage::ALL.into_iter().enumerate() {
            assert_eq!(s.index(), i, "{}", s.label());
        }
    }

    #[test]
    fn sampling_is_a_pure_function_of_the_sequence() {
        let mut m = EngineMetrics::new(2); // every 4th
        let picks: Vec<bool> = (0..9).map(|_| m.trap_tick()).collect();
        assert_eq!(
            picks,
            [true, false, false, false, true, false, false, false, true]
        );
        let mut every = EngineMetrics::new(0);
        assert!((0..5).all(|_| every.trap_tick()));
        // Ext-calls tick an independent sequence.
        let mut e = EngineMetrics::new(1);
        assert!(e.ext_tick());
        assert!(!e.ext_tick());
        assert!(e.trap_tick(), "trap seq unaffected by ext ticks");
    }

    #[test]
    fn snapshot_splits_deterministic_from_measured() {
        let mut m = EngineMetrics::new(0);
        m.record(MetricStage::Frame, 1200);
        m.record(MetricStage::Decode, 300);
        let stats = Stats {
            fp_traps: 5,
            emulated: 4,
            ..Default::default()
        };
        let s = m.snapshot(&stats);
        assert_eq!(s.counter("fpvm_traps_total"), Some(5));
        assert!(s.get("fpvm_traps_total").unwrap().deterministic);
        assert_eq!(s.counter("fpvm_stage_samples_frame"), Some(1));
        assert!(s.get("fpvm_stage_samples_frame").unwrap().deterministic);
        assert!(!s.get("fpvm_stage_ns_frame").unwrap().deterministic);
        assert_eq!(s.histogram("fpvm_stage_ns_decode").unwrap().max(), 300);
        assert_eq!(s.histogram("fpvm_trap_ns").unwrap().max(), 1200);
        assert!(!s.get("fpvm_cycles_emulate").unwrap().deterministic);
        assert!(s.get("fpvm_cycles_hardware").unwrap().deterministic);
        // The deterministic view drops every ns-valued metric.
        let d = s.deterministic_view();
        assert!(d.get("fpvm_stage_ns_frame").is_none());
        assert!(d.get("fpvm_trap_ns").is_none());
        assert!(d.get("fpvm_emulate_ns_total").is_none());
        assert_eq!(d.counter("fpvm_stage_samples_decode"), Some(1));
    }
}
