//! The shadow-value garbage collector (§4.1 "Garbage collection").
//!
//! "A relatively naïve conservative mark-and-sweep collector is used. …
//! Every epoch, the garbage collector scans all writable program memory for
//! data that appears to be a NaN-box. It then decodes it, and sets the mark
//! bit if it is located in the data structure. It then sweeps through the
//! set of all allocated values and frees their backing storage if they are
//! not marked."
//!
//! The pointer graph is bipartite (program memory → shadow arena, never
//! back), so a single scan-mark-sweep pass is complete — there is nothing
//! to trace transitively. The scan covers the data segment, the live heap,
//! the live stack, and the XMM + GPR register files (a boxed value can sit
//! in a GPR after a `movq` leak).
//!
//! An optional **parallel mark** phase splits the memory scan across
//! scoped threads (an extension over the paper's collector; the ablation
//! bench compares the two). The worker count is capped at the host's
//! available parallelism rather than one thread per chunk, so a pass
//! nested inside an `fpvm-fleet` worker (which already owns one core)
//! degrades gracefully instead of oversubscribing the machine; fleet jobs
//! normally leave `gc_parallel` off and let the fleet parallelize across
//! guests instead. Candidate order never affects the outcome — marking is
//! idempotent and the sweep reads only the mark bits — so serial and
//! parallel passes free exactly the same cells.

use crate::stats::GcRecord;
use fpvm_arith::ShadowArena;
use fpvm_machine::Machine;
use fpvm_nanbox::ShadowKey;
use std::time::Instant;

/// Scan a byte range at 8-byte granularity for decodable NaN-boxes.
fn scan_range(bytes: &[u8], out: &mut Vec<ShadowKey>) {
    for chunk in bytes.chunks_exact(8) {
        let bits = u64::from_le_bytes(chunk.try_into().unwrap());
        if let Some(key) = fpvm_nanbox::decode(bits) {
            out.push(key);
        }
    }
}

/// Run one GC pass. Returns the pass record.
pub fn collect<V>(m: &Machine, arena: &mut ShadowArena<V>, parallel: bool) -> GcRecord {
    let start = Instant::now();
    let before = arena.live();
    arena.clear_marks();
    let rsp = m.gpr[4]; // RSP
    let ranges = m.mem.writable_ranges(rsp);
    let mut scanned: u64 = 0;
    let mut candidates: Vec<ShadowKey> = Vec::new();
    // Register files first (cheap).
    for reg in &m.xmm {
        for &lane in reg {
            if let Some(k) = fpvm_nanbox::decode(lane) {
                candidates.push(k);
            }
        }
    }
    for &g in &m.gpr {
        if let Some(k) = fpvm_nanbox::decode(g) {
            candidates.push(k);
        }
    }
    if parallel {
        // Split every range into chunks, then scan them on a bounded set
        // of scoped workers (not one thread per chunk: a pass running
        // inside an already-parallel host, e.g. a fleet worker, must not
        // oversubscribe the machine).
        const CHUNK: usize = 256 * 1024;
        let mut slices: Vec<&[u8]> = Vec::new();
        for &(lo, hi) in &ranges {
            if hi > lo {
                scanned += hi - lo;
                let s = m.mem.slice(lo, hi);
                let mut off = 0;
                while off < s.len() {
                    let end = (off + CHUNK).min(s.len());
                    slices.push(&s[off..end]);
                    off = end;
                }
            }
        }
        let workers = std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1)
            .min(slices.len().max(1));
        let results: Vec<Vec<ShadowKey>> = std::thread::scope(|scope| {
            let handles: Vec<_> = (0..workers)
                .map(|w| {
                    let slices = &slices;
                    scope.spawn(move || {
                        let mut v = Vec::new();
                        // Round-robin chunk assignment: worker w scans
                        // chunks w, w+workers, w+2*workers, …
                        for s in slices.iter().skip(w).step_by(workers) {
                            scan_range(s, &mut v);
                        }
                        v
                    })
                })
                .collect();
            handles.into_iter().map(|h| h.join().unwrap()).collect()
        });
        for v in results {
            candidates.extend(v);
        }
    } else {
        for &(lo, hi) in &ranges {
            if hi > lo {
                scanned += hi - lo;
                scan_range(m.mem.slice(lo, hi), &mut candidates);
            }
        }
    }
    for key in candidates {
        arena.mark(key);
    }
    let freed = arena.sweep();
    GcRecord {
        before,
        freed,
        alive: arena.live(),
        scanned_bytes: scanned,
        ns: start.elapsed().as_nanos() as u64,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fpvm_machine::{Asm, CostModel, DATA_BASE};
    use fpvm_nanbox::encode;

    fn machine() -> Machine {
        let mut a = Asm::new();
        a.global("slots", 64);
        a.halt();
        let p = a.finish();
        let mut m = Machine::new(CostModel::r815());
        m.load_program(&p);
        m
    }

    #[test]
    fn reachable_values_survive_unreachable_freed() {
        let mut m = machine();
        let mut arena: ShadowArena<f64> = ShadowArena::new();
        let k_mem = arena.alloc(1.0);
        let k_reg = arena.alloc(2.0);
        let k_gpr = arena.alloc(3.0);
        let k_dead = arena.alloc(4.0);
        // Place boxes: one in the data segment, one in an XMM lane, one in
        // a GPR (movq leak), one nowhere.
        m.mem.write_u64(DATA_BASE, encode(k_mem)).unwrap();
        m.xmm[7][1] = encode(k_reg);
        m.gpr[3] = encode(k_gpr);
        let rec = collect(&m, &mut arena, false);
        assert_eq!(rec.before, 4);
        assert_eq!(rec.freed, 1);
        assert_eq!(rec.alive, 3);
        assert!(arena.contains(k_mem));
        assert!(arena.contains(k_reg));
        assert!(arena.contains(k_gpr));
        assert!(!arena.contains(k_dead));
        assert!(rec.scanned_bytes > 0);
    }

    #[test]
    fn stack_is_scanned() {
        let mut m = machine();
        let mut arena: ShadowArena<f64> = ShadowArena::new();
        let k = arena.alloc(5.0);
        let rsp = m.gpr[4];
        m.mem.write_u64(rsp + 8, encode(k)).unwrap();
        collect(&m, &mut arena, false);
        assert!(arena.contains(k), "value on the live stack must survive");
        // Value below rsp (dead frame) is NOT scanned: it gets collected —
        // this is exactly the implicit garbage collection by function
        // return the paper describes.
        let k2 = arena.alloc(6.0);
        m.mem.write_u64(rsp - 256, encode(k2)).unwrap();
        collect(&m, &mut arena, false);
        assert!(!arena.contains(k2), "dead-frame value must be collected");
    }

    #[test]
    fn parallel_matches_serial() {
        let mut m = machine();
        let mut arena_s: ShadowArena<f64> = ShadowArena::new();
        let mut arena_p: ShadowArena<f64> = ShadowArena::new();
        let mut keys = Vec::new();
        for i in 0..500 {
            let ks = arena_s.alloc(i as f64);
            let kp = arena_p.alloc(i as f64);
            assert_eq!(ks, kp);
            keys.push(ks);
        }
        // Scatter half of them in memory.
        for (i, &k) in keys.iter().enumerate() {
            if i % 2 == 0 {
                m.mem
                    .write_u64(DATA_BASE + 8 * (i as u64 % 8), encode(k))
                    .unwrap();
            }
        }
        // (Only 8 slots: later writes overwrite earlier ones; both
        // collectors must agree exactly on what survives.)
        let rs = collect(&m, &mut arena_s, false);
        let rp = collect(&m, &mut arena_p, true);
        assert_eq!(rs.freed, rp.freed);
        assert_eq!(rs.alive, rp.alive);
        for &k in &keys {
            assert_eq!(arena_s.contains(k), arena_p.contains(k));
        }
    }

    #[test]
    fn false_positives_are_conservative_not_fatal() {
        // An ordinary double that bit-matches nothing and a quiet NaN do
        // not mark anything; a stale sNaN pattern marks nothing (dead key).
        let mut m = machine();
        let mut arena: ShadowArena<f64> = ShadowArena::new();
        m.mem.write_u64(DATA_BASE, f64::NAN.to_bits()).unwrap();
        m.mem
            .write_u64(DATA_BASE + 8, 0x7FF0_0000_0000_9999)
            .unwrap(); // sNaN, never allocated
        let rec = collect(&m, &mut arena, false);
        assert_eq!(rec.freed, 0);
        assert_eq!(rec.alive, 0);
    }
}
