//! Runtime statistics: the measurement substrate for Figs. 9, 10 and 12.
//!
//! Cycle accounting is split per component exactly as Fig. 9 breaks down
//! the cost of virtualizing one floating point instruction: hardware
//! overhead, kernel overhead, (user) delivery, decode, bind, emulate,
//! garbage collection, and the correctness-trap costs introduced by static
//! analysis. Components that do real work in this reproduction (emulation,
//! GC) are *measured* in host nanoseconds and converted at the profile
//! clock; the simulated components (trap delivery) are charged from the
//! cost model — see EXPERIMENTS.md.

/// One component of the Fig. 9 per-trap cost breakdown. Every cycle the
/// engine charges is attributed to exactly one component through the
/// [`crate::engine::Accounting`] sink.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Component {
    /// Microarchitectural exception raise + return.
    Hardware,
    /// Kernel dispatch.
    Kernel,
    /// Kernel→user signal delivery + sigreturn.
    UserDelivery,
    /// Instruction decode (cache hits + misses).
    Decode,
    /// Operand binding.
    Bind,
    /// Emulation (arith-system work + dispatch + boxing).
    Emulate,
    /// Garbage collection (amortized over traps).
    Gc,
    /// Correctness-trap dispatch (delivery of static-analysis traps).
    CorrectnessDispatch,
    /// Correctness-trap handling (demotion checks + re-execution).
    CorrectnessHandler,
    /// Trap-and-patch check + call costs.
    Patch,
}

impl Component {
    /// Every component, in Fig. 9 bar order.
    pub const ALL: [Component; 10] = [
        Component::Hardware,
        Component::Kernel,
        Component::UserDelivery,
        Component::Decode,
        Component::Bind,
        Component::Emulate,
        Component::Gc,
        Component::CorrectnessDispatch,
        Component::CorrectnessHandler,
        Component::Patch,
    ];

    /// Dense index of this component in [`Component::ALL`] order (used by
    /// the profiler's per-component histogram array).
    pub fn index(self) -> usize {
        match self {
            Component::Hardware => 0,
            Component::Kernel => 1,
            Component::UserDelivery => 2,
            Component::Decode => 3,
            Component::Bind => 4,
            Component::Emulate => 5,
            Component::Gc => 6,
            Component::CorrectnessDispatch => 7,
            Component::CorrectnessHandler => 8,
            Component::Patch => 9,
        }
    }

    /// Short label used in tables.
    pub fn label(self) -> &'static str {
        match self {
            Component::Hardware => "hardware",
            Component::Kernel => "kernel",
            Component::UserDelivery => "user_delivery",
            Component::Decode => "decode",
            Component::Bind => "bind",
            Component::Emulate => "emulate",
            Component::Gc => "gc",
            Component::CorrectnessDispatch => "correctness_dispatch",
            Component::CorrectnessHandler => "correctness_handler",
            Component::Patch => "patch",
        }
    }
}

/// Per-component cycle breakdown (the Fig. 9 bars).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CycleBreakdown {
    /// Microarchitectural exception raise + return.
    pub hardware: u64,
    /// Kernel dispatch.
    pub kernel: u64,
    /// Kernel→user signal delivery + sigreturn.
    pub user_delivery: u64,
    /// Instruction decode (cache hits + misses).
    pub decode: u64,
    /// Operand binding.
    pub bind: u64,
    /// Emulation (arith-system work + dispatch + boxing).
    pub emulate: u64,
    /// Garbage collection (amortized over traps).
    pub gc: u64,
    /// Correctness-trap dispatch (delivery of static-analysis traps).
    pub correctness_dispatch: u64,
    /// Correctness-trap handling (demotion checks + re-execution).
    pub correctness_handler: u64,
    /// Trap-and-patch check + call costs.
    pub patch: u64,
}

impl CycleBreakdown {
    /// Cycles attributed to one component.
    pub fn get(&self, c: Component) -> u64 {
        match c {
            Component::Hardware => self.hardware,
            Component::Kernel => self.kernel,
            Component::UserDelivery => self.user_delivery,
            Component::Decode => self.decode,
            Component::Bind => self.bind,
            Component::Emulate => self.emulate,
            Component::Gc => self.gc,
            Component::CorrectnessDispatch => self.correctness_dispatch,
            Component::CorrectnessHandler => self.correctness_handler,
            Component::Patch => self.patch,
        }
    }

    /// Attribute `cycles` to one component.
    pub fn add(&mut self, c: Component, cycles: u64) {
        let slot = match c {
            Component::Hardware => &mut self.hardware,
            Component::Kernel => &mut self.kernel,
            Component::UserDelivery => &mut self.user_delivery,
            Component::Decode => &mut self.decode,
            Component::Bind => &mut self.bind,
            Component::Emulate => &mut self.emulate,
            Component::Gc => &mut self.gc,
            Component::CorrectnessDispatch => &mut self.correctness_dispatch,
            Component::CorrectnessHandler => &mut self.correctness_handler,
            Component::Patch => &mut self.patch,
        };
        *slot += cycles;
    }

    /// Total virtualization cycles.
    pub fn total(&self) -> u64 {
        self.hardware
            + self.kernel
            + self.user_delivery
            + self.decode
            + self.bind
            + self.emulate
            + self.gc
            + self.correctness_dispatch
            + self.correctness_handler
            + self.patch
    }
}

/// One garbage collection pass (a Fig. 10 data point).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct GcRecord {
    /// Live shadow values before the pass.
    pub before: usize,
    /// Cells freed by the sweep.
    pub freed: usize,
    /// Live cells after.
    pub alive: usize,
    /// Bytes of program memory scanned.
    pub scanned_bytes: u64,
    /// Pass latency in host nanoseconds.
    pub ns: u64,
}

/// Aggregate runtime statistics.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct Stats {
    /// Hardware FP exceptions delivered to FPVM.
    pub fp_traps: u64,
    /// Decode-cache hits.
    pub decode_hits: u64,
    /// Decode-cache misses (full decodes).
    pub decode_misses: u64,
    /// Instructions emulated (includes re-dispatch after patching).
    pub emulated: u64,
    /// Scalar lanes emulated (≥ `emulated`; packed ops emulate per lane).
    pub emulated_lanes: u64,
    /// Unboxed f64 → alternative-system promotions.
    pub promotions: u64,
    /// Shadow values allocated (boxes created).
    pub boxes_created: u64,
    /// Shadow → f64 demotions (printing, externals, correctness traps).
    pub demotions: u64,
    /// Correctness traps taken (static-analysis patched sites).
    pub correctness_traps: u64,
    /// §6.2 hardware NaN-hole traps taken (trap-on-NaN-load extension).
    pub nan_hole_traps: u64,
    /// Correctness traps that found a boxed operand (check "failed" — real
    /// demotion work was needed).
    pub correctness_demotions: u64,
    /// Math-library calls interposed and emulated.
    pub math_interposed: u64,
    /// Output-wrapper invocations (printing problem handled).
    pub output_wrapped: u64,
    /// Patch-site fast-path executions (trap-and-patch, conditions held).
    pub patch_fast: u64,
    /// Patch-site slow-path executions (emulation needed).
    pub patch_slow: u64,
    /// Sites dynamically patched by the trap-and-patch engine.
    pub sites_patched: u64,
    /// GC passes.
    pub gc_passes: u64,
    /// GC records (Fig. 10).
    pub gc_records: Vec<GcRecord>,
    /// Cycle breakdown (Fig. 9).
    pub cycles: CycleBreakdown,
    /// Measured emulation time (host ns).
    pub emulate_ns: u64,
    /// Measured GC time (host ns).
    pub gc_ns: u64,
}

impl Stats {
    /// Average virtualization cost per hardware trap, in cycles (the Fig. 9
    /// headline number). Excludes correctness and patch costs, which the
    /// figure reports amortized separately.
    pub fn avg_trap_cost(&self) -> f64 {
        if self.fp_traps == 0 {
            return 0.0;
        }
        let c = &self.cycles;
        (c.hardware + c.kernel + c.user_delivery + c.decode + c.bind + c.emulate + c.gc) as f64
            / self.fp_traps as f64
    }

    /// Fold another run's statistics into this one: every counter and
    /// cycle component sums field-wise, GC records concatenate. Multi-run
    /// experiments aggregate with this instead of hand-summing fields.
    pub fn merge(&mut self, other: &Stats) {
        self.fp_traps += other.fp_traps;
        self.decode_hits += other.decode_hits;
        self.decode_misses += other.decode_misses;
        self.emulated += other.emulated;
        self.emulated_lanes += other.emulated_lanes;
        self.promotions += other.promotions;
        self.boxes_created += other.boxes_created;
        self.demotions += other.demotions;
        self.correctness_traps += other.correctness_traps;
        self.nan_hole_traps += other.nan_hole_traps;
        self.correctness_demotions += other.correctness_demotions;
        self.math_interposed += other.math_interposed;
        self.output_wrapped += other.output_wrapped;
        self.patch_fast += other.patch_fast;
        self.patch_slow += other.patch_slow;
        self.sites_patched += other.sites_patched;
        self.gc_passes += other.gc_passes;
        self.gc_records.extend_from_slice(&other.gc_records);
        for c in Component::ALL {
            self.cycles.add(c, other.cycles.get(c));
        }
        self.emulate_ns += other.emulate_ns;
        self.gc_ns += other.gc_ns;
    }

    /// This run's statistics with every host-measured (nondeterministic)
    /// field zeroed: emulation/GC wall time, the cycle components derived
    /// from them (emulate, gc, correctness-handler), and per-pass GC
    /// latencies. What remains is charged purely from the deterministic
    /// cost model, so two runs of the same guest — or two fleet runs of
    /// the same job set at different worker counts — compare bit-identical
    /// through this view.
    pub fn deterministic_view(&self) -> Stats {
        let mut s = self.clone();
        s.emulate_ns = 0;
        s.gc_ns = 0;
        s.cycles.emulate = 0;
        s.cycles.gc = 0;
        s.cycles.correctness_handler = 0;
        for r in &mut s.gc_records {
            r.ns = 0;
        }
        s
    }

    /// Decode cache hit rate.
    pub fn decode_hit_rate(&self) -> f64 {
        let total = self.decode_hits + self.decode_misses;
        if total == 0 {
            0.0
        } else {
            self.decode_hits as f64 / total as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn breakdown_total() {
        let c = CycleBreakdown {
            hardware: 10,
            kernel: 20,
            emulate: 30,
            patch: 5,
            ..Default::default()
        };
        assert_eq!(c.total(), 65);
    }

    #[test]
    fn component_get_add_cover_every_field() {
        let mut c = CycleBreakdown::default();
        for (i, comp) in Component::ALL.into_iter().enumerate() {
            c.add(comp, (i + 1) as u64);
        }
        for (i, comp) in Component::ALL.into_iter().enumerate() {
            assert_eq!(c.get(comp), (i + 1) as u64, "{}", comp.label());
        }
        assert_eq!(c.total(), (1..=10).sum::<u64>());
    }

    #[test]
    fn component_index_matches_all_order() {
        for (i, c) in Component::ALL.into_iter().enumerate() {
            assert_eq!(c.index(), i, "{}", c.label());
        }
    }

    /// A `Stats` whose every field holds a distinct value derived from
    /// `seed`, so a dropped field in `merge` shows up as a sum mismatch.
    fn filled(seed: u64) -> Stats {
        let mut cycles = CycleBreakdown::default();
        for (i, c) in Component::ALL.into_iter().enumerate() {
            cycles.add(c, seed + 23 + i as u64);
        }
        Stats {
            fp_traps: seed + 1,
            decode_hits: seed + 2,
            decode_misses: seed + 3,
            emulated: seed + 4,
            emulated_lanes: seed + 5,
            promotions: seed + 6,
            boxes_created: seed + 7,
            demotions: seed + 8,
            correctness_traps: seed + 9,
            nan_hole_traps: seed + 10,
            correctness_demotions: seed + 11,
            math_interposed: seed + 12,
            output_wrapped: seed + 13,
            patch_fast: seed + 14,
            patch_slow: seed + 15,
            sites_patched: seed + 16,
            gc_passes: seed + 17,
            gc_records: vec![GcRecord {
                before: (seed + 18) as usize,
                freed: (seed + 19) as usize,
                alive: (seed + 20) as usize,
                scanned_bytes: seed + 21,
                ns: seed + 22,
            }],
            cycles,
            emulate_ns: seed + 40,
            gc_ns: seed + 41,
        }
    }

    #[test]
    fn merge_equals_fieldwise_sum_for_every_field() {
        let a = filled(100);
        let b = filled(5000);
        let mut m = a.clone();
        m.merge(&b);
        assert_eq!(m.fp_traps, a.fp_traps + b.fp_traps);
        assert_eq!(m.decode_hits, a.decode_hits + b.decode_hits);
        assert_eq!(m.decode_misses, a.decode_misses + b.decode_misses);
        assert_eq!(m.emulated, a.emulated + b.emulated);
        assert_eq!(m.emulated_lanes, a.emulated_lanes + b.emulated_lanes);
        assert_eq!(m.promotions, a.promotions + b.promotions);
        assert_eq!(m.boxes_created, a.boxes_created + b.boxes_created);
        assert_eq!(m.demotions, a.demotions + b.demotions);
        assert_eq!(
            m.correctness_traps,
            a.correctness_traps + b.correctness_traps
        );
        assert_eq!(m.nan_hole_traps, a.nan_hole_traps + b.nan_hole_traps);
        assert_eq!(
            m.correctness_demotions,
            a.correctness_demotions + b.correctness_demotions
        );
        assert_eq!(m.math_interposed, a.math_interposed + b.math_interposed);
        assert_eq!(m.output_wrapped, a.output_wrapped + b.output_wrapped);
        assert_eq!(m.patch_fast, a.patch_fast + b.patch_fast);
        assert_eq!(m.patch_slow, a.patch_slow + b.patch_slow);
        assert_eq!(m.sites_patched, a.sites_patched + b.sites_patched);
        assert_eq!(m.gc_passes, a.gc_passes + b.gc_passes);
        assert_eq!(m.gc_records.len(), a.gc_records.len() + b.gc_records.len());
        assert_eq!(m.gc_records[0], a.gc_records[0]);
        assert_eq!(m.gc_records[1], b.gc_records[0]);
        for c in Component::ALL {
            assert_eq!(
                m.cycles.get(c),
                a.cycles.get(c) + b.cycles.get(c),
                "component {}",
                c.label()
            );
        }
        assert_eq!(m.cycles.total(), a.cycles.total() + b.cycles.total());
        assert_eq!(m.emulate_ns, a.emulate_ns + b.emulate_ns);
        assert_eq!(m.gc_ns, a.gc_ns + b.gc_ns);
        // Merging into a default is a clone.
        let mut z = Stats::default();
        z.merge(&a);
        assert_eq!(z, a);
    }

    #[test]
    fn deterministic_view_zeroes_exactly_the_measured_fields() {
        let s = filled(7);
        let d = s.deterministic_view();
        assert_eq!(d.emulate_ns, 0);
        assert_eq!(d.gc_ns, 0);
        assert_eq!(d.cycles.emulate, 0);
        assert_eq!(d.cycles.gc, 0);
        assert_eq!(d.cycles.correctness_handler, 0);
        assert!(d.gc_records.iter().all(|r| r.ns == 0));
        // Everything else survives untouched.
        let mut expect = s.clone();
        expect.emulate_ns = 0;
        expect.gc_ns = 0;
        expect.cycles.emulate = 0;
        expect.cycles.gc = 0;
        expect.cycles.correctness_handler = 0;
        for r in &mut expect.gc_records {
            r.ns = 0;
        }
        assert_eq!(d, expect);
        assert_eq!(s.emulate_ns, 47, "view must not mutate the source");
    }

    #[test]
    fn avg_and_hit_rate() {
        let mut s = Stats::default();
        assert_eq!(s.avg_trap_cost(), 0.0);
        assert_eq!(s.decode_hit_rate(), 0.0);
        s.fp_traps = 2;
        s.cycles.hardware = 100;
        s.cycles.emulate = 100;
        s.cycles.correctness_dispatch = 999; // excluded
        assert_eq!(s.avg_trap_cost(), 100.0);
        s.decode_hits = 99;
        s.decode_misses = 1;
        assert_eq!(s.decode_hit_rate(), 0.99);
    }
}
