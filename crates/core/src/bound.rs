//! Operand binding (§4.1 "Binding").
//!
//! A decoded instruction is *bound* to concrete storage: "an abstract
//! normalized representation, containing direct pointers to the sources and
//! destinations of the instruction, the size of the values being operated
//! on, a simplified op-code which is later used for emulation." Here the
//! "pointers" are [`Loc`]s — resolved register/lane indices or effective
//! addresses — so the emulator "need not handle accesses to memory or
//! registers differently."
//!
//! `addsd xmm0, [rsp]` and `addsd xmm0, xmm1` both bind to
//! `FPVM_OP_ADD`-style [`fpvm_arith::ScalarOp::Add`] with the former's
//! second source pointing at the stack and the latter's at the register
//! file — exactly the paper's example.

use fpvm_arith::{FpFlags, ScalarOp};
use fpvm_machine::{Inst, Machine, Mem, MemFault, Width, Xmm, RM, XM};

/// A resolved operand location.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Loc {
    /// One 64-bit lane of an XMM register.
    XmmLane(u8, u8),
    /// A general-purpose register.
    Gpr(u8),
    /// A resolved guest address.
    Mem(u64),
    /// No operand.
    None,
}

/// Where an emulated result goes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Dst {
    /// An f64 result, NaN-boxed into an XMM lane.
    F64Lane(u8, u8),
    /// An f32 result into the low half of lane 0 (cvtsd2ss).
    F32Lane(u8),
    /// An integer result into a GPR (cvttsd2si), with width.
    Int(u8, Width),
    /// The guest `%rflags` (compares).
    Rflags,
}

/// One bound scalar operation (one lane of the original instruction).
#[derive(Debug, Clone, Copy)]
pub struct BoundLane {
    /// The simplified operation.
    pub op: ScalarOp,
    /// Source operands (f64-typed unless the op is an int conversion).
    pub srcs: [Loc; 3],
    /// Integer source width (CvtI*ToF only).
    pub int_width: Width,
    /// Destination.
    pub dst: Dst,
}

/// A bound instruction: 1 lane (scalar) or 2 (packed).
#[derive(Debug, Clone, Copy)]
pub struct Bound {
    /// The lanes to emulate in order.
    pub lanes: [Option<BoundLane>; 2],
    /// Address of the next instruction (resume point).
    pub next_rip: u64,
}

/// A *symbolic* operand location: the machine-independent half of a
/// [`Loc`]. Register operands are already fully resolved; memory operands
/// keep the addressing form (base/index/scale/disp) so the effective
/// address can be re-resolved against whatever register state holds at
/// each trap. This is what makes a bound plan cacheable per RIP: the plan
/// depends only on the instruction bytes, never on machine state.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PlanLoc {
    /// One 64-bit lane of an XMM register.
    XmmLane(u8, u8),
    /// A general-purpose register.
    Gpr(u8),
    /// An unresolved memory operand plus a byte offset into it (packed
    /// lane 1 reads at +8).
    Mem(Mem, u64),
    /// No operand.
    None,
}

impl PlanLoc {
    /// Resolve against the current machine state (memory operands pay one
    /// effective-address computation; everything else is a re-tag).
    #[inline]
    pub fn resolve(self, m: &Machine) -> Loc {
        match self {
            PlanLoc::XmmLane(r, l) => Loc::XmmLane(r, l),
            PlanLoc::Gpr(r) => Loc::Gpr(r),
            PlanLoc::Mem(mem, off) => Loc::Mem(m.ea(&mem) + off),
            PlanLoc::None => Loc::None,
        }
    }
}

/// The symbolic form of one [`BoundLane`].
#[derive(Debug, Clone, Copy)]
pub struct PlanLane {
    /// The simplified operation.
    pub op: ScalarOp,
    /// Symbolic source operands.
    pub srcs: [PlanLoc; 3],
    /// Integer source width (CvtI*ToF only).
    pub int_width: Width,
    /// Destination.
    pub dst: Dst,
}

impl PlanLane {
    #[inline]
    fn resolve(&self, m: &Machine) -> BoundLane {
        BoundLane {
            op: self.op,
            srcs: [
                self.srcs[0].resolve(m),
                self.srcs[1].resolve(m),
                self.srcs[2].resolve(m),
            ],
            int_width: self.int_width,
            dst: self.dst,
        }
    }
}

/// A memoizable bound-operand plan: everything [`bind`] derives from the
/// instruction alone, with memory operands left symbolic. Resolving a plan
/// against a machine reproduces [`bind`]'s result exactly, at the cost of
/// an effective-address computation per memory operand instead of the full
/// instruction-shape match.
#[derive(Debug, Clone, Copy)]
pub struct BoundPlan {
    /// The lanes to emulate in order.
    pub lanes: [Option<PlanLane>; 2],
    /// Address of the next instruction (resume point).
    pub next_rip: u64,
}

impl BoundPlan {
    /// Resolve every symbolic operand against the current machine state.
    #[inline]
    pub fn resolve(&self, m: &Machine) -> Bound {
        Bound {
            lanes: [
                self.lanes[0].as_ref().map(|l| l.resolve(m)),
                self.lanes[1].as_ref().map(|l| l.resolve(m)),
            ],
            next_rip: self.next_rip,
        }
    }
}

/// Whether an instruction's binding can be memoized.
#[derive(Debug, Clone, Copy)]
pub enum Planability {
    /// The binding is a pure function of the instruction: cache the plan.
    Static(BoundPlan),
    /// The binding reads machine state beyond operand addressing (the
    /// XorPd/AndPd mask inspection): bind fresh at every trap.
    Dynamic,
    /// The instruction has no emulable FP shape.
    Unbindable,
}

/// Read a 64-bit value from a location.
pub fn read_loc(m: &Machine, loc: Loc) -> Result<u64, MemFault> {
    match loc {
        Loc::XmmLane(r, l) => Ok(m.xmm[r as usize][l as usize]),
        Loc::Gpr(r) => Ok(m.gpr[r as usize]),
        Loc::Mem(a) => m.mem.read_u64(a),
        Loc::None => Ok(0),
    }
}

/// Read an integer source of the given width (sign-extended).
pub fn read_int_loc(m: &Machine, loc: Loc, w: Width) -> Result<i64, MemFault> {
    let raw = match loc {
        Loc::Gpr(r) => m.gpr[r as usize],
        Loc::Mem(a) => m.mem.read_int(a, w.bytes())?,
        Loc::XmmLane(r, l) => m.xmm[r as usize][l as usize],
        Loc::None => 0,
    };
    Ok(match w {
        Width::W8 => raw as u8 as i8 as i64,
        Width::W16 => raw as u16 as i16 as i64,
        Width::W32 => raw as u32 as i32 as i64,
        Width::W64 => raw as i64,
    })
}

fn xm_plan(xm: &XM, lane: u8) -> PlanLoc {
    match xm {
        XM::Reg(x) => PlanLoc::XmmLane(x.0, lane),
        XM::Mem(mem) => PlanLoc::Mem(*mem, u64::from(lane) * 8),
    }
}

fn rm_plan(rm: &RM) -> PlanLoc {
    match rm {
        RM::Reg(r) => PlanLoc::Gpr(r.0),
        RM::Mem(mem) => PlanLoc::Mem(*mem, 0),
    }
}

fn scalar2(op: ScalarOp, dst: Xmm, src: &XM) -> PlanLane {
    PlanLane {
        op,
        srcs: [PlanLoc::XmmLane(dst.0, 0), xm_plan(src, 0), PlanLoc::None],
        int_width: Width::W64,
        dst: Dst::F64Lane(dst.0, 0),
    }
}

fn packed2(op: ScalarOp, dst: Xmm, src: &XM, lane: u8) -> PlanLane {
    PlanLane {
        op,
        srcs: [
            PlanLoc::XmmLane(dst.0, lane),
            xm_plan(src, lane),
            PlanLoc::None,
        ],
        int_width: Width::W64,
        dst: Dst::F64Lane(dst.0, lane),
    }
}

/// Derive the machine-independent binding plan of an instruction. The
/// single source of truth for operand shapes: [`bind`] is implemented as
/// `plan(..).resolve(m)`, and the emulate cache memoizes the `Static`
/// plans per RIP so hot traps skip this match entirely.
pub fn plan(inst: &Inst, next_rip: u64) -> Planability {
    use Inst::*;
    use ScalarOp::*;
    let one = |l: PlanLane| {
        Planability::Static(BoundPlan {
            lanes: [Some(l), None],
            next_rip,
        })
    };
    match inst {
        AddSd { dst, src } => one(scalar2(Add, *dst, src)),
        SubSd { dst, src } => one(scalar2(Sub, *dst, src)),
        MulSd { dst, src } => one(scalar2(Mul, *dst, src)),
        DivSd { dst, src } => one(scalar2(Div, *dst, src)),
        MinSd { dst, src } => one(scalar2(Min, *dst, src)),
        MaxSd { dst, src } => one(scalar2(Max, *dst, src)),
        SqrtSd { dst, src } => one(PlanLane {
            op: Sqrt,
            srcs: [xm_plan(src, 0), PlanLoc::None, PlanLoc::None],
            int_width: Width::W64,
            dst: Dst::F64Lane(dst.0, 0),
        }),
        FmaSd { dst, a, b } => one(PlanLane {
            op: Fma,
            srcs: [
                PlanLoc::XmmLane(dst.0, 0),
                PlanLoc::XmmLane(a.0, 0),
                xm_plan(b, 0),
            ],
            int_width: Width::W64,
            dst: Dst::F64Lane(dst.0, 0),
        }),
        AddPd { dst, src } | SubPd { dst, src } | MulPd { dst, src } | DivPd { dst, src } => {
            let op = match inst {
                AddPd { .. } => Add,
                SubPd { .. } => Sub,
                MulPd { .. } => Mul,
                _ => Div,
            };
            Planability::Static(BoundPlan {
                lanes: [
                    Some(packed2(op, *dst, src, 0)),
                    Some(packed2(op, *dst, src, 1)),
                ],
                next_rip,
            })
        }
        UComISd { a, b } => one(PlanLane {
            op: CmpQuiet,
            srcs: [PlanLoc::XmmLane(a.0, 0), xm_plan(b, 0), PlanLoc::None],
            int_width: Width::W64,
            dst: Dst::Rflags,
        }),
        ComISd { a, b } => one(PlanLane {
            op: CmpSignaling,
            srcs: [PlanLoc::XmmLane(a.0, 0), xm_plan(b, 0), PlanLoc::None],
            int_width: Width::W64,
            dst: Dst::Rflags,
        }),
        CvtSi2Sd { dst, src, w } => one(PlanLane {
            op: if matches!(w, Width::W32) {
                CvtI32ToF
            } else {
                CvtI64ToF
            },
            srcs: [rm_plan(src), PlanLoc::None, PlanLoc::None],
            int_width: *w,
            dst: Dst::F64Lane(dst.0, 0),
        }),
        CvtTSd2Si { dst, src, w } => one(PlanLane {
            op: if matches!(w, Width::W32) {
                CvtFToI32
            } else {
                CvtFToI64
            },
            srcs: [xm_plan(src, 0), PlanLoc::None, PlanLoc::None],
            int_width: *w,
            dst: Dst::Int(dst.0, *w),
        }),
        CvtSd2Ss { dst, src } => one(PlanLane {
            op: CvtFToF32,
            srcs: [xm_plan(src, 0), PlanLoc::None, PlanLoc::None],
            int_width: Width::W32,
            dst: Dst::F32Lane(dst.0),
        }),
        CvtSs2Sd { dst, src } => one(PlanLane {
            op: CvtF32ToF,
            srcs: [xm_plan(src, 0), PlanLoc::None, PlanLoc::None],
            int_width: Width::W32,
            dst: Dst::F64Lane(dst.0, 0),
        }),
        // Binding inspects the mask *value*, so the result depends on
        // machine state beyond operand addressing: never memoizable.
        XorPd { .. } | AndPd { .. } => Planability::Dynamic,
        _ => Planability::Unbindable,
    }
}

/// Bind an instruction to operand locations. Returns `None` for
/// instructions the emulator never sees (moves, integer ops, control flow).
pub fn bind(m: &Machine, inst: &Inst, next_rip: u64) -> Option<Bound> {
    match plan(inst, next_rip) {
        Planability::Static(p) => Some(p.resolve(m)),
        Planability::Dynamic => bind_dynamic(m, inst, next_rip),
        Planability::Unbindable => None,
    }
}

/// The data-dependent bindings ([`Planability::Dynamic`]): bitwise FP ops
/// with the canonical compiler masks bind to Neg/Abs — the runtime can
/// then emulate a sign flip on the *shadow value* instead of demoting
/// (used by the compiler-based approach and the smart-bitwise extension;
/// plain static analysis demotes instead).
fn bind_dynamic(m: &Machine, inst: &Inst, next_rip: u64) -> Option<Bound> {
    use Inst::*;
    use ScalarOp::*;
    match inst {
        XorPd { dst, src } | AndPd { dst, src } => {
            let mask = m.read_xm128(src).ok()?;
            let is_xor = matches!(inst, XorPd { .. });
            let sign = fpvm_nanbox::F64_SIGN_BIT;
            let op = match (is_xor, mask) {
                (true, [s0, _]) if s0 == sign => Neg,
                (false, [a0, _]) if a0 == !sign => Abs,
                _ => return None,
            };
            let lane1_active = mask[1] == mask[0];
            let mk = |l: u8| BoundLane {
                op,
                srcs: [Loc::XmmLane(dst.0, l), Loc::None, Loc::None],
                int_width: Width::W64,
                dst: Dst::F64Lane(dst.0, l),
            };
            Some(Bound {
                lanes: [Some(mk(0)), if lane1_active { Some(mk(1)) } else { None }],
                next_rip,
            })
        }
        _ => None,
    }
}

/// Pure softfp evaluation of one bound lane from raw bits — the
/// trap-and-patch *postcondition check* (§3.2): would executing this lane
/// natively raise any event? Returns the would-be result bits and flags
/// without writing anything. `None` for ops whose native result is not a
/// single f64 (compares, conversions) — those take the slow path.
pub fn native_eval(m: &Machine, lane: &BoundLane) -> Option<(u64, FpFlags)> {
    use fpvm_arith::softfp;
    use ScalarOp::*;
    let rd = |loc: Loc| read_loc(m, loc).ok().map(f64::from_bits);
    let (v, f) = match lane.op {
        Add => softfp::add(rd(lane.srcs[0])?, rd(lane.srcs[1])?),
        Sub => softfp::sub(rd(lane.srcs[0])?, rd(lane.srcs[1])?),
        Mul => softfp::mul(rd(lane.srcs[0])?, rd(lane.srcs[1])?),
        Div => softfp::div(rd(lane.srcs[0])?, rd(lane.srcs[1])?),
        Min => softfp::min(rd(lane.srcs[0])?, rd(lane.srcs[1])?),
        Max => softfp::max(rd(lane.srcs[0])?, rd(lane.srcs[1])?),
        Sqrt => softfp::sqrt(rd(lane.srcs[0])?),
        Fma => softfp::fma(rd(lane.srcs[0])?, rd(lane.srcs[1])?, rd(lane.srcs[2])?),
        Neg => (-rd(lane.srcs[0])?, FpFlags::NONE),
        Abs => (rd(lane.srcs[0])?.abs(), FpFlags::NONE),
        _ => return None,
    };
    Some((v.to_bits(), f))
}

/// True if any *f64-typed* source of the lane holds a NaN-boxed value —
/// the trap-and-patch *precondition check*.
pub fn has_boxed_src(m: &Machine, lane: &BoundLane) -> bool {
    use ScalarOp::*;
    if matches!(lane.op, CvtI32ToF | CvtI64ToF) {
        return false; // integer source
    }
    lane.srcs
        .iter()
        .any(|&loc| !matches!(loc, Loc::None) && read_loc(m, loc).is_ok_and(fpvm_nanbox::is_boxed))
}

#[cfg(test)]
mod tests {
    use super::*;
    use fpvm_machine::{Asm, CostModel, Gpr, Mem};

    fn machine_with(f: impl FnOnce(&mut Asm)) -> Machine {
        let mut a = Asm::new();
        f(&mut a);
        a.halt();
        let p = a.finish();
        let mut m = Machine::new(CostModel::r815());
        m.load_program(&p);
        m
    }

    #[test]
    fn bind_reg_and_mem_to_same_op() {
        // The paper's example: addsd with a register source and a memory
        // source bind to the same ADD op with different source locations.
        let mut m = machine_with(|_| {});
        m.gpr[Gpr::RSP.0 as usize] = 0x40_0000;
        let reg_form = Inst::AddSd {
            dst: Xmm(0),
            src: XM::Reg(Xmm(1)),
        };
        let mem_form = Inst::AddSd {
            dst: Xmm(0),
            src: XM::Mem(Mem::base_disp(Gpr::RSP, 8)),
        };
        let b1 = bind(&m, &reg_form, 0x2000).unwrap();
        let b2 = bind(&m, &mem_form, 0x2000).unwrap();
        let l1 = b1.lanes[0].unwrap();
        let l2 = b2.lanes[0].unwrap();
        assert_eq!(l1.op, ScalarOp::Add);
        assert_eq!(l2.op, ScalarOp::Add);
        assert_eq!(l1.srcs[1], Loc::XmmLane(1, 0));
        assert_eq!(l2.srcs[1], Loc::Mem(0x40_0008));
        assert_eq!(l1.dst, Dst::F64Lane(0, 0));
    }

    #[test]
    fn packed_binds_two_lanes() {
        let m = machine_with(|_| {});
        let inst = Inst::MulPd {
            dst: Xmm(2),
            src: XM::Reg(Xmm(3)),
        };
        let b = bind(&m, &inst, 0x2000).unwrap();
        let l0 = b.lanes[0].unwrap();
        let l1 = b.lanes[1].unwrap();
        assert_eq!(l0.srcs[1], Loc::XmmLane(3, 0));
        assert_eq!(l1.srcs[1], Loc::XmmLane(3, 1));
        assert_eq!(l1.dst, Dst::F64Lane(2, 1));
    }

    #[test]
    fn non_fp_instructions_do_not_bind() {
        let m = machine_with(|_| {});
        assert!(bind(
            &m,
            &Inst::MovRR {
                dst: Gpr::RAX,
                src: Gpr::RBX
            },
            0
        )
        .is_none());
        assert!(bind(
            &m,
            &Inst::MovSd {
                dst: XM::Reg(Xmm(0)),
                src: XM::Reg(Xmm(1))
            },
            0
        )
        .is_none());
        assert!(bind(
            &m,
            &Inst::XorPd {
                dst: Xmm(0),
                src: XM::Reg(Xmm(1))
            },
            0
        )
        .is_none());
    }

    #[test]
    fn plan_resolve_matches_direct_bind() {
        // The memoizable plan, resolved against the machine, must agree
        // with a fresh bind for every static shape — including memory
        // operands whose effective address changes between traps.
        let mut m = machine_with(|_| {});
        m.gpr[Gpr::RSP.0 as usize] = 0x40_0000;
        let insts = [
            Inst::AddSd {
                dst: Xmm(0),
                src: XM::Mem(Mem::base_disp(Gpr::RSP, 8)),
            },
            Inst::MulPd {
                dst: Xmm(2),
                src: XM::Mem(Mem::base_disp(Gpr::RSP, 16)),
            },
            Inst::SqrtSd {
                dst: Xmm(1),
                src: XM::Reg(Xmm(3)),
            },
            Inst::UComISd {
                a: Xmm(0),
                b: XM::Reg(Xmm(1)),
            },
        ];
        for inst in &insts {
            let Planability::Static(p) = plan(inst, 0x2000) else {
                panic!("{inst:?} must be statically plannable");
            };
            for rsp in [0x40_0000u64, 0x41_0000] {
                m.gpr[Gpr::RSP.0 as usize] = rsp;
                let fresh = bind(&m, inst, 0x2000).unwrap();
                let cached = p.resolve(&m);
                assert_eq!(format!("{fresh:?}"), format!("{cached:?}"));
            }
        }
    }

    #[test]
    fn mask_dependent_ops_are_dynamic() {
        // XorPd/AndPd read the mask value at bind time, so their plans
        // must never be memoized (a cached Neg could replay after the
        // guest rewrote the mask).
        for inst in [
            Inst::XorPd {
                dst: Xmm(0),
                src: XM::Reg(Xmm(1)),
            },
            Inst::AndPd {
                dst: Xmm(0),
                src: XM::Reg(Xmm(1)),
            },
        ] {
            assert!(matches!(plan(&inst, 0), Planability::Dynamic));
        }
        assert!(matches!(
            plan(
                &Inst::MovRR {
                    dst: Gpr::RAX,
                    src: Gpr::RBX
                },
                0
            ),
            Planability::Unbindable
        ));
    }

    #[test]
    fn precondition_detects_boxes() {
        let mut m = machine_with(|_| {});
        let key = fpvm_nanbox::ShadowKey::new(9).unwrap();
        m.xmm[1][0] = fpvm_nanbox::encode(key);
        m.xmm[0][0] = 1.5f64.to_bits();
        let inst = Inst::AddSd {
            dst: Xmm(0),
            src: XM::Reg(Xmm(1)),
        };
        let b = bind(&m, &inst, 0).unwrap();
        assert!(has_boxed_src(&m, &b.lanes[0].unwrap()));
        m.xmm[1][0] = 2.5f64.to_bits();
        assert!(!has_boxed_src(&m, &b.lanes[0].unwrap()));
    }

    #[test]
    fn native_eval_matches_host() {
        let mut m = machine_with(|_| {});
        m.xmm[0][0] = 0.1f64.to_bits();
        m.xmm[1][0] = 0.2f64.to_bits();
        let inst = Inst::AddSd {
            dst: Xmm(0),
            src: XM::Reg(Xmm(1)),
        };
        let b = bind(&m, &inst, 0).unwrap();
        let (bits, flags) = native_eval(&m, &b.lanes[0].unwrap()).unwrap();
        assert_eq!(f64::from_bits(bits), 0.1 + 0.2);
        assert!(flags.contains(FpFlags::INEXACT));
        // Nothing was written.
        assert_eq!(f64::from_bits(m.xmm[0][0]), 0.1);
    }
}
