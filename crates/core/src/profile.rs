//! The aggregating profiler sink: per-RIP hot-site attribution,
//! per-component latency histograms, and the arena-occupancy time series.
//!
//! This is the tool trap-and-patch site selection (§3.2) needs: the
//! heuristic engine patches every eligible site on first trap, but a
//! profiled run ranks sites by where the cycles actually went, so patch
//! budget can be spent on the RIPs that dominate. The `pguided`
//! experiment in `fpvm-bench` feeds [`ProfilerSink::hot_sites`] back into
//! [`crate::engine::Fpvm::restrict_patching`] and compares the two.

use crate::stats::{Component, CycleBreakdown};
use crate::trace::{TraceEvent, TraceSink};
use std::collections::HashMap;

/// Number of buckets in a [`Log2Histogram`]: bucket `i` (for `i > 0`)
/// counts values in `[2^(i-1), 2^i)`; bucket 0 counts zeros.
pub const HIST_BUCKETS: usize = 33;

/// A log₂-bucketed latency histogram (cycles).
#[derive(Debug, Clone)]
pub struct Log2Histogram {
    buckets: [u64; HIST_BUCKETS],
    count: u64,
    sum: u64,
    max: u64,
}

impl Default for Log2Histogram {
    fn default() -> Self {
        Log2Histogram {
            buckets: [0; HIST_BUCKETS],
            count: 0,
            sum: 0,
            max: 0,
        }
    }
}

impl Log2Histogram {
    /// Bucket index for a value: 0 for 0, else `floor(log2(v)) + 1`,
    /// saturating at the last bucket.
    pub fn bucket_of(v: u64) -> usize {
        if v == 0 {
            0
        } else {
            ((63 - v.leading_zeros()) as usize + 1).min(HIST_BUCKETS - 1)
        }
    }

    /// Record one sample.
    pub fn record(&mut self, v: u64) {
        self.buckets[Self::bucket_of(v)] += 1;
        self.count += 1;
        self.sum += v;
        self.max = self.max.max(v);
    }

    /// Samples recorded.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Sum of all samples.
    pub fn sum(&self) -> u64 {
        self.sum
    }

    /// Largest sample seen.
    pub fn max(&self) -> u64 {
        self.max
    }

    /// Mean sample, or 0 with no samples.
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }

    /// The raw bucket counts.
    pub fn buckets(&self) -> &[u64; HIST_BUCKETS] {
        &self.buckets
    }

    /// `(bucket_lower_bound, count)` for every non-empty bucket.
    pub fn nonzero(&self) -> Vec<(u64, u64)> {
        self.buckets
            .iter()
            .enumerate()
            .filter(|(_, &c)| c > 0)
            .map(|(i, &c)| (if i == 0 { 0 } else { 1u64 << (i - 1) }, c))
            .collect()
    }
}

/// Everything the profiler learned about one guest site (RIP).
#[derive(Debug, Clone, Default)]
pub struct SiteProfile {
    /// Hardware FP traps delivered at this site.
    pub traps: u64,
    /// Correctness traps taken at this site.
    pub correctness_traps: u64,
    /// Patch-call fast-path executions at this site.
    pub patch_fast: u64,
    /// Patch-call slow-path executions at this site.
    pub patch_slow: u64,
    /// External calls interposed at this site.
    pub ext_calls: u64,
    /// Cycles charged at this site, by component.
    pub cycles: CycleBreakdown,
    /// Whether the trap-and-patch engine patched this site.
    pub patched: bool,
}

impl SiteProfile {
    /// Total cycles attributed to this site.
    pub fn total_cycles(&self) -> u64 {
        self.cycles.total()
    }

    /// The component that dominates this site's cost.
    pub fn dominant(&self) -> Component {
        Component::ALL
            .into_iter()
            .max_by_key(|&c| self.cycles.get(c))
            .unwrap_or(Component::Emulate)
    }
}

/// One arena-occupancy sample, taken at each GC pass.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ArenaSample {
    /// Guest instructions retired at the sample.
    pub icount: u64,
    /// Live shadow values immediately before the pass.
    pub before: u64,
    /// Live shadow values immediately after.
    pub alive: u64,
}

/// The aggregating profiler: a [`TraceSink`] that builds the per-RIP
/// hot-site table, log₂ latency histograms per [`Component`], and the
/// arena-occupancy time series.
#[derive(Debug, Default)]
pub struct ProfilerSink {
    sites: HashMap<u64, SiteProfile>,
    hists: [Log2Histogram; Component::ALL.len()],
    arena: Vec<ArenaSample>,
    events: u64,
}

impl ProfilerSink {
    /// A fresh profiler.
    pub fn new() -> Self {
        ProfilerSink::default()
    }

    /// Total events consumed.
    pub fn events(&self) -> u64 {
        self.events
    }

    /// The full per-site table.
    pub fn sites(&self) -> &HashMap<u64, SiteProfile> {
        &self.sites
    }

    /// One site's profile, if it ever trapped.
    pub fn site(&self, rip: u64) -> Option<&SiteProfile> {
        self.sites.get(&rip)
    }

    /// The latency histogram for one component.
    pub fn histogram(&self, c: Component) -> &Log2Histogram {
        &self.hists[c.index()]
    }

    /// The arena-occupancy time series (one sample per GC pass).
    pub fn arena_series(&self) -> &[ArenaSample] {
        &self.arena
    }

    /// The `n` hottest sites by total attributed cycles, hottest first
    /// (ties broken by RIP for determinism).
    pub fn hot_sites(&self, n: usize) -> Vec<(u64, SiteProfile)> {
        let mut v: Vec<(u64, SiteProfile)> =
            self.sites.iter().map(|(&r, p)| (r, p.clone())).collect();
        v.sort_by(|a, b| {
            b.1.total_cycles()
                .cmp(&a.1.total_cycles())
                .then(a.0.cmp(&b.0))
        });
        v.truncate(n);
        v
    }

    /// Render the top-`n` hot-site table as text.
    pub fn report(&self, n: usize) -> String {
        let mut s = String::new();
        s.push_str(&format!(
            "{:<12} {:>9} {:>14} {:>9} {:>8} {:>20}\n",
            "rip", "traps", "cycles", "cyc/trap", "patched", "dominant"
        ));
        for (rip, p) in self.hot_sites(n) {
            let visits = (p.traps + p.correctness_traps + p.patch_fast + p.patch_slow).max(1);
            s.push_str(&format!(
                "{:#12x} {:>9} {:>14} {:>9} {:>8} {:>20}\n",
                rip,
                p.traps,
                p.total_cycles(),
                p.total_cycles() / visits,
                if p.patched { "yes" } else { "-" },
                p.dominant().label()
            ));
        }
        s
    }

    fn at(&mut self, rip: u64) -> &mut SiteProfile {
        self.sites.entry(rip).or_default()
    }

    fn charge(&mut self, rip: u64, c: Component, cycles: u64) {
        self.at(rip).cycles.add(c, cycles);
        self.hists[c.index()].record(cycles);
    }
}

impl TraceSink for ProfilerSink {
    fn emit(&mut self, ev: &TraceEvent) {
        self.events += 1;
        match *ev {
            TraceEvent::TrapBegin {
                rip,
                hardware,
                kernel,
                user,
                ..
            } => {
                self.at(rip).traps += 1;
                self.charge(rip, Component::Hardware, hardware);
                self.charge(rip, Component::Kernel, kernel);
                self.charge(rip, Component::UserDelivery, user);
            }
            TraceEvent::Decode { rip, cycles, .. } => {
                self.charge(rip, Component::Decode, cycles);
            }
            TraceEvent::Bind { rip, cycles } => {
                self.charge(rip, Component::Bind, cycles);
            }
            TraceEvent::Emulate { rip, cycles, .. } => {
                self.charge(rip, Component::Emulate, cycles);
            }
            TraceEvent::Commit { .. } => {}
            TraceEvent::CorrectnessTrap {
                rip,
                dispatch_cycles,
                handler_cycles,
                ..
            }
            | TraceEvent::NanHoleTrap {
                rip,
                dispatch_cycles,
                handler_cycles,
                ..
            } => {
                self.at(rip).correctness_traps += 1;
                self.charge(rip, Component::CorrectnessDispatch, dispatch_cycles);
                self.charge(rip, Component::CorrectnessHandler, handler_cycles);
            }
            TraceEvent::ExtCall { rip, cycles, .. } => {
                self.at(rip).ext_calls += 1;
                if cycles > 0 {
                    self.charge(rip, Component::Emulate, cycles);
                }
            }
            TraceEvent::PatchInstalled { rip, .. } => {
                self.at(rip).patched = true;
            }
            TraceEvent::PatchCall {
                rip, fast, cycles, ..
            } => {
                let p = self.at(rip);
                if fast {
                    p.patch_fast += 1;
                } else {
                    p.patch_slow += 1;
                }
                self.charge(rip, Component::Patch, cycles);
            }
            TraceEvent::GcPass {
                icount,
                before,
                alive,
                cycles,
                ..
            } => {
                self.hists[Component::Gc.index()].record(cycles);
                self.arena.push(ArenaSample {
                    icount,
                    before,
                    alive,
                });
            }
            TraceEvent::RuntimeError { .. } => {}
        }
    }

    fn name(&self) -> &'static str {
        "profiler"
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn histogram_buckets_are_log2() {
        assert_eq!(Log2Histogram::bucket_of(0), 0);
        assert_eq!(Log2Histogram::bucket_of(1), 1);
        assert_eq!(Log2Histogram::bucket_of(2), 2);
        assert_eq!(Log2Histogram::bucket_of(3), 2);
        assert_eq!(Log2Histogram::bucket_of(4), 3);
        assert_eq!(Log2Histogram::bucket_of(1023), 10);
        assert_eq!(Log2Histogram::bucket_of(1024), 11);
        assert_eq!(Log2Histogram::bucket_of(u64::MAX), HIST_BUCKETS - 1);
        let mut h = Log2Histogram::default();
        for v in [0, 1, 3, 1000, 1000] {
            h.record(v);
        }
        assert_eq!(h.count(), 5);
        assert_eq!(h.sum(), 2004);
        assert_eq!(h.max(), 1000);
        assert!((h.mean() - 400.8).abs() < 1e-9);
        assert_eq!(h.nonzero(), vec![(0, 1), (1, 1), (2, 1), (512, 2)]);
    }

    #[test]
    fn profiler_attributes_per_site_and_ranks() {
        let mut p = ProfilerSink::new();
        let hot = 0x1000u64;
        let cold = 0x2000u64;
        for _ in 0..10 {
            p.emit(&TraceEvent::TrapBegin {
                rip: hot,
                icount: 0,
                hardware: 100,
                kernel: 25,
                user: 500,
            });
            p.emit(&TraceEvent::Emulate {
                rip: hot,
                lanes: 1,
                cycles: 4000,
            });
        }
        p.emit(&TraceEvent::TrapBegin {
            rip: cold,
            icount: 0,
            hardware: 100,
            kernel: 25,
            user: 500,
        });
        p.emit(&TraceEvent::Decode {
            rip: cold,
            hit: false,
            cycles: 2000,
        });
        let top = p.hot_sites(2);
        assert_eq!(top[0].0, hot);
        assert_eq!(top[0].1.traps, 10);
        assert_eq!(top[0].1.total_cycles(), 10 * (100 + 25 + 500 + 4000));
        assert_eq!(top[0].1.dominant(), Component::Emulate);
        assert_eq!(top[1].0, cold);
        assert_eq!(p.histogram(Component::Emulate).count(), 10);
        assert_eq!(p.histogram(Component::Decode).count(), 1);
        assert!(p.report(2).contains("0x1000"));
    }

    #[test]
    fn gc_events_build_the_arena_series() {
        let mut p = ProfilerSink::new();
        p.emit(&TraceEvent::GcPass {
            icount: 100,
            before: 50,
            freed: 40,
            alive: 10,
            cycles: 999,
        });
        p.emit(&TraceEvent::GcPass {
            icount: 200,
            before: 60,
            freed: 55,
            alive: 5,
            cycles: 999,
        });
        assert_eq!(
            p.arena_series(),
            &[
                ArenaSample {
                    icount: 100,
                    before: 50,
                    alive: 10
                },
                ArenaSample {
                    icount: 200,
                    before: 60,
                    alive: 5
                }
            ]
        );
        assert_eq!(p.histogram(Component::Gc).count(), 2);
    }
}
