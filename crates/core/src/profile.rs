//! The aggregating profiler sink: per-RIP hot-site attribution,
//! per-component latency histograms, and the arena-occupancy time series.
//!
//! This is the tool trap-and-patch site selection (§3.2) needs: the
//! heuristic engine patches every eligible site on first trap, but a
//! profiled run ranks sites by where the cycles actually went, so patch
//! budget can be spent on the RIPs that dominate. The `pguided`
//! experiment in `fpvm-bench` feeds [`ProfilerSink::hot_sites`] back into
//! [`crate::engine::Fpvm::restrict_patching`] and compares the two.

use crate::stats::{Component, CycleBreakdown};
use crate::trace::{TraceEvent, TraceSink};
use std::collections::HashMap;

// The histogram lives in fpvm-obs now (the fleet registry shares its
// bucketing); re-exported here so `fpvm_core::Log2Histogram` keeps working.
pub use fpvm_obs::{Log2Histogram, HIST_BUCKETS};

/// Everything the profiler learned about one guest site (RIP).
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct SiteProfile {
    /// Hardware FP traps delivered at this site.
    pub traps: u64,
    /// Correctness traps taken at this site.
    pub correctness_traps: u64,
    /// Patch-call fast-path executions at this site.
    pub patch_fast: u64,
    /// Patch-call slow-path executions at this site.
    pub patch_slow: u64,
    /// External calls interposed at this site.
    pub ext_calls: u64,
    /// Cycles charged at this site, by component.
    pub cycles: CycleBreakdown,
    /// Whether the trap-and-patch engine patched this site.
    pub patched: bool,
}

impl SiteProfile {
    /// Total cycles attributed to this site.
    pub fn total_cycles(&self) -> u64 {
        self.cycles.total()
    }

    /// Fold another observation of the same site into this one: counters
    /// and the cycle breakdown sum field-wise, `patched` ORs (the site was
    /// patched in at least one of the merged runs).
    pub fn merge(&mut self, other: &SiteProfile) {
        self.traps += other.traps;
        self.correctness_traps += other.correctness_traps;
        self.patch_fast += other.patch_fast;
        self.patch_slow += other.patch_slow;
        self.ext_calls += other.ext_calls;
        for c in Component::ALL {
            self.cycles.add(c, other.cycles.get(c));
        }
        self.patched |= other.patched;
    }

    /// The component that dominates this site's cost.
    pub fn dominant(&self) -> Component {
        Component::ALL
            .into_iter()
            .max_by_key(|&c| self.cycles.get(c))
            .unwrap_or(Component::Emulate)
    }
}

/// One arena-occupancy sample, taken at each GC pass.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ArenaSample {
    /// Guest instructions retired at the sample.
    pub icount: u64,
    /// Live shadow values immediately before the pass.
    pub before: u64,
    /// Live shadow values immediately after.
    pub alive: u64,
}

/// The aggregating profiler: a [`TraceSink`] that builds the per-RIP
/// hot-site table, log₂ latency histograms per [`Component`], and the
/// arena-occupancy time series.
#[derive(Debug, Default, Clone)]
pub struct ProfilerSink {
    sites: HashMap<u64, SiteProfile>,
    hists: [Log2Histogram; Component::ALL.len()],
    arena: Vec<ArenaSample>,
    events: u64,
}

impl ProfilerSink {
    /// A fresh profiler.
    pub fn new() -> Self {
        ProfilerSink::default()
    }

    /// Total events consumed.
    pub fn events(&self) -> u64 {
        self.events
    }

    /// The full per-site table.
    pub fn sites(&self) -> &HashMap<u64, SiteProfile> {
        &self.sites
    }

    /// One site's profile, if it ever trapped.
    pub fn site(&self, rip: u64) -> Option<&SiteProfile> {
        self.sites.get(&rip)
    }

    /// The latency histogram for one component.
    pub fn histogram(&self, c: Component) -> &Log2Histogram {
        &self.hists[c.index()]
    }

    /// The arena-occupancy time series (one sample per GC pass).
    pub fn arena_series(&self) -> &[ArenaSample] {
        &self.arena
    }

    /// The `n` hottest sites by total attributed cycles, hottest first
    /// (ties broken by RIP for determinism).
    pub fn hot_sites(&self, n: usize) -> Vec<(u64, SiteProfile)> {
        let mut v: Vec<(u64, SiteProfile)> =
            self.sites.iter().map(|(&r, p)| (r, p.clone())).collect();
        v.sort_by(|a, b| {
            b.1.total_cycles()
                .cmp(&a.1.total_cycles())
                .then(a.0.cmp(&b.0))
        });
        v.truncate(n);
        v
    }

    /// Render the top-`n` hot-site table as text.
    pub fn report(&self, n: usize) -> String {
        let mut s = String::new();
        s.push_str(&format!(
            "{:<12} {:>9} {:>14} {:>9} {:>8} {:>20}\n",
            "rip", "traps", "cycles", "cyc/trap", "patched", "dominant"
        ));
        for (rip, p) in self.hot_sites(n) {
            let visits = (p.traps + p.correctness_traps + p.patch_fast + p.patch_slow).max(1);
            s.push_str(&format!(
                "{:#12x} {:>9} {:>14} {:>9} {:>8} {:>20}\n",
                rip,
                p.traps,
                p.total_cycles(),
                p.total_cycles() / visits,
                if p.patched { "yes" } else { "-" },
                p.dominant().label()
            ));
        }
        // Per-component latency tail, derived from the log2 histograms.
        let mut wrote_header = false;
        for c in Component::ALL {
            let h = self.histogram(c);
            if h.count() == 0 {
                continue;
            }
            if !wrote_header {
                s.push_str(&format!(
                    "\n{:<20} {:>9} {:>10} {:>10} {:>10}\n",
                    "component latency", "samples", "p50", "p99", "max"
                ));
                wrote_header = true;
            }
            s.push_str(&format!(
                "{:<20} {:>9} {:>10} {:>10} {:>10}\n",
                c.label(),
                h.count(),
                h.p50(),
                h.p99(),
                h.max()
            ));
        }
        s
    }

    /// Fold another profiler's aggregates into this one: per-site profiles
    /// merge by RIP (field-wise sums), per-component histograms merge
    /// bucket-wise, arena-occupancy samples concatenate in call order, and
    /// the event count sums. Fleet workers each own a profiler and the
    /// join loop merges them **in job order**, so the merged table is
    /// independent of how jobs were sharded across workers.
    pub fn merge(&mut self, other: &ProfilerSink) {
        for (&rip, p) in &other.sites {
            self.sites.entry(rip).or_default().merge(p);
        }
        for (h, o) in self.hists.iter_mut().zip(other.hists.iter()) {
            h.merge(o);
        }
        self.arena.extend_from_slice(&other.arena);
        self.events += other.events;
    }

    fn at(&mut self, rip: u64) -> &mut SiteProfile {
        self.sites.entry(rip).or_default()
    }

    fn charge(&mut self, rip: u64, c: Component, cycles: u64) {
        self.at(rip).cycles.add(c, cycles);
        self.hists[c.index()].record(cycles);
    }
}

impl TraceSink for ProfilerSink {
    fn emit(&mut self, ev: &TraceEvent) {
        self.events += 1;
        match *ev {
            TraceEvent::TrapBegin {
                rip,
                hardware,
                kernel,
                user,
                ..
            } => {
                self.at(rip).traps += 1;
                self.charge(rip, Component::Hardware, hardware);
                self.charge(rip, Component::Kernel, kernel);
                self.charge(rip, Component::UserDelivery, user);
            }
            TraceEvent::Decode { rip, cycles, .. } => {
                self.charge(rip, Component::Decode, cycles);
            }
            TraceEvent::Bind { rip, cycles } => {
                self.charge(rip, Component::Bind, cycles);
            }
            TraceEvent::Emulate { rip, cycles, .. } => {
                self.charge(rip, Component::Emulate, cycles);
            }
            TraceEvent::Commit { .. } => {}
            TraceEvent::CorrectnessTrap {
                rip,
                dispatch_cycles,
                handler_cycles,
                ..
            }
            | TraceEvent::NanHoleTrap {
                rip,
                dispatch_cycles,
                handler_cycles,
                ..
            } => {
                self.at(rip).correctness_traps += 1;
                self.charge(rip, Component::CorrectnessDispatch, dispatch_cycles);
                self.charge(rip, Component::CorrectnessHandler, handler_cycles);
            }
            TraceEvent::ExtCall { rip, cycles, .. } => {
                self.at(rip).ext_calls += 1;
                if cycles > 0 {
                    self.charge(rip, Component::Emulate, cycles);
                }
            }
            TraceEvent::PatchInstalled { rip, .. } => {
                self.at(rip).patched = true;
            }
            TraceEvent::PatchCall {
                rip, fast, cycles, ..
            } => {
                let p = self.at(rip);
                if fast {
                    p.patch_fast += 1;
                } else {
                    p.patch_slow += 1;
                }
                self.charge(rip, Component::Patch, cycles);
            }
            TraceEvent::GcPass {
                icount,
                before,
                alive,
                cycles,
                ..
            } => {
                self.hists[Component::Gc.index()].record(cycles);
                self.arena.push(ArenaSample {
                    icount,
                    before,
                    alive,
                });
            }
            TraceEvent::RuntimeError { .. } => {}
        }
    }

    fn name(&self) -> &'static str {
        "profiler"
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn profiler_attributes_per_site_and_ranks() {
        let mut p = ProfilerSink::new();
        let hot = 0x1000u64;
        let cold = 0x2000u64;
        for _ in 0..10 {
            p.emit(&TraceEvent::TrapBegin {
                rip: hot,
                icount: 0,
                hardware: 100,
                kernel: 25,
                user: 500,
            });
            p.emit(&TraceEvent::Emulate {
                rip: hot,
                lanes: 1,
                cycles: 4000,
            });
        }
        p.emit(&TraceEvent::TrapBegin {
            rip: cold,
            icount: 0,
            hardware: 100,
            kernel: 25,
            user: 500,
        });
        p.emit(&TraceEvent::Decode {
            rip: cold,
            hit: false,
            cycles: 2000,
        });
        let top = p.hot_sites(2);
        assert_eq!(top[0].0, hot);
        assert_eq!(top[0].1.traps, 10);
        assert_eq!(top[0].1.total_cycles(), 10 * (100 + 25 + 500 + 4000));
        assert_eq!(top[0].1.dominant(), Component::Emulate);
        assert_eq!(top[1].0, cold);
        assert_eq!(p.histogram(Component::Emulate).count(), 10);
        assert_eq!(p.histogram(Component::Decode).count(), 1);
        assert!(p.report(2).contains("0x1000"));
    }

    /// The hot-site report's latency footer shows the p50/p99 derived from
    /// the per-component histograms, and only for components that sampled.
    #[test]
    fn report_shows_component_latency_tail() {
        let mut p = ProfilerSink::new();
        for cycles in [100, 200, 400, 800, 10_000] {
            p.emit(&TraceEvent::Emulate {
                rip: 0x1000,
                lanes: 1,
                cycles,
            });
        }
        let r = p.report(1);
        assert!(r.contains("component latency"));
        let h = p.histogram(Component::Emulate);
        let line = r
            .lines()
            .find(|l| l.starts_with("emulate"))
            .expect("emulate row in latency footer");
        for v in [h.count(), h.p50(), h.p99(), h.max()] {
            assert!(line.contains(&v.to_string()), "{line} missing {v}");
        }
        // p50 of [100,200,400,800,10000]: rank 3 → bucket of 400 → upper 511.
        assert_eq!(h.p50(), 511);
        assert_eq!(h.p99(), 10_000, "tail clamps to the observed max");
        assert!(
            !r.contains("\ndecode"),
            "components with zero samples stay out of the footer"
        );
        assert!(
            !ProfilerSink::new().report(1).contains("component latency"),
            "no footer with no samples at all"
        );
    }

    /// A `ProfilerSink` whose every aggregate holds a distinct value
    /// derived from `seed`, built by feeding real events, so a dropped
    /// field in any of the three `merge` impls shows up as a mismatch.
    fn filled(seed: u64, rip: u64) -> ProfilerSink {
        let mut p = ProfilerSink::new();
        p.emit(&TraceEvent::TrapBegin {
            rip,
            icount: seed,
            hardware: seed + 1,
            kernel: seed + 2,
            user: seed + 3,
        });
        p.emit(&TraceEvent::Decode {
            rip,
            hit: false,
            cycles: seed + 4,
        });
        p.emit(&TraceEvent::Bind {
            rip,
            cycles: seed + 5,
        });
        p.emit(&TraceEvent::Emulate {
            rip,
            lanes: 2,
            cycles: seed + 6,
        });
        p.emit(&TraceEvent::CorrectnessTrap {
            rip,
            site: 1,
            demoted: true,
            dispatch_cycles: seed + 7,
            handler_cycles: seed + 8,
        });
        p.emit(&TraceEvent::ExtCall {
            rip,
            f: fpvm_machine::ExtFn::Sin,
            disposition: crate::trace::ExtDisposition::Math,
            cycles: seed + 9,
        });
        p.emit(&TraceEvent::PatchCall {
            rip,
            site: 1,
            fast: seed.is_multiple_of(2),
            cycles: seed + 10,
        });
        p.emit(&TraceEvent::GcPass {
            icount: seed + 11,
            before: seed + 12,
            freed: seed + 13,
            alive: seed + 14,
            cycles: seed + 15,
        });
        p
    }

    #[test]
    fn merge_equals_fieldwise_sum_for_every_aggregate() {
        let shared_rip = 0x1000u64;
        let a = filled(100, shared_rip);
        let mut b = filled(5000, shared_rip);
        // A site only `b` saw, and a patch-install only `b` saw.
        b.emit(&TraceEvent::TrapBegin {
            rip: 0x2000,
            icount: 0,
            hardware: 7,
            kernel: 8,
            user: 9,
        });
        b.emit(&TraceEvent::PatchInstalled {
            rip: shared_rip,
            site: 1,
        });
        let mut m = a.clone();
        m.merge(&b);
        assert_eq!(m.events(), a.events() + b.events());
        assert_eq!(m.sites().len(), 2, "union of the two site sets");
        // The shared site's profile is the field-wise sum.
        let (sa, sb, sm) = (
            a.site(shared_rip).unwrap(),
            b.site(shared_rip).unwrap(),
            m.site(shared_rip).unwrap(),
        );
        assert_eq!(sm.traps, sa.traps + sb.traps);
        assert_eq!(
            sm.correctness_traps,
            sa.correctness_traps + sb.correctness_traps
        );
        assert_eq!(sm.patch_fast, sa.patch_fast + sb.patch_fast);
        assert_eq!(sm.patch_slow, sa.patch_slow + sb.patch_slow);
        assert_eq!(sm.ext_calls, sa.ext_calls + sb.ext_calls);
        for c in Component::ALL {
            assert_eq!(
                sm.cycles.get(c),
                sa.cycles.get(c) + sb.cycles.get(c),
                "site component {}",
                c.label()
            );
        }
        assert!(sm.patched, "patched ORs across runs");
        assert!(!sa.patched, "merge must not mutate the sources");
        // The b-only site arrives intact.
        assert_eq!(m.site(0x2000).unwrap().traps, 1);
        // Per-component log2 histograms merge bucket-wise.
        for c in Component::ALL {
            let (ha, hb, hm) = (a.histogram(c), b.histogram(c), m.histogram(c));
            assert_eq!(hm.count(), ha.count() + hb.count(), "{}", c.label());
            assert_eq!(hm.sum(), ha.sum() + hb.sum(), "{}", c.label());
            assert_eq!(hm.max(), ha.max().max(hb.max()), "{}", c.label());
            for i in 0..HIST_BUCKETS {
                assert_eq!(
                    hm.buckets()[i],
                    ha.buckets()[i] + hb.buckets()[i],
                    "{} bucket {i}",
                    c.label()
                );
            }
        }
        // Arena-occupancy series concatenate in merge-call order.
        assert_eq!(
            m.arena_series().len(),
            a.arena_series().len() + b.arena_series().len()
        );
        assert_eq!(m.arena_series()[0], a.arena_series()[0]);
        assert_eq!(m.arena_series()[1], b.arena_series()[0]);
        // Merging into a fresh profiler is a clone of the source's view.
        let mut z = ProfilerSink::new();
        z.merge(&a);
        assert_eq!(z.events(), a.events());
        assert_eq!(z.hot_sites(10), a.hot_sites(10));
    }

    #[test]
    fn gc_events_build_the_arena_series() {
        let mut p = ProfilerSink::new();
        p.emit(&TraceEvent::GcPass {
            icount: 100,
            before: 50,
            freed: 40,
            alive: 10,
            cycles: 999,
        });
        p.emit(&TraceEvent::GcPass {
            icount: 200,
            before: 60,
            freed: 55,
            alive: 5,
            cycles: 999,
        });
        assert_eq!(
            p.arena_series(),
            &[
                ArenaSample {
                    icount: 100,
                    before: 50,
                    alive: 10
                },
                ArenaSample {
                    icount: 200,
                    before: 60,
                    alive: 5
                }
            ]
        );
        assert_eq!(p.histogram(Component::Gc).count(), 2);
    }
}
