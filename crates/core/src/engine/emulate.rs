//! The emulate stage: bind → per-lane evaluate → commit.
//!
//! Three narrow components, mirroring §4.1's pipeline:
//!
//! * [`Binder`] resolves the faulting instruction's operands to concrete
//!   [`Loc`]s (a thin stage wrapper over [`crate::bound`]).
//! * [`Emulator`] evaluates one bound lane on the alternative arithmetic
//!   system, unboxing/promoting sources and boxing the result. It touches
//!   the machine read-only and returns a [`LaneOutcome`].
//! * [`Committer`] retires a [`LaneOutcome`] into machine state (register
//!   writes, `%rflags`, sticky MXCSR flags).
//!
//! Splitting evaluation from commitment keeps the paper's per-lane
//! ordering (each lane retires before the next evaluates) while giving
//! each half a single responsibility.

use super::accounting::{Accounting, Counter};
use super::exit::{ExitReason, Stage};
use super::Fpvm;
use crate::bound::{self, bind, read_int_loc, read_loc, Bound, Dst};
use crate::stats::Component;
use crate::trace::TraceEvent;
use fpvm_arith::{ArithSystem, CmpResult, FpFlags, Round, ScalarOp, ShadowArena};
use fpvm_machine::{Fault, Inst, Machine};
use std::time::Instant;

/// The bind stage: resolve an instruction's operands to storage.
pub struct Binder;

impl Binder {
    /// Bind `inst` against the current machine state. `None` means the
    /// instruction has no emulable FP shape.
    pub fn bind(&self, m: &Machine, inst: &Inst, next_rip: u64) -> Option<Bound> {
        bind(m, inst, next_rip)
    }
}

/// What one evaluated lane wants to retire.
#[derive(Debug, Clone, Copy)]
pub enum LaneOutcome {
    /// A boxed (or demoted, under `always_demote`) f64 result for an XMM
    /// lane.
    F64 {
        /// Destination lane.
        dst: Dst,
        /// NaN-boxed (or demoted) result bits.
        bits: u64,
        /// Exception flags to raise.
        flags: FpFlags,
    },
    /// An integer conversion result for a GPR.
    Int {
        /// Destination register (with width).
        dst: Dst,
        /// Result bits (already width-adjusted).
        bits: u64,
        /// Exception flags to raise.
        flags: FpFlags,
    },
    /// A 32-bit float demotion into the low half of an XMM lane.
    F32 {
        /// Destination lane.
        dst: Dst,
        /// The f32 result bits.
        bits: u32,
        /// Exception flags to raise.
        flags: FpFlags,
    },
    /// A compare result for `%rflags`.
    Compare {
        /// The IEEE comparison outcome.
        result: CmpResult,
        /// Exception flags to raise.
        flags: FpFlags,
    },
}

/// The evaluation half of the emulate stage. Borrows only what evaluation
/// needs — the arithmetic system, its shadow arena, and the accounting
/// sink — so it composes with a mutable machine borrow held elsewhere.
pub(crate) struct Emulator<'rt, A: ArithSystem> {
    pub arith: &'rt A,
    pub arena: &'rt mut ShadowArena<A::Value>,
    pub acct: &'rt mut Accounting,
    pub always_demote: bool,
}

/// One lane source, read without cloning when possible: live arena cells
/// are *borrowed* (the hot case — no shadow-value clone per operand, which
/// for BigFloat values meant a limb-vector allocation per source), while
/// promotions of raw doubles and the universal NaN are owned.
pub(crate) enum SrcVal<'v, V> {
    /// A borrow of a live arena cell.
    Ref(&'v V),
    /// An owned value (promotion or universal NaN).
    Owned(V),
}

impl<V> std::ops::Deref for SrcVal<'_, V> {
    type Target = V;

    fn deref(&self) -> &V {
        match self {
            SrcVal::Ref(v) => v,
            SrcVal::Owned(v) => v,
        }
    }
}

impl<'rt, A: ArithSystem> Emulator<'rt, A> {
    /// Unbox a source into an owned value, promoting if necessary. The
    /// external-call path (and anything needing ownership) uses this; the
    /// lane evaluator reads through [`SrcVal`] to avoid the clone.
    pub fn unbox(&mut self, bits: u64) -> A::Value {
        self.tally_src(bits);
        match self.srcval(bits) {
            SrcVal::Ref(v) => v.clone(),
            SrcVal::Owned(v) => v,
        }
    }

    /// Phase 1 of a clone-free source read: the accounting side effect
    /// (raw doubles tally a promotion). Separate from [`Emulator::srcval`]
    /// because tallying needs `&mut self` while the returned borrow pins
    /// `&self`.
    fn tally_src(&mut self, bits: u64) {
        if fpvm_nanbox::decode(bits).is_none() {
            self.acct.tally(Counter::Promotions);
        }
    }

    /// Phase 2: the value itself. Callers must have passed the same bits
    /// to [`Emulator::tally_src`] first.
    fn srcval(&self, bits: u64) -> SrcVal<'_, A::Value> {
        if let Some(key) = fpvm_nanbox::decode(bits) {
            if let Some(v) = self.arena.get(key) {
                return SrcVal::Ref(v);
            }
            // Universal NaN: a signaling NaN with no live shadow value is a
            // true NaN (§2).
            return SrcVal::Owned(self.arith.from_f64(f64::NAN));
        }
        SrcVal::Owned(self.arith.from_f64(f64::from_bits(bits)))
    }

    /// Box a shadow value: allocate a cell and return the encoded sNaN
    /// bits. Under `always_demote` the value is demoted immediately instead
    /// (the §4.2 strawman).
    pub fn boxv(&mut self, v: A::Value) -> u64 {
        if self.always_demote {
            self.acct.tally(Counter::Demotions);
            let (d, _) = self.arith.to_f64(&v, Round::NearestEven);
            return d.to_bits();
        }
        self.acct.tally(Counter::BoxesCreated);
        let key = self.arena.alloc(v);
        fpvm_nanbox::encode(key)
    }

    /// Evaluate one bound lane against a read-only machine view.
    pub fn eval_lane(
        &mut self,
        m: &Machine,
        lane: &bound::BoundLane,
    ) -> Result<LaneOutcome, ExitReason> {
        use ScalarOp::*;
        self.acct.tally(Counter::EmulatedLanes);
        let rm = m.mxcsr.rounding();
        let err = ExitReason::Fault(Fault::Mem(fpvm_machine::MemFault::OutOfBounds(0), m.rip));
        // Clone-free source reads, in two phases per lane shape: fetch the
        // raw bits and tally (`&mut self`), then borrow or build the
        // values (`&self`) so live arena cells are never cloned.
        let rdbits =
            |i: usize| -> Result<u64, ExitReason> { read_loc(m, lane.srcs[i]).map_err(|_| err) };
        let (v, flags) = match lane.op {
            Add | Sub | Mul | Div | Min | Max => {
                let (ba, bb) = (rdbits(0)?, rdbits(1)?);
                self.tally_src(ba);
                self.tally_src(bb);
                let (a, b) = (self.srcval(ba), self.srcval(bb));
                match lane.op {
                    Add => self.arith.add(&a, &b, rm),
                    Sub => self.arith.sub(&a, &b, rm),
                    Mul => self.arith.mul(&a, &b, rm),
                    Div => self.arith.div(&a, &b, rm),
                    Min => self.arith.min(&a, &b),
                    _ => self.arith.max(&a, &b),
                }
            }
            Sqrt | Neg | Abs => {
                let ba = rdbits(0)?;
                self.tally_src(ba);
                let a = self.srcval(ba);
                match lane.op {
                    Sqrt => self.arith.sqrt(&a, rm),
                    Neg => self.arith.neg(&a),
                    _ => self.arith.abs(&a),
                }
            }
            Fma => {
                let (ba, bb, bc) = (rdbits(0)?, rdbits(1)?, rdbits(2)?);
                self.tally_src(ba);
                self.tally_src(bb);
                self.tally_src(bc);
                let (a, b, c) = (self.srcval(ba), self.srcval(bb), self.srcval(bc));
                self.arith.fma(&a, &b, &c, rm)
            }
            CmpQuiet | CmpSignaling => {
                let (ba, bb) = (rdbits(0)?, rdbits(1)?);
                self.tally_src(ba);
                self.tally_src(bb);
                let (a, b) = (self.srcval(ba), self.srcval(bb));
                let (result, flags) = if lane.op == CmpQuiet {
                    self.arith.cmp_quiet(&a, &b)
                } else {
                    self.arith.cmp_signaling(&a, &b)
                };
                return Ok(LaneOutcome::Compare { result, flags });
            }
            CvtI32ToF | CvtI64ToF => {
                let raw = read_int_loc(m, lane.srcs[0], lane.int_width).map_err(|_| err)?;
                if lane.op == CvtI32ToF {
                    self.arith.from_i32(raw as i32)
                } else {
                    self.arith.from_i64(raw)
                }
            }
            CvtFToI32 | CvtFToI64 => {
                let ba = rdbits(0)?;
                self.tally_src(ba);
                let a = self.srcval(ba);
                let (bits, flags) = if lane.op == CvtFToI32 {
                    let (v, f) = self.arith.to_i32(&a);
                    (v as u32 as u64, f)
                } else {
                    let (v, f) = self.arith.to_i64(&a);
                    (v as u64, f)
                };
                return Ok(LaneOutcome::Int {
                    dst: lane.dst,
                    bits,
                    flags,
                });
            }
            CvtFToF32 => {
                let ba = rdbits(0)?;
                self.tally_src(ba);
                self.acct.tally(Counter::Demotions);
                let a = self.srcval(ba);
                let (v, flags) = self.arith.to_f32(&a, rm);
                return Ok(LaneOutcome::F32 {
                    dst: lane.dst,
                    bits: v.to_bits(),
                    flags,
                });
            }
            CvtF32ToF => {
                let raw = read_loc(m, lane.srcs[0]).map_err(|_| err)? as u32;
                self.arith.from_f32(f32::from_bits(raw))
            }
            _ => return Err(ExitReason::error(Stage::Emulate, m.rip)),
        };
        Ok(LaneOutcome::F64 {
            dst: lane.dst,
            bits: self.boxv(v),
            flags,
        })
    }
}

/// The commit stage: retire one [`LaneOutcome`] into machine state.
pub struct Committer;

impl Committer {
    /// Write the outcome's destination and raise its sticky flags.
    pub fn commit(&self, m: &mut Machine, outcome: LaneOutcome) -> Result<(), ExitReason> {
        match outcome {
            LaneOutcome::F64 { dst, bits, flags } => {
                match dst {
                    Dst::F64Lane(r, l) => {
                        m.xmm[r as usize][l as usize] = bits;
                        // Boxed results seed the audit oracle's taint plane
                        // (no-op unless the plane is enabled).
                        m.taint_reclassify_xmm(r as usize, l as usize);
                    }
                    _ => return Err(ExitReason::error(Stage::Emulate, m.rip)),
                }
                m.mxcsr.raise(flags);
            }
            LaneOutcome::Int { dst, bits, flags } => {
                if let Dst::Int(r, _) = dst {
                    m.gpr[r as usize] = bits;
                    m.taint_reclassify_gpr(r as usize);
                }
                m.mxcsr.raise(flags);
            }
            LaneOutcome::F32 { dst, bits, flags } => {
                if let Dst::F32Lane(r) = dst {
                    let lane0 = &mut m.xmm[r as usize][0];
                    *lane0 = (*lane0 & !0xFFFF_FFFF) | u64::from(bits);
                    m.taint_reclassify_xmm(r as usize, 0);
                }
                m.mxcsr.raise(flags);
            }
            LaneOutcome::Compare { result, flags } => {
                m.rflags.set_fp_compare(result);
                m.mxcsr.raise(flags);
            }
        }
        Ok(())
    }
}

impl<A: ArithSystem> Fpvm<A> {
    /// The emulate stage: bind the instruction, evaluate and commit each
    /// lane in order, advance `rip`, and charge the measured time.
    pub(crate) fn emulate(
        &mut self,
        m: &mut Machine,
        inst: &Inst,
        next_rip: u64,
    ) -> Result<(), ExitReason> {
        let t_bind = self.acct.stage_timer();
        let Some(b) = Binder.bind(m, inst, next_rip) else {
            return Err(ExitReason::error(Stage::Bind, m.rip));
        };
        self.acct
            .stage_record(crate::metrics::MetricStage::Bind, t_bind);
        self.emulate_bound(m, &b)
    }

    /// The back half of the emulate stage, entered with operands already
    /// bound — either freshly (via [`Fpvm::emulate`]) or from a cached
    /// plan resolved by the emulate-cache fast path. Both entries charge
    /// and trace identically from here on.
    pub(crate) fn emulate_bound(&mut self, m: &mut Machine, b: &Bound) -> Result<(), ExitReason> {
        let trap_rip = m.rip;
        let t = Instant::now();
        self.acct.tally(Counter::Emulated);
        let mut lanes: u32 = 0;
        for lane in b.lanes.iter().flatten() {
            let t_eval = self.acct.stage_timer();
            let outcome = self.emulator().eval_lane(m, lane)?;
            self.acct
                .stage_record(crate::metrics::MetricStage::Emulate, t_eval);
            let t_commit = self.acct.stage_timer();
            Committer.commit(m, outcome)?;
            self.acct
                .stage_record(crate::metrics::MetricStage::Commit, t_commit);
            lanes += 1;
        }
        m.rip = b.next_rip;
        let ns = t.elapsed().as_nanos() as u64;
        let dispatch = m.cost.emulate_dispatch;
        let cycles = self
            .acct
            .charge_measured(m, Component::Emulate, ns, dispatch);
        self.acct.emit(|| TraceEvent::Emulate {
            rip: trap_rip,
            lanes,
            cycles,
        });
        self.acct.emit(|| TraceEvent::Commit {
            rip: trap_rip,
            next_rip: b.next_rip,
        });
        Ok(())
    }

    /// An [`Emulator`] borrowing this runtime's arithmetic state.
    pub(crate) fn emulator(&mut self) -> Emulator<'_, A> {
        Emulator {
            arith: &self.arith,
            arena: &mut self.arena,
            acct: &mut self.acct,
            always_demote: self.config.always_demote,
        }
    }
}
