//! Runtime configuration.

use fpvm_machine::{DeliveryMode, DEFAULT_BLOCK_CAP};

/// Runtime configuration.
#[derive(Debug, Clone, Copy)]
pub struct FpvmConfig {
    /// How traps reach the runtime (cost model only; §6).
    pub delivery: DeliveryMode,
    /// Enable the decode cache (§5.3 footnote 8 ablation).
    pub decode_cache: bool,
    /// Enable the emulate cache: memoize the decoded *and bound* operand
    /// plan per RIP so hot traps skip the bind stage's instruction-shape
    /// match. Only effective when `decode_cache` is also on (the fast path
    /// reuses the decode cache's hit/miss accounting, and disabling the
    /// decode cache is the every-trap-pays-full-decode ablation). Cycle
    /// accounting is bit-identical on/off — the cache changes host work
    /// only.
    pub emulate_cache: bool,
    /// Interpose libm calls onto the arithmetic system (the math wrapper).
    pub interpose_math: bool,
    /// Interpose output calls (the output wrapper).
    pub interpose_output: bool,
    /// GC epoch in retired guest instructions (the paper uses a 1 s timer;
    /// instruction count is the deterministic analogue).
    pub gc_epoch: u64,
    /// Arena-pressure GC trigger (live cells).
    pub gc_pressure: usize,
    /// Use the parallel mark phase.
    pub gc_parallel: bool,
    /// Enable the trap-and-patch engine (§3.2).
    pub trap_and_patch: bool,
    /// Dispatch correctness traps as direct calls instead of full traps
    /// (the §5.3 "matter of implementation effort" optimization).
    pub correctness_as_call: bool,
    /// Strawman: demote every emulated result immediately (the rejected
    /// "demote on every store" design of §4.2 — "obviates the goal of
    /// using the alternative arithmetic system, but guarantees
    /// correctness").
    pub always_demote: bool,
    /// §6.2 hardware extension: assume trap-on-NaN-load + NaN checks on all
    /// FP-adjacent instructions. Makes the FP ISA fully virtualizable —
    /// **no static analysis or binary patching needed** ("If the hardware
    /// could optionally trigger an exception when a NaN pattern is loaded
    /// as a value, the static analysis could be avoided").
    pub nan_load_hw: bool,
    /// Guest instruction budget.
    pub max_insts: u64,
    /// Attach the machine's shadow taint plane and register every
    /// correctness-trap site with it (the dynamic audit oracle;
    /// `fpvm-analysis::audit`). Off by default: the hot path and its
    /// deterministic accounting are untouched.
    pub taint_oracle: bool,
    /// Attach the wall-clock metrics plane (`fpvm-obs`): sampled host-ns
    /// stage timers around the trap pipeline, exported via
    /// `Fpvm::metrics_snapshot`. Off by default: disabled costs one cached
    /// branch per trap, and Fig. 9 accounting is bit-identical on/off
    /// (same discipline as tracing).
    pub metrics: bool,
    /// Sample every `2^metrics_sample_shift`-th trap (and ext-call) when
    /// the metrics plane is on. 0 times every trap; the default (5 → every
    /// 32nd) keeps observability's own overhead within the E16 ≤3% budget.
    pub metrics_sample_shift: u32,
    /// Superblock dispatch in the machine (`fpvm_machine::block`): the
    /// interpreter executes pre-decoded runs of straight-line,
    /// non-trapping guest code as a unit between traps. Accounting is
    /// pinned bit-identical on/off/capped — the block engine may only
    /// move host wall time (`crates/bench/tests/sblock_pin.rs`, E18).
    pub superblocks: bool,
    /// Superblock formation cap: max instructions per block. A cap of 1
    /// cannot reach the two-instruction formation minimum, so it
    /// degenerates to the stepped loop (the passthrough ablation).
    pub superblock_cap: u32,
}

impl Default for FpvmConfig {
    fn default() -> Self {
        FpvmConfig {
            delivery: DeliveryMode::UserSignal,
            decode_cache: true,
            emulate_cache: true,
            interpose_math: true,
            interpose_output: true,
            gc_epoch: 400_000,
            gc_pressure: 1 << 20,
            gc_parallel: false,
            trap_and_patch: false,
            correctness_as_call: false,
            always_demote: false,
            nan_load_hw: false,
            max_insts: 4_000_000_000,
            taint_oracle: false,
            metrics: false,
            metrics_sample_shift: 5,
            superblocks: true,
            superblock_cap: DEFAULT_BLOCK_CAP,
        }
    }
}
