//! Exit reasons and structured runtime errors.
//!
//! When the engine cannot handle a trap it exits with a [`RuntimeError`]
//! that records *which pipeline stage* gave up, the faulting guest `rip`,
//! and — for software traps — the patched-site id involved, so workload
//! failures are diagnosable without a debugger.

use fpvm_machine::Fault;
use std::fmt;

/// The trap-pipeline stage a [`RuntimeError`] originated from.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Stage {
    /// Instruction decode (bad or truncated encoding at the trap site).
    Decode,
    /// Operand binding (the instruction has no bindable FP shape).
    Bind,
    /// Emulation (unemulable scalar op or an impossible destination).
    Emulate,
    /// Correctness-trap handling (bad side-table id, re-execution failed).
    Correctness,
    /// Trap-and-patch dispatch (unknown site id, re-execution failed).
    Patch,
    /// External-call interposition (native external behaved unexpectedly).
    External,
    /// §6.2 hardware NaN-hole handling.
    NanHole,
}

impl fmt::Display for Stage {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            Stage::Decode => "decode",
            Stage::Bind => "bind",
            Stage::Emulate => "emulate",
            Stage::Correctness => "correctness",
            Stage::Patch => "patch",
            Stage::External => "external",
            Stage::NanHole => "nan-hole",
        })
    }
}

/// A trap the runtime could not handle: which stage failed, where, and
/// (for software traps) the side-table / patch-site id involved.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RuntimeError {
    /// The pipeline stage that failed.
    pub stage: Stage,
    /// The faulting guest instruction pointer.
    pub rip: u64,
    /// The side-table or patch-site id, when the failing trap carried one.
    pub site: Option<u16>,
}

impl RuntimeError {
    /// An error in `stage` at guest address `rip`, with no site id.
    pub fn at(stage: Stage, rip: u64) -> Self {
        RuntimeError {
            stage,
            rip,
            site: None,
        }
    }

    /// Attach the software-trap site id.
    pub fn with_site(mut self, id: u16) -> Self {
        self.site = Some(id);
        self
    }
}

impl fmt::Display for RuntimeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} stage failed at rip {:#x}", self.stage, self.rip)?;
        if let Some(id) = self.site {
            write!(f, " (site id {id})")?;
        }
        Ok(())
    }
}

/// Why the virtualized run ended.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ExitReason {
    /// Guest executed `Halt`.
    Halted,
    /// Guest called `Exit`.
    Exited(i64),
    /// Fatal guest fault.
    Fault(Fault),
    /// A trap arrived that the runtime cannot handle (bad side-table id,
    /// unemulable instruction).
    RuntimeError(RuntimeError),
}

impl ExitReason {
    /// Shorthand for a [`RuntimeError`] exit with no site id.
    pub(crate) fn error(stage: Stage, rip: u64) -> Self {
        ExitReason::RuntimeError(RuntimeError::at(stage, rip))
    }

    /// Shorthand for a [`RuntimeError`] exit carrying a site id.
    pub(crate) fn error_at_site(stage: Stage, rip: u64, id: u16) -> Self {
        ExitReason::RuntimeError(RuntimeError::at(stage, rip).with_site(id))
    }
}

impl fmt::Display for ExitReason {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ExitReason::Halted => f.write_str("halted"),
            ExitReason::Exited(code) => write!(f, "exited with code {code}"),
            ExitReason::Fault(fault) => write!(f, "guest fault: {fault:?}"),
            ExitReason::RuntimeError(e) => write!(f, "runtime error: {e}"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_names_stage_rip_and_site() {
        let plain = RuntimeError::at(Stage::Decode, 0x1040);
        assert_eq!(plain.to_string(), "decode stage failed at rip 0x1040");
        let sited = RuntimeError::at(Stage::Correctness, 0x2000).with_site(7);
        assert_eq!(
            sited.to_string(),
            "correctness stage failed at rip 0x2000 (site id 7)"
        );
        assert_eq!(
            ExitReason::RuntimeError(sited).to_string(),
            "runtime error: correctness stage failed at rip 0x2000 (site id 7)"
        );
        assert_eq!(ExitReason::Exited(3).to_string(), "exited with code 3");
    }

    #[test]
    fn exit_reason_still_compares_structurally() {
        assert_eq!(
            ExitReason::error(Stage::Bind, 0x10),
            ExitReason::RuntimeError(RuntimeError {
                stage: Stage::Bind,
                rip: 0x10,
                site: None
            })
        );
        assert_ne!(
            ExitReason::error(Stage::Bind, 0x10),
            ExitReason::error(Stage::Emulate, 0x10)
        );
    }
}
