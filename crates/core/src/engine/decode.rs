//! The decode stage's cache (§5.3 footnote 8: "the decode cache hit rate
//! is nearly 100%").
//!
//! Decoded instructions are cached behind the [`DecodeCache`] trait so the
//! policy is swappable:
//!
//! * [`DirectMappedCache`] — the default. An inline array indexed by code
//!   offset, sized to the guest's code segment at run start, so every
//!   instruction address owns its slot and the hit path is a bounds check
//!   plus a load (no hashing).
//! * [`HashMapCache`] — the pre-refactor `HashMap` policy, kept as the
//!   microbenchmark baseline.
//! * [`PassthroughCache`] — never caches; backs the `decode_cache: false`
//!   ablation (every trap pays a full decode).
//!
//! Because the direct-mapped table has one slot per code byte, its
//! hit/miss counts are identical to the hash map's — the refactor changes
//! the lookup cost, never the accounting.

use fpvm_machine::{Inst, CODE_BASE};
use std::collections::HashMap;

/// A cached decode result: the instruction and its encoded length.
pub type DecodeEntry = (Inst, u8);

/// Policy interface for the decode stage's cache.
///
/// `Send` because the cache is owned by the engine and the engine must be
/// movable onto a fleet worker thread; a policy that needs shared state
/// should own it (or use `Arc`/atomics), not alias it through `Rc`.
pub trait DecodeCache: Send {
    /// Called once per [`crate::engine::Fpvm::run`] with the guest's code
    /// segment length and its content fingerprint, before any lookup.
    /// Implementations must drop every entry when the fingerprint differs
    /// from the one they were filled under — two *different* programs of
    /// identical length must never share entries (the stale-reload bug:
    /// keying on length alone served program A's decodes to program B).
    /// The default does nothing (stateless policies).
    fn prepare(&mut self, _code_len: usize, _fingerprint: u64) {}

    /// The cached entry at `rip`, if any.
    fn lookup(&self, rip: u64) -> Option<DecodeEntry>;

    /// Cache the decode result at `rip`.
    fn insert(&mut self, rip: u64, entry: DecodeEntry);

    /// Drop the entry at `rip` (trap-and-patch rewrote the site).
    fn invalidate(&mut self, rip: u64);

    /// Policy name, for benchmark labels.
    fn name(&self) -> &'static str;
}

/// Direct-mapped inline cache: one slot per guest code byte. Instruction
/// addresses are unique byte offsets, so the mapping is collision-free and
/// a lookup is a single indexed load.
#[derive(Debug, Default)]
pub struct DirectMappedCache {
    slots: Vec<Option<DecodeEntry>>,
    /// Fingerprint of the program the slots were filled under.
    fingerprint: u64,
}

impl DirectMappedCache {
    /// An empty cache; it sizes itself in [`DecodeCache::prepare`].
    pub fn new() -> Self {
        DirectMappedCache::default()
    }

    fn slot_index(&self, rip: u64) -> Option<usize> {
        let off = rip.checked_sub(CODE_BASE)? as usize;
        (off < self.slots.len()).then_some(off)
    }
}

impl DecodeCache for DirectMappedCache {
    fn prepare(&mut self, code_len: usize, fingerprint: u64) {
        // Keep existing entries only when re-running the *same* program
        // (same length and same content fingerprint — length alone is not
        // identity); `clear` + `resize` keeps the slot allocation.
        if self.slots.len() != code_len || self.fingerprint != fingerprint {
            self.slots.clear();
            self.slots.resize(code_len, None);
            self.fingerprint = fingerprint;
        }
    }

    fn lookup(&self, rip: u64) -> Option<DecodeEntry> {
        // Structurally non-panicking: a lookup before any `prepare` (or at
        // any out-of-segment rip) is a miss, never an index panic.
        let off = rip.checked_sub(CODE_BASE)? as usize;
        self.slots.get(off).copied().flatten()
    }

    fn insert(&mut self, rip: u64, entry: DecodeEntry) {
        if let Some(i) = self.slot_index(rip) {
            self.slots[i] = Some(entry);
        }
    }

    fn invalidate(&mut self, rip: u64) {
        if let Some(i) = self.slot_index(rip) {
            self.slots[i] = None;
        }
    }

    fn name(&self) -> &'static str {
        "direct-mapped"
    }
}

/// The pre-refactor policy: a `HashMap` keyed by rip. Retained as the
/// baseline the direct-mapped cache is benchmarked against.
#[derive(Debug, Default)]
pub struct HashMapCache {
    map: HashMap<u64, DecodeEntry>,
    /// Fingerprint of the program the map was filled under.
    fingerprint: u64,
}

impl HashMapCache {
    /// An empty hash-map cache.
    pub fn new() -> Self {
        HashMapCache::default()
    }
}

impl DecodeCache for HashMapCache {
    fn prepare(&mut self, _code_len: usize, fingerprint: u64) {
        // Same identity rule as the direct-mapped policy: entries only
        // survive across runs of the identical program.
        if self.fingerprint != fingerprint {
            self.map.clear();
            self.fingerprint = fingerprint;
        }
    }

    fn lookup(&self, rip: u64) -> Option<DecodeEntry> {
        self.map.get(&rip).copied()
    }

    fn insert(&mut self, rip: u64, entry: DecodeEntry) {
        self.map.insert(rip, entry);
    }

    fn invalidate(&mut self, rip: u64) {
        self.map.remove(&rip);
    }

    fn name(&self) -> &'static str {
        "hashmap"
    }
}

/// The `decode_cache: false` ablation: nothing is ever cached, so every
/// trap pays the full decode cost.
#[derive(Debug, Default)]
pub struct PassthroughCache;

impl DecodeCache for PassthroughCache {
    fn lookup(&self, _rip: u64) -> Option<DecodeEntry> {
        None
    }

    fn insert(&mut self, _rip: u64, _entry: DecodeEntry) {}

    fn invalidate(&mut self, _rip: u64) {}

    fn name(&self) -> &'static str {
        "passthrough"
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn entry() -> DecodeEntry {
        (Inst::Nop, 1)
    }

    #[test]
    fn direct_mapped_roundtrip_and_invalidate() {
        let mut c = DirectMappedCache::new();
        c.prepare(64, 0xAA);
        assert_eq!(c.lookup(CODE_BASE + 3), None);
        c.insert(CODE_BASE + 3, entry());
        assert_eq!(c.lookup(CODE_BASE + 3), Some(entry()));
        c.invalidate(CODE_BASE + 3);
        assert_eq!(c.lookup(CODE_BASE + 3), None);
    }

    #[test]
    fn direct_mapped_ignores_out_of_segment_rips() {
        let mut c = DirectMappedCache::new();
        c.prepare(16, 0xAA);
        c.insert(CODE_BASE + 100, entry()); // beyond the segment: dropped
        assert_eq!(c.lookup(CODE_BASE + 100), None);
        assert_eq!(c.lookup(CODE_BASE.wrapping_sub(1)), None);
    }

    #[test]
    fn direct_mapped_is_inert_before_prepare() {
        // A lookup or invalidate on a never-prepared cache must be a miss
        // or no-op, never an index panic (the engine consults the cache
        // only after `prepare`, but the policy must not rely on that).
        let c = DirectMappedCache::new();
        assert_eq!(c.lookup(CODE_BASE), None);
        assert_eq!(c.lookup(CODE_BASE + 1000), None);
        assert_eq!(c.lookup(0), None);
        assert_eq!(c.lookup(u64::MAX), None);
        let mut c = DirectMappedCache::new();
        c.invalidate(CODE_BASE + 5); // unprepared: no-op
        c.insert(CODE_BASE + 5, entry()); // unprepared: dropped
        assert_eq!(c.lookup(CODE_BASE + 5), None);
    }

    #[test]
    fn direct_mapped_persists_across_same_program_prepare() {
        let mut c = DirectMappedCache::new();
        c.prepare(32, 0xAA);
        c.insert(CODE_BASE + 1, entry());
        c.prepare(32, 0xAA); // same program re-run: keep entries
        assert_eq!(c.lookup(CODE_BASE + 1), Some(entry()));
        c.prepare(48, 0xAA); // different length: flushed
        assert_eq!(c.lookup(CODE_BASE + 1), None);
    }

    #[test]
    fn same_length_different_program_flushes() {
        // The stale-reload bug: two different programs of identical length
        // must not share entries. The fingerprint is the identity.
        let mut c = DirectMappedCache::new();
        c.prepare(32, 0xAA);
        c.insert(CODE_BASE + 1, entry());
        c.prepare(32, 0xBB); // same length, different program: flushed
        assert_eq!(c.lookup(CODE_BASE + 1), None);

        let mut h = HashMapCache::new();
        h.prepare(32, 0xAA);
        h.insert(CODE_BASE + 1, entry());
        h.prepare(32, 0xAA);
        assert_eq!(h.lookup(CODE_BASE + 1), Some(entry()), "same program");
        h.prepare(32, 0xBB);
        assert_eq!(h.lookup(CODE_BASE + 1), None, "different program");
    }

    #[test]
    fn hashmap_and_passthrough_policies() {
        let mut h = HashMapCache::new();
        h.insert(CODE_BASE, entry());
        assert_eq!(h.lookup(CODE_BASE), Some(entry()));
        h.invalidate(CODE_BASE);
        assert_eq!(h.lookup(CODE_BASE), None);

        let mut p = PassthroughCache;
        p.insert(CODE_BASE, entry());
        assert_eq!(p.lookup(CODE_BASE), None);
    }
}
