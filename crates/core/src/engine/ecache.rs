//! The emulate cache: the decode cache extended one stage deeper (§5.3).
//!
//! The decode cache memoizes *what the bytes at a RIP decode to*; the
//! emulate cache additionally memoizes *how the decoded instruction binds*
//! — the machine-independent [`BoundPlan`] produced by
//! [`crate::bound::plan`]. A hot trap that hits here skips both the full
//! decode and the instruction-shape match in the bind stage; all that
//! remains per trap is resolving the plan's symbolic memory operands
//! against current register state.
//!
//! Only [`crate::bound::Planability::Static`] instructions are cached.
//! Data-dependent bindings (the XorPd/AndPd mask inspection) and
//! unbindable shapes never enter the cache, so a hit can never replay a
//! stale machine-state-dependent decision.
//!
//! Invalidation is unified with the decode cache: trap-and-patch rewrites
//! go through [`crate::engine::Fpvm`]'s `invalidate_site`, which drops the
//! entry from both caches, and `prepare` applies the same
//! program-fingerprint identity rule (two different programs of identical
//! length must never share entries).
//!
//! Determinism: the cache changes *host* work only. A hit performs the
//! same tallies, charges the same deterministic cycle costs, and emits the
//! same trace events as a decode-cache hit followed by a fresh bind, so
//! Fig. 9 accounting is bit-identical with the cache on, off, or ablated
//! ([`PassthroughEmulateCache`]) — pinned by `crates/bench` tests.

use crate::bound::BoundPlan;
use fpvm_machine::{Inst, CODE_BASE};

/// A cached trap plan: the decoded instruction, its encoded length, and
/// its memoized bound-operand plan.
#[derive(Debug, Clone, Copy)]
pub struct EmulateEntry {
    /// The decoded faulting instruction.
    pub inst: Inst,
    /// Its encoded length in bytes.
    pub len: u8,
    /// The machine-independent operand plan.
    pub plan: BoundPlan,
}

/// Policy interface for the emulate cache. Same contract as
/// [`super::DecodeCache`]: `prepare` must drop entries filled under a
/// different program fingerprint, and lookups before `prepare` (or at
/// out-of-segment RIPs) are misses, never panics.
pub trait EmulateCache: Send {
    /// Called once per [`crate::engine::Fpvm::run`] with the guest's code
    /// segment length and content fingerprint, before any lookup.
    fn prepare(&mut self, _code_len: usize, _fingerprint: u64) {}

    /// The cached plan at `rip`, if any.
    fn lookup(&self, rip: u64) -> Option<EmulateEntry>;

    /// Cache the plan at `rip`.
    fn insert(&mut self, rip: u64, entry: EmulateEntry);

    /// Drop the entry at `rip` (trap-and-patch rewrote the site).
    fn invalidate(&mut self, rip: u64);

    /// Policy name, for benchmark labels.
    fn name(&self) -> &'static str;
}

/// Direct-mapped emulate cache: one slot per guest code byte, same
/// collision-free layout as [`super::DirectMappedCache`].
#[derive(Debug, Default)]
pub struct DirectMappedEmulateCache {
    slots: Vec<Option<EmulateEntry>>,
    /// Fingerprint of the program the slots were filled under.
    fingerprint: u64,
}

impl DirectMappedEmulateCache {
    /// An empty cache; it sizes itself in [`EmulateCache::prepare`].
    pub fn new() -> Self {
        DirectMappedEmulateCache::default()
    }

    fn slot_index(&self, rip: u64) -> Option<usize> {
        let off = rip.checked_sub(CODE_BASE)? as usize;
        (off < self.slots.len()).then_some(off)
    }
}

impl EmulateCache for DirectMappedEmulateCache {
    fn prepare(&mut self, code_len: usize, fingerprint: u64) {
        if self.slots.len() != code_len || self.fingerprint != fingerprint {
            self.slots.clear();
            self.slots.resize(code_len, None);
            self.fingerprint = fingerprint;
        }
    }

    fn lookup(&self, rip: u64) -> Option<EmulateEntry> {
        let off = rip.checked_sub(CODE_BASE)? as usize;
        self.slots.get(off).copied().flatten()
    }

    fn insert(&mut self, rip: u64, entry: EmulateEntry) {
        if let Some(i) = self.slot_index(rip) {
            self.slots[i] = Some(entry);
        }
    }

    fn invalidate(&mut self, rip: u64) {
        if let Some(i) = self.slot_index(rip) {
            self.slots[i] = None;
        }
    }

    fn name(&self) -> &'static str {
        "direct-mapped-emulate"
    }
}

/// The `emulate_cache: false` ablation: nothing is ever cached, so every
/// trap pays the full bind.
#[derive(Debug, Default)]
pub struct PassthroughEmulateCache;

impl EmulateCache for PassthroughEmulateCache {
    fn lookup(&self, _rip: u64) -> Option<EmulateEntry> {
        None
    }

    fn insert(&mut self, _rip: u64, _entry: EmulateEntry) {}

    fn invalidate(&mut self, _rip: u64) {}

    fn name(&self) -> &'static str {
        "passthrough-emulate"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::bound::{plan, Planability};
    use fpvm_machine::{Inst, Xmm, XM};

    fn entry() -> EmulateEntry {
        let inst = Inst::AddSd {
            dst: Xmm(0),
            src: XM::Reg(Xmm(1)),
        };
        let Planability::Static(plan) = plan(&inst, CODE_BASE + 4) else {
            panic!("addsd must be static");
        };
        EmulateEntry { inst, len: 4, plan }
    }

    fn lane_dst(e: &EmulateEntry) -> crate::bound::Dst {
        e.plan.lanes[0].as_ref().unwrap().dst
    }

    #[test]
    fn roundtrip_invalidate_and_identity_rule() {
        let mut c = DirectMappedEmulateCache::new();
        c.prepare(64, 0xAA);
        assert!(c.lookup(CODE_BASE + 3).is_none());
        c.insert(CODE_BASE + 3, entry());
        let hit = c.lookup(CODE_BASE + 3).unwrap();
        assert_eq!(lane_dst(&hit), lane_dst(&entry()));
        c.invalidate(CODE_BASE + 3);
        assert!(c.lookup(CODE_BASE + 3).is_none());

        // Same program: entries survive. Same length, different program:
        // flushed (the stale-reload rule, shared with the decode cache).
        c.insert(CODE_BASE + 3, entry());
        c.prepare(64, 0xAA);
        assert!(c.lookup(CODE_BASE + 3).is_some());
        c.prepare(64, 0xBB);
        assert!(c.lookup(CODE_BASE + 3).is_none());
    }

    #[test]
    fn inert_before_prepare_and_out_of_segment() {
        let c = DirectMappedEmulateCache::new();
        assert!(c.lookup(CODE_BASE).is_none());
        assert!(c.lookup(0).is_none());
        assert!(c.lookup(u64::MAX).is_none());
        let mut c = DirectMappedEmulateCache::new();
        c.invalidate(CODE_BASE + 5);
        c.insert(CODE_BASE + 5, entry());
        assert!(c.lookup(CODE_BASE + 5).is_none());
        c.prepare(16, 0xAA);
        c.insert(CODE_BASE + 100, entry()); // beyond the segment: dropped
        assert!(c.lookup(CODE_BASE + 100).is_none());
    }

    #[test]
    fn passthrough_never_caches() {
        let mut p = PassthroughEmulateCache;
        p.insert(CODE_BASE, entry());
        assert!(p.lookup(CODE_BASE).is_none());
    }
}
