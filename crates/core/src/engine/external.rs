//! External-call interposition: the math wrapper and the output wrapper,
//! an `LD_PRELOAD`-style shim (§2, §4.2).

use super::accounting::Counter;
use super::exit::{ExitReason, Stage};
use super::Fpvm;
use crate::bound::Loc;
use crate::metrics::MetricStage;
use crate::stats::Component;
use crate::trace::{ExtDisposition, TraceEvent};
use fpvm_arith::{ArithSystem, Round};
use fpvm_machine::{Event, ExtFn, Machine};
use std::time::Instant;

impl<A: ArithSystem> Fpvm<A> {
    /// Handle an external call: route libm into the arithmetic system (the
    /// math wrapper), demote-for-rendering on output (the output wrapper),
    /// or demote FP argument registers and forward natively. The default
    /// [`super::HandlerTable::ext_call`] handler.
    pub fn on_ext_call(
        &mut self,
        m: &mut Machine,
        f: ExtFn,
        rip: u64,
        next_rip: u64,
    ) -> Result<(), ExitReason> {
        let t0 = self.acct.ext_metrics_begin();
        if f.is_math() && self.config.interpose_math {
            self.acct.tally(Counter::MathInterposed);
            let t = Instant::now();
            let rm = m.mxcsr.rounding();
            let mut emu = self.emulator();
            let a = emu.unbox(m.xmm[0][0]);
            let (v, flags) = match f {
                ExtFn::Sin => emu.arith.sin(&a, rm),
                ExtFn::Cos => emu.arith.cos(&a, rm),
                ExtFn::Tan => emu.arith.tan(&a, rm),
                ExtFn::Asin => emu.arith.asin(&a, rm),
                ExtFn::Acos => emu.arith.acos(&a, rm),
                ExtFn::Atan => emu.arith.atan(&a, rm),
                ExtFn::Exp => emu.arith.exp(&a, rm),
                ExtFn::Log => emu.arith.log(&a, rm),
                ExtFn::Log10 => emu.arith.log10(&a, rm),
                ExtFn::Floor => emu.arith.floor(&a),
                ExtFn::Ceil => emu.arith.ceil(&a),
                ExtFn::Fabs => emu.arith.abs(&a),
                ExtFn::Atan2 => {
                    let b = emu.unbox(m.xmm[1][0]);
                    emu.arith.atan2(&a, &b, rm)
                }
                ExtFn::Pow => {
                    let b = emu.unbox(m.xmm[1][0]);
                    emu.arith.pow(&a, &b, rm)
                }
                _ => unreachable!("is_math"),
            };
            let boxed = emu.boxv(v);
            m.mxcsr.raise(flags);
            m.xmm[0][0] = boxed;
            m.taint_reclassify_xmm(0, 0);
            m.rip = next_rip;
            let ns = t.elapsed().as_nanos() as u64;
            let dispatch = m.cost.emulate_dispatch;
            let cycles = self
                .acct
                .charge_measured(m, Component::Emulate, ns, dispatch);
            self.acct.emit(|| TraceEvent::ExtCall {
                rip,
                f,
                disposition: ExtDisposition::Math,
                cycles,
            });
            self.acct.stage_record(MetricStage::ExtCall, t0);
            return Ok(());
        }
        if f == ExtFn::PrintF64 && self.config.interpose_output {
            // The output wrapper: demote for printing without destroying
            // the box ("hijack such output functions … to promote %lf").
            self.acct.tally(Counter::OutputWrapped);
            let bits = m.xmm[0][0];
            let (demoted_bits, full) = if let Some(key) = fpvm_nanbox::decode(bits) {
                self.acct.tally(Counter::Demotions);
                match self.arena.get(key) {
                    Some(v) => {
                        let (d, _) = self.arith.to_f64(v, Round::NearestEven);
                        (d.to_bits(), self.arith.render(v))
                    }
                    None => (f64::NAN.to_bits(), "nan".to_string()),
                }
            } else {
                let d = f64::from_bits(bits);
                (bits, format!("{d:?}"))
            };
            m.output.push(fpvm_machine::OutputEvent::F64(demoted_bits));
            self.rendered.push(full);
            m.rip = next_rip;
            self.acct.emit(|| TraceEvent::ExtCall {
                rip,
                f,
                disposition: ExtDisposition::Output,
                cycles: 0,
            });
            self.acct.stage_record(MetricStage::ExtCall, t0);
            return Ok(());
        }
        // Non-interposed external (or stdio/services): demote FP argument
        // registers at the call site (§4.2 "for calls into external
        // libraries, NaN-boxed values passed as arguments can be
        // problematic … we demote NaN-boxed floating point registers at
        // the call site"), then forward natively.
        for i in 0..f.fp_args() {
            self.demote_loc(m, Loc::XmmLane(i as u8, 0));
        }
        if let Some(ev) = m.exec_ext_native(f) {
            match ev {
                Event::Exited(code) => return Err(ExitReason::Exited(code)),
                _ => return Err(ExitReason::error(Stage::External, m.rip)),
            }
        }
        m.rip = next_rip;
        self.acct.emit(|| TraceEvent::ExtCall {
            rip,
            f,
            disposition: ExtDisposition::Native,
            cycles: 0,
        });
        self.acct.stage_record(MetricStage::ExtCall, t0);
        Ok(())
    }
}
