//! The handler table: event routing for software traps, external calls,
//! and §6.2 NaN-hole faults.
//!
//! The run loop no longer hard-codes a match over event kinds; it
//! dispatches through this table. Each slot is a plain function pointer so
//! replacing a handler is cheap, and the defaults simply forward to the
//! engine's built-in stages ([`Fpvm::on_correctness_trap`],
//! [`Fpvm::on_patch_call`], [`Fpvm::on_ext_call`], [`Fpvm::on_nan_hole`]) —
//! a custom handler can wrap or replace them and still delegate.

use super::exit::ExitReason;
use super::Fpvm;
use fpvm_arith::ArithSystem;
use fpvm_machine::{ExtFn, Machine};

/// Handler for a software trap (`Trap` instruction): receives the trap id
/// and the faulting rip.
pub type SwTrapHandler<A> = fn(&mut Fpvm<A>, &mut Machine, u16, u64) -> Result<(), ExitReason>;

/// Handler for an external call: receives the callee, the call-site rip,
/// and the return rip.
pub type ExtCallHandler<A> =
    fn(&mut Fpvm<A>, &mut Machine, ExtFn, u64, u64) -> Result<(), ExitReason>;

/// Handler for a §6.2 hardware NaN-hole fault: receives the faulting rip.
pub type NanHoleHandler<A> = fn(&mut Fpvm<A>, &mut Machine, u64) -> Result<(), ExitReason>;

/// Routing table consulted by [`Fpvm::run`] for every non-FP-exception
/// event. Obtain it through [`Fpvm::handlers_mut`] to register overrides.
pub struct HandlerTable<A: ArithSystem> {
    /// `Trap { kind: Correctness }` sites (§4.2 static-analysis patches).
    pub correctness: SwTrapHandler<A>,
    /// `Trap { kind: PatchCall }` sites (§3.2 trap-and-patch).
    pub patch_call: SwTrapHandler<A>,
    /// External calls (math wrapper, output wrapper, native forwarding).
    pub ext_call: ExtCallHandler<A>,
    /// §6.2 NaN-hole faults (trap-on-NaN-load hardware extension).
    pub nan_hole: NanHoleHandler<A>,
}

impl<A: ArithSystem> Default for HandlerTable<A> {
    fn default() -> Self {
        HandlerTable {
            correctness: |vm, m, id, rip| vm.on_correctness_trap(m, id, rip),
            patch_call: |vm, m, id, rip| vm.on_patch_call(m, id, rip),
            ext_call: |vm, m, f, rip, next_rip| vm.on_ext_call(m, f, rip, next_rip),
            nan_hole: |vm, m, rip| vm.on_nan_hole(m, rip),
        }
    }
}
