//! The trap frame and the trap-and-emulate front half of the pipeline:
//! delivery accounting → decode (cached) → bind → emulate → patch.

use super::accounting::Counter;
use super::exit::{ExitReason, Stage};
use super::Fpvm;
use crate::metrics::MetricStage;
use crate::stats::Component;
use crate::trace::TraceEvent;
use fpvm_arith::{ArithSystem, FpFlags};
use fpvm_machine::{decode, Inst, Machine, CODE_BASE};

/// One hardware FP trap's lifecycle: the faulting site, the sticky
/// condition flags at delivery, and — once the decode stage has run — the
/// decoded instruction and its extent. Built by
/// [`Fpvm::on_fp_trap`] and threaded through the pipeline stages.
#[derive(Debug, Clone, Copy)]
pub struct TrapFrame {
    /// The faulting guest instruction pointer.
    pub rip: u64,
    /// MXCSR condition flags captured at delivery (cleared on entry, §4.1).
    pub flags: FpFlags,
    /// The decoded faulting instruction.
    pub inst: Inst,
    /// Its encoded length in bytes.
    pub len: u8,
}

impl TrapFrame {
    /// The resume point after the faulting instruction.
    pub fn next_rip(&self) -> u64 {
        self.rip + u64::from(self.len)
    }
}

impl<A: ArithSystem> Fpvm<A> {
    /// Handle one hardware FP exception: the trap-and-emulate pipeline.
    pub fn on_fp_trap(
        &mut self,
        m: &mut Machine,
        rip: u64,
        flags: FpFlags,
    ) -> Result<(), ExitReason> {
        self.acct.tally(Counter::FpTraps);
        // Wall-clock plane: tick the sample sequence and, on sampled
        // traps, time the whole frame (the ns/trap distribution).
        let t_frame = self.acct.trap_metrics_begin();
        // Delivery cost (Fig. 9: hardware + kernel + user components).
        let (hw, kern, user) = m.cost.delivery_parts(self.config.delivery);
        self.acct.charge(m, Component::Hardware, hw);
        self.acct.charge(m, Component::Kernel, kern);
        self.acct.charge(m, Component::UserDelivery, user);
        let icount = m.icount;
        self.acct.emit(|| TraceEvent::TrapBegin {
            rip,
            icount,
            hardware: hw,
            kernel: kern,
            user,
        });
        // Inspect and clear the sticky condition codes (§4.1 "Trapping").
        m.mxcsr.clear_flags();
        // Emulate-cache fast path: the decoded instruction *and* its bound
        // plan are memoized, so this trap skips the full decode and the
        // bind stage's instruction-shape match. Accounting is replayed
        // exactly as the slow path would have charged it (a decode-cache
        // hit plus a fresh bind), so deterministic cycles and counters are
        // bit-identical with the cache off. Gated on `decode_cache` too:
        // the decode_cache=false ablation must pay a full decode per trap.
        if self.config.emulate_cache && self.config.decode_cache {
            if let Some(entry) = self.ecache.lookup(rip) {
                let t_decode = self.acct.stage_timer();
                self.acct.tally(Counter::DecodeHits);
                let cyc = m.cost.decode_cost(true);
                self.acct.charge(m, Component::Decode, cyc);
                self.acct.emit(|| TraceEvent::Decode {
                    rip,
                    hit: true,
                    cycles: cyc,
                });
                self.acct.stage_record(MetricStage::Decode, t_decode);
                let bind_cost = m.cost.bind;
                self.acct.charge(m, Component::Bind, bind_cost);
                self.acct.emit(|| TraceEvent::Bind {
                    rip,
                    cycles: bind_cost,
                });
                let t_bind = self.acct.stage_timer();
                let b = entry.plan.resolve(m);
                self.acct.stage_record(MetricStage::Bind, t_bind);
                self.emulate_bound(m, &b)?;
                if self.config.trap_and_patch {
                    let frame = TrapFrame {
                        rip,
                        flags,
                        inst: entry.inst,
                        len: entry.len,
                    };
                    self.install_patch(m, &frame);
                }
                self.acct.stage_record(MetricStage::Frame, t_frame);
                return Ok(());
            }
        }
        // Decode (through the cache) fills in the rest of the frame.
        let (inst, len) = self.decode_at(m, rip)?;
        let frame = TrapFrame {
            rip,
            flags,
            inst,
            len,
        };
        // Bind + emulate.
        let bind_cost = m.cost.bind;
        self.acct.charge(m, Component::Bind, bind_cost);
        self.acct.emit(|| TraceEvent::Bind {
            rip,
            cycles: bind_cost,
        });
        self.emulate(m, &frame.inst, frame.next_rip())?;
        // Memoize the bound plan for the next trap at this site (only
        // statically plannable shapes enter the cache). Insert *before*
        // install_patch so a patched site's entry is invalidated, not
        // resurrected.
        if self.config.emulate_cache && self.config.decode_cache {
            if let crate::bound::Planability::Static(plan) =
                crate::bound::plan(&frame.inst, frame.next_rip())
            {
                self.ecache.insert(
                    rip,
                    super::ecache::EmulateEntry {
                        inst: frame.inst,
                        len: frame.len,
                        plan,
                    },
                );
            }
        }
        // Trap-and-patch: install a patch at this site so the next
        // encounter dispatches via a cheap call instead of a trap.
        if self.config.trap_and_patch {
            self.install_patch(m, &frame);
        }
        self.acct.stage_record(MetricStage::Frame, t_frame);
        Ok(())
    }

    /// The decode stage: consult the [`super::DecodeCache`], fall back to a
    /// full decode on miss, and charge the stage through the accounting
    /// sink.
    pub(crate) fn decode_at(
        &mut self,
        m: &mut Machine,
        rip: u64,
    ) -> Result<(Inst, u8), ExitReason> {
        let t_decode = self.acct.stage_timer();
        if let Some(hit) = self.cache.lookup(rip) {
            self.acct.tally(Counter::DecodeHits);
            let cyc = m.cost.decode_cost(true);
            self.acct.charge(m, Component::Decode, cyc);
            self.acct.emit(|| TraceEvent::Decode {
                rip,
                hit: true,
                cycles: cyc,
            });
            self.acct.stage_record(MetricStage::Decode, t_decode);
            return Ok(hit);
        }
        self.acct.tally(Counter::DecodeMisses);
        let cyc = m.cost.decode_cost(false);
        self.acct.charge(m, Component::Decode, cyc);
        self.acct.emit(|| TraceEvent::Decode {
            rip,
            hit: false,
            cycles: cyc,
        });
        let off = (rip - CODE_BASE) as usize;
        match decode(m.mem.code_bytes(), off) {
            Ok((inst, len)) => {
                let entry = (inst, len as u8);
                self.cache.insert(rip, entry);
                self.acct.stage_record(MetricStage::Decode, t_decode);
                Ok(entry)
            }
            Err(_) => Err(ExitReason::error(Stage::Decode, rip)),
        }
    }
}
