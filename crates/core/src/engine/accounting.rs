//! The accounting sink: every cycle the engine charges and every event it
//! counts flows through [`Accounting`].
//!
//! The pre-refactor runtime triple-wrote each charge
//! (`stats.cycles.X += c; m.charge(c)` at every site); here a charge is one
//! call naming its [`Component`], so the per-stage breakdown, the machine's
//! cycle counter, and the measured-time counters can never drift apart.

use crate::metrics::{EngineMetrics, MetricStage};
use crate::stats::{Component, GcRecord, Stats};
use crate::trace::{NullSink, TraceEvent, TraceSink};
use fpvm_machine::Machine;
use std::fmt;
use std::time::Instant;

/// An event counter in [`Stats`], named so handlers can tally through the
/// sink instead of reaching into the struct.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Counter {
    /// Hardware FP exceptions delivered to FPVM.
    FpTraps,
    /// Decode-cache hits.
    DecodeHits,
    /// Decode-cache misses (full decodes).
    DecodeMisses,
    /// Instructions emulated.
    Emulated,
    /// Scalar lanes emulated.
    EmulatedLanes,
    /// Unboxed f64 → alternative-system promotions.
    Promotions,
    /// Shadow values allocated (boxes created).
    BoxesCreated,
    /// Shadow → f64 demotions.
    Demotions,
    /// Correctness traps taken.
    CorrectnessTraps,
    /// §6.2 hardware NaN-hole traps taken.
    NanHoleTraps,
    /// Correctness traps that demoted a boxed operand.
    CorrectnessDemotions,
    /// Math-library calls interposed.
    MathInterposed,
    /// Output-wrapper invocations.
    OutputWrapped,
    /// Patch-site fast-path executions.
    PatchFast,
    /// Patch-site slow-path executions.
    PatchSlow,
    /// Sites dynamically patched.
    SitesPatched,
}

/// The unified per-stage accounting sink. Owns the run's [`Stats`] (the
/// engine's stages and handlers hold no counters of their own) and the
/// run's [`TraceSink`], so telemetry hangs off the same choke point that
/// charges cycles.
pub struct Accounting {
    stats: Stats,
    sink: Box<dyn TraceSink>,
    tracing: bool,
    metrics: Option<Box<EngineMetrics>>,
    msample: bool,
}

impl Default for Accounting {
    fn default() -> Self {
        Accounting {
            stats: Stats::default(),
            sink: Box::new(NullSink),
            tracing: false,
            metrics: None,
            msample: false,
        }
    }
}

impl fmt::Debug for Accounting {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Accounting")
            .field("stats", &self.stats)
            .field("sink", &self.sink.name())
            .field("tracing", &self.tracing)
            .field("metrics", &self.metrics.is_some())
            .finish()
    }
}

impl Accounting {
    /// A fresh sink with zeroed statistics and tracing disabled.
    pub fn new() -> Self {
        Accounting::default()
    }

    /// Install a trace sink; its [`TraceSink::enabled`] answer is cached
    /// here so disabled tracing costs one branch per emit site.
    pub fn set_sink(&mut self, sink: Box<dyn TraceSink>) {
        self.tracing = sink.enabled();
        self.sink = sink;
    }

    /// Remove the installed sink (handing it back for inspection) and
    /// revert to the disabled [`NullSink`].
    pub fn take_sink(&mut self) -> Box<dyn TraceSink> {
        self.tracing = false;
        std::mem::replace(&mut self.sink, Box::new(NullSink))
    }

    /// Is a live trace sink installed?
    #[inline]
    pub fn tracing(&self) -> bool {
        self.tracing
    }

    /// Emit a trace event. The closure defers event construction so the
    /// disabled path does no argument formatting or allocation.
    #[inline]
    pub fn emit(&mut self, ev: impl FnOnce() -> TraceEvent) {
        if self.tracing {
            let e = ev();
            self.sink.emit(&e);
        }
    }

    /// Attach the wall-clock metrics plane. Until the next
    /// [`Accounting::trap_metrics_begin`] / `ext_metrics_begin` tick, no
    /// stage is sampled.
    pub fn set_metrics(&mut self, m: EngineMetrics) {
        self.metrics = Some(Box::new(m));
        self.msample = false;
    }

    /// Detach and return the metrics plane, if one was attached.
    pub fn take_metrics(&mut self) -> Option<Box<EngineMetrics>> {
        self.msample = false;
        self.metrics.take()
    }

    /// Read-only view of the metrics plane.
    pub fn metrics(&self) -> Option<&EngineMetrics> {
        self.metrics.as_deref()
    }

    /// Trap-entry tick of the metrics plane: advance the trap sequence,
    /// decide (purely from that sequence) whether this trap's stages are
    /// sampled, and if so start the whole-frame timer. With the plane
    /// detached this is the one cached branch the disabled path pays.
    #[inline]
    pub fn trap_metrics_begin(&mut self) -> Option<Instant> {
        match &mut self.metrics {
            None => None,
            Some(m) => {
                self.msample = m.trap_tick();
                self.msample.then(Instant::now)
            }
        }
    }

    /// Ext-call tick of the metrics plane (independent sequence — ext-call
    /// interposition bypasses `on_fp_trap`).
    #[inline]
    pub fn ext_metrics_begin(&mut self) -> Option<Instant> {
        match &mut self.metrics {
            None => None,
            Some(m) => {
                self.msample = m.ext_tick();
                self.msample.then(Instant::now)
            }
        }
    }

    /// Start a stage timer if the current trap is sampled.
    #[inline]
    pub fn stage_timer(&self) -> Option<Instant> {
        self.msample.then(Instant::now)
    }

    /// Record a stage latency begun at `t0` (no-op when `t0` is `None`,
    /// i.e. the trap was not sampled or the plane is detached).
    #[inline]
    pub fn stage_record(&mut self, stage: MetricStage, t0: Option<Instant>) {
        if let (Some(t0), Some(m)) = (t0, &mut self.metrics) {
            m.record(stage, t0.elapsed().as_nanos() as u64);
        }
    }

    /// Read-only view of the accumulated statistics.
    pub fn stats(&self) -> &Stats {
        &self.stats
    }

    /// Zero the accumulated statistics (engine recycle): the next run
    /// starts from the same state a fresh sink would.
    pub fn reset_stats(&mut self) {
        self.stats = Stats::default();
    }

    /// Snapshot the statistics (for [`crate::engine::RunReport`]).
    pub fn snapshot(&self) -> Stats {
        self.stats.clone()
    }

    /// Increment an event counter.
    pub fn tally(&mut self, c: Counter) {
        let slot = match c {
            Counter::FpTraps => &mut self.stats.fp_traps,
            Counter::DecodeHits => &mut self.stats.decode_hits,
            Counter::DecodeMisses => &mut self.stats.decode_misses,
            Counter::Emulated => &mut self.stats.emulated,
            Counter::EmulatedLanes => &mut self.stats.emulated_lanes,
            Counter::Promotions => &mut self.stats.promotions,
            Counter::BoxesCreated => &mut self.stats.boxes_created,
            Counter::Demotions => &mut self.stats.demotions,
            Counter::CorrectnessTraps => &mut self.stats.correctness_traps,
            Counter::NanHoleTraps => &mut self.stats.nan_hole_traps,
            Counter::CorrectnessDemotions => &mut self.stats.correctness_demotions,
            Counter::MathInterposed => &mut self.stats.math_interposed,
            Counter::OutputWrapped => &mut self.stats.output_wrapped,
            Counter::PatchFast => &mut self.stats.patch_fast,
            Counter::PatchSlow => &mut self.stats.patch_slow,
            Counter::SitesPatched => &mut self.stats.sites_patched,
        };
        *slot += 1;
    }

    /// Charge deterministic model cycles against one component: attributes
    /// them in the breakdown and charges the machine's cycle counter.
    pub fn charge(&mut self, m: &mut Machine, component: Component, cycles: u64) {
        self.stats.cycles.add(component, cycles);
        m.charge(cycles);
    }

    /// Charge a *measured* stage: convert host nanoseconds at the profile
    /// clock, add `extra_cycles` of fixed dispatch cost, and attribute the
    /// sum. Measured nanoseconds are also recorded for the components that
    /// track them (emulation, GC). Returns the cycles charged.
    pub fn charge_measured(
        &mut self,
        m: &mut Machine,
        component: Component,
        ns: u64,
        extra_cycles: u64,
    ) -> u64 {
        match component {
            Component::Emulate => self.stats.emulate_ns += ns,
            Component::Gc => self.stats.gc_ns += ns,
            _ => {}
        }
        let cycles = m.cost.ns_to_cycles(ns) + extra_cycles;
        self.charge(m, component, cycles);
        cycles
    }

    /// Record a completed GC pass (pass count, measured time, Fig. 10
    /// record). Cycle attribution, when due, is a separate
    /// [`Accounting::charge`] against [`Component::Gc`].
    pub fn record_gc(&mut self, rec: GcRecord) {
        self.stats.gc_passes += 1;
        self.stats.gc_ns += rec.ns;
        self.stats.gc_records.push(rec);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fpvm_machine::CostModel;

    #[test]
    fn charge_updates_breakdown_and_machine_together() {
        let mut m = Machine::new(CostModel::r815());
        let mut acct = Accounting::new();
        acct.charge(&mut m, Component::Decode, 45);
        acct.charge(&mut m, Component::Decode, 45);
        acct.charge(&mut m, Component::Bind, 320);
        assert_eq!(acct.stats().cycles.decode, 90);
        assert_eq!(acct.stats().cycles.bind, 320);
        assert_eq!(m.cycles, 410);
        assert_eq!(acct.stats().cycles.total(), 410);
    }

    #[test]
    fn measured_charges_convert_and_track_ns() {
        let mut m = Machine::new(CostModel::r815());
        let mut acct = Accounting::new();
        let cyc = acct.charge_measured(&mut m, Component::Emulate, 1000, 700);
        assert_eq!(cyc, m.cost.ns_to_cycles(1000) + 700);
        assert_eq!(acct.stats().emulate_ns, 1000);
        assert_eq!(acct.stats().cycles.emulate, cyc);
        assert_eq!(m.cycles, cyc);
        // CorrectnessHandler is measured but has no ns counter.
        acct.charge_measured(&mut m, Component::CorrectnessHandler, 500, 0);
        assert_eq!(acct.stats().emulate_ns, 1000);
        assert_eq!(acct.stats().gc_ns, 0);
    }

    #[test]
    fn emit_is_skipped_when_disabled_and_delivered_when_enabled() {
        use crate::trace::{RingBufferSink, TraceEvent};
        let mut acct = Accounting::new();
        assert!(!acct.tracing(), "NullSink is the default");
        // Disabled: the closure must never run.
        acct.emit(|| unreachable!("disabled sink constructed an event"));
        acct.set_sink(Box::new(RingBufferSink::new(4)));
        assert!(acct.tracing());
        acct.emit(|| TraceEvent::Bind {
            rip: 0x40,
            cycles: 320,
        });
        // Teardown: take the owned sink back and downcast to inspect it.
        let back = acct.take_sink();
        assert_eq!(back.name(), "ring");
        assert!(!acct.tracing(), "take reverts to NullSink");
        let ring: Box<RingBufferSink> = back.downcast().unwrap();
        assert_eq!(ring.len(), 1);
    }

    #[test]
    fn metrics_plane_samples_only_when_attached_and_ticked() {
        let mut acct = Accounting::new();
        // Detached: every hook is inert.
        assert!(acct.trap_metrics_begin().is_none());
        assert!(acct.stage_timer().is_none());
        acct.stage_record(MetricStage::Decode, None);
        assert!(acct.metrics().is_none());
        // Attached with shift 1: alternating traps are sampled.
        acct.set_metrics(EngineMetrics::new(1));
        assert!(acct.stage_timer().is_none(), "no tick yet");
        let t0 = acct.trap_metrics_begin();
        assert!(t0.is_some(), "first trap is always sampled");
        let td = acct.stage_timer();
        acct.stage_record(MetricStage::Decode, td);
        acct.stage_record(MetricStage::Frame, t0);
        assert!(acct.trap_metrics_begin().is_none(), "second trap skipped");
        assert!(acct.stage_timer().is_none());
        let m = acct.take_metrics().expect("plane comes back");
        assert_eq!(m.stage_histogram(MetricStage::Decode).count(), 1);
        assert_eq!(m.stage_histogram(MetricStage::Frame).count(), 1);
        assert_eq!(m.stage_histogram(MetricStage::Bind).count(), 0);
        assert!(acct.take_metrics().is_none());
    }

    #[test]
    fn tally_hits_the_right_counter() {
        let mut acct = Accounting::new();
        acct.tally(Counter::FpTraps);
        acct.tally(Counter::FpTraps);
        acct.tally(Counter::PatchFast);
        assert_eq!(acct.stats().fp_traps, 2);
        assert_eq!(acct.stats().patch_fast, 1);
        assert_eq!(acct.stats().patch_slow, 0);
    }
}
