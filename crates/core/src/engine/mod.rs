//! The staged trap-pipeline engine: the hybrid FPVM runtime (§3, §4).
//!
//! The engine drives the simulated machine exactly the way the paper's
//! prototype drives a Linux process:
//!
//! 1. It unmasks every `%mxcsr` exception, so any rounding, overflow,
//!    underflow, denormal or NaN event faults into the runtime
//!    ([`Fpvm::run`] ↔ the SIGFPE handler).
//! 2. On a trap it decodes the faulting instruction (through a pluggable
//!    [`DecodeCache`]), **binds** its operands, **emulates** it on the
//!    alternative arithmetic system, NaN-boxes the result, clears the
//!    sticky condition flags, and resumes after the instruction. One
//!    trap's lifecycle is a [`TrapFrame`]; the stages live in
//!    [`frame`]/[`emulate`] as `Binder` → `Emulator` → `Committer`.
//! 3. `Trap` instructions installed by the static analyzer demote any
//!    boxed operands in place and re-execute the original instruction in
//!    single-step mode (§4.2 "correctness traps", [`correctness`]).
//! 4. External calls are interposed like an `LD_PRELOAD` shim
//!    ([`external`]): libm routes into the arithmetic system (the math
//!    wrapper) and `printf` demotes for rendering (the output wrapper).
//! 5. Optionally, the trap-and-patch engine ([`patch`], §3.2) rewrites hot
//!    faulting sites into direct patch calls with inline checks.
//!
//! Software traps, external calls and NaN-hole faults dispatch through a
//! [`HandlerTable`] of registered handlers, and every cycle/stat is
//! charged through one [`Accounting`] sink.

pub mod accounting;
pub mod config;
mod correctness;
pub mod decode;
pub mod ecache;
mod emulate;
pub mod exit;
mod external;
pub mod frame;
pub mod handlers;
mod patch;

pub use accounting::{Accounting, Counter};
pub use config::FpvmConfig;
pub use correctness::SideTableEntry;
pub use decode::{DecodeCache, DirectMappedCache, HashMapCache, PassthroughCache};
pub use ecache::{DirectMappedEmulateCache, EmulateCache, EmulateEntry, PassthroughEmulateCache};
pub use emulate::{Binder, Committer, LaneOutcome};
pub use exit::{ExitReason, RuntimeError, Stage};
pub use frame::TrapFrame;
pub use handlers::{ExtCallHandler, HandlerTable, NanHoleHandler, SwTrapHandler};

use crate::gc;
use crate::stats::{Component, Stats};
use crate::trace::{TraceEvent, TraceSink};
use fpvm_machine::{Event, Fault, Inst, Machine, TrapKind};
use fpvm_nanbox::ShadowKey;
use std::collections::HashSet;
use std::fmt;
use std::time::Instant;

use fpvm_arith::{ArithSystem, ShadowArena};

/// Result of a virtualized run.
#[derive(Debug, Clone)]
pub struct RunReport {
    /// Exit reason.
    pub exit: ExitReason,
    /// Runtime statistics.
    pub stats: Stats,
    /// Guest instructions retired.
    pub icount: u64,
    /// Guest FP instructions retired natively (did not trap).
    pub fp_icount: u64,
    /// Total accounted cycles (guest base + virtualization).
    pub cycles: u64,
    /// Wall-clock host time of the whole run.
    pub wall_ns: u64,
}

impl fmt::Display for RunReport {
    /// One-paragraph human summary: exit, instruction counts, trap cost,
    /// decode hit rate, GC passes.
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = &self.stats;
        write!(
            f,
            "{}: {} guest instructions retired ({} native FP) in {} cycles; \
             {} FP traps at {:.0} cycles/trap on average, decode hit rate {:.1}%, \
             {} correctness traps, {} GC passes; wall time {:.3} ms",
            self.exit,
            commas(self.icount),
            commas(self.fp_icount),
            commas(self.cycles),
            commas(s.fp_traps),
            s.avg_trap_cost(),
            s.decode_hit_rate() * 100.0,
            commas(s.correctness_traps),
            s.gc_passes,
            self.wall_ns as f64 / 1e6,
        )
    }
}

/// Format a count with thousands separators (display helper).
fn commas(n: u64) -> String {
    let digits = n.to_string();
    let mut out = String::new();
    for (i, ch) in digits.chars().enumerate() {
        if i > 0 && (digits.len() - i).is_multiple_of(3) {
            out.push(',');
        }
        out.push(ch);
    }
    out
}

/// The FPVM runtime, generic over the alternative arithmetic system.
///
/// The runtime owns everything it touches — arena, decode cache,
/// accounting, trace sink — so `Fpvm<A>` is [`Send`] whenever the
/// arithmetic system and its values are (all in-tree backends qualify;
/// `crates/core/tests/send.rs` compile-asserts it). A fleet worker can
/// therefore own a machine + engine + sinks outright on its own thread;
/// post-run telemetry is recovered by [`Fpvm::take_trace_sink`] and
/// `dyn TraceSink::downcast`, never by aliasing a shared handle.
pub struct Fpvm<A: ArithSystem> {
    arith: A,
    /// The shadow-value arena (FPVM provides the arithmetic system with
    /// memory management, §4.3).
    pub arena: ShadowArena<A::Value>,
    /// Runtime configuration.
    pub config: FpvmConfig,
    pub(crate) acct: Accounting,
    pub(crate) cache: Box<dyn DecodeCache>,
    /// The emulate cache: decoded + bound plans per RIP (see [`ecache`]).
    pub(crate) ecache: Box<dyn EmulateCache>,
    pub(crate) side_table: Vec<SideTableEntry>,
    pub(crate) patches: patch::PatchTable,
    pub(crate) patch_allow: Option<HashSet<u64>>,
    /// Reusable encode buffer for trap-and-patch installs (per-trap
    /// allocation discipline: the engine owns its scratch).
    pub(crate) scratch_code: Vec<u8>,
    /// Bumped by [`Fpvm::recycle`]; mixed into the cache fingerprint so no
    /// cache entry survives an engine recycle even across identical
    /// programs (fleet workers must be indistinguishable from fresh
    /// engines).
    cache_epoch: u64,
    handlers: HandlerTable<A>,
    last_gc_icount: u64,
    pub(crate) rendered: Vec<String>,
}

impl<A: ArithSystem> Fpvm<A> {
    /// Create a runtime over the given arithmetic system.
    pub fn new(arith: A, config: FpvmConfig) -> Self {
        let cache: Box<dyn DecodeCache> = if config.decode_cache {
            Box::new(DirectMappedCache::new())
        } else {
            Box::new(PassthroughCache)
        };
        let ecache: Box<dyn EmulateCache> = if config.emulate_cache {
            Box::new(DirectMappedEmulateCache::new())
        } else {
            Box::new(PassthroughEmulateCache)
        };
        let mut acct = Accounting::new();
        if config.metrics {
            acct.set_metrics(crate::metrics::EngineMetrics::new(
                config.metrics_sample_shift,
            ));
        }
        Fpvm {
            arith,
            arena: ShadowArena::new(),
            config,
            acct,
            cache,
            ecache,
            side_table: Vec::new(),
            patches: patch::PatchTable::default(),
            patch_allow: None,
            scratch_code: Vec::new(),
            cache_epoch: 0,
            handlers: HandlerTable::default(),
            last_gc_icount: 0,
            rendered: Vec::new(),
        }
    }

    /// The arithmetic system.
    pub fn arith(&self) -> &A {
        &self.arith
    }

    /// The statistics accumulated so far.
    pub fn stats(&self) -> &Stats {
        self.acct.stats()
    }

    /// Full-precision rendered output lines (the output wrapper's view).
    pub fn rendered_output(&self) -> &[String] {
        &self.rendered
    }

    /// Install the correctness-trap side table (from the static patcher).
    pub fn set_side_table(&mut self, table: Vec<SideTableEntry>) {
        self.side_table = table;
    }

    /// Replace the decode-cache policy (benchmarks compare
    /// [`DirectMappedCache`] against [`HashMapCache`] this way).
    pub fn set_decode_cache(&mut self, cache: Box<dyn DecodeCache>) {
        self.cache = cache;
    }

    /// The decode-cache policy's name.
    pub fn decode_cache_name(&self) -> &'static str {
        self.cache.name()
    }

    /// Replace the emulate-cache policy (benchmarks and the E17 ablation).
    pub fn set_emulate_cache(&mut self, cache: Box<dyn EmulateCache>) {
        self.ecache = cache;
    }

    /// The emulate-cache policy's name.
    pub fn emulate_cache_name(&self) -> &'static str {
        self.ecache.name()
    }

    /// The event-routing table, for registering custom handlers.
    pub fn handlers_mut(&mut self) -> &mut HandlerTable<A> {
        &mut self.handlers
    }

    /// Install a trace sink (see [`crate::trace`]). Every trap-lifecycle
    /// step emits a [`TraceEvent`] into it from the same choke points
    /// that charge cycles; with the default [`crate::trace::NullSink`]
    /// nothing is constructed or emitted.
    ///
    /// The engine takes **ownership**: read the sink back after the run
    /// with [`Fpvm::take_trace_sink`] and downcast it to its concrete
    /// type (`sink.downcast::<ProfilerSink>()`), or use a
    /// [`crate::trace::FanoutSink`] and `into_sinks()` to recover several.
    pub fn set_trace_sink(&mut self, sink: Box<dyn TraceSink>) {
        self.acct.set_sink(sink);
    }

    /// Remove the installed trace sink — the teardown half of the owned-
    /// sink protocol — reverting to the disabled default. Downcast the
    /// returned box to inspect the concrete sink.
    pub fn take_trace_sink(&mut self) -> Box<dyn TraceSink> {
        self.acct.take_sink()
    }

    /// Read-only view of the wall-clock metrics plane, if
    /// [`FpvmConfig::metrics`] attached one.
    pub fn engine_metrics(&self) -> Option<&crate::metrics::EngineMetrics> {
        self.acct.metrics()
    }

    /// Export the metrics plane (stage-ns histograms + the run's
    /// deterministic execution counters) as a
    /// [`fpvm_obs::MetricsSnapshot`]. `None` when the plane is off — a
    /// metrics-off run emits *no* samples at all, it does not emit zeros.
    pub fn metrics_snapshot(&self) -> Option<fpvm_obs::MetricsSnapshot> {
        self.acct.metrics().map(|m| m.snapshot(self.acct.stats()))
    }

    /// Restrict the trap-and-patch engine (§3.2) to the given sites: only
    /// RIPs in the set are eligible for dynamic patching. This is how a
    /// profiler's hot-site ranking drives site selection instead of the
    /// default patch-everything-on-first-trap heuristic.
    pub fn restrict_patching(&mut self, rips: impl IntoIterator<Item = u64>) {
        self.patch_allow = Some(rips.into_iter().collect());
    }

    /// Has the trap-and-patch engine patched this address?
    pub fn is_patched(&self, addr: u64) -> bool {
        self.patches.contains_addr(addr)
    }

    /// Preload patch-call sites emitted by the compiler-based approach
    /// (§3.4): the IR pass replaced each FP operation with a
    /// `Trap{PatchCall}` whose handler is registered here at load time.
    pub fn preload_patch_sites(&mut self, sites: Vec<(u16, Inst, u64)>) {
        for (id, original, next_rip) in sites {
            self.patches.set(id, patch::TpSite::new(original, next_rip));
        }
    }

    /// Drop the entry at `rip` from both the decode and emulate caches
    /// (trap-and-patch rewrote the site; a cached decode *or* plan would
    /// replay the pre-patch instruction).
    pub(crate) fn invalidate_site(&mut self, rip: u64) {
        self.cache.invalidate(rip);
        self.ecache.invalidate(rip);
    }

    /// Reset the engine for reuse with its current configuration: same as
    /// [`Fpvm::recycle`].
    pub fn reset(&mut self) {
        self.recycle(self.config);
    }

    /// Recycle the engine for the next job (fleet-worker discipline): all
    /// run state — stats, arena, side table, patch table, caches, rendered
    /// output — is cleared so a recycled engine behaves bit-identically to
    /// a fresh [`Fpvm::new`], while the big allocations (cache slot
    /// arrays, arena slab, scratch buffers) are retained. The cache epoch
    /// is bumped so no cache entry survives into the next job even when
    /// the program happens to be identical — merged fleet stats must not
    /// depend on which jobs shared a worker.
    pub fn recycle(&mut self, config: FpvmConfig) {
        if config.decode_cache != self.config.decode_cache {
            self.cache = if config.decode_cache {
                Box::new(DirectMappedCache::new())
            } else {
                Box::new(PassthroughCache)
            };
        }
        if config.emulate_cache != self.config.emulate_cache {
            self.ecache = if config.emulate_cache {
                Box::new(DirectMappedEmulateCache::new())
            } else {
                Box::new(PassthroughEmulateCache)
            };
        }
        self.config = config;
        self.acct.reset_stats();
        let _ = self.acct.take_metrics();
        if config.metrics {
            self.acct.set_metrics(crate::metrics::EngineMetrics::new(
                config.metrics_sample_shift,
            ));
        }
        self.arena.reset();
        self.side_table.clear();
        self.patches.clear();
        self.patch_allow = None;
        self.rendered.clear();
        self.last_gc_icount = 0;
        self.cache_epoch += 1;
    }

    /// Run the machine under virtualization until it halts or faults.
    pub fn run(&mut self, m: &mut Machine) -> RunReport {
        let wall = Instant::now();
        m.hook_ext = true;
        m.nan_hole_traps = self.config.nan_load_hw;
        if self.config.taint_oracle {
            m.taint_enable();
            m.taint_install_trapped(self.side_table.iter().map(|e| e.addr));
        }
        m.mxcsr.unmask_all();
        // Superblock dispatch is an accounting-pinned pass-through: the
        // machine may batch straight-line execution between traps, but
        // every deterministic stat and event the engine observes is
        // bit-identical to the stepped loop (E18 / sblock_pin tests).
        m.set_superblocks(self.config.superblocks, self.config.superblock_cap);
        // Cache identity = program content fingerprint ⊕ engine epoch: a
        // re-run of the same program on the same engine keeps its entries,
        // anything else — different program, same-length different
        // program, or a recycled engine — starts cold.
        let fingerprint =
            m.code_fingerprint() ^ self.cache_epoch.wrapping_mul(0x9E37_79B9_7F4A_7C15);
        let code_len = m.mem.code_bytes().len();
        self.cache.prepare(code_len, fingerprint);
        self.ecache.prepare(code_len, fingerprint);
        let exit = loop {
            if m.icount >= self.config.max_insts {
                break ExitReason::Fault(Fault::Budget);
            }
            let budget = self.config.max_insts - m.icount;
            match m.run(budget) {
                Event::Halted => break ExitReason::Halted,
                Event::Exited(code) => break ExitReason::Exited(code),
                Event::Fault(f) => break ExitReason::Fault(f),
                Event::SingleStepped => unreachable!("runtime never sets TF across run()"),
                Event::FpException { rip, flags } => {
                    if let Err(e) = self.on_fp_trap(m, rip, flags) {
                        break e;
                    }
                }
                Event::SwTrap { kind, id, rip } => {
                    let handler = match kind {
                        TrapKind::Correctness => self.handlers.correctness,
                        TrapKind::PatchCall => self.handlers.patch_call,
                    };
                    if let Err(e) = handler(self, m, id, rip) {
                        break e;
                    }
                }
                Event::ExtCall { f, rip, next_rip } => {
                    let handler = self.handlers.ext_call;
                    if let Err(e) = handler(self, m, f, rip, next_rip) {
                        break e;
                    }
                }
                Event::NanHole { rip } => {
                    let handler = self.handlers.nan_hole;
                    if let Err(e) = handler(self, m, rip) {
                        break e;
                    }
                }
            }
            self.maybe_gc(m);
        };
        if let ExitReason::RuntimeError(e) = exit {
            self.acct.emit(|| TraceEvent::RuntimeError {
                stage: e.stage,
                rip: e.rip,
                site: e.site,
            });
        }
        RunReport {
            exit,
            stats: self.acct.snapshot(),
            icount: m.icount,
            fp_icount: m.fp_icount,
            cycles: m.cycles,
            wall_ns: wall.elapsed().as_nanos() as u64,
        }
    }

    // ---- GC ----------------------------------------------------------------

    fn maybe_gc(&mut self, m: &mut Machine) {
        let due_epoch = m.icount.saturating_sub(self.last_gc_icount) >= self.config.gc_epoch;
        let due_pressure = self.arena.live() >= self.config.gc_pressure;
        if !(due_epoch || due_pressure) || self.arena.live() == 0 {
            return;
        }
        self.last_gc_icount = m.icount;
        let rec = gc::collect(m, &mut self.arena, self.config.gc_parallel);
        self.acct.record_gc(rec);
        let cyc = m.cost.ns_to_cycles(rec.ns);
        self.acct.charge(m, Component::Gc, cyc);
        self.acct.emit(|| TraceEvent::GcPass {
            icount: m.icount,
            before: rec.before as u64,
            freed: rec.freed as u64,
            alive: rec.alive as u64,
            cycles: cyc,
        });
    }

    /// Force a GC pass now (used by tests and the Fig. 10 harness).
    pub fn force_gc(&mut self, m: &mut Machine) -> crate::stats::GcRecord {
        self.last_gc_icount = m.icount;
        let rec = gc::collect(m, &mut self.arena, self.config.gc_parallel);
        self.acct.record_gc(rec);
        self.acct.emit(|| TraceEvent::GcPass {
            icount: m.icount,
            before: rec.before as u64,
            freed: rec.freed as u64,
            alive: rec.alive as u64,
            cycles: m.cost.ns_to_cycles(rec.ns),
        });
        rec
    }

    /// Look up a shadow value by key (tests/inspection).
    pub fn shadow(&self, key: ShadowKey) -> Option<&A::Value> {
        self.arena.get(key)
    }
}
