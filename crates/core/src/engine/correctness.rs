//! Correctness traps (§4.2) and the §6.2 NaN-hole handler: demote boxed
//! operands in place and re-execute the original instruction.

use super::accounting::Counter;
use super::exit::{ExitReason, Stage};
use super::Fpvm;
use crate::bound::{read_loc, Loc};
use crate::stats::Component;
use crate::trace::TraceEvent;
use fpvm_arith::{ArithSystem, Round};
use fpvm_machine::{Event, Inst, Machine};
use std::time::Instant;

/// An entry in the correctness-trap side table (produced by fpvm-analysis's
/// patcher): the original instruction that the `Trap` replaced. The table
/// is indexed by the trap's site id, so lookup is O(1).
#[derive(Debug, Clone, Copy)]
pub struct SideTableEntry {
    /// Address of the patched site.
    pub addr: u64,
    /// The original instruction.
    pub original: Inst,
    /// Its encoded length (the patch spans this many bytes).
    pub len: u8,
}

impl<A: ArithSystem> Fpvm<A> {
    /// Handle a correctness trap: charge dispatch, look up the original
    /// instruction by site id, demote any boxed operand in place, and
    /// re-execute in single-step mode. The default
    /// [`super::HandlerTable::correctness`] handler.
    pub fn on_correctness_trap(
        &mut self,
        m: &mut Machine,
        id: u16,
        rip: u64,
    ) -> Result<(), ExitReason> {
        self.acct.tally(Counter::CorrectnessTraps);
        let dispatch = m
            .cost
            .correctness_dispatch(self.config.correctness_as_call, self.config.delivery);
        self.acct
            .charge(m, Component::CorrectnessDispatch, dispatch);
        let Some(entry) = self.side_table.get(id as usize).copied() else {
            return Err(ExitReason::error_at_site(Stage::Correctness, rip, id));
        };
        debug_assert_eq!(entry.addr, rip, "side table / patch mismatch");
        let t = Instant::now();
        // Demote any boxed operand in place, then re-execute the original
        // instruction in single-step mode.
        let demoted = self.demote_operands(m, &entry.original);
        if demoted > 0 {
            self.acct.tally(Counter::CorrectnessDemotions);
        }
        let next_rip = rip + u64::from(entry.len);
        match m.exec_masked(&entry.original, next_rip) {
            Ok(_) => {}
            Err(Event::ExtCall { f, next_rip, .. }) => {
                // Re-executed instruction was itself an external call site.
                self.on_ext_call(m, f, rip, next_rip)?;
            }
            Err(Event::Fault(f)) => return Err(ExitReason::Fault(f)),
            Err(_) => return Err(ExitReason::error_at_site(Stage::Correctness, rip, id)),
        }
        let ns = t.elapsed().as_nanos() as u64;
        let check = m.cost.patch_check;
        let handler = self
            .acct
            .charge_measured(m, Component::CorrectnessHandler, ns, check);
        self.acct.emit(|| TraceEvent::CorrectnessTrap {
            rip,
            site: id,
            demoted: demoted > 0,
            dispatch_cycles: dispatch,
            handler_cycles: handler,
        });
        Ok(())
    }

    /// §6.2 hardware path: a NaN-box reached a non-FP instruction and the
    /// extended hardware faulted. Demote the offending operands and
    /// re-execute — same handler as a correctness trap, but discovered by
    /// hardware instead of static analysis. The default
    /// [`super::HandlerTable::nan_hole`] handler.
    pub fn on_nan_hole(&mut self, m: &mut Machine, rip: u64) -> Result<(), ExitReason> {
        self.acct.tally(Counter::NanHoleTraps);
        let dispatch = m.cost.correctness_dispatch(false, self.config.delivery);
        self.acct
            .charge(m, Component::CorrectnessDispatch, dispatch);
        let (inst, len) = self.decode_at(m, rip)?;
        let t = Instant::now();
        let demoted = self.demote_operands(m, &inst);
        if demoted > 0 {
            self.acct.tally(Counter::CorrectnessDemotions);
        }
        match m.exec_masked(&inst, rip + u64::from(len)) {
            Ok(_) => {}
            Err(Event::Fault(f)) => return Err(ExitReason::Fault(f)),
            Err(_) => return Err(ExitReason::error(Stage::NanHole, rip)),
        }
        let ns = t.elapsed().as_nanos() as u64;
        let handler = self
            .acct
            .charge_measured(m, Component::CorrectnessHandler, ns, 0);
        self.acct.emit(|| TraceEvent::NanHoleTrap {
            rip,
            demoted: demoted > 0,
            dispatch_cycles: dispatch,
            handler_cycles: handler,
        });
        Ok(())
    }

    /// Demote every boxed f64-typed operand of `inst` in place. Returns the
    /// number of demotions performed.
    pub(crate) fn demote_operands(&mut self, m: &mut Machine, inst: &Inst) -> usize {
        use Inst::*;
        // No shape touches more than four locations (the bitwise ops: two
        // dst lanes + two source lanes/words), so a fixed array replaces
        // the former per-trap Vec.
        let mut locs = [Loc::None; 4];
        let mut ln = 0;
        {
            let mut push = |l: Loc| {
                locs[ln] = l;
                ln += 1;
            };
            match inst {
                Load { addr, .. } => push(Loc::Mem(m.ea(addr))),
                MovQXG { src, .. } => push(Loc::XmmLane(src.0, 0)),
                XorPd { dst, src } | AndPd { dst, src } | OrPd { dst, src } => {
                    push(Loc::XmmLane(dst.0, 0));
                    push(Loc::XmmLane(dst.0, 1));
                    match src {
                        fpvm_machine::XM::Reg(x) => {
                            push(Loc::XmmLane(x.0, 0));
                            push(Loc::XmmLane(x.0, 1));
                        }
                        fpvm_machine::XM::Mem(mem) => {
                            let ea = m.ea(mem);
                            push(Loc::Mem(ea));
                            push(Loc::Mem(ea + 8));
                        }
                    }
                }
                MovSd { src, .. } | MovApd { src, .. } => {
                    if let fpvm_machine::XM::Mem(mem) = src {
                        push(Loc::Mem(m.ea(mem)));
                    }
                }
                Store { src, .. } => push(Loc::Gpr(src.0)),
                _ => {
                    // Conservative: demoting all xmm lanes the instruction
                    // touches is unnecessary for our patch set; other
                    // shapes do not reach the side table.
                }
            }
        }
        let mut n = 0;
        for &loc in &locs[..ln] {
            n += usize::from(self.demote_loc(m, loc));
        }
        n
    }

    /// If `loc` holds a live NaN-box, replace it with the demoted double.
    pub(crate) fn demote_loc(&mut self, m: &mut Machine, loc: Loc) -> bool {
        let Ok(bits) = read_loc(m, loc) else {
            return false;
        };
        let Some(key) = fpvm_nanbox::decode(bits) else {
            return false;
        };
        let demoted = match self.arena.get(key) {
            Some(v) => {
                let (d, _) = self.arith.to_f64(v, Round::NearestEven);
                d.to_bits()
            }
            // Stale box = universal NaN: demote to the canonical quiet NaN.
            None => f64::NAN.to_bits(),
        };
        self.acct.tally(Counter::Demotions);
        match loc {
            Loc::XmmLane(r, l) => {
                m.xmm[r as usize][l as usize] = demoted;
                m.taint_reclassify_xmm(r as usize, l as usize);
                true
            }
            Loc::Gpr(r) => {
                m.gpr[r as usize] = demoted;
                m.taint_reclassify_gpr(r as usize);
                true
            }
            Loc::Mem(a) => {
                let ok = m.mem.write_u64(a, demoted).is_ok();
                if ok {
                    m.taint_reclassify_mem(a);
                }
                ok
            }
            Loc::None => false,
        }
    }
}
