//! The trap-and-patch engine (§3.2): rewrite hot faulting sites into
//! direct patch calls with inline pre/postcondition checks.

use super::accounting::Counter;
use super::exit::{ExitReason, Stage};
use super::frame::TrapFrame;
use super::Fpvm;
use crate::bound::{has_boxed_src, native_eval, BoundPlan, Dst, Planability};
use crate::stats::Component;
use crate::trace::TraceEvent;
use fpvm_arith::ArithSystem;
use fpvm_machine::{encode, Event, Inst, Machine, TrapKind};
use std::collections::HashMap;

/// One dynamically patched site: the original instruction the patch
/// replaced, the resume point after it, and — for statically plannable
/// shapes — its memoized bound-operand plan, so patch-call slow paths
/// skip the bind stage's instruction-shape match just like the emulate
/// cache does for traps.
#[derive(Debug, Clone, Copy)]
pub(crate) struct TpSite {
    pub original: Inst,
    pub next_rip: u64,
    pub plan: Option<BoundPlan>,
}

impl TpSite {
    /// Record a site, memoizing its plan when the binding is static.
    pub fn new(original: Inst, next_rip: u64) -> Self {
        let plan = match crate::bound::plan(&original, next_rip) {
            Planability::Static(p) => Some(p),
            _ => None,
        };
        TpSite {
            original,
            next_rip,
            plan,
        }
    }
}

/// The patch-site table. Sites are keyed by a dense u16 id baked into the
/// `Trap { PatchCall }` encoding, so dispatch is a direct index — no
/// hashing on the hot path. The address map exists only to keep
/// installation idempotent.
#[derive(Debug, Default)]
pub(crate) struct PatchTable {
    sites: Vec<Option<TpSite>>,
    by_addr: HashMap<u64, u16>,
}

impl PatchTable {
    /// O(1) site lookup by trap id.
    pub fn get(&self, id: u16) -> Option<TpSite> {
        self.sites.get(id as usize).copied().flatten()
    }

    /// Is this address already patched?
    pub fn contains_addr(&self, addr: u64) -> bool {
        self.by_addr.contains_key(&addr)
    }

    /// The next free id, or `None` when the id space is exhausted.
    pub fn next_id(&self) -> Option<u16> {
        (self.sites.len() < u16::MAX as usize).then_some(self.sites.len() as u16)
    }

    /// Record a dynamically installed patch.
    pub fn insert(&mut self, id: u16, addr: u64, site: TpSite) {
        self.set(id, site);
        self.by_addr.insert(addr, id);
    }

    /// Register a site under a caller-chosen id (compiler preload, §3.4).
    pub fn set(&mut self, id: u16, site: TpSite) {
        let idx = id as usize;
        if idx >= self.sites.len() {
            self.sites.resize(idx + 1, None);
        }
        self.sites[idx] = Some(site);
    }

    /// Drop every site (engine recycle), keeping the allocations.
    pub fn clear(&mut self) {
        self.sites.clear();
        self.by_addr.clear();
    }
}

impl<A: ArithSystem> Fpvm<A> {
    /// Patch the trapped site in `frame` so its next encounter dispatches
    /// via a cheap `Trap { PatchCall }` instead of a hardware trap.
    pub(crate) fn install_patch(&mut self, m: &mut Machine, frame: &TrapFrame) {
        let rip = frame.rip;
        if self.patches.contains_addr(rip) || frame.len < 3 {
            return;
        }
        // Profiler-guided site selection: when an allowlist is installed,
        // only the ranked sites are eligible for dynamic patching.
        if let Some(allow) = &self.patch_allow {
            if !allow.contains(&rip) {
                return;
            }
        }
        let Some(id) = self.patches.next_id() else {
            return;
        };
        // Only FP arithmetic sites benefit; compares and cvts also qualify.
        if !frame.inst.is_fp_arith() {
            return;
        }
        // Encode into the engine-owned scratch buffer (no per-install
        // allocation once it has grown to the longest patch).
        let mut bytes = std::mem::take(&mut self.scratch_code);
        bytes.clear();
        encode(
            &Inst::Trap {
                kind: TrapKind::PatchCall,
                id,
            },
            &mut bytes,
        );
        while bytes.len() < frame.len as usize {
            encode(&Inst::Nop, &mut bytes);
        }
        m.patch_code(rip, &bytes);
        self.scratch_code = bytes;
        self.invalidate_site(rip);
        self.patches
            .insert(id, rip, TpSite::new(frame.inst, frame.next_rip()));
        self.acct.tally(Counter::SitesPatched);
        self.acct
            .emit(|| TraceEvent::PatchInstalled { rip, site: id });
    }

    /// Handle a `Trap { PatchCall }`: run the inlined pre/postcondition
    /// checks and execute natively when both hold, falling back to full
    /// emulation otherwise. The default [`super::HandlerTable::patch_call`]
    /// handler.
    pub fn on_patch_call(&mut self, m: &mut Machine, id: u16, rip: u64) -> Result<(), ExitReason> {
        let Some(site) = self.patches.get(id) else {
            return Err(ExitReason::error_at_site(Stage::Patch, rip, id));
        };
        // Direct call into the custom handler + inlined checks.
        let dispatch = m.cost.patch_dispatch();
        self.acct.charge(m, Component::Patch, dispatch);
        // Static shapes resolve their memoized plan; dynamic ones (the
        // mask-dependent bitwise ops) re-bind against current state.
        let bound = match site.plan {
            Some(p) => Some(p.resolve(m)),
            None => crate::bound::bind(m, &site.original, site.next_rip),
        };
        let Some(b) = bound else {
            // Unbindable patched instruction (e.g. a bitwise FP op with a
            // non-canonical mask): fall back to demote + re-execute, like a
            // correctness trap.
            self.acct.emit(|| TraceEvent::PatchCall {
                rip,
                site: id,
                fast: false,
                cycles: dispatch,
            });
            self.demote_operands(m, &site.original);
            return match m.exec_masked(&site.original, site.next_rip) {
                Ok(_) => Ok(()),
                Err(Event::Fault(f)) => Err(ExitReason::Fault(f)),
                Err(_) => Err(ExitReason::error_at_site(Stage::Patch, rip, id)),
            };
        };
        // Precondition: no boxed inputs. Postcondition: native execution
        // would raise no event. Both hold → execute natively in the patch.
        // At most two lanes, so the staging buffer is a fixed array — no
        // per-call allocation.
        let mut native: [Option<(Dst, u64)>; 2] = [None, None];
        let mut n = 0;
        let mut fast = true;
        for lane in b.lanes.iter().flatten() {
            if has_boxed_src(m, lane) {
                fast = false;
                break;
            }
            match native_eval(m, lane) {
                Some((bits, flags)) if flags.is_empty() => {
                    native[n] = Some((lane.dst, bits));
                    n += 1;
                }
                _ => {
                    fast = false;
                    break;
                }
            }
        }
        self.acct.emit(|| TraceEvent::PatchCall {
            rip,
            site: id,
            fast,
            cycles: dispatch,
        });
        if fast {
            self.acct.tally(Counter::PatchFast);
            for (dst, bits) in native.iter().take(n).flatten() {
                if let Dst::F64Lane(r, l) = dst {
                    m.xmm[*r as usize][*l as usize] = *bits;
                    m.taint_reclassify_xmm(*r as usize, *l as usize);
                }
            }
            m.rip = site.next_rip;
            return Ok(());
        }
        // Slow path: full emulation through the handler.
        self.acct.tally(Counter::PatchSlow);
        self.emulate(m, &site.original, site.next_rip)
    }
}
