//! Trap-level tracing: the telemetry layer under the accounting sink.
//!
//! The paper's evaluation (§5, Figs. 9–12) is built on knowing where each
//! cycle of virtualization overhead goes — per trap, per site, per
//! component. Aggregate [`crate::stats::Stats`] answer "how much in
//! total"; this module answers "which RIPs trap hottest?" and "what does
//! the decode-latency distribution look like?" by emitting one typed
//! [`TraceEvent`] per pipeline step through a pluggable [`TraceSink`].
//!
//! Events are emitted from the same choke points that charge cycles (the
//! [`crate::engine::Accounting`] sink and the stage/handler code), so a
//! trace can never disagree with the accounting. The default sink is
//! [`NullSink`]; with it installed the engine skips event construction
//! entirely (the emit sites are guarded by a cached `enabled` bit) and the
//! deterministic Fig. 9 accounting is bit-identical to an untraced run.
//!
//! Shipped sinks:
//! * [`RingBufferSink`] — bounded last-N recorder for post-mortem on a
//!   [`crate::engine::RuntimeError`];
//! * [`crate::profile::ProfilerSink`] — per-RIP hot-site table, per-
//!   component latency histograms, arena-occupancy time series;
//! * `fpvm-bench`'s `JsonlTraceSink` — streaming JSONL writer (lives in
//!   the bench crate, which owns the `ToJson` encoder).
//! * [`FanoutSink`] — broadcast to several sinks at once.
//!
//! Sinks are **owned**, never shared: the engine's accounting choke point
//! holds the one live handle, and post-run inspection takes the sink back
//! out (`Fpvm::take_trace_sink` → [`dyn TraceSink::downcast`]) instead of
//! aliasing it through `Rc<RefCell<_>>`. That ownership discipline is what
//! makes every sink — and therefore the whole engine — [`Send`], so a
//! fleet worker can own its machine + engine + sinks on its own thread and
//! hand the sinks back for merging at join (`fpvm-fleet`).

use crate::engine::exit::Stage;
use fpvm_machine::ExtFn;
use std::any::Any;
use std::collections::VecDeque;
use std::fmt;

/// How the external-call interposer handled a call site.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ExtDisposition {
    /// A libm call routed into the arithmetic system (math wrapper).
    Math,
    /// An output call demoted for rendering (output wrapper).
    Output,
    /// Forwarded natively after demoting FP argument registers.
    Native,
}

impl ExtDisposition {
    /// Short label used in traces and tables.
    pub fn label(self) -> &'static str {
        match self {
            ExtDisposition::Math => "math",
            ExtDisposition::Output => "output",
            ExtDisposition::Native => "native",
        }
    }
}

/// One step of the trap lifecycle, as charged by the accounting sink.
///
/// Every variant that costs cycles carries the exact cycle count the
/// engine charged, so a sink can rebuild the Fig. 9 breakdown (or any
/// finer-grained view) without touching [`crate::stats::Stats`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TraceEvent {
    /// A hardware FP exception was delivered (trap lifecycle begins).
    TrapBegin {
        /// Faulting guest instruction pointer.
        rip: u64,
        /// Guest instructions retired at delivery.
        icount: u64,
        /// Microarchitectural raise + return cycles charged.
        hardware: u64,
        /// Kernel dispatch cycles charged.
        kernel: u64,
        /// Kernel→user delivery cycles charged.
        user: u64,
    },
    /// The decode stage ran (from an FP trap or a NaN-hole fault).
    Decode {
        /// Site being decoded.
        rip: u64,
        /// Whether the decode cache hit.
        hit: bool,
        /// Decode cycles charged.
        cycles: u64,
    },
    /// The bind stage resolved the faulting instruction's operands.
    Bind {
        /// Faulting site.
        rip: u64,
        /// Bind cycles charged.
        cycles: u64,
    },
    /// The emulate stage evaluated the instruction's lanes.
    Emulate {
        /// Faulting site.
        rip: u64,
        /// Scalar lanes evaluated.
        lanes: u32,
        /// Emulation cycles charged (measured ns + dispatch).
        cycles: u64,
    },
    /// All lanes retired; the trap lifecycle ends and the guest resumes.
    Commit {
        /// The site that trapped.
        rip: u64,
        /// The resume point.
        next_rip: u64,
    },
    /// A §4.2 correctness trap ran (demote + single-step re-execute).
    CorrectnessTrap {
        /// Patched site.
        rip: u64,
        /// Side-table id.
        site: u16,
        /// Whether a boxed operand was actually demoted.
        demoted: bool,
        /// Dispatch cycles charged.
        dispatch_cycles: u64,
        /// Handler cycles charged (measured + check).
        handler_cycles: u64,
    },
    /// A §6.2 hardware NaN-hole fault ran the demote + re-execute path.
    NanHoleTrap {
        /// Faulting site.
        rip: u64,
        /// Whether a boxed operand was actually demoted.
        demoted: bool,
        /// Dispatch cycles charged.
        dispatch_cycles: u64,
        /// Handler cycles charged.
        handler_cycles: u64,
    },
    /// An external call was interposed (or forwarded).
    ExtCall {
        /// Call-site rip.
        rip: u64,
        /// The callee.
        f: ExtFn,
        /// How the interposer handled it.
        disposition: ExtDisposition,
        /// Cycles charged (math-wrapper emulation; 0 for the others).
        cycles: u64,
    },
    /// The trap-and-patch engine rewrote a site into a patch call.
    PatchInstalled {
        /// The patched site.
        rip: u64,
        /// Its patch-site id.
        site: u16,
    },
    /// A `Trap { PatchCall }` site executed.
    PatchCall {
        /// The patched site.
        rip: u64,
        /// Its patch-site id.
        site: u16,
        /// Whether the inline pre/postcondition checks held (fast path).
        fast: bool,
        /// Patch dispatch + check cycles charged.
        cycles: u64,
    },
    /// A garbage collection pass completed.
    GcPass {
        /// Guest instructions retired at the pass.
        icount: u64,
        /// Live shadow values before the pass.
        before: u64,
        /// Cells freed.
        freed: u64,
        /// Live cells after.
        alive: u64,
        /// GC cycles charged (converted from measured ns).
        cycles: u64,
    },
    /// The run is ending with a structured runtime error.
    RuntimeError {
        /// The pipeline stage that failed.
        stage: Stage,
        /// The faulting rip.
        rip: u64,
        /// The side-table / patch-site id, when the trap carried one.
        site: Option<u16>,
    },
}

impl TraceEvent {
    /// Short kind tag (stable; used as the JSONL `ev` field).
    pub fn kind(&self) -> &'static str {
        match self {
            TraceEvent::TrapBegin { .. } => "trap_begin",
            TraceEvent::Decode { .. } => "decode",
            TraceEvent::Bind { .. } => "bind",
            TraceEvent::Emulate { .. } => "emulate",
            TraceEvent::Commit { .. } => "commit",
            TraceEvent::CorrectnessTrap { .. } => "correctness_trap",
            TraceEvent::NanHoleTrap { .. } => "nan_hole_trap",
            TraceEvent::ExtCall { .. } => "ext_call",
            TraceEvent::PatchInstalled { .. } => "patch_installed",
            TraceEvent::PatchCall { .. } => "patch_call",
            TraceEvent::GcPass { .. } => "gc_pass",
            TraceEvent::RuntimeError { .. } => "runtime_error",
        }
    }

    /// The guest rip the event is anchored to, when it has one.
    pub fn rip(&self) -> Option<u64> {
        match *self {
            TraceEvent::TrapBegin { rip, .. }
            | TraceEvent::Decode { rip, .. }
            | TraceEvent::Bind { rip, .. }
            | TraceEvent::Emulate { rip, .. }
            | TraceEvent::Commit { rip, .. }
            | TraceEvent::CorrectnessTrap { rip, .. }
            | TraceEvent::NanHoleTrap { rip, .. }
            | TraceEvent::ExtCall { rip, .. }
            | TraceEvent::PatchInstalled { rip, .. }
            | TraceEvent::PatchCall { rip, .. }
            | TraceEvent::RuntimeError { rip, .. } => Some(rip),
            TraceEvent::GcPass { .. } => None,
        }
    }
}

/// A consumer of [`TraceEvent`]s.
///
/// Installed on the runtime through
/// [`crate::engine::Fpvm::set_trace_sink`]; the engine consults
/// [`TraceSink::enabled`] once at install time and skips event
/// construction entirely when it returns `false`.
///
/// The `Send + Any` supertraits are the ownership contract: a sink is
/// owned by exactly one engine (which may live on any thread), and after
/// the run the caller takes it back with
/// [`crate::engine::Fpvm::take_trace_sink`] and recovers the concrete
/// type via [`dyn TraceSink::downcast`].
pub trait TraceSink: Send + Any {
    /// Whether this sink wants events at all. Cached by the engine at
    /// install time — the disabled path costs a single branch per site.
    fn enabled(&self) -> bool {
        true
    }

    /// Consume one event.
    fn emit(&mut self, ev: &TraceEvent);

    /// A short name for reports.
    fn name(&self) -> &'static str {
        "sink"
    }
}

impl dyn TraceSink {
    /// Is the concrete sink behind this handle an `S`?
    pub fn is<S: TraceSink>(&self) -> bool {
        let any: &dyn Any = self;
        any.is::<S>()
    }

    /// Borrow the concrete sink, if it is an `S`.
    pub fn downcast_ref<S: TraceSink>(&self) -> Option<&S> {
        let any: &dyn Any = self;
        any.downcast_ref::<S>()
    }

    /// Mutably borrow the concrete sink, if it is an `S`.
    pub fn downcast_mut<S: TraceSink>(&mut self) -> Option<&mut S> {
        let any: &mut dyn Any = self;
        any.downcast_mut::<S>()
    }

    /// Recover the owned concrete sink — the teardown half of the owned-
    /// sink protocol. On type mismatch the boxed sink is handed back
    /// unchanged.
    ///
    /// ```
    /// use fpvm_core::trace::{RingBufferSink, TraceSink};
    /// let boxed: Box<dyn TraceSink> = Box::new(RingBufferSink::new(8));
    /// let ring: Box<RingBufferSink> = boxed.downcast().unwrap();
    /// assert_eq!(ring.len(), 0);
    /// ```
    pub fn downcast<S: TraceSink>(self: Box<Self>) -> Result<Box<S>, Box<dyn TraceSink>> {
        if self.is::<S>() {
            let any: Box<dyn Any> = self;
            Ok(any.downcast::<S>().expect("type checked above"))
        } else {
            Err(self)
        }
    }
}

/// Identify a sink by [`TraceSink::name`]; lets `downcast(..).unwrap()`
/// report which sink was actually installed on a mismatch.
impl fmt::Debug for dyn TraceSink {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "TraceSink({})", self.name())
    }
}

/// The default sink: drops everything, reports itself disabled, and keeps
/// the instrumented engine's behavior bit-identical to an uninstrumented
/// one.
#[derive(Debug, Default, Clone, Copy)]
pub struct NullSink;

impl TraceSink for NullSink {
    fn enabled(&self) -> bool {
        false
    }

    fn emit(&mut self, _ev: &TraceEvent) {}

    fn name(&self) -> &'static str {
        "null"
    }
}

/// A bounded last-N event recorder for post-mortem inspection: when a run
/// ends in a [`crate::engine::RuntimeError`], the tail of the trace shows
/// what the pipeline was doing right before it gave up.
#[derive(Debug)]
pub struct RingBufferSink {
    cap: usize,
    buf: VecDeque<TraceEvent>,
    total: u64,
}

impl RingBufferSink {
    /// A recorder keeping the last `cap` events (`cap` ≥ 1).
    pub fn new(cap: usize) -> Self {
        RingBufferSink {
            cap: cap.max(1),
            buf: VecDeque::with_capacity(cap.max(1)),
            total: 0,
        }
    }

    /// The retained events, oldest first.
    pub fn events(&self) -> impl Iterator<Item = &TraceEvent> {
        self.buf.iter()
    }

    /// Number of retained events (≤ capacity).
    pub fn len(&self) -> usize {
        self.buf.len()
    }

    /// True when nothing has been recorded.
    pub fn is_empty(&self) -> bool {
        self.buf.is_empty()
    }

    /// Total events ever emitted into the ring.
    pub fn total_emitted(&self) -> u64 {
        self.total
    }

    /// Events that fell off the front of the ring.
    pub fn dropped(&self) -> u64 {
        self.total - self.buf.len() as u64
    }

    /// Render the retained tail, one event per line (post-mortem dump).
    pub fn dump(&self) -> String {
        let mut s = String::new();
        for (i, ev) in self.buf.iter().enumerate() {
            s.push_str(&format!(
                "[-{:>3}] {:<16} {ev:?}\n",
                self.buf.len() - i,
                ev.kind()
            ));
        }
        s
    }
}

impl TraceSink for RingBufferSink {
    fn emit(&mut self, ev: &TraceEvent) {
        if self.buf.len() == self.cap {
            self.buf.pop_front();
        }
        self.buf.push_back(*ev);
        self.total += 1;
    }

    fn name(&self) -> &'static str {
        "ring"
    }
}

/// Broadcast each event to several sinks (e.g. a JSONL stream *and* a
/// profiler in the same run).
pub struct FanoutSink {
    sinks: Vec<Box<dyn TraceSink>>,
}

impl FanoutSink {
    /// A fanout over the given sinks.
    pub fn new(sinks: Vec<Box<dyn TraceSink>>) -> Self {
        FanoutSink { sinks }
    }

    /// Borrow the fanned-out sinks, in installation order.
    pub fn sinks(&self) -> &[Box<dyn TraceSink>] {
        &self.sinks
    }

    /// Teardown: hand back the owned sinks, in installation order, so each
    /// can be [`dyn TraceSink::downcast`] to its concrete type after a run.
    pub fn into_sinks(self) -> Vec<Box<dyn TraceSink>> {
        self.sinks
    }
}

impl TraceSink for FanoutSink {
    fn enabled(&self) -> bool {
        self.sinks.iter().any(|s| s.enabled())
    }

    fn emit(&mut self, ev: &TraceEvent) {
        for s in &mut self.sinks {
            s.emit(ev);
        }
    }

    fn name(&self) -> &'static str {
        "fanout"
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ev(rip: u64) -> TraceEvent {
        TraceEvent::Decode {
            rip,
            hit: true,
            cycles: 45,
        }
    }

    #[test]
    fn ring_keeps_last_n_and_counts_drops() {
        let mut r = RingBufferSink::new(3);
        for i in 0..5 {
            r.emit(&ev(i));
        }
        assert_eq!(r.len(), 3);
        assert_eq!(r.total_emitted(), 5);
        assert_eq!(r.dropped(), 2);
        let rips: Vec<u64> = r.events().filter_map(|e| e.rip()).collect();
        assert_eq!(rips, vec![2, 3, 4]);
        assert!(r.dump().contains("decode"));
    }

    #[test]
    fn null_sink_is_disabled() {
        assert!(!NullSink.enabled());
        let mut n = NullSink;
        n.emit(&ev(0)); // no-op
    }

    #[test]
    fn fanout_broadcasts_and_teardown_recovers_owned_sinks() {
        let mut fan = FanoutSink::new(vec![Box::new(NullSink), Box::new(RingBufferSink::new(8))]);
        assert!(fan.enabled(), "one live sink is enough");
        fan.emit(&ev(7));
        // Teardown: take the owned sinks back out and downcast each.
        let mut sinks = fan.into_sinks().into_iter();
        let null = sinks.next().unwrap();
        assert!(null.is::<NullSink>());
        let ring: Box<RingBufferSink> = sinks.next().unwrap().downcast().unwrap();
        assert_eq!(ring.len(), 1);
        assert_eq!(ring.events().next().unwrap().rip(), Some(7));
    }

    #[test]
    fn downcast_mismatch_hands_the_sink_back() {
        let boxed: Box<dyn TraceSink> = Box::new(RingBufferSink::new(4));
        let back = boxed.downcast::<NullSink>().unwrap_err();
        assert_eq!(back.name(), "ring", "mismatch returns the sink intact");
        assert!(back.downcast::<RingBufferSink>().is_ok());
    }

    #[test]
    fn downcast_ref_and_mut_reach_through_the_trait_object() {
        let mut boxed: Box<dyn TraceSink> = Box::new(RingBufferSink::new(4));
        boxed.emit(&ev(1));
        assert!(boxed.downcast_ref::<NullSink>().is_none());
        assert_eq!(boxed.downcast_ref::<RingBufferSink>().unwrap().len(), 1);
        boxed.downcast_mut::<RingBufferSink>().unwrap().emit(&ev(2));
        assert_eq!(boxed.downcast_ref::<RingBufferSink>().unwrap().len(), 2);
    }

    #[test]
    fn kinds_are_stable_tags() {
        assert_eq!(ev(0).kind(), "decode");
        let e = TraceEvent::RuntimeError {
            stage: Stage::Patch,
            rip: 0x1000,
            site: Some(3),
        };
        assert_eq!(e.kind(), "runtime_error");
        assert_eq!(e.rip(), Some(0x1000));
        let g = TraceEvent::GcPass {
            icount: 1,
            before: 2,
            freed: 1,
            alive: 1,
            cycles: 10,
        };
        assert_eq!(g.rip(), None);
    }
}
