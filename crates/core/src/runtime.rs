//! The hybrid FPVM runtime: trap-and-emulate engine + correctness-trap
//! handling + math/output interposition + trap-and-patch (§3, §4).
//!
//! The runtime drives the simulated machine exactly the way the paper's
//! prototype drives a Linux process:
//!
//! 1. It unmasks every `%mxcsr` exception, so any rounding, overflow,
//!    underflow, denormal or NaN event faults into the runtime
//!    ([`Fpvm::run`] ↔ the SIGFPE handler).
//! 2. On a trap it decodes the faulting instruction (through a **decode
//!    cache**), **binds** its operands, **emulates** it on the alternative
//!    arithmetic system, NaN-boxes the result, clears the sticky condition
//!    flags, and resumes after the instruction.
//! 3. `Trap` instructions installed by the static analyzer demote any
//!    boxed operands in place and re-execute the original instruction in
//!    single-step mode (§4.2 "correctness traps").
//! 4. External calls are interposed like an `LD_PRELOAD` shim: libm routes
//!    into the arithmetic system (the math wrapper) and `printf` demotes
//!    for rendering (the output wrapper, §2 "printing problem").
//! 5. Optionally, the trap-and-patch engine (§3.2) rewrites hot faulting
//!    sites into direct patch calls with inline pre/postcondition checks.

use crate::bound::{self, bind, has_boxed_src, native_eval, read_int_loc, read_loc, Dst, Loc};
use crate::gc;
use crate::stats::Stats;
use fpvm_arith::{ArithSystem, FpFlags, Round, ScalarOp, ShadowArena};
use fpvm_machine::{
    decode, encode, DeliveryMode, Event, ExtFn, Fault, Inst, Machine, TrapKind, CODE_BASE,
};
use fpvm_nanbox::ShadowKey;
use std::collections::HashMap;
use std::time::Instant;

/// Runtime configuration.
#[derive(Debug, Clone, Copy)]
pub struct FpvmConfig {
    /// How traps reach the runtime (cost model only; §6).
    pub delivery: DeliveryMode,
    /// Enable the decode cache (§5.3 footnote 8 ablation).
    pub decode_cache: bool,
    /// Interpose libm calls onto the arithmetic system (the math wrapper).
    pub interpose_math: bool,
    /// Interpose output calls (the output wrapper).
    pub interpose_output: bool,
    /// GC epoch in retired guest instructions (the paper uses a 1 s timer;
    /// instruction count is the deterministic analogue).
    pub gc_epoch: u64,
    /// Arena-pressure GC trigger (live cells).
    pub gc_pressure: usize,
    /// Use the parallel mark phase.
    pub gc_parallel: bool,
    /// Enable the trap-and-patch engine (§3.2).
    pub trap_and_patch: bool,
    /// Dispatch correctness traps as direct calls instead of full traps
    /// (the §5.3 "matter of implementation effort" optimization).
    pub correctness_as_call: bool,
    /// Strawman: demote every emulated result immediately (the rejected
    /// "demote on every store" design of §4.2 — "obviates the goal of
    /// using the alternative arithmetic system, but guarantees
    /// correctness").
    pub always_demote: bool,
    /// §6.2 hardware extension: assume trap-on-NaN-load + NaN checks on all
    /// FP-adjacent instructions. Makes the FP ISA fully virtualizable —
    /// **no static analysis or binary patching needed** ("If the hardware
    /// could optionally trigger an exception when a NaN pattern is loaded
    /// as a value, the static analysis could be avoided").
    pub nan_load_hw: bool,
    /// Guest instruction budget.
    pub max_insts: u64,
}

impl Default for FpvmConfig {
    fn default() -> Self {
        FpvmConfig {
            delivery: DeliveryMode::UserSignal,
            decode_cache: true,
            interpose_math: true,
            interpose_output: true,
            gc_epoch: 400_000,
            gc_pressure: 1 << 20,
            gc_parallel: false,
            trap_and_patch: false,
            correctness_as_call: false,
            always_demote: false,
            nan_load_hw: false,
            max_insts: 4_000_000_000,
        }
    }
}

/// An entry in the correctness-trap side table (produced by fpvm-analysis's
/// patcher): the original instruction that the `Trap` replaced.
#[derive(Debug, Clone, Copy)]
pub struct SideTableEntry {
    /// Address of the patched site.
    pub addr: u64,
    /// The original instruction.
    pub original: Inst,
    /// Its encoded length (the patch spans this many bytes).
    pub len: u8,
}

/// Why the virtualized run ended.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ExitReason {
    /// Guest executed `Halt`.
    Halted,
    /// Guest called `Exit`.
    Exited(i64),
    /// Fatal guest fault.
    Fault(Fault),
    /// A trap arrived that the runtime cannot handle (bad side-table id,
    /// unemulable instruction).
    RuntimeError(u64),
}

/// Result of a virtualized run.
#[derive(Debug, Clone)]
pub struct RunReport {
    /// Exit reason.
    pub exit: ExitReason,
    /// Runtime statistics.
    pub stats: Stats,
    /// Guest instructions retired.
    pub icount: u64,
    /// Guest FP instructions retired natively (did not trap).
    pub fp_icount: u64,
    /// Total accounted cycles (guest base + virtualization).
    pub cycles: u64,
    /// Wall-clock host time of the whole run.
    pub wall_ns: u64,
}

#[derive(Debug, Clone, Copy)]
struct TpSite {
    original: Inst,
    next_rip: u64,
}

/// The FPVM runtime, generic over the alternative arithmetic system.
pub struct Fpvm<A: ArithSystem> {
    arith: A,
    /// The shadow-value arena (FPVM provides the arithmetic system with
    /// memory management, §4.3).
    pub arena: ShadowArena<A::Value>,
    /// Runtime configuration.
    pub config: FpvmConfig,
    /// Statistics.
    pub stats: Stats,
    decode_cache: HashMap<u64, (Inst, u8)>,
    side_table: Vec<SideTableEntry>,
    tp_sites: HashMap<u16, TpSite>,
    tp_by_addr: HashMap<u64, u16>,
    last_gc_icount: u64,
    rendered: Vec<String>,
}

impl<A: ArithSystem> Fpvm<A> {
    /// Create a runtime over the given arithmetic system.
    pub fn new(arith: A, config: FpvmConfig) -> Self {
        Fpvm {
            arith,
            arena: ShadowArena::new(),
            config,
            stats: Stats::default(),
            decode_cache: HashMap::new(),
            side_table: Vec::new(),
            tp_sites: HashMap::new(),
            tp_by_addr: HashMap::new(),
            last_gc_icount: 0,
            rendered: Vec::new(),
        }
    }

    /// The arithmetic system.
    pub fn arith(&self) -> &A {
        &self.arith
    }

    /// Full-precision rendered output lines (the output wrapper's view).
    pub fn rendered_output(&self) -> &[String] {
        &self.rendered
    }

    /// Install the correctness-trap side table (from the static patcher).
    pub fn set_side_table(&mut self, table: Vec<SideTableEntry>) {
        self.side_table = table;
    }

    /// Preload patch-call sites emitted by the compiler-based approach
    /// (§3.4): the IR pass replaced each FP operation with a
    /// `Trap{PatchCall}` whose handler is registered here at load time.
    pub fn preload_patch_sites(&mut self, sites: Vec<(u16, Inst, u64)>) {
        for (id, original, next_rip) in sites {
            self.tp_sites.insert(id, TpSite { original, next_rip });
        }
    }

    /// Run the machine under virtualization until it halts or faults.
    pub fn run(&mut self, m: &mut Machine) -> RunReport {
        let wall = Instant::now();
        m.hook_ext = true;
        m.nan_hole_traps = self.config.nan_load_hw;
        m.mxcsr.unmask_all();
        let exit = loop {
            if m.icount >= self.config.max_insts {
                break ExitReason::Fault(Fault::Budget);
            }
            let budget = self.config.max_insts - m.icount;
            match m.run(budget) {
                Event::Halted => break ExitReason::Halted,
                Event::Exited(code) => break ExitReason::Exited(code),
                Event::Fault(f) => break ExitReason::Fault(f),
                Event::SingleStepped => unreachable!("runtime never sets TF across run()"),
                Event::FpException { rip, flags } => {
                    if let Err(e) = self.on_fp_trap(m, rip, flags) {
                        break e;
                    }
                }
                Event::SwTrap { kind, id, rip } => {
                    let r = match kind {
                        TrapKind::Correctness => self.on_correctness_trap(m, id, rip),
                        TrapKind::PatchCall => self.on_patch_call(m, id, rip),
                    };
                    if let Err(e) = r {
                        break e;
                    }
                }
                Event::ExtCall { f, rip, next_rip } => {
                    if let Err(e) = self.on_ext_call(m, f, rip, next_rip) {
                        break e;
                    }
                }
                Event::NanHole { rip } => {
                    if let Err(e) = self.on_nan_hole(m, rip) {
                        break e;
                    }
                }
            }
            self.maybe_gc(m);
        };
        RunReport {
            exit,
            stats: self.stats.clone(),
            icount: m.icount,
            fp_icount: m.fp_icount,
            cycles: m.cycles,
            wall_ns: wall.elapsed().as_nanos() as u64,
        }
    }

    // ---- trap-and-emulate ------------------------------------------------

    fn on_fp_trap(&mut self, m: &mut Machine, rip: u64, _flags: FpFlags) -> Result<(), ExitReason> {
        self.stats.fp_traps += 1;
        // Delivery cost (Fig. 9: hardware + kernel + user components).
        let (hw, kern, user) = m.cost.delivery_parts(self.config.delivery);
        self.stats.cycles.hardware += hw;
        self.stats.cycles.kernel += kern;
        self.stats.cycles.user_delivery += user;
        m.charge(hw + kern + user);
        // Inspect and clear the sticky condition codes (§4.1 "Trapping").
        m.mxcsr.clear_flags();
        // Decode (with cache).
        let (inst, len) = self.decode_at(m, rip)?;
        // Bind.
        self.stats.cycles.bind += m.cost.bind;
        m.charge(m.cost.bind);
        let next_rip = rip + u64::from(len);
        // Emulate.
        self.emulate(m, &inst, next_rip)?;
        // Trap-and-patch: install a patch at this site so the next
        // encounter dispatches via a cheap call instead of a trap.
        if self.config.trap_and_patch {
            self.install_patch(m, rip, inst, len, next_rip);
        }
        Ok(())
    }

    fn decode_at(&mut self, m: &mut Machine, rip: u64) -> Result<(Inst, u8), ExitReason> {
        if self.config.decode_cache {
            if let Some(&hit) = self.decode_cache.get(&rip) {
                self.stats.decode_hits += 1;
                self.stats.cycles.decode += m.cost.decode_hit;
                m.charge(m.cost.decode_hit);
                return Ok(hit);
            }
        }
        self.stats.decode_misses += 1;
        self.stats.cycles.decode += m.cost.decode_miss;
        m.charge(m.cost.decode_miss);
        let off = (rip - CODE_BASE) as usize;
        match decode(m.mem.code_bytes(), off) {
            Ok((inst, len)) => {
                let entry = (inst, len as u8);
                if self.config.decode_cache {
                    self.decode_cache.insert(rip, entry);
                }
                Ok(entry)
            }
            Err(_) => Err(ExitReason::RuntimeError(rip)),
        }
    }

    fn emulate(&mut self, m: &mut Machine, inst: &Inst, next_rip: u64) -> Result<(), ExitReason> {
        let Some(b) = bind(m, inst, next_rip) else {
            return Err(ExitReason::RuntimeError(m.rip));
        };
        let t = Instant::now();
        self.stats.emulated += 1;
        for lane in b.lanes.into_iter().flatten() {
            self.emulate_lane(m, &lane)?;
        }
        m.rip = b.next_rip;
        let ns = t.elapsed().as_nanos() as u64;
        self.stats.emulate_ns += ns;
        let cyc = m.cost.ns_to_cycles(ns) + m.cost.emulate_dispatch;
        self.stats.cycles.emulate += cyc;
        m.charge(cyc);
        Ok(())
    }

    /// Unbox a source into the arithmetic system, promoting if necessary.
    fn unbox(&mut self, bits: u64) -> A::Value {
        if let Some(key) = fpvm_nanbox::decode(bits) {
            if let Some(v) = self.arena.get(key) {
                return v.clone();
            }
            // Universal NaN: a signaling NaN with no live shadow value is a
            // true NaN (§2).
            return self.arith.from_f64(f64::NAN);
        }
        self.stats.promotions += 1;
        self.arith.from_f64(f64::from_bits(bits))
    }

    /// Box a shadow value: allocate a cell and return the encoded sNaN
    /// bits. Under `always_demote` the value is demoted immediately instead
    /// (the §4.2 strawman).
    fn boxv(&mut self, v: A::Value) -> u64 {
        if self.config.always_demote {
            self.stats.demotions += 1;
            let (d, _) = self.arith.to_f64(&v, Round::NearestEven);
            return d.to_bits();
        }
        self.stats.boxes_created += 1;
        let key = self.arena.alloc(v);
        fpvm_nanbox::encode(key)
    }

    fn emulate_lane(&mut self, m: &mut Machine, lane: &bound::BoundLane) -> Result<(), ExitReason> {
        use ScalarOp::*;
        self.stats.emulated_lanes += 1;
        let rm = m.mxcsr.rounding();
        let err = ExitReason::Fault(Fault::Mem(
            fpvm_machine::MemFault::OutOfBounds(0),
            m.rip,
        ));
        let rd = |rt: &mut Self, mm: &Machine, i: usize| -> Result<A::Value, ExitReason> {
            let bits = read_loc(mm, lane.srcs[i]).map_err(|_| err)?;
            Ok(rt.unbox(bits))
        };
        let (result, flags): (Option<A::Value>, FpFlags) = match lane.op {
            Add | Sub | Mul | Div | Min | Max => {
                let a = rd(self, m, 0)?;
                let b = rd(self, m, 1)?;
                let (v, f) = match lane.op {
                    Add => self.arith.add(&a, &b, rm),
                    Sub => self.arith.sub(&a, &b, rm),
                    Mul => self.arith.mul(&a, &b, rm),
                    Div => self.arith.div(&a, &b, rm),
                    Min => self.arith.min(&a, &b),
                    _ => self.arith.max(&a, &b),
                };
                (Some(v), f)
            }
            Sqrt => {
                let a = rd(self, m, 0)?;
                let (v, f) = self.arith.sqrt(&a, rm);
                (Some(v), f)
            }
            Neg => {
                let a = rd(self, m, 0)?;
                let (v, f) = self.arith.neg(&a);
                (Some(v), f)
            }
            Abs => {
                let a = rd(self, m, 0)?;
                let (v, f) = self.arith.abs(&a);
                (Some(v), f)
            }
            Fma => {
                let a = rd(self, m, 0)?;
                let b = rd(self, m, 1)?;
                let c = rd(self, m, 2)?;
                let (v, f) = self.arith.fma(&a, &b, &c, rm);
                (Some(v), f)
            }
            CmpQuiet | CmpSignaling => {
                let a = rd(self, m, 0)?;
                let b = rd(self, m, 1)?;
                let (r, f) = if lane.op == CmpQuiet {
                    self.arith.cmp_quiet(&a, &b)
                } else {
                    self.arith.cmp_signaling(&a, &b)
                };
                m.rflags.set_fp_compare(r);
                m.mxcsr.raise(f);
                return Ok(());
            }
            CvtI32ToF | CvtI64ToF => {
                let raw = read_int_loc(m, lane.srcs[0], lane.int_width).map_err(|_| err)?;
                let (v, f) = if lane.op == CvtI32ToF {
                    self.arith.from_i32(raw as i32)
                } else {
                    self.arith.from_i64(raw)
                };
                (Some(v), f)
            }
            CvtFToI32 | CvtFToI64 => {
                let a = rd(self, m, 0)?;
                let (bits, f) = if lane.op == CvtFToI32 {
                    let (v, f) = self.arith.to_i32(&a);
                    (v as u32 as u64, f)
                } else {
                    let (v, f) = self.arith.to_i64(&a);
                    (v as u64, f)
                };
                if let Dst::Int(r, _) = lane.dst {
                    m.gpr[r as usize] = bits;
                }
                m.mxcsr.raise(f);
                return Ok(());
            }
            CvtFToF32 => {
                let a = rd(self, m, 0)?;
                self.stats.demotions += 1;
                let (v, f) = self.arith.to_f32(&a, rm);
                if let Dst::F32Lane(r) = lane.dst {
                    let lane0 = &mut m.xmm[r as usize][0];
                    *lane0 = (*lane0 & !0xFFFF_FFFF) | u64::from(v.to_bits());
                }
                m.mxcsr.raise(f);
                return Ok(());
            }
            CvtF32ToF => {
                let raw = read_loc(m, lane.srcs[0]).map_err(|_| err)? as u32;
                let v = self.arith.from_f32(f32::from_bits(raw));
                (Some(v), FpFlags::NONE)
            }
            _ => return Err(ExitReason::RuntimeError(m.rip)),
        };
        if let Some(v) = result {
            let bits = self.boxv(v);
            match lane.dst {
                Dst::F64Lane(r, l) => m.xmm[r as usize][l as usize] = bits,
                _ => return Err(ExitReason::RuntimeError(m.rip)),
            }
        }
        m.mxcsr.raise(flags);
        Ok(())
    }

    /// §6.2 hardware path: a NaN-box reached a non-FP instruction and the
    /// extended hardware faulted. Demote the offending operands and
    /// re-execute — same handler as a correctness trap, but discovered by
    /// hardware instead of static analysis.
    fn on_nan_hole(&mut self, m: &mut Machine, rip: u64) -> Result<(), ExitReason> {
        self.stats.nan_hole_traps += 1;
        let dispatch = m.cost.delivery(self.config.delivery);
        self.stats.cycles.correctness_dispatch += dispatch;
        m.charge(dispatch);
        let (inst, len) = self.decode_at(m, rip)?;
        let t = Instant::now();
        let demoted = self.demote_operands(m, &inst);
        if demoted > 0 {
            self.stats.correctness_demotions += 1;
        }
        match m.exec_masked(&inst, rip + u64::from(len)) {
            Ok(_) => {}
            Err(Event::Fault(f)) => return Err(ExitReason::Fault(f)),
            Err(_) => return Err(ExitReason::RuntimeError(rip)),
        }
        let cyc = m.cost.ns_to_cycles(t.elapsed().as_nanos() as u64);
        self.stats.cycles.correctness_handler += cyc;
        m.charge(cyc);
        Ok(())
    }

    // ---- correctness traps (§4.2) -----------------------------------------

    fn on_correctness_trap(
        &mut self,
        m: &mut Machine,
        id: u16,
        rip: u64,
    ) -> Result<(), ExitReason> {
        self.stats.correctness_traps += 1;
        let dispatch = if self.config.correctness_as_call {
            m.cost.patch_call
        } else {
            m.cost.delivery(self.config.delivery)
        };
        self.stats.cycles.correctness_dispatch += dispatch;
        m.charge(dispatch);
        let Some(entry) = self.side_table.get(id as usize).copied() else {
            return Err(ExitReason::RuntimeError(rip));
        };
        debug_assert_eq!(entry.addr, rip, "side table / patch mismatch");
        let t = Instant::now();
        // Demote any boxed operand in place, then re-execute the original
        // instruction in single-step mode.
        let demoted = self.demote_operands(m, &entry.original);
        if demoted > 0 {
            self.stats.correctness_demotions += 1;
        }
        let next_rip = rip + u64::from(entry.len);
        match m.exec_masked(&entry.original, next_rip) {
            Ok(_) => {}
            Err(Event::ExtCall { f, next_rip, .. }) => {
                // Re-executed instruction was itself an external call site.
                self.on_ext_call(m, f, rip, next_rip)?;
            }
            Err(Event::Fault(f)) => return Err(ExitReason::Fault(f)),
            Err(_) => return Err(ExitReason::RuntimeError(rip)),
        }
        let cyc = m.cost.ns_to_cycles(t.elapsed().as_nanos() as u64) + m.cost.patch_check;
        self.stats.cycles.correctness_handler += cyc;
        m.charge(cyc);
        Ok(())
    }

    /// Demote every boxed f64-typed operand of `inst` in place. Returns the
    /// number of demotions performed.
    fn demote_operands(&mut self, m: &mut Machine, inst: &Inst) -> usize {
        use Inst::*;
        let mut locs: Vec<Loc> = Vec::new();
        match inst {
            Load { addr, .. } => locs.push(Loc::Mem(m.ea(addr))),
            MovQXG { src, .. } => locs.push(Loc::XmmLane(src.0, 0)),
            XorPd { dst, src } | AndPd { dst, src } | OrPd { dst, src } => {
                locs.push(Loc::XmmLane(dst.0, 0));
                locs.push(Loc::XmmLane(dst.0, 1));
                match src {
                    fpvm_machine::XM::Reg(x) => {
                        locs.push(Loc::XmmLane(x.0, 0));
                        locs.push(Loc::XmmLane(x.0, 1));
                    }
                    fpvm_machine::XM::Mem(mem) => {
                        let ea = m.ea(mem);
                        locs.push(Loc::Mem(ea));
                        locs.push(Loc::Mem(ea + 8));
                    }
                }
            }
            MovSd { src, .. } | MovApd { src, .. } => {
                if let fpvm_machine::XM::Mem(mem) = src {
                    locs.push(Loc::Mem(m.ea(mem)));
                }
            }
            Store { src, .. } => locs.push(Loc::Gpr(src.0)),
            _ => {
                // Conservative: demote all xmm lanes the instruction touches
                // is unnecessary for our patch set; other shapes do not
                // reach the side table.
            }
        }
        let mut n = 0;
        for loc in locs {
            n += usize::from(self.demote_loc(m, loc));
        }
        n
    }

    /// If `loc` holds a live NaN-box, replace it with the demoted double.
    fn demote_loc(&mut self, m: &mut Machine, loc: Loc) -> bool {
        let Ok(bits) = read_loc(m, loc) else {
            return false;
        };
        let Some(key) = fpvm_nanbox::decode(bits) else {
            return false;
        };
        let demoted = match self.arena.get(key) {
            Some(v) => {
                let (d, _) = self.arith.to_f64(v, Round::NearestEven);
                d.to_bits()
            }
            // Stale box = universal NaN: demote to the canonical quiet NaN.
            None => f64::NAN.to_bits(),
        };
        self.stats.demotions += 1;
        
        match loc {
            Loc::XmmLane(r, l) => {
                m.xmm[r as usize][l as usize] = demoted;
                true
            }
            Loc::Gpr(r) => {
                m.gpr[r as usize] = demoted;
                true
            }
            Loc::Mem(a) => m.mem.write_u64(a, demoted).is_ok(),
            Loc::None => false,
        }
    }

    // ---- trap-and-patch (§3.2) ---------------------------------------------

    fn install_patch(&mut self, m: &mut Machine, rip: u64, inst: Inst, len: u8, next_rip: u64) {
        if self.tp_by_addr.contains_key(&rip) || len < 3 || self.tp_sites.len() >= u16::MAX as usize
        {
            return;
        }
        // Only FP arithmetic sites benefit; compares and cvts also qualify.
        if !inst.is_fp_arith() {
            return;
        }
        let id = self.tp_sites.len() as u16;
        let mut bytes = Vec::with_capacity(len as usize);
        encode(
            &Inst::Trap {
                kind: TrapKind::PatchCall,
                id,
            },
            &mut bytes,
        );
        while bytes.len() < len as usize {
            encode(&Inst::Nop, &mut bytes);
        }
        m.patch_code(rip, &bytes);
        self.decode_cache.remove(&rip);
        self.tp_sites.insert(
            id,
            TpSite {
                original: inst,
                next_rip,
            },
        );
        self.tp_by_addr.insert(rip, id);
        self.stats.sites_patched += 1;
    }

    fn on_patch_call(&mut self, m: &mut Machine, id: u16, rip: u64) -> Result<(), ExitReason> {
        let Some(site) = self.tp_sites.get(&id).copied() else {
            return Err(ExitReason::RuntimeError(rip));
        };
        // Direct call into the custom handler + inlined checks.
        let dispatch = m.cost.patch_call + m.cost.patch_check;
        self.stats.cycles.patch += dispatch;
        m.charge(dispatch);
        let Some(b) = bind(m, &site.original, site.next_rip) else {
            // Unbindable patched instruction (e.g. a bitwise FP op with a
            // non-canonical mask): fall back to demote + re-execute, like a
            // correctness trap.
            self.demote_operands(m, &site.original);
            return match m.exec_masked(&site.original, site.next_rip) {
                Ok(_) => Ok(()),
                Err(Event::Fault(f)) => Err(ExitReason::Fault(f)),
                Err(_) => Err(ExitReason::RuntimeError(rip)),
            };
        };
        // Precondition: no boxed inputs. Postcondition: native execution
        // would raise no event. Both hold → execute natively in the patch.
        let mut native: Vec<(Dst, u64)> = Vec::new();
        let mut fast = true;
        for lane in b.lanes.iter().flatten() {
            if has_boxed_src(m, lane) {
                fast = false;
                break;
            }
            match native_eval(m, lane) {
                Some((bits, flags)) if flags.is_empty() => native.push((lane.dst, bits)),
                _ => {
                    fast = false;
                    break;
                }
            }
        }
        if fast {
            self.stats.patch_fast += 1;
            for (dst, bits) in native {
                if let Dst::F64Lane(r, l) = dst {
                    m.xmm[r as usize][l as usize] = bits;
                }
            }
            m.rip = site.next_rip;
            return Ok(());
        }
        // Slow path: full emulation through the handler.
        self.stats.patch_slow += 1;
        self.emulate(m, &site.original, site.next_rip)
    }

    // ---- externals: math wrapper + output wrapper ---------------------------

    fn on_ext_call(
        &mut self,
        m: &mut Machine,
        f: ExtFn,
        _rip: u64,
        next_rip: u64,
    ) -> Result<(), ExitReason> {
        if f.is_math() && self.config.interpose_math {
            self.stats.math_interposed += 1;
            let t = Instant::now();
            let rm = m.mxcsr.rounding();
            let a = self.unbox(m.xmm[0][0]);
            let (v, flags) = match f {
                ExtFn::Sin => self.arith.sin(&a, rm),
                ExtFn::Cos => self.arith.cos(&a, rm),
                ExtFn::Tan => self.arith.tan(&a, rm),
                ExtFn::Asin => self.arith.asin(&a, rm),
                ExtFn::Acos => self.arith.acos(&a, rm),
                ExtFn::Atan => self.arith.atan(&a, rm),
                ExtFn::Exp => self.arith.exp(&a, rm),
                ExtFn::Log => self.arith.log(&a, rm),
                ExtFn::Log10 => self.arith.log10(&a, rm),
                ExtFn::Floor => self.arith.floor(&a),
                ExtFn::Ceil => self.arith.ceil(&a),
                ExtFn::Fabs => self.arith.abs(&a),
                ExtFn::Atan2 => {
                    let b = self.unbox(m.xmm[1][0]);
                    self.arith.atan2(&a, &b, rm)
                }
                ExtFn::Pow => {
                    let b = self.unbox(m.xmm[1][0]);
                    self.arith.pow(&a, &b, rm)
                }
                _ => unreachable!("is_math"),
            };
            m.mxcsr.raise(flags);
            m.xmm[0][0] = self.boxv(v);
            m.rip = next_rip;
            let ns = t.elapsed().as_nanos() as u64;
            self.stats.emulate_ns += ns;
            let cyc = m.cost.ns_to_cycles(ns) + m.cost.emulate_dispatch;
            self.stats.cycles.emulate += cyc;
            m.charge(cyc);
            return Ok(());
        }
        if f == ExtFn::PrintF64 && self.config.interpose_output {
            // The output wrapper: demote for printing without destroying
            // the box ("hijack such output functions … to promote %lf").
            self.stats.output_wrapped += 1;
            let bits = m.xmm[0][0];
            let (demoted_bits, full) = if let Some(key) = fpvm_nanbox::decode(bits) {
                self.stats.demotions += 1;
                match self.arena.get(key) {
                    Some(v) => {
                        let (d, _) = self.arith.to_f64(v, Round::NearestEven);
                        (d.to_bits(), self.arith.render(v))
                    }
                    None => (f64::NAN.to_bits(), "nan".to_string()),
                }
            } else {
                let d = f64::from_bits(bits);
                (bits, format!("{d:?}"))
            };
            m.output.push(fpvm_machine::OutputEvent::F64(demoted_bits));
            self.rendered.push(full);
            m.rip = next_rip;
            return Ok(());
        }
        // Non-interposed external (or stdio/services): demote FP argument
        // registers at the call site (§4.2 "for calls into external
        // libraries, NaN-boxed values passed as arguments can be
        // problematic … we demote NaN-boxed floating point registers at
        // the call site"), then forward natively.
        for i in 0..f.fp_args() {
            self.demote_loc(m, Loc::XmmLane(i as u8, 0));
        }
        if let Some(ev) = m.exec_ext_native(f) {
            match ev {
                Event::Exited(code) => return Err(ExitReason::Exited(code)),
                _ => return Err(ExitReason::RuntimeError(m.rip)),
            }
        }
        m.rip = next_rip;
        Ok(())
    }

    // ---- GC ------------------------------------------------------------------

    fn maybe_gc(&mut self, m: &mut Machine) {
        let due_epoch = m.icount.saturating_sub(self.last_gc_icount) >= self.config.gc_epoch;
        let due_pressure = self.arena.live() >= self.config.gc_pressure;
        if !(due_epoch || due_pressure) || self.arena.live() == 0 {
            return;
        }
        self.last_gc_icount = m.icount;
        let rec = gc::collect(m, &mut self.arena, self.config.gc_parallel);
        self.stats.gc_passes += 1;
        self.stats.gc_ns += rec.ns;
        let cyc = m.cost.ns_to_cycles(rec.ns);
        self.stats.cycles.gc += cyc;
        m.charge(cyc);
        self.stats.gc_records.push(rec);
    }

    /// Force a GC pass now (used by tests and the Fig. 10 harness).
    pub fn force_gc(&mut self, m: &mut Machine) -> crate::stats::GcRecord {
        self.last_gc_icount = m.icount;
        let rec = gc::collect(m, &mut self.arena, self.config.gc_parallel);
        self.stats.gc_passes += 1;
        self.stats.gc_ns += rec.ns;
        self.stats.gc_records.push(rec);
        rec
    }

    /// Look up a shadow value by key (tests/inspection).
    pub fn shadow(&self, key: ShadowKey) -> Option<&A::Value> {
        self.arena.get(key)
    }
}
