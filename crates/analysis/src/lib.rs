//! # fpvm-analysis — static binary analysis and transformation (§4.2)
//!
//! The offline half of the hybrid FPVM: because some x64 instructions
//! operate on NaN-boxed values *without* faulting (integer loads of FP
//! memory, `movq r64 ← xmm`, the `xorpd`/`andpd` compiler idioms),
//! trap-and-emulate alone is unsound. This crate reproduces the paper's
//! angr + e9patch pipeline on the simulated ISA:
//!
//! 1. [`cfg`](mod@cfg) recovers a control flow graph from the program image;
//! 2. [`vsa`] runs a value-set-analysis-lite abstract interpretation that
//!    finds *sources* (FP stores) and *sinks* (integer reads that may
//!    observe them), degrading conservatively where static reasoning fails
//!    — VSA "is not generally solvable" (§4.2);
//! 3. [`liveness`] optionally prunes the sink set backward from integer
//!    *observation points* (NSan-style): loads whose value never reaches
//!    the integer world need no trap;
//! 4. [`patch`] overwrites each sink with an explicit **correctness trap**
//!    and emits the side table the runtime uses to demote-and-re-execute.
//!
//! The second-generation precision passes (flow-sensitive memory typing,
//! k=1 context-sensitive summaries, backward box-liveness) are ablatable
//! [`AnalysisConfig`] knobs measured by `reproduce --exp vsa2` (E19).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod audit;
pub mod cfg;
pub mod liveness;
pub mod patch;
pub mod vsa;

pub use audit::{audit, AuditReport, AuditSite, ReasonMetrics, SiteClass, SiteDyn};
pub use cfg::Cfg;
pub use patch::{
    analyze_and_patch, analyze_and_patch_with, apply_patches, PatchedProgram, SkipReason,
    SkippedSink,
};
pub use vsa::{
    analyze, analyze_with, Analysis, AnalysisConfig, AnalysisStats, HeapModel, Sink, SinkReason,
};
