//! The binary patcher (the e9patch analogue, §4.2).
//!
//! "Once sink instructions are identified, they are patched to explicitly
//! trap into FPVM to demote the NaN-boxed value if it is discovered at
//! run-time to truly be NaN-boxed, and then re-execute the instruction."
//!
//! Each sink instruction is overwritten in place with a 3-byte
//! `Trap{Correctness, id}` followed by `Nop` padding, and the original
//! instruction is stashed in the side table the runtime consults. Because
//! the `Trap` encoding is no longer than the shortest patchable
//! instruction, patching never spans instruction boundaries — the
//! straddling problem §3.2 describes for real x64 does not arise (the ISA
//! was designed that way; see fpvm-machine::encode).

use crate::vsa::{analyze, Analysis, Sink};
use fpvm_core::SideTableEntry;
use fpvm_machine::{encode, Inst, Program, TrapKind, CODE_BASE};
use std::collections::BTreeSet;

/// Result of analyzing + patching a program.
#[derive(Debug, Clone)]
pub struct PatchedProgram {
    /// The transformed image (sinks replaced by correctness traps).
    pub program: Program,
    /// The side table to install into the runtime.
    pub side_table: Vec<SideTableEntry>,
    /// The analysis that produced the patches.
    pub analysis: Analysis,
}

/// Analyze a program and patch every sink with a correctness trap.
pub fn analyze_and_patch(p: &Program) -> PatchedProgram {
    let analysis = analyze(p);
    let (program, side_table) = apply_patches(p, &analysis.sinks);
    PatchedProgram {
        program,
        side_table,
        analysis,
    }
}

/// Apply a specific sink list (exposed for tests and ablations).
pub fn apply_patches(p: &Program, sinks: &[Sink]) -> (Program, Vec<SideTableEntry>) {
    let mut out = p.clone();
    let mut table = Vec::new();
    // Branch targets must never land inside a patched region other than at
    // the patch start; with whole-instruction patching this can only be
    // violated by hand-crafted images — verify anyway.
    let targets = branch_targets(p);
    for sink in sinks {
        let id = table.len();
        if id > u16::MAX as usize {
            break; // side table full; remaining sinks stay unpatched
        }
        let inside = (sink.addr + 1..sink.addr + u64::from(sink.len)).any(|a| targets.contains(&a));
        if inside {
            continue;
        }
        let mut bytes = Vec::with_capacity(sink.len as usize);
        encode(
            &Inst::Trap {
                kind: TrapKind::Correctness,
                id: id as u16,
            },
            &mut bytes,
        );
        assert!(
            bytes.len() <= sink.len as usize,
            "trap must fit the original instruction"
        );
        while bytes.len() < sink.len as usize {
            encode(&Inst::Nop, &mut bytes);
        }
        let off = (sink.addr - CODE_BASE) as usize;
        out.code[off..off + sink.len as usize].copy_from_slice(&bytes);
        table.push(SideTableEntry {
            addr: sink.addr,
            original: sink.inst,
            len: sink.len,
        });
    }
    (out, table)
}

fn branch_targets(p: &Program) -> BTreeSet<u64> {
    let mut targets = BTreeSet::new();
    for (addr, inst, len) in p.disassemble() {
        let next = addr + len as u64;
        match inst {
            Inst::Jmp { rel } | Inst::Jcc { rel, .. } | Inst::Call { rel } => {
                targets.insert(next.wrapping_add(i64::from(rel) as u64));
            }
            _ => {}
        }
    }
    targets
}

#[cfg(test)]
mod tests {
    use super::*;
    use fpvm_arith::Vanilla;
    use fpvm_core::{ExitReason, Fpvm, FpvmConfig};
    use fpvm_machine::{AluOp, Asm, CostModel, Gpr, Machine, Mem, Width, Xmm};

    #[test]
    fn patched_program_same_length_and_decodable() {
        let mut a = Asm::new();
        let c = a.f64m(1.5);
        a.alu_ri(AluOp::Sub, Gpr::RSP, 16);
        a.movsd(Xmm(0), c);
        a.movsd(Mem::base_disp(Gpr::RSP, 8), Xmm(0));
        a.load_w(Gpr::RAX, Mem::base_disp(Gpr::RSP, 8), Width::W64);
        a.movq_xg(Gpr::RBX, Xmm(0));
        a.halt();
        let p = a.finish();
        let patched = analyze_and_patch(&p);
        assert_eq!(patched.program.code.len(), p.code.len());
        assert_eq!(patched.side_table.len(), 2);
        // Every address still decodes; traps appear where sinks were.
        let dis = patched.program.disassemble();
        let traps = dis
            .iter()
            .filter(|(_, i, _)| matches!(i, Inst::Trap { .. }))
            .count();
        assert_eq!(traps, 2);
        // Instruction boundaries are preserved.
        let orig_addrs: Vec<u64> = p.disassemble().iter().map(|(a, _, _)| *a).collect();
        let new_addrs: Vec<u64> = dis
            .iter()
            .map(|(a, _, _)| *a)
            .filter(|a| orig_addrs.contains(a))
            .collect();
        assert_eq!(orig_addrs, new_addrs);
    }

    #[test]
    fn end_to_end_fig6_correctness() {
        // Fig. 6 end to end: boxed value stored to stack, integer-reloaded.
        // Unpatched under FPVM the integer world would see the box; patched
        // it sees the true double's bits.
        let mut a = Asm::new();
        let c1 = a.f64m(0.1);
        let c2 = a.f64m(0.2);
        a.alu_ri(AluOp::Sub, Gpr::RSP, 16);
        a.movsd(Xmm(0), c1);
        a.addsd(Xmm(0), c2); // traps -> boxed
        a.movsd(Mem::base_disp(Gpr::RSP, 0), Xmm(0)); // box to stack
        a.load(Gpr::RAX, Mem::base_disp(Gpr::RSP, 0)); // reinterpret as int
        a.halt();
        let p = a.finish();
        let patched = analyze_and_patch(&p);
        assert!(!patched.side_table.is_empty());

        let mut m = Machine::new(CostModel::r815());
        m.load_program(&patched.program);
        let mut fpvm = Fpvm::new(Vanilla, FpvmConfig::default());
        fpvm.set_side_table(patched.side_table.clone());
        let report = fpvm.run(&mut m);
        assert_eq!(report.exit, ExitReason::Halted);
        assert!(report.stats.correctness_traps >= 1);
        assert_eq!(
            f64::from_bits(m.gpr[0]),
            0.1 + 0.2,
            "integer view must hold the demoted double"
        );
    }

    #[test]
    fn patching_clean_program_is_noop() {
        let mut a = Asm::new();
        let c = a.f64m(1.5);
        a.movsd(Xmm(0), c);
        a.addsd(Xmm(0), Xmm(0));
        a.halt();
        let p = a.finish();
        let patched = analyze_and_patch(&p);
        assert!(patched.side_table.is_empty());
        assert_eq!(patched.program.code, p.code);
    }
}
