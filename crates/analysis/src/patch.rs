//! The binary patcher (the e9patch analogue, §4.2).
//!
//! "Once sink instructions are identified, they are patched to explicitly
//! trap into FPVM to demote the NaN-boxed value if it is discovered at
//! run-time to truly be NaN-boxed, and then re-execute the instruction."
//!
//! Each sink instruction is overwritten in place with a 3-byte
//! `Trap{Correctness, id}` followed by `Nop` padding, and the original
//! instruction is stashed in the side table the runtime consults. Because
//! the `Trap` encoding is no longer than the shortest patchable
//! instruction, patching never spans instruction boundaries — the
//! straddling problem §3.2 describes for real x64 does not arise (the ISA
//! was designed that way; see fpvm-machine::encode).

use crate::vsa::{analyze_with, Analysis, AnalysisConfig, Sink};
use fpvm_core::SideTableEntry;
use fpvm_machine::{encode, Inst, Program, TrapKind, CODE_BASE};
use std::collections::BTreeSet;

/// Why the patcher declined to patch a sink. Every skipped sink is a
/// *soundness hole* — the site stays untrapped — so skips are recorded,
/// surfaced in [`crate::AnalysisStats`], and checked by the audit harness.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SkipReason {
    /// The u16 side-table id space is exhausted.
    SideTableFull,
    /// A branch targets the interior of the would-be patch span, so the
    /// trap + nop rewrite would change that path's behavior.
    BranchStraddle,
}

/// A sink the patcher left unpatched, with the reason.
#[derive(Debug, Clone, Copy)]
pub struct SkippedSink {
    /// The sink that was not patched.
    pub sink: Sink,
    /// Why it was skipped.
    pub reason: SkipReason,
}

/// Result of analyzing + patching a program.
#[derive(Debug, Clone)]
pub struct PatchedProgram {
    /// The transformed image (sinks replaced by correctness traps).
    pub program: Program,
    /// The side table to install into the runtime.
    pub side_table: Vec<SideTableEntry>,
    /// The analysis that produced the patches.
    pub analysis: Analysis,
    /// Sinks the patcher could not patch (remaining soundness holes).
    pub skipped: Vec<SkippedSink>,
}

/// Analyze a program and patch every sink with a correctness trap.
pub fn analyze_and_patch(p: &Program) -> PatchedProgram {
    analyze_and_patch_with(p, &AnalysisConfig::default())
}

/// [`analyze_and_patch`] under an explicit analysis configuration.
pub fn analyze_and_patch_with(p: &Program, cfg: &AnalysisConfig) -> PatchedProgram {
    let mut analysis = analyze_with(p, cfg);
    let (program, side_table, skipped) = apply_patches(p, &analysis.sinks);
    analysis.stats.sinks_patched = side_table.len();
    analysis.stats.sinks_skipped_table_full = skipped
        .iter()
        .filter(|s| s.reason == SkipReason::SideTableFull)
        .count();
    analysis.stats.sinks_skipped_straddle = skipped
        .iter()
        .filter(|s| s.reason == SkipReason::BranchStraddle)
        .count();
    PatchedProgram {
        program,
        side_table,
        analysis,
        skipped,
    }
}

/// Apply a specific sink list (exposed for tests and ablations). Returns
/// the patched image, the side table, and every sink that was skipped.
pub fn apply_patches(
    p: &Program,
    sinks: &[Sink],
) -> (Program, Vec<SideTableEntry>, Vec<SkippedSink>) {
    let mut out = p.clone();
    let mut table = Vec::new();
    let mut skipped = Vec::new();
    // Branch targets must never land inside a patched region other than at
    // the patch start; with whole-instruction patching this can only be
    // violated by hand-crafted images — verify anyway.
    let targets = branch_targets(p);
    for sink in sinks {
        let id = table.len();
        if id > u16::MAX as usize {
            // Side table full; remaining sinks stay unpatched.
            skipped.push(SkippedSink {
                sink: *sink,
                reason: SkipReason::SideTableFull,
            });
            continue;
        }
        let inside = (sink.addr + 1..sink.addr + u64::from(sink.len)).any(|a| targets.contains(&a));
        if inside {
            skipped.push(SkippedSink {
                sink: *sink,
                reason: SkipReason::BranchStraddle,
            });
            continue;
        }
        let mut bytes = Vec::with_capacity(sink.len as usize);
        encode(
            &Inst::Trap {
                kind: TrapKind::Correctness,
                id: id as u16,
            },
            &mut bytes,
        );
        assert!(
            bytes.len() <= sink.len as usize,
            "trap must fit the original instruction"
        );
        while bytes.len() < sink.len as usize {
            encode(&Inst::Nop, &mut bytes);
        }
        let off = (sink.addr - CODE_BASE) as usize;
        out.code[off..off + sink.len as usize].copy_from_slice(&bytes);
        table.push(SideTableEntry {
            addr: sink.addr,
            original: sink.inst,
            len: sink.len,
        });
    }
    (out, table, skipped)
}

fn branch_targets(p: &Program) -> BTreeSet<u64> {
    let mut targets = BTreeSet::new();
    for (addr, inst, len) in p.disassemble() {
        let next = addr + len as u64;
        match inst {
            Inst::Jmp { rel } | Inst::Jcc { rel, .. } | Inst::Call { rel } => {
                targets.insert(next.wrapping_add(i64::from(rel) as u64));
            }
            _ => {}
        }
    }
    targets
}

#[cfg(test)]
mod tests {
    use super::*;
    use fpvm_arith::Vanilla;
    use fpvm_core::{ExitReason, Fpvm, FpvmConfig};
    use fpvm_machine::{AluOp, Asm, CostModel, Gpr, Machine, Mem, Width, Xmm};

    #[test]
    fn patched_program_same_length_and_decodable() {
        let mut a = Asm::new();
        let c = a.f64m(1.5);
        a.alu_ri(AluOp::Sub, Gpr::RSP, 16);
        a.movsd(Xmm(0), c);
        a.movsd(Mem::base_disp(Gpr::RSP, 8), Xmm(0));
        a.load_w(Gpr::RAX, Mem::base_disp(Gpr::RSP, 8), Width::W64);
        a.movq_xg(Gpr::RBX, Xmm(0));
        a.halt();
        let p = a.finish();
        let patched = analyze_and_patch(&p);
        assert_eq!(patched.program.code.len(), p.code.len());
        assert_eq!(patched.side_table.len(), 2);
        // Every address still decodes; traps appear where sinks were.
        let dis = patched.program.disassemble();
        let traps = dis
            .iter()
            .filter(|(_, i, _)| matches!(i, Inst::Trap { .. }))
            .count();
        assert_eq!(traps, 2);
        // Instruction boundaries are preserved.
        let orig_addrs: Vec<u64> = p.disassemble().iter().map(|(a, _, _)| *a).collect();
        let new_addrs: Vec<u64> = dis
            .iter()
            .map(|(a, _, _)| *a)
            .filter(|a| orig_addrs.contains(a))
            .collect();
        assert_eq!(orig_addrs, new_addrs);
    }

    #[test]
    fn end_to_end_fig6_correctness() {
        // Fig. 6 end to end: boxed value stored to stack, integer-reloaded.
        // Unpatched under FPVM the integer world would see the box; patched
        // it sees the true double's bits.
        let mut a = Asm::new();
        let c1 = a.f64m(0.1);
        let c2 = a.f64m(0.2);
        a.alu_ri(AluOp::Sub, Gpr::RSP, 16);
        a.movsd(Xmm(0), c1);
        a.addsd(Xmm(0), c2); // traps -> boxed
        a.movsd(Mem::base_disp(Gpr::RSP, 0), Xmm(0)); // box to stack
        a.load(Gpr::RAX, Mem::base_disp(Gpr::RSP, 0)); // reinterpret as int
        a.halt();
        let p = a.finish();
        let patched = analyze_and_patch(&p);
        assert!(!patched.side_table.is_empty());

        let mut m = Machine::new(CostModel::r815());
        m.load_program(&patched.program);
        let mut fpvm = Fpvm::new(Vanilla, FpvmConfig::default());
        fpvm.set_side_table(patched.side_table.clone());
        let report = fpvm.run(&mut m);
        assert_eq!(report.exit, ExitReason::Halted);
        assert!(report.stats.correctness_traps >= 1);
        assert_eq!(
            f64::from_bits(m.gpr[0]),
            0.1 + 0.2,
            "integer view must hold the demoted double"
        );
    }

    #[test]
    fn branch_straddled_sink_is_skipped_and_recorded() {
        // Hand-craft an image where a jmp targets the *interior* of a load:
        // unreachable through the assembler (labels bind at instruction
        // boundaries), so splice the jmp bytes in manually.
        let mut a = Asm::new();
        let g = a.global("w", 8);
        let pad = a.here();
        for _ in 0..8 {
            a.emit(Inst::Nop);
        }
        let load_site = a.here();
        a.load(Gpr::RAX, Mem::abs(g as i64));
        a.halt();
        let mut p = a.finish();
        let mut probe = Vec::new();
        encode(&Inst::Jmp { rel: 0 }, &mut probe);
        let jlen = probe.len() as u64;
        assert!(jlen <= 8);
        // target = pad + jlen + rel = load_site + 1
        let rel = (load_site + 1).wrapping_sub(pad + jlen) as i32;
        let mut jbytes = Vec::new();
        encode(&Inst::Jmp { rel }, &mut jbytes);
        assert_eq!(jbytes.len() as u64, jlen);
        let off = (pad - CODE_BASE) as usize;
        p.code[off..off + jbytes.len()].copy_from_slice(&jbytes);

        let (addr, inst, len) = p
            .disassemble()
            .into_iter()
            .find(|&(a2, _, _)| a2 == load_site)
            .unwrap();
        assert!(len > 1, "need a multi-byte sink to straddle");
        let sink = crate::vsa::Sink {
            addr,
            inst,
            len: len as u8,
            reason: crate::vsa::SinkReason::IntLoadOfFp,
        };
        let (out, table, skipped) = apply_patches(&p, &[sink]);
        assert!(table.is_empty(), "straddled sink must not be patched");
        assert_eq!(skipped.len(), 1);
        assert_eq!(skipped[0].reason, SkipReason::BranchStraddle);
        assert_eq!(skipped[0].sink.addr, load_site);
        assert_eq!(out.code, p.code, "skipped patch must leave code intact");
    }

    #[test]
    fn side_table_overflow_is_skipped_and_recorded() {
        let mut a = Asm::new();
        let g = a.global("w", 8);
        let site = a.here();
        a.load(Gpr::RAX, Mem::abs(g as i64));
        a.halt();
        let p = a.finish();
        let (addr, inst, len) = p
            .disassemble()
            .into_iter()
            .find(|&(a2, _, _)| a2 == site)
            .unwrap();
        let sink = crate::vsa::Sink {
            addr,
            inst,
            len: len as u8,
            reason: crate::vsa::SinkReason::IntLoadOfFp,
        };
        // The id space holds u16::MAX + 1 entries; two more must overflow.
        let n = u16::MAX as usize + 3;
        let sinks = vec![sink; n];
        let (_, table, skipped) = apply_patches(&p, &sinks);
        assert_eq!(table.len(), u16::MAX as usize + 1);
        assert_eq!(skipped.len(), 2);
        assert!(skipped
            .iter()
            .all(|s| s.reason == SkipReason::SideTableFull));
    }

    #[test]
    fn patch_stats_are_surfaced() {
        let mut a = Asm::new();
        let c = a.f64m(1.5);
        a.alu_ri(AluOp::Sub, Gpr::RSP, 16);
        a.movsd(Xmm(0), c);
        a.movsd(Mem::base_disp(Gpr::RSP, 8), Xmm(0));
        a.load_w(Gpr::RAX, Mem::base_disp(Gpr::RSP, 8), Width::W64);
        a.movq_xg(Gpr::RBX, Xmm(0));
        a.halt();
        let p = a.finish();
        let patched = analyze_and_patch(&p);
        let st = patched.analysis.stats;
        assert_eq!(st.sinks_found, 2);
        assert_eq!(st.sinks_patched, 2);
        assert_eq!(st.sinks_skipped_table_full, 0);
        assert_eq!(st.sinks_skipped_straddle, 0);
        assert!(patched.skipped.is_empty());
    }

    #[test]
    fn patching_clean_program_is_noop() {
        let mut a = Asm::new();
        let c = a.f64m(1.5);
        a.movsd(Xmm(0), c);
        a.addsd(Xmm(0), Xmm(0));
        a.halt();
        let p = a.finish();
        let patched = analyze_and_patch(&p);
        assert!(patched.side_table.is_empty());
        assert_eq!(patched.program.code, p.code);
    }
}
