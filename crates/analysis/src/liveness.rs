//! Backward box-liveness: prune sinks whose loaded value is never
//! *observed* by the integer world.
//!
//! NSan (Courbet) places its checks at *observation points* — branches,
//! comparisons, external-call arguments, escaping stores — rather than at
//! every suspect instruction, and FlowFPX frames exceptional values as a
//! flow with a birth and a death. This pass applies the same idea to the
//! forward analysis' sink set: an integer load of maybe-FP bits only needs
//! a correctness trap if the loaded value can *reach* an integer
//! observation point. A dead reload, or a value that is only copied back
//! into FP context (`movq xmm ← r64`, or a frame spill whose only reader
//! is `movsd`), cannot misbehave — boxed bits sitting untouched in an
//! integer register are harmless.
//!
//! The pass is a classic backward may-liveness fixpoint over each
//! function's blocks, with a "box-observation" gen/kill relation instead
//! of plain use/def:
//!
//! * **observers** (gen): ALU/div/shift operands, compare and test
//!   operands, address registers of *any* memory operand (pointer
//!   arithmetic observes the bits), `cvtsi2sd` input, external-call
//!   argument registers, `ret`'s RAX, `push`, and stores whose target slot
//!   is itself live (or unknown);
//! * **non-observers**: `movq xmm ← r64` and FP arithmetic reading memory
//!   (the value flows back into the boxed world, where traps handle it);
//!   a store to a *provably dead* frame slot.
//! * **boundaries**: a guest `call` conservatively observes every register
//!   and every frame slot (the callee is analyzed separately and may read
//!   the caller's frame through positive RSP offsets); external shims
//!   observe only their declared scalar arguments.
//!
//! Frame slots are tracked when the forward analysis resolved a
//! load/store to an exact entry-RSP-relative offset in *every* context
//! ([`ObservationFacts`]); anything less exact degrades to "all slots
//! live". Sinks in blocks owned by no recovered function are never
//! demoted. Only [`crate::SinkReason::IntLoadOfFp`] sinks are candidates:
//! `movq`/bitwise sinks operate on XMM state the load-centric relation
//! does not model.

use crate::cfg::{Block, Cfg, Site};
use crate::vsa::{Sink, SinkReason};
use fpvm_machine::{Gpr, Inst, Mem, RM, XM};
use std::collections::{BTreeMap, BTreeSet, HashMap};

/// Exact frame-slot resolutions exported by the forward pass: instruction
/// address → `Some(slot)` when the access resolved to one entry-RSP
/// offset in every analyzed context, `None` when imprecise.
#[derive(Debug, Default, Clone)]
pub struct ObservationFacts {
    /// Per `Load` site.
    pub load_slots: BTreeMap<u64, Option<i64>>,
    /// Per `Store` site.
    pub store_slots: BTreeMap<u64, Option<i64>>,
}

/// Backward liveness state: which registers/slots hold a value that some
/// later instruction observes in the integer world.
#[derive(Debug, Clone, PartialEq, Default)]
struct Live {
    /// Bitmask over the 16 GPRs.
    regs: u16,
    /// Live exact frame slots (entry-RSP-relative, 8-aligned).
    slots: BTreeSet<i64>,
    /// Every slot must be treated live (imprecise store/pointer escape).
    all_slots: bool,
}

impl Live {
    fn has(&self, r: Gpr) -> bool {
        self.regs & (1 << r.0) != 0
    }
    fn gen(&mut self, r: Gpr) {
        self.regs |= 1 << r.0;
    }
    fn kill(&mut self, r: Gpr) {
        self.regs &= !(1 << r.0);
    }
    fn gen_all(&mut self) {
        self.regs = u16::MAX;
        self.all_slots = true;
    }
    /// Union join; returns true if `self` grew.
    fn join(&mut self, other: &Live) -> bool {
        let regs = self.regs | other.regs;
        let all = self.all_slots || other.all_slots;
        let mut changed = regs != self.regs || all != self.all_slots;
        self.regs = regs;
        self.all_slots = all;
        for &s in &other.slots {
            changed |= self.slots.insert(s);
        }
        changed
    }
}

fn mem_regs(live: &mut Live, m: &Mem) {
    if let Some(b) = m.base {
        live.gen(b);
    }
    if let Some(i) = m.index {
        live.gen(i);
    }
}

fn xm_regs(live: &mut Live, xm: &XM) {
    if let XM::Mem(m) = xm {
        mem_regs(live, m);
    }
}

/// Backward transfer of one instruction over the liveness state.
fn transfer(site: &Site, live: &mut Live, facts: &ObservationFacts) {
    use Inst::*;
    match &site.inst {
        // FP data movement / arithmetic: address registers are observed
        // (pointer arithmetic), the data itself stays in the FP world.
        MovSd { dst, src } | MovApd { dst, src } => {
            xm_regs(live, dst);
            xm_regs(live, src);
        }
        AddSd { src, .. }
        | SubSd { src, .. }
        | MulSd { src, .. }
        | DivSd { src, .. }
        | MinSd { src, .. }
        | MaxSd { src, .. }
        | SqrtSd { src, .. }
        | AddPd { src, .. }
        | SubPd { src, .. }
        | MulPd { src, .. }
        | DivPd { src, .. }
        | CvtSd2Ss { src, .. }
        | CvtSs2Sd { src, .. }
        | XorPd { src, .. }
        | AndPd { src, .. }
        | OrPd { src, .. } => xm_regs(live, src),
        FmaSd { b, .. } => xm_regs(live, b),
        UComISd { b, .. } | ComISd { b, .. } => xm_regs(live, b),
        // Integer → FP conversion *observes* the integer value (the
        // conversion's result depends on the raw bits).
        CvtSi2Sd { src, .. } => match src {
            RM::Reg(r) => live.gen(*r),
            RM::Mem(m) => {
                mem_regs(live, m);
                // The converted word is read from memory; without slot
                // resolution we must assume any slot feeds it.
                live.all_slots = true;
            }
        },
        CvtTSd2Si { dst, src, .. } => {
            live.kill(*dst);
            xm_regs(live, src);
        }
        // The value returns to FP context: NOT an observation. The GPR is
        // consumed but its bits stay boxed-world.
        MovQGX { .. } => {}
        MovQXG { dst, .. } => live.kill(*dst),
        MovRR { dst, src } => {
            // A refined copy: dst's liveness transfers to src.
            let was = live.has(*dst);
            live.kill(*dst);
            if was {
                live.gen(*src);
            }
        }
        MovRI { dst, .. } => live.kill(*dst),
        Load { dst, addr, .. } => {
            let was = live.has(*dst);
            live.kill(*dst);
            mem_regs(live, addr);
            if was {
                // The loaded value is observed later: the memory it came
                // from becomes live (slot-chained observation).
                match facts.load_slots.get(&site.addr) {
                    Some(Some(o)) => {
                        live.slots.insert(*o);
                    }
                    _ => live.all_slots = true,
                }
            }
        }
        Store { addr, src, .. } => {
            mem_regs(live, addr);
            match facts.store_slots.get(&site.addr) {
                Some(Some(o)) => {
                    let observed = live.all_slots || live.slots.contains(o);
                    if !live.all_slots {
                        live.slots.remove(o);
                    }
                    if observed {
                        live.gen(*src);
                    }
                }
                // Escaping store (global/heap/unknown): the value may be
                // observed by anything — conservatively live.
                _ => live.gen(*src),
            }
        }
        Lea { dst, addr } => {
            let was = live.has(*dst);
            live.kill(*dst);
            if was {
                mem_regs(live, addr);
            }
        }
        // Integer ALU observes both operands unconditionally: the result
        // and the flags depend on the raw bits.
        AluRR { dst, src, .. } => {
            live.gen(*dst);
            live.gen(*src);
        }
        AluRI { dst, .. } => live.gen(*dst),
        DivR { dst, src } | RemR { dst, src } => {
            live.gen(*dst);
            live.gen(*src);
        }
        CmpRR { a, b } | TestRR { a, b } => {
            live.gen(*a);
            live.gen(*b);
        }
        CmpRI { a, .. } => live.gen(*a),
        Jmp { .. } | Jcc { .. } => {}
        // A guest callee may read any register and the caller's frame
        // (positive RSP offsets) — maximally conservative boundary.
        Call { .. } => live.gen_all(),
        // External shims read only their declared scalar arguments (RDI
        // for the integer-argument functions; FP travels in XMM) and
        // never touch guest memory.
        CallExt { f } => {
            if f.fp_args() == 0 {
                live.gen(Gpr::RDI);
            }
        }
        Ret => live.gen(Gpr::RAX),
        Push { src } => live.gen(*src),
        Pop { dst } => {
            let was = live.has(*dst);
            live.kill(*dst);
            if was {
                // Popped from the stack: some slot feeds it.
                live.all_slots = true;
            }
        }
        Halt | Nop => {}
        // Patched traps and anything unmodeled: assume full observation.
        Trap { .. } => live.gen_all(),
    }
}

/// Apply a block's instructions backward to `live_out`, returning
/// `live_in`; optionally record the live-after state at each address.
fn block_backward(
    block: &Block,
    live_out: &Live,
    facts: &ObservationFacts,
    mut record: Option<&mut HashMap<u64, Live>>,
) -> Live {
    let mut live = live_out.clone();
    for site in block.insts.iter().rev() {
        if let Some(rec) = record.as_deref_mut() {
            rec.insert(site.addr, live.clone());
        }
        transfer(site, &mut live, facts);
    }
    live
}

/// Run the backward box-liveness pass and return the addresses of sinks
/// that can be demoted: [`SinkReason::IntLoadOfFp`] sinks whose
/// destination register is dead (never observed by the integer world)
/// immediately after the load.
pub fn demote_unobserved(cfg: &Cfg, sinks: &[Sink], facts: &ObservationFacts) -> BTreeSet<u64> {
    // Group candidate sinks by owning function; orphans are never demoted.
    let mut by_fn: BTreeMap<u64, Vec<&Sink>> = BTreeMap::new();
    for s in sinks {
        if s.reason != SinkReason::IntLoadOfFp {
            continue;
        }
        let Inst::Load { .. } = s.inst else { continue };
        // Find the block containing the sink and its owner.
        let Some((_, block)) = cfg.blocks.range(..=s.addr).next_back() else {
            continue;
        };
        let Some(&owner) = cfg.block_fn.get(&block.start) else {
            continue;
        };
        by_fn.entry(owner).or_default().push(s);
    }
    let mut demoted = BTreeSet::new();
    for (owner, fsinks) in by_fn {
        let blocks: Vec<&Block> = cfg.function_blocks(owner);
        // live_in per block, to fixpoint. Exit blocks (no owned succs)
        // start from the empty state: `ret` itself gens RAX, `halt`
        // observes nothing.
        let mut live_in: HashMap<u64, Live> = HashMap::new();
        let mut changed = true;
        let mut iters = 0usize;
        while changed && iters < 200 {
            changed = false;
            iters += 1;
            for block in blocks.iter().rev() {
                let mut out = Live::default();
                for &succ in &block.succs {
                    if cfg.block_fn.get(&succ) == Some(&owner) {
                        if let Some(li) = live_in.get(&succ) {
                            out.join(li);
                        }
                    }
                }
                let inn = block_backward(block, &out, facts, None);
                match live_in.get_mut(&block.start) {
                    Some(cur) => changed |= cur.join(&inn),
                    None => {
                        live_in.insert(block.start, inn);
                        changed = true;
                    }
                }
            }
        }
        if iters >= 200 {
            // Did not converge (shouldn't happen: the domain is finite
            // and the transfer monotone) — demote nothing in this fn.
            continue;
        }
        // Second sweep: capture the live-after state at each sink site.
        let mut at: HashMap<u64, Live> = HashMap::new();
        for block in &blocks {
            let mut out = Live::default();
            for &succ in &block.succs {
                if cfg.block_fn.get(&succ) == Some(&owner) {
                    if let Some(li) = live_in.get(&succ) {
                        out.join(li);
                    }
                }
            }
            block_backward(block, &out, facts, Some(&mut at));
        }
        for s in fsinks {
            let Inst::Load { dst, .. } = s.inst else {
                continue;
            };
            if let Some(after) = at.get(&s.addr) {
                if !after.has(dst) {
                    demoted.insert(s.addr);
                }
            }
        }
    }
    demoted
}

#[cfg(test)]
mod tests {
    use crate::vsa::{analyze, analyze_with, AnalysisConfig, SinkReason};
    use fpvm_machine::{AluOp, Asm, ExtFn, Gpr, Mem, Width, Xmm};

    fn flags(liveness: bool) -> AnalysisConfig {
        AnalysisConfig {
            liveness,
            ..Default::default()
        }
    }

    #[test]
    fn dead_reload_is_demoted() {
        // FP spill → integer reload whose value only flows back to the FP
        // world through a frame slot read by movsd: never observed.
        let mut a = Asm::new();
        let c = a.f64m(1.5);
        a.alu_ri(AluOp::Sub, Gpr::RSP, 32);
        a.movsd(Xmm(0), c);
        a.movsd(Mem::base_disp(Gpr::RSP, 8), Xmm(0));
        a.load(Gpr::RAX, Mem::base_disp(Gpr::RSP, 8)); // the sink
        a.store(Mem::base_disp(Gpr::RSP, 16), Gpr::RAX); // slot-to-slot copy
        a.movsd(Xmm(1), Mem::base_disp(Gpr::RSP, 16)); // read back as FP
        a.addsd(Xmm(1), c);
        a.halt();
        let p = a.finish();
        let base = analyze(&p);
        assert!(
            base.sinks
                .iter()
                .any(|s| s.reason == SinkReason::IntLoadOfFp),
            "without liveness the reload is a sink"
        );
        let an = analyze_with(&p, &flags(true));
        assert!(
            !an.sinks.iter().any(|s| s.reason == SinkReason::IntLoadOfFp),
            "the unobserved round-trip must be demoted: {:?}",
            an.sinks
        );
        assert_eq!(an.stats.sinks_demoted_live, 1);
        assert_eq!(an.stats.loads_proven_safe, base.stats.loads_proven_safe + 1);
    }

    #[test]
    fn alu_observation_keeps_the_sink() {
        let mut a = Asm::new();
        let c = a.f64m(1.5);
        a.alu_ri(AluOp::Sub, Gpr::RSP, 32);
        a.movsd(Xmm(0), c);
        a.movsd(Mem::base_disp(Gpr::RSP, 8), Xmm(0));
        a.load(Gpr::RAX, Mem::base_disp(Gpr::RSP, 8)); // the sink
        a.alu_ri(AluOp::Add, Gpr::RAX, 1); // integer observation
        a.halt();
        let p = a.finish();
        let an = analyze_with(&p, &flags(true));
        assert!(
            an.sinks.iter().any(|s| s.reason == SinkReason::IntLoadOfFp),
            "an ALU-observed load must stay patched"
        );
        assert_eq!(an.stats.sinks_demoted_live, 0);
    }

    #[test]
    fn escaping_store_keeps_the_sink() {
        // The loaded value escapes to a global: anyone may observe it.
        let mut a = Asm::new();
        let g = a.global("out", 8);
        let c = a.f64m(1.5);
        a.alu_ri(AluOp::Sub, Gpr::RSP, 32);
        a.movsd(Xmm(0), c);
        a.movsd(Mem::base_disp(Gpr::RSP, 8), Xmm(0));
        a.load(Gpr::RAX, Mem::base_disp(Gpr::RSP, 8)); // the sink
        a.store(Mem::abs(g as i64), Gpr::RAX); // escapes
        a.halt();
        let p = a.finish();
        let an = analyze_with(&p, &flags(true));
        assert!(
            an.sinks.iter().any(|s| s.reason == SinkReason::IntLoadOfFp),
            "an escaping value must stay patched"
        );
    }

    #[test]
    fn compare_through_slot_chain_keeps_the_sink() {
        // load → spill → reload → cmp: the observation reaches the first
        // load through the slot-liveness chain.
        let mut a = Asm::new();
        let c = a.f64m(1.5);
        a.alu_ri(AluOp::Sub, Gpr::RSP, 32);
        a.movsd(Xmm(0), c);
        a.movsd(Mem::base_disp(Gpr::RSP, 8), Xmm(0));
        a.load(Gpr::RAX, Mem::base_disp(Gpr::RSP, 8)); // the sink
        a.store(Mem::base_disp(Gpr::RSP, 16), Gpr::RAX);
        a.load(Gpr::RBX, Mem::base_disp(Gpr::RSP, 16));
        a.cmp_ri(Gpr::RBX, 0); // branches on the bits
        a.halt();
        let p = a.finish();
        let an = analyze_with(&p, &flags(true));
        let load_sinks = an
            .sinks
            .iter()
            .filter(|s| s.reason == SinkReason::IntLoadOfFp)
            .count();
        assert_eq!(
            load_sinks, 2,
            "both loads feed the compare through the slot chain: {:?}",
            an.sinks
        );
    }

    #[test]
    fn external_call_argument_keeps_the_sink() {
        let mut a = Asm::new();
        let c = a.f64m(1.5);
        a.alu_ri(AluOp::Sub, Gpr::RSP, 32);
        a.movsd(Xmm(0), c);
        a.movsd(Mem::base_disp(Gpr::RSP, 8), Xmm(0));
        a.load(Gpr::RAX, Mem::base_disp(Gpr::RSP, 8)); // the sink
        a.mov_rr(Gpr::RDI, Gpr::RAX);
        a.call_ext(ExtFn::PrintI64); // the external world observes RDI
        a.halt();
        let p = a.finish();
        let an = analyze_with(&p, &flags(true));
        assert!(
            an.sinks.iter().any(|s| s.reason == SinkReason::IntLoadOfFp),
            "external-call arguments are observation points"
        );
        assert_eq!(an.stats.sinks_demoted_live, 0);
    }

    #[test]
    fn guest_call_is_a_conservative_boundary() {
        // The loaded value sits in RBX across a guest call: the callee
        // may read it, so the sink must stay.
        let mut a = Asm::new();
        let c = a.f64m(1.5);
        let f = a.label();
        a.alu_ri(AluOp::Sub, Gpr::RSP, 32);
        a.movsd(Xmm(0), c);
        a.movsd(Mem::base_disp(Gpr::RSP, 8), Xmm(0));
        a.load_w(Gpr::RBX, Mem::base_disp(Gpr::RSP, 8), Width::W64);
        a.call(f);
        a.halt();
        a.bind(f);
        a.ret();
        let p = a.finish();
        let an = analyze_with(&p, &flags(true));
        assert!(
            an.sinks.iter().any(|s| s.reason == SinkReason::IntLoadOfFp),
            "values held across a guest call must stay patched"
        );
    }

    #[test]
    fn narrow_width_demotion_is_width_agnostic() {
        // A 32-bit reload of the spilled double's low word, never used:
        // still demotable (the relation is about observation, not width).
        let mut a = Asm::new();
        let c = a.f64m(1.5);
        a.alu_ri(AluOp::Sub, Gpr::RSP, 32);
        a.movsd(Xmm(0), c);
        a.movsd(Mem::base_disp(Gpr::RSP, 8), Xmm(0));
        a.load_w(Gpr::RAX, Mem::base_disp(Gpr::RSP, 8), Width::W32);
        a.mov_ri(Gpr::RAX, 0); // immediately overwritten
        a.halt();
        let p = a.finish();
        let an = analyze_with(&p, &flags(true));
        assert_eq!(an.stats.sinks_demoted_live, 1, "{:?}", an.sinks);
    }
}
