//! Value-set-analysis-lite: find the instructions where a NaN-boxed value
//! could leak into the non-trapping integer world (§4.2).
//!
//! "The analysis categorizes instructions into two categories: sources and
//! sinks. A source is any instruction that stores a floating point value to
//! memory, and a sink is any instruction that later loads from any memory
//! location that was previously been written to by a source."
//!
//! The analysis is an abstract interpretation over the recovered CFG:
//!
//! * registers carry a value-set lattice — constants, entry-relative stack
//!   offsets, exact global pointers, *object-granular* global pointers
//!   (angr-VSA's allocation-site a-locs, using the image's object table),
//!   a one-cell heap summary, and ⊤ — plus an *FP-bits taint*;
//! * stack slot **contents** are tracked flow-sensitively (the `-O0` style
//!   codegen round-trips every pointer through the frame, so without this
//!   every indexed access would degrade to ⊤);
//! * memory *typing* (which locations may hold FP data) is flow-insensitive
//!   and monotone: per-function frame slots, per-word and per-object global
//!   sets, and the heap summary.
//!
//! Like the paper's tweaked VSA, unresolvable facts degrade conservatively:
//! "if VSA returns a conservative result, FPVM follows suit and assumes
//! there exists a NaN-boxed double that may need demotion." The one-cell
//! heap summary is the deliberate imprecision that reproduces the paper's
//! Enzo behavior — correctness traps in critical loops "because the static
//! analysis could not prove they were unneeded."
//!
//! Sinks: integer loads from maybe-FP locations, `movq r64 ← xmm` (always),
//! and the bitwise-FP idioms `xorpd`/`andpd`/`orpd` (always — compilers use
//! them to negate / take `fabs` of FP registers that may hold boxes).
//! External call sites are not patched: the runtime's LD_PRELOAD-style shim
//! interposes them directly (§4.1).

use crate::cfg::{Block, Cfg, Site};
use fpvm_machine::{AluOp, ExtFn, Gpr, Inst, Mem, Program, DATA_BASE, HEAP_BASE, XM};
use std::collections::{BTreeMap, BTreeSet, HashMap};

/// The data-segment object table (allocation sites).
struct ObjMap {
    /// Sorted (base, size).
    objects: Vec<(u64, u64)>,
}

impl ObjMap {
    fn new(p: &Program) -> ObjMap {
        let mut objects = p.objects.clone();
        objects.sort_unstable();
        ObjMap { objects }
    }

    fn resolve(&self, addr: u64) -> Option<u32> {
        let idx = self.objects.partition_point(|&(b, _)| b <= addr);
        if idx == 0 {
            return None;
        }
        let (base, size) = self.objects[idx - 1];
        (addr < base + size).then_some(idx as u32 - 1)
    }

    fn range(&self, k: u32) -> (u64, u64) {
        self.objects[k as usize]
    }
}

/// How the heap is summarized (the one measured precision knob; the audit
/// harness drives the comparison).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum HeapModel {
    /// Paper-faithful single summary cell: one FP store anywhere on the
    /// heap taints every heap load (the deliberate Enzo imprecision).
    #[default]
    OneCell,
    /// Allocation-site partitioning: pointers returned by distinct
    /// `AllocHeap` call sites are distinguished; merged or unknown heap
    /// pointers still degrade to the one-cell summary.
    AllocSite,
}

/// Static analysis configuration (ablation knobs).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct AnalysisConfig {
    /// Heap summarization model.
    pub heap: HeapModel,
}

/// Abstract register / slot value.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum AVal {
    #[allow(dead_code)]
    Bottom,
    Const(i64),
    /// Entry-rsp-relative stack address.
    Stack(i64),
    /// Exact data-segment address.
    Global(u64),
    /// Somewhere inside data object `k`.
    GlobalObj(u32),
    /// Somewhere in the data segment.
    GlobalAny,
    /// Somewhere in the allocation made at call site `addr`
    /// ([`HeapModel::AllocSite`] only).
    HeapSite(u64),
    /// Somewhere in dynamic memory (heap summary).
    Heap,
    Top,
}

impl AVal {
    fn join(self, other: AVal, objs: &ObjMap) -> AVal {
        use AVal::*;
        match (self, other) {
            (Bottom, x) | (x, Bottom) => x,
            (a, b) if a == b => a,
            (Global(a), Global(b)) => match (objs.resolve(a), objs.resolve(b)) {
                (Some(ka), Some(kb)) if ka == kb => GlobalObj(ka),
                _ => GlobalAny,
            },
            (Global(a), GlobalObj(k)) | (GlobalObj(k), Global(a)) => {
                if objs.resolve(a) == Some(k) {
                    GlobalObj(k)
                } else {
                    GlobalAny
                }
            }
            (Global(_) | GlobalObj(_) | GlobalAny, Global(_) | GlobalObj(_) | GlobalAny) => {
                GlobalAny
            }
            // Distinct allocation sites (or a site against the summary)
            // merge into the one-cell summary.
            (HeapSite(_) | Heap, HeapSite(_) | Heap) => Heap,
            _ => Top,
        }
    }

    fn add_const(self, k: i64) -> AVal {
        match self {
            AVal::Const(c) => AVal::Const(c.wrapping_add(k)),
            AVal::Stack(o) => AVal::Stack(o.wrapping_add(k)),
            AVal::Global(a) => AVal::Global(a.wrapping_add(k as u64)),
            x => x,
        }
    }

    /// Result of adding an unknown offset (array indexing).
    fn add_unknown(self, objs: &ObjMap) -> AVal {
        match self {
            AVal::Global(a) => objs.resolve(a).map_or(AVal::GlobalAny, AVal::GlobalObj),
            AVal::GlobalObj(k) => AVal::GlobalObj(k),
            AVal::GlobalAny => AVal::GlobalAny,
            AVal::HeapSite(s) => AVal::HeapSite(s),
            AVal::Heap => AVal::Heap,
            _ => AVal::Top,
        }
    }
}

/// Classify a constant that may be a pointer (MovRI of an address).
fn classify_const_val(c: i64) -> AVal {
    let u = c as u64;
    if (DATA_BASE..HEAP_BASE).contains(&u) {
        AVal::Global(u)
    } else if (HEAP_BASE..(1 << 40)).contains(&u) {
        AVal::Heap
    } else {
        AVal::Const(c)
    }
}

/// Abstract memory location.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum ALoc {
    StackOff(i64),
    #[allow(dead_code)]
    StackAny,
    GlobalWord(u64),
    GlobalObj(u32),
    GlobalAny,
    /// Inside the allocation made at call site `addr`.
    HeapSite(u64),
    Heap,
    Any,
}

/// Flow-insensitive memory typing, shared across functions; grows
/// monotonically to a fixpoint.
#[derive(Debug, Default, Clone, PartialEq)]
struct MemTypes {
    /// Exact data words that may hold FP data.
    words_fp: BTreeSet<u64>,
    /// Objects where *some* unknown offset may hold FP data.
    objs_fp: BTreeSet<u32>,
    global_any_fp: bool,
    /// Allocation sites whose allocation may hold FP data.
    heap_site_fp: BTreeSet<u64>,
    heap_fp: bool,
    any_fp: bool,
}

impl MemTypes {
    fn mark(&mut self, loc: ALoc, ctx: &mut FnCtx) {
        match loc {
            ALoc::StackOff(o) => {
                ctx.stack_fp.insert(o & !7);
            }
            ALoc::StackAny => ctx.stack_any = true,
            ALoc::GlobalWord(a) => {
                self.words_fp.insert(a & !7);
            }
            ALoc::GlobalObj(k) => {
                self.objs_fp.insert(k);
            }
            ALoc::GlobalAny => self.global_any_fp = true,
            ALoc::HeapSite(s) => {
                self.heap_site_fp.insert(s);
            }
            ALoc::Heap => self.heap_fp = true,
            ALoc::Any => self.any_fp = true,
        }
    }

    fn maybe_fp(&self, loc: ALoc, ctx: &FnCtx, objs: &ObjMap) -> bool {
        if self.any_fp {
            return true;
        }
        let obj_hit = |k: u32| {
            if self.objs_fp.contains(&k) {
                return true;
            }
            let (base, size) = objs.range(k);
            self.words_fp.range(base..base + size).next().is_some()
        };
        match loc {
            ALoc::StackOff(o) => ctx.stack_any || ctx.stack_fp.contains(&(o & !7)),
            ALoc::StackAny => ctx.stack_any || !ctx.stack_fp.is_empty(),
            ALoc::GlobalWord(a) => {
                self.global_any_fp
                    || self.words_fp.contains(&(a & !7))
                    || objs.resolve(a).is_some_and(|k| self.objs_fp.contains(&k))
            }
            ALoc::GlobalObj(k) => self.global_any_fp || obj_hit(k),
            ALoc::GlobalAny => {
                self.global_any_fp || !self.words_fp.is_empty() || !self.objs_fp.is_empty()
            }
            ALoc::HeapSite(s) => self.heap_fp || self.heap_site_fp.contains(&s),
            ALoc::Heap => self.heap_fp || !self.heap_site_fp.is_empty(),
            ALoc::Any => {
                self.heap_fp
                    || !self.heap_site_fp.is_empty()
                    || self.global_any_fp
                    || !self.words_fp.is_empty()
                    || !self.objs_fp.is_empty()
                    || ctx.stack_any
                    || !ctx.stack_fp.is_empty()
            }
        }
    }
}

/// Per-block register + frame-slot state.
#[derive(Debug, Clone, PartialEq)]
struct RegState {
    vals: [AVal; 16],
    taint: [bool; 16],
    /// Known frame-slot contents (entry-rsp-relative offset → value).
    slots: BTreeMap<i64, (AVal, bool)>,
}

impl RegState {
    fn entry() -> Self {
        let mut vals = [AVal::Top; 16];
        vals[Gpr::RSP.0 as usize] = AVal::Stack(0);
        RegState {
            vals,
            taint: [false; 16],
            slots: BTreeMap::new(),
        }
    }

    fn join(&mut self, other: &RegState, objs: &ObjMap) -> bool {
        let mut changed = false;
        for i in 0..16 {
            let j = self.vals[i].join(other.vals[i], objs);
            if j != self.vals[i] {
                self.vals[i] = j;
                changed = true;
            }
            let t = self.taint[i] || other.taint[i];
            if t != self.taint[i] {
                self.taint[i] = t;
                changed = true;
            }
        }
        // Slot maps: keep the intersection of keys, joining values.
        let keys: Vec<i64> = self.slots.keys().copied().collect();
        for k in keys {
            match other.slots.get(&k) {
                None => {
                    self.slots.remove(&k);
                    changed = true;
                }
                Some(&(ov, ot)) => {
                    let (sv, st) = self.slots[&k];
                    let nv = sv.join(ov, objs);
                    let nt = st || ot;
                    if (nv, nt) != (sv, st) {
                        self.slots.insert(k, (nv, nt));
                        changed = true;
                    }
                }
            }
        }
        changed
    }
}

/// Why an instruction was classified as a sink.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SinkReason {
    /// Integer load of a location that may hold FP data (Fig. 6/7).
    IntLoadOfFp,
    /// `movq r64, xmm` — direct FP-to-integer register leak.
    MovqLeak,
    /// Bitwise FP op (`xorpd`/`andpd`/`orpd`) — compiler sign/abs idiom.
    BitwiseFp,
}

/// A sink instruction that must be patched with a correctness trap.
#[derive(Debug, Clone, Copy)]
pub struct Sink {
    /// Instruction address.
    pub addr: u64,
    /// The instruction itself.
    pub inst: Inst,
    /// Encoded length.
    pub len: u8,
    /// Classification.
    pub reason: SinkReason,
}

/// Analysis summary statistics (reported by the `reproduce` harness).
#[derive(Debug, Clone, Copy, Default)]
pub struct AnalysisStats {
    /// Instructions analyzed.
    pub instructions: usize,
    /// Basic blocks.
    pub blocks: usize,
    /// Functions.
    pub functions: usize,
    /// Integer loads examined.
    pub loads_total: usize,
    /// Integer loads proven safe (not patched).
    pub loads_proven_safe: usize,
    /// Outer fixpoint rounds.
    pub rounds: usize,
    /// Sink instructions found by the analysis.
    pub sinks_found: usize,
    /// Sinks actually patched with correctness traps (filled by the
    /// patcher; zero when only [`analyze`] ran).
    pub sinks_patched: usize,
    /// Sinks skipped because the side table ran out of u16 ids.
    pub sinks_skipped_table_full: usize,
    /// Sinks skipped because a branch targets the middle of the
    /// would-be patch span.
    pub sinks_skipped_straddle: usize,
}

/// Full analysis result.
#[derive(Debug, Clone)]
pub struct Analysis {
    /// Sink instructions to patch.
    pub sinks: Vec<Sink>,
    /// Statistics.
    pub stats: AnalysisStats,
}

struct FnCtx {
    stack_fp: BTreeSet<i64>,
    stack_any: bool,
}

/// Run the analysis on a program image with the paper-faithful default
/// configuration (one-cell heap summary).
pub fn analyze(p: &Program) -> Analysis {
    analyze_with(p, &AnalysisConfig::default())
}

/// Run the analysis on a program image under an explicit configuration.
pub fn analyze_with(p: &Program, acfg: &AnalysisConfig) -> Analysis {
    let cfg = Cfg::build(p);
    let objs = ObjMap::new(p);
    let mut mem = MemTypes::default();
    let mut fn_ctxs: HashMap<u64, FnCtx> = cfg
        .functions
        .iter()
        .map(|&f| {
            (
                f,
                FnCtx {
                    stack_fp: BTreeSet::new(),
                    stack_any: false,
                },
            )
        })
        .collect();
    // Outer fixpoint over the shared memory typing + frame typing.
    let mut rounds = 0;
    loop {
        rounds += 1;
        let before = mem.clone();
        let frames_before: BTreeMap<u64, (usize, bool)> = fn_ctxs
            .iter()
            .map(|(f, c)| (*f, (c.stack_fp.len(), c.stack_any)))
            .collect();
        for &f in &cfg.functions {
            analyze_function(
                &cfg,
                f,
                acfg,
                &objs,
                &mut mem,
                fn_ctxs.get_mut(&f).unwrap(),
                None,
            );
        }
        let frames_after: BTreeMap<u64, (usize, bool)> = fn_ctxs
            .iter()
            .map(|(f, c)| (*f, (c.stack_fp.len(), c.stack_any)))
            .collect();
        if (mem == before && frames_before == frames_after) || rounds > 16 {
            break;
        }
    }
    // Final pass: classify sinks with the converged typing.
    let mut sinks = Vec::new();
    let mut loads_total = 0;
    let mut loads_safe = 0;
    for &f in &cfg.functions {
        let ctx = fn_ctxs.get_mut(&f).unwrap();
        let mut collect = SinkCollector {
            sinks: Vec::new(),
            loads_total: 0,
            loads_safe: 0,
        };
        analyze_function(&cfg, f, acfg, &objs, &mut mem, ctx, Some(&mut collect));
        sinks.extend(collect.sinks);
        loads_total += collect.loads_total;
        loads_safe += collect.loads_safe;
    }
    sinks.sort_by_key(|s| s.addr);
    sinks.dedup_by_key(|s| s.addr);
    let sinks_found = sinks.len();
    Analysis {
        sinks,
        stats: AnalysisStats {
            instructions: cfg.inst_count,
            blocks: cfg.blocks.len(),
            functions: cfg.functions.len(),
            loads_total,
            loads_proven_safe: loads_safe,
            rounds,
            sinks_found,
            sinks_patched: 0,
            sinks_skipped_table_full: 0,
            sinks_skipped_straddle: 0,
        },
    }
}

struct SinkCollector {
    sinks: Vec<Sink>,
    loads_total: usize,
    loads_safe: usize,
}

fn analyze_function(
    cfg: &Cfg,
    entry: u64,
    acfg: &AnalysisConfig,
    objs: &ObjMap,
    mem: &mut MemTypes,
    ctx: &mut FnCtx,
    mut collect: Option<&mut SinkCollector>,
) {
    let blocks: Vec<&Block> = cfg.function_blocks(entry);
    if blocks.is_empty() {
        return;
    }
    let mut states: HashMap<u64, RegState> = HashMap::new();
    states.insert(entry, RegState::entry());
    let mut worklist: Vec<u64> = vec![entry];
    let mut visits: HashMap<u64, usize> = HashMap::new();
    while let Some(b) = worklist.pop() {
        let v = visits.entry(b).or_insert(0);
        *v += 1;
        if *v > 100 {
            continue;
        }
        let Some(block) = cfg.blocks.get(&b) else {
            continue;
        };
        if cfg.block_fn.get(&b) != Some(&entry) {
            continue;
        }
        let Some(mut s) = states.get(&b).cloned() else {
            continue;
        };
        for site in &block.insts {
            transfer(site, &mut s, acfg, objs, mem, ctx, collect.as_deref_mut());
        }
        for &succ in &block.succs {
            if cfg.block_fn.get(&succ) != Some(&entry) {
                continue;
            }
            match states.get_mut(&succ) {
                Some(st) => {
                    if st.join(&s, objs) {
                        worklist.push(succ);
                    }
                }
                None => {
                    states.insert(succ, s.clone());
                    worklist.push(succ);
                }
            }
        }
    }
}

fn classify_addr(s: &RegState, m: &Mem, objs: &ObjMap) -> ALoc {
    let base = match m.base {
        None => AVal::Const(0),
        Some(r) => s.vals[r.0 as usize],
    };
    let base = base.add_const(m.disp);
    let full = if let Some(index) = m.index {
        // Treat the index as an unknown offset unless it is a known const.
        match s.vals[index.0 as usize] {
            AVal::Const(c) => base.add_const(c.wrapping_mul(i64::from(m.scale))),
            _ => base.add_unknown(objs),
        }
    } else {
        base
    };
    aval_to_loc(full, objs)
}

fn aval_to_loc(v: AVal, objs: &ObjMap) -> ALoc {
    match v {
        AVal::Stack(o) => ALoc::StackOff(o),
        AVal::Global(a) => ALoc::GlobalWord(a),
        AVal::GlobalObj(k) => ALoc::GlobalObj(k),
        AVal::GlobalAny => ALoc::GlobalAny,
        AVal::HeapSite(s) => ALoc::HeapSite(s),
        AVal::Heap => ALoc::Heap,
        AVal::Const(c) => {
            // A constant address (absolute operands).
            let u = c as u64;
            if (DATA_BASE..HEAP_BASE).contains(&u) {
                ALoc::GlobalWord(u)
            } else if u >= HEAP_BASE {
                ALoc::Heap
            } else {
                ALoc::Any
            }
        }
        AVal::Bottom | AVal::Top => ALoc::Any,
    }
    .widen_if_needed(objs)
}

trait WidenExt {
    fn widen_if_needed(self, objs: &ObjMap) -> ALoc;
}
impl WidenExt for ALoc {
    fn widen_if_needed(self, _objs: &ObjMap) -> ALoc {
        self
    }
}

const CALLER_SAVED: [usize; 9] = [0, 1, 2, 6, 7, 8, 9, 10, 11]; // rax rcx rdx rsi rdi r8-r11

fn transfer(
    site: &Site,
    s: &mut RegState,
    acfg: &AnalysisConfig,
    objs: &ObjMap,
    mem: &mut MemTypes,
    ctx: &mut FnCtx,
    collect: Option<&mut SinkCollector>,
) {
    use Inst::*;
    let inst = &site.inst;
    // Helper: record a store's effect on frame-slot tracking.
    let store_slot = |s: &mut RegState, loc: ALoc, val: AVal, taint: bool| match loc {
        ALoc::StackOff(o) => {
            s.slots.insert(o & !7, (val, taint));
        }
        ALoc::StackAny | ALoc::Any => {
            // Unknown store may have clobbered any slot.
            s.slots.clear();
        }
        _ => {}
    };
    match inst {
        // ---- FP stores: sources -------------------------------------------
        MovSd {
            dst: XM::Mem(m), ..
        } => {
            let loc = classify_addr(s, m, objs);
            mem.mark(loc, ctx);
            store_slot(s, loc, AVal::Top, true);
        }
        MovApd {
            dst: XM::Mem(m), ..
        } => {
            let loc = classify_addr(s, m, objs);
            mem.mark(loc, ctx);
            let loc2 = match loc {
                ALoc::StackOff(o) => ALoc::StackOff(o + 8),
                ALoc::GlobalWord(a) => ALoc::GlobalWord(a + 8),
                x => x,
            };
            mem.mark(loc2, ctx);
            store_slot(s, loc, AVal::Top, true);
            store_slot(s, loc2, AVal::Top, true);
        }
        // ---- integer world -------------------------------------------------
        MovRI { dst, imm } => {
            s.vals[dst.0 as usize] = classify_const_val(*imm);
            s.taint[dst.0 as usize] = false;
        }
        MovRR { dst, src } => {
            s.vals[dst.0 as usize] = s.vals[src.0 as usize];
            s.taint[dst.0 as usize] = s.taint[src.0 as usize];
        }
        Lea { dst, addr } => {
            let loc = classify_addr(s, addr, objs);
            s.vals[dst.0 as usize] = match loc {
                ALoc::StackOff(o) => AVal::Stack(o),
                ALoc::GlobalWord(a) => AVal::Global(a),
                ALoc::GlobalObj(k) => AVal::GlobalObj(k),
                ALoc::GlobalAny => AVal::GlobalAny,
                ALoc::Heap => AVal::Heap,
                _ => AVal::Top,
            };
            s.taint[dst.0 as usize] = false;
        }
        Load { dst, addr, w } => {
            let loc = classify_addr(s, addr, objs);
            let (val, taint) = match loc {
                ALoc::StackOff(o) => match s.slots.get(&(o & !7)) {
                    Some(&(v, t)) => (v, t),
                    None => (AVal::Top, mem.maybe_fp(loc, ctx, objs)),
                },
                _ => (AVal::Top, mem.maybe_fp(loc, ctx, objs)),
            };
            if let Some(c) = collect {
                c.loads_total += 1;
                if taint {
                    c.sinks.push(Sink {
                        addr: site.addr,
                        inst: *inst,
                        len: site.len,
                        reason: SinkReason::IntLoadOfFp,
                    });
                } else {
                    c.loads_safe += 1;
                }
            }
            let _ = w;
            s.vals[dst.0 as usize] = val;
            s.taint[dst.0 as usize] = taint;
        }
        Store { addr, src, .. } => {
            let loc = classify_addr(s, addr, objs);
            if s.taint[src.0 as usize] {
                mem.mark(loc, ctx);
            }
            // A stack pointer escaping to non-stack memory breaks frame
            // locality; flag the whole frame.
            if matches!(s.vals[src.0 as usize], AVal::Stack(_)) && !matches!(loc, ALoc::StackOff(_))
            {
                ctx.stack_any = true;
            }
            store_slot(s, loc, s.vals[src.0 as usize], s.taint[src.0 as usize]);
        }
        MovQXG { dst, .. } => {
            if let Some(c) = collect {
                c.sinks.push(Sink {
                    addr: site.addr,
                    inst: *inst,
                    len: site.len,
                    reason: SinkReason::MovqLeak,
                });
            }
            s.vals[dst.0 as usize] = AVal::Top;
            s.taint[dst.0 as usize] = true;
        }
        MovQGX { .. } => {}
        XorPd { .. } | AndPd { .. } | OrPd { .. } => {
            if let Some(c) = collect {
                c.sinks.push(Sink {
                    addr: site.addr,
                    inst: *inst,
                    len: site.len,
                    reason: SinkReason::BitwiseFp,
                });
            }
        }
        CvtTSd2Si { dst, .. } => {
            s.vals[dst.0 as usize] = AVal::Top;
            s.taint[dst.0 as usize] = false;
        }
        AluRI { op, dst, imm } => {
            let d = dst.0 as usize;
            s.vals[d] = match op {
                AluOp::Add => s.vals[d].add_const(*imm),
                AluOp::Sub => s.vals[d].add_const(imm.wrapping_neg()),
                _ => match s.vals[d] {
                    AVal::Const(c) => eval_alu(*op, c, *imm).map_or(AVal::Top, AVal::Const),
                    _ => AVal::Top,
                },
            };
        }
        AluRR { op, dst, src } => {
            let d = dst.0 as usize;
            let sv = s.vals[src.0 as usize];
            s.vals[d] = match (op, s.vals[d], sv) {
                (AluOp::Add, a, AVal::Const(c)) => a.add_const(c),
                (AluOp::Add, AVal::Const(c), b) => b.add_const(c),
                (AluOp::Add, a, _) => a.add_unknown(objs),
                (AluOp::Sub, a, AVal::Const(c)) => a.add_const(c.wrapping_neg()),
                (_, AVal::Const(a), AVal::Const(b)) => {
                    eval_alu(*op, a, b).map_or(AVal::Top, AVal::Const)
                }
                _ => AVal::Top,
            };
            s.taint[d] = s.taint[d] || s.taint[src.0 as usize];
        }
        DivR { dst, .. } | RemR { dst, .. } => {
            s.vals[dst.0 as usize] = AVal::Top;
        }
        Push { src } => {
            let rsp = Gpr::RSP.0 as usize;
            s.vals[rsp] = s.vals[rsp].add_const(-8);
            if let AVal::Stack(o) = s.vals[rsp] {
                if s.taint[src.0 as usize] {
                    ctx.stack_fp.insert(o & !7);
                }
                s.slots
                    .insert(o & !7, (s.vals[src.0 as usize], s.taint[src.0 as usize]));
            }
        }
        Pop { dst } => {
            let rsp = Gpr::RSP.0 as usize;
            let (val, taint) = match s.vals[rsp] {
                AVal::Stack(o) => match s.slots.get(&(o & !7)) {
                    Some(&(v, t)) => (v, t),
                    None => (AVal::Top, mem.maybe_fp(ALoc::StackOff(o), ctx, objs)),
                },
                _ => (AVal::Top, true),
            };
            s.vals[dst.0 as usize] = val;
            s.taint[dst.0 as usize] = taint;
            s.vals[rsp] = s.vals[rsp].add_const(8);
        }
        Call { .. } => {
            for &r in &CALLER_SAVED {
                s.vals[r] = AVal::Top;
                // Integer return values are not FP bits under the ABI
                // discipline (FP returns travel in xmm0) — documented
                // assumption in DESIGN.md.
                s.taint[r] = false;
            }
        }
        CallExt { f } => {
            let rax = Gpr::RAX.0 as usize;
            s.vals[rax] = if *f == ExtFn::AllocHeap {
                match acfg.heap {
                    // Under allocation-site partitioning the call site
                    // itself names the abstract object.
                    HeapModel::AllocSite => AVal::HeapSite(site.addr),
                    HeapModel::OneCell => AVal::Heap,
                }
            } else {
                AVal::Top
            };
            s.taint[rax] = false;
        }
        _ => {}
    }
}

fn eval_alu(op: AluOp, a: i64, b: i64) -> Option<i64> {
    Some(match op {
        AluOp::Add => a.wrapping_add(b),
        AluOp::Sub => a.wrapping_sub(b),
        AluOp::And => a & b,
        AluOp::Or => a | b,
        AluOp::Xor => a ^ b,
        AluOp::Shl => a.wrapping_shl(b as u32 & 63),
        AluOp::Shr => ((a as u64).wrapping_shr(b as u32 & 63)) as i64,
        AluOp::Sar => a.wrapping_shr(b as u32 & 63),
        AluOp::IMul => a.wrapping_mul(b),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use fpvm_machine::{Asm, Gpr, Mem, Width, Xmm};

    #[test]
    fn fig6_pattern_is_a_sink() {
        // The paper's Fig. 6: store a double to the stack, reload as int.
        let mut a = Asm::new();
        let c = a.f64m(1.5);
        a.alu_ri(AluOp::Sub, Gpr::RSP, 16);
        a.movsd(Xmm(0), c);
        a.movsd(Mem::base_disp(Gpr::RSP, 8), Xmm(0)); // source
        a.load_w(Gpr::RAX, Mem::base_disp(Gpr::RSP, 8), Width::W32); // sink
        a.halt();
        let p = a.finish();
        let an = analyze(&p);
        assert_eq!(an.sinks.len(), 1);
        assert_eq!(an.sinks[0].reason, SinkReason::IntLoadOfFp);
        assert!(matches!(an.sinks[0].inst, Inst::Load { .. }));
    }

    #[test]
    fn integer_only_loads_proven_safe() {
        let mut a = Asm::new();
        let g = a.global("counter", 8);
        a.mov_ri(Gpr::RAX, 5);
        a.store(Mem::abs(g as i64), Gpr::RAX);
        a.load(Gpr::RBX, Mem::abs(g as i64));
        a.halt();
        let p = a.finish();
        let an = analyze(&p);
        assert!(an.sinks.is_empty(), "{:?}", an.sinks);
        assert_eq!(an.stats.loads_total, 1);
        assert_eq!(an.stats.loads_proven_safe, 1);
    }

    #[test]
    fn movq_and_bitwise_always_sinks() {
        let mut a = Asm::new();
        let mask = a.u128c([1 << 63, 0]);
        a.movq_xg(Gpr::RAX, Xmm(0));
        a.xorpd(Xmm(0), Mem::abs(mask as i64));
        a.halt();
        let p = a.finish();
        let an = analyze(&p);
        assert_eq!(an.sinks.len(), 2);
        assert_eq!(an.sinks[0].reason, SinkReason::MovqLeak);
        assert_eq!(an.sinks[1].reason, SinkReason::BitwiseFp);
    }

    #[test]
    fn fig7_heap_indirection_is_conservative() {
        // Fig. 7: FP stored through a heap pointer, integer loaded back.
        let mut a = Asm::new();
        let c = a.f64m(2.5);
        a.mov_ri(Gpr::RDI, 16);
        a.call_ext(ExtFn::AllocHeap);
        a.movsd(Xmm(0), c);
        a.movsd(Mem::base_disp(Gpr::RAX, 8), Xmm(0)); // ptr->d = fp
        a.mov_ri(Gpr::RDX, 0);
        a.store(Mem::base_disp(Gpr::RAX, 0), Gpr::RDX); // ptr->i = 0
        a.load_w(Gpr::RCX, Mem::base_disp(Gpr::RAX, 8), Width::W32); // sink
        a.halt();
        let p = a.finish();
        let an = analyze(&p);
        assert!(
            an.sinks.iter().any(|s| s.reason == SinkReason::IntLoadOfFp),
            "heap load after heap FP store must be a sink: {:?}",
            an.sinks
        );
        // The heap summary is one cell: no heap load can be proven safe
        // once any FP value landed on the heap (conservative imprecision —
        // exactly the Enzo situation of §5.3).
        assert_eq!(an.stats.loads_total, 1);
        assert_eq!(an.stats.loads_proven_safe, 0);
    }

    #[test]
    fn alloc_site_partitioning_separates_heap_allocations() {
        // Two allocations from distinct call sites: FP lands in the first,
        // integers in the second. One-cell merges them (both loads sink);
        // allocation-site partitioning proves the integer-only load safe.
        let mut a = Asm::new();
        let c = a.f64m(2.5);
        a.mov_ri(Gpr::RDI, 32);
        a.call_ext(ExtFn::AllocHeap); // site A
        a.mov_rr(Gpr::RBX, Gpr::RAX);
        a.mov_ri(Gpr::RDI, 32);
        a.call_ext(ExtFn::AllocHeap); // site B
        a.movsd(Xmm(0), c);
        a.movsd(Mem::base_disp(Gpr::RBX, 0), Xmm(0)); // FP -> A
        a.mov_ri(Gpr::RDX, 7);
        a.store(Mem::base_disp(Gpr::RAX, 0), Gpr::RDX); // int -> B
        a.load(Gpr::RCX, Mem::base_disp(Gpr::RAX, 0)); // from B: safe
        a.load(Gpr::RSI, Mem::base_disp(Gpr::RBX, 0)); // from A: sink
        a.halt();
        let p = a.finish();

        let one = analyze(&p);
        assert_eq!(one.stats.loads_total, 2);
        assert_eq!(
            one.stats.loads_proven_safe, 0,
            "one-cell heap must merge both allocations"
        );

        let cfg = AnalysisConfig {
            heap: HeapModel::AllocSite,
        };
        let an = analyze_with(&p, &cfg);
        assert_eq!(an.stats.loads_total, 2);
        assert_eq!(
            an.stats.loads_proven_safe, 1,
            "alloc-site heap must prove the integer allocation safe: {:?}",
            an.sinks
        );
        assert_eq!(
            an.sinks
                .iter()
                .filter(|s| s.reason == SinkReason::IntLoadOfFp)
                .count(),
            1
        );
        // The FP-bearing allocation is still a sink under both models
        // (soundness is preserved; only precision improves).
        assert!(an.sinks.iter().all(|s| one
            .sinks
            .iter()
            .any(|o| o.addr == s.addr && o.reason == s.reason)));
    }

    #[test]
    fn taint_through_gpr_store() {
        // movq leak -> integer store -> integer load elsewhere: the final
        // load must be a sink even though no FP store wrote that word.
        let mut a = Asm::new();
        let g = a.global("slot", 8);
        a.movq_xg(Gpr::RAX, Xmm(3));
        a.store(Mem::abs(g as i64), Gpr::RAX);
        a.load(Gpr::RBX, Mem::abs(g as i64));
        a.halt();
        let p = a.finish();
        let an = analyze(&p);
        let load_sinks: Vec<_> = an
            .sinks
            .iter()
            .filter(|s| s.reason == SinkReason::IntLoadOfFp)
            .collect();
        assert_eq!(load_sinks.len(), 1);
    }

    #[test]
    fn distinct_globals_are_distinguished() {
        // FP in global A, integer in global B: loading B is safe, loading
        // A is a sink.
        let mut a = Asm::new();
        let ga = a.global_f64("a", 0.0);
        let gb = a.global("b", 8);
        let c = a.f64m(1.5);
        a.movsd(Xmm(0), c);
        a.movsd(Mem::abs(ga as i64), Xmm(0));
        a.mov_ri(Gpr::RAX, 1);
        a.store(Mem::abs(gb as i64), Gpr::RAX);
        a.load(Gpr::RBX, Mem::abs(gb as i64)); // safe
        a.load(Gpr::RCX, Mem::abs(ga as i64)); // sink
        a.halt();
        let p = a.finish();
        let an = analyze(&p);
        assert_eq!(an.stats.loads_total, 2);
        assert_eq!(an.stats.loads_proven_safe, 1);
        assert_eq!(an.sinks.len(), 1);
    }

    #[test]
    fn object_granularity_separates_arrays() {
        // FP array and integer index array as distinct global objects,
        // accessed through computed indices: integer loads from the index
        // array stay safe even though the FP array is written.
        let mut a = Asm::new();
        let fp_arr = a.f64_array("vals", &[0.0; 16]);
        let idx_arr = a.i64_array("cols", &[0; 16]);
        let c = a.f64m(3.25);
        // vals[rcx*8] = 3.25 (computed index).
        a.mov_ri(Gpr::RCX, 5);
        a.mov_ri(Gpr::RBX, fp_arr as i64);
        a.movsd(Xmm(0), c);
        a.movsd(Mem::bis(Gpr::RBX, Gpr::RCX, 8, 0), Xmm(0));
        // rax = cols[rcx*8] — integer array, must be safe.
        a.mov_ri(Gpr::RDX, idx_arr as i64);
        a.load(Gpr::RAX, Mem::bis(Gpr::RDX, Gpr::RCX, 8, 0));
        // rbx2 = vals[rcx*8] as integer — must be a sink.
        a.load(Gpr::RSI, Mem::bis(Gpr::RBX, Gpr::RCX, 8, 0));
        a.halt();
        let p = a.finish();
        let an = analyze(&p);
        assert_eq!(an.stats.loads_total, 2);
        assert_eq!(an.stats.loads_proven_safe, 1, "{:?}", an.sinks);
        assert_eq!(an.sinks.len(), 1);
    }

    #[test]
    fn pointer_roundtrip_through_frame_slot() {
        // A global pointer spilled to the frame and reloaded must keep its
        // object identity (the -O0 codegen pattern).
        let mut a = Asm::new();
        let fp_arr = a.f64_array("vals", &[0.0; 8]);
        let int_arr = a.i64_array("idx", &[0; 8]);
        let c = a.f64m(1.5);
        a.alu_ri(AluOp::Sub, Gpr::RSP, 32);
        // Spill &vals and &idx to the frame.
        a.mov_ri(Gpr::RAX, fp_arr as i64);
        a.store(Mem::base_disp(Gpr::RSP, 0), Gpr::RAX);
        a.mov_ri(Gpr::RAX, int_arr as i64);
        a.store(Mem::base_disp(Gpr::RSP, 8), Gpr::RAX);
        // Store FP through the reloaded vals pointer.
        a.load(Gpr::RCX, Mem::base_disp(Gpr::RSP, 0));
        a.movsd(Xmm(0), c);
        a.movsd(Mem::base_disp(Gpr::RCX, 16), Xmm(0));
        // Integer-load through the reloaded idx pointer: SAFE.
        a.load(Gpr::RCX, Mem::base_disp(Gpr::RSP, 8));
        a.load(Gpr::RAX, Mem::base_disp(Gpr::RCX, 16));
        a.halt();
        let p = a.finish();
        let an = analyze(&p);
        // 3 integer loads total: the two pointer reloads + idx[2].
        assert_eq!(an.stats.loads_total, 3);
        assert_eq!(
            an.stats.loads_proven_safe, 3,
            "pointer identity must survive the frame round-trip: {:?}",
            an.sinks
        );
    }

    #[test]
    fn loop_fixpoint_converges() {
        // FP store happens on a back edge after the load in program order:
        // the fixpoint must still flag the load.
        let mut a = Asm::new();
        let g = a.global("x", 8);
        let c = a.f64m(1.5);
        a.mov_ri(Gpr::RCX, 0);
        let top = a.here_label();
        let done = a.label();
        a.cmp_ri(Gpr::RCX, 4);
        a.jcc(fpvm_machine::Cond::Ge, done);
        a.load(Gpr::RAX, Mem::abs(g as i64)); // reads FP on iterations > 0
        a.movsd(Xmm(0), c);
        a.movsd(Mem::abs(g as i64), Xmm(0)); // source, later in the loop
        a.alu_ri(AluOp::Add, Gpr::RCX, 1);
        a.jmp(top);
        a.bind(done);
        a.halt();
        let p = a.finish();
        let an = analyze(&p);
        assert!(
            an.sinks.iter().any(|s| s.reason == SinkReason::IntLoadOfFp),
            "loop-carried FP flow must be found"
        );
    }

    #[test]
    fn calls_are_analyzed_interprocedurally() {
        // Callee stores FP to a global; caller integer-loads it.
        let mut a = Asm::new();
        let g = a.global_f64("shared", 0.0);
        let c = a.f64m(3.5);
        let f = a.label();
        a.call(f);
        a.load(Gpr::RAX, Mem::abs(g as i64)); // sink
        a.halt();
        a.bind(f);
        a.movsd(Xmm(0), c);
        a.movsd(Mem::abs(g as i64), Xmm(0));
        a.ret();
        let p = a.finish();
        let an = analyze(&p);
        assert_eq!(
            an.sinks
                .iter()
                .filter(|s| s.reason == SinkReason::IntLoadOfFp)
                .count(),
            1
        );
        assert!(an.stats.functions >= 2);
    }
}
