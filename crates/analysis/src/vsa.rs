//! Value-set analysis: find the instructions where a NaN-boxed value
//! could leak into the non-trapping integer world (§4.2).
//!
//! "The analysis categorizes instructions into two categories: sources and
//! sinks. A source is any instruction that stores a floating point value to
//! memory, and a sink is any instruction that later loads from any memory
//! location that was previously been written to by a source."
//!
//! The analysis is an abstract interpretation over the recovered CFG:
//!
//! * registers carry a value-set lattice — constants, entry-relative stack
//!   offsets, exact global pointers, *object-granular* global pointers
//!   (angr-VSA's allocation-site a-locs, using the image's object table),
//!   a one-cell heap summary, and ⊤ — plus an *FP-bits taint*;
//! * stack slot **contents** are tracked flow-sensitively (the `-O0` style
//!   codegen round-trips every pointer through the frame, so without this
//!   every indexed access would degrade to ⊤);
//! * memory *typing* (which locations may hold FP data) is flow-insensitive
//!   and monotone by default: per-function frame slots, per-word and
//!   per-object global sets, and the heap summary.
//!
//! Three second-generation precision passes layer on top, each an
//! independently ablatable [`AnalysisConfig`] knob:
//!
//! 1. **Flow-sensitive memory typing** ([`AnalysisConfig::flow_mem`]):
//!    per-program-point *kill sets* record slots/words whose last write was
//!    a provably-integer store (a strong update), overriding the monotone
//!    typing on the killed location. The pass also models the patch
//!    contract: a sink load *is patched* and its trap demotes the box, so
//!    the loaded register holds raw bits — this breaks the taint cascade
//!    where one spurious heap sink used to re-taint every frame slot it
//!    was spilled to. The model is only sound when every sink is actually
//!    patched; the audit harness gates on zero skipped sinks.
//! 2. **k=1 context-sensitive summaries** ([`AnalysisConfig::ctx_k1`]):
//!    functions are analyzed per immediate call site with memoized
//!    argument/return summaries ([`AVal`] six-tuples joined per context,
//!    [`AVal::Bottom`] as the transfer identity). Two callers passing an
//!    int pointer and an FP pointer stop conflating; memory effects still
//!    flow through the shared typing, now marked with per-context argument
//!    precision. Contexts beyond the k=1 horizon (a callee's own call
//!    sites) are widened by joining all callers. If the context fixpoint
//!    fails to converge the analysis falls back to the context-insensitive
//!    mode, so the knob can only refine, never lose soundness.
//! 3. **Backward box-liveness** ([`AnalysisConfig::liveness`], in
//!    [`crate::liveness`]): sinks whose loaded value never reaches an
//!    integer observation point (ALU use, compare/branch, external-call
//!    argument, escaping store) are demoted — a dead reload or a value
//!    that only flows back into FP context needs no correctness trap.
//!
//! Like the paper's tweaked VSA, unresolvable facts degrade conservatively:
//! "if VSA returns a conservative result, FPVM follows suit and assumes
//! there exists a NaN-boxed double that may need demotion." The one-cell
//! heap summary is the deliberate imprecision that reproduces the paper's
//! Enzo behavior — correctness traps in critical loops "because the static
//! analysis could not prove they were unneeded."
//!
//! Sinks: integer loads from maybe-FP locations, `movq r64 ← xmm` (always),
//! and the bitwise-FP idioms `xorpd`/`andpd`/`orpd` (always — compilers use
//! them to negate / take `fabs` of FP registers that may hold boxes).
//! Code reachable only through computed control flow (blocks owned by no
//! recovered function, e.g. a `push addr; ret` landing pad) is treated
//! maximally conservatively: every load there is a sink. External call
//! sites are not patched: the runtime's LD_PRELOAD-style shim interposes
//! them directly (§4.1).

use crate::cfg::{Block, Cfg, Site};
use crate::liveness::{self, ObservationFacts};
use fpvm_machine::{AluOp, ExtFn, Gpr, Inst, Mem, Program, DATA_BASE, HEAP_BASE, XM};
use std::collections::{BTreeMap, BTreeSet, HashMap};

/// The data-segment object table (allocation sites).
struct ObjMap {
    /// Sorted (base, size).
    objects: Vec<(u64, u64)>,
}

impl ObjMap {
    fn new(p: &Program) -> ObjMap {
        let mut objects = p.objects.clone();
        objects.sort_unstable();
        ObjMap { objects }
    }

    fn resolve(&self, addr: u64) -> Option<u32> {
        let idx = self.objects.partition_point(|&(b, _)| b <= addr);
        if idx == 0 {
            return None;
        }
        let (base, size) = self.objects[idx - 1];
        (addr < base + size).then_some(idx as u32 - 1)
    }

    fn range(&self, k: u32) -> (u64, u64) {
        self.objects[k as usize]
    }
}

/// How the heap is summarized (the audit harness drives the comparison).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum HeapModel {
    /// Paper-faithful single summary cell: one FP store anywhere on the
    /// heap taints every heap load (the deliberate Enzo imprecision).
    #[default]
    OneCell,
    /// Allocation-site partitioning: pointers returned by distinct
    /// `AllocHeap` call sites are distinguished; merged or unknown heap
    /// pointers still degrade to the one-cell summary.
    AllocSite,
}

/// Static analysis configuration (ablation knobs). Every knob defaults to
/// the paper-faithful first-generation behavior; each can be enabled
/// independently and the E19 harness measures every combination's
/// precision/recall through the dynamic taint oracle.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct AnalysisConfig {
    /// Heap summarization model.
    pub heap: HeapModel,
    /// Flow-sensitive memory typing: exact integer stores strongly update
    /// (kill) a location's FP typing, and patched sinks are modeled as
    /// demoting (their result is raw bits, not a box).
    pub flow_mem: bool,
    /// k=1 call-site-sensitive interprocedural argument/return summaries.
    pub ctx_k1: bool,
    /// Backward box-liveness: demote sinks whose value is never observed
    /// by the integer world.
    pub liveness: bool,
}

/// Abstract register / slot value.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum AVal {
    /// The transfer-function identity: no value has reached here yet
    /// (unrecorded context summaries start at ⊥ and join upward).
    Bottom,
    Const(i64),
    /// Entry-rsp-relative stack address.
    Stack(i64),
    /// Somewhere in the current frame (widened stack pointer — a cursor
    /// that takes different offsets across a back-edge).
    StackAny,
    /// Exact data-segment address.
    Global(u64),
    /// Somewhere inside data object `k`.
    GlobalObj(u32),
    /// Somewhere in the data segment.
    GlobalAny,
    /// Somewhere in the allocation made at call site `addr`
    /// ([`HeapModel::AllocSite`] only).
    HeapSite(u64),
    /// Somewhere in dynamic memory (heap summary).
    Heap,
    Top,
}

impl AVal {
    fn join(self, other: AVal, objs: &ObjMap) -> AVal {
        use AVal::*;
        match (self, other) {
            (Bottom, x) | (x, Bottom) => x,
            (a, b) if a == b => a,
            // A stack pointer taking distinct offsets (a strided frame
            // cursor) widens to the frame summary instead of ⊤ — the
            // object-bounded widening for the stack region.
            (Stack(_) | StackAny, Stack(_) | StackAny) => StackAny,
            (Global(a), Global(b)) => match (objs.resolve(a), objs.resolve(b)) {
                (Some(ka), Some(kb)) if ka == kb => GlobalObj(ka),
                _ => GlobalAny,
            },
            (Global(a), GlobalObj(k)) | (GlobalObj(k), Global(a)) => {
                if objs.resolve(a) == Some(k) {
                    GlobalObj(k)
                } else {
                    GlobalAny
                }
            }
            (Global(_) | GlobalObj(_) | GlobalAny, Global(_) | GlobalObj(_) | GlobalAny) => {
                GlobalAny
            }
            // Distinct allocation sites (or a site against the summary)
            // merge into the one-cell summary.
            (HeapSite(_) | Heap, HeapSite(_) | Heap) => Heap,
            _ => Top,
        }
    }

    fn add_const(self, k: i64) -> AVal {
        match self {
            AVal::Const(c) => AVal::Const(c.wrapping_add(k)),
            AVal::Stack(o) => AVal::Stack(o.wrapping_add(k)),
            AVal::Global(a) => AVal::Global(a.wrapping_add(k as u64)),
            x => x,
        }
    }

    /// Result of adding an unknown offset (array indexing).
    fn add_unknown(self, objs: &ObjMap) -> AVal {
        match self {
            AVal::Global(a) => objs.resolve(a).map_or(AVal::GlobalAny, AVal::GlobalObj),
            AVal::GlobalObj(k) => AVal::GlobalObj(k),
            AVal::GlobalAny => AVal::GlobalAny,
            AVal::HeapSite(s) => AVal::HeapSite(s),
            AVal::Heap => AVal::Heap,
            // An unknown index can carry a stack pointer out of the stack
            // region entirely; stay maximally conservative.
            _ => AVal::Top,
        }
    }
}

/// Classify a constant that may be a pointer (MovRI of an address).
fn classify_const_val(c: i64) -> AVal {
    let u = c as u64;
    if (DATA_BASE..HEAP_BASE).contains(&u) {
        AVal::Global(u)
    } else if (HEAP_BASE..(1 << 40)).contains(&u) {
        AVal::Heap
    } else {
        AVal::Const(c)
    }
}

/// Abstract memory location.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum ALoc {
    StackOff(i64),
    StackAny,
    GlobalWord(u64),
    GlobalObj(u32),
    GlobalAny,
    /// Inside the allocation made at call site `addr`.
    HeapSite(u64),
    Heap,
    Any,
}

/// Flow-insensitive memory typing, shared across functions; grows
/// monotonically to a fixpoint. (The flow-*sensitive* refinement lives in
/// [`Kills`] and overrides this per program point.)
#[derive(Debug, Default, Clone, PartialEq)]
struct MemTypes {
    /// Exact data words that may hold FP data.
    words_fp: BTreeSet<u64>,
    /// Objects where *some* unknown offset may hold FP data.
    objs_fp: BTreeSet<u32>,
    global_any_fp: bool,
    /// Allocation sites whose allocation may hold FP data.
    heap_site_fp: BTreeSet<u64>,
    heap_fp: bool,
    any_fp: bool,
    /// Some function's frame holds FP data somewhere (consulted by reads
    /// through wild pointers, which may reach any frame).
    some_stack_fp: bool,
    /// FP was stored through an imprecise stack pointer — any frame slot
    /// of any function may have been hit.
    stack_all_fp: bool,
}

impl MemTypes {
    fn mark(&mut self, loc: ALoc, ctx: &mut FnCtx) {
        match loc {
            ALoc::StackOff(o) => {
                ctx.stack_fp.insert(o & !7);
                self.some_stack_fp = true;
            }
            ALoc::StackAny => {
                ctx.stack_any = true;
                self.some_stack_fp = true;
                self.stack_all_fp = true;
            }
            ALoc::GlobalWord(a) => {
                self.words_fp.insert(a & !7);
            }
            ALoc::GlobalObj(k) => {
                self.objs_fp.insert(k);
            }
            ALoc::GlobalAny => self.global_any_fp = true,
            ALoc::HeapSite(s) => {
                self.heap_site_fp.insert(s);
            }
            ALoc::Heap => self.heap_fp = true,
            ALoc::Any => self.any_fp = true,
        }
    }

    fn maybe_fp(&self, loc: ALoc, ctx: &FnCtx, objs: &ObjMap) -> bool {
        if self.any_fp {
            return true;
        }
        let obj_hit = |k: u32| {
            if self.objs_fp.contains(&k) {
                return true;
            }
            let (base, size) = objs.range(k);
            self.words_fp.range(base..base + size).next().is_some()
        };
        match loc {
            ALoc::StackOff(o) => {
                self.stack_all_fp || ctx.stack_any || ctx.stack_fp.contains(&(o & !7))
            }
            ALoc::StackAny => self.stack_all_fp || self.some_stack_fp || ctx.stack_any,
            ALoc::GlobalWord(a) => {
                self.global_any_fp
                    || self.words_fp.contains(&(a & !7))
                    || objs.resolve(a).is_some_and(|k| self.objs_fp.contains(&k))
            }
            ALoc::GlobalObj(k) => self.global_any_fp || obj_hit(k),
            ALoc::GlobalAny => {
                self.global_any_fp || !self.words_fp.is_empty() || !self.objs_fp.is_empty()
            }
            ALoc::HeapSite(s) => self.heap_fp || self.heap_site_fp.contains(&s),
            ALoc::Heap => self.heap_fp || !self.heap_site_fp.is_empty(),
            ALoc::Any => {
                self.heap_fp
                    || !self.heap_site_fp.is_empty()
                    || self.global_any_fp
                    || !self.words_fp.is_empty()
                    || !self.objs_fp.is_empty()
                    || self.some_stack_fp
                    || ctx.stack_any
                    || !ctx.stack_fp.is_empty()
            }
        }
    }
}

/// Per-program-point strong-update facts ([`AnalysisConfig::flow_mem`]):
/// slots/words whose *last* write on every path was a provably-integer
/// store. A killed location's monotone FP typing is overridden at loads.
#[derive(Debug, Clone, PartialEq, Default)]
struct Kills {
    slots: BTreeSet<i64>,
    words: BTreeSet<u64>,
}

impl Kills {
    fn covers(&self, loc: ALoc) -> bool {
        match loc {
            ALoc::StackOff(o) => self.slots.contains(&(o & !7)),
            ALoc::GlobalWord(a) => self.words.contains(&(a & !7)),
            _ => false,
        }
    }

    /// An integer (untainted) store: strong-update exact targets. An
    /// imprecise target adds nothing, but existing kills stand — an
    /// integer store never *adds* FP typing anywhere.
    fn kill(&mut self, loc: ALoc) {
        match loc {
            ALoc::StackOff(o) => {
                self.slots.insert(o & !7);
            }
            ALoc::GlobalWord(a) => {
                self.words.insert(a & !7);
            }
            _ => {}
        }
    }

    /// An FP (tainted) store: every location it may reach loses its kill.
    fn unkill(&mut self, loc: ALoc, objs: &ObjMap) {
        match loc {
            ALoc::StackOff(o) => {
                self.slots.remove(&(o & !7));
            }
            ALoc::StackAny => self.slots.clear(),
            ALoc::GlobalWord(a) => {
                self.words.remove(&(a & !7));
            }
            ALoc::GlobalObj(k) => {
                let (base, size) = objs.range(k);
                self.words.retain(|w| !(base..base + size).contains(w));
            }
            ALoc::GlobalAny => self.words.clear(),
            ALoc::HeapSite(_) | ALoc::Heap => {}
            ALoc::Any => {
                self.slots.clear();
                self.words.clear();
            }
        }
    }

    /// Join = intersection (a location is killed only if killed on every
    /// incoming path). Returns true if `self` changed.
    fn meet(&mut self, other: &Kills) -> bool {
        let before = (self.slots.len(), self.words.len());
        self.slots.retain(|k| other.slots.contains(k));
        self.words.retain(|k| other.words.contains(k));
        before != (self.slots.len(), self.words.len())
    }
}

/// Per-block register + frame-slot state.
#[derive(Debug, Clone, PartialEq)]
struct RegState {
    vals: [AVal; 16],
    taint: [bool; 16],
    /// Known frame-slot contents (entry-rsp-relative offset → value).
    slots: BTreeMap<i64, (AVal, bool)>,
    /// Strong-update facts (populated only under `flow_mem`).
    kills: Kills,
}

impl RegState {
    fn entry() -> Self {
        let mut vals = [AVal::Top; 16];
        vals[Gpr::RSP.0 as usize] = AVal::Stack(0);
        RegState {
            vals,
            taint: [false; 16],
            slots: BTreeMap::new(),
            kills: Kills::default(),
        }
    }

    fn join(&mut self, other: &RegState, objs: &ObjMap) -> bool {
        let mut changed = false;
        for i in 0..16 {
            let j = self.vals[i].join(other.vals[i], objs);
            if j != self.vals[i] {
                self.vals[i] = j;
                changed = true;
            }
            let t = self.taint[i] || other.taint[i];
            if t != self.taint[i] {
                self.taint[i] = t;
                changed = true;
            }
        }
        // Slot maps: keep the intersection of keys, joining values.
        let keys: Vec<i64> = self.slots.keys().copied().collect();
        for k in keys {
            match other.slots.get(&k) {
                None => {
                    self.slots.remove(&k);
                    changed = true;
                }
                Some(&(ov, ot)) => {
                    let (sv, st) = self.slots[&k];
                    let nv = sv.join(ov, objs);
                    let nt = st || ot;
                    if (nv, nt) != (sv, st) {
                        self.slots.insert(k, (nv, nt));
                        changed = true;
                    }
                }
            }
        }
        changed |= self.kills.meet(&other.kills);
        changed
    }
}

/// Why an instruction was classified as a sink.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SinkReason {
    /// Integer load of a location that may hold FP data (Fig. 6/7).
    IntLoadOfFp,
    /// `movq r64, xmm` — direct FP-to-integer register leak.
    MovqLeak,
    /// Bitwise FP op (`xorpd`/`andpd`/`orpd`) — compiler sign/abs idiom.
    BitwiseFp,
}

/// A sink instruction that must be patched with a correctness trap.
#[derive(Debug, Clone, Copy)]
pub struct Sink {
    /// Instruction address.
    pub addr: u64,
    /// The instruction itself.
    pub inst: Inst,
    /// Encoded length.
    pub len: u8,
    /// Classification.
    pub reason: SinkReason,
}

/// Analysis summary statistics (reported by the `reproduce` harness).
#[derive(Debug, Clone, Copy, Default)]
pub struct AnalysisStats {
    /// Instructions analyzed.
    pub instructions: usize,
    /// Basic blocks.
    pub blocks: usize,
    /// Functions.
    pub functions: usize,
    /// Function contexts analyzed (equals `functions` without `ctx_k1`).
    pub contexts: usize,
    /// Integer loads examined (unique sites).
    pub loads_total: usize,
    /// Integer loads proven safe (not patched).
    pub loads_proven_safe: usize,
    /// Outer fixpoint rounds.
    pub rounds: usize,
    /// Sink instructions found by the analysis.
    pub sinks_found: usize,
    /// Sinks demoted by the backward box-liveness pass (never observed by
    /// the integer world); included in `loads_proven_safe`.
    pub sinks_demoted_live: usize,
    /// Sinks actually patched with correctness traps (filled by the
    /// patcher; zero when only [`analyze`] ran).
    pub sinks_patched: usize,
    /// Sinks skipped because the side table ran out of u16 ids.
    pub sinks_skipped_table_full: usize,
    /// Sinks skipped because a branch targets the middle of the
    /// would-be patch span.
    pub sinks_skipped_straddle: usize,
}

/// Full analysis result.
#[derive(Debug, Clone)]
pub struct Analysis {
    /// Sink instructions to patch.
    pub sinks: Vec<Sink>,
    /// Statistics.
    pub stats: AnalysisStats,
}

struct FnCtx {
    stack_fp: BTreeSet<i64>,
    stack_any: bool,
}

impl FnCtx {
    fn new() -> FnCtx {
        FnCtx {
            stack_fp: BTreeSet::new(),
            stack_any: false,
        }
    }
}

/// A function analysis context: (entry, immediate call site). Site 0 is
/// the root/unknown-caller context (⊤ arguments).
type CtxKey = (u64, u64);

/// k=1 call-site summaries: joined abstract arguments and return values,
/// memoized per (callee, call site).
struct CallState {
    enabled: bool,
    /// (callee, site) → joined [`INT_ARGS`] values at the site.
    inputs: BTreeMap<CtxKey, [AVal; 6]>,
    /// (callee, site) → joined abstract return value (RAX at `ret`).
    rets: BTreeMap<CtxKey, AVal>,
}

/// Run the analysis on a program image with the paper-faithful default
/// configuration (one-cell heap summary, first-generation passes only).
pub fn analyze(p: &Program) -> Analysis {
    analyze_with(p, &AnalysisConfig::default())
}

/// Run the analysis on a program image under an explicit configuration.
pub fn analyze_with(p: &Program, acfg: &AnalysisConfig) -> Analysis {
    let cfg = Cfg::build(p);
    let objs = ObjMap::new(p);
    if acfg.ctx_k1 {
        if let Some(an) = converge(&cfg, &objs, acfg, p.entry, true) {
            return an;
        }
        // The k=1 context fixpoint hit the round cap: fall back to the
        // always-converging context-insensitive mode (sound, less precise).
    }
    converge(&cfg, &objs, acfg, p.entry, false).expect("context-insensitive analysis terminates")
}

struct Env<'a> {
    acfg: &'a AnalysisConfig,
    objs: &'a ObjMap,
}

/// The contexts to analyze this round: root + every recorded call site +
/// an unknown-caller fallback for functions nobody (yet) calls.
fn round_contexts(
    cfg: &Cfg,
    calls: &CallState,
    root: u64,
    fallbacks: &BTreeSet<u64>,
) -> Vec<CtxKey> {
    if !calls.enabled {
        return cfg.functions.iter().map(|&f| (f, 0)).collect();
    }
    let mut ctxs: BTreeSet<CtxKey> = BTreeSet::new();
    ctxs.insert((root, 0));
    for &key in calls.inputs.keys() {
        if cfg.functions.contains(&key.0) {
            ctxs.insert(key);
        }
    }
    for &f in fallbacks {
        ctxs.insert((f, 0));
    }
    ctxs.into_iter().collect()
}

fn converge(
    cfg: &Cfg,
    objs: &ObjMap,
    acfg: &AnalysisConfig,
    root: u64,
    ctx_on: bool,
) -> Option<Analysis> {
    let env = Env { acfg, objs };
    let mut mem = MemTypes::default();
    let mut calls = CallState {
        enabled: ctx_on,
        inputs: BTreeMap::new(),
        rets: BTreeMap::new(),
    };
    let mut fn_ctxs: HashMap<CtxKey, FnCtx> = HashMap::new();
    // Functions with no recorded caller after convergence of the called
    // set: analyzed in the unknown-caller context for soundness (they may
    // still run through computed control flow).
    let mut fallbacks: BTreeSet<u64> = BTreeSet::new();
    let max_rounds = if ctx_on { 24 } else { 16 };
    // Outer fixpoint over the shared memory typing, frame typing, and
    // (under ctx_k1) the call summaries.
    let mut rounds = 0;
    let mut contexts;
    loop {
        rounds += 1;
        let before_mem = mem.clone();
        let before_inputs = calls.inputs.clone();
        let before_rets = calls.rets.clone();
        let frames_before: BTreeMap<CtxKey, (usize, bool)> = fn_ctxs
            .iter()
            .map(|(k, c)| (*k, (c.stack_fp.len(), c.stack_any)))
            .collect();
        contexts = round_contexts(cfg, &calls, root, &fallbacks);
        for &key in &contexts {
            let ctx = fn_ctxs.entry(key).or_insert_with(FnCtx::new);
            analyze_function(cfg, key, &env, &mut mem, ctx, &mut calls, None);
        }
        let frames_after: BTreeMap<CtxKey, (usize, bool)> = fn_ctxs
            .iter()
            .map(|(k, c)| (*k, (c.stack_fp.len(), c.stack_any)))
            .collect();
        let stable = mem == before_mem
            && frames_before == frames_after
            && calls.inputs == before_inputs
            && calls.rets == before_rets;
        if stable {
            if !ctx_on {
                break;
            }
            // Pull in functions still uncalled at the fixpoint; loop again
            // if that adds work, otherwise we are done.
            let called: BTreeSet<u64> = calls.inputs.keys().map(|&(f, _)| f).collect();
            let new_fb: Vec<u64> = cfg
                .functions
                .iter()
                .copied()
                .filter(|&f| f != root && !called.contains(&f) && !fallbacks.contains(&f))
                .collect();
            if new_fb.is_empty() {
                break;
            }
            fallbacks.extend(new_fb);
        }
        if rounds > max_rounds {
            if ctx_on {
                return None;
            }
            break;
        }
    }
    // Final pass: classify sinks with the converged typing.
    let mut col = SinkCollector::default();
    for &key in &contexts {
        let ctx = fn_ctxs.entry(key).or_insert_with(FnCtx::new);
        analyze_function(cfg, key, &env, &mut mem, ctx, &mut calls, Some(&mut col));
    }
    // Blocks owned by no recovered function are reachable only through
    // computed control flow the CFG cannot see (e.g. `push addr; ret`);
    // degrade soundly: every load there is a sink.
    for (start, block) in &cfg.blocks {
        if cfg.block_fn.contains_key(start) {
            continue;
        }
        for site in &block.insts {
            match site.inst {
                Inst::Load { .. } => col.note_load(site, ALoc::Any, true),
                Inst::MovQXG { .. } => col.note_sink(site, SinkReason::MovqLeak),
                Inst::XorPd { .. } | Inst::AndPd { .. } | Inst::OrPd { .. } => {
                    col.note_sink(site, SinkReason::BitwiseFp)
                }
                _ => {}
            }
        }
    }
    let mut sinks: Vec<Sink> = col.sinks.values().copied().collect();
    let mut demoted = 0usize;
    if acfg.liveness {
        let facts = ObservationFacts {
            load_slots: col.load_slots,
            store_slots: col.store_slots,
        };
        let dead = liveness::demote_unobserved(cfg, &sinks, &facts);
        demoted = dead.len();
        sinks.retain(|s| !dead.contains(&s.addr));
    }
    let loads_total = col.load_sink.len();
    let loads_safe = col.load_sink.values().filter(|&&t| !t).count() + demoted;
    let sinks_found = sinks.len();
    Some(Analysis {
        sinks,
        stats: AnalysisStats {
            instructions: cfg.inst_count,
            blocks: cfg.blocks.len(),
            functions: cfg.functions.len(),
            contexts: contexts.len(),
            loads_total,
            loads_proven_safe: loads_safe,
            rounds,
            sinks_found,
            sinks_demoted_live: demoted,
            sinks_patched: 0,
            sinks_skipped_table_full: 0,
            sinks_skipped_straddle: 0,
        },
    })
}

/// Final-pass accumulator: per-site sink/safety verdicts (unioned across
/// contexts) plus the slot resolutions the liveness pass consumes.
#[derive(Default)]
struct SinkCollector {
    sinks: BTreeMap<u64, Sink>,
    /// Load site → classified as a sink in any context.
    load_sink: BTreeMap<u64, bool>,
    load_slots: BTreeMap<u64, Option<i64>>,
    store_slots: BTreeMap<u64, Option<i64>>,
}

impl SinkCollector {
    fn note_sink(&mut self, site: &Site, reason: SinkReason) {
        self.sinks.entry(site.addr).or_insert(Sink {
            addr: site.addr,
            inst: site.inst,
            len: site.len,
            reason,
        });
    }

    fn note_load(&mut self, site: &Site, loc: ALoc, taint: bool) {
        let e = self.load_sink.entry(site.addr).or_insert(false);
        *e |= taint;
        if taint {
            self.note_sink(site, SinkReason::IntLoadOfFp);
        }
        note_slot(&mut self.load_slots, site.addr, loc);
    }

    fn note_store(&mut self, site: &Site, loc: ALoc) {
        note_slot(&mut self.store_slots, site.addr, loc);
    }
}

/// Record the exact frame slot a site touches; conflicting resolutions
/// across contexts merge to `None` (imprecise — liveness stays safe).
fn note_slot(map: &mut BTreeMap<u64, Option<i64>>, addr: u64, loc: ALoc) {
    let slot = match loc {
        ALoc::StackOff(o) => Some(o & !7),
        _ => None,
    };
    map.entry(addr)
        .and_modify(|e| {
            if *e != slot {
                *e = None;
            }
        })
        .or_insert(slot);
}

fn analyze_function(
    cfg: &Cfg,
    key: CtxKey,
    env: &Env,
    mem: &mut MemTypes,
    ctx: &mut FnCtx,
    calls: &mut CallState,
    mut collect: Option<&mut SinkCollector>,
) {
    let (entry, ctxsite) = key;
    let blocks: Vec<&Block> = cfg.function_blocks(entry);
    if blocks.is_empty() {
        return;
    }
    let mut start = RegState::entry();
    if calls.enabled && ctxsite != 0 {
        if let Some(args) = calls.inputs.get(&key) {
            for (i, &r) in INT_ARGS.iter().enumerate() {
                start.vals[r] = args[i];
            }
        }
    }
    let mut states: HashMap<u64, RegState> = HashMap::new();
    states.insert(entry, start);
    let mut worklist: Vec<u64> = vec![entry];
    let mut visits: HashMap<u64, usize> = HashMap::new();
    while let Some(b) = worklist.pop() {
        let v = visits.entry(b).or_insert(0);
        *v += 1;
        if *v > 100 {
            continue;
        }
        let Some(block) = cfg.blocks.get(&b) else {
            continue;
        };
        if cfg.block_fn.get(&b) != Some(&entry) {
            continue;
        }
        let Some(mut s) = states.get(&b).cloned() else {
            continue;
        };
        for site in &block.insts {
            transfer(
                site,
                &mut s,
                env,
                mem,
                ctx,
                calls,
                key,
                collect.as_deref_mut(),
            );
        }
        for &succ in &block.succs {
            if cfg.block_fn.get(&succ) != Some(&entry) {
                continue;
            }
            match states.get_mut(&succ) {
                Some(st) => {
                    if st.join(&s, env.objs) {
                        worklist.push(succ);
                    }
                }
                None => {
                    states.insert(succ, s.clone());
                    worklist.push(succ);
                }
            }
        }
    }
}

fn classify_addr(s: &RegState, m: &Mem, objs: &ObjMap) -> ALoc {
    let base = match m.base {
        None => AVal::Const(0),
        Some(r) => s.vals[r.0 as usize],
    };
    let base = base.add_const(m.disp);
    let full = if let Some(index) = m.index {
        // Treat the index as an unknown offset unless it is a known const.
        match s.vals[index.0 as usize] {
            AVal::Const(c) => base.add_const(c.wrapping_mul(i64::from(m.scale))),
            _ => base.add_unknown(objs),
        }
    } else {
        base
    };
    aval_to_loc(full, objs)
}

fn aval_to_loc(v: AVal, objs: &ObjMap) -> ALoc {
    match v {
        AVal::Stack(o) => ALoc::StackOff(o),
        AVal::StackAny => ALoc::StackAny,
        AVal::Global(a) => ALoc::GlobalWord(a),
        AVal::GlobalObj(k) => ALoc::GlobalObj(k),
        AVal::GlobalAny => ALoc::GlobalAny,
        AVal::HeapSite(s) => ALoc::HeapSite(s),
        AVal::Heap => ALoc::Heap,
        AVal::Const(c) => {
            // A constant address (absolute operands).
            let u = c as u64;
            if (DATA_BASE..HEAP_BASE).contains(&u) {
                ALoc::GlobalWord(u)
            } else if u >= HEAP_BASE {
                ALoc::Heap
            } else {
                ALoc::Any
            }
        }
        AVal::Bottom | AVal::Top => ALoc::Any,
    }
    .widen_if_needed(objs)
}

trait WidenExt {
    fn widen_if_needed(self, objs: &ObjMap) -> ALoc;
}
impl WidenExt for ALoc {
    /// Widen exact locations the lattice cannot justify keeping exact:
    ///
    /// * a data-segment word outside every recorded object is a stray
    ///   computed pointer (e.g. a strided cursor that left its array) —
    ///   widen to the whole data segment;
    /// * a stack offset at or above the entry RSP points into the caller's
    ///   frame or the return-address area, where no per-function slot
    ///   discipline exists — widen to ⊤ memory.
    fn widen_if_needed(self, objs: &ObjMap) -> ALoc {
        match self {
            ALoc::GlobalWord(a) if objs.resolve(a).is_none() => ALoc::GlobalAny,
            ALoc::StackOff(o) if o >= 0 => ALoc::Any,
            x => x,
        }
    }
}

const CALLER_SAVED: [usize; 9] = [0, 1, 2, 6, 7, 8, 9, 10, 11]; // rax rcx rdx rsi rdi r8-r11

/// Integer argument registers in ABI order: rdi rsi rdx rcx r8 r9.
const INT_ARGS: [usize; 6] = [7, 6, 2, 1, 8, 9];

/// Values crossing a call boundary lose frame-relative meaning (the
/// callee's entry-RSP differs from the caller's).
fn widen_frame_escape(v: AVal) -> AVal {
    match v {
        AVal::Stack(_) | AVal::StackAny => AVal::Top,
        x => x,
    }
}

#[allow(clippy::too_many_arguments)]
fn transfer(
    site: &Site,
    s: &mut RegState,
    env: &Env,
    mem: &mut MemTypes,
    ctx: &mut FnCtx,
    calls: &mut CallState,
    cur: CtxKey,
    collect: Option<&mut SinkCollector>,
) {
    use Inst::*;
    let inst = &site.inst;
    let acfg = env.acfg;
    let objs = env.objs;
    let fm = acfg.flow_mem;
    // Helper: record a store's effect on frame-slot tracking.
    let store_slot = |s: &mut RegState, loc: ALoc, val: AVal, taint: bool| match loc {
        ALoc::StackOff(o) => {
            s.slots.insert(o & !7, (val, taint));
        }
        ALoc::StackAny | ALoc::Any => {
            // Unknown store may have clobbered any slot.
            s.slots.clear();
        }
        _ => {}
    };
    // Helper: an FP source wrote `loc`.
    let fp_store = |s: &mut RegState, mem: &mut MemTypes, ctx: &mut FnCtx, loc: ALoc| {
        mem.mark(loc, ctx);
        if fm {
            s.kills.unkill(loc, objs);
        }
    };
    match inst {
        // ---- FP stores: sources -------------------------------------------
        MovSd {
            dst: XM::Mem(m), ..
        } => {
            let loc = classify_addr(s, m, objs);
            fp_store(s, mem, ctx, loc);
            store_slot(s, loc, AVal::Top, true);
        }
        MovApd {
            dst: XM::Mem(m), ..
        } => {
            let loc = classify_addr(s, m, objs);
            fp_store(s, mem, ctx, loc);
            let loc2 = match loc {
                ALoc::StackOff(o) => ALoc::StackOff(o + 8),
                ALoc::GlobalWord(a) => ALoc::GlobalWord(a + 8),
                x => x,
            };
            fp_store(s, mem, ctx, loc2);
            store_slot(s, loc, AVal::Top, true);
            store_slot(s, loc2, AVal::Top, true);
        }
        // ---- integer world -------------------------------------------------
        MovRI { dst, imm } => {
            s.vals[dst.0 as usize] = classify_const_val(*imm);
            s.taint[dst.0 as usize] = false;
        }
        MovRR { dst, src } => {
            s.vals[dst.0 as usize] = s.vals[src.0 as usize];
            s.taint[dst.0 as usize] = s.taint[src.0 as usize];
        }
        Lea { dst, addr } => {
            let loc = classify_addr(s, addr, objs);
            s.vals[dst.0 as usize] = match loc {
                ALoc::StackOff(o) => AVal::Stack(o),
                ALoc::StackAny => AVal::StackAny,
                ALoc::GlobalWord(a) => AVal::Global(a),
                ALoc::GlobalObj(k) => AVal::GlobalObj(k),
                ALoc::GlobalAny => AVal::GlobalAny,
                ALoc::Heap => AVal::Heap,
                _ => AVal::Top,
            };
            s.taint[dst.0 as usize] = false;
        }
        Load { dst, addr, w } => {
            let loc = classify_addr(s, addr, objs);
            let (val, mut taint) = match loc {
                ALoc::StackOff(o) => match s.slots.get(&(o & !7)) {
                    Some(&(v, t)) => (v, t),
                    None => (AVal::Top, mem.maybe_fp(loc, ctx, objs)),
                },
                _ => (AVal::Top, mem.maybe_fp(loc, ctx, objs)),
            };
            // A strong update killed the location's FP typing on every
            // path here: the monotone summary is stale for this point.
            if fm && s.kills.covers(loc) {
                taint = false;
            }
            if let Some(c) = collect {
                c.note_load(site, loc, taint);
            }
            let _ = w;
            s.vals[dst.0 as usize] = val;
            // Under flow_mem the patch contract is part of the model: a
            // sink load is patched and its trap demotes, so the register
            // receives raw bits either way.
            s.taint[dst.0 as usize] = taint && !fm;
        }
        Store { addr, src, .. } => {
            let loc = classify_addr(s, addr, objs);
            let taint = s.taint[src.0 as usize];
            if taint {
                fp_store(s, mem, ctx, loc);
            } else if fm {
                s.kills.kill(loc);
            }
            // A stack pointer escaping to non-stack memory breaks frame
            // locality; flag the whole frame.
            if matches!(s.vals[src.0 as usize], AVal::Stack(_) | AVal::StackAny)
                && !matches!(loc, ALoc::StackOff(_) | ALoc::StackAny)
            {
                ctx.stack_any = true;
            }
            if let Some(c) = collect {
                c.note_store(site, loc);
            }
            store_slot(s, loc, s.vals[src.0 as usize], taint);
        }
        MovQXG { dst, .. } => {
            if let Some(c) = collect {
                c.note_sink(site, SinkReason::MovqLeak);
            }
            s.vals[dst.0 as usize] = AVal::Top;
            // Always patched; under flow_mem the demotion is modeled.
            s.taint[dst.0 as usize] = !fm;
        }
        MovQGX { .. } => {}
        XorPd { .. } | AndPd { .. } | OrPd { .. } => {
            if let Some(c) = collect {
                c.note_sink(site, SinkReason::BitwiseFp);
            }
        }
        CvtTSd2Si { dst, .. } => {
            s.vals[dst.0 as usize] = AVal::Top;
            s.taint[dst.0 as usize] = false;
        }
        AluRI { op, dst, imm } => {
            let d = dst.0 as usize;
            s.vals[d] = match op {
                AluOp::Add => s.vals[d].add_const(*imm),
                AluOp::Sub => s.vals[d].add_const(imm.wrapping_neg()),
                _ => match s.vals[d] {
                    AVal::Const(c) => eval_alu(*op, c, *imm).map_or(AVal::Top, AVal::Const),
                    _ => AVal::Top,
                },
            };
        }
        AluRR { op, dst, src } => {
            let d = dst.0 as usize;
            let sv = s.vals[src.0 as usize];
            s.vals[d] = match (op, s.vals[d], sv) {
                (AluOp::Add, a, AVal::Const(c)) => a.add_const(c),
                (AluOp::Add, AVal::Const(c), b) => b.add_const(c),
                (AluOp::Add, a, _) => a.add_unknown(objs),
                (AluOp::Sub, a, AVal::Const(c)) => a.add_const(c.wrapping_neg()),
                (_, AVal::Const(a), AVal::Const(b)) => {
                    eval_alu(*op, a, b).map_or(AVal::Top, AVal::Const)
                }
                _ => AVal::Top,
            };
            s.taint[d] = s.taint[d] || s.taint[src.0 as usize];
        }
        DivR { dst, .. } | RemR { dst, .. } => {
            s.vals[dst.0 as usize] = AVal::Top;
        }
        Push { src } => {
            let rsp = Gpr::RSP.0 as usize;
            s.vals[rsp] = s.vals[rsp].add_const(-8);
            if let AVal::Stack(o) = s.vals[rsp] {
                let t = s.taint[src.0 as usize];
                if t {
                    fp_store(s, mem, ctx, ALoc::StackOff(o));
                } else if fm {
                    s.kills.kill(ALoc::StackOff(o));
                }
                s.slots.insert(o & !7, (s.vals[src.0 as usize], t));
            }
        }
        Pop { dst } => {
            let rsp = Gpr::RSP.0 as usize;
            let (val, mut taint) = match s.vals[rsp] {
                AVal::Stack(o) => {
                    let (v, mut t) = match s.slots.get(&(o & !7)) {
                        Some(&(v, t)) => (v, t),
                        None => (AVal::Top, mem.maybe_fp(ALoc::StackOff(o), ctx, objs)),
                    };
                    if fm && s.kills.covers(ALoc::StackOff(o)) {
                        t = false;
                    }
                    (v, t)
                }
                _ => (AVal::Top, true),
            };
            if mem.any_fp {
                taint = true;
            }
            s.vals[dst.0 as usize] = val;
            s.taint[dst.0 as usize] = taint;
            s.vals[rsp] = s.vals[rsp].add_const(8);
        }
        Call { rel } => {
            let target = (site.addr + u64::from(site.len)).wrapping_add(i64::from(*rel) as u64);
            if calls.enabled {
                let key = (target, site.addr);
                let args = calls.inputs.entry(key).or_insert([AVal::Bottom; 6]);
                for (i, &r) in INT_ARGS.iter().enumerate() {
                    args[i] = args[i].join(widen_frame_escape(s.vals[r]), objs);
                }
            }
            for &r in &CALLER_SAVED {
                s.vals[r] = AVal::Top;
                // Integer return values are not FP bits under the ABI
                // discipline (FP returns travel in xmm0) — documented
                // assumption in DESIGN.md.
                s.taint[r] = false;
            }
            if calls.enabled {
                // The memoized k=1 return summary; ⊥ until a `ret` is
                // seen for this context (the outer fixpoint fills it in).
                s.vals[Gpr::RAX.0 as usize] = calls
                    .rets
                    .get(&(target, site.addr))
                    .copied()
                    .unwrap_or(AVal::Bottom);
            }
            if fm {
                // The callee may FP-store through any pointer it holds.
                s.kills = Kills::default();
            }
        }
        Ret if calls.enabled => {
            let e = calls.rets.entry(cur).or_insert(AVal::Bottom);
            *e = e.join(widen_frame_escape(s.vals[Gpr::RAX.0 as usize]), objs);
        }
        CallExt { f } => {
            let rax = Gpr::RAX.0 as usize;
            s.vals[rax] = if *f == ExtFn::AllocHeap {
                match acfg.heap {
                    // Under allocation-site partitioning the call site
                    // itself names the abstract object.
                    HeapModel::AllocSite => AVal::HeapSite(site.addr),
                    HeapModel::OneCell => AVal::Heap,
                }
            } else {
                AVal::Top
            };
            s.taint[rax] = false;
            // Runtime shims read only scalar arguments and never write
            // guest-visible memory words, so kill sets survive the call.
        }
        _ => {}
    }
}

fn eval_alu(op: AluOp, a: i64, b: i64) -> Option<i64> {
    Some(match op {
        AluOp::Add => a.wrapping_add(b),
        AluOp::Sub => a.wrapping_sub(b),
        AluOp::And => a & b,
        AluOp::Or => a | b,
        AluOp::Xor => a ^ b,
        AluOp::Shl => a.wrapping_shl(b as u32 & 63),
        AluOp::Shr => ((a as u64).wrapping_shr(b as u32 & 63)) as i64,
        AluOp::Sar => a.wrapping_shr(b as u32 & 63),
        AluOp::IMul => a.wrapping_mul(b),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use fpvm_machine::{Asm, Cond, Gpr, Mem, Width, Xmm};

    #[test]
    fn fig6_pattern_is_a_sink() {
        // The paper's Fig. 6: store a double to the stack, reload as int.
        let mut a = Asm::new();
        let c = a.f64m(1.5);
        a.alu_ri(AluOp::Sub, Gpr::RSP, 16);
        a.movsd(Xmm(0), c);
        a.movsd(Mem::base_disp(Gpr::RSP, 8), Xmm(0)); // source
        a.load_w(Gpr::RAX, Mem::base_disp(Gpr::RSP, 8), Width::W32); // sink
        a.halt();
        let p = a.finish();
        let an = analyze(&p);
        assert_eq!(an.sinks.len(), 1);
        assert_eq!(an.sinks[0].reason, SinkReason::IntLoadOfFp);
        assert!(matches!(an.sinks[0].inst, Inst::Load { .. }));
    }

    #[test]
    fn integer_only_loads_proven_safe() {
        let mut a = Asm::new();
        let g = a.global("counter", 8);
        a.mov_ri(Gpr::RAX, 5);
        a.store(Mem::abs(g as i64), Gpr::RAX);
        a.load(Gpr::RBX, Mem::abs(g as i64));
        a.halt();
        let p = a.finish();
        let an = analyze(&p);
        assert!(an.sinks.is_empty(), "{:?}", an.sinks);
        assert_eq!(an.stats.loads_total, 1);
        assert_eq!(an.stats.loads_proven_safe, 1);
    }

    #[test]
    fn movq_and_bitwise_always_sinks() {
        let mut a = Asm::new();
        let mask = a.u128c([1 << 63, 0]);
        a.movq_xg(Gpr::RAX, Xmm(0));
        a.xorpd(Xmm(0), Mem::abs(mask as i64));
        a.halt();
        let p = a.finish();
        let an = analyze(&p);
        assert_eq!(an.sinks.len(), 2);
        assert_eq!(an.sinks[0].reason, SinkReason::MovqLeak);
        assert_eq!(an.sinks[1].reason, SinkReason::BitwiseFp);
    }

    #[test]
    fn fig7_heap_indirection_is_conservative() {
        // Fig. 7: FP stored through a heap pointer, integer loaded back.
        let mut a = Asm::new();
        let c = a.f64m(2.5);
        a.mov_ri(Gpr::RDI, 16);
        a.call_ext(ExtFn::AllocHeap);
        a.movsd(Xmm(0), c);
        a.movsd(Mem::base_disp(Gpr::RAX, 8), Xmm(0)); // ptr->d = fp
        a.mov_ri(Gpr::RDX, 0);
        a.store(Mem::base_disp(Gpr::RAX, 0), Gpr::RDX); // ptr->i = 0
        a.load_w(Gpr::RCX, Mem::base_disp(Gpr::RAX, 8), Width::W32); // sink
        a.halt();
        let p = a.finish();
        let an = analyze(&p);
        assert!(
            an.sinks.iter().any(|s| s.reason == SinkReason::IntLoadOfFp),
            "heap load after heap FP store must be a sink: {:?}",
            an.sinks
        );
        // The heap summary is one cell: no heap load can be proven safe
        // once any FP value landed on the heap (conservative imprecision —
        // exactly the Enzo situation of §5.3).
        assert_eq!(an.stats.loads_total, 1);
        assert_eq!(an.stats.loads_proven_safe, 0);
    }

    #[test]
    fn alloc_site_partitioning_separates_heap_allocations() {
        // Two allocations from distinct call sites: FP lands in the first,
        // integers in the second. One-cell merges them (both loads sink);
        // allocation-site partitioning proves the integer-only load safe.
        let mut a = Asm::new();
        let c = a.f64m(2.5);
        a.mov_ri(Gpr::RDI, 32);
        a.call_ext(ExtFn::AllocHeap); // site A
        a.mov_rr(Gpr::RBX, Gpr::RAX);
        a.mov_ri(Gpr::RDI, 32);
        a.call_ext(ExtFn::AllocHeap); // site B
        a.movsd(Xmm(0), c);
        a.movsd(Mem::base_disp(Gpr::RBX, 0), Xmm(0)); // FP -> A
        a.mov_ri(Gpr::RDX, 7);
        a.store(Mem::base_disp(Gpr::RAX, 0), Gpr::RDX); // int -> B
        a.load(Gpr::RCX, Mem::base_disp(Gpr::RAX, 0)); // from B: safe
        a.load(Gpr::RSI, Mem::base_disp(Gpr::RBX, 0)); // from A: sink
        a.halt();
        let p = a.finish();

        let one = analyze(&p);
        assert_eq!(one.stats.loads_total, 2);
        assert_eq!(
            one.stats.loads_proven_safe, 0,
            "one-cell heap must merge both allocations"
        );

        let cfg = AnalysisConfig {
            heap: HeapModel::AllocSite,
            ..Default::default()
        };
        let an = analyze_with(&p, &cfg);
        assert_eq!(an.stats.loads_total, 2);
        assert_eq!(
            an.stats.loads_proven_safe, 1,
            "alloc-site heap must prove the integer allocation safe: {:?}",
            an.sinks
        );
        assert_eq!(
            an.sinks
                .iter()
                .filter(|s| s.reason == SinkReason::IntLoadOfFp)
                .count(),
            1
        );
        // The FP-bearing allocation is still a sink under both models
        // (soundness is preserved; only precision improves).
        assert!(an.sinks.iter().all(|s| one
            .sinks
            .iter()
            .any(|o| o.addr == s.addr && o.reason == s.reason)));
    }

    #[test]
    fn taint_through_gpr_store() {
        // movq leak -> integer store -> integer load elsewhere: the final
        // load must be a sink even though no FP store wrote that word.
        let mut a = Asm::new();
        let g = a.global("slot", 8);
        a.movq_xg(Gpr::RAX, Xmm(3));
        a.store(Mem::abs(g as i64), Gpr::RAX);
        a.load(Gpr::RBX, Mem::abs(g as i64));
        a.halt();
        let p = a.finish();
        let an = analyze(&p);
        let load_sinks: Vec<_> = an
            .sinks
            .iter()
            .filter(|s| s.reason == SinkReason::IntLoadOfFp)
            .collect();
        assert_eq!(load_sinks.len(), 1);
    }

    #[test]
    fn distinct_globals_are_distinguished() {
        // FP in global A, integer in global B: loading B is safe, loading
        // A is a sink.
        let mut a = Asm::new();
        let ga = a.global_f64("a", 0.0);
        let gb = a.global("b", 8);
        let c = a.f64m(1.5);
        a.movsd(Xmm(0), c);
        a.movsd(Mem::abs(ga as i64), Xmm(0));
        a.mov_ri(Gpr::RAX, 1);
        a.store(Mem::abs(gb as i64), Gpr::RAX);
        a.load(Gpr::RBX, Mem::abs(gb as i64)); // safe
        a.load(Gpr::RCX, Mem::abs(ga as i64)); // sink
        a.halt();
        let p = a.finish();
        let an = analyze(&p);
        assert_eq!(an.stats.loads_total, 2);
        assert_eq!(an.stats.loads_proven_safe, 1);
        assert_eq!(an.sinks.len(), 1);
    }

    #[test]
    fn object_granularity_separates_arrays() {
        // FP array and integer index array as distinct global objects,
        // accessed through computed indices: integer loads from the index
        // array stay safe even though the FP array is written.
        let mut a = Asm::new();
        let fp_arr = a.f64_array("vals", &[0.0; 16]);
        let idx_arr = a.i64_array("cols", &[0; 16]);
        let c = a.f64m(3.25);
        // vals[rcx*8] = 3.25 (computed index).
        a.mov_ri(Gpr::RCX, 5);
        a.mov_ri(Gpr::RBX, fp_arr as i64);
        a.movsd(Xmm(0), c);
        a.movsd(Mem::bis(Gpr::RBX, Gpr::RCX, 8, 0), Xmm(0));
        // rax = cols[rcx*8] — integer array, must be safe.
        a.mov_ri(Gpr::RDX, idx_arr as i64);
        a.load(Gpr::RAX, Mem::bis(Gpr::RDX, Gpr::RCX, 8, 0));
        // rbx2 = vals[rcx*8] as integer — must be a sink.
        a.load(Gpr::RSI, Mem::bis(Gpr::RBX, Gpr::RCX, 8, 0));
        a.halt();
        let p = a.finish();
        let an = analyze(&p);
        assert_eq!(an.stats.loads_total, 2);
        assert_eq!(an.stats.loads_proven_safe, 1, "{:?}", an.sinks);
        assert_eq!(an.sinks.len(), 1);
    }

    #[test]
    fn pointer_roundtrip_through_frame_slot() {
        // A global pointer spilled to the frame and reloaded must keep its
        // object identity (the -O0 codegen pattern).
        let mut a = Asm::new();
        let fp_arr = a.f64_array("vals", &[0.0; 8]);
        let int_arr = a.i64_array("idx", &[0; 8]);
        let c = a.f64m(1.5);
        a.alu_ri(AluOp::Sub, Gpr::RSP, 32);
        // Spill &vals and &idx to the frame.
        a.mov_ri(Gpr::RAX, fp_arr as i64);
        a.store(Mem::base_disp(Gpr::RSP, 0), Gpr::RAX);
        a.mov_ri(Gpr::RAX, int_arr as i64);
        a.store(Mem::base_disp(Gpr::RSP, 8), Gpr::RAX);
        // Store FP through the reloaded vals pointer.
        a.load(Gpr::RCX, Mem::base_disp(Gpr::RSP, 0));
        a.movsd(Xmm(0), c);
        a.movsd(Mem::base_disp(Gpr::RCX, 16), Xmm(0));
        // Integer-load through the reloaded idx pointer: SAFE.
        a.load(Gpr::RCX, Mem::base_disp(Gpr::RSP, 8));
        a.load(Gpr::RAX, Mem::base_disp(Gpr::RCX, 16));
        a.halt();
        let p = a.finish();
        let an = analyze(&p);
        // 3 integer loads total: the two pointer reloads + idx[2].
        assert_eq!(an.stats.loads_total, 3);
        assert_eq!(
            an.stats.loads_proven_safe, 3,
            "pointer identity must survive the frame round-trip: {:?}",
            an.sinks
        );
    }

    #[test]
    fn loop_fixpoint_converges() {
        // FP store happens on a back edge after the load in program order:
        // the fixpoint must still flag the load.
        let mut a = Asm::new();
        let g = a.global("x", 8);
        let c = a.f64m(1.5);
        a.mov_ri(Gpr::RCX, 0);
        let top = a.here_label();
        let done = a.label();
        a.cmp_ri(Gpr::RCX, 4);
        a.jcc(fpvm_machine::Cond::Ge, done);
        a.load(Gpr::RAX, Mem::abs(g as i64)); // reads FP on iterations > 0
        a.movsd(Xmm(0), c);
        a.movsd(Mem::abs(g as i64), Xmm(0)); // source, later in the loop
        a.alu_ri(AluOp::Add, Gpr::RCX, 1);
        a.jmp(top);
        a.bind(done);
        a.halt();
        let p = a.finish();
        let an = analyze(&p);
        assert!(
            an.sinks.iter().any(|s| s.reason == SinkReason::IntLoadOfFp),
            "loop-carried FP flow must be found"
        );
    }

    #[test]
    fn calls_are_analyzed_interprocedurally() {
        // Callee stores FP to a global; caller integer-loads it.
        let mut a = Asm::new();
        let g = a.global_f64("shared", 0.0);
        let c = a.f64m(3.5);
        let f = a.label();
        a.call(f);
        a.load(Gpr::RAX, Mem::abs(g as i64)); // sink
        a.halt();
        a.bind(f);
        a.movsd(Xmm(0), c);
        a.movsd(Mem::abs(g as i64), Xmm(0));
        a.ret();
        let p = a.finish();
        let an = analyze(&p);
        assert_eq!(
            an.sinks
                .iter()
                .filter(|s| s.reason == SinkReason::IntLoadOfFp)
                .count(),
            1
        );
        assert!(an.stats.functions >= 2);
    }

    // ---- second-generation passes -------------------------------------

    #[test]
    fn strided_stack_loop_widens_without_poisoning_globals() {
        // A cursor walking the frame across a back-edge joins to the
        // frame summary (StackAny) instead of ⊤, so the FP stores through
        // it poison only stack typing — an unrelated global integer load
        // stays provably safe (pre-widening it degraded to any_fp and
        // everything sank).
        let mut a = Asm::new();
        let g = a.global("counter", 8);
        let c = a.f64m(1.0);
        a.alu_ri(AluOp::Sub, Gpr::RSP, 64);
        a.mov_rr(Gpr::RBX, Gpr::RSP); // cursor
        a.mov_ri(Gpr::RCX, 0);
        let top = a.here_label();
        let done = a.label();
        a.cmp_ri(Gpr::RCX, 4);
        a.jcc(Cond::Ge, done);
        a.movsd(Xmm(0), c);
        a.movsd(Mem::base_disp(Gpr::RBX, 0), Xmm(0)); // *cursor = fp
        a.alu_ri(AluOp::Add, Gpr::RBX, 8); // cursor += 8 (strided)
        a.alu_ri(AluOp::Add, Gpr::RCX, 1);
        a.jmp(top);
        a.bind(done);
        a.mov_ri(Gpr::RAX, 7);
        a.store(Mem::abs(g as i64), Gpr::RAX);
        a.load(Gpr::RDX, Mem::abs(g as i64)); // must stay safe
        a.halt();
        let p = a.finish();
        let an = analyze(&p);
        assert_eq!(an.stats.loads_total, 1);
        assert_eq!(
            an.stats.loads_proven_safe, 1,
            "a widened stack cursor must not poison global typing: {:?}",
            an.sinks
        );
        // And the conservative side: a frame load in the same function IS
        // suspect once the widened cursor wrote FP somewhere in the frame.
        let mut b = Asm::new();
        let c2 = b.f64m(1.0);
        b.alu_ri(AluOp::Sub, Gpr::RSP, 64);
        b.mov_rr(Gpr::RBX, Gpr::RSP);
        b.mov_ri(Gpr::RCX, 0);
        let top2 = b.here_label();
        let done2 = b.label();
        b.cmp_ri(Gpr::RCX, 4);
        b.jcc(Cond::Ge, done2);
        b.movsd(Xmm(0), c2);
        b.movsd(Mem::base_disp(Gpr::RBX, 0), Xmm(0));
        b.alu_ri(AluOp::Add, Gpr::RBX, 8);
        b.alu_ri(AluOp::Add, Gpr::RCX, 1);
        b.jmp(top2);
        b.bind(done2);
        b.load(Gpr::RDX, Mem::base_disp(Gpr::RSP, 48)); // frame slot: sink
        b.halt();
        let p2 = b.finish();
        let an2 = analyze(&p2);
        assert!(
            an2.sinks
                .iter()
                .any(|s| s.reason == SinkReason::IntLoadOfFp),
            "frame loads must stay conservative under the widened cursor"
        );
    }

    #[test]
    fn stray_global_pointer_widens_to_segment() {
        // A computed data-segment address outside every recorded object
        // widens to GlobalAny: an FP store through it must make global
        // loads conservative rather than silently staying "exact word".
        let mut a = Asm::new();
        let g = a.global("n", 8);
        let c = a.f64m(1.0);
        // A stray pointer: mid-segment, far past the last object.
        a.mov_ri(Gpr::RBX, (DATA_BASE + 0x8_0000) as i64);
        a.movsd(Xmm(0), c);
        a.movsd(Mem::base_disp(Gpr::RBX, 0), Xmm(0));
        a.load(Gpr::RAX, Mem::abs(g as i64)); // conservative: sink
        a.halt();
        let p = a.finish();
        let an = analyze(&p);
        assert!(
            an.sinks.iter().any(|s| s.reason == SinkReason::IntLoadOfFp),
            "stray-pointer FP store must degrade to the whole segment"
        );
    }

    #[test]
    fn flow_mem_strong_update_survives_unknown_int_store() {
        // FP spill types a slot; an integer store strongly updates it;
        // then an unknown (untainted) store wipes the slot *value* map.
        // The monotone typing calls the reload a sink; the kill set knows
        // the last write was an integer.
        let mut a = Asm::new();
        let g = a.global("cell", 8);
        let c = a.f64m(1.5);
        a.alu_ri(AluOp::Sub, Gpr::RSP, 32);
        a.movsd(Xmm(0), c);
        a.movsd(Mem::base_disp(Gpr::RSP, 8), Xmm(0)); // slot ← FP
        a.mov_ri(Gpr::RAX, 7);
        a.store(Mem::base_disp(Gpr::RSP, 8), Gpr::RAX); // strong update
        a.load(Gpr::RDX, Mem::abs(g as i64)); // RDX = ⊤ (safe load)
        a.mov_ri(Gpr::RCX, 1);
        a.store(Mem::base_disp(Gpr::RDX, 0), Gpr::RCX); // unknown int store
        a.load(Gpr::RBX, Mem::base_disp(Gpr::RSP, 8)); // the reload
        a.halt();
        let p = a.finish();
        let base = analyze(&p);
        assert_eq!(
            base.stats.loads_proven_safe, 1,
            "monotone typing must flag the reload: {:?}",
            base.sinks
        );
        let an = analyze_with(
            &p,
            &AnalysisConfig {
                flow_mem: true,
                ..Default::default()
            },
        );
        assert_eq!(
            an.stats.loads_proven_safe, 2,
            "the strong update must survive the unknown integer store: {:?}",
            an.sinks
        );
        assert!(!an.sinks.iter().any(|s| s.reason == SinkReason::IntLoadOfFp));
    }

    #[test]
    fn flow_mem_models_demotion_and_stops_taint_cascade() {
        // Heap sink load → result relayed through a global → reload. The
        // first-generation analysis cascades the taint (both loads sink);
        // flow_mem knows the first sink is patched and demotes, so the
        // relay holds raw bits and the reload is safe.
        let mut a = Asm::new();
        let g = a.global("relay", 8);
        let c = a.f64m(2.5);
        a.mov_ri(Gpr::RDI, 16);
        a.call_ext(ExtFn::AllocHeap);
        a.movsd(Xmm(0), c);
        a.movsd(Mem::base_disp(Gpr::RAX, 0), Xmm(0)); // FP → heap
        a.load(Gpr::RBX, Mem::base_disp(Gpr::RAX, 0)); // sink (stays)
        a.store(Mem::abs(g as i64), Gpr::RBX); // the cascade relay
        a.load(Gpr::RCX, Mem::abs(g as i64)); // cascade victim
        a.halt();
        let p = a.finish();
        let base = analyze(&p);
        assert_eq!(
            base.sinks
                .iter()
                .filter(|s| s.reason == SinkReason::IntLoadOfFp)
                .count(),
            2,
            "first-generation: the taint cascades"
        );
        let an = analyze_with(
            &p,
            &AnalysisConfig {
                flow_mem: true,
                ..Default::default()
            },
        );
        assert_eq!(
            an.sinks
                .iter()
                .filter(|s| s.reason == SinkReason::IntLoadOfFp)
                .count(),
            1,
            "flow_mem: the patched sink demotes, the relay is raw: {:?}",
            an.sinks
        );
        assert_eq!(an.stats.loads_total, 2);
        assert_eq!(an.stats.loads_proven_safe, 1);
    }

    #[test]
    fn ctx_k1_keeps_argument_pointers_precise() {
        // A helper stores FP through its pointer argument. Context-
        // insensitively the argument is ⊤ and the store poisons all
        // memory (any_fp); with k=1 summaries each call site's target is
        // marked exactly and an unrelated integer global stays safe.
        let mut a = Asm::new();
        let fa = a.global_f64("fa", 0.0);
        let fb = a.global_f64("fb", 0.0);
        let gi = a.global("counter", 8);
        let c = a.f64m(2.0);
        let h = a.label();
        a.movsd(Xmm(0), c);
        a.mov_ri(Gpr::RDI, fa as i64);
        a.call(h); // site 1: FP → fa
        a.mov_ri(Gpr::RDI, fb as i64);
        a.call(h); // site 2: FP → fb
        a.mov_ri(Gpr::RAX, 3);
        a.store(Mem::abs(gi as i64), Gpr::RAX);
        a.load(Gpr::RBX, Mem::abs(gi as i64)); // unrelated int global
        a.halt();
        a.bind(h);
        a.movsd(Mem::base_disp(Gpr::RDI, 0), Xmm(0));
        a.ret();
        let p = a.finish();
        let base = analyze(&p);
        assert!(
            base.sinks
                .iter()
                .any(|s| s.reason == SinkReason::IntLoadOfFp),
            "context-insensitive: the ⊤-argument store poisons everything"
        );
        let an = analyze_with(
            &p,
            &AnalysisConfig {
                ctx_k1: true,
                ..Default::default()
            },
        );
        assert!(
            !an.sinks.iter().any(|s| s.reason == SinkReason::IntLoadOfFp),
            "k=1 contexts must keep the argument pointers exact: {:?}",
            an.sinks
        );
        assert!(
            an.stats.contexts >= 3,
            "root + one context per call site: {}",
            an.stats.contexts
        );
    }

    #[test]
    fn ctx_k1_tracks_return_values() {
        // A helper returns a fresh allocation; the caller stores/loads
        // integers through it. With alloc-site + k=1 return summaries the
        // load is provably outside the FP-bearing allocation; without
        // context the returned pointer is ⊤ and the load sinks.
        let mut a = Asm::new();
        let c = a.f64m(1.0);
        let h = a.label();
        a.mov_ri(Gpr::RDI, 16);
        a.call_ext(ExtFn::AllocHeap); // site X (caller's own)
        a.movsd(Xmm(0), c);
        a.movsd(Mem::base_disp(Gpr::RAX, 0), Xmm(0)); // FP → X
        a.call(h); // RAX ← fresh allocation from site Y
        a.mov_ri(Gpr::RDX, 5);
        a.store(Mem::base_disp(Gpr::RAX, 0), Gpr::RDX); // int → Y
        a.load(Gpr::RCX, Mem::base_disp(Gpr::RAX, 0)); // int ← Y
        a.halt();
        a.bind(h);
        a.mov_ri(Gpr::RDI, 16);
        a.call_ext(ExtFn::AllocHeap); // site Y
        a.ret();
        let p = a.finish();
        let base = analyze_with(
            &p,
            &AnalysisConfig {
                heap: HeapModel::AllocSite,
                ..Default::default()
            },
        );
        assert!(
            base.sinks
                .iter()
                .any(|s| s.reason == SinkReason::IntLoadOfFp),
            "without return summaries the helper's pointer is ⊤"
        );
        let an = analyze_with(
            &p,
            &AnalysisConfig {
                heap: HeapModel::AllocSite,
                ctx_k1: true,
                ..Default::default()
            },
        );
        assert!(
            !an.sinks.iter().any(|s| s.reason == SinkReason::IntLoadOfFp),
            "the k=1 return summary must carry the allocation site: {:?}",
            an.sinks
        );
    }

    #[test]
    fn ctx_k1_horizon_joins_distinct_callers() {
        // Two sites pass an FP pointer and an int pointer; the helper
        // *loads* through the argument. The load site is shared, so the
        // union over contexts must keep it a sink (soundness at the k=1
        // horizon: one tainted context taints the shared instruction).
        let mut a = Asm::new();
        let fa = a.global_f64("fa", 0.0);
        let gi = a.global("gi", 8);
        let c = a.f64m(2.0);
        let h = a.label();
        a.movsd(Xmm(0), c);
        a.movsd(Mem::abs(fa as i64), Xmm(0));
        a.mov_ri(Gpr::RAX, 3);
        a.store(Mem::abs(gi as i64), Gpr::RAX);
        a.mov_ri(Gpr::RDI, fa as i64);
        a.call(h); // context 1: loads FP bits
        a.mov_ri(Gpr::RDI, gi as i64);
        a.call(h); // context 2: loads an integer
        a.halt();
        a.bind(h);
        a.load(Gpr::RAX, Mem::base_disp(Gpr::RDI, 0));
        a.ret();
        let p = a.finish();
        let an = analyze_with(
            &p,
            &AnalysisConfig {
                ctx_k1: true,
                ..Default::default()
            },
        );
        assert!(
            an.sinks.iter().any(|s| s.reason == SinkReason::IntLoadOfFp),
            "a load tainted in any context must remain a sink"
        );
    }

    #[test]
    fn all_passes_compose_and_only_refine() {
        // Every ablation config on a program mixing all the patterns:
        // sink sets must be subsets of the baseline (refinement only) and
        // the genuinely-boxed load must sink in every config.
        let mut a = Asm::new();
        let g = a.global("relay", 8);
        let c = a.f64m(2.5);
        a.alu_ri(AluOp::Sub, Gpr::RSP, 32);
        a.mov_ri(Gpr::RDI, 16);
        a.call_ext(ExtFn::AllocHeap);
        a.movsd(Xmm(0), c);
        a.movsd(Mem::base_disp(Gpr::RAX, 0), Xmm(0));
        a.load(Gpr::RBX, Mem::base_disp(Gpr::RAX, 0)); // true sink
        a.store(Mem::abs(g as i64), Gpr::RBX);
        a.load(Gpr::RCX, Mem::abs(g as i64)); // cascade victim
        a.alu_ri(AluOp::Add, Gpr::RCX, 1); // observed
        a.halt();
        let p = a.finish();
        let base = analyze(&p);
        let base_addrs: Vec<u64> = base.sinks.iter().map(|s| s.addr).collect();
        for (fmem, ctx, live) in [
            (true, false, false),
            (false, true, false),
            (false, false, true),
            (true, true, true),
        ] {
            let an = analyze_with(
                &p,
                &AnalysisConfig {
                    heap: HeapModel::AllocSite,
                    flow_mem: fmem,
                    ctx_k1: ctx,
                    liveness: live,
                },
            );
            assert!(
                an.sinks.iter().all(|s| base_addrs.contains(&s.addr)),
                "config ({fmem},{ctx},{live}) added a sink beyond baseline"
            );
            assert!(
                an.sinks.iter().any(|s| s.reason == SinkReason::IntLoadOfFp),
                "the genuinely-boxed heap load must survive every config"
            );
        }
    }
}
