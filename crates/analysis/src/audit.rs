//! Soundness/precision audit: diff the dynamic taint oracle against the
//! static sink set.
//!
//! The machine's taint plane (`fpvm_machine::taint`) observes, at run time,
//! every integer-world instruction that consumes bits which may carry a
//! NaN-box at a site the patcher did *not* trap. This module is the offline
//! half: given the static [`Analysis`], the set of addresses actually
//! patched, per-site correctness-trap observations, and the taint plane's
//! site map, it classifies every site:
//!
//! * **Confirmed** — patched, and at least one trap demoted a live box: the
//!   static sink was real.
//! * **Spurious** — patched and exercised, but no trap ever found a box:
//!   precision loss; every one of those traps was wasted work.
//! * **Unexercised** — patched but never reached (or a skipped sink that
//!   never leaked); says nothing either way. Coverage is only as good as
//!   the executed paths.
//! * **Missed** — the oracle saw actual NaN-box bits enter the integer
//!   world at an unpatched site: a soundness hole. Hard failure.
//! * **TaintedOnly** — an unpatched site consumed may-box bits that never
//!   actually held a box in this run. Informational: the oracle cannot
//!   rule the site out, but it produced no evidence against the analysis.
//!
//! Precision = confirmed / (confirmed + spurious); recall = confirmed /
//! (confirmed + missed), reported overall and per [`SinkReason`].

use crate::vsa::{Analysis, SinkReason};
use fpvm_machine::{TaintSinkKind, TaintSite};
use std::collections::{BTreeMap, BTreeSet};

/// Dynamic observations at one patched sink, accumulated from
/// `TraceEvent::CorrectnessTrap` events.
#[derive(Debug, Clone, Copy, Default)]
pub struct SiteDyn {
    /// Correctness traps taken at this site.
    pub traps: u64,
    /// Traps that demoted at least one live box.
    pub demotions: u64,
    /// Total dispatch + handler cycles charged at this site.
    pub cycles: u64,
    /// Cycles charged by traps that demoted nothing.
    pub wasted_cycles: u64,
}

impl SiteDyn {
    /// Fold one trap event into the accumulator.
    pub fn record(&mut self, demoted: bool, cycles: u64) {
        self.traps += 1;
        self.cycles += cycles;
        if demoted {
            self.demotions += 1;
        } else {
            self.wasted_cycles += cycles;
        }
    }
}

/// Audit verdict for one site.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SiteClass {
    /// Patched sink whose trap demoted a real box: true positive.
    Confirmed,
    /// Patched sink that trapped but never demoted: false positive.
    Spurious,
    /// Never exercised by the workload; no verdict.
    Unexercised,
    /// Unpatched site where the oracle observed real box bits: soundness
    /// hole, hard failure.
    Missed,
    /// Unpatched site that consumed may-box bits which never held a box.
    TaintedOnly,
}

/// One classified site in the audit report.
#[derive(Debug, Clone, Copy)]
pub struct AuditSite {
    /// Instruction address.
    pub addr: u64,
    /// Sink classification (static reason, or the oracle's kind mapped
    /// onto it for dynamic-only sites).
    pub reason: SinkReason,
    /// The verdict.
    pub class: SiteClass,
    /// Dynamic executions observed: trap count for patched sites, taint
    /// hits for unpatched ones.
    pub hits: u64,
    /// Box evidence: demoting traps for patched sites, boxed hits for
    /// unpatched ones.
    pub box_hits: u64,
    /// Cycles wasted at this site (spurious sites only).
    pub wasted_cycles: u64,
}

/// Confusion counts and derived metrics for one sink reason (or overall).
#[derive(Debug, Clone, Copy, Default)]
pub struct ReasonMetrics {
    /// True positives.
    pub confirmed: usize,
    /// False positives (patched, exercised, never demoted).
    pub spurious: usize,
    /// Sites with no dynamic verdict.
    pub unexercised: usize,
    /// Soundness holes.
    pub missed: usize,
}

impl ReasonMetrics {
    fn add(&mut self, class: SiteClass) {
        match class {
            SiteClass::Confirmed => self.confirmed += 1,
            SiteClass::Spurious => self.spurious += 1,
            SiteClass::Unexercised => self.unexercised += 1,
            SiteClass::Missed => self.missed += 1,
            SiteClass::TaintedOnly => {}
        }
    }

    /// confirmed / (confirmed + spurious); 1.0 when nothing was exercised.
    pub fn precision(&self) -> f64 {
        let d = self.confirmed + self.spurious;
        if d == 0 {
            1.0
        } else {
            self.confirmed as f64 / d as f64
        }
    }

    /// confirmed / (confirmed + missed); 1.0 when nothing leaked.
    pub fn recall(&self) -> f64 {
        let d = self.confirmed + self.missed;
        if d == 0 {
            1.0
        } else {
            self.confirmed as f64 / d as f64
        }
    }
}

/// The full audit result for one (program, workload) run.
#[derive(Debug, Clone, Default)]
pub struct AuditReport {
    /// Every classified site, sorted by address.
    pub sites: Vec<AuditSite>,
    /// Metrics per sink reason.
    pub per_reason: Vec<(SinkReason, ReasonMetrics)>,
    /// Overall metrics.
    pub total: ReasonMetrics,
    /// Unpatched sites that consumed may-box bits without evidence.
    pub tainted_only: usize,
    /// Correctness-trap cycles wasted at spurious sinks.
    pub wasted_cycles: u64,
}

impl AuditReport {
    /// No missed sinks: the static analysis was sound on the paths this
    /// workload executed.
    pub fn is_sound(&self) -> bool {
        self.total.missed == 0
    }

    /// The addresses of every missed (soundness-hole) site.
    pub fn missed_addrs(&self) -> Vec<u64> {
        self.sites
            .iter()
            .filter(|s| s.class == SiteClass::Missed)
            .map(|s| s.addr)
            .collect()
    }
}

fn kind_to_reason(k: TaintSinkKind) -> SinkReason {
    match k {
        TaintSinkKind::IntLoad => SinkReason::IntLoadOfFp,
        TaintSinkKind::MovqLeak => SinkReason::MovqLeak,
        TaintSinkKind::BitwiseFp => SinkReason::BitwiseFp,
    }
}

const REASONS: [SinkReason; 3] = [
    SinkReason::IntLoadOfFp,
    SinkReason::MovqLeak,
    SinkReason::BitwiseFp,
];

/// Classify every static sink and every dynamic taint site.
///
/// * `analysis` — the static result whose sink set is being audited;
/// * `patched` — addresses actually rewritten into correctness traps (the
///   side table; may be smaller than the sink set when the patcher skipped
///   sites);
/// * `traps` — per-site correctness-trap observations from the run;
/// * `taint_sites` — the taint plane's site map (only unpatched sites are
///   recorded there by construction).
pub fn audit(
    analysis: &Analysis,
    patched: &BTreeSet<u64>,
    traps: &BTreeMap<u64, SiteDyn>,
    taint_sites: &BTreeMap<u64, TaintSite>,
) -> AuditReport {
    let mut sites = Vec::new();
    let static_addrs: BTreeSet<u64> = analysis.sinks.iter().map(|s| s.addr).collect();
    for sink in &analysis.sinks {
        let site = if patched.contains(&sink.addr) {
            let d = traps.get(&sink.addr).copied().unwrap_or_default();
            let class = if d.demotions > 0 {
                SiteClass::Confirmed
            } else if d.traps > 0 {
                SiteClass::Spurious
            } else {
                SiteClass::Unexercised
            };
            AuditSite {
                addr: sink.addr,
                reason: sink.reason,
                class,
                hits: d.traps,
                box_hits: d.demotions,
                wasted_cycles: if class == SiteClass::Spurious {
                    d.wasted_cycles
                } else {
                    0
                },
            }
        } else {
            // A sink the patcher skipped: the oracle watches it directly.
            let (hits, boxed) = taint_sites
                .get(&sink.addr)
                .map_or((0, 0), |t| (t.hits, t.boxed_hits));
            let class = if boxed > 0 {
                SiteClass::Missed
            } else if hits > 0 {
                SiteClass::TaintedOnly
            } else {
                SiteClass::Unexercised
            };
            AuditSite {
                addr: sink.addr,
                reason: sink.reason,
                class,
                hits,
                box_hits: boxed,
                wasted_cycles: 0,
            }
        };
        sites.push(site);
    }
    // Dynamic sites the analysis never flagged.
    for (&addr, t) in taint_sites {
        if static_addrs.contains(&addr) {
            continue;
        }
        let class = if t.boxed_hits > 0 {
            SiteClass::Missed
        } else {
            SiteClass::TaintedOnly
        };
        sites.push(AuditSite {
            addr,
            reason: kind_to_reason(t.kind),
            class,
            hits: t.hits,
            box_hits: t.boxed_hits,
            wasted_cycles: 0,
        });
    }
    sites.sort_by_key(|s| s.addr);

    let mut total = ReasonMetrics::default();
    let mut by_reason: BTreeMap<usize, ReasonMetrics> = BTreeMap::new();
    let mut tainted_only = 0;
    let mut wasted_cycles = 0;
    for s in &sites {
        total.add(s.class);
        let idx = REASONS.iter().position(|&r| r == s.reason).unwrap_or(0);
        by_reason.entry(idx).or_default().add(s.class);
        if s.class == SiteClass::TaintedOnly {
            tainted_only += 1;
        }
        wasted_cycles += s.wasted_cycles;
    }
    let per_reason = REASONS
        .iter()
        .enumerate()
        .filter_map(|(i, &r)| by_reason.get(&i).map(|m| (r, *m)))
        .collect();
    AuditReport {
        sites,
        per_reason,
        total,
        tainted_only,
        wasted_cycles,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::vsa::{AnalysisStats, Sink};
    use fpvm_machine::Inst;

    fn sinks(addrs: &[(u64, SinkReason)]) -> Analysis {
        Analysis {
            sinks: addrs
                .iter()
                .map(|&(addr, reason)| Sink {
                    addr,
                    inst: Inst::Nop,
                    len: 3,
                    reason,
                })
                .collect(),
            stats: AnalysisStats::default(),
        }
    }

    fn taint_site(kind: TaintSinkKind, hits: u64, boxed_hits: u64) -> TaintSite {
        TaintSite {
            inst: Inst::Nop,
            kind,
            hits,
            boxed_hits,
        }
    }

    #[test]
    fn confirmed_spurious_unexercised() {
        let an = sinks(&[
            (0x1000, SinkReason::IntLoadOfFp),
            (0x1010, SinkReason::IntLoadOfFp),
            (0x1020, SinkReason::MovqLeak),
        ]);
        let patched: BTreeSet<u64> = [0x1000, 0x1010, 0x1020].into();
        let mut traps = BTreeMap::new();
        let mut a = SiteDyn::default();
        a.record(true, 100);
        a.record(false, 100);
        traps.insert(0x1000, a);
        let mut b = SiteDyn::default();
        b.record(false, 70);
        b.record(false, 70);
        traps.insert(0x1010, b);
        let report = audit(&an, &patched, &traps, &BTreeMap::new());
        assert!(report.is_sound());
        assert_eq!(report.total.confirmed, 1);
        assert_eq!(report.total.spurious, 1);
        assert_eq!(report.total.unexercised, 1);
        assert_eq!(report.wasted_cycles, 140, "only spurious sites count");
        assert_eq!(report.total.precision(), 0.5);
        assert_eq!(report.total.recall(), 1.0);
    }

    #[test]
    fn unpatched_box_leak_is_missed() {
        // The analysis found nothing; the oracle saw a real box leak.
        let an = sinks(&[]);
        let mut taint = BTreeMap::new();
        taint.insert(0x2000, taint_site(TaintSinkKind::IntLoad, 10, 3));
        let report = audit(&an, &BTreeSet::new(), &BTreeMap::new(), &taint);
        assert!(!report.is_sound());
        assert_eq!(report.missed_addrs(), vec![0x2000]);
        assert_eq!(report.total.recall(), 0.0);
        let (r, m) = report.per_reason[0];
        assert_eq!(r, SinkReason::IntLoadOfFp);
        assert_eq!(m.missed, 1);
    }

    #[test]
    fn tainted_without_box_is_informational() {
        let an = sinks(&[]);
        let mut taint = BTreeMap::new();
        taint.insert(0x3000, taint_site(TaintSinkKind::IntLoad, 5, 0));
        let report = audit(&an, &BTreeSet::new(), &BTreeMap::new(), &taint);
        assert!(report.is_sound());
        assert_eq!(report.tainted_only, 1);
        assert_eq!(report.total.missed, 0);
    }

    #[test]
    fn skipped_sink_that_leaks_is_missed() {
        // Static sink exists but was not patched (e.g. skipped by the
        // patcher); the oracle catches the leak at that very address.
        let an = sinks(&[(0x4000, SinkReason::IntLoadOfFp)]);
        let mut taint = BTreeMap::new();
        taint.insert(0x4000, taint_site(TaintSinkKind::IntLoad, 2, 2));
        let report = audit(&an, &BTreeSet::new(), &BTreeMap::new(), &taint);
        assert!(!report.is_sound());
        assert_eq!(report.sites.len(), 1, "no double-count of the address");
        assert_eq!(report.sites[0].class, SiteClass::Missed);
    }

    #[test]
    fn per_reason_metrics_are_split() {
        let an = sinks(&[
            (0x1000, SinkReason::IntLoadOfFp),
            (0x1010, SinkReason::BitwiseFp),
        ]);
        let patched: BTreeSet<u64> = [0x1000, 0x1010].into();
        let mut traps = BTreeMap::new();
        let mut a = SiteDyn::default();
        a.record(true, 10);
        traps.insert(0x1000, a);
        let mut b = SiteDyn::default();
        b.record(false, 10);
        traps.insert(0x1010, b);
        let report = audit(&an, &patched, &traps, &BTreeMap::new());
        let get = |r: SinkReason| {
            report
                .per_reason
                .iter()
                .find(|(x, _)| *x == r)
                .map(|(_, m)| *m)
                .unwrap()
        };
        assert_eq!(get(SinkReason::IntLoadOfFp).confirmed, 1);
        assert_eq!(get(SinkReason::BitwiseFp).spurious, 1);
        assert_eq!(get(SinkReason::IntLoadOfFp).precision(), 1.0);
        assert_eq!(get(SinkReason::BitwiseFp).precision(), 0.0);
    }
}
