//! Control-flow-graph recovery over an encoded program image.
//!
//! "FPVM's VSA builds a preliminary Control Flow Graph (CFG) and then starts
//! from the first instruction at the entry point and analyzes the program
//! sequentially" (§4.2). We disassemble the whole code segment, split it at
//! leaders (entry, branch targets, call targets, post-branch fallthroughs),
//! and recover function boundaries from call targets — the same recovery an
//! angr-style tool performs on a stripped binary.

use fpvm_machine::{decode, Inst, Program, CODE_BASE};
use std::collections::{BTreeMap, BTreeSet, HashMap};

/// A disassembled instruction site.
#[derive(Debug, Clone, Copy)]
pub struct Site {
    /// Address.
    pub addr: u64,
    /// The instruction.
    pub inst: Inst,
    /// Encoded length.
    pub len: u8,
}

/// A basic block: a maximal straight-line instruction run.
#[derive(Debug, Clone)]
pub struct Block {
    /// Address of the first instruction.
    pub start: u64,
    /// Instruction sites.
    pub insts: Vec<Site>,
    /// Successor block start addresses (control-flow edges).
    pub succs: Vec<u64>,
    /// Call target, if the block ends in a `Call` (edge handled
    /// interprocedurally, not in `succs`).
    pub call_target: Option<u64>,
}

/// The recovered control flow graph.
#[derive(Debug, Clone)]
pub struct Cfg {
    /// Blocks keyed by start address.
    pub blocks: BTreeMap<u64, Block>,
    /// Function entry addresses (the program entry + every call target).
    pub functions: BTreeSet<u64>,
    /// Block start → owning function entry.
    pub block_fn: HashMap<u64, u64>,
    /// Total instructions disassembled.
    pub inst_count: usize,
}

impl Cfg {
    /// Build the CFG for a program image.
    pub fn build(p: &Program) -> Cfg {
        // Linear disassembly (our assembler never interleaves data in code).
        let mut sites = Vec::new();
        let mut pos = 0usize;
        while pos < p.code.len() {
            let Ok((inst, len)) = decode(&p.code, pos) else {
                break;
            };
            sites.push(Site {
                addr: CODE_BASE + pos as u64,
                inst,
                len: len as u8,
            });
            pos += len;
        }
        // Leaders and call targets.
        let mut leaders: BTreeSet<u64> = BTreeSet::new();
        let mut functions: BTreeSet<u64> = BTreeSet::new();
        leaders.insert(p.entry);
        functions.insert(p.entry);
        for s in &sites {
            let next = s.addr + u64::from(s.len);
            match s.inst {
                Inst::Jmp { rel } => {
                    leaders.insert(offset(next, rel));
                    leaders.insert(next);
                }
                Inst::Jcc { rel, .. } => {
                    leaders.insert(offset(next, rel));
                    leaders.insert(next);
                }
                Inst::Call { rel } => {
                    let t = offset(next, rel);
                    leaders.insert(t);
                    functions.insert(t);
                    leaders.insert(next);
                }
                Inst::Ret | Inst::Halt => {
                    leaders.insert(next);
                }
                _ => {}
            }
        }
        // Slice into blocks.
        let mut blocks: BTreeMap<u64, Block> = BTreeMap::new();
        let mut cur: Option<Block> = None;
        for s in &sites {
            if leaders.contains(&s.addr) {
                if let Some(b) = cur.take() {
                    blocks.insert(b.start, b);
                }
                cur = Some(Block {
                    start: s.addr,
                    insts: Vec::new(),
                    succs: Vec::new(),
                    call_target: None,
                });
            }
            let Some(b) = cur.as_mut() else {
                continue;
            };
            b.insts.push(*s);
            let next = s.addr + u64::from(s.len);
            let terminate = match s.inst {
                Inst::Jmp { rel } => {
                    b.succs.push(offset(next, rel));
                    true
                }
                Inst::Jcc { rel, .. } => {
                    b.succs.push(offset(next, rel));
                    b.succs.push(next);
                    true
                }
                Inst::Call { rel } => {
                    b.call_target = Some(offset(next, rel));
                    b.succs.push(next); // returns to the fallthrough
                    true
                }
                Inst::Ret | Inst::Halt => true,
                _ => false,
            };
            if terminate {
                blocks.insert(b.start, cur.take().unwrap().clone());
                cur = None;
            } else if leaders.contains(&next) {
                b.succs.push(next);
                blocks.insert(b.start, cur.take().unwrap().clone());
                cur = None;
            }
        }
        if let Some(b) = cur.take() {
            blocks.insert(b.start, b);
        }
        // Assign blocks to functions: reachability from each function entry
        // through intra-procedural edges (succs only; calls excluded).
        let mut block_fn: HashMap<u64, u64> = HashMap::new();
        for &f in &functions {
            let mut stack = vec![f];
            while let Some(b) = stack.pop() {
                if block_fn.contains_key(&b) {
                    continue;
                }
                let Some(block) = blocks.get(&b) else {
                    continue;
                };
                block_fn.insert(b, f);
                for &s in &block.succs {
                    // Follow intra-procedural edges; a self-edge back to
                    // this function's entry (a loop to the top) also stays.
                    if !functions.contains(&s) || s == f {
                        stack.push(s);
                    }
                }
            }
        }
        Cfg {
            inst_count: sites.len(),
            blocks,
            functions,
            block_fn,
        }
    }

    /// Blocks of one function, in address order.
    pub fn function_blocks(&self, entry: u64) -> Vec<&Block> {
        self.blocks
            .values()
            .filter(|b| self.block_fn.get(&b.start) == Some(&entry))
            .collect()
    }
}

fn offset(next: u64, rel: i32) -> u64 {
    next.wrapping_add(i64::from(rel) as u64)
}

#[cfg(test)]
mod tests {
    use super::*;
    use fpvm_machine::{AluOp, Asm, Cond, Gpr, Xmm};

    #[test]
    fn straight_line_is_one_block() {
        let mut a = Asm::new();
        let c = a.f64m(1.0);
        a.movsd(Xmm(0), c);
        a.addsd(Xmm(0), Xmm(0));
        a.halt();
        let p = a.finish();
        let cfg = Cfg::build(&p);
        assert_eq!(cfg.blocks.len(), 1);
        assert_eq!(cfg.functions.len(), 1);
        assert_eq!(cfg.inst_count, 3);
    }

    #[test]
    fn loop_structure() {
        let mut a = Asm::new();
        a.mov_ri(Gpr::RCX, 0);
        let top = a.here_label();
        let done = a.label();
        a.cmp_ri(Gpr::RCX, 10);
        a.jcc(Cond::Ge, done);
        a.alu_ri(AluOp::Add, Gpr::RCX, 1);
        a.jmp(top);
        a.bind(done);
        a.halt();
        let p = a.finish();
        let cfg = Cfg::build(&p);
        // blocks: [mov], [cmp,jcc], [add,jmp], [halt]
        assert_eq!(cfg.blocks.len(), 4);
        // The jcc block has two successors; the jmp block loops back.
        let jcc_block = cfg
            .blocks
            .values()
            .find(|b| matches!(b.insts.last().unwrap().inst, Inst::Jcc { .. }))
            .unwrap();
        assert_eq!(jcc_block.succs.len(), 2);
        let jmp_block = cfg
            .blocks
            .values()
            .find(|b| matches!(b.insts.last().unwrap().inst, Inst::Jmp { .. }))
            .unwrap();
        assert_eq!(jmp_block.succs, vec![jcc_block.start]);
    }

    #[test]
    fn dead_code_after_unconditional_jmp_is_isolated() {
        // The instruction run after an unconditional jmp is carved into its
        // own block (the post-branch address is a leader), but the jmp must
        // NOT grow a fallthrough edge into it, and reachability-based
        // function assignment must leave the dead block unowned.
        let mut a = Asm::new();
        let end = a.label();
        a.jmp(end);
        let dead = a.here();
        a.mov_ri(Gpr::RAX, 42); // unreachable
        a.bind(end);
        a.halt();
        let p = a.finish();
        let cfg = Cfg::build(&p);
        let jmp_block = cfg.blocks.get(&p.entry).unwrap();
        assert!(matches!(
            jmp_block.insts.last().unwrap().inst,
            Inst::Jmp { .. }
        ));
        assert_eq!(
            jmp_block.succs.len(),
            1,
            "jmp must have only its target as successor"
        );
        assert_ne!(jmp_block.succs[0], dead);
        // The dead block exists in the disassembly...
        assert!(cfg.blocks.contains_key(&dead));
        // ...but belongs to no function and is excluded from analysis.
        assert!(!cfg.block_fn.contains_key(&dead));
        assert!(cfg.function_blocks(p.entry).iter().all(|b| b.start != dead));
    }

    #[test]
    fn non_returning_callee_still_splits_caller() {
        // The callee halts and never returns. The call edge still makes it
        // a function, and the caller's post-call block exists (the static
        // CFG keeps the optimistic return edge) and belongs to the caller.
        let mut a = Asm::new();
        let f = a.label();
        a.call(f);
        let after_call = a.here();
        a.mov_ri(Gpr::RBX, 1);
        a.halt();
        a.bind(f);
        a.mov_ri(Gpr::RAX, 7);
        a.halt(); // never returns
        let p = a.finish();
        let cfg = Cfg::build(&p);
        assert_eq!(cfg.functions.len(), 2, "entry + non-returning callee");
        let callee_entry = *cfg.functions.iter().max().unwrap();
        let fb = cfg.function_blocks(callee_entry);
        assert_eq!(fb.len(), 1);
        assert!(matches!(fb[0].insts.last().unwrap().inst, Inst::Halt));
        // The call block's fallthrough successor is the post-call block,
        // and it is owned by the caller, not the callee.
        let call_block = cfg.blocks.get(&p.entry).unwrap();
        assert_eq!(call_block.call_target, Some(callee_entry));
        assert_eq!(call_block.succs, vec![after_call]);
        assert_eq!(cfg.block_fn.get(&after_call), Some(&p.entry));
    }

    #[test]
    fn back_to_back_terminators_are_singleton_blocks() {
        // halt; halt; ret — every terminator ends its block immediately,
        // so each lands in its own single-instruction block with no
        // successors, and block slicing never merges or drops one.
        let mut a = Asm::new();
        let b0 = a.here();
        a.halt();
        let b1 = a.here();
        a.halt();
        let b2 = a.here();
        a.ret();
        let p = a.finish();
        let cfg = Cfg::build(&p);
        assert_eq!(cfg.inst_count, 3);
        assert_eq!(cfg.blocks.len(), 3);
        for addr in [b0, b1, b2] {
            let b = cfg.blocks.get(&addr).unwrap();
            assert_eq!(b.insts.len(), 1);
            assert!(b.succs.is_empty());
        }
        // Only the entry block is reachable.
        assert_eq!(cfg.block_fn.get(&b0), Some(&p.entry));
        assert!(!cfg.block_fn.contains_key(&b1));
        assert!(!cfg.block_fn.contains_key(&b2));
    }

    #[test]
    fn functions_recovered_from_calls() {
        let mut a = Asm::new();
        let f = a.label();
        a.call(f);
        a.call(f);
        a.halt();
        a.bind(f);
        a.mov_ri(Gpr::RAX, 7);
        a.ret();
        let p = a.finish();
        let cfg = Cfg::build(&p);
        assert_eq!(cfg.functions.len(), 2, "entry + callee");
        // Callee blocks belong to the callee function.
        let callee_entry = *cfg.functions.iter().max().unwrap();
        let fb = cfg.function_blocks(callee_entry);
        assert_eq!(fb.len(), 1);
        assert!(matches!(fb[0].insts.last().unwrap().inst, Inst::Ret));
        // Call blocks carry the call target.
        let caller_blocks = cfg.function_blocks(p.entry);
        let with_calls = caller_blocks
            .iter()
            .filter(|b| b.call_target == Some(callee_entry))
            .count();
        assert_eq!(with_calls, 2);
    }

    // ---- hardening: computed flow, irreducible loops, self-loops --------

    #[test]
    fn computed_jump_landing_pad_degrades_soundly() {
        // The ISA's only computed control flow is `push addr; ret`. The CFG
        // cannot see the edge, so the landing pad is an orphan block — the
        // analysis must not panic, must reach fixpoint, and must treat the
        // orphan's load as a candidate sink (maximal conservatism).
        use fpvm_machine::Mem;
        let mut a = Asm::new();
        let g = a.global_f64("shared", 0.0);
        let c = a.f64m(1.5);
        let main = a.label();
        a.jmp(main);
        let landing = a.here();
        a.load(Gpr::RAX, Mem::abs(g as i64)); // orphan load: must stay a sink
        a.halt();
        a.bind(main);
        a.movsd(Xmm(0), c);
        a.movsd(Mem::abs(g as i64), Xmm(0));
        a.mov_ri(Gpr::RBX, landing as i64);
        a.push(Gpr::RBX);
        a.ret(); // computed jump to `landing`
        let p = a.finish();
        let cfg = Cfg::build(&p);
        // The landing pad was disassembled but is unowned.
        assert!(cfg.blocks.contains_key(&landing));
        assert!(!cfg.block_fn.contains_key(&landing));
        let an = crate::vsa::analyze(&p);
        assert!(
            an.sinks
                .iter()
                .any(|s| s.addr == landing && s.reason == crate::vsa::SinkReason::IntLoadOfFp),
            "the orphan landing-pad load must be a conservative sink: {:?}",
            an.sinks
        );
    }

    #[test]
    fn irreducible_loop_reaches_fixpoint() {
        // A two-entry loop (the entry branches into the middle of it, the
        // fallthrough enters at the top): no reducible-loop structure for
        // the worklist to lean on. The analysis must converge and keep the
        // in-loop load of FP-typed memory a sink.
        use fpvm_machine::Mem;
        let mut a = Asm::new();
        let g = a.global_f64("x", 0.0);
        let c = a.f64m(1.0);
        a.movsd(Xmm(0), c);
        a.movsd(Mem::abs(g as i64), Xmm(0));
        let mid = a.label();
        a.cmp_ri(Gpr::RCX, 0);
        a.jcc(Cond::Ge, mid); // second entry: jumps into the loop middle
        let top = a.here_label();
        a.alu_ri(AluOp::Add, Gpr::RCX, 1);
        a.bind(mid);
        let load_at = a.here();
        a.load(Gpr::RAX, Mem::abs(g as i64)); // must stay a sink
        a.cmp_ri(Gpr::RCX, 10);
        a.jcc(Cond::L, top); // back edge to the first entry
        a.halt();
        let p = a.finish();
        let cfg = Cfg::build(&p);
        // The loop body is reachable and owned by the entry function.
        let owner = cfg.blocks.range(..=load_at).next_back().unwrap().1.start;
        assert_eq!(cfg.block_fn.get(&owner), Some(&p.entry));
        let an = crate::vsa::analyze(&p);
        assert!(an.stats.rounds < 16, "must converge, not hit the cap");
        assert!(
            an.sinks
                .iter()
                .any(|s| s.addr == load_at && s.reason == crate::vsa::SinkReason::IntLoadOfFp),
            "the irreducible-loop load must stay a sink: {:?}",
            an.sinks
        );
    }

    #[test]
    fn self_loop_block_reaches_fixpoint() {
        // A block whose only successor is itself (single-block spin loop
        // containing a load): the join must stabilize rather than oscillate
        // and the load must remain a candidate sink.
        use fpvm_machine::Mem;
        let mut a = Asm::new();
        let g = a.global_f64("x", 0.0);
        let c = a.f64m(2.0);
        a.movsd(Xmm(0), c);
        a.movsd(Mem::abs(g as i64), Xmm(0));
        a.mov_ri(Gpr::RCX, 0);
        let top = a.here_label();
        let load_at = a.here();
        a.load(Gpr::RAX, Mem::abs(g as i64));
        a.alu_ri(AluOp::Add, Gpr::RCX, 1);
        a.cmp_ri(Gpr::RCX, 10);
        a.jcc(Cond::L, top); // self-loop: block's succ includes itself
        a.halt();
        let p = a.finish();
        let cfg = Cfg::build(&p);
        let self_block = cfg
            .blocks
            .values()
            .find(|b| b.succs.contains(&b.start))
            .expect("the spin block must be its own successor");
        assert!(self_block.insts.iter().any(|s| s.addr == load_at));
        let an = crate::vsa::analyze(&p);
        assert!(an.stats.rounds < 16, "must converge, not hit the cap");
        assert!(
            an.sinks
                .iter()
                .any(|s| s.addr == load_at && s.reason == crate::vsa::SinkReason::IntLoadOfFp),
            "the self-loop load must stay a sink: {:?}",
            an.sinks
        );
    }
}
