//! Tier-1 regression gate: every persisted corpus case must (a) pass the
//! differential engine cleanly across all backends and (b) — when the case
//! is expressible as guest IR — produce identical output under native
//! execution and the full trap-and-emulate pipeline.
//!
//! Corpus files live in `corpus/*.jsonl` next to this crate; each entry is
//! a minimized reproducer for a bug the suite has caught (or a behavior
//! pinned on purpose). Adding a reproducer here is the last step of every
//! conformance-found fix.

use fpvm_conformance::{parse_corpus, replay, replayable, run_cases, Case};
use std::fs;
use std::path::PathBuf;

fn corpus_files() -> Vec<(String, Vec<Case>)> {
    let dir = PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("corpus");
    let mut files: Vec<_> = fs::read_dir(&dir)
        .expect("corpus dir exists")
        .filter_map(|e| e.ok())
        .map(|e| e.path())
        .filter(|p| p.extension().is_some_and(|x| x == "jsonl"))
        .collect();
    files.sort();
    assert!(!files.is_empty(), "corpus dir has at least one .jsonl file");
    files
        .into_iter()
        .map(|p| {
            let name = p.file_name().unwrap().to_string_lossy().into_owned();
            let text = fs::read_to_string(&p).expect("corpus file readable");
            let cases = parse_corpus(&text).unwrap_or_else(|e| panic!("{name}: {e}"));
            assert!(!cases.is_empty(), "{name}: no cases");
            (name, cases)
        })
        .collect()
}

#[test]
fn corpus_passes_differential_engine() {
    for (name, cases) in corpus_files() {
        let report = run_cases(&cases);
        let detail: Vec<String> = report
            .mismatches
            .iter()
            .map(|m| format!("[{}] {}: {}", m.backend, m.case, m.detail))
            .collect();
        assert!(
            report.clean(),
            "{name}: corpus regressed:\n{}",
            detail.join("\n")
        );
    }
}

#[test]
fn corpus_replays_through_pipeline() {
    let mut replayed = 0usize;
    for (name, cases) in corpus_files() {
        for case in cases {
            if !replayable(&case) {
                continue;
            }
            replay(&case).unwrap_or_else(|e| panic!("{name}: {case}: {e}"));
            replayed += 1;
        }
    }
    // The corpus deliberately contains a healthy replayable majority; a
    // collapse here means `replayable` tightened or the corpus thinned out.
    assert!(
        replayed >= 20,
        "only {replayed} corpus cases were replayable"
    );
}
