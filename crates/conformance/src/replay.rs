//! Replay a conformance reproducer through the full machine pipeline.
//!
//! A corpus entry that only exercises `ArithSystem` proves the arithmetic
//! layer; replaying it as a tiny IR program and running native vs. the
//! hybrid trap-based FPVM (with Vanilla arithmetic) ties the same case to
//! the §5.2 whole-pipeline property: the virtualized run must be
//! bit-identical to native execution.

use crate::case::{Case, Op};
use fpvm_analysis::analyze_and_patch;
use fpvm_arith::{Round, Vanilla};
use fpvm_core::{run_native, ExitReason, Fpvm, FpvmConfig};
use fpvm_ir::{compile, CmpOp, CompileMode, MathFn, Module};
use fpvm_machine::{CostModel, Event, Machine};

fn is_snan_bits(bits: u64) -> bool {
    let v = f64::from_bits(bits);
    v.is_nan() && bits & 0x0008_0000_0000_0000 == 0
}

/// Whether this case can be expressed in the IR and replayed through the
/// machine pipeline: ops the builder can express, nearest-even rounding
/// only (the machine has no rounding-mode control), and no signaling-NaN
/// operand constants — forged sNaN bit patterns are outside FPVM's §2
/// NaN-space ownership contract.
pub fn replayable(case: &Case) -> bool {
    let op_ok = matches!(
        case.op,
        Op::Add
            | Op::Sub
            | Op::Mul
            | Op::Div
            | Op::Min
            | Op::Max
            | Op::Sqrt
            | Op::Neg
            | Op::Abs
            | Op::Floor
            | Op::Ceil
            | Op::ToI64
            | Op::CmpQ
    );
    let no_snan = !is_snan_bits(case.a) && (case.op.arity() < 2 || !is_snan_bits(case.b));
    op_ok && case.rm == Round::NearestEven && no_snan
}

/// Build the one-operation IR program for a replayable case.
fn build(case: &Case) -> Module {
    let case = *case;
    let mut m = Module::new();
    m.build_func("main", &[], None, move |b| {
        let a = b.cf(f64::from_bits(case.a));
        match case.op {
            Op::ToI64 => {
                let i = b.ftoi(a);
                b.printi(i);
            }
            Op::CmpQ => {
                // Print three orderings so Less / Equal / Greater /
                // Unordered are all distinguishable from the output.
                let bb = b.cf(f64::from_bits(case.b));
                let lt = b.fcmp(CmpOp::Lt, a, bb);
                b.printi(lt);
                let eq = b.fcmp(CmpOp::Eq, a, bb);
                b.printi(eq);
                let gt = b.fcmp(CmpOp::Gt, a, bb);
                b.printi(gt);
            }
            _ => {
                let r = match case.op {
                    Op::Add => {
                        let bb = b.cf(f64::from_bits(case.b));
                        b.fadd(a, bb)
                    }
                    Op::Sub => {
                        let bb = b.cf(f64::from_bits(case.b));
                        b.fsub(a, bb)
                    }
                    Op::Mul => {
                        let bb = b.cf(f64::from_bits(case.b));
                        b.fmul(a, bb)
                    }
                    Op::Div => {
                        let bb = b.cf(f64::from_bits(case.b));
                        b.fdiv(a, bb)
                    }
                    Op::Min => {
                        let bb = b.cf(f64::from_bits(case.b));
                        b.fmin(a, bb)
                    }
                    Op::Max => {
                        let bb = b.cf(f64::from_bits(case.b));
                        b.fmax(a, bb)
                    }
                    Op::Sqrt => b.fsqrt(a),
                    Op::Neg => b.fneg(a),
                    Op::Abs => b.fabs(a),
                    Op::Floor => b.math(MathFn::Floor, &[a]),
                    Op::Ceil => b.math(MathFn::Ceil, &[a]),
                    _ => unreachable!("guarded by replayable()"),
                };
                b.printf(r);
            }
        }
        b.ret(None);
    });
    m
}

/// Replay `case` native vs. hybrid FPVM(Vanilla); `Ok(())` means the two
/// runs produced identical output events (bit-exact).
pub fn replay(case: &Case) -> Result<(), String> {
    assert!(replayable(case), "replay() requires replayable(case)");
    let module = build(case);
    let compiled = compile(&module, CompileMode::Native);

    let mut nm = Machine::new(CostModel::r815());
    let ev = run_native(&mut nm, &compiled.program, 1_000_000);
    if ev != Event::Halted {
        return Err(format!("{case}: native run did not halt: {ev:?}"));
    }

    let patched = analyze_and_patch(&compiled.program);
    let mut hm = Machine::new(CostModel::r815());
    hm.load_program(&patched.program);
    let mut rt = Fpvm::new(Vanilla, FpvmConfig::default());
    rt.set_side_table(patched.side_table);
    let report = rt.run(&mut hm);
    if report.exit != ExitReason::Halted {
        return Err(format!("{case}: hybrid run exited {:?}", report.exit));
    }

    if hm.output != nm.output {
        return Err(format!(
            "{case}: pipeline divergence — native {:?}, hybrid {:?}",
            nm.output, hm.output
        ));
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn replay_basic_ops() {
        let cases = [
            Case::new(Op::Add, 0x3FB9_9999_9999_999A, 0x3FD5_5555_5555_5555, 0),
            Case::new(Op::Div, 0x3FF0_0000_0000_0000, 0x0000_0000_0000_0000, 0),
            Case::new(Op::Min, 0x8000_0000_0000_0000, 0x0000_0000_0000_0000, 0),
            Case::new(Op::Max, 0x3FF0_0000_0000_0000, 0x7FF8_0000_0000_0000, 0),
            Case::new(Op::Sqrt, 0xBFF0_0000_0000_0000, 0, 0),
            Case::new(Op::ToI64, 0x41DF_FFFF_FFE0_0000, 0, 0),
            Case::new(Op::CmpQ, 0x7FF8_0000_0000_0000, 0x3FF0_0000_0000_0000, 0),
        ];
        for c in &cases {
            assert!(replayable(c), "{c}");
            replay(c).unwrap();
        }
    }

    #[test]
    fn snan_operands_not_replayable() {
        let c = Case::new(Op::Add, 0x7FF0_0000_0000_0001, 0x3FF0_0000_0000_0000, 0);
        assert!(!replayable(&c));
        let mut d = Case::new(Op::Add, 0x3FF0_0000_0000_0000, 0x3FF0_0000_0000_0000, 0);
        d.rm = Round::Down;
        assert!(!replayable(&d));
    }
}
