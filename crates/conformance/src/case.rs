//! The test-case model and its JSONL persistence.
//!
//! A [`Case`] is one operation applied to operands given as f64 bit
//! patterns (or raw integer bits for the `From*` conversions), under one
//! rounding mode. Cases serialize one-per-line as JSON objects — the same
//! format the bench harness's `ToJson` emits for experiment records — so
//! the regression corpus under `corpus/*.jsonl` is diffable and greppable.

use fpvm_arith::Round;
use std::fmt;

/// The operation a case exercises. Every entry maps onto the §4.3
/// `ArithSystem` interface (and, where one exists, the x64 instruction the
/// trap-and-emulate engine virtualizes).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Op {
    /// `addsd`.
    Add,
    /// `subsd`.
    Sub,
    /// `mulsd`.
    Mul,
    /// `divsd`.
    Div,
    /// Fused multiply-add `a*b + c`.
    Fma,
    /// `sqrtsd` (unary).
    Sqrt,
    /// `minsd`: second-operand-wins on NaN and ±0.
    Min,
    /// `maxsd`: second-operand-wins on NaN and ±0.
    Max,
    /// Sign flip (xorpd with the sign mask).
    Neg,
    /// Absolute value (andpd with the magnitude mask).
    Abs,
    /// `roundsd` toward −∞.
    Floor,
    /// `roundsd` toward +∞.
    Ceil,
    /// `ucomisd`: quiet compare, IE on sNaN only.
    CmpQ,
    /// `comisd`: signaling compare, IE on any NaN.
    CmpS,
    /// `cvttsd2si` r32.
    ToI32,
    /// `cvttsd2si` r64.
    ToI64,
    /// `vcvttsd2usi`-style unsigned truncation.
    ToU64,
    /// `cvtsd2ss`.
    ToF32,
    /// `cvtsi2sd` from the low 32 bits of `a`.
    FromI32,
    /// `cvtsi2sd` from `a` as i64.
    FromI64,
    /// Unsigned 64-bit promotion from `a`.
    FromU64,
    /// `cvtss2sd` from the low 32 bits of `a`.
    FromF32,
}

/// All ops, for sweeping.
pub const ALL_OPS: &[Op] = &[
    Op::Add,
    Op::Sub,
    Op::Mul,
    Op::Div,
    Op::Fma,
    Op::Sqrt,
    Op::Min,
    Op::Max,
    Op::Neg,
    Op::Abs,
    Op::Floor,
    Op::Ceil,
    Op::CmpQ,
    Op::CmpS,
    Op::ToI32,
    Op::ToI64,
    Op::ToU64,
    Op::ToF32,
    Op::FromI32,
    Op::FromI64,
    Op::FromU64,
    Op::FromF32,
];

impl Op {
    /// Number of f64 operands consumed (`From*` ops consume `a` as raw
    /// integer bits and report 1).
    pub fn arity(self) -> usize {
        match self {
            Op::Fma => 3,
            Op::Add | Op::Sub | Op::Mul | Op::Div | Op::Min | Op::Max | Op::CmpQ | Op::CmpS => 2,
            _ => 1,
        }
    }

    /// Stable wire name used in the JSONL corpus.
    pub fn name(self) -> &'static str {
        match self {
            Op::Add => "add",
            Op::Sub => "sub",
            Op::Mul => "mul",
            Op::Div => "div",
            Op::Fma => "fma",
            Op::Sqrt => "sqrt",
            Op::Min => "min",
            Op::Max => "max",
            Op::Neg => "neg",
            Op::Abs => "abs",
            Op::Floor => "floor",
            Op::Ceil => "ceil",
            Op::CmpQ => "cmpq",
            Op::CmpS => "cmps",
            Op::ToI32 => "to_i32",
            Op::ToI64 => "to_i64",
            Op::ToU64 => "to_u64",
            Op::ToF32 => "to_f32",
            Op::FromI32 => "from_i32",
            Op::FromI64 => "from_i64",
            Op::FromU64 => "from_u64",
            Op::FromF32 => "from_f32",
        }
    }

    /// Parse a wire name.
    pub fn parse(s: &str) -> Option<Op> {
        ALL_OPS.iter().copied().find(|o| o.name() == s)
    }
}

/// Wire code for a rounding mode.
pub fn rm_name(rm: Round) -> &'static str {
    match rm {
        Round::NearestEven => "ne",
        Round::Down => "dn",
        Round::Up => "up",
        Round::Zero => "tz",
    }
}

/// Parse a rounding-mode wire code.
pub fn rm_parse(s: &str) -> Option<Round> {
    match s {
        "ne" => Some(Round::NearestEven),
        "dn" => Some(Round::Down),
        "up" => Some(Round::Up),
        "tz" => Some(Round::Zero),
        _ => None,
    }
}

/// One differential test case: an operation, a rounding mode, and up to
/// three operands as raw bit patterns.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Case {
    /// The operation.
    pub op: Op,
    /// Rounding mode (exercised by the BigFloat leg and the engine
    /// replay; SoftFP/Vanilla are nearest-even only).
    pub rm: Round,
    /// First operand, as f64 bits (or raw integer bits for `From*`).
    pub a: u64,
    /// Second operand (binary/ternary ops).
    pub b: u64,
    /// Third operand (fma).
    pub c: u64,
}

impl Case {
    /// A unary/binary/ternary case under nearest-even.
    pub fn new(op: Op, a: u64, b: u64, c: u64) -> Case {
        Case {
            op,
            rm: Round::NearestEven,
            a,
            b,
            c,
        }
    }

    /// Serialize as one JSONL line (no trailing newline).
    pub fn to_jsonl(&self) -> String {
        format!(
            "{{\"op\":\"{}\",\"rm\":\"{}\",\"a\":\"{:016x}\",\"b\":\"{:016x}\",\"c\":\"{:016x}\"}}",
            self.op.name(),
            rm_name(self.rm),
            self.a,
            self.b,
            self.c
        )
    }

    /// Parse one JSONL line. Lines that are empty or start with `#` are
    /// comments and return `None`; malformed lines return an error.
    pub fn from_jsonl(line: &str) -> Result<Option<Case>, String> {
        let line = line.trim();
        if line.is_empty() || line.starts_with('#') {
            return Ok(None);
        }
        let field = |key: &str| -> Result<String, String> {
            let pat = format!("\"{key}\":\"");
            let start = line
                .find(&pat)
                .ok_or_else(|| format!("missing field {key:?} in {line:?}"))?
                + pat.len();
            let end = line[start..]
                .find('"')
                .ok_or_else(|| format!("unterminated field {key:?}"))?;
            Ok(line[start..start + end].to_string())
        };
        let op = Op::parse(&field("op")?).ok_or_else(|| format!("bad op in {line:?}"))?;
        let rm = rm_parse(&field("rm")?).ok_or_else(|| format!("bad rm in {line:?}"))?;
        let hex = |k: &str| -> Result<u64, String> {
            u64::from_str_radix(&field(k)?, 16).map_err(|e| format!("bad {k}: {e}"))
        };
        Ok(Some(Case {
            op,
            rm,
            a: hex("a")?,
            b: hex("b")?,
            c: hex("c")?,
        }))
    }
}

impl fmt::Display for Case {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}[{}](a={:e}",
            self.op.name(),
            rm_name(self.rm),
            f64::from_bits(self.a)
        )?;
        if self.op.arity() >= 2 {
            write!(f, ", b={:e}", f64::from_bits(self.b))?;
        }
        if self.op.arity() >= 3 {
            write!(f, ", c={:e}", f64::from_bits(self.c))?;
        }
        write!(
            f,
            ") bits a={:016x} b={:016x} c={:016x}",
            self.a, self.b, self.c
        )
    }
}

/// Parse a whole corpus file (JSONL, `#` comments allowed).
pub fn parse_corpus(text: &str) -> Result<Vec<Case>, String> {
    let mut out = Vec::new();
    for (i, line) in text.lines().enumerate() {
        match Case::from_jsonl(line) {
            Ok(Some(c)) => out.push(c),
            Ok(None) => {}
            Err(e) => return Err(format!("line {}: {e}", i + 1)),
        }
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn jsonl_round_trip() {
        let c = Case {
            op: Op::Fma,
            rm: Round::Up,
            a: 0x3FF0_0000_0000_0000,
            b: 0x7FF8_0000_0000_0001,
            c: 0x8000_0000_0000_0000,
        };
        let line = c.to_jsonl();
        assert_eq!(Case::from_jsonl(&line).unwrap(), Some(c));
        for op in ALL_OPS {
            let c = Case::new(*op, 1, 2, 3);
            assert_eq!(Case::from_jsonl(&c.to_jsonl()).unwrap(), Some(c));
        }
    }

    #[test]
    fn comments_and_errors() {
        assert_eq!(Case::from_jsonl("# header").unwrap(), None);
        assert_eq!(Case::from_jsonl("   ").unwrap(), None);
        assert!(Case::from_jsonl("{\"op\":\"nope\"}").is_err());
        let text = "# corpus\n{\"op\":\"add\",\"rm\":\"ne\",\"a\":\"0\",\"b\":\"1\",\"c\":\"0\"}\n";
        assert_eq!(parse_corpus(text).unwrap().len(), 1);
    }
}
