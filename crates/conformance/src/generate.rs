//! Deterministic stratified case generation.
//!
//! Purely random f64 bit patterns almost never land on the values where
//! soft-float bugs live (subnormal thresholds, rounding midpoints, NaN
//! payloads, exponent boundaries), so the generator mixes a curated
//! special-value pool with shaped random values: biased exponents near the
//! interesting binades, low-entropy mantissas that produce exact results
//! and midpoint ties, and raw xorshift bulk for everything else.

use crate::case::{Case, Op, ALL_OPS};
use fpvm_arith::Round;

/// xorshift64* — deterministic, seedable, no external crates.
#[derive(Debug, Clone)]
pub struct Rng(u64);

impl Rng {
    /// Seeded generator. A zero seed is remapped (xorshift fixpoint).
    pub fn new(seed: u64) -> Rng {
        Rng(if seed == 0 {
            0x9E37_79B9_7F4A_7C15
        } else {
            seed
        })
    }

    /// Next raw 64-bit value.
    #[allow(clippy::should_implement_trait)]
    pub fn next(&mut self) -> u64 {
        let mut x = self.0;
        x ^= x >> 12;
        x ^= x << 25;
        x ^= x >> 27;
        self.0 = x;
        x.wrapping_mul(0x2545_F491_4F6C_DD1D)
    }

    /// Uniform value below `n`.
    pub fn below(&mut self, n: u64) -> u64 {
        self.next() % n.max(1)
    }
}

/// Special-value pool: the strata every sweep visits.
pub fn special_values() -> Vec<u64> {
    let mut v: Vec<u64> = vec![
        0x0000_0000_0000_0000, // +0
        0x8000_0000_0000_0000, // -0
        0x3FF0_0000_0000_0000, // 1.0
        0xBFF0_0000_0000_0000, // -1.0
        0x4000_0000_0000_0000, // 2.0
        0x3FE0_0000_0000_0000, // 0.5
        0x7FF0_0000_0000_0000, // +inf
        0xFFF0_0000_0000_0000, // -inf
        0x7FF8_0000_0000_0000, // qNaN canonical
        0xFFF8_0000_0000_0000, // -qNaN (indefinite)
        0x7FF8_0000_0000_0001, // qNaN with payload
        0x7FF0_0000_0000_0001, // sNaN min payload
        0x7FF7_FFFF_FFFF_FFFF, // sNaN max payload
        0xFFF0_0000_0000_0001, // -sNaN
        0x0010_0000_0000_0000, // min normal 2^-1022
        0x0010_0000_0000_0001, // min normal + 1 ulp
        0x000F_FFFF_FFFF_FFFF, // max subnormal
        0x001F_FFFF_FFFF_FFFF, // 1.11…1 × 2^-1022 (UE boundary seed)
        0x0000_0000_0000_0001, // min subnormal 2^-1074
        0x0000_0000_0000_0002, // 2^-1073
        0x8000_0000_0000_0001, // -min subnormal
        0x800F_FFFF_FFFF_FFFF, // -max subnormal
        0x7FEF_FFFF_FFFF_FFFF, // max finite
        0xFFEF_FFFF_FFFF_FFFF, // -max finite
        0x7FEF_FFFF_FFFF_FFFE, // max finite - 1 ulp
        0x3FEF_FFFF_FFFF_FFFF, // 1 - 2^-53 (boundary multiplier)
        0x3FF0_0000_0000_0001, // 1 + 2^-52
        0x4340_0000_0000_0000, // 2^53
        0x4340_0000_0000_0001, // 2^53 + 2 (odd-ulp)
        0x4330_0000_0000_0000, // 2^52
        0xC340_0000_0000_0000, // -2^53
        0x41DF_FFFF_FFC0_0000, // i32::MAX as f64
        0x41E0_0000_0000_0000, // 2^31
        0xC1E0_0000_0000_0000, // i32::MIN as f64
        0xC1E0_0000_0020_0000, // i32::MIN - 1
        0x41DF_FFFF_FFE0_0000, // i32::MAX + 0.5
        0x43E0_0000_0000_0000, // 2^63
        0xC3E0_0000_0000_0000, // i64::MIN as f64
        0x43F0_0000_0000_0000, // 2^64
        0x3FD5_5555_5555_5555, // 1/3 (repeating mantissa)
        0x400921FB54442D18,    // pi
        0x3FB9_9999_9999_999A, // 0.1
    ];
    // Exponent ladder around the binades where flag behavior changes:
    // powers of two near the subnormal threshold, near 1, and near
    // overflow, each with ±1-ulp neighbors (rounding-midpoint fodder).
    for e in [
        -1074i32, -1060, -1030, -1023, -1022, -1021, -540, -60, -1, 0, 1, 52, 53, 60, 511, 1020,
        1023,
    ] {
        let bits = pow2_bits(e);
        v.push(bits);
        v.push(bits | 1);
        v.push(bits.wrapping_sub(1));
        v.push(bits | 0x8000_0000_0000_0000);
    }
    v
}

/// Bit pattern of 2^e for e in [-1074, 1023].
fn pow2_bits(e: i32) -> u64 {
    if e < -1022 {
        // Subnormal power of two.
        1u64 << (e + 1074)
    } else {
        ((e + 1023) as u64) << 52
    }
}

/// Shaped random operand: mixes strata so rounding midpoints, exact cases,
/// subnormals and cross-binade pairs all occur with useful frequency.
pub fn gen_operand(rng: &mut Rng, pool: &[u64]) -> u64 {
    match rng.below(8) {
        // Curated specials: 25%.
        0 | 1 => pool[rng.below(pool.len() as u64) as usize],
        // Small-exponent-spread value: sums hit midpoints and exact cases.
        2 | 3 => {
            let sign = rng.next() & (1 << 63);
            let exp = 1023 + rng.below(40) - 20;
            let mant = match rng.below(4) {
                0 => rng.next() & 0xF_FFFF_FFFF_FFFF,    // dense
                1 => rng.below(16),                      // tiny integer mantissa
                2 => 0xF_FFFF_FFFF_FFFF ^ rng.below(15), // all-ones-ish (carry chains)
                _ => (rng.below(1 << 13)) << 39,         // low bits clear (exact ops)
            };
            sign | exp << 52 | mant
        }
        // Near the subnormal threshold: exponents in [-1080, -1000].
        4 => {
            let sign = rng.next() & (1 << 63);
            let exp = rng.below(25); // biased 0..24: subnormal + tiny normal
            let mant = rng.next() & 0xF_FFFF_FFFF_FFFF;
            sign | exp << 52 | mant
        }
        // Near overflow.
        5 => {
            let sign = rng.next() & (1 << 63);
            let exp = 2046 - rng.below(8);
            let mant = rng.next() & 0xF_FFFF_FFFF_FFFF;
            sign | exp << 52 | mant
        }
        // Raw bits (any class, including NaNs with random payloads).
        _ => rng.next(),
    }
}

/// Rounding mode for a case: biased toward nearest-even (the mode the
/// whole machine runs in) with regular visits to the directed modes.
fn gen_rm(rng: &mut Rng) -> Round {
    match rng.below(10) {
        0 => Round::Down,
        1 => Round::Up,
        2 => Round::Zero,
        _ => Round::NearestEven,
    }
}

/// Generate the `i`-th case of a seeded stream.
pub fn gen_case(rng: &mut Rng, pool: &[u64]) -> Case {
    let op = ALL_OPS[rng.below(ALL_OPS.len() as u64) as usize];
    let a = match op {
        // Integer sources: mix boundary integers with raw bits.
        Op::FromI32 | Op::FromI64 | Op::FromU64 => match rng.below(4) {
            0 => rng.next(),
            1 => rng.below(1 << 54).wrapping_sub(1 << 53),
            2 => (1u64 << 63).wrapping_add(rng.below(16)).wrapping_sub(8),
            _ => rng.below(u32::MAX as u64 + 1),
        },
        Op::FromF32 => rng.next() & 0xFFFF_FFFF,
        _ => gen_operand(rng, pool),
    };
    Case {
        op,
        rm: gen_rm(rng),
        a,
        b: gen_operand(rng, pool),
        c: gen_operand(rng, pool),
    }
}

/// The deterministic sweep stream: `n` cases from `seed`.
pub fn sweep_cases(seed: u64, n: u64) -> Vec<Case> {
    let mut rng = Rng::new(seed);
    let pool = special_values();
    // Exhaustive pass first: every op × every rounding mode over a small
    // cross-product of specials, so the strata are visited even for tiny n.
    let mut out = Vec::with_capacity(n as usize);
    'fill: for op in ALL_OPS {
        for rm in [Round::NearestEven, Round::Down, Round::Up, Round::Zero] {
            for i in 0..8u64 {
                if out.len() as u64 >= n {
                    break 'fill;
                }
                let a = pool[(i * 7 + 3) as usize % pool.len()];
                let b = pool[(i * 13 + 11) as usize % pool.len()];
                let c = pool[(i * 29 + 17) as usize % pool.len()];
                out.push(Case {
                    op: *op,
                    rm,
                    a,
                    b,
                    c,
                });
            }
        }
    }
    while (out.len() as u64) < n {
        out.push(gen_case(&mut rng, &pool));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic() {
        let a = sweep_cases(42, 1000);
        let b = sweep_cases(42, 1000);
        assert_eq!(a, b);
        assert_eq!(a.len(), 1000);
        let c = sweep_cases(43, 1000);
        assert_ne!(a, c, "seed must matter");
    }

    #[test]
    fn strata_present() {
        let cases = sweep_cases(7, 20_000);
        let has = |f: &dyn Fn(&Case) -> bool| cases.iter().any(f);
        assert!(has(&|c| f64::from_bits(c.a).is_nan()));
        assert!(has(&|c| f64::from_bits(c.b).is_subnormal()));
        assert!(has(&|c| c.rm == Round::Down));
        assert!(has(&|c| c.op == Op::Fma && c.rm == Round::Zero));
        assert!(has(&|c| f64::from_bits(c.a) == f64::INFINITY));
    }
}
