//! The differential engine: drive every backend through a case stream and
//! cross-check values, flags, and comparison results against the oracle.
//!
//! Three kinds of leg:
//!
//! - **IEEE legs** (`softfp` free functions and the `Vanilla` backend
//!   behind the [`ArithSystem`] trait): compared *exactly* — result bits
//!   (including NaN payload and quietness) and the full flag set. The two
//!   legs are additionally required to be bit-identical to each other.
//! - **BigFloat@53 leg**: the arbitrary-precision backend pinned to
//!   double precision, promoted → operated → demoted per case. Compared
//!   for values and flags modulo an explicit, *enumerated* list of
//!   permitted deviations (quiet-NaN-only arithmetic, no denormal
//!   tracking, subnormal double rounding) — anything else is a mismatch.
//! - **Posit legs** (posit32es2, posit64es3): posits round differently by
//!   design, so they are checked against algebraic laws instead of oracle
//!   values: NaR propagation, demote/promote stability, comparison
//!   consistency with the decoded fields, and integer conversions against
//!   an independent truncation built from [`Posit::to_parts`].

use crate::case::{rm_name, Case, Op};
use crate::oracle::{oracle, Expected, OracleOut};
use fpvm_arith::{
    softfp, ArithSystem, BigFloatCtx, CmpResult, FpFlags, Posit, PositCtx, Round, Vanilla,
};
use std::collections::BTreeMap;

/// Outcome of one backend on one case.
#[derive(Debug, Clone, PartialEq)]
pub enum Verdict {
    /// Agrees with the oracle (or satisfies every law).
    Match,
    /// Deviates in a way the named category explicitly permits.
    Permitted(&'static str),
    /// Disagrees: a conformance bug in the backend (or the oracle).
    Mismatch(String),
}

/// How many distinct mismatches to keep verbatim in a report.
const MAX_KEPT: usize = 32;

/// Aggregated results of a conformance run.
#[derive(Debug, Default)]
pub struct Report {
    /// Cases checked.
    pub cases: u64,
    /// Per-rounding-mode case counts (ne, dn, up, tz).
    pub per_rm: BTreeMap<&'static str, u64>,
    /// Total mismatching (case, backend) pairs.
    pub total_mismatches: u64,
    /// Permitted-deviation tallies by category.
    pub permitted: BTreeMap<&'static str, u64>,
    /// Oracle-internal conflicts (bigfloat leg vs host hardware).
    pub oracle_conflicts: u64,
    /// Kept mismatches, deduplicated by (backend, op), capped.
    pub mismatches: Vec<MismatchRecord>,
    /// The failing cases behind `mismatches` (same order) — reproducer
    /// seeds for the shrinker.
    pub failing_cases: Vec<Case>,
}

/// One kept mismatch.
#[derive(Debug, Clone)]
pub struct MismatchRecord {
    /// Which leg disagreed.
    pub backend: &'static str,
    /// The case, already minimized if the caller shrank it.
    pub case: Case,
    /// Human-readable detail.
    pub detail: String,
}

impl Report {
    /// True when no mismatch and no oracle conflict occurred.
    pub fn clean(&self) -> bool {
        self.total_mismatches == 0 && self.oracle_conflicts == 0
    }

    fn record(&mut self, backend: &'static str, case: &Case, verdict: Verdict) {
        match verdict {
            Verdict::Match => {}
            Verdict::Permitted(cat) => {
                *self.permitted.entry(cat).or_insert(0) += 1;
            }
            Verdict::Mismatch(detail) => {
                self.total_mismatches += 1;
                let dup = self
                    .mismatches
                    .iter()
                    .any(|m| m.backend == backend && m.case.op == case.op);
                if !dup && self.mismatches.len() < MAX_KEPT {
                    self.mismatches.push(MismatchRecord {
                        backend,
                        case: *case,
                        detail,
                    });
                    self.failing_cases.push(*case);
                }
            }
        }
    }
}

/// A backend result in oracle-comparable form.
#[derive(Debug, Clone, PartialEq)]
pub struct Observed {
    /// The produced result.
    pub got: Expected,
    /// The produced flags (op flags | demotion flags).
    pub flags: FpFlags,
}

/// Ops whose result is independent of the rounding mode (so the
/// nearest-even-only IEEE legs can be checked under every mode).
fn rm_insensitive(op: Op) -> bool {
    matches!(
        op,
        Op::Min
            | Op::Max
            | Op::Neg
            | Op::Abs
            | Op::Floor
            | Op::Ceil
            | Op::CmpQ
            | Op::CmpS
            | Op::ToI32
            | Op::ToI64
            | Op::ToU64
            | Op::FromI32
            | Op::FromF32
    )
}

/// Run a case through any [`ArithSystem`] backend: promote the operands,
/// apply the operation, demote the result with the case's rounding mode.
/// Returned flags are the union of operation and demotion flags.
pub fn apply<S: ArithSystem>(sys: &S, case: &Case) -> Observed {
    let a = f64::from_bits(case.a);
    let b = f64::from_bits(case.b);
    let demote = |(v, f): (S::Value, FpFlags)| {
        let (d, df) = sys.to_f64(&v, case.rm);
        Observed {
            got: Expected::F64(d.to_bits()),
            flags: f | df,
        }
    };
    match case.op {
        Op::Add => demote(sys.add(&sys.from_f64(a), &sys.from_f64(b), case.rm)),
        Op::Sub => demote(sys.sub(&sys.from_f64(a), &sys.from_f64(b), case.rm)),
        Op::Mul => demote(sys.mul(&sys.from_f64(a), &sys.from_f64(b), case.rm)),
        Op::Div => demote(sys.div(&sys.from_f64(a), &sys.from_f64(b), case.rm)),
        Op::Fma => demote(sys.fma(
            &sys.from_f64(a),
            &sys.from_f64(b),
            &sys.from_f64(f64::from_bits(case.c)),
            case.rm,
        )),
        Op::Sqrt => demote(sys.sqrt(&sys.from_f64(a), case.rm)),
        Op::Min => demote(sys.min(&sys.from_f64(a), &sys.from_f64(b))),
        Op::Max => demote(sys.max(&sys.from_f64(a), &sys.from_f64(b))),
        Op::Neg => demote(sys.neg(&sys.from_f64(a))),
        Op::Abs => demote(sys.abs(&sys.from_f64(a))),
        Op::Floor => demote(sys.floor(&sys.from_f64(a))),
        Op::Ceil => demote(sys.ceil(&sys.from_f64(a))),
        Op::CmpQ => {
            let (r, f) = sys.cmp_quiet(&sys.from_f64(a), &sys.from_f64(b));
            Observed {
                got: Expected::Cmp(r),
                flags: f,
            }
        }
        Op::CmpS => {
            let (r, f) = sys.cmp_signaling(&sys.from_f64(a), &sys.from_f64(b));
            Observed {
                got: Expected::Cmp(r),
                flags: f,
            }
        }
        Op::ToI32 => {
            let (r, f) = sys.to_i32(&sys.from_f64(a));
            Observed {
                got: Expected::I32(r),
                flags: f,
            }
        }
        Op::ToI64 => {
            let (r, f) = sys.to_i64(&sys.from_f64(a));
            Observed {
                got: Expected::I64(r),
                flags: f,
            }
        }
        Op::ToU64 => {
            let (r, f) = sys.to_u64(&sys.from_f64(a));
            Observed {
                got: Expected::U64(r),
                flags: f,
            }
        }
        Op::ToF32 => {
            let (r, f) = sys.to_f32(&sys.from_f64(a), case.rm);
            Observed {
                got: Expected::F32(r.to_bits()),
                flags: f,
            }
        }
        Op::FromI32 => demote(sys.from_i32(case.a as u32 as i32)),
        Op::FromI64 => demote(sys.from_i64(case.a as i64)),
        Op::FromU64 => demote(sys.from_u64(case.a)),
        Op::FromF32 => {
            let (v, vf) = sys.from_f32(f32::from_bits(case.a as u32));
            let (d, df) = sys.to_f64(&v, case.rm);
            Observed {
                got: Expected::F64(d.to_bits()),
                flags: vf | df,
            }
        }
    }
}

/// Run a case through the raw `softfp` functions (no trait indirection).
/// `None` when softfp cannot express the case (directed rounding).
fn softfp_apply(case: &Case) -> Option<Observed> {
    if case.rm != Round::NearestEven && !rm_insensitive(case.op) {
        return None;
    }
    let a = f64::from_bits(case.a);
    let b = f64::from_bits(case.b);
    let ob = |(v, f): (f64, FpFlags)| Observed {
        got: Expected::F64(v.to_bits()),
        flags: f,
    };
    Some(match case.op {
        Op::Add => ob(softfp::add(a, b)),
        Op::Sub => ob(softfp::sub(a, b)),
        Op::Mul => ob(softfp::mul(a, b)),
        Op::Div => ob(softfp::div(a, b)),
        Op::Fma => ob(softfp::fma(a, b, f64::from_bits(case.c))),
        Op::Sqrt => ob(softfp::sqrt(a)),
        Op::Min => ob(softfp::min(a, b)),
        Op::Max => ob(softfp::max(a, b)),
        Op::Neg | Op::Abs | Op::Floor | Op::Ceil => return None, // trait-only ops
        Op::CmpQ => {
            let (r, f) = softfp::ucomi(a, b);
            Observed {
                got: Expected::Cmp(r),
                flags: f,
            }
        }
        Op::CmpS => {
            let (r, f) = softfp::comi(a, b);
            Observed {
                got: Expected::Cmp(r),
                flags: f,
            }
        }
        Op::ToI32 => {
            let (r, f) = softfp::cvt_f64_to_i32(a);
            Observed {
                got: Expected::I32(r),
                flags: f,
            }
        }
        Op::ToI64 => {
            let (r, f) = softfp::cvt_f64_to_i64(a);
            Observed {
                got: Expected::I64(r),
                flags: f,
            }
        }
        Op::ToU64 => return None, // not part of softfp's instruction set
        Op::ToF32 => {
            let (r, f) = softfp::cvt_f64_to_f32(a);
            Observed {
                got: Expected::F32(r.to_bits()),
                flags: f,
            }
        }
        Op::FromI32 => ob(softfp::cvt_i32_to_f64(case.a as u32 as i32)),
        Op::FromI64 => ob(softfp::cvt_i64_to_f64(case.a as i64)),
        Op::FromU64 => return None,
        Op::FromF32 => ob(softfp::cvt_f32_to_f64(f32::from_bits(case.a as u32))),
    })
}

fn both_nan_f64(x: u64, y: u64) -> bool {
    f64::from_bits(x).is_nan() && f64::from_bits(y).is_nan()
}

fn both_nan_f32(x: u32, y: u32) -> bool {
    f32::from_bits(x).is_nan() && f32::from_bits(y).is_nan()
}

/// Exact value equality (bit-for-bit, NaN payloads included).
fn value_eq_exact(want: &Expected, got: &Expected) -> bool {
    want == got
}

/// Value equality up to NaN identity (any NaN equals any NaN).
fn value_eq_nan_loose(want: &Expected, got: &Expected) -> bool {
    match (want, got) {
        (Expected::F64(w), Expected::F64(g)) => w == g || both_nan_f64(*w, *g),
        (Expected::F32(w), Expected::F32(g)) => w == g || both_nan_f32(*w, *g),
        _ => want == got,
    }
}

fn describe(want: &Expected, wf: FpFlags, got: &Expected, gf: FpFlags) -> String {
    format!("expected {want:?} flags {wf:?}, got {got:?} flags {gf:?}")
}

/// Compare an IEEE leg (softfp or Vanilla) against the oracle: exact bits,
/// exact flags, with one documented exception for `fma`'s conservative
/// inexact/underflow detection.
fn compare_ieee(case: &Case, ora: &OracleOut, obs: &Observed) -> Verdict {
    let value_ok = value_eq_exact(&ora.expected, &obs.got);
    if value_ok && obs.flags == ora.flags {
        return Verdict::Match;
    }
    if value_ok && case.op == Op::Fma {
        // softfp::fma documents over-approximated PE (and the UE that
        // rides on it): extra PE/UE bits are permitted, missing ones not.
        let extra = obs.flags & !ora.flags;
        let missing = ora.flags & !obs.flags;
        let pe_ue = FpFlags::INEXACT | FpFlags::UNDERFLOW;
        if missing.is_empty() && (extra & !pe_ue).is_empty() {
            return Verdict::Permitted("softfp-fma-conservative");
        }
        // The reverse direction (missing UE at the min-normal boundary)
        // is also part of the documented conservatism.
        if extra.is_empty() && (missing & !FpFlags::UNDERFLOW).is_empty() {
            return Verdict::Permitted("softfp-fma-conservative");
        }
    }
    Verdict::Mismatch(describe(&ora.expected, ora.flags, &obs.got, obs.flags))
}

/// Compare the BigFloat@53 leg against the oracle, modulo its permitted
/// deviation categories.
fn compare_bigfloat(case: &Case, ora: &OracleOut, obs: &Observed) -> Verdict {
    let any_nan_input = match case.op {
        // Integer sources can never be NaN.
        Op::FromI32 | Op::FromI64 | Op::FromU64 => false,
        // `a` holds f32 bits, zero-extended: test at f32 width.
        Op::FromF32 => f32::from_bits(case.a as u32).is_nan(),
        Op::Fma => [case.a, case.b, case.c]
            .iter()
            .any(|x| f64::from_bits(*x).is_nan()),
        _ => [case.a, case.b]
            .iter()
            .take(case.op.arity().max(1))
            .any(|x| f64::from_bits(*x).is_nan()),
    };
    // BigFloat has no signaling NaNs and no payloads: with a NaN input the
    // value must still be a NaN, but quietness/IE accounting is exempt.
    if any_nan_input {
        return if value_eq_nan_loose(&ora.expected, &obs.got) {
            Verdict::Permitted("bf-quiet-nan-input")
        } else {
            Verdict::Mismatch(describe(&ora.expected, ora.flags, &obs.got, obs.flags))
        };
    }
    // BigFloat does not track input denormality in its own ops (though
    // its importers/exporters may still report it): DENORMAL is
    // don't-care on this leg, in both directions.
    let de_waived = (ora.flags & FpFlags::DENORMAL) != (obs.flags & FpFlags::DENORMAL);
    let want_flags = ora.flags & !FpFlags::DENORMAL;
    let obs_flags = obs.flags & !FpFlags::DENORMAL;
    let value_ok = value_eq_nan_loose(&ora.expected, &obs.got);
    if value_ok && obs_flags == want_flags {
        return if de_waived {
            Verdict::Permitted("bf-no-denormal-flag")
        } else {
            Verdict::Match
        };
    }
    // Operating at 53 bits and then demoting re-rounds tiny results at
    // subnormal precision: value (±1 ulp) and PE/UE accounting may differ
    // from the single-rounded oracle. Only permitted when the result is
    // actually in the tiny range and inexact.
    if ring_op(case.op) {
        let tiny_inexact = match (&ora.expected, &obs.got) {
            (Expected::F64(w), Expected::F64(g)) => {
                let wv = f64::from_bits(*w);
                let gv = f64::from_bits(*g);
                let tiny = wv.abs() <= f64::MIN_POSITIVE && gv.abs() <= f64::MIN_POSITIVE;
                let close = wv == gv || (*w).abs_diff(*g) <= 1;
                tiny && close && ora.flags.contains(FpFlags::INEXACT)
            }
            _ => false,
        };
        if tiny_inexact {
            return Verdict::Permitted("bf53-subnormal-double-rounding");
        }
    }
    Verdict::Mismatch(describe(&ora.expected, ora.flags, &obs.got, obs.flags))
}

fn ring_op(op: Op) -> bool {
    matches!(
        op,
        Op::Add | Op::Sub | Op::Mul | Op::Div | Op::Fma | Op::Sqrt
    )
}

/// Which cases the BigFloat leg can express: directed rounding is fine for
/// ring ops and demotions, but its integer/f32 imports are nearest-even.
fn bigfloat_expressible(case: &Case) -> bool {
    match case.op {
        Op::FromI64 | Op::FromU64 | Op::ToF32 => case.rm == Round::NearestEven,
        _ => true,
    }
}

// ---------------------------------------------------------------------------
// Posit laws
// ---------------------------------------------------------------------------

/// Independent truncation of a posit toward zero, from its decoded fields.
/// Returns `None` for NaR, otherwise `(sign, magnitude, inexact)`;
/// magnitudes above `u128` range (scale > 127) saturate to `u128::MAX`.
fn posit_truncate<const N: u32, const ES: u32>(p: Posit<N, ES>) -> Option<(bool, u128, bool)> {
    if p.is_nar() {
        return None;
    }
    match p.to_parts() {
        None => Some((false, 0, false)), // zero
        Some((sign, scale, frac)) => {
            if scale < 0 {
                return Some((sign, 0, true));
            }
            if scale > 127 {
                return Some((sign, u128::MAX, false));
            }
            if scale <= 63 {
                let shift = 63 - scale as u32;
                let mag = u128::from(frac >> shift);
                let inexact = shift > 0 && frac & ((1u64 << shift) - 1) != 0;
                Some((sign, mag, inexact))
            } else {
                Some((sign, u128::from(frac) << (scale - 63), false))
            }
        }
    }
}

/// Total order on posit decoded fields (NaR handled by the caller).
fn parts_cmp<const N: u32, const ES: u32>(a: Posit<N, ES>, b: Posit<N, ES>) -> CmpResult {
    let key = |p: Posit<N, ES>| -> (i8, i64, u128) {
        match p.to_parts() {
            None => (0, 0, 0),
            Some((sign, scale, frac)) => {
                let s: i8 = if sign { -1 } else { 1 };
                // Order by sign, then scale, then fraction — magnitudes
                // reverse under a negative sign.
                if sign {
                    (s, -i64::from(scale), u128::MAX - u128::from(frac))
                } else {
                    (s, i64::from(scale), u128::from(frac))
                }
            }
        }
    };
    let (ka, kb) = (key(a), key(b));
    match ka.cmp(&kb) {
        std::cmp::Ordering::Less => CmpResult::Less,
        std::cmp::Ordering::Equal => CmpResult::Equal,
        std::cmp::Ordering::Greater => CmpResult::Greater,
    }
}

/// Check the posit laws for one case. The posit systems round differently
/// from IEEE by design, so this leg never compares against oracle values —
/// it checks internal consistency contracts that are rounding-agnostic.
fn posit_leg<const N: u32, const ES: u32>(ctx: &PositCtx<N, ES>, case: &Case) -> Verdict {
    let a = f64::from_bits(case.a);
    let b = f64::from_bits(case.b);
    let pa = ctx.from_f64(a);
    let pb = ctx.from_f64(b);
    let result: Posit<N, ES> = match case.op {
        Op::Add => ctx.add(&pa, &pb, case.rm).0,
        Op::Sub => ctx.sub(&pa, &pb, case.rm).0,
        Op::Mul => ctx.mul(&pa, &pb, case.rm).0,
        Op::Div => ctx.div(&pa, &pb, case.rm).0,
        Op::Fma => {
            let pc = ctx.from_f64(f64::from_bits(case.c));
            ctx.fma(&pa, &pb, &pc, case.rm).0
        }
        Op::Sqrt => ctx.sqrt(&pa, case.rm).0,
        Op::Min => ctx.min(&pa, &pb).0,
        Op::Max => ctx.max(&pa, &pb).0,
        Op::Neg => ctx.neg(&pa).0,
        Op::Abs => ctx.abs(&pa).0,
        Op::Floor => ctx.floor(&pa).0,
        Op::Ceil => ctx.ceil(&pa).0,
        Op::CmpQ | Op::CmpS => {
            // Comparison law: the trait's quiet compare must agree with
            // the decoded-field order.
            if pa.is_nar() || pb.is_nar() {
                let (r, _) = ctx.cmp_quiet(&pa, &pb);
                return if r == CmpResult::Unordered {
                    Verdict::Match
                } else {
                    Verdict::Mismatch(format!("NaR compare returned {r:?}"))
                };
            }
            let (r, _) = ctx.cmp_quiet(&pa, &pb);
            let want = parts_cmp(pa, pb);
            return if r == want {
                Verdict::Match
            } else {
                Verdict::Mismatch(format!("posit compare {r:?}, decoded order {want:?}"))
            };
        }
        // Conversions apply to the promoted operand directly.
        Op::ToI32 | Op::ToI64 | Op::ToU64 => pa,
        // Import/narrowing ops are not law-checked on this leg.
        Op::ToF32 | Op::FromI32 | Op::FromI64 | Op::FromU64 | Op::FromF32 => return Verdict::Match,
    };

    // Law 1 — NaR propagation: NaN/inf inputs have no posit value, so the
    // result must be NaR. Min/max instead mirror minsd/maxsd's
    // second-operand-wins rule: an unordered pair forwards `b`.
    if matches!(case.op, Op::Min | Op::Max) {
        if (pa.is_nar() || pb.is_nar()) && result.bits() != pb.bits() {
            return Verdict::Mismatch(format!(
                "posit min/max law: unordered pair must forward b ({:#x}), got {:#x}",
                pb.bits(),
                result.bits()
            ));
        }
    } else {
        let used: &[f64] = match case.op {
            Op::Fma => &[a, b, f64::from_bits(case.c)],
            Op::Sqrt
            | Op::Neg
            | Op::Abs
            | Op::Floor
            | Op::Ceil
            | Op::ToI32
            | Op::ToI64
            | Op::ToU64 => &[a],
            _ => &[a, b],
        };
        if used.iter().any(|x| x.is_nan() || x.is_infinite()) && !result.is_nar() {
            return Verdict::Mismatch(format!(
                "NaR law: non-finite input did not produce NaR (got bits {:#x})",
                result.bits()
            ));
        }
    }

    // Law 2 — demote/promote stability: the f64 projection of any result
    // is a fixpoint (to_f64 ∘ from_f64 ∘ to_f64 ≡ to_f64).
    let y = result.to_f64();
    let back = Posit::<N, ES>::from_f64(y).to_f64();
    if y.to_bits() != back.to_bits() && !(y.is_nan() && back.is_nan()) {
        return Verdict::Mismatch(format!(
            "stability law: to_f64 {:016x} reimports as {:016x}",
            y.to_bits(),
            back.to_bits()
        ));
    }

    // Law 3 — integer conversions against the independent truncation.
    // Checked on every result, so wide posits (more significand bits than
    // f64 carries) exercise the no-double-rounding contract.
    if matches!(case.op, Op::ToI32 | Op::ToI64 | Op::ToU64) || ring_op(case.op) {
        let t = posit_truncate(result);
        let (gi64, gf64) = ctx.to_i64(&result);
        let want_i64: (i64, FpFlags) = match t {
            None => (i64::MIN, FpFlags::INVALID),
            Some((sign, mag, inexact)) => {
                let limit = if sign { 1u128 << 63 } else { (1u128 << 63) - 1 };
                if mag > limit {
                    (i64::MIN, FpFlags::INVALID)
                } else {
                    let v = if sign {
                        (mag as u64).wrapping_neg() as i64
                    } else {
                        mag as i64
                    };
                    (
                        v,
                        if inexact {
                            FpFlags::INEXACT
                        } else {
                            FpFlags::NONE
                        },
                    )
                }
            }
        };
        if (gi64, gf64) != want_i64 {
            return Verdict::Mismatch(format!(
                "to_i64 law: got ({gi64}, {gf64:?}), decoded truncation wants {want_i64:?}"
            ));
        }
        let (gi32, gf32) = ctx.to_i32(&result);
        let want_i32: (i32, FpFlags) = match t {
            None => (i32::MIN, FpFlags::INVALID),
            Some((sign, mag, inexact)) => {
                let limit = if sign { 1u128 << 31 } else { (1u128 << 31) - 1 };
                if mag > limit {
                    (i32::MIN, FpFlags::INVALID)
                } else {
                    let v = if sign {
                        (mag as u32).wrapping_neg() as i32
                    } else {
                        mag as i32
                    };
                    (
                        v,
                        if inexact {
                            FpFlags::INEXACT
                        } else {
                            FpFlags::NONE
                        },
                    )
                }
            }
        };
        if (gi32, gf32) != want_i32 {
            return Verdict::Mismatch(format!(
                "to_i32 law: got ({gi32}, {gf32:?}), decoded truncation wants {want_i32:?}"
            ));
        }
        let (gu64, gfu) = ctx.to_u64(&result);
        let want_u64: (u64, FpFlags) = match t {
            None => (u64::MAX, FpFlags::INVALID),
            Some((sign, mag, inexact)) => {
                if (sign && mag != 0) || mag > u128::from(u64::MAX) {
                    (u64::MAX, FpFlags::INVALID)
                } else {
                    (
                        mag as u64,
                        if inexact {
                            FpFlags::INEXACT
                        } else {
                            FpFlags::NONE
                        },
                    )
                }
            }
        };
        if (gu64, gfu) != want_u64 {
            return Verdict::Mismatch(format!(
                "to_u64 law: got ({gu64}, {gfu:?}), decoded truncation wants {want_u64:?}"
            ));
        }
    }
    Verdict::Match
}

// ---------------------------------------------------------------------------
// The run loop
// ---------------------------------------------------------------------------

/// The backends of one conformance run.
pub struct Backends {
    vanilla: Vanilla,
    bigfloat53: BigFloatCtx,
    posit32: PositCtx<32, 2>,
    posit64: PositCtx<64, 3>,
}

impl Default for Backends {
    fn default() -> Self {
        Backends {
            vanilla: Vanilla,
            bigfloat53: BigFloatCtx::new(53),
            posit32: PositCtx::<32, 2>,
            posit64: PositCtx::<64, 3>,
        }
    }
}

/// Check one case against every leg, recording verdicts into the report.
pub fn check_case(backends: &Backends, case: &Case, report: &mut Report) {
    report.cases += 1;
    *report.per_rm.entry(rm_name(case.rm)).or_insert(0) += 1;
    let ora = oracle(case);
    if let Some(c) = &ora.conflict {
        report.oracle_conflicts += 1;
        report.record("oracle", case, Verdict::Mismatch(c.clone()));
        return;
    }

    // IEEE legs.
    let softfp_obs = softfp_apply(case);
    if let Some(obs) = &softfp_obs {
        report.record("softfp", case, compare_ieee(case, &ora, obs));
    }
    if case.rm == Round::NearestEven || rm_insensitive(case.op) {
        let vo = apply(&backends.vanilla, case);
        report.record("vanilla", case, compare_ieee(case, &ora, &vo));
        // Delegation pin: the trait route and the raw functions must be
        // bit-identical wherever both exist.
        if let Some(so) = &softfp_obs {
            if vo != *so {
                report.record(
                    "vanilla-vs-softfp",
                    case,
                    Verdict::Mismatch(format!("vanilla {vo:?} != softfp {so:?}")),
                );
            }
        }
    }

    // BigFloat@53 leg.
    if bigfloat_expressible(case) {
        let bo = apply(&backends.bigfloat53, case);
        report.record("bigfloat53", case, compare_bigfloat(case, &ora, &bo));
    }

    // Posit legs.
    report.record("posit32", case, posit_leg(&backends.posit32, case));
    report.record("posit64", case, posit_leg(&backends.posit64, case));
}

/// Run a whole case list.
pub fn run_cases(cases: &[Case]) -> Report {
    let backends = Backends::default();
    let mut report = Report::default();
    for case in cases {
        check_case(&backends, case, &mut report);
    }
    report
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generate::sweep_cases;

    #[test]
    fn specials_sweep_is_clean() {
        // The exhaustive specials prefix (op × rm × specials) plus a
        // seeded random tail.
        let cases = sweep_cases(0x5EED, 6_000);
        let report = run_cases(&cases);
        assert!(
            report.clean(),
            "{} mismatches, first: {:?}",
            report.total_mismatches,
            report.mismatches.first()
        );
        assert_eq!(report.cases, 6_000);
    }

    #[test]
    fn permitted_categories_observed() {
        let cases = sweep_cases(0x5EED, 20_000);
        let report = run_cases(&cases);
        assert!(report.clean(), "{:?}", report.mismatches.first());
        // The NaN strata guarantee the quiet-NaN category fires; the
        // subnormal strata guarantee the denormal category fires.
        assert!(report.permitted.contains_key("bf-quiet-nan-input"));
        assert!(report.permitted.contains_key("bf-no-denormal-flag"));
    }

    #[test]
    fn satellite_regressions_detected_by_construction() {
        // The satellite bug shapes, as cases: each must be clean now.
        let regressions = [
            // posit wide-result integer conversion (sub result 2 − 2^-57).
            Case::new(Op::Sub, 2f64.to_bits(), 2f64.powi(-57).to_bits(), 0),
            // min/max signed-zero and NaN operand order.
            Case::new(Op::Min, 0f64.to_bits(), (-0f64).to_bits(), 0),
            Case::new(Op::Max, (-0f64).to_bits(), 0f64.to_bits(), 0),
            Case::new(Op::Min, 1f64.to_bits(), 0x7FF0_0000_0000_0001, 0),
            // underflow judged after rounding (div delivers min normal).
            Case::new(Op::Div, 0x001F_FFFF_FFFF_FFFF, 2f64.to_bits(), 0),
            Case::new(
                Op::Mul,
                0x3FEF_FFFF_FFFF_FFFF,
                f64::MIN_POSITIVE.to_bits(),
                0,
            ),
            // f32 narrowing at the same boundary.
            Case::new(
                Op::ToF32,
                (2f64.powi(-126) - 3.0 * 2f64.powi(-152)).to_bits(),
                0,
                0,
            ),
            // i32 truncation boundaries.
            Case::new(Op::ToI32, 2147483647.5f64.to_bits(), 0, 0),
            Case::new(Op::ToI32, (-2147483648.9f64).to_bits(), 0, 0),
        ];
        let report = run_cases(&regressions);
        assert!(report.clean(), "{:?}", report.mismatches.first());
    }
}
