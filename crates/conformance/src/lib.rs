//! Differential conformance engine for the `ArithSystem` backends.
//!
//! The paper validates FPVM by checking that Vanilla is bit-identical to
//! native execution (§5.2). This crate generalizes that idea into a
//! TestFloat-style harness: every backend (softfp, Vanilla, BigFloat@53,
//! the posit contexts) is driven through the *same* deterministic stream
//! of operations, and each result — value, exception flags, comparison
//! outcome — is checked against an independent oracle, per operation, per
//! rounding mode.
//!
//! The pieces:
//!
//! - [`case`] — the wire format: one operation with operands, rounding
//!   mode, JSONL (de)serialization for the persisted corpus.
//! - [`generate`] — deterministic stratified case generation (subnormals,
//!   signed zeros, NaN payloads, exponent boundaries, midpoint neighbors,
//!   xorshift bulk).
//! - [`oracle`] — the reference answer: spec rules for non-finite cases,
//!   a high-precision BigFloat leg for finite ring values under every
//!   rounding mode, and a host-hardware cross-check at nearest-even.
//! - [`engine`] — runs every backend leg, classifies each result as
//!   `Match`, `Permitted` (a documented backend deviation, e.g. BigFloat
//!   carries no NaN payloads), or `Mismatch`.
//! - [`shrink`] — minimizes a failing case to a one-operation reproducer
//!   with the simplest operands that still fail.
//! - [`replay`] — replays a reproducer through the full machine pipeline
//!   (native vs. hybrid-FPVM), tying arithmetic-level conformance back to
//!   the §5.2 whole-pipeline property.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod case;
pub mod engine;
pub mod generate;
pub mod oracle;
pub mod replay;
pub mod shrink;

pub use case::{parse_corpus, Case, Op};
pub use engine::{run_cases, Backends, Report, Verdict};
pub use generate::sweep_cases;
pub use oracle::{oracle, Expected, OracleOut};
pub use replay::{replay, replayable};
pub use shrink::shrink;
