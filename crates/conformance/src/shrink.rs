//! Failing-case minimizer.
//!
//! Given a failing [`Case`] and a predicate that re-runs the check, walk a
//! deterministic candidate ladder toward "simpler" cases (fewer set bits,
//! canonical NaNs, nearest-even rounding, zeroed unused operands) and keep
//! every step that still fails. The result is a one-operation reproducer
//! fit for the persisted corpus.

use crate::case::Case;
use fpvm_arith::Round;

/// Well-founded simplicity order: fewer set bits, then smaller value.
/// Acceptance requires a strict decrease, so shrinking always terminates
/// and can never oscillate between two "equally simple" values.
fn simpler(v: u64, than: u64) -> bool {
    (v.count_ones(), v) < (than.count_ones(), than)
}

/// Simplification candidates for one operand, most aggressive first.
fn operand_candidates(bits: u64) -> Vec<u64> {
    let mut c = Vec::new();
    let push = |c: &mut Vec<u64>, v: u64| {
        if simpler(v, bits) && !c.contains(&v) {
            c.push(v);
        }
    };
    push(&mut c, 0); // +0
    push(&mut c, 0x3FF0_0000_0000_0000); // 1.0
    if f64::from_bits(bits).is_nan() {
        // Canonical quiet NaN, then a payload-free signaling NaN (keeps
        // "signaling-ness" reproducers minimal without losing the class).
        push(&mut c, 0x7FF8_0000_0000_0000);
        if bits & 0x0008_0000_0000_0000 == 0 {
            push(&mut c, 0x7FF0_0000_0000_0001);
        }
    }
    push(&mut c, bits & !(1 << 63)); // clear sign
    push(&mut c, bits & 0xFFF0_0000_0000_0000); // keep class/exponent only
    push(&mut c, bits & !0xFFFF_FFFF); // clear low mantissa half
    push(&mut c, bits & !0xFFFF); // clear low 16 bits
    c
}

/// Minimize `case` under `still_fails`. The predicate must return `true`
/// for the input case (it is what made the case interesting); the returned
/// case also satisfies it. Deterministic: same input, same output.
pub fn shrink(case: &Case, still_fails: impl Fn(&Case) -> bool) -> Case {
    let mut cur = *case;
    // Fixpoint with a safety bound: each accepted candidate strictly
    // simplifies one field, so convergence is fast in practice.
    for _ in 0..64 {
        let mut changed = false;

        if cur.rm != Round::NearestEven {
            let mut cand = cur;
            cand.rm = Round::NearestEven;
            if still_fails(&cand) {
                cur = cand;
                changed = true;
            }
        }

        // Unused operands normalize to zero regardless of their value.
        let arity = cur.op.arity();
        for (slot, used) in [(1usize, arity >= 1), (2, arity >= 2), (3, arity >= 3)] {
            let get = |c: &Case, s: usize| match s {
                1 => c.a,
                2 => c.b,
                _ => c.c,
            };
            let set = |c: &mut Case, s: usize, v: u64| match s {
                1 => c.a = v,
                2 => c.b = v,
                _ => c.c = v,
            };
            let bits = get(&cur, slot);
            if !used {
                if bits != 0 {
                    let mut cand = cur;
                    set(&mut cand, slot, 0);
                    if still_fails(&cand) {
                        cur = cand;
                        changed = true;
                    }
                }
                continue;
            }
            for v in operand_candidates(bits) {
                let mut cand = cur;
                set(&mut cand, slot, v);
                if still_fails(&cand) {
                    cur = cand;
                    changed = true;
                    break;
                }
            }
        }

        if !changed {
            break;
        }
    }
    cur
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::case::Op;

    #[test]
    fn shrinks_to_simplest_failing_case() {
        // Pretend the bug is "any Add whose first operand is NaN".
        let noisy = Case {
            op: Op::Add,
            rm: Round::Up,
            a: 0x7FFC_DEAD_BEEF_1234,
            b: 0x400921FB54442D18,
            c: 0xABCD_EF01_2345_6789,
        };
        let fails = |c: &Case| c.op == Op::Add && f64::from_bits(c.a).is_nan();
        assert!(fails(&noisy));
        let min = shrink(&noisy, fails);
        assert!(fails(&min), "shrinking must preserve the failure");
        assert_eq!(min.rm, Round::NearestEven);
        assert_eq!(min.a, 0x7FF8_0000_0000_0000, "NaN canonicalized");
        assert_eq!(min.b, 0, "irrelevant operand zeroed");
        assert_eq!(min.c, 0, "unused operand zeroed");
    }

    #[test]
    fn deterministic() {
        let case = Case {
            op: Op::Mul,
            rm: Round::Zero,
            a: 0x3FE0_0000_0000_0000, // 0.5
            b: 0x0010_0000_0000_0000, // min normal → product is subnormal
            c: 7,
        };
        // "Fails" whenever the product would be subnormal-ish: keeps a
        // nontrivial constraint on both operands.
        let fails = |c: &Case| {
            let p = f64::from_bits(c.a) * f64::from_bits(c.b);
            c.op == Op::Mul && p != 0.0 && p.abs() < f64::MIN_POSITIVE
        };
        assert!(fails(&case));
        let m1 = shrink(&case, fails);
        let m2 = shrink(&case, fails);
        assert_eq!(m1, m2);
        assert!(fails(&m1));
    }
}
