//! The conformance oracle: for each [`Case`], the value, flags, and
//! comparison result the equivalent x64 instruction sequence would produce.
//!
//! The oracle is deliberately *not* one of the backends under test. It is
//! assembled from three independent legs:
//!
//! 1. **Spec rules** (this file) for everything the SDM defines by case
//!    analysis: NaN propagation and quieting, invalid-operation combos,
//!    min/max second-operand semantics, comparisons, integer conversions,
//!    and the input-class flags (`IE`/`DE`/`ZE`).
//! 2. **High-precision BigFloat arithmetic** for finite ring-operation
//!    values under every rounding mode and the result-class flags
//!    (`PE`/`OE`/`UE`). The working precisions are chosen so the
//!    intermediate is either *exact* (add/sub 2400 bits, mul 120, fma
//!    4400 — each covers the worst-case bit span of f64 operands) or far
//!    below the worst-case distance from a quotient/root to any 53-bit
//!    rounding boundary (div/sqrt at 300 bits), so the final demotion is a
//!    single correct rounding.
//! 3. **Host hardware** as a cross-check: under nearest-even the host's own
//!    `+`, `*`, `/`, `sqrt`, `mul_add` must agree bit-for-bit with leg 2.
//!    A disagreement is reported as an oracle conflict, never silently
//!    resolved.

use crate::case::{Case, Op};
use fpvm_arith::bigfloat;
use fpvm_arith::{BigFloat, CmpResult, FpFlags, Round};

/// Exact-intermediate precision for add/sub: operand exponents span
/// [-1074, 1023], so any nonzero sum fits in ~2150 bits.
const ADD_PREC: u32 = 2400;
/// Exact product of two 53-bit significands.
const MUL_PREC: u32 = 120;
/// Exact fused a·b + c: product exponents span [-2148, 2046] against an
/// addend in [-1074, 1023] — under 3300 bits end to end.
const FMA_PREC: u32 = 4400;
/// div/sqrt: not exact, but ≫ the ~110-bit worst-case closeness of a
/// quotient or square root of f64 operands to any 53-bit rounding
/// boundary (including the subnormal grid), so demotion rounds correctly.
const DIV_PREC: u32 = 300;

/// What the hardware would have produced.
#[derive(Debug, Clone, PartialEq)]
pub enum Expected {
    /// An f64 result, as bits. NaN bits are exact for the IEEE legs
    /// (propagation order and quieting are part of the contract).
    F64(u64),
    /// An f32 result, as bits.
    F32(u32),
    /// `cvttsd2si` r32.
    I32(i32),
    /// `cvttsd2si` r64.
    I64(i64),
    /// Unsigned truncation.
    U64(u64),
    /// A comparison outcome.
    Cmp(CmpResult),
}

/// Oracle output for one case.
#[derive(Debug, Clone)]
pub struct OracleOut {
    /// Expected result.
    pub expected: Expected,
    /// Expected MXCSR exception flags.
    pub flags: FpFlags,
    /// Set when the high-precision leg and the host hardware disagreed at
    /// nearest-even — an internal inconsistency that must surface as a
    /// failure, not be absorbed.
    pub conflict: Option<String>,
}

fn is_snan(x: f64) -> bool {
    x.is_nan() && x.to_bits() & 0x0008_0000_0000_0000 == 0
}

fn quiet(x: f64) -> f64 {
    f64::from_bits(x.to_bits() | 0x0008_0000_0000_0000)
}

const QNAN_INDEFINITE: u64 = 0xFFF8_0000_0000_0000;

fn de(inputs: &[f64]) -> FpFlags {
    if inputs.iter().any(|x| x.is_subnormal()) {
        FpFlags::DENORMAL
    } else {
        FpFlags::NONE
    }
}

fn snan_flag(inputs: &[f64]) -> FpFlags {
    if inputs.iter().any(|x| is_snan(*x)) {
        FpFlags::INVALID
    } else {
        FpFlags::NONE
    }
}

/// First-NaN-quieted propagation (SSE operand order).
fn propagate(inputs: &[f64]) -> f64 {
    for x in inputs {
        if x.is_nan() {
            return quiet(*x);
        }
    }
    unreachable!("propagate called without a NaN input")
}

fn out(expected: Expected, flags: FpFlags) -> OracleOut {
    OracleOut {
        expected,
        flags,
        conflict: None,
    }
}

/// Promote an f64 into a BigFloat exactly (53 bits always suffice).
fn bf(x: f64) -> BigFloat {
    let (v, fl) = BigFloat::from_f64(x, 53, Round::NearestEven);
    debug_assert!(fl.is_empty(), "f64 promotion must be exact");
    v
}

/// Finite-operand ring operation through the high-precision leg, plus the
/// host cross-check at nearest-even.
fn ring_finite(case: &Case, ins: &[f64]) -> OracleOut {
    let a = ins[0];
    let (r, opfl) = match case.op {
        Op::Add => bigfloat::add(&bf(a), &bf(ins[1]), ADD_PREC, case.rm),
        Op::Sub => bigfloat::sub(&bf(a), &bf(ins[1]), ADD_PREC, case.rm),
        Op::Mul => bigfloat::mul(&bf(a), &bf(ins[1]), MUL_PREC, case.rm),
        Op::Div => bigfloat::div(&bf(a), &bf(ins[1]), DIV_PREC, case.rm),
        Op::Fma => bigfloat::fma(&bf(a), &bf(ins[1]), &bf(ins[2]), FMA_PREC, case.rm),
        Op::Sqrt => bigfloat::sqrt(&bf(a), DIV_PREC, case.rm),
        _ => unreachable!("not a ring op"),
    };
    let (v, demote_fl) = r.to_f64(case.rm);
    let mut flags = de(ins) | demote_fl;
    if opfl.contains(FpFlags::INEXACT) {
        flags |= FpFlags::INEXACT;
    }
    let mut conflict = None;
    if case.rm == Round::NearestEven {
        let host = match case.op {
            Op::Add => ins[0] + ins[1],
            Op::Sub => ins[0] - ins[1],
            Op::Mul => ins[0] * ins[1],
            Op::Div => ins[0] / ins[1],
            Op::Fma => ins[0].mul_add(ins[1], ins[2]),
            Op::Sqrt => ins[0].sqrt(),
            _ => unreachable!(),
        };
        if host.to_bits() != v.to_bits() && !(host.is_nan() && v.is_nan()) {
            conflict = Some(format!(
                "oracle conflict: bigfloat {:016x} vs host {:016x}",
                v.to_bits(),
                host.to_bits()
            ));
        }
    }
    OracleOut {
        expected: Expected::F64(v.to_bits()),
        flags,
        conflict,
    }
}

/// add/sub/mul/div/fma/sqrt: NaN and special-case analysis, then the
/// high-precision leg for finite operands.
fn ring(case: &Case) -> OracleOut {
    let a = f64::from_bits(case.a);
    let b = f64::from_bits(case.b);
    let c = f64::from_bits(case.c);
    // Effective operand list (sub negates b only for the *value* rules;
    // NaN propagation sees the raw operand).
    let ins: &[f64] = match case.op {
        Op::Fma => &[a, b, c],
        Op::Sqrt => &[a],
        _ => &[a, b],
    };
    let dflags = de(ins);
    if ins.iter().any(|x| x.is_nan()) {
        let v = propagate(ins);
        return out(Expected::F64(v.to_bits()), dflags | snan_flag(ins));
    }
    let indefinite = || out(Expected::F64(QNAN_INDEFINITE), dflags | FpFlags::INVALID);
    match case.op {
        Op::Add | Op::Sub => {
            let b_eff = if case.op == Op::Sub { -b } else { b };
            if a.is_infinite() && b_eff.is_infinite() && a.signum() != b_eff.signum() {
                return indefinite();
            }
            if a.is_infinite() || b_eff.is_infinite() {
                let v = if a.is_infinite() { a } else { b_eff };
                return out(Expected::F64(v.to_bits()), dflags);
            }
            // Exact-zero sums carry an IEEE-defined sign: like-signed zero
            // operands keep the sign; cancellation yields +0, except −0
            // under round-down.
            if a == 0.0 && b_eff == 0.0 {
                let v = if a.is_sign_negative() == b_eff.is_sign_negative() {
                    a
                } else if case.rm == Round::Down {
                    -0.0
                } else {
                    0.0
                };
                return out(Expected::F64(v.to_bits()), dflags);
            }
            if a == -b_eff {
                let v: f64 = if case.rm == Round::Down { -0.0 } else { 0.0 };
                return out(Expected::F64(v.to_bits()), dflags);
            }
        }
        Op::Mul => {
            if (a == 0.0 && b.is_infinite()) || (b == 0.0 && a.is_infinite()) {
                return indefinite();
            }
            if a.is_infinite() || b.is_infinite() {
                return out(Expected::F64((a * b).to_bits()), dflags);
            }
        }
        Op::Div => {
            if b == 0.0 {
                if a == 0.0 {
                    return indefinite();
                }
                if a.is_finite() {
                    return out(Expected::F64((a / b).to_bits()), dflags | FpFlags::DIVZERO);
                }
                return out(Expected::F64((a / b).to_bits()), dflags);
            }
            if a.is_infinite() && b.is_infinite() {
                return indefinite();
            }
            if a.is_infinite() || b.is_infinite() {
                return out(Expected::F64((a / b).to_bits()), dflags);
            }
        }
        Op::Fma => {
            if (a == 0.0 && b.is_infinite()) || (b == 0.0 && a.is_infinite()) {
                return indefinite();
            }
            if a.is_infinite() || b.is_infinite() || c.is_infinite() {
                // Product is ±inf or finite against an infinite addend;
                // inf − inf cancellation is invalid.
                let r = a.mul_add(b, c);
                if r.is_nan() {
                    return indefinite();
                }
                return out(Expected::F64(r.to_bits()), dflags);
            }
        }
        Op::Sqrt => {
            if a < 0.0 {
                return indefinite();
            }
            if a == 0.0 || a.is_infinite() {
                return out(Expected::F64(a.to_bits()), dflags);
            }
        }
        _ => unreachable!(),
    }
    ring_finite(case, ins)
}

/// Directed f64 → f32 narrowing with after-rounding tininess, built on
/// `BigFloat::from_f64`'s arbitrary-precision rounding (exponent
/// unbounded) rather than any backend's converter.
fn narrow_f32(a: f64, rm: Round) -> (f32, FpFlags) {
    let flags = de(&[a]);
    if a.is_nan() {
        return (quiet(a) as f32, flags | snan_flag(&[a]));
    }
    if a.is_infinite() || a == 0.0 {
        return (a as f32, flags);
    }
    // Round once to 24 bits with the exponent unbounded.
    let (r24, ix24) = BigFloat::from_f64(a, 24, rm);
    // Exact except when the 24-bit rounding left the f64 range entirely
    // (|a| near f64::MAX rounding up to 2^1024) — that delivers ±inf,
    // which the overflow branch below catches.
    let (h24, _) = r24.to_f64(Round::NearestEven);
    if h24.abs() >= 2f64.powi(128) {
        // Overflow: delivery per rounding mode, like the hardware.
        let v = match rm {
            Round::Zero => f32::MAX,
            Round::Down if a > 0.0 => f32::MAX,
            Round::Up if a < 0.0 => f32::MIN,
            _ => f32::INFINITY,
        };
        let v = if a < 0.0 && v.is_infinite() {
            f32::NEG_INFINITY
        } else if a < 0.0 && v == f32::MAX {
            f32::MIN
        } else {
            v
        };
        return (v, flags | FpFlags::OVERFLOW | FpFlags::INEXACT);
    }
    if h24.abs() >= f64::from(f32::MIN_POSITIVE) {
        let v = h24 as f32; // exact: ≤24 bits, normal f32 range
        let fl = if ix24.contains(FpFlags::INEXACT) {
            FpFlags::INEXACT
        } else {
            FpFlags::NONE
        };
        return (v, flags | fl);
    }
    // Tiny after rounding: deliver the subnormal-precision rounding of the
    // *original* value; UNDERFLOW iff that delivery is inexact. The
    // delivered precision follows the exact value's binade: |a| ∈
    // [2^(ea-1), 2^ea) lands on the 2^-149 grid with ea + 149 bits.
    let ea = exp_of(a);
    let target_prec = 24 - (-125 - ea);
    if target_prec <= 0 {
        let tiny_val = f32::from_bits(1);
        let v = match rm {
            Round::Up if a > 0.0 => tiny_val,
            Round::Down if a < 0.0 => -tiny_val,
            _ => {
                if a < 0.0 {
                    -0.0
                } else {
                    0.0
                }
            }
        };
        return (v, flags | FpFlags::UNDERFLOW | FpFlags::INEXACT);
    }
    let (rs, ixs) = BigFloat::from_f64(a, target_prec as u32, rm);
    let (hs, sfl) = rs.to_f64(Round::NearestEven); // exact
    debug_assert!(sfl.is_empty());
    let v = hs as f32; // exact: fits the subnormal grid (or min normal)
    let fl = if ixs.contains(FpFlags::INEXACT) {
        FpFlags::UNDERFLOW | FpFlags::INEXACT
    } else {
        FpFlags::NONE
    };
    (v, flags | fl)
}

/// Exponent `e` with |x| ∈ [2^(e-1), 2^e) for a finite nonzero f64.
fn exp_of(x: f64) -> i64 {
    let bits = x.to_bits();
    let biased = ((bits >> 52) & 0x7FF) as i64;
    if biased != 0 {
        return biased - 1022;
    }
    // Subnormal: 2^(-1022) × 0.mant — find the top set bit.
    let mant = bits & 0x000F_FFFF_FFFF_FFFF;
    let top = 63 - mant.leading_zeros() as i64; // bit index of MSB
    top - 52 - 1021
}

/// Signed/unsigned truncating conversions, spec-level: truncate first,
/// range-check the truncated value, `IE` + indefinite out of range, `PE`
/// if fractional, `DE` on denormal input (the signed forms).
fn to_int(case: &Case) -> OracleOut {
    let a = f64::from_bits(case.a);
    match case.op {
        Op::ToI32 => {
            let flags = de(&[a]);
            let t = a.trunc();
            if a.is_nan() || !(-2147483649.0 < t && t < 2147483648.0) {
                return out(Expected::I32(i32::MIN), flags | FpFlags::INVALID);
            }
            let pe = if t != a {
                FpFlags::INEXACT
            } else {
                FpFlags::NONE
            };
            out(Expected::I32(t as i32), flags | pe)
        }
        Op::ToI64 => {
            let flags = de(&[a]);
            let t = a.trunc();
            if a.is_nan() || !(-9.223372036854776e18..9.223372036854776e18).contains(&t) {
                return out(Expected::I64(i64::MIN), flags | FpFlags::INVALID);
            }
            let pe = if t != a {
                FpFlags::INEXACT
            } else {
                FpFlags::NONE
            };
            out(Expected::I64(t as i64), flags | pe)
        }
        Op::ToU64 => {
            // No DE here: the unsigned form is modeled flag-minimal across
            // every backend (it is not an SSE2 instruction).
            let t = a.trunc();
            if a.is_nan() || !(-1.0 < a && t < 1.8446744073709552e19) {
                return out(Expected::U64(u64::MAX), FpFlags::INVALID);
            }
            let pe = if t != a {
                FpFlags::INEXACT
            } else {
                FpFlags::NONE
            };
            out(Expected::U64(t.abs() as u64), pe)
        }
        _ => unreachable!(),
    }
}

/// Integer → f64 promotions under every rounding mode: compute the
/// nearest-even value on the host, then step one ulp in the directed
/// modes when the host rounding went the wrong way.
fn from_int(case: &Case) -> OracleOut {
    match case.op {
        Op::FromI32 => {
            let x = case.a as u32 as i32;
            out(Expected::F64((f64::from(x)).to_bits()), FpFlags::NONE)
        }
        Op::FromI64 => {
            let x = case.a as i64;
            let r = x as f64;
            if r as i128 == i128::from(x) {
                return out(Expected::F64(r.to_bits()), FpFlags::NONE);
            }
            let v = directed_fix(r, i128::from(x), case.rm);
            out(Expected::F64(v.to_bits()), FpFlags::INEXACT)
        }
        Op::FromU64 => {
            let x = case.a;
            let r = x as f64;
            if r as u128 == u128::from(x) {
                return out(Expected::F64(r.to_bits()), FpFlags::NONE);
            }
            let v = directed_fix(r, i128::from(x), case.rm);
            out(Expected::F64(v.to_bits()), FpFlags::INEXACT)
        }
        _ => unreachable!(),
    }
}

/// Adjust a nearest-even integer promotion to a directed mode. `r` is the
/// host's RN result for true value `x` (inexact, |x| ≥ 2^53 so stepping
/// stays in the same binade region and never crosses zero).
fn directed_fix(r: f64, x: i128, rm: Round) -> f64 {
    let want_down = match rm {
        Round::NearestEven => return r,
        Round::Down => true,
        Round::Up => false,
        Round::Zero => x > 0,
    };
    let rt = r as i128;
    if want_down && rt > x {
        step_toward_neg(r)
    } else if !want_down && rt < x {
        step_toward_pos(r)
    } else {
        r
    }
}

fn step_toward_neg(r: f64) -> f64 {
    let bits = r.to_bits();
    if r > 0.0 {
        f64::from_bits(bits - 1)
    } else {
        f64::from_bits(bits + 1)
    }
}

fn step_toward_pos(r: f64) -> f64 {
    let bits = r.to_bits();
    if r > 0.0 {
        f64::from_bits(bits + 1)
    } else {
        f64::from_bits(bits - 1)
    }
}

/// The oracle: spec-level expected result and flags for a case.
pub fn oracle(case: &Case) -> OracleOut {
    let a = f64::from_bits(case.a);
    let b = f64::from_bits(case.b);
    match case.op {
        Op::Add | Op::Sub | Op::Mul | Op::Div | Op::Fma | Op::Sqrt => ring(case),
        Op::Min => {
            let flags = de(&[a, b]);
            if a.is_nan() || b.is_nan() {
                // Second operand forwarded raw (even a signaling NaN);
                // invalid on any NaN operand.
                return out(Expected::F64(case.b), flags | FpFlags::INVALID);
            }
            let v = if a < b { a } else { b };
            out(Expected::F64(v.to_bits()), flags)
        }
        Op::Max => {
            let flags = de(&[a, b]);
            if a.is_nan() || b.is_nan() {
                return out(Expected::F64(case.b), flags | FpFlags::INVALID);
            }
            let v = if a > b { a } else { b };
            out(Expected::F64(v.to_bits()), flags)
        }
        Op::Neg => out(Expected::F64(case.a ^ 0x8000_0000_0000_0000), FpFlags::NONE),
        Op::Abs => out(
            Expected::F64(case.a & !0x8000_0000_0000_0000),
            FpFlags::NONE,
        ),
        Op::Floor | Op::Ceil => {
            if a.is_nan() {
                return out(Expected::F64(quiet(a).to_bits()), snan_flag(&[a]));
            }
            let v = if case.op == Op::Floor {
                a.floor()
            } else {
                a.ceil()
            };
            out(Expected::F64(v.to_bits()), FpFlags::NONE)
        }
        Op::CmpQ | Op::CmpS => {
            let mut flags = de(&[a, b]);
            let r = if a.is_nan() || b.is_nan() {
                CmpResult::Unordered
            } else if a < b {
                CmpResult::Less
            } else if a > b {
                CmpResult::Greater
            } else {
                CmpResult::Equal
            };
            if r == CmpResult::Unordered && (case.op == Op::CmpS || is_snan(a) || is_snan(b)) {
                flags |= FpFlags::INVALID;
            }
            out(Expected::Cmp(r), flags)
        }
        Op::ToI32 | Op::ToI64 | Op::ToU64 => to_int(case),
        Op::ToF32 => {
            let (v, flags) = narrow_f32(a, case.rm);
            out(Expected::F32(v.to_bits()), flags)
        }
        Op::FromI32 | Op::FromI64 | Op::FromU64 => from_int(case),
        Op::FromF32 => {
            let x = f32::from_bits(case.a as u32);
            let mut flags = FpFlags::NONE;
            if x.is_subnormal() {
                flags |= FpFlags::DENORMAL;
            }
            if x.is_nan() && x.to_bits() & 0x0040_0000 == 0 {
                return out(
                    Expected::F64(quiet(f64::from(x)).to_bits()),
                    flags | FpFlags::INVALID,
                );
            }
            out(Expected::F64(f64::from(x).to_bits()), flags)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::case::Case;

    fn f64_case(op: Op, a: f64, b: f64, rm: Round) -> Case {
        Case {
            op,
            rm,
            a: a.to_bits(),
            b: b.to_bits(),
            c: 0,
        }
    }

    #[test]
    fn ring_matches_host_at_ne() {
        let r = oracle(&f64_case(Op::Add, 0.1, 0.2, Round::NearestEven));
        assert!(r.conflict.is_none());
        assert_eq!(r.expected, Expected::F64((0.1f64 + 0.2).to_bits()));
        assert_eq!(r.flags, FpFlags::INEXACT);
    }

    #[test]
    fn directed_div_differs_from_ne() {
        let ne = oracle(&f64_case(Op::Div, 1.0, 3.0, Round::NearestEven));
        let dn = oracle(&f64_case(Op::Div, 1.0, 3.0, Round::Down));
        let up = oracle(&f64_case(Op::Div, 1.0, 3.0, Round::Up));
        let (Expected::F64(n), Expected::F64(d), Expected::F64(u)) =
            (&ne.expected, &dn.expected, &up.expected)
        else {
            panic!()
        };
        assert_eq!(*d + 1, *u, "down and up bracket by one ulp");
        assert!(*n == *d || *n == *u);
    }

    #[test]
    fn underflow_boundary_after_rounding() {
        // (1 − 2^-53)·2^-1022 by exact division: rounds up to min normal,
        // but tininess is judged before the carry → UNDERFLOW.
        let a = f64::from_bits(0x001F_FFFF_FFFF_FFFF);
        let r = oracle(&f64_case(Op::Div, a, 2.0, Round::NearestEven));
        assert_eq!(r.expected, Expected::F64(f64::MIN_POSITIVE.to_bits()));
        assert!(r.flags.contains(FpFlags::UNDERFLOW | FpFlags::INEXACT));
        // Both operands are normal (0x001F… is the top of the lowest
        // normal binade), so no DENORMAL.
        assert!(!r.flags.contains(FpFlags::DENORMAL));
        assert!(r.conflict.is_none());
    }

    #[test]
    fn min_max_second_operand_semantics() {
        let r = oracle(&f64_case(Op::Min, 0.0, -0.0, Round::NearestEven));
        assert_eq!(r.expected, Expected::F64((-0.0f64).to_bits()));
        let r = oracle(&f64_case(Op::Max, 0.0, -0.0, Round::NearestEven));
        assert_eq!(r.expected, Expected::F64((-0.0f64).to_bits()));
        let snan = f64::from_bits(0x7FF0_0000_0000_0001);
        let r = oracle(&f64_case(Op::Min, 1.0, snan, Round::NearestEven));
        assert_eq!(r.expected, Expected::F64(snan.to_bits()), "forwarded raw");
        assert!(r.flags.contains(FpFlags::INVALID));
    }

    #[test]
    fn narrow_f32_underflow_boundary() {
        // 2^-126 − 3·2^-152: delivered min-normal f32, but still tiny
        // after 24-bit rounding with unbounded exponent.
        let a = 2f64.powi(-126) - 3.0 * 2f64.powi(-152);
        let r = oracle(&f64_case(Op::ToF32, a, 0.0, Round::NearestEven));
        assert_eq!(r.expected, Expected::F32(f32::MIN_POSITIVE.to_bits()));
        assert!(r.flags.contains(FpFlags::UNDERFLOW | FpFlags::INEXACT));
    }

    #[test]
    fn int_conversions() {
        let r = oracle(&f64_case(Op::ToI32, 2147483647.5, 0.0, Round::NearestEven));
        assert_eq!(r.expected, Expected::I32(i32::MAX));
        assert_eq!(r.flags, FpFlags::INEXACT);
        let r = oracle(&f64_case(Op::ToI32, 2147483648.0, 0.0, Round::NearestEven));
        assert_eq!(r.expected, Expected::I32(i32::MIN));
        assert_eq!(r.flags, FpFlags::INVALID);
        let r = oracle(&f64_case(Op::ToU64, -0.25, 0.0, Round::NearestEven));
        assert_eq!(r.expected, Expected::U64(0));
        assert_eq!(r.flags, FpFlags::INEXACT);
        // Directed i64 promotion: 2^53 + 1 is inexact; Down must not
        // round up.
        let big = (1i64 << 53) + 1;
        let c = Case {
            op: Op::FromI64,
            rm: Round::Down,
            a: big as u64,
            b: 0,
            c: 0,
        };
        let r = oracle(&c);
        assert_eq!(r.expected, Expected::F64(((1i64 << 53) as f64).to_bits()));
        assert_eq!(r.flags, FpFlags::INEXACT);
    }
}
