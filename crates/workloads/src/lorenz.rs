//! The Lorenz system simulator (§5.1, §5.4, Fig. 13).
//!
//! `dx/dt = σ(y−x)`, `dy/dt = x(ρ−z) − y`, `dz/dt = xy − βz`, integrated
//! with forward Euler — "the classic example of a chaotic dynamic system":
//! every rounding event is a perturbation that diverges exponentially, so
//! running the same binary under FPVM+MPFR produces a visibly different
//! trajectory (Fig. 13) while FPVM+Vanilla is bit-identical.

use crate::{f, Size, Workload};
use fpvm_ir::{CmpOp, Module, Ty};
use fpvm_machine::OutputEvent;

/// Simulation parameters.
#[derive(Debug, Clone, Copy)]
pub struct Params {
    /// σ.
    pub sigma: f64,
    /// ρ.
    pub rho: f64,
    /// β.
    pub beta: f64,
    /// Time step.
    pub dt: f64,
    /// Steps to integrate (the paper runs 2500).
    pub steps: i64,
    /// Print (x, y, z) every this many steps (plus the final state).
    pub print_every: i64,
    /// Initial condition.
    pub x0: (f64, f64, f64),
}

impl Params {
    /// The paper's configuration: 2500 time steps of the classic system.
    pub fn paper() -> Params {
        Params {
            sigma: 10.0,
            rho: 28.0,
            beta: 8.0 / 3.0,
            dt: 0.02,
            steps: 2500,
            print_every: 100,
            x0: (1.0, 1.0, 1.0),
        }
    }

    fn for_size(size: Size) -> Params {
        match size {
            Size::Tiny => Params {
                steps: 200,
                print_every: 50,
                ..Params::paper()
            },
            Size::S => Params::paper(),
        }
    }
}

/// Build the IR module.
pub fn build(p: Params) -> Module {
    let mut m = Module::new();
    m.build_func("main", &[], None, |b| {
        let x = b.var(Ty::F64);
        let y = b.var(Ty::F64);
        let z = b.var(Ty::F64);
        let i = b.var(Ty::I64);
        let c = b.cf(p.x0.0);
        b.write(x, c);
        let c = b.cf(p.x0.1);
        b.write(y, c);
        let c = b.cf(p.x0.2);
        b.write(z, c);
        let c = b.ci(0);
        b.write(i, c);
        let header = b.new_block();
        let body = b.new_block();
        let print_b = b.new_block();
        let cont = b.new_block();
        let exit = b.new_block();
        b.br(header);

        b.switch_to(header);
        let iv = b.read(i);
        let steps = b.ci(p.steps);
        let c = b.icmp(CmpOp::Lt, iv, steps);
        b.cond_br(c, body, exit);

        b.switch_to(body);
        let xv = b.read(x);
        let yv = b.read(y);
        let zv = b.read(z);
        // dx = sigma * (y - x)
        let sigma = b.cf(p.sigma);
        let ymx = b.fsub(yv, xv);
        let dx = b.fmul(sigma, ymx);
        // dy = x * (rho - z) - y
        let rho = b.cf(p.rho);
        let rmz = b.fsub(rho, zv);
        let xr = b.fmul(xv, rmz);
        let dy = b.fsub(xr, yv);
        // dz = x*y - beta*z
        let xy = b.fmul(xv, yv);
        let beta = b.cf(p.beta);
        let bz = b.fmul(beta, zv);
        let dz = b.fsub(xy, bz);
        // Euler update.
        let dt = b.cf(p.dt);
        let sx = b.fmul(dx, dt);
        let nx = b.fadd(xv, sx);
        b.write(x, nx);
        let sy = b.fmul(dy, dt);
        let ny = b.fadd(yv, sy);
        b.write(y, ny);
        let sz = b.fmul(dz, dt);
        let nz = b.fadd(zv, sz);
        b.write(z, nz);
        // Periodic print.
        let one = b.ci(1);
        let inext = b.iadd(iv, one);
        b.write(i, inext);
        let pe = b.ci(p.print_every);
        let rem = b.irem(inext, pe);
        let zero = b.ci(0);
        let is_print = b.icmp(CmpOp::Eq, rem, zero);
        b.cond_br(is_print, print_b, cont);

        b.switch_to(print_b);
        let xv = b.read(x);
        b.printf(xv);
        let yv = b.read(y);
        b.printf(yv);
        let zv = b.read(z);
        b.printf(zv);
        b.br(cont);

        b.switch_to(cont);
        b.br(header);

        b.switch_to(exit);
        // Final state.
        let xv = b.read(x);
        b.printf(xv);
        let yv = b.read(y);
        b.printf(yv);
        let zv = b.read(z);
        b.printf(zv);
        b.ret(None);
    });
    m
}

/// Op-for-op native reference.
pub fn reference(p: Params) -> Vec<OutputEvent> {
    let mut out = Vec::new();
    let (mut x, mut y, mut z) = p.x0;
    for i in 0..p.steps {
        let dx = p.sigma * (y - x);
        let dy = x * (p.rho - z) - y;
        let dz = x * y - p.beta * z;
        x += dx * p.dt;
        y += dy * p.dt;
        z += dz * p.dt;
        if (i + 1) % p.print_every == 0 {
            out.push(f(x));
            out.push(f(y));
            out.push(f(z));
        }
    }
    out.push(f(x));
    out.push(f(y));
    out.push(f(z));
    out
}

/// The packaged workload.
pub fn workload(size: Size) -> Workload {
    let p = Params::for_size(size);
    Workload {
        name: "Lorenz Attractor",
        config: "n.a.",
        module: build(p),
        reference: reference(p),
    }
}

/// A seeded variant for input-farm sweeps (the `fpvm-fleet` runner): the
/// initial condition is perturbed deterministically from `seed`, so each
/// member of the ensemble integrates a distinct trajectory while the
/// module structure (and thus the trap sites) stays identical. Seed 0 is
/// the unperturbed paper initial condition.
pub fn workload_seeded(size: Size, seed: u64) -> Workload {
    let mut p = Params::for_size(size);
    if seed != 0 {
        let mut rng = crate::Lcg(seed);
        // Perturbations in [0, 1e-3): small enough to stay on the
        // attractor, large enough that chaos separates the trajectories.
        p.x0.0 += rng.next_f64() * 1e-3;
        p.x0.1 += rng.next_f64() * 1e-3;
        p.x0.2 += rng.next_f64() * 1e-3;
    }
    Workload {
        name: "Lorenz Attractor (seeded)",
        config: "n.a.",
        module: build(p),
        reference: reference(p),
    }
}
