//! NAS IS (§5.1): integer bucket sort — the paper's *lowest* slowdown
//! (204× on R815, Fig. 12). The sort itself is pure integer work that FPVM
//! never touches; the floating point comes from NPB's `randlc`
//! pseudorandom generator (double-precision multiplicative LCG modulo
//! 2^46), which generates the keys, plus a small FP verification stat.

use crate::{f, i, Size, Workload};
use fpvm_ir::build_util::loop_n;
use fpvm_ir::{FuncBuilder, GlobalInit, MathFn, Module, Ty, Value, Var};
use fpvm_machine::OutputEvent;

/// Parameters.
#[derive(Debug, Clone, Copy)]
pub struct Params {
    /// Number of keys.
    pub n: i64,
    /// Key range (power of two).
    pub max_key: i64,
    /// Ranking iterations (NPB IS runs 10).
    pub iterations: i64,
    /// randlc seed (odd, < 2^46).
    pub seed: f64,
}

/// NPB randlc constants: a = 5^13, arithmetic mod 2^46 via 2^23 splits.
const A: f64 = 1220703125.0;
const T23: f64 = 8388608.0; // 2^23
const R23: f64 = 1.0 / T23;
const T46: f64 = T23 * T23;
const R46: f64 = 1.0 / T46;

/// One randlc step in the IR: updates `x_var`, returns the uniform in [0,1).
fn randlc_ir(b: &mut FuncBuilder, x_var: Var) -> Value {
    let floor = |b: &mut FuncBuilder, v: Value| b.math(MathFn::Floor, &[v]);
    let a = b.cf(A);
    let r23 = b.cf(R23);
    let t23 = b.cf(T23);
    let r46 = b.cf(R46);
    let t46 = b.cf(T46);
    // Split a.
    let t1 = b.fmul(r23, a);
    let a1 = floor(b, t1);
    let t23a1 = b.fmul(t23, a1);
    let a2 = b.fsub(a, t23a1);
    // Split x.
    let x = b.read(x_var);
    let t1 = b.fmul(r23, x);
    let x1 = floor(b, t1);
    let t23x1 = b.fmul(t23, x1);
    let x2 = b.fsub(x, t23x1);
    // z = lower 46 bits of a1*x2 + a2*x1 (mod 2^23).
    let p1 = b.fmul(a1, x2);
    let p2 = b.fmul(a2, x1);
    let t1 = b.fadd(p1, p2);
    let rt1 = b.fmul(r23, t1);
    let t2 = floor(b, rt1);
    let t23t2 = b.fmul(t23, t2);
    let z = b.fsub(t1, t23t2);
    // x = (t23*z + a2*x2) mod 2^46.
    let tz = b.fmul(t23, z);
    let p3 = b.fmul(a2, x2);
    let t3 = b.fadd(tz, p3);
    let rt3 = b.fmul(r46, t3);
    let t4 = floor(b, rt3);
    let t46t4 = b.fmul(t46, t4);
    let xn = b.fsub(t3, t46t4);
    b.write(x_var, xn);
    b.fmul(r46, xn)
}

/// One randlc step in the reference.
fn randlc_ref(x: &mut f64) -> f64 {
    let t1 = R23 * A;
    let a1 = t1.floor();
    let a2 = A - T23 * a1;
    let t1 = R23 * *x;
    let x1 = t1.floor();
    let x2 = *x - T23 * x1;
    let t1 = a1 * x2 + a2 * x1;
    let t2 = (R23 * t1).floor();
    let z = t1 - T23 * t2;
    let t3 = T23 * z + a2 * x2;
    let t4 = (R46 * t3).floor();
    *x = t3 - T46 * t4;
    R46 * *x
}

impl Params {
    fn for_size(size: Size) -> Params {
        match size {
            Size::Tiny => Params {
                n: 512,
                max_key: 256,
                iterations: 3,
                seed: 314159265.0,
            },
            Size::S => Params {
                n: 8192,
                max_key: 2048,
                iterations: 10,
                seed: 314159265.0,
            },
        }
    }
}

/// Build the IR module.
pub fn build(p: Params) -> Module {
    let mut m = Module::new();
    let g_keys = m.global("keys", GlobalInit::Zeroed(p.n as usize * 8));
    let g_counts = m.global("counts", GlobalInit::Zeroed(p.max_key as usize * 8));
    m.build_func("main", &[], None, |b| {
        let keys = b.global_addr(g_keys);
        let keys_var = b.var(Ty::I64);
        b.write(keys_var, keys);
        let counts = b.global_addr(g_counts);
        let counts_var = b.var(Ty::I64);
        b.write(counts_var, counts);
        let state = b.var(Ty::F64);
        let seed = b.cf(p.seed);
        b.write(state, seed);
        // Generate keys with NPB's randlc (FP multiplicative LCG mod 2^46).
        loop_n(b, p.n, |b, iv| {
            let u = randlc_ir(b, state);
            let range = b.cf(p.max_key as f64);
            let scaled = b.fmul(u, range);
            let key = b.ftoi(scaled);
            let three = b.ci(3);
            let off = b.ishl(iv, three);
            let base = b.read(keys_var);
            let addr = b.iadd(base, off);
            b.storei(addr, 0, key);
        });
        // NPB IS ranks the keys `iterations` times (the FP generation above
        // happens once, so the steady state is integer-dominated).
        loop_n(b, p.iterations, |b, _it| {
            // Clear counts.
            loop_n(b, p.max_key, |b, kv| {
                let three = b.ci(3);
                let off = b.ishl(kv, three);
                let cbase = b.read(counts_var);
                let caddr = b.iadd(cbase, off);
                let z = b.ci(0);
                b.storei(caddr, 0, z);
            });
            // Count.
            loop_n(b, p.n, |b, iv| {
                let three = b.ci(3);
                let off = b.ishl(iv, three);
                let kbase = b.read(keys_var);
                let kaddr = b.iadd(kbase, off);
                let key = b.loadi(kaddr, 0);
                let koff = b.ishl(key, three);
                let cbase = b.read(counts_var);
                let caddr = b.iadd(cbase, koff);
                let cur = b.loadi(caddr, 0);
                let one = b.ci(1);
                let next = b.iadd(cur, one);
                b.storei(caddr, 0, next);
            });
            // Prefix-sum the counts into ranks (in place).
            let run = b.var(Ty::I64);
            let z = b.ci(0);
            b.write(run, z);
            loop_n(b, p.max_key, |b, kv| {
                let three = b.ci(3);
                let off = b.ishl(kv, three);
                let cbase = b.read(counts_var);
                let caddr = b.iadd(cbase, off);
                let c = b.loadi(caddr, 0);
                let r = b.read(run);
                b.storei(caddr, 0, r);
                let r2 = b.iadd(r, c);
                b.write(run, r2);
            });
        });
        // Verification checksum: sum of rank(key_i) for sampled i, plus an
        // FP mean of the sampled ranks (the workload's only FP).
        let check = b.var(Ty::I64);
        let fsum = b.var(Ty::F64);
        let zi = b.ci(0);
        b.write(check, zi);
        let zf = b.cf(0.0);
        b.write(fsum, zf);
        let samples = 64i64.min(p.n);
        let stride = p.n / samples;
        loop_n(b, samples, |b, sv| {
            let stride_c = b.ci(stride);
            let idx = b.imul(sv, stride_c);
            let three = b.ci(3);
            let off = b.ishl(idx, three);
            let kbase = b.read(keys_var);
            let kaddr = b.iadd(kbase, off);
            let key = b.loadi(kaddr, 0);
            let koff = b.ishl(key, three);
            let cbase = b.read(counts_var);
            let caddr = b.iadd(cbase, koff);
            let rank = b.loadi(caddr, 0);
            let c = b.read(check);
            let c2 = b.iadd(c, rank);
            b.write(check, c2);
            let rf = b.itof(rank);
            let s = b.read(fsum);
            let s2 = b.fadd(s, rf);
            b.write(fsum, s2);
        });
        let c = b.read(check);
        b.printi(c);
        let s = b.read(fsum);
        let cnt = b.cf(samples as f64);
        let mean = b.fdiv(s, cnt);
        b.printf(mean);
        b.ret(None);
    });
    m
}

/// Op-for-op native reference.
pub fn reference(p: Params) -> Vec<OutputEvent> {
    let mut x = p.seed;
    let n = p.n as usize;
    let mut keys = vec![0i64; n];
    for k in keys.iter_mut() {
        let u = randlc_ref(&mut x);
        *k = (u * p.max_key as f64) as i64;
    }
    let mut counts = vec![0i64; p.max_key as usize];
    for _ in 0..p.iterations {
        for c in counts.iter_mut() {
            *c = 0;
        }
        for &k in &keys {
            counts[k as usize] += 1;
        }
        let mut run = 0i64;
        for c in counts.iter_mut() {
            let t = *c;
            *c = run;
            run += t;
        }
    }
    let samples = 64i64.min(p.n);
    let stride = (p.n / samples) as usize;
    let mut check = 0i64;
    let mut fsum = 0.0f64;
    for s in 0..samples as usize {
        let rank = counts[keys[s * stride] as usize];
        check += rank;
        fsum += rank as f64;
    }
    vec![i(check), f(fsum / samples as f64)]
}

/// The packaged workload.
pub fn workload(size: Size) -> Workload {
    let p = Params::for_size(size);
    Workload {
        name: "NAS IS",
        config: "Class S",
        module: build(p),
        reference: reference(p),
    }
}
