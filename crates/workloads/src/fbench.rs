//! FBench — John Walker's floating point trigonometry benchmark (§5.1),
//! adapted.
//!
//! The original FBench evaluates a four-surface lens design by tracing
//! marginal rays trigonometrically (`sin`/`asin`-dense inner loop). This
//! adaptation keeps the classic surface prescription and the
//! `transit_surface` recurrence, traces a fan of ray heights, and repeats
//! the trace with an accumulator carried between iterations (preventing
//! algebraic simplification, as the original's repetition loop does).
//! Math calls go through the external libm boundary, exercising FPVM's
//! math-wrapper interposition.

use crate::{f, Size, Workload};
use fpvm_ir::{CmpOp, MathFn, Module, Ty};
use fpvm_machine::OutputEvent;

/// Lens prescription: (radius, n_from, n_to, spacing to next surface).
/// The classic FBench 4-surface telescope objective.
const SURFACES: [(f64, f64, f64, f64); 4] = [
    (27.05, 1.0, 1.5137, 0.52),
    (-16.68, 1.5137, 1.0, 0.138),
    (-16.68, 1.0, 1.6164, 0.38),
    (-78.1, 1.6164, 1.0, 0.0),
];

/// Ray heights traced (fractions of the 4 mm clear aperture).
const HEIGHTS: [f64; 5] = [0.4, 0.8, 1.2, 1.6, 2.0];

/// Parameters.
#[derive(Debug, Clone, Copy)]
pub struct Params {
    /// Outer repetitions of the full trace.
    pub iterations: i64,
}

impl Params {
    fn for_size(size: Size) -> Params {
        match size {
            Size::Tiny => Params { iterations: 4 },
            Size::S => Params { iterations: 60 },
        }
    }
}

/// Build the IR module.
pub fn build(p: Params) -> Module {
    let mut m = Module::new();
    m.build_func("main", &[], None, |b| {
        let acc = b.var(Ty::F64);
        let iter = b.var(Ty::I64);
        let zero = b.cf(0.0);
        b.write(acc, zero);
        let czero = b.ci(0);
        b.write(iter, czero);
        let header = b.new_block();
        let body = b.new_block();
        let exit = b.new_block();
        b.br(header);

        b.switch_to(header);
        let iv = b.read(iter);
        let n = b.ci(p.iterations);
        let c = b.icmp(CmpOp::Lt, iv, n);
        b.cond_br(c, body, exit);

        b.switch_to(body);
        for &h0 in &HEIGHTS {
            // Perturb the ray height with the accumulator so iterations
            // cannot be collapsed: h = h0 + acc * 1e-12.
            let accv = b.read(acc);
            let tiny = b.cf(1e-12);
            let pert = b.fmul(accv, tiny);
            let h0c = b.cf(h0);
            let mut h = b.fadd(h0c, pert);
            // Surface 1: parallel incoming light (object_distance = 0).
            let (r1, nf1, nt1, d1) = SURFACES[0];
            let r = b.cf(r1);
            let iang_sin = b.fdiv(h, r);
            let iang = b.math(MathFn::Asin, &[iang_sin]);
            let ratio = b.cf(nf1 / nt1);
            let rang_sin = b.fmul(ratio, iang_sin);
            let rang = b.math(MathFn::Asin, &[rang_sin]);
            let mut asa = b.fsub(iang, rang); // axis slope angle (from 0)
            let sin_asa = b.math(MathFn::Sin, &[asa]);
            let mut od = b.fdiv(h, sin_asa); // object distance
            let dmove = b.cf(d1);
            od = b.fsub(od, dmove);
            // Surfaces 2..4: general transit.
            for &(rk, nfk, ntk, dk) in &SURFACES[1..] {
                let r = b.cf(rk);
                let omr = b.fsub(od, r);
                let q = b.fdiv(omr, r);
                let sin_asa = b.math(MathFn::Sin, &[asa]);
                let iang_sin = b.fmul(q, sin_asa);
                let iang = b.math(MathFn::Asin, &[iang_sin]);
                let ratio = b.cf(nfk / ntk);
                let rang_sin = b.fmul(ratio, iang_sin);
                let rang = b.math(MathFn::Asin, &[rang_sin]);
                let step = b.fsub(iang, rang);
                let old_asa = asa;
                asa = b.fadd(asa, step);
                let sin_old = b.math(MathFn::Sin, &[old_asa]);
                h = b.fmul(od, sin_old);
                let sin_new = b.math(MathFn::Sin, &[asa]);
                od = b.fdiv(h, sin_new);
                let dmove = b.cf(dk);
                od = b.fsub(od, dmove);
            }
            // Accumulate the back focal distance.
            let accv = b.read(acc);
            let nacc = b.fadd(accv, od);
            b.write(acc, nacc);
        }
        let one = b.ci(1);
        let inext = b.iadd(iv, one);
        b.write(iter, inext);
        b.br(header);

        b.switch_to(exit);
        let accv = b.read(acc);
        b.printf(accv);
        b.ret(None);
    });
    m
}

/// Op-for-op native reference.
pub fn reference(p: Params) -> Vec<OutputEvent> {
    let mut acc = 0.0f64;
    for _ in 0..p.iterations {
        for &h0 in &HEIGHTS {
            let mut h = h0 + acc * 1e-12;
            let (r1, nf1, nt1, d1) = SURFACES[0];
            let iang_sin = h / r1;
            let iang = iang_sin.asin();
            let rang_sin = (nf1 / nt1) * iang_sin;
            let rang = rang_sin.asin();
            let mut asa = iang - rang;
            let mut od = h / asa.sin();
            od -= d1;
            for &(rk, nfk, ntk, dk) in &SURFACES[1..] {
                let q = (od - rk) / rk;
                let iang_sin = q * asa.sin();
                let iang = iang_sin.asin();
                let rang_sin = (nfk / ntk) * iang_sin;
                let rang = rang_sin.asin();
                let old_asa = asa;
                asa += iang - rang;
                h = od * old_asa.sin();
                od = h / asa.sin();
                od -= dk;
            }
            acc += od;
        }
    }
    vec![f(acc)]
}

/// The packaged workload.
pub fn workload(size: Size) -> Workload {
    let p = Params::for_size(size);
    Workload {
        name: "FBench",
        config: "n.a.",
        module: build(p),
        reference: reference(p),
    }
}
