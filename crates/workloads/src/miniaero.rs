//! miniAero (§5.1): compressible-flow finite-volume kernel.
//!
//! The Mantevo miniAero miniapp solves the compressible Navier-Stokes
//! equations; this reproduction keeps its computational heart — per-face
//! flux evaluation with sound-speed `sqrt`s and wave-speed `min`/`max` —
//! as a 1D Sod shock-tube solved with Rusanov (local Lax-Friedrichs)
//! fluxes. Per §5.3 it also reproduces miniAero's correctness-trap
//! profile: at the end of each step the state is checksummed through a
//! bit-punning reinterpretation (serialization-style), so the patched
//! sites *do* find boxed values (demotion happens) but sit **off** the
//! critical flux loop — "miniaero's dynamic checks do not typically
//! succeed, but they are not encountered in critical loops either."

use crate::{f, i, Size, Workload};
use fpvm_ir::build_util::loop_n;
use fpvm_ir::{FuncBuilder, GlobalInit, Module, Ty, Value, Var};
use fpvm_machine::OutputEvent;

/// Parameters.
#[derive(Debug, Clone, Copy)]
pub struct Params {
    /// Number of cells.
    pub cells: i64,
    /// Time steps.
    pub steps: i64,
    /// dt/dx.
    pub lambda: f64,
}

impl Params {
    fn for_size(size: Size) -> Params {
        match size {
            Size::Tiny => Params {
                cells: 24,
                steps: 8,
                lambda: 0.15,
            },
            Size::S => Params {
                cells: 64,
                steps: 40,
                lambda: 0.15,
            },
        }
    }
}

const GAMMA: f64 = 1.4;

/// Load the conservative state (rho, mom, ene) of cell `iv`.
fn load_state(
    b: &mut FuncBuilder,
    rho: Var,
    mom: Var,
    ene: Var,
    iv: Value,
) -> (Value, Value, Value) {
    let three = b.ci(3);
    let off = b.ishl(iv, three);
    let rb = b.read(rho);
    let ra = b.iadd(rb, off);
    let r = b.loadf(ra, 0);
    let mb = b.read(mom);
    let ma = b.iadd(mb, off);
    let mv = b.loadf(ma, 0);
    let eb = b.read(ene);
    let ea = b.iadd(eb, off);
    let e = b.loadf(ea, 0);
    (r, mv, e)
}

/// Physical fluxes + max wave speed for one state.
fn flux_of(b: &mut FuncBuilder, r: Value, mv: Value, e: Value) -> (Value, Value, Value, Value) {
    // u = m/ρ; p = (γ−1)(E − ½ρu²); c = √(γp/ρ); s = |u| + c
    let u = b.fdiv(mv, r);
    let half = b.cf(0.5);
    let ru = b.fmul(r, u);
    let ru2 = b.fmul(ru, u);
    let ke = b.fmul(half, ru2);
    let inner = b.fsub(e, ke);
    let gm1 = b.cf(GAMMA - 1.0);
    let p = b.fmul(gm1, inner);
    let gp = b.cf(GAMMA);
    let gpp = b.fmul(gp, p);
    let c2 = b.fdiv(gpp, r);
    let c = b.fsqrt(c2);
    // |u| via the libm call, as the C source would (fabs(u)); the IR-level
    // fabs would compile to the andpd idiom and get correctness-patched
    // into the hot flux loop, which is not miniAero's paper profile.
    let au = b.math(fpvm_ir::MathFn::Fabs, &[u]);
    let s = b.fadd(au, c);
    // F = (m, m·u + p, u(E + p))
    let f1 = mv;
    let mu = b.fmul(mv, u);
    let f2 = b.fadd(mu, p);
    let ep = b.fadd(e, p);
    let f3 = b.fmul(u, ep);
    (f1, f2, f3, s)
}

/// Build the IR module.
pub fn build(p: Params) -> Module {
    let n = p.cells;
    let mut m = Module::new();
    let mk = |m: &mut Module, name: &str| m.global(name, GlobalInit::Zeroed(n as usize * 8 + 8));
    let g_rho = mk(&mut m, "rho");
    let g_mom = mk(&mut m, "mom");
    let g_ene = mk(&mut m, "ene");
    // Interface fluxes (n+1 faces).
    let g_f1 = mk(&mut m, "f1");
    let g_f2 = mk(&mut m, "f2");
    let g_f3 = mk(&mut m, "f3");
    m.build_func("main", &[], None, |b| {
        let rho = b.var(Ty::I64);
        let mom = b.var(Ty::I64);
        let ene = b.var(Ty::I64);
        let fl1 = b.var(Ty::I64);
        let fl2 = b.var(Ty::I64);
        let fl3 = b.var(Ty::I64);
        for (var, g) in [
            (rho, g_rho),
            (mom, g_mom),
            (ene, g_ene),
            (fl1, g_f1),
            (fl2, g_f2),
            (fl3, g_f3),
        ] {
            let a = b.global_addr(g);
            b.write(var, a);
        }
        // Sod initial condition: left (1, 0, 2.5), right (0.125, 0, 0.25).
        loop_n(b, n, |b, iv| {
            let three = b.ci(3);
            let off = b.ishl(iv, three);
            let half_n = b.ci(n / 2);
            let is_left = b.icmp(fpvm_ir::CmpOp::Lt, iv, half_n);
            let rv = b.var(Ty::F64);
            let ev = b.var(Ty::F64);
            fpvm_ir::build_util::if_else(
                b,
                is_left,
                |b| {
                    let c = b.cf(1.0);
                    b.write(rv, c);
                    let c = b.cf(2.5);
                    b.write(ev, c);
                },
                |b| {
                    let c = b.cf(0.125);
                    b.write(rv, c);
                    let c = b.cf(0.25);
                    b.write(ev, c);
                },
            );
            let rb = b.read(rho);
            let addr = b.iadd(rb, off);
            let v = b.read(rv);
            b.storef(addr, 0, v);
            let mb = b.read(mom);
            let addr = b.iadd(mb, off);
            let z = b.cf(0.0);
            b.storef(addr, 0, z);
            let eb = b.read(ene);
            let addr = b.iadd(eb, off);
            let v = b.read(ev);
            b.storef(addr, 0, v);
        });
        // Time stepping.
        let check = b.var(Ty::I64);
        let zi = b.ci(0);
        b.write(check, zi);
        loop_n(b, p.steps, |b, _step| {
            // Interior faces k = 1..n-1 between cells k-1 and k (boundary
            // faces use one-sided states = reflective-ish transmissive).
            loop_n(b, n - 1, |b, k0| {
                let one = b.ci(1);
                let k = b.iadd(k0, one);
                let km1 = b.isub(k, one);
                let (rl, ml, el) = load_state(b, rho, mom, ene, km1);
                let (rr, mr, er) = load_state(b, rho, mom, ene, k);
                let (fl1v, fl2v, fl3v, sl) = flux_of(b, rl, ml, el);
                let (fr1v, fr2v, fr3v, sr) = flux_of(b, rr, mr, er);
                let smax = b.fmax(sl, sr);
                let half = b.cf(0.5);
                let store_flux = |b: &mut FuncBuilder,
                                  favg_l: Value,
                                  favg_r: Value,
                                  ul: Value,
                                  ur: Value,
                                  dstv: Var| {
                    let s = b.fadd(favg_l, favg_r);
                    let avg = b.fmul(half, s);
                    let du = b.fsub(ur, ul);
                    let sd = b.fmul(smax, du);
                    let diss = b.fmul(half, sd);
                    let flux = b.fsub(avg, diss);
                    let three = b.ci(3);
                    let off = b.ishl(k, three);
                    let base = b.read(dstv);
                    let addr = b.iadd(base, off);
                    b.storef(addr, 0, flux);
                };
                store_flux(b, fl1v, fr1v, rl, rr, fl1);
                store_flux(b, fl2v, fr2v, ml, mr, fl2);
                store_flux(b, fl3v, fr3v, el, er, fl3);
            });
            // Update interior cells i = 1..n-1: U -= λ (F_{i+1} − F_i),
            // with face indices: cell i bounded by faces i and i+1.
            loop_n(b, n - 2, |b, i0| {
                let one = b.ci(1);
                let iv = b.iadd(i0, one);
                let ip = b.iadd(iv, one);
                let lam = b.cf(p.lambda);
                for (state, fluxv) in [(rho, fl1), (mom, fl2), (ene, fl3)] {
                    let three = b.ci(3);
                    let off_i = b.ishl(iv, three);
                    let off_p = b.ishl(ip, three);
                    let fb = b.read(fluxv);
                    let fa_lo = b.iadd(fb, off_i);
                    let flo = b.loadf(fa_lo, 0);
                    let fa_hi = b.iadd(fb, off_p);
                    let fhi = b.loadf(fa_hi, 0);
                    let df = b.fsub(fhi, flo);
                    let ldf = b.fmul(lam, df);
                    let sb = b.read(state);
                    let sa = b.iadd(sb, off_i);
                    let uv = b.loadf(sa, 0);
                    let un = b.fsub(uv, ldf);
                    b.storef(sa, 0, un);
                }
            });
            // End-of-step serialization checksum: total energy punned to
            // bits (off the hot loop; the box IS found -> demotion).
            let esum = b.var(Ty::F64);
            let zf = b.cf(0.0);
            b.write(esum, zf);
            loop_n(b, n, |b, iv| {
                let three = b.ci(3);
                let off = b.ishl(iv, three);
                let eb = b.read(ene);
                let addr = b.iadd(eb, off);
                let e = b.loadf(addr, 0);
                let s = b.read(esum);
                let s2 = b.fadd(s, e);
                b.write(esum, s2);
            });
            let e = b.read(esum);
            let bits = b.bitcast_fi(e);
            let sh = b.ci(40);
            let hi = b.ishr(bits, sh);
            let c = b.read(check);
            let c2 = b.ixor(c, hi);
            b.write(check, c2);
        });
        // Output: density probes + checksum.
        for probe in [n / 4, n / 2, 3 * n / 4] {
            let iv = b.ci(probe);
            let three = b.ci(3);
            let off = b.ishl(iv, three);
            let rb = b.read(rho);
            let addr = b.iadd(rb, off);
            let r = b.loadf(addr, 0);
            b.printf(r);
        }
        let c = b.read(check);
        b.printi(c);
        b.ret(None);
    });
    m
}

/// Op-for-op native reference.
pub fn reference(p: Params) -> Vec<OutputEvent> {
    let n = p.cells as usize;
    let mut rho = vec![0.0f64; n];
    let mut mom = vec![0.0f64; n];
    let mut ene = vec![0.0f64; n];
    let mut f1 = vec![0.0f64; n + 1];
    let mut f2 = vec![0.0f64; n + 1];
    let mut f3 = vec![0.0f64; n + 1];
    for idx in 0..n {
        if idx < n / 2 {
            rho[idx] = 1.0;
            ene[idx] = 2.5;
        } else {
            rho[idx] = 0.125;
            ene[idx] = 0.25;
        }
    }
    let flux_of = |r: f64, m: f64, e: f64| {
        let u = m / r;
        let ke = 0.5 * (r * u * u);
        let p = (GAMMA - 1.0) * (e - ke);
        let c = (GAMMA * p / r).sqrt();
        let s = u.abs() + c;
        (m, m * u + p, u * (e + p), s)
    };
    let mut check = 0i64;
    for _ in 0..p.steps {
        for k in 1..n {
            let (fl1, fl2, fl3, sl) = flux_of(rho[k - 1], mom[k - 1], ene[k - 1]);
            let (fr1, fr2, fr3, sr) = flux_of(rho[k], mom[k], ene[k]);
            let smax = sl.max(sr);
            f1[k] = 0.5 * (fl1 + fr1) - 0.5 * (smax * (rho[k] - rho[k - 1]));
            f2[k] = 0.5 * (fl2 + fr2) - 0.5 * (smax * (mom[k] - mom[k - 1]));
            f3[k] = 0.5 * (fl3 + fr3) - 0.5 * (smax * (ene[k] - ene[k - 1]));
        }
        for idx in 1..n - 1 {
            rho[idx] -= p.lambda * (f1[idx + 1] - f1[idx]);
            mom[idx] -= p.lambda * (f2[idx + 1] - f2[idx]);
            ene[idx] -= p.lambda * (f3[idx + 1] - f3[idx]);
        }
        let mut esum = 0.0f64;
        for &e in &ene {
            esum += e;
        }
        check ^= (esum.to_bits() >> 40) as i64;
    }
    let mut out: Vec<OutputEvent> = [n / 4, n / 2, 3 * n / 4]
        .iter()
        .map(|&pr| f(rho[pr]))
        .collect();
    out.push(i(check));
    out
}

/// The packaged workload.
pub fn workload(size: Size) -> Workload {
    let p = Params::for_size(size);
    Workload {
        name: "miniAero",
        config: "Flat Plate",
        module: build(p),
        reference: reference(p),
    }
}
