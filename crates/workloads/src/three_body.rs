//! Planar Newtonian three-body simulation (§5.1) — the second chaotic code
//! the paper applies higher precision to.
//!
//! Symplectic (semi-implicit) Euler on three unit-ish masses near a
//! figure-eight-adjacent initial condition; `sqrt`-dense pairwise force
//! kernel, so nearly every dynamic FP instruction rounds.

use crate::{f, Size, Workload};
use fpvm_ir::{CmpOp, FuncBuilder, Module, Ty, Value, Var};
use fpvm_machine::OutputEvent;

/// Simulation parameters.
#[derive(Debug, Clone, Copy)]
pub struct Params {
    /// Gravitational constant (scaled).
    pub g: f64,
    /// Time step.
    pub dt: f64,
    /// Steps.
    pub steps: i64,
    /// Print positions every this many steps.
    pub print_every: i64,
}

impl Params {
    fn for_size(size: Size) -> Params {
        match size {
            Size::Tiny => Params {
                g: 1.0,
                dt: 0.002,
                steps: 150,
                print_every: 50,
            },
            Size::S => Params {
                g: 1.0,
                dt: 0.002,
                steps: 1500,
                print_every: 250,
            },
        }
    }
}

/// Masses and initial state (positions, velocities) for the three bodies.
const MASSES: [f64; 3] = [1.0, 1.0, 0.975];
const INIT: [(f64, f64, f64, f64); 3] = [
    // (x, y, vx, vy) — near the figure-eight choreography.
    (-0.97000436, 0.24308753, 0.4662036850, 0.4323657300),
    (0.97000436, -0.24308753, 0.4662036850, 0.4323657300),
    (0.0, 0.0, -0.93240737, -0.86473146),
];

struct BodyVars {
    x: Var,
    y: Var,
    vx: Var,
    vy: Var,
}

/// Accumulate the acceleration body `i` feels from body `j`.
#[allow(clippy::too_many_arguments)]
fn pair_accel(
    b: &mut FuncBuilder,
    bodies: &[BodyVars],
    i: usize,
    j: usize,
    g: f64,
    ax: Value,
    ay: Value,
) -> (Value, Value) {
    let xi = b.read(bodies[i].x);
    let yi = b.read(bodies[i].y);
    let xj = b.read(bodies[j].x);
    let yj = b.read(bodies[j].y);
    let dx = b.fsub(xj, xi);
    let dy = b.fsub(yj, yi);
    let dx2 = b.fmul(dx, dx);
    let dy2 = b.fmul(dy, dy);
    let r2 = b.fadd(dx2, dy2);
    let r = b.fsqrt(r2);
    let r3 = b.fmul(r2, r);
    let gm = b.cf(g * MASSES[j]);
    let s = b.fdiv(gm, r3);
    let fx = b.fmul(s, dx);
    let fy = b.fmul(s, dy);
    let nax = b.fadd(ax, fx);
    let nay = b.fadd(ay, fy);
    (nax, nay)
}

/// Build the IR module.
pub fn build(p: Params) -> Module {
    let mut m = Module::new();
    m.build_func("main", &[], None, |b| {
        let bodies: Vec<BodyVars> = (0..3)
            .map(|_| BodyVars {
                x: b.var(Ty::F64),
                y: b.var(Ty::F64),
                vx: b.var(Ty::F64),
                vy: b.var(Ty::F64),
            })
            .collect();
        for (k, bv) in bodies.iter().enumerate() {
            let (x, y, vx, vy) = INIT[k];
            let c = b.cf(x);
            b.write(bv.x, c);
            let c = b.cf(y);
            b.write(bv.y, c);
            let c = b.cf(vx);
            b.write(bv.vx, c);
            let c = b.cf(vy);
            b.write(bv.vy, c);
        }
        let step = b.var(Ty::I64);
        let c = b.ci(0);
        b.write(step, c);
        let header = b.new_block();
        let body_b = b.new_block();
        let print_b = b.new_block();
        let cont = b.new_block();
        let exit = b.new_block();
        b.br(header);

        b.switch_to(header);
        let sv = b.read(step);
        let steps = b.ci(p.steps);
        let c = b.icmp(CmpOp::Lt, sv, steps);
        b.cond_br(c, body_b, exit);

        b.switch_to(body_b);
        // Semi-implicit Euler: update velocities from current positions,
        // then positions from new velocities.
        let dt = b.cf(p.dt);
        for i in 0..3 {
            let mut ax = b.cf(0.0);
            let mut ay = b.cf(0.0);
            for j in 0..3 {
                if i != j {
                    let (nax, nay) = pair_accel(b, &bodies, i, j, p.g, ax, ay);
                    ax = nax;
                    ay = nay;
                }
            }
            let vx = b.read(bodies[i].vx);
            let dvx = b.fmul(ax, dt);
            let nvx = b.fadd(vx, dvx);
            b.write(bodies[i].vx, nvx);
            let vy = b.read(bodies[i].vy);
            let dvy = b.fmul(ay, dt);
            let nvy = b.fadd(vy, dvy);
            b.write(bodies[i].vy, nvy);
        }
        for bv in &bodies {
            let x = b.read(bv.x);
            let vx = b.read(bv.vx);
            let dx = b.fmul(vx, dt);
            let nx = b.fadd(x, dx);
            b.write(bv.x, nx);
            let y = b.read(bv.y);
            let vy = b.read(bv.vy);
            let dy = b.fmul(vy, dt);
            let ny = b.fadd(y, dy);
            b.write(bv.y, ny);
        }
        let one = b.ci(1);
        let snext = b.iadd(sv, one);
        b.write(step, snext);
        let pe = b.ci(p.print_every);
        let rem = b.irem(snext, pe);
        let zero = b.ci(0);
        let is_print = b.icmp(CmpOp::Eq, rem, zero);
        b.cond_br(is_print, print_b, cont);

        b.switch_to(print_b);
        for bv in &bodies {
            let x = b.read(bv.x);
            b.printf(x);
            let y = b.read(bv.y);
            b.printf(y);
        }
        b.br(cont);

        b.switch_to(cont);
        b.br(header);

        b.switch_to(exit);
        for bv in &bodies {
            let x = b.read(bv.x);
            b.printf(x);
            let y = b.read(bv.y);
            b.printf(y);
        }
        b.ret(None);
    });
    m
}

/// Op-for-op native reference.
pub fn reference(p: Params) -> Vec<OutputEvent> {
    let mut out = Vec::new();
    let mut pos: Vec<(f64, f64)> = INIT.iter().map(|&(x, y, _, _)| (x, y)).collect();
    let mut vel: Vec<(f64, f64)> = INIT.iter().map(|&(_, _, vx, vy)| (vx, vy)).collect();
    for s in 0..p.steps {
        for i in 0..3 {
            let mut ax = 0.0f64;
            let mut ay = 0.0f64;
            for j in 0..3 {
                if i != j {
                    let dx = pos[j].0 - pos[i].0;
                    let dy = pos[j].1 - pos[i].1;
                    let dx2 = dx * dx;
                    let dy2 = dy * dy;
                    let r2 = dx2 + dy2;
                    let r = r2.sqrt();
                    let r3 = r2 * r;
                    let sgm = (p.g * MASSES[j]) / r3;
                    ax += sgm * dx;
                    ay += sgm * dy;
                }
            }
            vel[i].0 += ax * p.dt;
            vel[i].1 += ay * p.dt;
        }
        for i in 0..3 {
            pos[i].0 += vel[i].0 * p.dt;
            pos[i].1 += vel[i].1 * p.dt;
        }
        if (s + 1) % p.print_every == 0 {
            for i in 0..3 {
                out.push(f(pos[i].0));
                out.push(f(pos[i].1));
            }
        }
    }
    for i in 0..3 {
        out.push(f(pos[i].0));
        out.push(f(pos[i].1));
    }
    out
}

/// The packaged workload.
pub fn workload(size: Size) -> Workload {
    let p = Params::for_size(size);
    Workload {
        name: "Three-Body",
        config: "n.a.",
        module: build(p),
        reference: reference(p),
    }
}
