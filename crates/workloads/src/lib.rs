//! # fpvm-workloads — the paper's benchmark and application suite (§5.1)
//!
//! Every test code the paper evaluates, written against the fpvm-ir builder
//! and compiled to the simulated ISA:
//!
//! | paper code | here | notes |
//! |---|---|---|
//! | FBench | [`fbench`] | Walker's trigonometry-test lens trace (adapted) |
//! | Lorenz Attractor | [`lorenz`] | the paper's own simulator, σ=10 ρ=28 β=8/3 |
//! | Three-Body | [`three_body`] | planar Newtonian three-body problem |
//! | NAS CG | [`nas_cg`] | conjugate gradient, random sparse SPD matrix |
//! | NAS EP | [`nas_ep`] | gaussian-pair tallies (Marsaglia polar) |
//! | NAS MG | [`nas_mg`] | multigrid-style 3D stencil relaxation |
//! | NAS LU | [`nas_lu`] | SSOR sweeps on a 5-point system |
//! | NAS IS | [`nas_is`] | integer bucket sort (low FP density) |
//! | miniAero | [`miniaero`] | 1D compressible-flow (Sod) Rusanov fluxes |
//! | Enzo | [`enzo_like`] | particle-mesh toy with bit-punning idioms in the hot loop |
//!
//! Each module provides `build(size)` → IR [`Module`] plus a **native Rust
//! reference** that mirrors the IR operation-for-operation; the validation
//! suite checks the simulated machine's output is *bit-identical* to the
//! reference, and then that FPVM-with-Vanilla is bit-identical to native
//! (§5.2). Problem sizes are "Class S"-scale so the full pipeline (analysis
//! → patching → virtualized run) completes in seconds per workload; the
//! substitution argument is in DESIGN.md §2.

#![forbid(unsafe_code)]
// Reference implementations mirror the IR programs operation-for-
// operation; index-based loops keep that correspondence literal.
#![allow(clippy::needless_range_loop)]
#![warn(missing_docs)]

pub mod enzo_like;
pub mod fbench;
pub mod lorenz;
pub mod miniaero;
pub mod nas_cg;
pub mod nas_ep;
pub mod nas_is;
pub mod nas_lu;
pub mod nas_mg;
pub mod three_body;

use fpvm_ir::Module;
use fpvm_machine::OutputEvent;

/// Problem size, loosely following NAS class names.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Size {
    /// Tiny: fast enough for per-test validation.
    Tiny,
    /// "Class S"-like: the evaluation size.
    #[default]
    S,
}

/// A buildable workload.
pub struct Workload {
    /// Display name matching the paper's tables.
    pub name: &'static str,
    /// Configuration string ("Class S", "Flat Plate", …).
    pub config: &'static str,
    /// The IR module.
    pub module: Module,
    /// Reference output (from the op-for-op native Rust mirror).
    pub reference: Vec<OutputEvent>,
}

/// Build every workload at the given size, in the paper's Fig. 12 order.
pub fn all_workloads(size: Size) -> Vec<Workload> {
    vec![
        fbench::workload(size),
        lorenz::workload(size),
        three_body::workload(size),
        miniaero::workload(size),
        nas_is::workload(size),
        nas_ep::workload(size),
        nas_cg::workload(size),
        nas_mg::workload(size),
        nas_lu::workload(size),
        enzo_like::workload(size),
    ]
}

/// The subset used for the Fig. 9 / Fig. 10 breakdowns.
pub fn breakdown_workloads(size: Size) -> Vec<Workload> {
    vec![
        miniaero::workload(size),
        enzo_like::workload(size),
        lorenz::workload(size),
        nas_cg::workload(size),
        fbench::workload(size),
        three_body::workload(size),
    ]
}

/// Helper: f64 output event.
pub(crate) fn f(v: f64) -> OutputEvent {
    OutputEvent::F64(v.to_bits())
}

/// Helper: i64 output event.
pub(crate) fn i(v: i64) -> OutputEvent {
    OutputEvent::I64(v)
}

/// A deterministic 64-bit LCG shared by the workload generators and their
/// references (MMIX constants).
#[derive(Debug, Clone, Copy)]
pub struct Lcg(pub u64);

#[allow(clippy::should_implement_trait)] // not an Iterator: infinite raw stream
impl Lcg {
    /// Next raw state.
    pub fn next(&mut self) -> u64 {
        self.0 = self
            .0
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        self.0
    }

    /// Uniform in [0, 1): top 53 bits.
    pub fn next_f64(&mut self) -> f64 {
        (self.next() >> 11) as f64 * (1.0 / 9007199254740992.0)
    }

    /// Uniform integer below `n` (via modulo; fine for tests).
    pub fn below(&mut self, n: u64) -> u64 {
        self.next() % n
    }
}
