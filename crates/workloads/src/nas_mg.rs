//! NAS MG (§5.1): a multigrid-flavored kernel — weighted-Jacobi smoothing
//! sweeps on a 2D 5-point Poisson system with one restrict/correct/prolong
//! V-cycle level, printing the residual norm per cycle. (The full NPB MG is
//! a 3D 4-level V-cycle; this keeps the same arithmetic profile — dense
//! stencil FP multiply-adds — at Class-S-like scale. See DESIGN.md §2.)

use crate::{f, Size, Workload};
use fpvm_ir::build_util::loop_n;
use fpvm_ir::{FuncBuilder, GlobalInit, Module, Ty, Value, Var};
use fpvm_machine::OutputEvent;

/// Parameters.
#[derive(Debug, Clone, Copy)]
pub struct Params {
    /// Fine-grid side (coarse is half).
    pub n: i64,
    /// V-cycles.
    pub cycles: i64,
    /// Smoothing sweeps per leg.
    pub sweeps: i64,
}

impl Params {
    fn for_size(size: Size) -> Params {
        match size {
            Size::Tiny => Params {
                n: 12,
                cycles: 1,
                sweeps: 2,
            },
            Size::S => Params {
                n: 32,
                cycles: 2,
                sweeps: 4,
            },
        }
    }
}

const OMEGA: f64 = 0.8;

struct Grids {
    u: Var,
    rhs: Var,
    coarse: Var,
    n: i64,
}

/// addr = base + 8*(i*n + j)
fn cell(b: &mut FuncBuilder, base: Var, n: i64, iv: Value, jv: Value) -> Value {
    let nn = b.ci(n);
    let row = b.imul(iv, nn);
    let idx = b.iadd(row, jv);
    let three = b.ci(3);
    let off = b.ishl(idx, three);
    let bp = b.read(base);
    b.iadd(bp, off)
}

/// One weighted-Jacobi sweep over the interior of an n×n grid held in `u`
/// with right-hand side `rhs` (in-place Gauss-Seidel-style update, matching
/// the reference exactly).
fn smooth(b: &mut FuncBuilder, g: &Grids, u: Var, rhs: Var, n: i64) {
    loop_n(b, n - 2, |b, i0| {
        let one = b.ci(1);
        let iv = b.iadd(i0, one);
        let iv_var = b.var(Ty::I64);
        b.write(iv_var, iv);
        loop_n(b, n - 2, |b, j0| {
            let one = b.ci(1);
            let jv = b.iadd(j0, one);
            let iv = b.read(iv_var);
            // neighbors
            let im = b.isub(iv, one);
            let ip = b.iadd(iv, one);
            let jm = b.isub(jv, one);
            let jp = b.iadd(jv, one);
            let a_up = cell(b, u, n, im, jv);
            let up = b.loadf(a_up, 0);
            let a_dn = cell(b, u, n, ip, jv);
            let dn = b.loadf(a_dn, 0);
            let a_lf = cell(b, u, n, iv, jm);
            let lf = b.loadf(a_lf, 0);
            let a_rt = cell(b, u, n, iv, jp);
            let rt = b.loadf(a_rt, 0);
            let a_c = cell(b, u, n, iv, jv);
            let uc = b.loadf(a_c, 0);
            let a_f = cell(b, rhs, n, iv, jv);
            let fv = b.loadf(a_f, 0);
            // unew = (1-w)*u + w*( (up+dn+lf+rt+h2*f) / 4 )
            let s1 = b.fadd(up, dn);
            let s2 = b.fadd(s1, lf);
            let s3 = b.fadd(s2, rt);
            let h2 = b.cf(1.0 / ((g.n - 1) as f64 * (g.n - 1) as f64));
            let hf = b.fmul(h2, fv);
            let s4 = b.fadd(s3, hf);
            let quarter = b.cf(0.25);
            let gs = b.fmul(s4, quarter);
            let w = b.cf(OMEGA);
            let wm = b.cf(1.0 - OMEGA);
            let t1 = b.fmul(wm, uc);
            let t2 = b.fmul(w, gs);
            let unew = b.fadd(t1, t2);
            b.storef(a_c, 0, unew);
        });
    });
}

/// Residual L2 norm² accumulated into `acc`.
fn residual_norm(b: &mut FuncBuilder, g: &Grids, acc: Var) {
    let n = g.n;
    let zf = b.cf(0.0);
    b.write(acc, zf);
    loop_n(b, n - 2, |b, i0| {
        let one = b.ci(1);
        let iv = b.iadd(i0, one);
        let iv_var = b.var(Ty::I64);
        b.write(iv_var, iv);
        loop_n(b, n - 2, |b, j0| {
            let one = b.ci(1);
            let jv = b.iadd(j0, one);
            let iv = b.read(iv_var);
            let im = b.isub(iv, one);
            let ip = b.iadd(iv, one);
            let jm = b.isub(jv, one);
            let jp = b.iadd(jv, one);
            let a = cell(b, g.u, n, im, jv);
            let up = b.loadf(a, 0);
            let a = cell(b, g.u, n, ip, jv);
            let dn = b.loadf(a, 0);
            let a = cell(b, g.u, n, iv, jm);
            let lf = b.loadf(a, 0);
            let a = cell(b, g.u, n, iv, jp);
            let rt = b.loadf(a, 0);
            let a = cell(b, g.u, n, iv, jv);
            let uc = b.loadf(a, 0);
            let a = cell(b, g.rhs, n, iv, jv);
            let fv = b.loadf(a, 0);
            // r = f*h2 + up+dn+lf+rt - 4u
            let h2 = b.cf(1.0 / ((n - 1) as f64 * (n - 1) as f64));
            let fh = b.fmul(fv, h2);
            let s1 = b.fadd(up, dn);
            let s2 = b.fadd(s1, lf);
            let s3 = b.fadd(s2, rt);
            let s4 = b.fadd(fh, s3);
            let four = b.cf(4.0);
            let fu = b.fmul(four, uc);
            let r = b.fsub(s4, fu);
            let r2 = b.fmul(r, r);
            let av = b.read(acc);
            let av2 = b.fadd(av, r2);
            b.write(acc, av2);
        });
    });
}

/// Build the IR module.
pub fn build(p: Params) -> Module {
    let n = p.n;
    let nc = n / 2;
    let mut m = Module::new();
    let g_u = m.global("u", GlobalInit::Zeroed((n * n) as usize * 8));
    let g_rhs = m.global("rhs", GlobalInit::Zeroed((n * n) as usize * 8));
    let g_coarse = m.global("coarse", GlobalInit::Zeroed((nc * nc) as usize * 8));
    m.build_func("main", &[], None, |b| {
        let u = b.var(Ty::I64);
        let rhs = b.var(Ty::I64);
        let coarse = b.var(Ty::I64);
        let a = b.global_addr(g_u);
        b.write(u, a);
        let a = b.global_addr(g_rhs);
        b.write(rhs, a);
        let a = b.global_addr(g_coarse);
        b.write(coarse, a);
        let g = Grids { u, rhs, coarse, n };
        // RHS: a few deterministic point charges (as NPB MG seeds ±1).
        for (ci, cj, v) in [
            (n / 4, n / 4, 1.0),
            (3 * n / 4, n / 2, -1.0),
            (n / 2, 3 * n / 4, 1.0),
        ] {
            let iv = b.ci(ci);
            let jv = b.ci(cj);
            let addr = cell(b, g.rhs, n, iv, jv);
            let val = b.cf(v * ((n - 1) * (n - 1)) as f64);
            b.storef(addr, 0, val);
        }
        let acc = b.var(Ty::F64);
        for _ in 0..p.cycles {
            for _ in 0..p.sweeps {
                smooth(b, &g, g.u, g.rhs, n);
            }
            // Restrict the residual-ish field (injection of u) to the
            // coarse grid, smooth there, prolong the correction back.
            loop_n(b, nc - 2, |b, i0| {
                let one = b.ci(1);
                let iv = b.iadd(i0, one);
                let iv_var = b.var(Ty::I64);
                b.write(iv_var, iv);
                loop_n(b, nc - 2, |b, j0| {
                    let one = b.ci(1);
                    let jv = b.iadd(j0, one);
                    let iv = b.read(iv_var);
                    let two = b.ci(2);
                    let fi = b.imul(iv, two);
                    let fj = b.imul(jv, two);
                    let fa = cell(b, g.u, n, fi, fj);
                    let fv = b.loadf(fa, 0);
                    let ca = cell(b, g.coarse, nc, iv, jv);
                    b.storef(ca, 0, fv);
                });
            });
            for _ in 0..p.sweeps / 2 {
                smooth(b, &g, g.coarse, g.coarse, nc);
            }
            loop_n(b, nc - 2, |b, i0| {
                let one = b.ci(1);
                let iv = b.iadd(i0, one);
                let iv_var = b.var(Ty::I64);
                b.write(iv_var, iv);
                loop_n(b, nc - 2, |b, j0| {
                    let one = b.ci(1);
                    let jv = b.iadd(j0, one);
                    let iv = b.read(iv_var);
                    let two = b.ci(2);
                    let fi = b.imul(iv, two);
                    let fj = b.imul(jv, two);
                    let ca = cell(b, g.coarse, nc, iv, jv);
                    let cv = b.loadf(ca, 0);
                    let fa = cell(b, g.u, n, fi, fj);
                    let fv = b.loadf(fa, 0);
                    let half = b.cf(0.5);
                    let corr = b.fmul(half, cv);
                    let sum = b.fadd(fv, corr);
                    b.storef(fa, 0, sum);
                });
            });
            residual_norm(b, &g, acc);
            let av = b.read(acc);
            let norm = b.fsqrt(av);
            b.printf(norm);
        }
        b.ret(None);
    });
    m
}

/// Op-for-op native reference.
pub fn reference(p: Params) -> Vec<OutputEvent> {
    let n = p.n as usize;
    let nc = n / 2;
    let mut u = vec![0.0f64; n * n];
    let mut rhs = vec![0.0f64; n * n];
    let mut coarse = vec![0.0f64; nc * nc];
    let scale = ((p.n - 1) * (p.n - 1)) as f64;
    for (ci, cj, v) in [
        (p.n / 4, p.n / 4, 1.0),
        (3 * p.n / 4, p.n / 2, -1.0),
        (p.n / 2, 3 * p.n / 4, 1.0),
    ] {
        rhs[(ci * p.n + cj) as usize] = v * scale;
    }
    let h2_f = 1.0 / scale;
    let smooth_ref = |u: &mut Vec<f64>, rhs: &Vec<f64>, nn: usize, h2: f64| {
        for i in 1..nn - 1 {
            for j in 1..nn - 1 {
                let up = u[(i - 1) * nn + j];
                let dn = u[(i + 1) * nn + j];
                let lf = u[i * nn + j - 1];
                let rt = u[i * nn + j + 1];
                let uc = u[i * nn + j];
                let fv = rhs[i * nn + j];
                let gs = (((up + dn) + lf) + rt + h2 * fv) * 0.25;
                u[i * nn + j] = (1.0 - OMEGA) * uc + OMEGA * gs;
            }
        }
    };
    let mut out = Vec::new();
    for _ in 0..p.cycles {
        for _ in 0..p.sweeps {
            smooth_ref(&mut u, &rhs, n, h2_f);
        }
        for i in 1..nc - 1 {
            for j in 1..nc - 1 {
                coarse[i * nc + j] = u[(2 * i) * n + 2 * j];
            }
        }
        for _ in 0..p.sweeps / 2 {
            let c2 = coarse.clone();
            smooth_ref(&mut coarse, &c2, nc, h2_f);
        }
        for i in 1..nc - 1 {
            for j in 1..nc - 1 {
                u[(2 * i) * n + 2 * j] += 0.5 * coarse[i * nc + j];
            }
        }
        let mut acc = 0.0f64;
        for i in 1..n - 1 {
            for j in 1..n - 1 {
                let up = u[(i - 1) * n + j];
                let dn = u[(i + 1) * n + j];
                let lf = u[i * n + j - 1];
                let rt = u[i * n + j + 1];
                let uc = u[i * n + j];
                let fv = rhs[i * n + j];
                let r = fv * h2_f + (((up + dn) + lf) + rt) - 4.0 * uc;
                acc += r * r;
            }
        }
        out.push(f(acc.sqrt()));
    }
    out
}

/// The packaged workload.
pub fn workload(size: Size) -> Workload {
    let p = Params::for_size(size);
    Workload {
        name: "NAS MG",
        config: "Class S",
        module: build(p),
        reference: reference(p),
    }
}
