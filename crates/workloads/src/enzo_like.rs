//! Enzo-like cosmology workload (§5.1, §5.3).
//!
//! Enzo is a 307-kLoC AMR astrophysics code; what matters for FPVM's
//! evaluation is its *correctness-trap profile*: "the traps occur in
//! critical loops because the static analysis could not prove they were
//! unneeded. The vast majority of the dynamic checks succeed however,
//! meaning no special handling is needed."
//!
//! This toy particle-mesh gravity code reproduces exactly that structure:
//! particles live in a **heap-allocated interleaved record array**
//! `{id: i64, pos: f64, vel: f64}` (the Fig. 7 struct pattern). The VSA's
//! one-cell heap summary cannot separate the `id` field from the FP
//! fields, so the *integer* `id` loads in the hot per-particle loop get
//! patched with correctness traps — which then almost never find a boxed
//! value (ids are integers), i.e. the checks "succeed". A once-per-step
//! bit-punned mass checksum adds the rare demoting trap.
//!
//! A second heap allocation holds the particle *iteration order* (an
//! integer permutation table, the index-array pattern real AMR codes use
//! for traversal). Its loads in the hot loops are spurious sinks under the
//! one-cell heap summary — no FP value ever lands in that allocation — and
//! are proven safe under allocation-site partitioning
//! (`HeapModel::AllocSite`), which is exactly the precision delta the
//! audit experiment measures. The interleaved record array stays imprecise
//! under both models (the paper-faithful Enzo residual).

use crate::{f, i, Size, Workload};
use fpvm_ir::build_util::loop_n;
use fpvm_ir::{CmpOp, GlobalInit, Module, Ty};
use fpvm_machine::OutputEvent;

/// Parameters.
#[derive(Debug, Clone, Copy)]
pub struct Params {
    /// Number of particles.
    pub particles: i64,
    /// Grid cells.
    pub grid: i64,
    /// Time steps.
    pub steps: i64,
    /// Time step size.
    pub dt: f64,
}

impl Params {
    fn for_size(size: Size) -> Params {
        match size {
            Size::Tiny => Params {
                particles: 32,
                grid: 16,
                steps: 4,
                dt: 0.01,
            },
            Size::S => Params {
                particles: 192,
                grid: 32,
                steps: 12,
                dt: 0.01,
            },
        }
    }
}

/// Record layout: 24 bytes per particle.
const REC: i64 = 24;

/// Build the IR module.
pub fn build(p: Params) -> Module {
    let np = p.particles;
    let ng = p.grid;
    let mut m = Module::new();
    let g_density = m.global("density", GlobalInit::Zeroed(ng as usize * 8));
    let g_force = m.global("force", GlobalInit::Zeroed(ng as usize * 8));
    m.build_func("main", &[], None, |b| {
        let density = b.var(Ty::I64);
        let force = b.var(Ty::I64);
        let a = b.global_addr(g_density);
        b.write(density, a);
        let a = b.global_addr(g_force);
        b.write(force, a);
        // Heap-allocated interleaved particle records (the Fig. 7 shape).
        let parts = b.var(Ty::I64);
        let sz = b.ci(np * REC);
        let pp = b.alloc(sz);
        b.write(parts, pp);
        // Integer-only iteration-order table in a *separate* allocation:
        // particles are visited in reverse (a stand-in for the gather /
        // traversal index arrays of real AMR codes).
        let order = b.var(Ty::I64);
        let osz = b.ci(np * 8);
        let op = b.alloc(osz);
        b.write(order, op);
        loop_n(b, np, |b, jv| {
            let three = b.ci(3);
            let off = b.ishl(jv, three);
            let base = b.read(order);
            let addr = b.iadd(base, off);
            let last = b.ci(np - 1);
            let k = b.isub(last, jv);
            b.storei(addr, 0, k);
        });
        // Init: id = k, pos = (k + 0.37) * ng/np, vel = small alternating.
        loop_n(b, np, |b, kv| {
            let rec = b.ci(REC);
            let off = b.imul(kv, rec);
            let base = b.read(parts);
            let addr = b.iadd(base, off);
            b.storei(addr, 0, kv); // id
            let kf = b.itof(kv);
            let c = b.cf(0.37);
            let kc = b.fadd(kf, c);
            let scale = b.cf(ng as f64 / np as f64);
            let pos = b.fmul(kc, scale);
            b.storef(addr, 8, pos);
            // vel = 0.05 if k even else -0.05 (integer parity).
            let two = b.ci(2);
            let par = b.irem(kv, two);
            let zero = b.ci(0);
            let even = b.icmp(CmpOp::Eq, par, zero);
            let vel = b.var(Ty::F64);
            fpvm_ir::build_util::if_else(
                b,
                even,
                |b| {
                    let v = b.cf(0.05);
                    b.write(vel, v);
                },
                |b| {
                    let v = b.cf(-0.05);
                    b.write(vel, v);
                },
            );
            let v = b.read(vel);
            b.storef(addr, 16, v);
        });
        let checksum = b.var(Ty::I64);
        let zi = b.ci(0);
        b.write(checksum, zi);
        loop_n(b, p.steps, |b, _step| {
            // Clear density.
            loop_n(b, ng, |b, cv| {
                let three = b.ci(3);
                let off = b.ishl(cv, three);
                let base = b.read(density);
                let addr = b.iadd(base, off);
                let z = b.cf(0.0);
                b.storef(addr, 0, z);
            });
            // Deposit (NGP): the HOT loop — reads the integer id from the
            // heap record (patched; check succeeds) and the FP pos.
            loop_n(b, np, |b, jv| {
                let three = b.ci(3);
                let joff = b.ishl(jv, three);
                let obase = b.read(order);
                let oaddr = b.iadd(obase, joff);
                let kv = b.loadi(oaddr, 0); // int-only allocation: spurious
                let rec = b.ci(REC);
                let off = b.imul(kv, rec);
                let base = b.read(parts);
                let addr = b.iadd(base, off);
                let id = b.loadi(addr, 0); // <- patched int load of heap
                let pos = b.loadf(addr, 8);
                // cell = floor(pos) mod ng (kept in range by wrap below).
                let cell = b.ftoi(pos);
                let ngc = b.ci(ng);
                let cw = b.irem(cell, ngc);
                // mass weight depends on id parity (so the id load is live).
                let two = b.ci(2);
                let par = b.irem(id, two);
                let parf = b.itof(par);
                let c1 = b.cf(1.0);
                let c01 = b.cf(0.1);
                let extra = b.fmul(parf, c01);
                let w = b.fadd(c1, extra);
                let three = b.ci(3);
                let coff = b.ishl(cw, three);
                let dbase = b.read(density);
                let daddr = b.iadd(dbase, coff);
                let d = b.loadf(daddr, 0);
                let d2 = b.fadd(d, w);
                b.storef(daddr, 0, d2);
            });
            // "Solve": two smoothing passes density -> force (periodic).
            for _pass in 0..2 {
                loop_n(b, ng, |b, cv| {
                    let one = b.ci(1);
                    let ngc = b.ci(ng);
                    let ngm1 = b.ci(ng - 1);
                    let cm = b.iadd(cv, ngm1);
                    let cmw = b.irem(cm, ngc);
                    let cp = b.iadd(cv, one);
                    let cpw = b.irem(cp, ngc);
                    let three = b.ci(3);
                    let dbase = b.read(density);
                    let off_m = b.ishl(cmw, three);
                    let a_m = b.iadd(dbase, off_m);
                    let dm = b.loadf(a_m, 0);
                    let off_p = b.ishl(cpw, three);
                    let a_p = b.iadd(dbase, off_p);
                    let dp = b.loadf(a_p, 0);
                    let grad = b.fsub(dp, dm);
                    let half = b.cf(-0.5);
                    let fv = b.fmul(half, grad);
                    let fbase = b.read(force);
                    let off_c = b.ishl(cv, three);
                    let fa = b.iadd(fbase, off_c);
                    b.storef(fa, 0, fv);
                });
                // Second pass reads force into density-smoothed form only
                // on the second iteration; keep it simple: copy force ->
                // density scaled, so pass 2 differs.
                loop_n(b, ng, |b, cv| {
                    let three = b.ci(3);
                    let off_c = b.ishl(cv, three);
                    let fbase = b.read(force);
                    let fa = b.iadd(fbase, off_c);
                    let fv = b.loadf(fa, 0);
                    let dbase = b.read(density);
                    let da = b.iadd(dbase, off_c);
                    let dv = b.loadf(da, 0);
                    let c9 = b.cf(0.9);
                    let mix1 = b.fmul(c9, dv);
                    let c1 = b.cf(0.1);
                    let mix2 = b.fmul(c1, fv);
                    let mixed = b.fadd(mix1, mix2);
                    b.storef(da, 0, mixed);
                });
            }
            // Kick + drift: second hot loop with the same patched id load.
            loop_n(b, np, |b, jv| {
                let three = b.ci(3);
                let joff = b.ishl(jv, three);
                let obase = b.read(order);
                let oaddr = b.iadd(obase, joff);
                let kv = b.loadi(oaddr, 0); // int-only allocation: spurious
                let rec = b.ci(REC);
                let off = b.imul(kv, rec);
                let base = b.read(parts);
                let addr = b.iadd(base, off);
                let id = b.loadi(addr, 0); // <- patched int load, succeeds
                let pos = b.loadf(addr, 8);
                let vel = b.loadf(addr, 16);
                let cell = b.ftoi(pos);
                let ngc = b.ci(ng);
                let cw = b.irem(cell, ngc);
                let three = b.ci(3);
                let off_c = b.ishl(cw, three);
                let fbase = b.read(force);
                let fa = b.iadd(fbase, off_c);
                let fv = b.loadf(fa, 0);
                let dt = b.cf(p.dt);
                let dv = b.fmul(fv, dt);
                let nv = b.fadd(vel, dv);
                b.storef(addr, 16, nv);
                let dx = b.fmul(nv, dt);
                let np_ = b.fadd(pos, dx);
                // Wrap into [0, ng): pos = pos - ng*floor(pos/ng).
                let ngf = b.cf(ng as f64);
                let q = b.fdiv(np_, ngf);
                let fl = b.math(fpvm_ir::MathFn::Floor, &[q]);
                let w = b.fmul(ngf, fl);
                let wrapped = b.fsub(np_, w);
                b.storef(addr, 8, wrapped);
                // Keep the id live in an integer accumulator.
                let c = b.read(checksum);
                let c2 = b.iadd(c, id);
                b.write(checksum, c2);
            });
            // Once per step: bit-punned total-mass checksum (the rare
            // demoting correctness trap).
            let msum = b.var(Ty::F64);
            let zf = b.cf(0.0);
            b.write(msum, zf);
            loop_n(b, ng, |b, cv| {
                let three = b.ci(3);
                let off_c = b.ishl(cv, three);
                let dbase = b.read(density);
                let da = b.iadd(dbase, off_c);
                let dv = b.loadf(da, 0);
                let s = b.read(msum);
                let s2 = b.fadd(s, dv);
                b.write(msum, s2);
            });
            let s = b.read(msum);
            let bits = b.bitcast_fi(s);
            let sh = b.ci(32);
            let hi = b.ishr(bits, sh);
            let c = b.read(checksum);
            let c2 = b.ixor(c, hi);
            b.write(checksum, c2);
        });
        // Output: checksum + first few particle positions.
        let c = b.read(checksum);
        b.printi(c);
        for k in 0..4.min(np) {
            let kc = b.ci(k);
            let rec = b.ci(REC);
            let off = b.imul(kc, rec);
            let base = b.read(parts);
            let addr = b.iadd(base, off);
            let pos = b.loadf(addr, 8);
            b.printf(pos);
        }
        b.ret(None);
    });
    m
}

/// Op-for-op native reference.
pub fn reference(p: Params) -> Vec<OutputEvent> {
    let np = p.particles as usize;
    let ng = p.grid as usize;
    let mut ids = vec![0i64; np];
    let mut pos = vec![0.0f64; np];
    let mut vel = vec![0.0f64; np];
    for k in 0..np {
        ids[k] = k as i64;
        pos[k] = (k as f64 + 0.37) * (p.grid as f64 / p.particles as f64);
        vel[k] = if k % 2 == 0 { 0.05 } else { -0.05 };
    }
    // Particles are visited through the reversed iteration-order table.
    let order: Vec<usize> = (0..np).rev().collect();
    let mut density = vec![0.0f64; ng];
    let mut force = vec![0.0f64; ng];
    let mut checksum = 0i64;
    for _ in 0..p.steps {
        for d in density.iter_mut() {
            *d = 0.0;
        }
        for &k in &order {
            let cell = (pos[k] as i64).rem_euclid(p.grid) as usize;
            let w = 1.0 + (ids[k] % 2) as f64 * 0.1;
            density[cell] += w;
        }
        for _pass in 0..2 {
            for c in 0..ng {
                let cm = (c + ng - 1) % ng;
                let cp = (c + 1) % ng;
                force[c] = -0.5 * (density[cp] - density[cm]);
            }
            for c in 0..ng {
                density[c] = 0.9 * density[c] + 0.1 * force[c];
            }
        }
        for &k in &order {
            let cell = (pos[k] as i64).rem_euclid(p.grid) as usize;
            vel[k] += force[cell] * p.dt;
            let moved = pos[k] + vel[k] * p.dt;
            let wrapped = moved - p.grid as f64 * (moved / p.grid as f64).floor();
            pos[k] = wrapped;
            checksum += ids[k];
        }
        let mut msum = 0.0f64;
        for &d in &density {
            msum += d;
        }
        checksum ^= (msum.to_bits() >> 32) as i64;
    }
    let mut out = vec![i(checksum)];
    for &pv in pos.iter().take(4.min(np)) {
        out.push(f(pv));
    }
    out
}

/// The packaged workload.
pub fn workload(size: Size) -> Workload {
    let p = Params::for_size(size);
    Workload {
        name: "Enzo",
        config: "Cosmology Sim.",
        module: build(p),
        reference: reference(p),
    }
}
