//! NAS LU (§5.1): SSOR-flavored solver — symmetric successive
//! over-relaxation sweeps (forward then backward) on a 2D 5-point system,
//! printing the solution norm per iteration. (NPB LU applies SSOR to the
//! 3D Navier-Stokes block system; this keeps the sweep structure and the
//! FP profile — the paper measures LU at 10,773× on R815, among the worst,
//! because like CG virtually every instruction is a rounding multiply-add.)

use crate::{f, Size, Workload};
use fpvm_ir::build_util::loop_n;
use fpvm_ir::{FuncBuilder, GlobalInit, Module, Ty, Value, Var};
use fpvm_machine::OutputEvent;

/// Parameters.
#[derive(Debug, Clone, Copy)]
pub struct Params {
    /// Grid side.
    pub n: i64,
    /// SSOR iterations (each = forward + backward sweep).
    pub iters: i64,
    /// Relaxation factor.
    pub omega: f64,
}

impl Params {
    fn for_size(size: Size) -> Params {
        match size {
            Size::Tiny => Params {
                n: 10,
                iters: 2,
                omega: 1.2,
            },
            Size::S => Params {
                n: 24,
                iters: 6,
                omega: 1.2,
            },
        }
    }
}

fn cell(b: &mut FuncBuilder, base: Var, n: i64, iv: Value, jv: Value) -> Value {
    let nn = b.ci(n);
    let row = b.imul(iv, nn);
    let idx = b.iadd(row, jv);
    let three = b.ci(3);
    let off = b.ishl(idx, three);
    let bp = b.read(base);
    b.iadd(bp, off)
}

/// One SSOR update at (iv, jv): u += ω (rhs + up+dn+lf+rt − 4u) / 4.
fn ssor_update(b: &mut FuncBuilder, u: Var, rhs: Var, n: i64, iv: Value, jv: Value, omega: f64) {
    let one = b.ci(1);
    let im = b.isub(iv, one);
    let ip = b.iadd(iv, one);
    let jm = b.isub(jv, one);
    let jp = b.iadd(jv, one);
    let a = cell(b, u, n, im, jv);
    let up = b.loadf(a, 0);
    let a = cell(b, u, n, ip, jv);
    let dn = b.loadf(a, 0);
    let a = cell(b, u, n, iv, jm);
    let lf = b.loadf(a, 0);
    let a = cell(b, u, n, iv, jp);
    let rt = b.loadf(a, 0);
    let ac = cell(b, u, n, iv, jv);
    let uc = b.loadf(ac, 0);
    let a = cell(b, rhs, n, iv, jv);
    let fv = b.loadf(a, 0);
    let s1 = b.fadd(up, dn);
    let s2 = b.fadd(s1, lf);
    let s3 = b.fadd(s2, rt);
    let s4 = b.fadd(fv, s3);
    let four = b.cf(4.0);
    let fu = b.fmul(four, uc);
    let r = b.fsub(s4, fu);
    let w4 = b.cf(omega / 4.0);
    let du = b.fmul(w4, r);
    let un = b.fadd(uc, du);
    b.storef(ac, 0, un);
}

/// Build the IR module.
pub fn build(p: Params) -> Module {
    let n = p.n;
    let mut m = Module::new();
    let g_u = m.global("u", GlobalInit::Zeroed((n * n) as usize * 8));
    let g_rhs = m.global("rhs", GlobalInit::Zeroed((n * n) as usize * 8));
    m.build_func("main", &[], None, |b| {
        let u = b.var(Ty::I64);
        let rhs = b.var(Ty::I64);
        let a = b.global_addr(g_u);
        b.write(u, a);
        let a = b.global_addr(g_rhs);
        b.write(rhs, a);
        // RHS: smooth deterministic field rhs(i,j) = ((i*31+j*17) % 13 − 6)/13.
        loop_n(b, n, |b, iv| {
            let iv_var = b.var(Ty::I64);
            b.write(iv_var, iv);
            loop_n(b, n, |b, jv| {
                let iv = b.read(iv_var);
                let c31 = b.ci(31);
                let c17 = b.ci(17);
                let t1 = b.imul(iv, c31);
                let t2 = b.imul(jv, c17);
                let t3 = b.iadd(t1, t2);
                let c13 = b.ci(13);
                let r = b.irem(t3, c13);
                let c6 = b.ci(6);
                let centered = b.isub(r, c6);
                let fv = b.itof(centered);
                let thirteen = b.cf(13.0);
                let scaled = b.fdiv(fv, thirteen);
                let addr = cell(b, rhs, n, iv, jv);
                b.storef(addr, 0, scaled);
            });
        });
        let acc = b.var(Ty::F64);
        for _ in 0..p.iters {
            // Forward sweep.
            loop_n(b, n - 2, |b, i0| {
                let one = b.ci(1);
                let iv = b.iadd(i0, one);
                let iv_var = b.var(Ty::I64);
                b.write(iv_var, iv);
                loop_n(b, n - 2, |b, j0| {
                    let one = b.ci(1);
                    let jv = b.iadd(j0, one);
                    let iv = b.read(iv_var);
                    ssor_update(b, u, rhs, n, iv, jv, p.omega);
                });
            });
            // Backward sweep (reverse traversal).
            loop_n(b, n - 2, |b, i0| {
                let nm2 = b.ci(n - 2);
                let iv = b.isub(nm2, i0);
                let iv_var = b.var(Ty::I64);
                b.write(iv_var, iv);
                loop_n(b, n - 2, |b, j0| {
                    let nm2 = b.ci(n - 2);
                    let jv = b.isub(nm2, j0);
                    let iv = b.read(iv_var);
                    ssor_update(b, u, rhs, n, iv, jv, p.omega);
                });
            });
            // Solution norm.
            let zf = b.cf(0.0);
            b.write(acc, zf);
            loop_n(b, n, |b, iv| {
                let iv_var = b.var(Ty::I64);
                b.write(iv_var, iv);
                loop_n(b, n, |b, jv| {
                    let iv = b.read(iv_var);
                    let a = cell(b, u, n, iv, jv);
                    let uv = b.loadf(a, 0);
                    let sq = b.fmul(uv, uv);
                    let av = b.read(acc);
                    let av2 = b.fadd(av, sq);
                    b.write(acc, av2);
                });
            });
            let av = b.read(acc);
            let norm = b.fsqrt(av);
            b.printf(norm);
        }
        b.ret(None);
    });
    m
}

/// Op-for-op native reference.
pub fn reference(p: Params) -> Vec<OutputEvent> {
    let n = p.n as usize;
    let mut u = vec![0.0f64; n * n];
    let mut rhs = vec![0.0f64; n * n];
    for i in 0..n {
        for j in 0..n {
            let r = ((i as i64 * 31 + j as i64 * 17) % 13 - 6) as f64;
            rhs[i * n + j] = r / 13.0;
        }
    }
    let w4 = p.omega / 4.0;
    let update = |u: &mut Vec<f64>, rhs: &Vec<f64>, i: usize, j: usize| {
        let up = u[(i - 1) * n + j];
        let dn = u[(i + 1) * n + j];
        let lf = u[i * n + j - 1];
        let rt = u[i * n + j + 1];
        let uc = u[i * n + j];
        let fv = rhs[i * n + j];
        let r = fv + (((up + dn) + lf) + rt) - 4.0 * uc;
        u[i * n + j] = uc + w4 * r;
    };
    let mut out = Vec::new();
    for _ in 0..p.iters {
        for i in 1..n - 1 {
            for j in 1..n - 1 {
                update(&mut u, &rhs, i, j);
            }
        }
        for i in (1..n - 1).rev() {
            for j in (1..n - 1).rev() {
                update(&mut u, &rhs, i, j);
            }
        }
        let mut acc = 0.0f64;
        for i in 0..n {
            for j in 0..n {
                acc += u[i * n + j] * u[i * n + j];
            }
        }
        out.push(f(acc.sqrt()));
    }
    out
}

/// The packaged workload.
pub fn workload(size: Size) -> Workload {
    let p = Params::for_size(size);
    Workload {
        name: "NAS LU",
        config: "Class S",
        module: build(p),
        reference: reference(p),
    }
}
