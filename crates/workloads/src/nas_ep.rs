//! NAS EP (§5.1): the "embarrassingly parallel" kernel — gaussian random
//! deviates via the Marsaglia polar method, tallied into annuli.
//!
//! The uniform stream is a 64-bit LCG computed in guest *integer*
//! arithmetic (no FP traps), so EP mixes long integer stretches with short
//! bursts of `ln`/`sqrt`-heavy FP — giving it one of the lower slowdowns in
//! Fig. 12 (396× on R815), between IS and the FP-dense codes.

use crate::{f, i, Lcg, Size, Workload};
use fpvm_ir::build_util::{if_then, loop_n};
use fpvm_ir::{CmpOp, GlobalInit, MathFn, Module, Ty};
use fpvm_machine::OutputEvent;

/// Parameters.
#[derive(Debug, Clone, Copy)]
pub struct Params {
    /// Number of candidate pairs.
    pub pairs: i64,
    /// LCG seed.
    pub seed: u64,
}

impl Params {
    fn for_size(size: Size) -> Params {
        match size {
            Size::Tiny => Params {
                pairs: 400,
                seed: 271_828_183,
            },
            Size::S => Params {
                pairs: 6000,
                seed: 271_828_183,
            },
        }
    }
}

const NBINS: usize = 10;
const INV_2_53: f64 = 1.0 / 9007199254740992.0;

/// Build the IR module.
pub fn build(p: Params) -> Module {
    let mut m = Module::new();
    let g_bins = m.global("bins", GlobalInit::Zeroed(NBINS * 8));
    m.build_func("main", &[], None, |b| {
        let state = b.var(Ty::I64);
        let sx = b.var(Ty::F64);
        let sy = b.var(Ty::F64);
        let accepted = b.var(Ty::I64);
        let seed = b.ci(p.seed as i64);
        b.write(state, seed);
        let zf = b.cf(0.0);
        b.write(sx, zf);
        b.write(sy, zf);
        let zi = b.ci(0);
        b.write(accepted, zi);
        let bins = b.global_addr(g_bins);
        let bins_var = b.var(Ty::I64);
        b.write(bins_var, bins);

        loop_n(b, p.pairs, |b, _it| {
            // Two uniforms from the LCG (integer-only until the scale).
            let uniform = |b: &mut fpvm_ir::FuncBuilder| {
                let s = b.read(state);
                let a = b.ci(6364136223846793005);
                let c = b.ci(1442695040888963407);
                let s1 = b.imul(s, a);
                let s2 = b.iadd(s1, c);
                b.write(state, s2);
                let eleven = b.ci(11);
                let top = b.ishr(s2, eleven);
                let fl = b.itof(top);
                let scale = b.cf(INV_2_53);
                b.fmul(fl, scale)
            };
            let u1 = uniform(b);
            let u2 = uniform(b);
            // x = 2u − 1.
            let two = b.cf(2.0);
            let one = b.cf(1.0);
            let x1 = b.fmul(two, u1);
            let x = b.fsub(x1, one);
            let y1 = b.fmul(two, u2);
            let y = b.fsub(y1, one);
            let x2 = b.fmul(x, x);
            let y2 = b.fmul(y, y);
            let t = b.fadd(x2, y2);
            // Accept if 0 < t <= 1.
            let le1 = b.fcmp(CmpOp::Le, t, one);
            let zf = b.cf(0.0);
            let gt0 = b.fcmp(CmpOp::Gt, t, zf);
            let ok = b.iand(le1, gt0);
            if_then(b, ok, |b| {
                // factor = sqrt(-2 ln t / t).
                let lt = b.math(MathFn::Log, &[t]);
                let m2 = b.cf(-2.0);
                let num = b.fmul(m2, lt);
                let q = b.fdiv(num, t);
                let factor = b.fsqrt(q);
                let gx = b.fmul(x, factor);
                let gy = b.fmul(y, factor);
                let s = b.read(sx);
                let s2 = b.fadd(s, gx);
                b.write(sx, s2);
                let s = b.read(sy);
                let s2 = b.fadd(s, gy);
                b.write(sy, s2);
                let n = b.read(accepted);
                let one_i = b.ci(1);
                let n2 = b.iadd(n, one_i);
                b.write(accepted, n2);
                // Bin by floor(max(|gx|, |gy|)), via libm fabs.
                let ax = b.math(MathFn::Fabs, &[gx]);
                let ay = b.math(MathFn::Fabs, &[gy]);
                let mx = b.fmax(ax, ay);
                let bin = b.ftoi(mx);
                let nb = b.ci(NBINS as i64 - 1);
                let over = b.icmp(CmpOp::Gt, bin, nb);
                let bin_var = b.var(Ty::I64);
                b.write(bin_var, bin);
                if_then(b, over, |b| {
                    let nb = b.ci(NBINS as i64 - 1);
                    b.write(bin_var, nb);
                });
                let bv = b.read(bin_var);
                let three = b.ci(3);
                let off = b.ishl(bv, three);
                let base = b.read(bins_var);
                let addr = b.iadd(base, off);
                let cur = b.loadi(addr, 0);
                let one_i = b.ci(1);
                let next = b.iadd(cur, one_i);
                b.storei(addr, 0, next);
            });
        });
        let n = b.read(accepted);
        b.printi(n);
        let s = b.read(sx);
        b.printf(s);
        let s = b.read(sy);
        b.printf(s);
        for k in 0..NBINS as i64 {
            let base = b.read(bins_var);
            let cnt = b.loadi(base, 8 * k);
            b.printi(cnt);
        }
        b.ret(None);
    });
    m
}

/// Op-for-op native reference.
pub fn reference(p: Params) -> Vec<OutputEvent> {
    let mut lcg = Lcg(p.seed);
    let (mut sx, mut sy) = (0.0f64, 0.0f64);
    let mut accepted = 0i64;
    let mut bins = [0i64; NBINS];
    for _ in 0..p.pairs {
        let u1 = ((lcg.next() >> 11) as i64) as f64 * INV_2_53;
        let u2 = ((lcg.next() >> 11) as i64) as f64 * INV_2_53;
        let x = 2.0 * u1 - 1.0;
        let y = 2.0 * u2 - 1.0;
        let t = x * x + y * y;
        if t <= 1.0 && t > 0.0 {
            let factor = (-2.0 * t.ln() / t).sqrt();
            let gx = x * factor;
            let gy = y * factor;
            sx += gx;
            sy += gy;
            accepted += 1;
            let mut bin = gx.abs().max(gy.abs()) as i64;
            if bin > NBINS as i64 - 1 {
                bin = NBINS as i64 - 1;
            }
            bins[bin as usize] += 1;
        }
    }
    let mut out = vec![i(accepted), f(sx), f(sy)];
    out.extend(bins.iter().map(|&c| i(c)));
    out
}

/// The packaged workload.
pub fn workload(size: Size) -> Workload {
    let p = Params::for_size(size);
    Workload {
        name: "NAS EP",
        config: "Class S",
        module: build(p),
        reference: reference(p),
    }
}
