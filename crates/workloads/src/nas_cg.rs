//! NAS CG (§5.1): conjugate gradient iterations on a random sparse
//! symmetric positive-definite matrix — the paper's worst-case slowdown
//! (12,169× on R815, Fig. 12) because nearly every dynamic instruction is a
//! rounding FP multiply-add in the sparse matvec.
//!
//! Structure follows NPB CG in "Class S" spirit: an outer loop of power-
//! method-style iterations, each running `cg_iters` CG steps and printing
//! the residual norm. The matrix is generated deterministically (diagonal-
//! dominant, symmetrized) and stored CSR in global arrays — the integer
//! `cols`/`rowptr` arrays and FP `vals` array are distinct *objects*, which
//! the object-granular VSA distinguishes (no correctness traps in the
//! matvec despite the computed indices).

use crate::{f, Lcg, Size, Workload};
use fpvm_ir::build_util::loop_n;
use fpvm_ir::{CmpOp, FuncBuilder, GlobalInit, Module, Ty, Value, Var};
use fpvm_machine::OutputEvent;

/// Parameters.
#[derive(Debug, Clone, Copy)]
pub struct Params {
    /// Matrix dimension.
    pub n: usize,
    /// Nonzeros per row (including the diagonal).
    pub nnz_row: usize,
    /// CG iterations per outer step.
    pub cg_iters: i64,
    /// Outer iterations.
    pub outer: i64,
    /// RNG seed.
    pub seed: u64,
}

impl Params {
    fn for_size(size: Size) -> Params {
        match size {
            Size::Tiny => Params {
                n: 32,
                nnz_row: 5,
                cg_iters: 5,
                outer: 1,
                seed: 0x5E_EDC6,
            },
            Size::S => Params {
                n: 192,
                nnz_row: 8,
                cg_iters: 15,
                outer: 2,
                seed: 0x5E_EDC6,
            },
        }
    }
}

/// Deterministic CSR SPD-ish matrix: `A = D + S + Sᵀ` with a dominant
/// diagonal. Returns (rowptr, cols, vals).
pub fn gen_matrix(p: Params) -> (Vec<i64>, Vec<i64>, Vec<f64>) {
    let n = p.n;
    let mut rng = Lcg(p.seed);
    let mut entries: Vec<std::collections::BTreeMap<usize, f64>> =
        vec![std::collections::BTreeMap::new(); n];
    for i in 0..n {
        for _ in 0..(p.nnz_row - 1) / 2 {
            let j = rng.below(n as u64) as usize;
            if j != i {
                let v = rng.next_f64() * 0.1;
                *entries[i].entry(j).or_insert(0.0) += v;
                *entries[j].entry(i).or_insert(0.0) += v;
            }
        }
    }
    for (i, e) in entries.iter_mut().enumerate() {
        let row_sum: f64 = e.values().map(|v| v.abs()).sum();
        e.insert(i, row_sum + 1.0 + (i % 7) as f64 * 0.25);
    }
    let mut rowptr = Vec::with_capacity(n + 1);
    let mut cols = Vec::new();
    let mut vals = Vec::new();
    rowptr.push(0i64);
    for e in &entries {
        for (&j, &v) in e {
            cols.push(j as i64);
            vals.push(v);
        }
        rowptr.push(cols.len() as i64);
    }
    (rowptr, cols, vals)
}

/// vec[iv] address: base_var + 8*iv.
fn elem(b: &mut FuncBuilder, base: Var, iv: Value) -> Value {
    let three = b.ci(3);
    let off = b.ishl(iv, three);
    let bp = b.read(base);
    b.iadd(bp, off)
}

/// Build the IR module.
pub fn build(p: Params) -> Module {
    let (rowptr, cols, vals) = gen_matrix(p);
    let n = p.n as i64;
    let mut m = Module::new();
    let g_rowptr = m.global("rowptr", GlobalInit::I64s(rowptr));
    let g_cols = m.global("cols", GlobalInit::I64s(cols));
    let g_vals = m.global("vals", GlobalInit::F64s(vals));
    let g_x = m.global("x", GlobalInit::Zeroed(p.n * 8));
    let g_r = m.global("r", GlobalInit::Zeroed(p.n * 8));
    let g_p = m.global("p", GlobalInit::Zeroed(p.n * 8));
    let g_q = m.global("q", GlobalInit::Zeroed(p.n * 8));

    m.build_func("main", &[], None, |b| {
        let rowptr_v = b.var(Ty::I64);
        let cols_v = b.var(Ty::I64);
        let vals_v = b.var(Ty::I64);
        let x_v = b.var(Ty::I64);
        let r_v = b.var(Ty::I64);
        let p_v = b.var(Ty::I64);
        let q_v = b.var(Ty::I64);
        for (var, g) in [
            (rowptr_v, g_rowptr),
            (cols_v, g_cols),
            (vals_v, g_vals),
            (x_v, g_x),
            (r_v, g_r),
            (p_v, g_p),
            (q_v, g_q),
        ] {
            let a = b.global_addr(g);
            b.write(var, a);
        }
        let rho = b.var(Ty::F64);

        loop_n(b, p.outer, |b, _ov| {
            // init: x = 0, r = p = ones; rho = r·r.
            loop_n(b, n, |b, iv| {
                let one = b.cf(1.0);
                let addr = elem(b, r_v, iv);
                b.storef(addr, 0, one);
                let one2 = b.cf(1.0);
                let addr = elem(b, p_v, iv);
                b.storef(addr, 0, one2);
                let z = b.cf(0.0);
                let addr = elem(b, x_v, iv);
                b.storef(addr, 0, z);
            });
            let acc = b.var(Ty::F64);
            let z = b.cf(0.0);
            b.write(acc, z);
            loop_n(b, n, |b, iv| {
                let addr = elem(b, r_v, iv);
                let ri = b.loadf(addr, 0);
                let sq = b.fmul(ri, ri);
                let a = b.read(acc);
                let a2 = b.fadd(a, sq);
                b.write(acc, a2);
            });
            let a = b.read(acc);
            b.write(rho, a);

            loop_n(b, p.cg_iters, |b, _cgv| {
                // q = A p (CSR matvec).
                loop_n(b, n, |b, iv| {
                    let rp_addr = elem(b, rowptr_v, iv);
                    let start = b.loadi(rp_addr, 0);
                    let end = b.loadi(rp_addr, 8);
                    let end_v = b.var(Ty::I64);
                    b.write(end_v, end);
                    let k = b.var(Ty::I64);
                    b.write(k, start);
                    let sum = b.var(Ty::F64);
                    let z = b.cf(0.0);
                    b.write(sum, z);
                    let kh = b.new_block();
                    let kb = b.new_block();
                    let ka = b.new_block();
                    b.br(kh);
                    b.switch_to(kh);
                    let kv = b.read(k);
                    let ev = b.read(end_v);
                    let c = b.icmp(CmpOp::Lt, kv, ev);
                    b.cond_br(c, kb, ka);
                    b.switch_to(kb);
                    let kv = b.read(k);
                    let caddr = elem(b, cols_v, kv);
                    let col = b.loadi(caddr, 0);
                    let vaddr = elem(b, vals_v, kv);
                    let av = b.loadf(vaddr, 0);
                    let pj_addr = {
                        let three = b.ci(3);
                        let off = b.ishl(col, three);
                        let base = b.read(p_v);
                        b.iadd(base, off)
                    };
                    let pj = b.loadf(pj_addr, 0);
                    let prod = b.fmul(av, pj);
                    let s = b.read(sum);
                    let s2 = b.fadd(s, prod);
                    b.write(sum, s2);
                    let one = b.ci(1);
                    let knext = b.iadd(kv, one);
                    b.write(k, knext);
                    b.br(kh);
                    b.switch_to(ka);
                    let s = b.read(sum);
                    let qaddr = elem(b, q_v, iv);
                    b.storef(qaddr, 0, s);
                });
                // alpha = rho / (p·q).
                let pq = b.var(Ty::F64);
                let z = b.cf(0.0);
                b.write(pq, z);
                loop_n(b, n, |b, iv| {
                    let paddr = elem(b, p_v, iv);
                    let pi = b.loadf(paddr, 0);
                    let qaddr = elem(b, q_v, iv);
                    let qi = b.loadf(qaddr, 0);
                    let prod = b.fmul(pi, qi);
                    let a = b.read(pq);
                    let a2 = b.fadd(a, prod);
                    b.write(pq, a2);
                });
                let rhov = b.read(rho);
                let pqv = b.read(pq);
                let alpha = b.fdiv(rhov, pqv);
                let alpha_v = b.var(Ty::F64);
                b.write(alpha_v, alpha);
                // x += alpha p; r -= alpha q; rho' = r·r.
                let rho_new = b.var(Ty::F64);
                let z = b.cf(0.0);
                b.write(rho_new, z);
                loop_n(b, n, |b, iv| {
                    let al = b.read(alpha_v);
                    let paddr = elem(b, p_v, iv);
                    let pi = b.loadf(paddr, 0);
                    let xaddr = elem(b, x_v, iv);
                    let xi = b.loadf(xaddr, 0);
                    let ap = b.fmul(al, pi);
                    let x2 = b.fadd(xi, ap);
                    b.storef(xaddr, 0, x2);
                    let qaddr = elem(b, q_v, iv);
                    let qi = b.loadf(qaddr, 0);
                    let raddr = elem(b, r_v, iv);
                    let ri = b.loadf(raddr, 0);
                    let aq = b.fmul(al, qi);
                    let r2 = b.fsub(ri, aq);
                    b.storef(raddr, 0, r2);
                    let sq = b.fmul(r2, r2);
                    let a = b.read(rho_new);
                    let a2 = b.fadd(a, sq);
                    b.write(rho_new, a2);
                });
                // beta = rho'/rho; p = r + beta p; rho = rho'.
                let rhov = b.read(rho);
                let rnew = b.read(rho_new);
                let beta = b.fdiv(rnew, rhov);
                let beta_v = b.var(Ty::F64);
                b.write(beta_v, beta);
                b.write(rho, rnew);
                loop_n(b, n, |b, iv| {
                    let be = b.read(beta_v);
                    let paddr = elem(b, p_v, iv);
                    let pi = b.loadf(paddr, 0);
                    let raddr = elem(b, r_v, iv);
                    let ri = b.loadf(raddr, 0);
                    let bp = b.fmul(be, pi);
                    let pn = b.fadd(ri, bp);
                    b.storef(paddr, 0, pn);
                });
            });
            let rhov = b.read(rho);
            let norm = b.fsqrt(rhov);
            b.printf(norm);
        });
        b.ret(None);
    });
    m
}

/// Op-for-op native reference.
pub fn reference(p: Params) -> Vec<OutputEvent> {
    let (rowptr, cols, vals) = gen_matrix(p);
    let n = p.n;
    let mut out = Vec::new();
    for _ in 0..p.outer {
        let mut x = vec![0.0f64; n];
        let mut r = vec![1.0f64; n];
        let mut pvec = vec![1.0f64; n];
        let mut q = vec![0.0f64; n];
        let mut rho = 0.0f64;
        for i in 0..n {
            rho += r[i] * r[i];
        }
        for _ in 0..p.cg_iters {
            for i in 0..n {
                let mut sum = 0.0f64;
                for k in rowptr[i] as usize..rowptr[i + 1] as usize {
                    sum += vals[k] * pvec[cols[k] as usize];
                }
                q[i] = sum;
            }
            let mut pq = 0.0f64;
            for i in 0..n {
                pq += pvec[i] * q[i];
            }
            let alpha = rho / pq;
            let mut rho_new = 0.0f64;
            for i in 0..n {
                x[i] += alpha * pvec[i];
                r[i] -= alpha * q[i];
                rho_new += r[i] * r[i];
            }
            let beta = rho_new / rho;
            rho = rho_new;
            for i in 0..n {
                pvec[i] = r[i] + beta * pvec[i];
            }
        }
        out.push(f(rho.sqrt()));
    }
    out
}

/// The packaged workload.
pub fn workload(size: Size) -> Workload {
    let p = Params::for_size(size);
    Workload {
        name: "NAS CG",
        config: "Class S",
        module: build(p),
        reference: reference(p),
    }
}
