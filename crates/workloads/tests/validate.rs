//! Workload validation: the compiled IR running on the simulated machine
//! must be **bit-identical** to the op-for-op native Rust reference. This
//! pins down machine semantics, codegen, and the references themselves —
//! the foundation the §5.2 FPVM validation builds on.

use fpvm_ir::{compile, CompileMode};
use fpvm_machine::{CostModel, Event, Machine};
use fpvm_workloads::{all_workloads, Size, Workload};

fn run_native(w: &Workload) -> Vec<fpvm_machine::OutputEvent> {
    let c = compile(&w.module, CompileMode::Native);
    let mut m = Machine::new(CostModel::r815());
    m.load_program(&c.program);
    m.hook_ext = false;
    m.mxcsr.mask_all();
    let ev = m.run(2_000_000_000);
    assert_eq!(ev, Event::Halted, "{}: {ev:?}", w.name);
    m.output
}

#[test]
fn every_workload_matches_its_reference_tiny() {
    for w in all_workloads(Size::Tiny) {
        let out = run_native(&w);
        assert_eq!(
            out.len(),
            w.reference.len(),
            "{}: output length mismatch",
            w.name
        );
        for (idx, (got, want)) in out.iter().zip(&w.reference).enumerate() {
            assert_eq!(
                got,
                want,
                "{}: output {idx} differs: got {} want {}",
                w.name,
                got.render(),
                want.render()
            );
        }
    }
}

#[test]
fn class_s_lorenz_and_cg_match() {
    // Spot-check two Class S workloads end to end (the rest run at S size
    // in the integration suite / harness).
    for w in [
        fpvm_workloads::lorenz::workload(Size::S),
        fpvm_workloads::nas_cg::workload(Size::S),
    ] {
        let out = run_native(&w);
        assert_eq!(out, w.reference, "{}", w.name);
    }
}

#[test]
fn workloads_have_meaningful_fp_profiles() {
    // Ensure the suite spans the density spectrum the paper relies on:
    // IS nearly FP-free, CG/LU FP-dense.
    let ws = all_workloads(Size::Tiny);
    for w in &ws {
        let c = compile(&w.module, CompileMode::Native);
        let mut m = Machine::new(CostModel::r815());
        m.load_program(&c.program);
        m.hook_ext = false;
        m.mxcsr.mask_all();
        m.run(2_000_000_000);
        let density = m.fp_icount as f64 / m.icount as f64;
        match w.name {
            "NAS IS" => assert!(density < 0.05, "IS density {density}"),
            "NAS CG" | "NAS LU" | "Lorenz Attractor" => {
                assert!(density > 0.02, "{} density {density}", w.name)
            }
            _ => {}
        }
    }
}
