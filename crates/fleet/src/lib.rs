//! # fpvm-fleet — the deterministic sharded fleet runner
//!
//! The paper's evaluation runs one guest per FPVM process; this crate runs
//! a *fleet* of guests across OS threads, one fully-owned engine stack per
//! worker. It exists because the sink-ownership refactor made the whole
//! engine [`Send`]: a worker owns its [`Machine`], its [`Fpvm`], its shadow
//! arena, and its trace sinks, so guests shard across
//! [`std::thread::scope`] workers with no shared mutable state at all —
//! the only synchronization is the atomic work-queue cursor.
//!
//! ## Determinism contract
//!
//! The same job list produces **bit-identical merged results for any
//! worker count** (1, 2, 4, N…). Two properties make that true:
//!
//! 1. Each job is hermetic: it compiles, patches, and runs its own guest
//!    on its own engine, so no job observes another job's scheduling.
//! 2. Results are collected *by job index* and merged *in job order* at
//!    join, so the merged [`Stats`] and [`ProfilerSink`] never depend on
//!    which worker ran which job or in what order they finished.
//!
//! Host-measured wall-time fields are inherently nondeterministic, so the
//! contract is stated over [`Stats::deterministic_view`] and
//! [`FleetReport::deterministic_hot_sites`] (the per-site table with the
//! measured cycle components projected out). The pinned test in
//! `tests/determinism.rs` runs the same job set at 1, 2, and 4 workers
//! and asserts exact equality of those views.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::Mutex;
use std::time::{Duration, Instant};

use fpvm_analysis::analyze_and_patch;
use fpvm_arith::Vanilla;
use fpvm_core::trace::{FanoutSink, RingBufferSink};
use fpvm_core::{ExitReason, Fpvm, FpvmConfig, ProfilerSink, SiteProfile, Stats};
use fpvm_ir::{compile, CompileMode};
use fpvm_machine::{CostModel, Machine, Program};
use fpvm_obs::{MetricsRegistry, MetricsSnapshot};
use fpvm_workloads::{
    enzo_like, fbench, lorenz, miniaero, nas_cg, nas_ep, nas_is, nas_lu, nas_mg, three_body, Size,
    Workload,
};

/// Run every job through `f`, sharded across `workers` scoped threads.
///
/// Jobs are pulled from an atomic cursor (dynamic load balancing), but the
/// returned vector is indexed by job position — `result[i]` is `f(i,
/// &jobs[i])` regardless of which worker ran it — so any fold over the
/// results in order is independent of scheduling.
pub fn run_sharded<J, R, F>(jobs: &[J], workers: usize, f: F) -> Vec<R>
where
    J: Sync,
    R: Send,
    F: Fn(usize, &J) -> R + Sync,
{
    run_sharded_stateful(jobs, workers, || (), |(), i, job| f(i, job))
}

/// [`run_sharded`] with per-worker state: each worker thread builds one
/// `W` via `init` and threads it through every job it claims. This is how
/// fleet workers reuse an engine stack (arena slab, cache slot arrays,
/// scratch buffers) across jobs instead of reallocating per job.
///
/// The determinism contract is unchanged — `f` must make each job's
/// result independent of which worker ran it and of what ran on that
/// worker before (see [`WorkerEngine`] for how the engine upholds that).
pub fn run_sharded_stateful<J, R, W, I, F>(jobs: &[J], workers: usize, init: I, f: F) -> Vec<R>
where
    J: Sync,
    R: Send,
    I: Fn() -> W + Sync,
    F: Fn(&mut W, usize, &J) -> R + Sync,
{
    let workers = workers.clamp(1, jobs.len().max(1));
    let next = AtomicUsize::new(0);
    let slots: Vec<Mutex<Option<R>>> = (0..jobs.len()).map(|_| Mutex::new(None)).collect();
    std::thread::scope(|scope| {
        for _ in 0..workers {
            scope.spawn(|| {
                let mut w = init();
                loop {
                    let i = next.fetch_add(1, Ordering::Relaxed);
                    let Some(job) = jobs.get(i) else { break };
                    let r = f(&mut w, i, job);
                    *slots[i].lock().unwrap() = Some(r);
                }
            });
        }
    });
    slots
        .into_iter()
        .map(|s| s.into_inner().unwrap().expect("every job slot filled"))
        .collect()
}

/// The named workloads a fleet job can run (the paper's Fig. 12 suite).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[allow(missing_docs)] // variant names mirror `fpvm_workloads` modules
pub enum WorkloadId {
    Fbench,
    Lorenz,
    ThreeBody,
    MiniAero,
    NasIs,
    NasEp,
    NasCg,
    NasMg,
    NasLu,
    Enzo,
}

impl WorkloadId {
    /// Every workload, in the paper's Fig. 12 order.
    pub const ALL: [WorkloadId; 10] = [
        WorkloadId::Fbench,
        WorkloadId::Lorenz,
        WorkloadId::ThreeBody,
        WorkloadId::MiniAero,
        WorkloadId::NasIs,
        WorkloadId::NasEp,
        WorkloadId::NasCg,
        WorkloadId::NasMg,
        WorkloadId::NasLu,
        WorkloadId::Enzo,
    ];

    /// Build the workload at the given size.
    pub fn build(self, size: Size) -> Workload {
        match self {
            WorkloadId::Fbench => fbench::workload(size),
            WorkloadId::Lorenz => lorenz::workload(size),
            WorkloadId::ThreeBody => three_body::workload(size),
            WorkloadId::MiniAero => miniaero::workload(size),
            WorkloadId::NasIs => nas_is::workload(size),
            WorkloadId::NasEp => nas_ep::workload(size),
            WorkloadId::NasCg => nas_cg::workload(size),
            WorkloadId::NasMg => nas_mg::workload(size),
            WorkloadId::NasLu => nas_lu::workload(size),
            WorkloadId::Enzo => enzo_like::workload(size),
        }
    }
}

/// What guest a fleet job runs.
#[derive(Debug, Clone)]
pub enum GuestSpec {
    /// A named workload from the paper suite, compiled + analyzed +
    /// patched inside the worker.
    Workload(WorkloadId, Size),
    /// A Lorenz ensemble member: the initial condition is perturbed
    /// deterministically from the seed (the input-farm use case — same
    /// binary, many inputs).
    LorenzSeeded {
        /// Problem size.
        size: Size,
        /// Ensemble seed (0 = the paper's unperturbed initial condition).
        seed: u64,
    },
    /// A pre-assembled program image, loaded as-is (no analysis pass).
    /// Lets tests inject faulting guests into a worker.
    Raw {
        /// Display name for the outcome.
        name: &'static str,
        /// The program image.
        program: Program,
    },
}

/// One unit of fleet work: a guest, an engine configuration, and the
/// post-mortem ring capacity.
#[derive(Debug, Clone)]
pub struct FleetJob {
    /// The guest to run.
    pub spec: GuestSpec,
    /// Engine configuration for this job.
    pub config: FpvmConfig,
    /// Capacity of the per-job post-mortem [`RingBufferSink`].
    pub ring_capacity: usize,
}

impl FleetJob {
    /// A job with the default engine configuration.
    pub fn new(spec: GuestSpec) -> FleetJob {
        FleetJob {
            spec,
            config: FpvmConfig::default(),
            ring_capacity: 32,
        }
    }
}

/// Everything one job produced, recovered from the worker by value.
#[derive(Debug)]
pub struct JobOutcome {
    /// Job index in the submitted list.
    pub job: usize,
    /// Guest display name.
    pub name: String,
    /// How the guest exited.
    pub exit: ExitReason,
    /// The run's statistics.
    pub stats: Stats,
    /// The run's per-site profile (merged fleet-wide at join).
    pub profile: ProfilerSink,
    /// Guest instructions retired.
    pub icount: u64,
    /// Guest FP instructions retired natively.
    pub fp_icount: u64,
    /// Host wall time of the run (nondeterministic; excluded from the
    /// determinism contract).
    pub wall_ns: u64,
    /// The post-mortem ring tail, captured iff the run ended in a
    /// [`ExitReason::RuntimeError`].
    pub ring_tail: Option<String>,
    /// The engine's metrics snapshot, iff the job's config had
    /// `FpvmConfig::metrics` on. Folded fleet-wide in job order by
    /// [`run_fleet_observed`].
    pub metrics: Option<MetricsSnapshot>,
}

/// The fleet-wide aggregate: per-job outcomes in job order plus the
/// order-independent merged views.
#[derive(Debug)]
pub struct FleetReport {
    /// Worker count the fleet ran with.
    pub workers: usize,
    /// Per-job outcomes, indexed by job position.
    pub outcomes: Vec<JobOutcome>,
    /// All job [`Stats`] merged in job order.
    pub merged: Stats,
    /// All job profiles merged in job order.
    pub profile: ProfilerSink,
    /// Total guest instructions retired across the fleet.
    pub icount: u64,
    /// Total guest FP instructions retired natively.
    pub fp_icount: u64,
    /// Wall time of the whole fleet run (nondeterministic).
    pub wall_ns: u64,
}

impl FleetReport {
    /// Guests completed per host second.
    pub fn guests_per_sec(&self) -> f64 {
        self.outcomes.len() as f64 / (self.wall_ns.max(1) as f64 / 1e9)
    }

    /// Host nanoseconds spent per guest instruction, fleet-wide.
    pub fn ns_per_guest_inst(&self) -> f64 {
        self.wall_ns as f64 / self.icount.max(1) as f64
    }

    /// The hot-site ranking with the host-measured cycle components
    /// (emulate, GC, correctness handler) projected out of every site, so
    /// the table — contents *and* order — is bit-identical across worker
    /// counts. The deterministic components fully determine the ranking
    /// for any fixed job set.
    pub fn deterministic_hot_sites(&self, n: usize) -> Vec<(u64, SiteProfile)> {
        let mut v: Vec<(u64, SiteProfile)> = self
            .profile
            .sites()
            .iter()
            .map(|(&rip, p)| (rip, deterministic_site(p)))
            .collect();
        v.sort_by(|a, b| {
            b.1.total_cycles()
                .cmp(&a.1.total_cycles())
                .then(a.0.cmp(&b.0))
        });
        v.truncate(n);
        v
    }
}

/// A [`SiteProfile`] with the host-measured cycle components zeroed —
/// the per-site analogue of [`Stats::deterministic_view`].
fn deterministic_site(p: &SiteProfile) -> SiteProfile {
    let mut q = p.clone();
    q.cycles.emulate = 0;
    q.cycles.gc = 0;
    q.cycles.correctness_handler = 0;
    q
}

/// A reusable per-worker engine stack: one [`Fpvm`] recycled across the
/// jobs a worker claims, plus one [`Machine`] reloaded per job, so the
/// expensive allocations (arena slab, cache slot arrays, guest memory,
/// predecode table, superblock slots) are paid once per worker instead of
/// once per job.
///
/// Determinism: [`Fpvm::recycle`] resets every piece of run state and
/// bumps the engine's cache epoch, so no decode/emulate-cache entry — and
/// no stat, arena cell, patch site, or side-table row — survives from one
/// job into the next. `Machine::load_program` is hermetic (guest memory
/// is zeroed above the null guard, all registers and counters reset), and
/// the machine-side predecode/superblock caches are guarded by the code
/// content fingerprint: a different program starts them cold, while
/// re-running an identical program legitimately keeps them warm — the
/// caches are accounting-invariant either way. A job run on a recycled
/// engine + machine is bit-identical (on the deterministic views) to the
/// same job on a fresh stack, which is what keeps the merged fleet report
/// independent of worker count and job placement. Pinned by
/// `tests/determinism.rs`.
pub struct WorkerEngine {
    vm: Fpvm<Vanilla>,
    machine: Machine,
}

impl Default for WorkerEngine {
    fn default() -> Self {
        WorkerEngine::new()
    }
}

impl WorkerEngine {
    /// A fresh engine stack (default configuration; each job's config is
    /// applied by [`WorkerEngine::run_job`] via recycle).
    pub fn new() -> WorkerEngine {
        WorkerEngine {
            vm: Fpvm::new(Vanilla, FpvmConfig::default()),
            machine: Machine::new(CostModel::r815()),
        }
    }

    /// Run one job to completion on the calling thread, recycling this
    /// worker's engine for it.
    pub fn run_job(&mut self, index: usize, job: &FleetJob) -> JobOutcome {
        let start = Instant::now();
        let (name, program, side_table) = match &job.spec {
            GuestSpec::Workload(id, size) => {
                let w = id.build(*size);
                let c = compile(&w.module, CompileMode::Native);
                let patched = analyze_and_patch(&c.program);
                (w.name.to_string(), patched.program, patched.side_table)
            }
            GuestSpec::LorenzSeeded { size, seed } => {
                let w = lorenz::workload_seeded(*size, *seed);
                let c = compile(&w.module, CompileMode::Native);
                let patched = analyze_and_patch(&c.program);
                (
                    format!("{} seed={seed}", w.name),
                    patched.program,
                    patched.side_table,
                )
            }
            GuestSpec::Raw { name, program } => (name.to_string(), program.clone(), Vec::new()),
        };
        // Reuse this worker's machine: load_program is hermetic, and a
        // previous job's taint plane must not leak into this one.
        let m = &mut self.machine;
        m.taint_disable();
        m.load_program(&program);
        let vm = &mut self.vm;
        vm.recycle(job.config);
        vm.set_side_table(side_table);
        vm.set_trace_sink(Box::new(FanoutSink::new(vec![
            Box::new(ProfilerSink::new()),
            Box::new(RingBufferSink::new(job.ring_capacity)),
        ])));
        let report = vm.run(m);
        let metrics = vm.metrics_snapshot();
        // Teardown: the engine owns the sinks; take the fanout apart to get
        // the profiler and the post-mortem ring back by value.
        let fan = vm.take_trace_sink().downcast::<FanoutSink>().unwrap();
        let mut sinks = fan.into_sinks().into_iter();
        let profile = *sinks.next().unwrap().downcast::<ProfilerSink>().unwrap();
        let ring = sinks.next().unwrap().downcast::<RingBufferSink>().unwrap();
        let ring_tail = match report.exit {
            ExitReason::RuntimeError(_) => Some(ring.dump()),
            _ => None,
        };
        JobOutcome {
            job: index,
            name,
            exit: report.exit,
            stats: report.stats,
            profile,
            icount: report.icount,
            fp_icount: report.fp_icount,
            wall_ns: start.elapsed().as_nanos() as u64,
            ring_tail,
            metrics,
        }
    }
}

/// Run one job to completion on the calling thread, building the whole
/// engine stack locally so nothing is shared with other workers.
pub fn run_job(index: usize, job: &FleetJob) -> JobOutcome {
    WorkerEngine::new().run_job(index, job)
}

/// Run a fleet of jobs across `workers` threads and merge at join.
pub fn run_fleet(jobs: &[FleetJob], workers: usize) -> FleetReport {
    let start = Instant::now();
    let outcomes = run_sharded_stateful(jobs, workers, WorkerEngine::new, |w, i, job| {
        w.run_job(i, job)
    });
    // Merge in job order — never in completion order — so the merged
    // views are identical for every worker count.
    let mut merged = Stats::default();
    let mut profile = ProfilerSink::new();
    let mut icount = 0u64;
    let mut fp_icount = 0u64;
    for o in &outcomes {
        merged.merge(&o.stats);
        profile.merge(&o.profile);
        icount += o.icount;
        fp_icount += o.fp_icount;
    }
    FleetReport {
        workers,
        outcomes,
        merged,
        profile,
        icount,
        fp_icount,
        wall_ns: start.elapsed().as_nanos() as u64,
    }
}

/// Options for [`run_fleet_observed`]'s live sampler.
#[derive(Debug, Clone, Copy)]
pub struct ObsOptions {
    /// Milliseconds between heartbeat snapshots (the sampler polls the
    /// shared registry at this period; it checks for shutdown every 1 ms
    /// regardless).
    pub sample_interval_ms: u64,
    /// A job is flagged a straggler when its wall time exceeds
    /// `straggler_factor ×` the fleet-wide p50 job wall time.
    pub straggler_factor: u64,
}

impl Default for ObsOptions {
    fn default() -> Self {
        ObsOptions {
            sample_interval_ms: 5,
            straggler_factor: 4,
        }
    }
}

/// One heartbeat snapshot of the live fleet, taken by the sampler thread
/// from the shared [`MetricsRegistry`] while workers run. Inherently
/// nondeterministic (it is a wall-clock series) — excluded from the
/// determinism contract.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FleetSample {
    /// Nanoseconds since fleet start.
    pub t_ns: u64,
    /// Jobs completed so far.
    pub jobs_completed: u64,
    /// Jobs not yet claimed by a worker.
    pub queue_depth: u64,
    /// Workers currently running a guest.
    pub busy_workers: u64,
    /// Completed guests per host second, over the elapsed window.
    pub guests_per_sec: f64,
    /// True only on the final snapshot, taken after every worker joined
    /// (the registry is sealed and the values are exact).
    pub sealed: bool,
}

/// A fleet run with the observability plane attached: the base report plus
/// the live heartbeat series, the sealed registry snapshot, the job-order
/// fold of per-job engine metrics, and straggler flags.
#[derive(Debug)]
pub struct FleetObs {
    /// The base fleet report (outcomes + merged deterministic views).
    pub report: FleetReport,
    /// The shared registry at quiescence: `fleet_jobs_completed`,
    /// `fleet_queue_depth`, `fleet_busy_workers`, `fleet_job_wall_ns`.
    pub registry: MetricsSnapshot,
    /// Every job's engine [`MetricsSnapshot`] folded **in job order** —
    /// bit-identical across worker counts on its
    /// [`MetricsSnapshot::deterministic_view`], exactly like
    /// `Stats::merge`. `None` when no job ran with metrics on.
    pub merged_metrics: Option<MetricsSnapshot>,
    /// The heartbeat series, in sample order (last entry is sealed).
    pub samples: Vec<FleetSample>,
    /// Indices of jobs whose wall time exceeded the straggler threshold.
    pub stragglers: Vec<usize>,
    /// Wall time from fleet start to the *last job completing*, recorded
    /// by the completing worker itself — excludes sampler-thread teardown,
    /// so overhead measurements compare like against like.
    pub observed_wall_ns: u64,
}

/// [`run_fleet`] with the observability plane attached: per-worker
/// heartbeats into a shared [`MetricsRegistry`], a sampler thread
/// producing a [`FleetSample`] series, straggler detection from the job
/// wall-time histogram, and the deterministic job-order fold of per-job
/// engine metrics.
pub fn run_fleet_observed(jobs: &[FleetJob], workers: usize, opts: ObsOptions) -> FleetObs {
    let start = Instant::now();
    let registry = MetricsRegistry::new();
    let jobs_completed = registry.counter("fleet_jobs_completed", true);
    let queue_depth = registry.gauge("fleet_queue_depth", false);
    let busy_workers = registry.gauge("fleet_busy_workers", false);
    let job_wall = registry.histogram("fleet_job_wall_ns", false);
    queue_depth.set(jobs.len() as u64);
    let completed = AtomicUsize::new(0);
    let end_ns = AtomicU64::new(0);
    let stop = AtomicBool::new(false);
    let samples = Mutex::new(Vec::new());

    let outcomes = std::thread::scope(|scope| {
        // The sampler: polls the shared registry while workers run. It
        // never blocks a worker — reads are relaxed atomics.
        scope.spawn(|| {
            // One wakeup per heartbeat — on few-core hosts a finer poll
            // loop would steal measurable time from the workers. Stop
            // latency is at most one interval, which only delays the
            // sampler join, never the observed wall (stamped by the
            // last-finishing worker).
            let interval = Duration::from_millis(opts.sample_interval_ms.max(1));
            loop {
                let t_ns = start.elapsed().as_nanos() as u64;
                let done = jobs_completed.get();
                samples.lock().unwrap().push(FleetSample {
                    t_ns,
                    jobs_completed: done,
                    queue_depth: queue_depth.get(),
                    busy_workers: busy_workers.get(),
                    guests_per_sec: done as f64 / (t_ns.max(1) as f64 / 1e9),
                    sealed: false,
                });
                if stop.load(Ordering::Acquire) {
                    break;
                }
                std::thread::sleep(interval);
            }
        });
        let outcomes = run_sharded_stateful(jobs, workers, WorkerEngine::new, |w, i, job| {
            queue_depth.sub(1);
            busy_workers.add(1);
            let r = w.run_job(i, job);
            job_wall.record(r.wall_ns);
            busy_workers.sub(1);
            jobs_completed.inc();
            // The worker that finishes the last job stamps the fleet's
            // observed end — the sampler's exit latency never inflates
            // the measured wall time.
            if completed.fetch_add(1, Ordering::Relaxed) + 1 == jobs.len() {
                end_ns.store(start.elapsed().as_nanos() as u64, Ordering::Relaxed);
            }
            r
        });
        stop.store(true, Ordering::Release);
        outcomes
    });

    registry.seal();
    let observed_wall_ns = match end_ns.load(Ordering::Relaxed) {
        0 => start.elapsed().as_nanos() as u64, // empty job list
        ns => ns,
    };
    let mut samples = samples.into_inner().unwrap();
    // Timestamped after the sampler joined, so the series stays
    // time-ordered even if a heartbeat landed between the last job
    // completing and the stop flag being observed.
    samples.push(FleetSample {
        t_ns: start.elapsed().as_nanos() as u64,
        jobs_completed: jobs_completed.get(),
        queue_depth: queue_depth.get(),
        busy_workers: busy_workers.get(),
        guests_per_sec: jobs.len() as f64 / (observed_wall_ns.max(1) as f64 / 1e9),
        sealed: true,
    });

    // Straggler detection: a job far beyond the fleet's median wall time.
    let registry_snap = registry.snapshot();
    let p50 = registry_snap
        .histogram("fleet_job_wall_ns")
        .map(|h| h.p50())
        .unwrap_or(0);
    let stragglers = if p50 > 0 && jobs.len() >= 2 {
        outcomes
            .iter()
            .enumerate()
            .filter(|(_, o)| o.wall_ns > opts.straggler_factor.max(1) * p50)
            .map(|(i, _)| i)
            .collect()
    } else {
        Vec::new()
    };

    // Merge in job order — the same canonical fold as `run_fleet`.
    let mut merged = Stats::default();
    let mut profile = ProfilerSink::new();
    let mut icount = 0u64;
    let mut fp_icount = 0u64;
    let mut merged_metrics: Option<MetricsSnapshot> = None;
    for o in &outcomes {
        merged.merge(&o.stats);
        profile.merge(&o.profile);
        icount += o.icount;
        fp_icount += o.fp_icount;
        if let Some(m) = &o.metrics {
            merged_metrics
                .get_or_insert_with(MetricsSnapshot::new)
                .merge(m);
        }
    }
    FleetObs {
        report: FleetReport {
            workers,
            outcomes,
            merged,
            profile,
            icount,
            fp_icount,
            wall_ns: start.elapsed().as_nanos() as u64,
        },
        registry: registry_snap,
        merged_metrics,
        samples,
        stragglers,
        observed_wall_ns,
    }
}

/// The standard smoke job set: every Fig. 12 workload at `Tiny` plus a
/// Lorenz ensemble, sized so a laptop-class host finishes in seconds while
/// still giving the scheduler enough jobs to balance.
pub fn smoke_jobs(ensemble: u64) -> Vec<FleetJob> {
    let mut jobs: Vec<FleetJob> = WorkloadId::ALL
        .iter()
        .map(|&id| FleetJob::new(GuestSpec::Workload(id, Size::Tiny)))
        .collect();
    for seed in 0..ensemble {
        jobs.push(FleetJob::new(GuestSpec::LorenzSeeded {
            size: Size::Tiny,
            seed,
        }));
    }
    jobs
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn run_sharded_returns_results_in_job_order() {
        let jobs: Vec<u64> = (0..97).collect();
        for workers in [1, 3, 8] {
            let out = run_sharded(&jobs, workers, |i, &j| {
                assert_eq!(i as u64, j);
                j * j
            });
            assert_eq!(out.len(), jobs.len());
            for (i, &r) in out.iter().enumerate() {
                assert_eq!(r, (i * i) as u64);
            }
        }
    }

    #[test]
    fn run_sharded_handles_empty_and_oversubscribed() {
        let empty: Vec<u64> = Vec::new();
        assert!(run_sharded(&empty, 4, |_, &j| j).is_empty());
        let one = [7u64];
        assert_eq!(run_sharded(&one, 64, |_, &j| j + 1), vec![8]);
    }

    #[test]
    fn single_job_fleet_matches_a_direct_run() {
        let job = FleetJob::new(GuestSpec::Workload(WorkloadId::Lorenz, Size::Tiny));
        let report = run_fleet(std::slice::from_ref(&job), 1);
        assert_eq!(report.outcomes.len(), 1);
        let o = &report.outcomes[0];
        assert_eq!(o.exit, ExitReason::Halted);
        assert!(o.ring_tail.is_none(), "no error, no post-mortem");
        let direct = run_job(0, &job);
        assert_eq!(
            report.merged.deterministic_view(),
            direct.stats.deterministic_view()
        );
        assert_eq!(report.icount, direct.icount);
    }

    #[test]
    fn reused_worker_does_not_serve_stale_decodes_across_same_length_programs() {
        // The stale-reload bug: the decode cache used to keep all entries
        // whenever code_len was unchanged, so a worker that ran program A
        // and then a *different* program B of identical length served A's
        // cached decodes (and, now, bound plans) to B. Build two guests
        // whose code segments are byte-for-byte the same length but
        // compute different things, run both on ONE reused engine, and
        // check each against a fresh-engine run.
        use fpvm_machine::{Asm, ExtFn, Xmm};
        let build = |mul: bool| {
            let mut a = Asm::new();
            let c1 = a.f64m(3.0);
            let c2 = a.f64m(7.0);
            a.movsd(Xmm(0), c1);
            a.movsd(Xmm(1), c2);
            // divsd and mulsd encode to the same length; only the opcode
            // differs, so both programs have identical code_len.
            if mul {
                a.mulsd(Xmm(0), Xmm(1));
            } else {
                a.divsd(Xmm(0), Xmm(1));
            }
            a.call_ext(ExtFn::PrintF64);
            a.halt();
            a.finish()
        };
        let (pa, pb) = (build(false), build(true));
        assert_eq!(pa.code.len(), pb.code.len(), "programs must be same-length");
        let jobs = [
            FleetJob::new(GuestSpec::Raw {
                name: "div",
                program: pa,
            }),
            FleetJob::new(GuestSpec::Raw {
                name: "mul",
                program: pb,
            }),
        ];
        // One engine, both jobs, in order — the reuse scenario.
        let mut w = WorkerEngine::new();
        let reused: Vec<JobOutcome> = jobs
            .iter()
            .enumerate()
            .map(|(i, j)| w.run_job(i, j))
            .collect();
        // Fresh engine per job — the ground truth.
        let fresh: Vec<JobOutcome> = jobs
            .iter()
            .enumerate()
            .map(|(i, j)| run_job(i, j))
            .collect();
        for (r, f) in reused.iter().zip(&fresh) {
            assert_eq!(r.exit, ExitReason::Halted);
            assert_eq!(
                r.stats.deterministic_view(),
                f.stats.deterministic_view(),
                "job {} on a reused engine diverged from a fresh engine",
                r.name
            );
        }
    }

    #[test]
    fn lorenz_seeds_give_distinct_trajectories_same_sites() {
        let a = run_job(
            0,
            &FleetJob::new(GuestSpec::LorenzSeeded {
                size: Size::Tiny,
                seed: 1,
            }),
        );
        let b = run_job(
            1,
            &FleetJob::new(GuestSpec::LorenzSeeded {
                size: Size::Tiny,
                seed: 2,
            }),
        );
        assert_eq!(a.exit, ExitReason::Halted);
        assert_eq!(b.exit, ExitReason::Halted);
        // Distinct trajectories: chaos separates the perturbed initial
        // conditions, so the runs do different amounts of rounding.
        assert_ne!(
            a.stats.deterministic_view(),
            b.stats.deterministic_view(),
            "perturbed seeds must diverge"
        );
        // …but the binary structure is identical, so both runs trap at
        // the same set of sites.
        let sa: Vec<u64> = {
            let mut v: Vec<u64> = a.profile.sites().keys().copied().collect();
            v.sort_unstable();
            v
        };
        let sb: Vec<u64> = {
            let mut v: Vec<u64> = b.profile.sites().keys().copied().collect();
            v.sort_unstable();
            v
        };
        assert_eq!(sa, sb);
    }
}
