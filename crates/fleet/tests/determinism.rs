//! The fleet determinism contract, pinned: the same job set produces
//! bit-identical merged statistics, Fig. 9 cycle breakdown, and hot-site
//! ranking for 1, 2, and 4 workers — and the post-mortem ring still
//! surfaces on a `RuntimeError` raised inside a worker thread.

use fpvm_core::{ExitReason, Stats};
use fpvm_fleet::{run_fleet, smoke_jobs, FleetJob, GuestSpec};
use fpvm_machine::{Asm, Inst, TrapKind};

#[test]
fn merged_results_are_bit_identical_for_any_worker_count() {
    let jobs = smoke_jobs(6);
    let base = run_fleet(&jobs, 1);
    let base_stats: Stats = base.merged.deterministic_view();
    let base_sites = base.deterministic_hot_sites(usize::MAX);
    assert!(
        base.outcomes.iter().all(|o| o.exit == ExitReason::Halted),
        "smoke jobs all halt"
    );
    assert!(base_stats.fp_traps > 0, "the job set traps");
    assert!(!base_sites.is_empty(), "the job set profiles sites");
    for workers in [2usize, 4] {
        let r = run_fleet(&jobs, workers);
        // Merged statistics: every deterministic counter and cycle
        // component, bit for bit.
        assert_eq!(
            r.merged.deterministic_view(),
            base_stats,
            "{workers}-worker merged stats diverge from 1 worker"
        );
        // The Fig. 9 accounting specifically (subset of the above, called
        // out because the perf trajectory reports it).
        assert_eq!(
            r.merged.deterministic_view().cycles,
            base_stats.cycles,
            "{workers}-worker cycle breakdown diverges"
        );
        // The full hot-site ranking: same sites, same order, same
        // deterministic per-site profiles.
        assert_eq!(
            r.deterministic_hot_sites(usize::MAX),
            base_sites,
            "{workers}-worker hot-site table diverges"
        );
        // Totals that must also be scheduling-independent.
        assert_eq!(r.icount, base.icount);
        assert_eq!(r.fp_icount, base.fp_icount);
        // Per-job outcomes line up one-to-one in job order.
        assert_eq!(r.outcomes.len(), base.outcomes.len());
        for (a, b) in r.outcomes.iter().zip(base.outcomes.iter()) {
            assert_eq!(a.job, b.job);
            assert_eq!(a.name, b.name);
            assert_eq!(a.exit, b.exit);
            assert_eq!(
                a.stats.deterministic_view(),
                b.stats.deterministic_view(),
                "job {} ({}) diverges at {workers} workers",
                a.job,
                a.name
            );
        }
    }
}

#[test]
fn ring_tail_surfaces_runtime_errors_raised_inside_workers() {
    // A correctness trap with no side-table entry aborts the run; when the
    // guest runs inside a fleet worker, the post-mortem ring must come
    // back across the join with the structured error as its last event.
    let mut a = Asm::new();
    a.emit(Inst::Trap {
        kind: TrapKind::Correctness,
        id: 3,
    });
    a.halt();
    let faulting = a.finish();
    let mut jobs = smoke_jobs(0);
    jobs.push(FleetJob::new(GuestSpec::Raw {
        name: "faulting-guest",
        program: faulting,
    }));
    let r = run_fleet(&jobs, 4);
    let bad = r.outcomes.last().unwrap();
    assert_eq!(bad.name, "faulting-guest");
    assert!(matches!(bad.exit, ExitReason::RuntimeError(_)));
    let tail = bad
        .ring_tail
        .as_ref()
        .expect("post-mortem ring captured in the worker");
    assert!(
        tail.contains("runtime_error"),
        "ring tail must end with the structured error, got:\n{tail}"
    );
    // Healthy jobs in the same fleet carry no post-mortem.
    assert!(r.outcomes[..r.outcomes.len() - 1]
        .iter()
        .all(|o| o.ring_tail.is_none() && o.exit == ExitReason::Halted));
}
