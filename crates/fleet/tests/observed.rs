//! The observed-fleet determinism contract, pinned: with metrics on in
//! every job, the job-order fold of per-job metric snapshots is
//! bit-identical (on its deterministic view) for 1, 2, and 4 workers; the
//! heartbeat sampler produces a well-formed sealed series; and metrics-off
//! jobs contribute no metrics at all.

use fpvm_core::FpvmConfig;
use fpvm_fleet::{run_fleet, run_fleet_observed, smoke_jobs, FleetJob, ObsOptions};

fn metered_jobs(ensemble: u64, shift: u32) -> Vec<FleetJob> {
    smoke_jobs(ensemble)
        .into_iter()
        .map(|mut j| {
            j.config = FpvmConfig {
                metrics: true,
                metrics_sample_shift: shift,
                ..j.config
            };
            j
        })
        .collect()
}

#[test]
fn merged_metrics_are_bit_identical_for_any_worker_count() {
    let jobs = metered_jobs(4, 3);
    let base = run_fleet_observed(&jobs, 1, ObsOptions::default());
    let base_metrics = base
        .merged_metrics
        .as_ref()
        .expect("metrics on in every job")
        .clone();
    assert!(
        base_metrics.counter("fpvm_traps_total").unwrap() > 0,
        "the job set traps"
    );
    assert!(
        base_metrics.counter("fpvm_stage_samples_frame").unwrap() > 0,
        "the stage timers sampled"
    );
    for workers in [2usize, 4] {
        let r = run_fleet_observed(&jobs, workers, ObsOptions::default());
        let m = r.merged_metrics.as_ref().unwrap();
        // The deterministic projection: every execution counter and
        // sample count, bit for bit, independent of scheduling.
        assert_eq!(
            m.deterministic_view(),
            base_metrics.deterministic_view(),
            "{workers}-worker merged metrics diverge from 1 worker"
        );
        // The nondeterministic histograms still agree on their
        // deterministic *sample counts* (the ns values differ).
        for stage in ["frame", "decode", "bind", "emulate", "commit"] {
            let name = format!("fpvm_stage_ns_{stage}");
            assert_eq!(
                m.histogram(&name).unwrap().count(),
                base_metrics.histogram(&name).unwrap().count(),
                "{name} sample count diverges at {workers} workers"
            );
        }
        // The merged engine Stats stay pinned too (same contract as the
        // unobserved fleet).
        assert_eq!(
            r.report.merged.deterministic_view(),
            base.report.merged.deterministic_view()
        );
    }
}

#[test]
fn observed_run_matches_unobserved_deterministic_views() {
    // Attaching the observability plane (registry, sampler, heartbeats)
    // must not change what the guests compute.
    let jobs = smoke_jobs(2);
    let plain = run_fleet(&jobs, 2);
    let obs = run_fleet_observed(&jobs, 2, ObsOptions::default());
    assert_eq!(
        obs.report.merged.deterministic_view(),
        plain.merged.deterministic_view()
    );
    assert_eq!(obs.report.icount, plain.icount);
    assert!(
        obs.merged_metrics.is_none(),
        "metrics-off jobs contribute no metric snapshots"
    );
}

#[test]
fn heartbeats_and_registry_reflect_the_finished_fleet() {
    let jobs = metered_jobs(2, 0);
    let n = jobs.len() as u64;
    let obs = run_fleet_observed(&jobs, 2, ObsOptions::default());
    // The sealed registry is exact at quiescence.
    assert_eq!(obs.registry.counter("fleet_jobs_completed"), Some(n));
    assert_eq!(obs.registry.gauge("fleet_queue_depth"), Some(0));
    assert_eq!(obs.registry.gauge("fleet_busy_workers"), Some(0));
    let wall = obs.registry.histogram("fleet_job_wall_ns").unwrap();
    assert_eq!(wall.count(), n, "every job recorded its wall time");
    assert!(wall.p50() > 0 && wall.p99() >= wall.p50());
    // The heartbeat series ends with exactly one sealed sample whose
    // counts match the registry.
    let last = obs.samples.last().expect("at least the sealed sample");
    assert!(last.sealed);
    assert_eq!(last.jobs_completed, n);
    assert_eq!(last.queue_depth, 0);
    assert_eq!(last.busy_workers, 0);
    assert!(last.guests_per_sec > 0.0);
    assert_eq!(obs.samples.iter().filter(|s| s.sealed).count(), 1);
    // Samples are time-ordered.
    assert!(obs.samples.windows(2).all(|w| w[0].t_ns <= w[1].t_ns));
    // The observed wall is stamped by the last-finishing worker and can
    // only be at or before the full-join wall.
    assert!(obs.observed_wall_ns > 0);
    assert!(obs.observed_wall_ns <= obs.report.wall_ns);
    // Stragglers, if any, index real jobs.
    assert!(obs.stragglers.iter().all(|&i| i < jobs.len()));
}
