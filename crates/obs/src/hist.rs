//! Log₂-bucketed histograms: the plain single-owner flavor the engine and
//! profiler accumulate into, and the atomic flavor the shared fleet
//! registry samples live.
//!
//! Both share one bucketing scheme so their snapshots merge losslessly:
//! bucket 0 counts zeros, bucket `i > 0` counts values in
//! `[2^(i-1), 2^i)`, and the last bucket saturates. Quantiles are derived
//! from the bucket counts (the value at the requested rank resolves to its
//! bucket's inclusive upper bound, clamped to the largest sample seen), so
//! p50/p95/p99 are exact functions of the merged buckets — any fold order
//! yields the same answer.

use std::sync::atomic::{AtomicU64, Ordering};

/// Number of buckets in a [`Log2Histogram`]: bucket `i` (for `i > 0`)
/// counts values in `[2^(i-1), 2^i)`; bucket 0 counts zeros.
pub const HIST_BUCKETS: usize = 33;

/// A log₂-bucketed latency histogram (cycles or host nanoseconds).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Log2Histogram {
    buckets: [u64; HIST_BUCKETS],
    count: u64,
    sum: u64,
    max: u64,
}

impl Default for Log2Histogram {
    fn default() -> Self {
        Log2Histogram {
            buckets: [0; HIST_BUCKETS],
            count: 0,
            sum: 0,
            max: 0,
        }
    }
}

impl Log2Histogram {
    /// Bucket index for a value: 0 for 0, else `floor(log2(v)) + 1`,
    /// saturating at the last bucket.
    ///
    /// Edge convention (pinned by `edge_convention_shared_by_both_flavors`):
    /// buckets are **half-open on powers of two** — bucket `i > 0` counts
    /// `[2^(i-1), 2^i)`, so an exact power of two `2^k` is the *lower*
    /// bound of bucket `k+1`, never the top of bucket `k`. `v = 1` is the
    /// sole occupant shape of bucket 1 (`[1, 2)`), and `v = 0` gets the
    /// dedicated zero bucket rather than underflowing the log. Saturation:
    /// with [`HIST_BUCKETS`]` = 33` the last index is 32, so every value
    /// `>= 2^31` lands in bucket 32 — that bucket covers
    /// `[2^31, u64::MAX]`, which is why [`Log2Histogram::bucket_upper`]
    /// answers `u64::MAX` for it and quantiles clamp to the observed max.
    pub fn bucket_of(v: u64) -> usize {
        if v == 0 {
            0
        } else {
            ((63 - v.leading_zeros()) as usize + 1).min(HIST_BUCKETS - 1)
        }
    }

    /// The inclusive upper bound of bucket `i` (the last bucket is
    /// unbounded and answers `u64::MAX`).
    pub fn bucket_upper(i: usize) -> u64 {
        if i == 0 {
            0
        } else if i >= HIST_BUCKETS - 1 {
            u64::MAX
        } else {
            (1u64 << i) - 1
        }
    }

    /// Record one sample.
    pub fn record(&mut self, v: u64) {
        self.buckets[Self::bucket_of(v)] += 1;
        self.count += 1;
        self.sum += v;
        self.max = self.max.max(v);
    }

    /// Samples recorded.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Sum of all samples.
    pub fn sum(&self) -> u64 {
        self.sum
    }

    /// Largest sample seen.
    pub fn max(&self) -> u64 {
        self.max
    }

    /// Mean sample, or 0 with no samples.
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }

    /// The raw bucket counts.
    pub fn buckets(&self) -> &[u64; HIST_BUCKETS] {
        &self.buckets
    }

    /// The value at quantile `q` (0..=1), derived from the buckets: the
    /// sample at rank `ceil(q·count)` resolves to its bucket's inclusive
    /// upper bound, clamped to the largest sample actually seen. 0 with no
    /// samples. The answer is a pure function of the bucket counts and
    /// max, so merged histograms report the same quantiles in any fold
    /// order.
    pub fn quantile(&self, q: f64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        let rank = ((q * self.count as f64).ceil() as u64).clamp(1, self.count);
        let mut seen = 0u64;
        for (i, &c) in self.buckets.iter().enumerate() {
            seen += c;
            if seen >= rank {
                return Self::bucket_upper(i).min(self.max);
            }
        }
        self.max
    }

    /// Median (see [`Log2Histogram::quantile`]).
    pub fn p50(&self) -> u64 {
        self.quantile(0.50)
    }

    /// 95th percentile (see [`Log2Histogram::quantile`]).
    pub fn p95(&self) -> u64 {
        self.quantile(0.95)
    }

    /// 99th percentile (see [`Log2Histogram::quantile`]).
    pub fn p99(&self) -> u64 {
        self.quantile(0.99)
    }

    /// Fold another histogram into this one: buckets, count and sum add
    /// field-wise, max takes the larger. Merging the histograms of two
    /// runs equals the histogram of the concatenated sample streams.
    pub fn merge(&mut self, other: &Log2Histogram) {
        for (b, o) in self.buckets.iter_mut().zip(other.buckets.iter()) {
            *b += o;
        }
        self.count += other.count;
        self.sum += other.sum;
        self.max = self.max.max(other.max);
    }

    /// `(bucket_lower_bound, count)` for every non-empty bucket.
    pub fn nonzero(&self) -> Vec<(u64, u64)> {
        self.buckets
            .iter()
            .enumerate()
            .filter(|(_, &c)| c > 0)
            .map(|(i, &c)| (if i == 0 { 0 } else { 1u64 << (i - 1) }, c))
            .collect()
    }
}

/// The thread-shared flavor of [`Log2Histogram`]: every field is an
/// atomic, so fleet workers record into one instance concurrently and the
/// sampler thread snapshots it live without taking a lock. All updates are
/// relaxed — the histogram is a commutative sum, so ordering between
/// recorders never changes a snapshot taken at quiescence.
#[derive(Debug)]
pub struct AtomicLog2Histogram {
    buckets: [AtomicU64; HIST_BUCKETS],
    count: AtomicU64,
    sum: AtomicU64,
    max: AtomicU64,
}

impl Default for AtomicLog2Histogram {
    fn default() -> Self {
        AtomicLog2Histogram {
            buckets: std::array::from_fn(|_| AtomicU64::new(0)),
            count: AtomicU64::new(0),
            sum: AtomicU64::new(0),
            max: AtomicU64::new(0),
        }
    }
}

impl AtomicLog2Histogram {
    /// A fresh, empty histogram.
    pub fn new() -> Self {
        AtomicLog2Histogram::default()
    }

    /// Record one sample (lock-free; callable from any thread).
    pub fn record(&self, v: u64) {
        self.buckets[Log2Histogram::bucket_of(v)].fetch_add(1, Ordering::Relaxed);
        self.count.fetch_add(1, Ordering::Relaxed);
        self.sum.fetch_add(v, Ordering::Relaxed);
        self.max.fetch_max(v, Ordering::Relaxed);
    }

    /// Samples recorded so far.
    pub fn count(&self) -> u64 {
        self.count.load(Ordering::Relaxed)
    }

    /// A point-in-time plain copy. Taken mid-run the fields may lag each
    /// other by in-flight records (count/sum/buckets are updated
    /// independently); at quiescence it equals the plain histogram of the
    /// same samples.
    pub fn snapshot(&self) -> Log2Histogram {
        let mut h = Log2Histogram::default();
        for (b, a) in h.buckets.iter_mut().zip(self.buckets.iter()) {
            *b = a.load(Ordering::Relaxed);
        }
        h.count = self.count.load(Ordering::Relaxed);
        h.sum = self.sum.load(Ordering::Relaxed);
        h.max = self.max.load(Ordering::Relaxed);
        h
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn histogram_buckets_are_log2() {
        assert_eq!(Log2Histogram::bucket_of(0), 0);
        assert_eq!(Log2Histogram::bucket_of(1), 1);
        assert_eq!(Log2Histogram::bucket_of(2), 2);
        assert_eq!(Log2Histogram::bucket_of(3), 2);
        assert_eq!(Log2Histogram::bucket_of(4), 3);
        assert_eq!(Log2Histogram::bucket_of(1023), 10);
        assert_eq!(Log2Histogram::bucket_of(1024), 11);
        assert_eq!(Log2Histogram::bucket_of(u64::MAX), HIST_BUCKETS - 1);
        let mut h = Log2Histogram::default();
        for v in [0, 1, 3, 1000, 1000] {
            h.record(v);
        }
        assert_eq!(h.count(), 5);
        assert_eq!(h.sum(), 2004);
        assert_eq!(h.max(), 1000);
        assert!((h.mean() - 400.8).abs() < 1e-9);
        assert_eq!(h.nonzero(), vec![(0, 1), (1, 1), (2, 1), (512, 2)]);
    }

    /// The field-wise quantile contract: every derivation is an exact
    /// function of (buckets, count, max), checked sample by sample.
    #[test]
    fn quantiles_derive_from_buckets_fieldwise() {
        let empty = Log2Histogram::default();
        assert_eq!(empty.p50(), 0);
        assert_eq!(empty.p99(), 0);

        let mut h = Log2Histogram::default();
        for v in [0, 1, 2, 3, 1000] {
            h.record(v);
        }
        // rank(0.5 * 5) = 3 → cumulative hits bucket 2 (values 2..=3):
        // upper bound 3, below max.
        assert_eq!(h.p50(), 3);
        // rank 5 → bucket of 1000 (512..=1023): upper bound 1023 clamps to
        // the observed max.
        assert_eq!(h.p95(), 1000);
        assert_eq!(h.p99(), 1000);
        assert_eq!(h.quantile(0.0), 0, "rank clamps to the first sample");
        assert_eq!(h.quantile(1.0), 1000);

        // A single sample answers itself (upper bound clamped to max).
        let mut one = Log2Histogram::default();
        one.record(5);
        assert_eq!(one.p50(), 5);
        assert_eq!(one.p99(), 5);

        // Quantiles are merge-invariant: merged buckets answer the same as
        // the concatenated stream.
        let mut a = Log2Histogram::default();
        let mut b = Log2Histogram::default();
        let mut all = Log2Histogram::default();
        for v in [10, 20, 40] {
            a.record(v);
            all.record(v);
        }
        for v in [80, 160, 5000] {
            b.record(v);
            all.record(v);
        }
        let mut m = a.clone();
        m.merge(&b);
        for q in [0.5, 0.9, 0.95, 0.99] {
            assert_eq!(m.quantile(q), all.quantile(q), "q={q}");
        }
    }

    #[test]
    fn bucket_upper_bounds() {
        assert_eq!(Log2Histogram::bucket_upper(0), 0);
        assert_eq!(Log2Histogram::bucket_upper(1), 1);
        assert_eq!(Log2Histogram::bucket_upper(2), 3);
        assert_eq!(Log2Histogram::bucket_upper(10), 1023);
        assert_eq!(Log2Histogram::bucket_upper(HIST_BUCKETS - 1), u64::MAX);
    }

    /// The documented edge convention, exercised identically through the
    /// plain and atomic flavors: zeros get bucket 0, v=1 gets bucket 1,
    /// powers of two open a new bucket (half-open `[2^(i-1), 2^i)`), and
    /// everything from 2^31 up saturates into the last bucket.
    #[test]
    fn edge_convention_shared_by_both_flavors() {
        // (value, expected bucket index)
        let edges: &[(u64, usize)] = &[
            (0, 0), // dedicated zero bucket
            (1, 1), // [1, 2)
            (2, 2), // power of two opens bucket 2: [2, 4)
            (3, 2),
            (4, 3),              // boundary again: 4 is the floor of [4, 8)
            ((1 << 10) - 1, 10), // 1023 tops bucket 10
            (1 << 10, 11),       // 1024 floors bucket 11
            ((1 << 10) + 1, 11),
            ((1 << 31) - 1, 31), // last unsaturated bucket
            (1 << 31, 32),       // saturation begins
            (1 << 32, 32),       // would be bucket 33; clamps
            (u64::MAX, 32),
        ];
        let plain_flavor = |v: u64| {
            let mut h = Log2Histogram::default();
            h.record(v);
            h.buckets().iter().position(|&c| c == 1).unwrap()
        };
        let atomic_flavor = |v: u64| {
            let h = AtomicLog2Histogram::new();
            h.record(v);
            h.snapshot().buckets().iter().position(|&c| c == 1).unwrap()
        };
        for &(v, want) in edges {
            assert_eq!(Log2Histogram::bucket_of(v), want, "bucket_of({v})");
            assert_eq!(plain_flavor(v), want, "plain record({v})");
            assert_eq!(atomic_flavor(v), want, "atomic record({v})");
        }
        // The half-open convention and the upper bounds agree: a power of
        // two is strictly above the previous bucket's inclusive upper
        // bound and equal to its own bucket's lower bound.
        for k in 1..31usize {
            let v = 1u64 << k;
            let b = Log2Histogram::bucket_of(v);
            assert_eq!(b, k + 1);
            assert_eq!(Log2Histogram::bucket_upper(b - 1), v - 1);
        }
    }

    #[test]
    fn atomic_histogram_matches_plain_at_quiescence() {
        let a = AtomicLog2Histogram::new();
        let mut plain = Log2Histogram::default();
        std::thread::scope(|s| {
            for chunk in 0..4u64 {
                let a = &a;
                s.spawn(move || {
                    for i in 0..100 {
                        a.record(chunk * 1000 + i);
                    }
                });
            }
        });
        for chunk in 0..4u64 {
            for i in 0..100 {
                plain.record(chunk * 1000 + i);
            }
        }
        assert_eq!(a.snapshot(), plain);
        assert_eq!(a.count(), 400);
    }
}
