//! Point-in-time metric snapshots: the plain, order-independent value the
//! registry exports, merges, and renders.
//!
//! A snapshot is a sorted name → value map. Fleet workers each produce one
//! per job; the join loop folds them **in job order** with
//! [`MetricsSnapshot::merge`] — counters, gauges and histogram buckets sum
//! field-wise, exactly like `Stats::merge` — so the merged export is
//! bit-identical for any worker count. Wall-clock values are inherently
//! nondeterministic, so every entry carries a `deterministic` flag and
//! [`MetricsSnapshot::deterministic_view`] projects the gate-able subset.

use crate::hist::Log2Histogram;
use std::collections::BTreeMap;

/// The three metric families a snapshot can hold.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MetricKind {
    /// A monotonically accumulated count.
    Counter,
    /// A last-written level (queue depth, busy workers…).
    Gauge,
    /// A log₂ distribution of samples.
    Histogram,
}

impl MetricKind {
    /// The Prometheus `# TYPE` label.
    pub fn label(self) -> &'static str {
        match self {
            MetricKind::Counter => "counter",
            MetricKind::Gauge => "gauge",
            MetricKind::Histogram => "histogram",
        }
    }
}

/// One metric's exported value.
#[derive(Debug, Clone, PartialEq)]
pub enum MetricValue {
    /// A monotonically accumulated count.
    Counter(u64),
    /// A last-written level.
    Gauge(u64),
    /// A log₂ distribution (boxed: a histogram is ~36× the size of the
    /// scalar variants).
    Histogram(Box<Log2Histogram>),
}

impl MetricValue {
    /// Which family this value belongs to.
    pub fn kind(&self) -> MetricKind {
        match self {
            MetricValue::Counter(_) => MetricKind::Counter,
            MetricValue::Gauge(_) => MetricKind::Gauge,
            MetricValue::Histogram(_) => MetricKind::Histogram,
        }
    }
}

/// One named metric in a snapshot: its value plus whether it is a pure
/// function of deterministic execution (and therefore part of the
/// worker-count bit-identity gate) or host-measured.
#[derive(Debug, Clone, PartialEq)]
pub struct MetricEntry {
    /// Is this metric scheduling- and wall-clock-independent?
    pub deterministic: bool,
    /// The exported value.
    pub value: MetricValue,
}

/// A point-in-time, name-sorted view of a registry (or of one engine's
/// metrics plane). See the module docs for the merge/determinism contract.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct MetricsSnapshot {
    entries: BTreeMap<String, MetricEntry>,
}

impl MetricsSnapshot {
    /// An empty snapshot.
    pub fn new() -> Self {
        MetricsSnapshot::default()
    }

    /// Install (or overwrite) a counter.
    pub fn set_counter(&mut self, name: &str, deterministic: bool, value: u64) {
        self.entries.insert(
            name.to_string(),
            MetricEntry {
                deterministic,
                value: MetricValue::Counter(value),
            },
        );
    }

    /// Install (or overwrite) a gauge.
    pub fn set_gauge(&mut self, name: &str, deterministic: bool, value: u64) {
        self.entries.insert(
            name.to_string(),
            MetricEntry {
                deterministic,
                value: MetricValue::Gauge(value),
            },
        );
    }

    /// Install (or overwrite) a histogram.
    pub fn set_histogram(&mut self, name: &str, deterministic: bool, h: Log2Histogram) {
        self.entries.insert(
            name.to_string(),
            MetricEntry {
                deterministic,
                value: MetricValue::Histogram(Box::new(h)),
            },
        );
    }

    /// One entry by name.
    pub fn get(&self, name: &str) -> Option<&MetricEntry> {
        self.entries.get(name)
    }

    /// A counter's value, if `name` is a counter.
    pub fn counter(&self, name: &str) -> Option<u64> {
        match self.entries.get(name)?.value {
            MetricValue::Counter(v) => Some(v),
            _ => None,
        }
    }

    /// A gauge's value, if `name` is a gauge.
    pub fn gauge(&self, name: &str) -> Option<u64> {
        match self.entries.get(name)?.value {
            MetricValue::Gauge(v) => Some(v),
            _ => None,
        }
    }

    /// A histogram by name, if `name` is a histogram.
    pub fn histogram(&self, name: &str) -> Option<&Log2Histogram> {
        match &self.entries.get(name)?.value {
            MetricValue::Histogram(h) => Some(h.as_ref()),
            _ => None,
        }
    }

    /// Number of metrics.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Is the snapshot empty?
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Iterate entries in name order.
    pub fn iter(&self) -> impl Iterator<Item = (&String, &MetricEntry)> {
        self.entries.iter()
    }

    /// Fold another snapshot into this one, field-wise and name-wise:
    /// counters and gauges sum, histograms merge bucket-wise, names only
    /// one side knows arrive intact, and an entry is deterministic only if
    /// both sides flag it so. Summation is commutative and associative, so
    /// folding per-job snapshots **in job order** yields one canonical
    /// merged export regardless of which worker produced which part —
    /// the same contract as `Stats::merge`. A name carried with different
    /// kinds on the two sides keeps this side's value (producer bug;
    /// debug-asserted).
    pub fn merge(&mut self, other: &MetricsSnapshot) {
        for (name, o) in &other.entries {
            match self.entries.get_mut(name) {
                None => {
                    self.entries.insert(name.clone(), o.clone());
                }
                Some(e) => {
                    e.deterministic &= o.deterministic;
                    match (&mut e.value, &o.value) {
                        (MetricValue::Counter(a), MetricValue::Counter(b)) => *a += b,
                        (MetricValue::Gauge(a), MetricValue::Gauge(b)) => *a += b,
                        (MetricValue::Histogram(a), MetricValue::Histogram(b)) => a.merge(b),
                        _ => debug_assert!(false, "metric {name} merged across kinds"),
                    }
                }
            }
        }
    }

    /// Only the entries flagged deterministic — the subset the fleet gate
    /// compares bit-identical across worker counts.
    pub fn deterministic_view(&self) -> MetricsSnapshot {
        MetricsSnapshot {
            entries: self
                .entries
                .iter()
                .filter(|(_, e)| e.deterministic)
                .map(|(k, v)| (k.clone(), v.clone()))
                .collect(),
        }
    }

    /// Render in the Prometheus text exposition format: `# TYPE` headers,
    /// plain samples for counters/gauges, and cumulative `_bucket{le=…}` /
    /// `_sum` / `_count` series for histograms (bucket upper bounds are the
    /// log₂ boundaries).
    pub fn to_prometheus(&self) -> String {
        let mut s = String::new();
        for (name, e) in &self.entries {
            s.push_str(&format!("# TYPE {name} {}\n", e.value.kind().label()));
            match &e.value {
                MetricValue::Counter(v) | MetricValue::Gauge(v) => {
                    s.push_str(&format!("{name} {v}\n"));
                }
                MetricValue::Histogram(h) => {
                    let top = h
                        .buckets()
                        .iter()
                        .rposition(|&c| c > 0)
                        .map(|i| i.min(crate::hist::HIST_BUCKETS - 2))
                        .unwrap_or(0);
                    let mut cum = 0u64;
                    for (i, &c) in h.buckets().iter().enumerate().take(top + 1) {
                        cum += c;
                        s.push_str(&format!(
                            "{name}_bucket{{le=\"{}\"}} {cum}\n",
                            Log2Histogram::bucket_upper(i)
                        ));
                    }
                    s.push_str(&format!("{name}_bucket{{le=\"+Inf\"}} {}\n", h.count()));
                    s.push_str(&format!("{name}_sum {}\n", h.sum()));
                    s.push_str(&format!("{name}_count {}\n", h.count()));
                }
            }
        }
        s
    }

    /// Render as one JSON object: `name → {type, det, …value fields…}`.
    /// Histograms carry count/sum/max, mean, the p50/p95/p99 derivations,
    /// and the non-empty `[lower_bound, count]` bucket pairs. Metric names
    /// are `[a-z0-9_]` by construction; quotes/backslashes are escaped
    /// defensively anyway.
    pub fn to_json(&self) -> String {
        fn esc(s: &str) -> String {
            s.replace('\\', "\\\\").replace('"', "\\\"")
        }
        let mut out = String::from("{");
        for (i, (name, e)) in self.entries.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&format!("\"{}\":{{", esc(name)));
            out.push_str(&format!(
                "\"type\":\"{}\",\"det\":{}",
                e.value.kind().label(),
                e.deterministic
            ));
            match &e.value {
                MetricValue::Counter(v) | MetricValue::Gauge(v) => {
                    out.push_str(&format!(",\"value\":{v}"));
                }
                MetricValue::Histogram(h) => {
                    out.push_str(&format!(
                        ",\"count\":{},\"sum\":{},\"max\":{},\"mean\":{:.1},\
                         \"p50\":{},\"p95\":{},\"p99\":{},\"buckets\":[",
                        h.count(),
                        h.sum(),
                        h.max(),
                        h.mean(),
                        h.p50(),
                        h.p95(),
                        h.p99()
                    ));
                    for (j, (lb, c)) in h.nonzero().into_iter().enumerate() {
                        if j > 0 {
                            out.push(',');
                        }
                        out.push_str(&format!("[{lb},{c}]"));
                    }
                    out.push(']');
                }
            }
            out.push('}');
        }
        out.push('}');
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> MetricsSnapshot {
        let mut s = MetricsSnapshot::new();
        s.set_counter("fpvm_traps_total", true, 7);
        s.set_gauge("fleet_queue_depth", false, 3);
        let mut h = Log2Histogram::default();
        for v in [1, 2, 1000] {
            h.record(v);
        }
        s.set_histogram("fpvm_trap_ns", false, h);
        s
    }

    #[test]
    fn accessors_and_kinds() {
        let s = sample();
        assert_eq!(s.len(), 3);
        assert_eq!(s.counter("fpvm_traps_total"), Some(7));
        assert_eq!(s.gauge("fleet_queue_depth"), Some(3));
        assert_eq!(s.histogram("fpvm_trap_ns").unwrap().count(), 3);
        assert_eq!(s.counter("fleet_queue_depth"), None, "kind-checked");
        assert_eq!(s.counter("missing"), None);
        assert_eq!(
            s.get("fpvm_trap_ns").unwrap().value.kind(),
            MetricKind::Histogram
        );
    }

    #[test]
    fn merge_sums_fieldwise_and_unions_names() {
        let a = sample();
        let mut b = sample();
        b.set_counter("only_b_total", true, 5);
        let mut m = a.clone();
        m.merge(&b);
        assert_eq!(m.counter("fpvm_traps_total"), Some(14));
        assert_eq!(m.gauge("fleet_queue_depth"), Some(6));
        assert_eq!(m.histogram("fpvm_trap_ns").unwrap().count(), 6);
        assert_eq!(m.counter("only_b_total"), Some(5));
        // Merge in job order is canonical: (a+b)+c == a+(b+c) and the
        // same multiset of snapshots in the same order is bit-identical.
        let c = sample();
        let mut left = a.clone();
        left.merge(&b);
        left.merge(&c);
        let mut right = MetricsSnapshot::new();
        right.merge(&a);
        right.merge(&b);
        right.merge(&c);
        assert_eq!(left, right);
    }

    #[test]
    fn deterministic_view_filters_and_flags_and() {
        let s = sample();
        let d = s.deterministic_view();
        assert_eq!(d.len(), 1);
        assert_eq!(d.counter("fpvm_traps_total"), Some(7));
        // A nondeterministic copy of a deterministic name poisons the flag.
        let mut nd = MetricsSnapshot::new();
        nd.set_counter("fpvm_traps_total", false, 1);
        let mut m = s.clone();
        m.merge(&nd);
        assert!(m.deterministic_view().is_empty());
    }

    #[test]
    fn prometheus_text_format() {
        let p = sample().to_prometheus();
        assert!(p.contains("# TYPE fpvm_traps_total counter\nfpvm_traps_total 7\n"));
        assert!(p.contains("# TYPE fleet_queue_depth gauge\nfleet_queue_depth 3\n"));
        assert!(p.contains("# TYPE fpvm_trap_ns histogram\n"));
        // Cumulative buckets: 1 ≤ le=1, 2 ≤ le=3, all ≤ +Inf.
        assert!(p.contains("fpvm_trap_ns_bucket{le=\"1\"} 1\n"));
        assert!(p.contains("fpvm_trap_ns_bucket{le=\"3\"} 2\n"));
        assert!(p.contains("fpvm_trap_ns_bucket{le=\"+Inf\"} 3\n"));
        assert!(p.contains("fpvm_trap_ns_sum 1003\n"));
        assert!(p.contains("fpvm_trap_ns_count 3\n"));
    }

    #[test]
    fn json_shape() {
        let j = sample().to_json();
        assert!(j.starts_with('{') && j.ends_with('}'));
        assert!(j.contains("\"fpvm_traps_total\":{\"type\":\"counter\",\"det\":true,\"value\":7}"));
        assert!(j.contains("\"fleet_queue_depth\":{\"type\":\"gauge\",\"det\":false,\"value\":3}"));
        assert!(
            j.contains("\"p50\":3"),
            "rank 2 of [1,2,1000] resolves to bucket upper 3"
        );
        assert!(j.contains("\"buckets\":[[1,1],[2,1],[512,1]]"));
    }
}
