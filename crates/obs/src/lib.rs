//! fpvm-obs — the observability plane for the FPVM reproduction.
//!
//! Three pieces, all std-only and dependency-free:
//!
//! - [`Log2Histogram`] / [`AtomicLog2Histogram`]: the shared bucketing
//!   scheme (zeros, then one bucket per power of two) with exact
//!   p50/p95/p99 derivations from the buckets, in single-owner and
//!   lock-free thread-shared flavors.
//! - [`MetricsRegistry`]: a `Send + Sync` registry of named atomic
//!   counters, gauges, and histograms. Fleet workers clone cheap handles
//!   and record lock-free; a sampler thread calls
//!   [`MetricsRegistry::snapshot`] live without stopping anyone.
//! - [`MetricsSnapshot`]: the plain point-in-time export — merged in job
//!   order exactly like `Stats::merge` so any worker count yields
//!   bit-identical metrics, rendered as Prometheus text or JSON, with a
//!   [`MetricsSnapshot::deterministic_view`] projection for the
//!   worker-count bit-identity gate.
//!
//! The engine (fpvm-core) keeps its own per-run metrics plane behind
//! `FpvmConfig::metrics` and exports a [`MetricsSnapshot`]; the fleet
//! additionally shares one `MetricsRegistry` across workers for live
//! heartbeats. Both meet in the same snapshot type, so exporters don't
//! care where a metric came from.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod hist;
mod snapshot;

pub use hist::{AtomicLog2Histogram, Log2Histogram, HIST_BUCKETS};
pub use snapshot::{MetricEntry, MetricKind, MetricValue, MetricsSnapshot};

use std::collections::BTreeMap;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

/// One registered metric's shared storage.
enum Slot {
    Counter {
        deterministic: bool,
        cell: Arc<AtomicU64>,
    },
    Gauge {
        deterministic: bool,
        cell: Arc<AtomicU64>,
    },
    Histogram {
        deterministic: bool,
        cell: Arc<AtomicLog2Histogram>,
    },
}

impl Slot {
    fn kind(&self) -> MetricKind {
        match self {
            Slot::Counter { .. } => MetricKind::Counter,
            Slot::Gauge { .. } => MetricKind::Gauge,
            Slot::Histogram { .. } => MetricKind::Histogram,
        }
    }
}

/// A cheap cloneable handle to a registered counter. Recording is a single
/// relaxed `fetch_add` — callable from any thread, no lock.
#[derive(Clone)]
pub struct CounterHandle(Arc<AtomicU64>);

impl CounterHandle {
    /// Add `n` to the counter.
    pub fn add(&self, n: u64) {
        self.0.fetch_add(n, Ordering::Relaxed);
    }

    /// Increment by one.
    pub fn inc(&self) {
        self.add(1);
    }

    /// Current value.
    pub fn get(&self) -> u64 {
        self.0.load(Ordering::Relaxed)
    }
}

/// A cheap cloneable handle to a registered gauge (last-written level).
#[derive(Clone)]
pub struct GaugeHandle(Arc<AtomicU64>);

impl GaugeHandle {
    /// Set the level.
    pub fn set(&self, v: u64) {
        self.0.store(v, Ordering::Relaxed);
    }

    /// Add `n` to the level.
    pub fn add(&self, n: u64) {
        self.0.fetch_add(n, Ordering::Relaxed);
    }

    /// Subtract `n` from the level (saturating at 0 under races is the
    /// caller's problem; fleet gauges only move one direction at a time).
    pub fn sub(&self, n: u64) {
        self.0.fetch_sub(n, Ordering::Relaxed);
    }

    /// Current level.
    pub fn get(&self) -> u64 {
        self.0.load(Ordering::Relaxed)
    }
}

/// A cheap cloneable handle to a registered histogram.
#[derive(Clone)]
pub struct HistogramHandle(Arc<AtomicLog2Histogram>);

impl HistogramHandle {
    /// Record one sample (lock-free).
    pub fn record(&self, v: u64) {
        self.0.record(v);
    }

    /// Samples recorded so far.
    pub fn count(&self) -> u64 {
        self.0.count()
    }
}

/// A `Send + Sync` registry of named metrics shared across fleet workers.
///
/// Registration takes a short mutex (once per metric name, typically at
/// worker startup); recording through the returned handles is lock-free.
/// Re-registering an existing name returns a handle to the same storage —
/// that is how every worker ends up feeding one `fleet_jobs_completed`
/// counter. Registering a name under a *different* kind panics: that is a
/// producer bug, not a runtime condition.
#[derive(Default)]
pub struct MetricsRegistry {
    slots: Mutex<BTreeMap<String, Slot>>,
    sealed: AtomicBool,
}

impl MetricsRegistry {
    /// A fresh, empty registry.
    pub fn new() -> Self {
        MetricsRegistry::default()
    }

    /// Register (or look up) a counter. `deterministic` marks it a pure
    /// function of guest execution, part of the worker-count bit-identity
    /// gate.
    pub fn counter(&self, name: &str, deterministic: bool) -> CounterHandle {
        let mut slots = self.slots.lock().unwrap();
        let slot = slots
            .entry(name.to_string())
            .or_insert_with(|| Slot::Counter {
                deterministic,
                cell: Arc::new(AtomicU64::new(0)),
            });
        match slot {
            Slot::Counter { cell, .. } => CounterHandle(Arc::clone(cell)),
            other => panic!(
                "metric {name} already registered as {}",
                other.kind().label()
            ),
        }
    }

    /// Register (or look up) a gauge.
    pub fn gauge(&self, name: &str, deterministic: bool) -> GaugeHandle {
        let mut slots = self.slots.lock().unwrap();
        let slot = slots
            .entry(name.to_string())
            .or_insert_with(|| Slot::Gauge {
                deterministic,
                cell: Arc::new(AtomicU64::new(0)),
            });
        match slot {
            Slot::Gauge { cell, .. } => GaugeHandle(Arc::clone(cell)),
            other => panic!(
                "metric {name} already registered as {}",
                other.kind().label()
            ),
        }
    }

    /// Register (or look up) a histogram.
    pub fn histogram(&self, name: &str, deterministic: bool) -> HistogramHandle {
        let mut slots = self.slots.lock().unwrap();
        let slot = slots
            .entry(name.to_string())
            .or_insert_with(|| Slot::Histogram {
                deterministic,
                cell: Arc::new(AtomicLog2Histogram::new()),
            });
        match slot {
            Slot::Histogram { cell, .. } => HistogramHandle(Arc::clone(cell)),
            other => panic!(
                "metric {name} already registered as {}",
                other.kind().label()
            ),
        }
    }

    /// Mark the registry quiescent: all recorders have joined, so the next
    /// snapshot is exact rather than a live sample. Purely informational —
    /// exporters read it via [`MetricsRegistry::is_sealed`].
    pub fn seal(&self) {
        self.sealed.store(true, Ordering::Release);
    }

    /// Has [`MetricsRegistry::seal`] been called?
    pub fn is_sealed(&self) -> bool {
        self.sealed.load(Ordering::Acquire)
    }

    /// A point-in-time plain snapshot of every registered metric. Safe to
    /// call from a sampler thread while workers record; individual values
    /// may lag each other mid-run, and are exact at quiescence.
    pub fn snapshot(&self) -> MetricsSnapshot {
        let slots = self.slots.lock().unwrap();
        let mut snap = MetricsSnapshot::new();
        for (name, slot) in slots.iter() {
            match slot {
                Slot::Counter {
                    deterministic,
                    cell,
                } => snap.set_counter(name, *deterministic, cell.load(Ordering::Relaxed)),
                Slot::Gauge {
                    deterministic,
                    cell,
                } => snap.set_gauge(name, *deterministic, cell.load(Ordering::Relaxed)),
                Slot::Histogram {
                    deterministic,
                    cell,
                } => snap.set_histogram(name, *deterministic, cell.snapshot()),
            }
        }
        snap
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The registry and its handles must be shareable across fleet worker
    /// threads.
    #[test]
    fn registry_is_send_sync() {
        fn pin<T: Send + Sync>() {}
        pin::<MetricsRegistry>();
        pin::<CounterHandle>();
        pin::<GaugeHandle>();
        pin::<HistogramHandle>();
    }

    #[test]
    fn handles_share_storage_by_name() {
        let r = MetricsRegistry::new();
        let a = r.counter("jobs_total", true);
        let b = r.counter("jobs_total", true);
        a.add(2);
        b.inc();
        assert_eq!(a.get(), 3);

        let g = r.gauge("queue_depth", false);
        g.set(5);
        g.sub(2);
        g.add(1);
        assert_eq!(r.gauge("queue_depth", false).get(), 4);

        let h = r.histogram("lat_ns", false);
        h.record(100);
        r.histogram("lat_ns", false).record(200);
        assert_eq!(h.count(), 2);
    }

    #[test]
    fn snapshot_reflects_all_slots() {
        let r = MetricsRegistry::new();
        r.counter("c", true).add(7);
        r.gauge("g", false).set(9);
        r.histogram("h", false).record(1000);
        let s = r.snapshot();
        assert_eq!(s.counter("c"), Some(7));
        assert_eq!(s.gauge("g"), Some(9));
        assert_eq!(s.histogram("h").unwrap().max(), 1000);
        assert!(s.get("c").unwrap().deterministic);
        assert!(!s.get("g").unwrap().deterministic);
    }

    #[test]
    #[should_panic(expected = "already registered")]
    fn kind_mismatch_panics() {
        let r = MetricsRegistry::new();
        r.counter("x", true);
        r.gauge("x", true);
    }

    #[test]
    fn concurrent_recording_sums_exactly() {
        let r = MetricsRegistry::new();
        std::thread::scope(|s| {
            for _ in 0..4 {
                let c = r.counter("n", true);
                let h = r.histogram("v", false);
                s.spawn(move || {
                    for i in 0..250 {
                        c.inc();
                        h.record(i);
                    }
                });
            }
        });
        r.seal();
        assert!(r.is_sealed());
        let s = r.snapshot();
        assert_eq!(s.counter("n"), Some(1000));
        assert_eq!(s.histogram("v").unwrap().count(), 1000);
    }
}
