//! Fig. 11 (criterion): BigFloat add/sub/mul/div as a function of mantissa
//! precision — the MPFR scaling curve. The `reproduce --exp fig11` harness
//! prints the full table; this bench gives statistically robust per-op
//! timings at selected precisions, plus the Karatsuba-vs-schoolbook
//! multiplication ablation.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use fpvm_arith::bigfloat::{self, limb, BigFloat};
use fpvm_arith::Round;

fn operand(prec: u32, seed: u64) -> BigFloat {
    let mut limbs = vec![0u64; (prec as usize).div_ceil(64)];
    let mut s = seed;
    for l in limbs.iter_mut() {
        s = s.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
        *l = s | 1;
    }
    *limbs.last_mut().unwrap() |= 1 << 63;
    BigFloat::from_int(false, -(prec as i64), &limbs, false, prec, Round::NearestEven).0
}

fn bench_ops(c: &mut Criterion) {
    let rm = Round::NearestEven;
    let mut g = c.benchmark_group("fig11/bigfloat_ops");
    for &lg in &[5u32, 8, 11, 14] {
        let prec = 1u32 << lg;
        let a = operand(prec, 1);
        let b = operand(prec, 2);
        g.bench_with_input(BenchmarkId::new("add", prec), &prec, |bench, &p| {
            bench.iter(|| bigfloat::add(&a, &b, p, rm).0)
        });
        g.bench_with_input(BenchmarkId::new("mul", prec), &prec, |bench, &p| {
            bench.iter(|| bigfloat::mul(&a, &b, p, rm).0)
        });
        g.bench_with_input(BenchmarkId::new("div", prec), &prec, |bench, &p| {
            bench.iter(|| bigfloat::div(&a, &b, p, rm).0)
        });
        g.bench_with_input(BenchmarkId::new("sqrt", prec), &prec, |bench, &p| {
            bench.iter(|| bigfloat::sqrt(&a, p, rm).0)
        });
    }
    g.finish();
}

fn bench_karatsuba_ablation(c: &mut Criterion) {
    // DESIGN.md ablation: the Karatsuba layer vs pure schoolbook.
    let mut g = c.benchmark_group("fig11/karatsuba_ablation");
    for &nlimbs in &[16usize, 64, 256] {
        let mut s = 7u64;
        let mut next = move || {
            s = s.wrapping_mul(6364136223846793005).wrapping_add(1);
            s
        };
        let a: Vec<u64> = (0..nlimbs).map(|_| next()).collect();
        let b: Vec<u64> = (0..nlimbs).map(|_| next()).collect();
        g.bench_with_input(BenchmarkId::new("auto", nlimbs), &nlimbs, |bench, _| {
            bench.iter(|| limb::mul(&a, &b))
        });
        g.bench_with_input(
            BenchmarkId::new("schoolbook", nlimbs),
            &nlimbs,
            |bench, _| bench.iter(|| limb::mul_basecase(&a, &b)),
        );
    }
    g.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(20).measurement_time(std::time::Duration::from_secs(2)).warm_up_time(std::time::Duration::from_millis(300));
    targets = bench_ops, bench_karatsuba_ablation
}
criterion_main!(benches);
