//! Fig. 11 microbenchmark: BigFloat add/sub/mul/div as a function of
//! mantissa precision — the MPFR scaling curve. The `reproduce --exp
//! fig11` harness prints the full table; this bench gives per-op timings
//! at selected precisions, plus the Karatsuba-vs-schoolbook multiplication
//! ablation.

use fpvm_arith::bigfloat::{self, limb, BigFloat};
use fpvm_arith::Round;
use fpvm_bench::microbench::bench_ns;

fn operand(prec: u32, seed: u64) -> BigFloat {
    let mut limbs = vec![0u64; (prec as usize).div_ceil(64)];
    let mut s = seed;
    for l in limbs.iter_mut() {
        s = s
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        *l = s | 1;
    }
    *limbs.last_mut().unwrap() |= 1 << 63;
    BigFloat::from_int(
        false,
        -(prec as i64),
        &limbs,
        false,
        prec,
        Round::NearestEven,
    )
    .0
}

fn main() {
    let rm = Round::NearestEven;
    println!("== fig11: bigfloat ops vs precision ==");
    for &lg in &[5u32, 8, 11, 14] {
        let prec = 1u32 << lg;
        let a = operand(prec, 1);
        let b = operand(prec, 2);
        bench_ns(&format!("fig11/add/{prec}"), || {
            bigfloat::add(&a, &b, prec, rm).0
        });
        bench_ns(&format!("fig11/mul/{prec}"), || {
            bigfloat::mul(&a, &b, prec, rm).0
        });
        bench_ns(&format!("fig11/div/{prec}"), || {
            bigfloat::div(&a, &b, prec, rm).0
        });
        bench_ns(&format!("fig11/sqrt/{prec}"), || {
            bigfloat::sqrt(&a, prec, rm).0
        });
    }
    // DESIGN.md ablation: the Karatsuba layer vs pure schoolbook.
    println!("== fig11: karatsuba ablation ==");
    for &nlimbs in &[16usize, 64, 256] {
        let mut s = 7u64;
        let mut next = move || {
            s = s.wrapping_mul(6364136223846793005).wrapping_add(1);
            s
        };
        let a: Vec<u64> = (0..nlimbs).map(|_| next()).collect();
        let b: Vec<u64> = (0..nlimbs).map(|_| next()).collect();
        bench_ns(&format!("fig11/karatsuba/auto/{nlimbs}"), || {
            limb::mul(&a, &b)
        });
        bench_ns(&format!("fig11/karatsuba/schoolbook/{nlimbs}"), || {
            limb::mul_basecase(&a, &b)
        });
    }
}
