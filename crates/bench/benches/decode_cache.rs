//! Decode-cache microbenchmarks: the per-lookup cost of the engine's
//! direct-mapped inline cache against the old `HashMap` policy, plus the
//! end-to-end effect of each policy (and the `decode_cache: false`
//! ablation) on a real trapping workload.
//!
//! The direct-mapped cache indexes one slot per guest code byte, so a hit
//! is a bounds-checked vector load instead of a hash-and-probe; this bench
//! demonstrates the hit path is no slower than the `HashMap` it replaced.

use fpvm_arith::Vanilla;
use fpvm_bench::microbench::{bench_ns, black_box};
use fpvm_core::runtime::{
    DecodeCache, DirectMappedCache, Fpvm, FpvmConfig, HashMapCache, PassthroughCache,
};
use fpvm_ir::{compile, CompileMode};
use fpvm_machine::{CostModel, Inst, Machine, TrapKind, CODE_BASE};
use fpvm_workloads::{lorenz, Size};

const CODE_LEN: usize = 4096;
const SITES: u64 = 256;

/// A representative cached entry (the engine stores `(Inst, len)`).
fn entry(id: u16) -> (Inst, u8) {
    (
        Inst::Trap {
            kind: TrapKind::Correctness,
            id,
        },
        3,
    )
}

fn populate(cache: &mut dyn DecodeCache) {
    cache.prepare(CODE_LEN, 0x5eed);
    for i in 0..SITES {
        cache.insert(CODE_BASE + i * 5, entry(i as u16));
    }
}

fn bench_policy(name: &str, cache: &mut dyn DecodeCache) -> f64 {
    populate(cache);
    let hits = bench_ns(&format!("decode_cache/{name}/lookup_hit_x256"), || {
        let mut found = 0u32;
        for i in 0..SITES {
            if cache.lookup(CODE_BASE + i * 5).is_some() {
                found += 1;
            }
        }
        found
    });
    bench_ns(&format!("decode_cache/{name}/lookup_miss_x256"), || {
        let mut found = 0u32;
        for i in 0..SITES {
            // Offset by one byte: valid code range, never inserted.
            if cache.lookup(CODE_BASE + i * 5 + 1).is_some() {
                found += 1;
            }
        }
        found
    });
    bench_ns(&format!("decode_cache/{name}/insert_x256"), || {
        for i in 0..SITES {
            cache.insert(CODE_BASE + i * 5, entry(i as u16));
        }
    });
    hits
}

fn main() {
    println!("== decode cache: per-lookup cost (256 sites, 4 KiB code) ==");
    let dm = bench_policy("direct_mapped", &mut DirectMappedCache::new());
    let hm = bench_policy("hashmap", &mut HashMapCache::new());
    println!(
        "direct-mapped hit path is {:.2}x the HashMap cost (<= 1.0 means no slower)",
        dm / hm
    );

    println!();
    println!("== decode cache: end-to-end (lorenz/tiny, Vanilla, R815) ==");
    let w = lorenz::workload(Size::Tiny);
    let compiled = compile(&w.module, CompileMode::Native);
    let run_policy = |name: &str, cache: Option<Box<dyn DecodeCache>>| {
        let mut last = (0u64, 0u64, 0u64);
        bench_ns(&format!("decode_cache/{name}/lorenz_tiny_run"), || {
            let mut m = Machine::new(CostModel::r815());
            m.load_program(&compiled.program);
            let mut fpvm = Fpvm::new(Vanilla, FpvmConfig::default());
            if let Some(c) = &cache {
                // Fresh policy per run: clone-by-reconstruction.
                let fresh: Box<dyn DecodeCache> = match c.name() {
                    "hashmap" => Box::new(HashMapCache::new()),
                    "passthrough" => Box::new(PassthroughCache),
                    _ => Box::new(DirectMappedCache::new()),
                };
                fpvm.set_decode_cache(fresh);
            }
            let r = fpvm.run(&mut m);
            last = (
                r.stats.decode_hits,
                r.stats.decode_misses,
                r.stats.cycles.decode,
            );
            black_box(r.cycles)
        });
        println!(
            "    {name}: {} hits / {} misses, {} decode cycles",
            last.0, last.1, last.2
        );
    };
    run_policy("direct_mapped", None);
    run_policy("hashmap", Some(Box::new(HashMapCache::new())));
    run_policy("passthrough_ablation", Some(Box::new(PassthroughCache)));
}
