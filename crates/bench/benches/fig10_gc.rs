//! Fig. 10 (criterion): garbage collector pass latency as a function of
//! live shadow population, serial vs parallel mark (the DESIGN.md
//! parallel-GC ablation).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use fpvm_arith::ShadowArena;
use fpvm_core::gc;
use fpvm_machine::{Asm, CostModel, Machine, DATA_BASE};

fn machine_with_boxes(arena: &mut ShadowArena<f64>, n: usize) -> Machine {
    let mut a = Asm::new();
    a.global("space", 64 * 1024);
    a.halt();
    let p = a.finish();
    let mut m = Machine::new(CostModel::r815());
    m.load_program(&p);
    // Scatter n live boxes through the data segment; allocate n dead ones.
    for i in 0..n {
        let live = arena.alloc(i as f64);
        let _dead = arena.alloc(-(i as f64));
        m.mem
            .write_u64(DATA_BASE + (i as u64 % 8000) * 8, fpvm_nanbox::encode(live))
            .unwrap();
    }
    m
}

fn bench_gc(c: &mut Criterion) {
    let mut g = c.benchmark_group("fig10/gc_pass");
    for &n in &[100usize, 1000, 10_000] {
        for (mode, parallel) in [("serial", false), ("parallel", true)] {
            g.bench_with_input(
                BenchmarkId::new(mode, n),
                &n,
                |bench, &n| {
                    bench.iter_batched(
                        || {
                            let mut arena = ShadowArena::new();
                            let m = machine_with_boxes(&mut arena, n);
                            (m, arena)
                        },
                        |(m, mut arena)| gc::collect(&m, &mut arena, parallel),
                        criterion::BatchSize::SmallInput,
                    )
                },
            );
        }
    }
    g.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(15).measurement_time(std::time::Duration::from_secs(2)).warm_up_time(std::time::Duration::from_millis(300));
    targets = bench_gc
}
criterion_main!(benches);
