//! Fig. 10 microbenchmark: garbage collector pass latency as a function of
//! live shadow population, serial vs parallel mark (the DESIGN.md
//! parallel-GC ablation). Each timed iteration rebuilds the arena + guest
//! memory (collect mutates both), so the printed number includes that
//! fixed setup; it is identical across the serial/parallel pair being
//! compared.

use fpvm_arith::ShadowArena;
use fpvm_bench::microbench::bench_ns;
use fpvm_core::gc;
use fpvm_machine::{Asm, CostModel, Machine, DATA_BASE};

fn machine_with_boxes(arena: &mut ShadowArena<f64>, n: usize) -> Machine {
    let mut a = Asm::new();
    a.global("space", 64 * 1024);
    a.halt();
    let p = a.finish();
    let mut m = Machine::new(CostModel::r815());
    m.load_program(&p);
    // Scatter n live boxes through the data segment; allocate n dead ones.
    for i in 0..n {
        let live = arena.alloc(i as f64);
        let _dead = arena.alloc(-(i as f64));
        m.mem
            .write_u64(DATA_BASE + (i as u64 % 8000) * 8, fpvm_nanbox::encode(live))
            .unwrap();
    }
    m
}

fn main() {
    println!("== fig10: gc pass latency (setup + collect) ==");
    for &n in &[100usize, 1000, 10_000] {
        for (mode, parallel) in [("serial", false), ("parallel", true)] {
            bench_ns(&format!("fig10/gc_pass/{mode}/{n}"), || {
                let mut arena = ShadowArena::new();
                let m = machine_with_boxes(&mut arena, n);
                gc::collect(&m, &mut arena, parallel)
            });
        }
    }
}
