//! Fig. 12 (criterion): end-to-end workload execution, native vs
//! virtualized (Vanilla and 200-bit BigFloat), at reduced sizes. The cycle
//! slowdown table comes from `reproduce --exp fig12`; this tracks the real
//! wall-clock cost of the whole pipeline per workload.

use criterion::{criterion_group, criterion_main, Criterion};
use fpvm_analysis::analyze_and_patch;
use fpvm_arith::{BigFloatCtx, Vanilla};
use fpvm_core::{Fpvm, FpvmConfig};
use fpvm_ir::{compile, CompileMode};
use fpvm_machine::{CostModel, Machine};
use fpvm_workloads::{lorenz, nas_cg, nas_is, Size};

fn bench_workloads(c: &mut Criterion) {
    let cases = [
        ("lorenz", lorenz::workload(Size::Tiny)),
        ("nas_cg", nas_cg::workload(Size::Tiny)),
        ("nas_is", nas_is::workload(Size::Tiny)),
    ];
    for (name, w) in cases {
        let compiled = compile(&w.module, CompileMode::Native);
        let patched = analyze_and_patch(&compiled.program);
        let mut g = c.benchmark_group(format!("fig12/{name}"));
        g.bench_function("native", |bench| {
            bench.iter(|| {
                let mut m = Machine::new(CostModel::r815());
                fpvm_core::run_native(&mut m, &compiled.program, u64::MAX);
                m.cycles
            })
        });
        g.bench_function("fpvm_vanilla", |bench| {
            bench.iter(|| {
                let mut m = Machine::new(CostModel::r815());
                m.load_program(&patched.program);
                let mut rt = Fpvm::new(Vanilla, FpvmConfig::default());
                rt.set_side_table(patched.side_table.clone());
                rt.run(&mut m).cycles
            })
        });
        g.bench_function("fpvm_bigfloat200", |bench| {
            bench.iter(|| {
                let mut m = Machine::new(CostModel::r815());
                m.load_program(&patched.program);
                let mut rt = Fpvm::new(BigFloatCtx::new(200), FpvmConfig::default());
                rt.set_side_table(patched.side_table.clone());
                rt.run(&mut m).cycles
            })
        });
        g.finish();
    }
}

fn bench_static_analysis(c: &mut Criterion) {
    // The offline cost (Fig. 3 "static costs: huge" — here: measurable).
    let w = nas_cg::workload(Size::Tiny);
    let compiled = compile(&w.module, CompileMode::Native);
    c.bench_function("fig12/static_analysis_nas_cg", |bench| {
        bench.iter(|| analyze_and_patch(&compiled.program).side_table.len())
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10).measurement_time(std::time::Duration::from_secs(3)).warm_up_time(std::time::Duration::from_millis(500));
    targets = bench_workloads, bench_static_analysis
}
criterion_main!(benches);
