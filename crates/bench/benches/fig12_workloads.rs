//! Fig. 12 microbenchmark: end-to-end workload execution, native vs
//! virtualized (Vanilla and 200-bit BigFloat), at reduced sizes. The cycle
//! slowdown table comes from `reproduce --exp fig12`; this tracks the real
//! wall-clock cost of the whole pipeline per workload.

use fpvm_analysis::analyze_and_patch;
use fpvm_arith::{BigFloatCtx, Vanilla};
use fpvm_bench::microbench::bench_ns;
use fpvm_core::{Fpvm, FpvmConfig};
use fpvm_ir::{compile, CompileMode};
use fpvm_machine::{CostModel, Machine};
use fpvm_workloads::{lorenz, nas_cg, nas_is, Size};

fn main() {
    let cases = [
        ("lorenz", lorenz::workload(Size::Tiny)),
        ("nas_cg", nas_cg::workload(Size::Tiny)),
        ("nas_is", nas_is::workload(Size::Tiny)),
    ];
    println!("== fig12: end-to-end workload host time ==");
    for (name, w) in cases {
        let compiled = compile(&w.module, CompileMode::Native);
        let patched = analyze_and_patch(&compiled.program);
        bench_ns(&format!("fig12/{name}/native"), || {
            let mut m = Machine::new(CostModel::r815());
            fpvm_core::run_native(&mut m, &compiled.program, u64::MAX);
            m.cycles
        });
        bench_ns(&format!("fig12/{name}/fpvm_vanilla"), || {
            let mut m = Machine::new(CostModel::r815());
            m.load_program(&patched.program);
            let mut rt = Fpvm::new(Vanilla, FpvmConfig::default());
            rt.set_side_table(patched.side_table.clone());
            rt.run(&mut m).cycles
        });
        bench_ns(&format!("fig12/{name}/fpvm_bigfloat200"), || {
            let mut m = Machine::new(CostModel::r815());
            m.load_program(&patched.program);
            let mut rt = Fpvm::new(BigFloatCtx::new(200), FpvmConfig::default());
            rt.set_side_table(patched.side_table.clone());
            rt.run(&mut m).cycles
        });
    }
    // The offline cost (Fig. 3 "static costs: huge" — here: measurable).
    let w = nas_cg::workload(Size::Tiny);
    let compiled = compile(&w.module, CompileMode::Native);
    bench_ns("fig12/static_analysis_nas_cg", || {
        analyze_and_patch(&compiled.program).side_table.len()
    });
}
