//! Fig. 9 (criterion): host-time cost of the runtime's trap-handling
//! pipeline — decode (hit vs miss), bind, and emulation with each
//! arithmetic system. The simulated-cycle breakdown comes from
//! `reproduce --exp fig9`; this measures the *real* work the reproduction
//! performs per trap.

use criterion::{criterion_group, criterion_main, Criterion};
use fpvm_arith::{BigFloatCtx, PositCtx, Vanilla};
use fpvm_core::{Fpvm, FpvmConfig};
use fpvm_machine::{Asm, Cond, CostModel, Gpr, Machine, Xmm, AluOp};

/// A guest that traps `iters` times (one rounding add per iteration).
fn trapping_guest(iters: i64) -> fpvm_machine::Program {
    let mut a = Asm::new();
    let tenth = a.f64m(0.1);
    let third = a.f64m(1.0 / 3.0);
    a.movsd(Xmm(2), third);
    a.mov_ri(Gpr::RCX, 0);
    let top = a.here_label();
    let done = a.label();
    a.cmp_ri(Gpr::RCX, iters);
    a.jcc(Cond::Ge, done);
    a.addsd(Xmm(2), tenth);
    a.alu_ri(AluOp::Add, Gpr::RCX, 1);
    a.jmp(top);
    a.bind(done);
    a.halt();
    a.finish()
}

fn bench_trap_pipeline(c: &mut Criterion) {
    let prog = trapping_guest(1000);
    let mut g = c.benchmark_group("fig09/per_trap_host_ns");
    g.throughput(criterion::Throughput::Elements(1000));
    g.bench_function("vanilla", |bench| {
        bench.iter(|| {
            let mut m = Machine::new(CostModel::r815());
            m.load_program(&prog);
            let mut rt = Fpvm::new(Vanilla, FpvmConfig::default());
            rt.run(&mut m).stats.fp_traps
        })
    });
    g.bench_function("bigfloat200", |bench| {
        bench.iter(|| {
            let mut m = Machine::new(CostModel::r815());
            m.load_program(&prog);
            let mut rt = Fpvm::new(BigFloatCtx::new(200), FpvmConfig::default());
            rt.run(&mut m).stats.fp_traps
        })
    });
    g.bench_function("posit64", |bench| {
        bench.iter(|| {
            let mut m = Machine::new(CostModel::r815());
            m.load_program(&prog);
            let mut rt = Fpvm::new(PositCtx::<64, 3>, FpvmConfig::default());
            rt.run(&mut m).stats.fp_traps
        })
    });
    g.finish();
}

fn bench_decode_cache(c: &mut Criterion) {
    // §5.3 footnote 8 ablation: decode cache on vs off.
    let prog = trapping_guest(1000);
    let mut g = c.benchmark_group("fig09/decode_cache");
    for (name, on) in [("cache_on", true), ("cache_off", false)] {
        g.bench_function(name, |bench| {
            bench.iter(|| {
                let mut m = Machine::new(CostModel::r815());
                m.load_program(&prog);
                let cfg = FpvmConfig {
                    decode_cache: on,
                    ..FpvmConfig::default()
                };
                let mut rt = Fpvm::new(Vanilla, cfg);
                rt.run(&mut m).cycles
            })
        });
    }
    g.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(20).measurement_time(std::time::Duration::from_secs(2)).warm_up_time(std::time::Duration::from_millis(300));
    targets = bench_trap_pipeline, bench_decode_cache
}
criterion_main!(benches);
