//! Fig. 9 microbenchmark: host-time cost of the runtime's trap-handling
//! pipeline — decode (hit vs miss), bind, and emulation with each
//! arithmetic system. The simulated-cycle breakdown comes from
//! `reproduce --exp fig9`; this measures the *real* work the reproduction
//! performs per trap.

use fpvm_arith::{BigFloatCtx, PositCtx, Vanilla};
use fpvm_bench::microbench::bench_ns;
use fpvm_core::{Fpvm, FpvmConfig};
use fpvm_machine::{AluOp, Asm, Cond, CostModel, Gpr, Machine, Xmm};

/// A guest that traps `iters` times (one rounding add per iteration).
fn trapping_guest(iters: i64) -> fpvm_machine::Program {
    let mut a = Asm::new();
    let tenth = a.f64m(0.1);
    let third = a.f64m(1.0 / 3.0);
    a.movsd(Xmm(2), third);
    a.mov_ri(Gpr::RCX, 0);
    let top = a.here_label();
    let done = a.label();
    a.cmp_ri(Gpr::RCX, iters);
    a.jcc(Cond::Ge, done);
    a.addsd(Xmm(2), tenth);
    a.alu_ri(AluOp::Add, Gpr::RCX, 1);
    a.jmp(top);
    a.bind(done);
    a.halt();
    a.finish()
}

fn main() {
    let prog = trapping_guest(1000);
    println!("== fig09: trap pipeline host time (1000 traps per iter) ==");
    bench_ns("fig09/per_trap_host_ns/vanilla", || {
        let mut m = Machine::new(CostModel::r815());
        m.load_program(&prog);
        let mut rt = Fpvm::new(Vanilla, FpvmConfig::default());
        rt.run(&mut m).stats.fp_traps
    });
    bench_ns("fig09/per_trap_host_ns/bigfloat200", || {
        let mut m = Machine::new(CostModel::r815());
        m.load_program(&prog);
        let mut rt = Fpvm::new(BigFloatCtx::new(200), FpvmConfig::default());
        rt.run(&mut m).stats.fp_traps
    });
    bench_ns("fig09/per_trap_host_ns/posit64", || {
        let mut m = Machine::new(CostModel::r815());
        m.load_program(&prog);
        let mut rt = Fpvm::new(PositCtx::<64, 3>, FpvmConfig::default());
        rt.run(&mut m).stats.fp_traps
    });
    // §5.3 footnote 8 ablation: decode cache on vs off.
    println!("== fig09: decode cache ablation ==");
    for (name, on) in [("cache_on", true), ("cache_off", false)] {
        bench_ns(&format!("fig09/decode_cache/{name}"), || {
            let mut m = Machine::new(CostModel::r815());
            m.load_program(&prog);
            let cfg = FpvmConfig {
                decode_cache: on,
                ..FpvmConfig::default()
            };
            let mut rt = Fpvm::new(Vanilla, cfg);
            rt.run(&mut m).cycles
        });
    }
}
