//! Superblock microbenchmarks: the machine's per-guest-instruction
//! interpreter cost with block dispatch on vs off (stepped loop), on a
//! trap-free straight-line kernel (the best case the blocks exist for), a
//! branchy loop, and a real trapping workload end-to-end.
//!
//! Superblocks batch straight-line, non-trapping code into pre-decoded
//! runs dispatched as a unit, so a trap-sparse guest pays the per-step
//! overhead (fetch, predecode lookup, cost lookup, budget check) once per
//! block instead of once per instruction. This bench demonstrates the
//! block path beats per-instruction stepping (the acceptance gate for the
//! engine's existence); accounting equivalence is pinned separately by
//! `tests/sblock_pin.rs` and E18.

use fpvm_arith::Vanilla;
use fpvm_bench::microbench::{bench_ns, black_box};
use fpvm_core::runtime::{Fpvm, FpvmConfig};
use fpvm_ir::{compile, CompileMode};
use fpvm_machine::{AluOp, Asm, Cond, CostModel, Event, Gpr, Machine, Program};
use fpvm_workloads::{lorenz, Size};

/// A trap-free kernel: an outer loop over a long straight-line integer
/// body, so almost every retired instruction flows through one fat block.
fn straightline_program(iters: i64) -> Program {
    let mut a = Asm::new();
    a.mov_ri(Gpr::RCX, 0);
    a.mov_ri(Gpr::RAX, 0);
    let top = a.here_label();
    for i in 0..48 {
        a.alu_ri(AluOp::Add, Gpr::RAX, i);
    }
    a.alu_ri(AluOp::Add, Gpr::RCX, 1);
    a.cmp_ri(Gpr::RCX, iters);
    a.jcc(Cond::L, top);
    a.halt();
    a.finish()
}

/// A branchy kernel: short basic blocks, so block formation pays less.
fn branchy_program(iters: i64) -> Program {
    let mut a = Asm::new();
    a.mov_ri(Gpr::RCX, 0);
    a.mov_ri(Gpr::RAX, 0);
    let top = a.here_label();
    let odd = a.label();
    let next = a.label();
    a.alu_ri(AluOp::And, Gpr::RDX, 0);
    a.alu_rr(AluOp::Add, Gpr::RDX, Gpr::RCX);
    a.alu_ri(AluOp::And, Gpr::RDX, 1);
    a.cmp_ri(Gpr::RDX, 0);
    a.jcc(Cond::Ne, odd);
    a.alu_ri(AluOp::Add, Gpr::RAX, 3);
    a.jmp(next);
    a.bind(odd);
    a.alu_ri(AluOp::Sub, Gpr::RAX, 1);
    a.bind(next);
    a.alu_ri(AluOp::Add, Gpr::RCX, 1);
    a.cmp_ri(Gpr::RCX, iters);
    a.jcc(Cond::L, top);
    a.halt();
    a.finish()
}

/// ns/guest-instruction for a bare-machine run (no engine) of `p`.
fn machine_ns_per_inst(name: &str, p: &Program, superblocks: bool) -> f64 {
    let mut icount = 0u64;
    let ns = bench_ns(&format!("superblock/{name}"), || {
        let mut m = Machine::new(CostModel::r815());
        m.superblocks = superblocks;
        m.load_program(p);
        let ev = m.run(u64::MAX);
        assert_eq!(ev, Event::Halted);
        icount = m.icount;
        black_box(m.cycles)
    });
    ns / icount.max(1) as f64
}

fn main() {
    println!("== superblocks: machine ns/guest-inst, block dispatch vs stepped ==");
    let straight = straightline_program(2_000);
    let branchy = branchy_program(10_000);
    for (name, p) in [("straightline", &straight), ("branchy", &branchy)] {
        let on = machine_ns_per_inst(&format!("{name}/blocks_on"), p, true);
        let off = machine_ns_per_inst(&format!("{name}/blocks_off"), p, false);
        println!(
            "    {name}: {on:.2} ns/inst with blocks, {off:.2} stepped — {:.2}x \
             (< 1.0 means block dispatch pays)",
            on / off
        );
    }

    println!();
    println!("== superblocks: end-to-end under the engine (lorenz/tiny, Vanilla, R815) ==");
    let w = lorenz::workload(Size::Tiny);
    let compiled = compile(&w.module, CompileMode::Native);
    let run_mode = |name: &str, cfg: FpvmConfig| {
        let mut last = (0u64, 0u64);
        let ns = bench_ns(&format!("superblock/{name}/lorenz_tiny_run"), || {
            let mut m = Machine::new(CostModel::r815());
            m.load_program(&compiled.program);
            let mut fpvm = Fpvm::new(Vanilla, cfg);
            let r = fpvm.run(&mut m);
            last = (r.icount, m.superblock_stats().block_insts);
            black_box(r.cycles)
        });
        println!(
            "    {name}: {} guest insts ({} via blocks), {:.0} ns/run",
            last.0, last.1, ns
        );
        ns
    };
    let on = run_mode("blocks_on", FpvmConfig::default());
    let off = run_mode(
        "blocks_off",
        FpvmConfig {
            superblocks: false,
            ..FpvmConfig::default()
        },
    );
    println!(
        "superblocks on is {:.2}x the stepped run (< 1.0 means faster)",
        on / off
    );
}
