//! Arithmetic-system microbenchmarks: the per-op cost of each system
//! through the 37-function interface (§4.3), plus NaN-box encode/decode.
//! These are the `emulate` component inputs of Fig. 9.

use fpvm_arith::{ArithSystem, BigFloatCtx, PositCtx, Round, Vanilla};
use fpvm_bench::microbench::bench_ns;

fn main() {
    let rm = Round::NearestEven;
    println!("== arith: add/mul/div chain (16 rounds) ==");
    bench_ns("arith/add_mul_div_chain/vanilla", || {
        let v = Vanilla;
        let mut x = 0.1f64;
        for _ in 0..16 {
            x = v
                .div(&v.mul(&v.add(&x, &0.7, rm).0, &1.3, rm).0, &1.1, rm)
                .0;
        }
        x
    });
    bench_ns("arith/add_mul_div_chain/bigfloat200", || {
        let v = BigFloatCtx::new(200);
        let mut x = v.from_f64(0.1);
        let k7 = v.from_f64(0.7);
        let k13 = v.from_f64(1.3);
        let k11 = v.from_f64(1.1);
        for _ in 0..16 {
            x = v.div(&v.mul(&v.add(&x, &k7, rm).0, &k13, rm).0, &k11, rm).0;
        }
        v.to_f64(&x, rm).0
    });
    bench_ns("arith/add_mul_div_chain/posit64", || {
        let v = PositCtx::<64, 3>;
        let mut x = v.from_f64(0.1);
        let k7 = v.from_f64(0.7);
        let k13 = v.from_f64(1.3);
        let k11 = v.from_f64(1.1);
        for _ in 0..16 {
            x = v.div(&v.mul(&v.add(&x, &k7, rm).0, &k13, rm).0, &k11, rm).0;
        }
        v.to_f64(&x, rm).0
    });

    println!("== arith: transcendentals (bigfloat200) ==");
    let big = BigFloatCtx::new(200);
    let x = big.from_f64(0.7);
    bench_ns("arith/transcendental/bigfloat200/sin", || big.sin(&x, rm).0);
    bench_ns("arith/transcendental/bigfloat200/exp", || big.exp(&x, rm).0);
    bench_ns("arith/transcendental/bigfloat200/log", || big.log(&x, rm).0);
    bench_ns("arith/transcendental/bigfloat200/asin", || {
        big.asin(&x, rm).0
    });

    println!("== arith: nanbox ==");
    let key = fpvm_nanbox::ShadowKey::new(0xABCDE).unwrap();
    let boxed = fpvm_nanbox::encode(key);
    let plain = 1.5f64.to_bits();
    bench_ns("arith/nanbox/encode", || fpvm_nanbox::encode(key));
    bench_ns("arith/nanbox/decode_hit", || fpvm_nanbox::decode(boxed));
    bench_ns("arith/nanbox/decode_miss", || fpvm_nanbox::decode(plain));
}
