//! Arithmetic-system microbenchmarks: the per-op cost of each system
//! through the 37-function interface (§4.3), plus NaN-box encode/decode.
//! These are the `emulate` component inputs of Fig. 9.

use criterion::{criterion_group, criterion_main, Criterion};
use fpvm_arith::{ArithSystem, BigFloatCtx, PositCtx, Round, Vanilla};

fn bench_systems(c: &mut Criterion) {
    let rm = Round::NearestEven;
    let mut g = c.benchmark_group("arith/add_mul_div_chain");
    let chain = |add: &dyn Fn(f64, f64) -> f64,
                 mul: &dyn Fn(f64, f64) -> f64,
                 div: &dyn Fn(f64, f64) -> f64| {
        let mut x = 0.1f64;
        for _ in 0..16 {
            x = div(mul(add(x, 0.7), 1.3), 1.1);
        }
        x
    };
    g.bench_function("vanilla", |b| {
        let v = Vanilla;
        b.iter(|| {
            chain(
                &|a, c| v.add(&a, &c, rm).0,
                &|a, c| v.mul(&a, &c, rm).0,
                &|a, c| v.div(&a, &c, rm).0,
            )
        })
    });
    g.bench_function("bigfloat200", |b| {
        let v = BigFloatCtx::new(200);
        b.iter(|| {
            let mut x = v.from_f64(0.1);
            let k7 = v.from_f64(0.7);
            let k13 = v.from_f64(1.3);
            let k11 = v.from_f64(1.1);
            for _ in 0..16 {
                x = v.div(&v.mul(&v.add(&x, &k7, rm).0, &k13, rm).0, &k11, rm).0;
            }
            v.to_f64(&x, rm).0
        })
    });
    g.bench_function("posit64", |b| {
        let v = PositCtx::<64, 3>;
        b.iter(|| {
            let mut x = v.from_f64(0.1);
            let k7 = v.from_f64(0.7);
            let k13 = v.from_f64(1.3);
            let k11 = v.from_f64(1.1);
            for _ in 0..16 {
                x = v.div(&v.mul(&v.add(&x, &k7, rm).0, &k13, rm).0, &k11, rm).0;
            }
            v.to_f64(&x, rm).0
        })
    });
    g.finish();
}

fn bench_transcendentals(c: &mut Criterion) {
    let rm = Round::NearestEven;
    let mut g = c.benchmark_group("arith/transcendental");
    let big = BigFloatCtx::new(200);
    let x = big.from_f64(0.7);
    g.bench_function("bigfloat200/sin", |b| b.iter(|| big.sin(&x, rm).0));
    g.bench_function("bigfloat200/exp", |b| b.iter(|| big.exp(&x, rm).0));
    g.bench_function("bigfloat200/log", |b| b.iter(|| big.log(&x, rm).0));
    g.bench_function("bigfloat200/asin", |b| b.iter(|| big.asin(&x, rm).0));
    g.finish();
}

fn bench_nanbox(c: &mut Criterion) {
    let mut g = c.benchmark_group("arith/nanbox");
    let key = fpvm_nanbox::ShadowKey::new(0xABCDE).unwrap();
    let boxed = fpvm_nanbox::encode(key);
    let plain = 1.5f64.to_bits();
    g.bench_function("encode", |b| b.iter(|| fpvm_nanbox::encode(key)));
    g.bench_function("decode_hit", |b| b.iter(|| fpvm_nanbox::decode(boxed)));
    g.bench_function("decode_miss", |b| b.iter(|| fpvm_nanbox::decode(plain)));
    g.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(30).measurement_time(std::time::Duration::from_secs(2)).warm_up_time(std::time::Duration::from_millis(300));
    targets = bench_systems, bench_transcendentals, bench_nanbox
}
criterion_main!(benches);
