//! §3.2 trap-and-patch proof of concept (criterion) + the crossover
//! ablation: trap-and-emulate vs trap-and-patch as a function of how often
//! a site is re-executed — "if the original instruction were to frequently
//! see or produce shadowed values, trap-and-patch can operate with much
//! less overhead than trap-and-emulate."

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use fpvm_arith::Vanilla;
use fpvm_core::{Fpvm, FpvmConfig};
use fpvm_machine::{Asm, Cond, CostModel, Gpr, Machine, Xmm, AluOp};

/// One addsd site executed `n` times, always rounding (always boxed after
/// the first trip) — the §3.2 microbenchmark.
fn hot_site(n: i64) -> fpvm_machine::Program {
    let mut a = Asm::new();
    let c1 = a.f64m(0.1);
    let c2 = a.f64m(1.0 / 3.0);
    a.movsd(Xmm(2), c2);
    a.mov_ri(Gpr::RCX, 0);
    let top = a.here_label();
    let done = a.label();
    a.cmp_ri(Gpr::RCX, n);
    a.jcc(Cond::Ge, done);
    a.movsd(Xmm(0), c1);
    a.addsd(Xmm(0), Xmm(2)); // the patched site
    a.alu_ri(AluOp::Add, Gpr::RCX, 1);
    a.jmp(top);
    a.bind(done);
    a.halt();
    a.finish()
}

fn bench_tpatch(c: &mut Criterion) {
    let prog = hot_site(2000);
    let mut g = c.benchmark_group("tpatch/hot_site_2000_hits");
    for (name, tp) in [("trap_and_emulate", false), ("trap_and_patch", true)] {
        g.bench_function(name, |bench| {
            bench.iter(|| {
                let mut m = Machine::new(CostModel::r815());
                m.load_program(&prog);
                let cfg = FpvmConfig {
                    trap_and_patch: tp,
                    ..FpvmConfig::default()
                };
                let mut rt = Fpvm::new(Vanilla, cfg);
                rt.run(&mut m).cycles
            })
        });
    }
    g.finish();
}

/// Crossover: model-cycle totals as hit count varies. Trap-and-emulate
/// pays delivery per hit; trap-and-patch pays one trap + cheap calls.
fn bench_crossover(c: &mut Criterion) {
    let mut g = c.benchmark_group("tpatch/crossover_cycles");
    for &n in &[1i64, 10, 100, 1000] {
        let prog = hot_site(n);
        g.bench_with_input(BenchmarkId::new("emulate", n), &n, |bench, _| {
            bench.iter(|| {
                let mut m = Machine::new(CostModel::r815());
                m.load_program(&prog);
                let mut rt = Fpvm::new(Vanilla, FpvmConfig::default());
                rt.run(&mut m).cycles
            })
        });
        g.bench_with_input(BenchmarkId::new("patch", n), &n, |bench, _| {
            bench.iter(|| {
                let mut m = Machine::new(CostModel::r815());
                m.load_program(&prog);
                let cfg = FpvmConfig {
                    trap_and_patch: true,
                    ..FpvmConfig::default()
                };
                let mut rt = Fpvm::new(Vanilla, cfg);
                rt.run(&mut m).cycles
            })
        });
    }
    g.finish();
}

/// GC epoch ablation (DESIGN.md): epoch length vs total runtime.
fn bench_gc_epoch(c: &mut Criterion) {
    let prog = hot_site(3000);
    let mut g = c.benchmark_group("ablation/gc_epoch");
    for &epoch in &[5_000u64, 50_000, 500_000] {
        g.bench_with_input(BenchmarkId::from_parameter(epoch), &epoch, |bench, &e| {
            bench.iter(|| {
                let mut m = Machine::new(CostModel::r815());
                m.load_program(&prog);
                let cfg = FpvmConfig {
                    gc_epoch: e,
                    ..FpvmConfig::default()
                };
                let mut rt = Fpvm::new(Vanilla, cfg);
                rt.run(&mut m).stats.gc_passes
            })
        });
    }
    g.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(15).measurement_time(std::time::Duration::from_secs(2)).warm_up_time(std::time::Duration::from_millis(300));
    targets = bench_tpatch, bench_crossover, bench_gc_epoch
}
criterion_main!(benches);
