//! §3.2 trap-and-patch proof of concept + the crossover ablation:
//! trap-and-emulate vs trap-and-patch as a function of how often a site is
//! re-executed — "if the original instruction were to frequently see or
//! produce shadowed values, trap-and-patch can operate with much less
//! overhead than trap-and-emulate."

use fpvm_arith::Vanilla;
use fpvm_bench::microbench::bench_ns;
use fpvm_core::{Fpvm, FpvmConfig};
use fpvm_machine::{AluOp, Asm, Cond, CostModel, Gpr, Machine, Xmm};

/// One addsd site executed `n` times, always rounding (always boxed after
/// the first trip) — the §3.2 microbenchmark.
fn hot_site(n: i64) -> fpvm_machine::Program {
    let mut a = Asm::new();
    let c1 = a.f64m(0.1);
    let c2 = a.f64m(1.0 / 3.0);
    a.movsd(Xmm(2), c2);
    a.mov_ri(Gpr::RCX, 0);
    let top = a.here_label();
    let done = a.label();
    a.cmp_ri(Gpr::RCX, n);
    a.jcc(Cond::Ge, done);
    a.movsd(Xmm(0), c1);
    a.addsd(Xmm(0), Xmm(2)); // the patched site
    a.alu_ri(AluOp::Add, Gpr::RCX, 1);
    a.jmp(top);
    a.bind(done);
    a.halt();
    a.finish()
}

fn run_with(prog: &fpvm_machine::Program, cfg: FpvmConfig) -> u64 {
    let mut m = Machine::new(CostModel::r815());
    m.load_program(prog);
    let mut rt = Fpvm::new(Vanilla, cfg);
    rt.run(&mut m).cycles
}

fn main() {
    println!("== tpatch: hot site, 2000 hits ==");
    let prog = hot_site(2000);
    for (name, tp) in [("trap_and_emulate", false), ("trap_and_patch", true)] {
        bench_ns(&format!("tpatch/hot_site_2000_hits/{name}"), || {
            run_with(
                &prog,
                FpvmConfig {
                    trap_and_patch: tp,
                    ..FpvmConfig::default()
                },
            )
        });
    }
    // Crossover: trap-and-emulate pays delivery per hit; trap-and-patch
    // pays one trap + cheap calls.
    println!("== tpatch: crossover vs hit count ==");
    for &n in &[1i64, 10, 100, 1000] {
        let prog = hot_site(n);
        bench_ns(&format!("tpatch/crossover/emulate/{n}"), || {
            run_with(&prog, FpvmConfig::default())
        });
        bench_ns(&format!("tpatch/crossover/patch/{n}"), || {
            run_with(
                &prog,
                FpvmConfig {
                    trap_and_patch: true,
                    ..FpvmConfig::default()
                },
            )
        });
    }
    // GC epoch ablation (DESIGN.md): epoch length vs total runtime.
    println!("== ablation: gc epoch ==");
    let prog = hot_site(3000);
    for &epoch in &[5_000u64, 50_000, 500_000] {
        bench_ns(&format!("ablation/gc_epoch/{epoch}"), || {
            run_with(
                &prog,
                FpvmConfig {
                    gc_epoch: epoch,
                    ..FpvmConfig::default()
                },
            )
        });
    }
}
