//! Emulate-cache microbenchmarks: the per-trap cost of a full `bind`
//! (decode-derived operand walk + effective-address resolution) against
//! resolving a memoized [`BoundPlan`], plus the end-to-end effect of the
//! emulate cache (on / off / passthrough policy) on a real trapping
//! workload.
//!
//! The emulate cache stores the decoded instruction *and* its bound
//! operand plan per rip, so a hot trap replaces the bind stage with
//! `plan.resolve(m)` — only memory operands re-derive their effective
//! address. This bench demonstrates the resolve path beats bind-every-trap
//! (the acceptance gate for the cache's existence).

use fpvm_arith::Vanilla;
use fpvm_bench::microbench::{bench_ns, black_box};
use fpvm_core::runtime::{Fpvm, FpvmConfig};
use fpvm_core::{bind, plan, Planability};
use fpvm_ir::{compile, CompileMode};
use fpvm_machine::{CostModel, Gpr, Inst, Machine, Mem, Xmm, XM};
use fpvm_workloads::{lorenz, Size};

fn main() {
    println!("== emulate cache: bind-every-trap vs plan.resolve (per trap) ==");
    let mut m = Machine::new(CostModel::r815());
    m.gpr[Gpr::RSP.0 as usize] = 0x40_0000;
    // A representative mix: reg-reg scalar, mem-operand scalar, packed.
    let insts = [
        Inst::AddSd {
            dst: Xmm(0),
            src: XM::Reg(Xmm(1)),
        },
        Inst::MulSd {
            dst: Xmm(2),
            src: XM::Mem(Mem::base_disp(Gpr::RSP, 8)),
        },
        Inst::MulPd {
            dst: Xmm(3),
            src: XM::Mem(Mem::base_disp(Gpr::RSP, 16)),
        },
    ];
    let plans: Vec<_> = insts
        .iter()
        .map(|i| match plan(i, 0x2000) {
            Planability::Static(p) => p,
            other => panic!("bench insts must be statically plannable, got {other:?}"),
        })
        .collect();

    let bind_ns = bench_ns("emulate_cache/bind_every_trap_x3", || {
        let mut lanes = 0u32;
        for i in &insts {
            let b = bind(&m, i, 0x2000).unwrap();
            lanes += b.lanes.iter().flatten().count() as u32;
        }
        black_box(lanes)
    });
    let resolve_ns = bench_ns("emulate_cache/plan_resolve_x3", || {
        let mut lanes = 0u32;
        for p in &plans {
            let b = p.resolve(&m);
            lanes += b.lanes.iter().flatten().count() as u32;
        }
        black_box(lanes)
    });
    println!(
        "plan.resolve is {:.2}x the bind-every-trap cost (< 1.0 means the cache pays)",
        resolve_ns / bind_ns
    );

    println!();
    println!("== emulate cache: end-to-end (lorenz/tiny, Vanilla, R815) ==");
    let w = lorenz::workload(Size::Tiny);
    let compiled = compile(&w.module, CompileMode::Native);
    let run_mode = |name: &str, cfg: FpvmConfig| {
        let mut last = (0u64, 0u64);
        let ns = bench_ns(&format!("emulate_cache/{name}/lorenz_tiny_run"), || {
            let mut m = Machine::new(CostModel::r815());
            m.load_program(&compiled.program);
            let mut fpvm = Fpvm::new(Vanilla, cfg);
            let r = fpvm.run(&mut m);
            last = (r.stats.fp_traps, r.stats.decode_hits);
            black_box(r.cycles)
        });
        println!(
            "    {name}: {} traps, {} decode hits, {:.0} ns/run",
            last.0, last.1, ns
        );
        ns
    };
    let on = run_mode("ecache_on", FpvmConfig::default());
    let off = run_mode(
        "ecache_off",
        FpvmConfig {
            emulate_cache: false,
            ..FpvmConfig::default()
        },
    );
    println!(
        "emulate cache on is {:.2}x the bind-every-trap run (< 1.0 means faster)",
        on / off
    );
}
