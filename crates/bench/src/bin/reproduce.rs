//! `reproduce` — regenerate every table and figure from the paper's
//! evaluation (§5) and the §6 projections.
//!
//! ```text
//! reproduce --exp all            # everything (a few minutes)
//! reproduce --exp fig12          # one experiment
//! reproduce --exp fig12 --tiny   # reduced problem sizes (seconds)
//! reproduce --trace              # trace/profile mode: stream
//!                                # target/experiments/trace.jsonl and
//!                                # render the top-N hot-site report
//! reproduce --smoke --trace      # CI smoke: tiny sizes, trace mode
//! reproduce --list
//! ```
//!
//! Tables print to stdout; JSON records are archived under
//! `target/experiments/`.

use fpvm_bench::json::ToJson;
use fpvm_bench::{experiments as exp, loc, trajectory};
use fpvm_workloads::Size;
use std::path::PathBuf;

fn archive<T: ToJson>(name: &str, data: &T) {
    let dir = PathBuf::from("target/experiments");
    if std::fs::create_dir_all(&dir).is_err() {
        return;
    }
    let _ = std::fs::write(dir.join(format!("{name}.json")), data.to_json());
}

const EXPERIMENTS: &[(&str, &str)] = &[
    (
        "validate",
        "§5.2 validation: FPVM(Vanilla) bit-identical to native",
    ),
    ("fig9", "Fig. 9: per-trap virtualization cost breakdown"),
    ("fig10", "Fig. 10: garbage collector statistics"),
    (
        "fig11",
        "Fig. 11: BigFloat op cost vs precision + crossovers",
    ),
    (
        "fig12",
        "Fig. 12: benchmark slowdowns on three machine profiles",
    ),
    (
        "fig13",
        "Fig. 13: Lorenz IEEE vs Vanilla vs BigFloat divergence",
    ),
    ("fig14", "Fig. 14: user vs kernel trap delivery overhead"),
    (
        "approaches",
        "Fig. 3 (measured): the four virtualization approaches",
    ),
    ("tpatch", "§3.2: trap-and-patch proof-of-concept costs"),
    ("analysis", "§4.2: static analysis sink/demotion profile"),
    (
        "prospects",
        "§6: overhead under proposed kernel/hardware support",
    ),
    ("posits", "§5.4 companion: three-body under posits"),
    (
        "conform",
        "E4b: per-operation conformance across arithmetic backends",
    ),
    (
        "audit",
        "E14: dynamic taint oracle vs static sink set (soundness gate)",
    ),
    (
        "vsa2",
        "E19: second-generation VSA ablation — flow/ctx/liveness passes",
    ),
    ("loc", "§5.5: lines-of-code inventory"),
    (
        "trace",
        "trace/profile mode: JSONL trap trace + hot-site profile",
    ),
    (
        "pguided",
        "profiler-guided patch-site selection vs the heuristic",
    ),
    (
        "fleet",
        "E15: sharded fleet scaling — guests/sec per worker count",
    ),
    (
        "obs",
        "E16: observability — stage wall-clock timing, exporters, overhead",
    ),
    (
        "speed",
        "E17: raw interpreter speed — host-ns/trap, emulate cache on/off",
    ),
    (
        "sblock",
        "E18: superblock dispatch — ns/guest-inst, blocks on/off",
    ),
];

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let mut exp_name: Option<String> = None;
    let mut size = Size::S;
    let mut max_log2 = 14u32;
    let mut trace_mode = false;
    let mut it = args.iter().skip(1);
    while let Some(a) = it.next() {
        match a.as_str() {
            "--exp" => exp_name = it.next().cloned(),
            "--tiny" => size = Size::Tiny,
            "--smoke" => {
                // CI-friendly: tiny problem sizes and a short Fig. 11 sweep.
                size = Size::Tiny;
                max_log2 = 8;
            }
            "--trace" | "--profile" => trace_mode = true,
            "--max-log2" => max_log2 = it.next().and_then(|s| s.parse().ok()).unwrap_or(14),
            "--list" => {
                for (name, desc) in EXPERIMENTS {
                    println!("{name:<12} {desc}");
                }
                return;
            }
            other => {
                eprintln!("unknown argument: {other} (try --list)");
                std::process::exit(2);
            }
        }
    }
    // `--trace` alone means "just the trace/profile mode"; with `--exp` it
    // rides along as an extra.
    let exp_name = exp_name.unwrap_or_else(|| {
        if trace_mode {
            "none".to_string()
        } else {
            "all".to_string()
        }
    });
    let want = |n: &str| exp_name == "all" || exp_name == n;
    let mut ran = false;
    if want("validate") {
        ran = true;
        let ok = exp::validate(size);
        archive("validate", &ok);
        if !ok {
            eprintln!("VALIDATION FAILED");
            std::process::exit(1);
        }
    }
    if want("fig9") {
        ran = true;
        archive("fig9", &exp::fig9(size));
    }
    if want("fig10") {
        ran = true;
        archive("fig10", &exp::fig10(size));
    }
    if want("fig11") {
        ran = true;
        archive("fig11", &exp::fig11(max_log2));
    }
    if want("fig12") {
        ran = true;
        archive("fig12", &exp::fig12(size));
    }
    if want("fig13") {
        ran = true;
        archive("fig13", &exp::fig13());
    }
    if want("fig14") {
        ran = true;
        archive("fig14", &exp::fig14());
    }
    if want("approaches") {
        ran = true;
        archive("approaches", &exp::approaches());
    }
    if want("tpatch") {
        ran = true;
        archive("tpatch", &exp::trap_and_patch_poc());
    }
    if want("analysis") {
        ran = true;
        archive("analysis", &exp::analysis_table(size));
    }
    if want("prospects") {
        ran = true;
        archive("prospects", &exp::prospects());
    }
    if want("posits") {
        ran = true;
        archive("posits", &exp::posit_effects());
    }
    if want("conform") {
        ran = true;
        let rows = exp::conform(size);
        let ok = rows.iter().all(|r| r.clean);
        archive("conform", &rows);
        if !ok {
            eprintln!("CONFORMANCE FAILED (reproducers in target/experiments/conform_repro.jsonl)");
            std::process::exit(1);
        }
    }
    if want("audit") {
        ran = true;
        let rows = exp::audit_table(size);
        let missed: usize = rows.iter().map(|r| r.missed).sum();
        archive("audit", &rows);
        // Flat per-SinkReason precision/recall table — diffable across PRs.
        let reasons = exp::flatten_reasons(rows.iter().map(|r| (r.heap_model.as_str(), r)));
        archive("audit_reasons", &reasons);
        if missed > 0 {
            eprintln!("AUDIT FAILED: {missed} missed sink(s) — static analysis soundness hole");
            std::process::exit(1);
        }
    }
    if want("vsa2") {
        ran = true;
        let r = exp::vsa2(size);
        archive("vsa2", &r);
        let reasons: Vec<_> = r
            .rows
            .iter()
            .flat_map(|row| {
                row.per_reason
                    .iter()
                    .map(move |m| (row.workload.clone(), row.config.clone(), m.clone()))
            })
            .collect();
        let flat: Vec<exp::ReasonFlatRow> = reasons
            .into_iter()
            .map(|(workload, config, m)| exp::ReasonFlatRow {
                workload,
                config,
                reason: m.reason,
                confirmed: m.confirmed,
                spurious: m.spurious,
                unexercised: m.unexercised,
                missed: m.missed,
                precision: m.precision,
                recall: m.recall,
            })
            .collect();
        archive("vsa2_reasons", &flat);
        let _ = trajectory::append_entry(
            std::path::Path::new("BENCH_analysis.json"),
            "vsa2",
            &trajectory::run_meta(size == Size::Tiny),
            &r.to_json(),
        );
        if r.missed_total > 0 {
            eprintln!(
                "VSA2 SOUNDNESS FAILED: {} missed sink(s) across ablation configs",
                r.missed_total
            );
            std::process::exit(1);
        }
        if r.skipped_total > 0 {
            eprintln!(
                "VSA2 PATCH-COVERAGE FAILED: {} sink(s) skipped by the patcher — the \
                 flow_mem demotion model requires every sink patched",
                r.skipped_total
            );
            std::process::exit(1);
        }
        if !r.outputs_identical {
            eprintln!("VSA2 OUTPUT DRIFT: guest outputs moved with the analysis config");
            std::process::exit(1);
        }
        if !r.accounting_identical {
            eprintln!("VSA2 ACCOUNTING DRIFT: deterministic Fig. 9 accounting moved with the analysis config");
            std::process::exit(1);
        }
        if r.enzo_all_sinks > r.enzo_baseline_sinks {
            eprintln!(
                "VSA2 REFINEMENT FAILED: Enzo sinks grew under all passes ({} -> {})",
                r.enzo_baseline_sinks, r.enzo_all_sinks
            );
            std::process::exit(1);
        }
        // The headline precision win is only meaningful at full problem
        // size (Tiny runs exercise fewer sites).
        if size == Size::S && r.enzo_all_spurious >= 15 {
            eprintln!(
                "VSA2 PRECISION FAILED: Enzo spurious sinks did not drop below 15 (got {})",
                r.enzo_all_spurious
            );
            std::process::exit(1);
        }
    }
    if want("loc") {
        ran = true;
        archive("loc", &loc::loc_table(&PathBuf::from(".")));
    }
    if want("trace") || trace_mode {
        ran = true;
        archive("trace_profile", &exp::trace_profile(size));
    }
    if want("pguided") {
        ran = true;
        archive("pguided", &exp::profiler_guided(size));
    }
    if want("fleet") {
        ran = true;
        let r = exp::fleet(size == Size::Tiny);
        archive("fleet", &r);
        // The perf trajectory is a first-class artifact at the invocation
        // root, where CI uploads it — appended per run, never overwritten.
        let _ = trajectory::append_entry(
            std::path::Path::new("BENCH_fleet.json"),
            "fleet",
            &trajectory::run_meta(size == Size::Tiny),
            &r.to_json(),
        );
        if !r.deterministic {
            eprintln!("FLEET DETERMINISM FAILED: merged results depend on worker count");
            std::process::exit(1);
        }
    }
    if want("obs") {
        ran = true;
        let r = exp::obs(size == Size::Tiny);
        archive("obs", &r);
        let _ = trajectory::append_entry(
            std::path::Path::new("BENCH_obs.json"),
            "obs",
            &trajectory::run_meta(size == Size::Tiny),
            &r.to_json(),
        );
        if !r.deterministic {
            eprintln!("OBS DETERMINISM FAILED: merged metrics depend on worker count");
            std::process::exit(1);
        }
        if !r.fig9_pinned {
            eprintln!("OBS FIG9 PIN FAILED: the metrics plane perturbed deterministic stats");
            std::process::exit(1);
        }
    }
    if want("speed") {
        ran = true;
        let r = exp::speed(size == Size::Tiny);
        archive("speed", &r);
        let _ = trajectory::append_entry(
            std::path::Path::new("BENCH_speed.json"),
            "speed",
            &trajectory::run_meta(size == Size::Tiny),
            &r.to_json(),
        );
        if !r.deterministic {
            eprintln!("SPEED DETERMINISM FAILED: an emulate-cache mode changed results");
            std::process::exit(1);
        }
        if !r.fig9_pinned {
            eprintln!("SPEED FIG9 PIN FAILED: cycle accounting moved with the emulate cache");
            std::process::exit(1);
        }
    }
    if want("sblock") {
        ran = true;
        let r = exp::sblock(size == Size::Tiny);
        archive("sblock", &r);
        // Shares the E17 trajectory file (the ns/guest-inst trend lives in
        // one place); the record's `experiment` field discriminates rows.
        let _ = trajectory::append_entry(
            std::path::Path::new("BENCH_speed.json"),
            "speed",
            &trajectory::run_meta(size == Size::Tiny),
            &r.to_json(),
        );
        if !r.deterministic {
            eprintln!("SBLOCK DETERMINISM FAILED: a superblock mode changed results");
            std::process::exit(1);
        }
        if !r.fig9_pinned || !r.patch_pinned {
            eprintln!("SBLOCK FIG9 PIN FAILED: cycle accounting moved with superblock dispatch");
            std::process::exit(1);
        }
        if !r.fleet_pinned {
            eprintln!("SBLOCK FLEET PIN FAILED: merged views moved with superblocks/worker count");
            std::process::exit(1);
        }
    }
    if !ran {
        eprintln!("unknown experiment '{exp_name}' (try --list)");
        std::process::exit(2);
    }
}
