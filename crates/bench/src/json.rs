//! Minimal JSON emission for archived experiment records.
//!
//! The harness archives each experiment's rows under `target/experiments/`.
//! The build environment is offline (no crates.io), so instead of serde the
//! records implement the tiny [`ToJson`] trait below; the `json_struct!`
//! macro derives the obvious field-by-field object encoding.

/// Types that can render themselves as a JSON value.
pub trait ToJson {
    /// Append this value's JSON representation to `out`.
    fn write_json(&self, out: &mut String);

    /// Render as a standalone JSON string.
    fn to_json(&self) -> String {
        let mut s = String::new();
        self.write_json(&mut s);
        s
    }
}

impl ToJson for bool {
    fn write_json(&self, out: &mut String) {
        out.push_str(if *self { "true" } else { "false" });
    }
}

macro_rules! int_to_json {
    ($($t:ty),+) => {$(
        impl ToJson for $t {
            fn write_json(&self, out: &mut String) {
                out.push_str(&self.to_string());
            }
        }
    )+};
}
int_to_json!(u8, u16, u32, u64, usize, i32, i64);

impl ToJson for f64 {
    fn write_json(&self, out: &mut String) {
        if self.is_finite() {
            // `{:?}` is shortest-roundtrip, matching what serde_json emits.
            out.push_str(&format!("{self:?}"));
        } else {
            out.push_str("null"); // JSON has no NaN/Infinity
        }
    }
}

impl ToJson for str {
    fn write_json(&self, out: &mut String) {
        out.push('"');
        for ch in self.chars() {
            match ch {
                '"' => out.push_str("\\\""),
                '\\' => out.push_str("\\\\"),
                '\n' => out.push_str("\\n"),
                '\r' => out.push_str("\\r"),
                '\t' => out.push_str("\\t"),
                c if (c as u32) < 0x20 => {
                    out.push_str(&format!("\\u{:04x}", c as u32));
                }
                c => out.push(c),
            }
        }
        out.push('"');
    }
}

impl ToJson for String {
    fn write_json(&self, out: &mut String) {
        self.as_str().write_json(out);
    }
}

impl<T: ToJson + ?Sized> ToJson for &T {
    fn write_json(&self, out: &mut String) {
        (**self).write_json(out);
    }
}

impl<T: ToJson> ToJson for [T] {
    fn write_json(&self, out: &mut String) {
        out.push('[');
        for (i, v) in self.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            v.write_json(out);
        }
        out.push(']');
    }
}

impl<T: ToJson> ToJson for Vec<T> {
    fn write_json(&self, out: &mut String) {
        self.as_slice().write_json(out);
    }
}

impl<T: ToJson> ToJson for Option<T> {
    fn write_json(&self, out: &mut String) {
        match self {
            Some(v) => v.write_json(out),
            None => out.push_str("null"),
        }
    }
}

macro_rules! tuple_to_json {
    ($(($($n:tt $t:ident),+)),+) => {$(
        impl<$($t: ToJson),+> ToJson for ($($t,)+) {
            fn write_json(&self, out: &mut String) {
                out.push('[');
                let parts: Vec<String> = vec![$(self.$n.to_json()),+];
                out.push_str(&parts.join(","));
                out.push(']');
            }
        }
    )+};
}
tuple_to_json!(
    (0 A, 1 B),
    (0 A, 1 B, 2 C),
    (0 A, 1 B, 2 C, 3 D)
);

/// Implement [`ToJson`] for a struct, field by field.
macro_rules! json_struct {
    ($t:ty { $($field:ident),+ $(,)? }) => {
        impl $crate::json::ToJson for $t {
            fn write_json(&self, out: &mut String) {
                let mut parts: Vec<String> = Vec::new();
                $(parts.push(format!(
                    "{:?}:{}",
                    stringify!($field),
                    $crate::json::ToJson::to_json(&self.$field)
                ));)+
                out.push('{');
                out.push_str(&parts.join(","));
                out.push('}');
            }
        }
    };
}
pub(crate) use json_struct;

#[cfg(test)]
mod tests {
    use super::*;

    struct Row {
        name: String,
        n: u64,
        x: f64,
        ok: bool,
    }
    json_struct!(Row { name, n, x, ok });

    #[test]
    fn scalars_and_escapes() {
        assert_eq!(true.to_json(), "true");
        assert_eq!(42u64.to_json(), "42");
        assert_eq!((-3i64).to_json(), "-3");
        assert_eq!(0.5f64.to_json(), "0.5");
        assert_eq!(f64::NAN.to_json(), "null");
        assert_eq!("a\"b\\c\n".to_json(), r#""a\"b\\c\n""#);
    }

    #[test]
    fn options_and_slices() {
        // Option: Some is transparent, None is null — the same shape a
        // serde round-trip of `Option<T>` would produce.
        assert_eq!(Some(7u16).to_json(), "7");
        assert_eq!(None::<u16>.to_json(), "null");
        assert_eq!(Some("x".to_string()).to_json(), "\"x\"");
        assert_eq!(vec![Some(1u64), None, Some(3)].to_json(), "[1,null,3]");
        // Slices encode like the owning Vec, and `&[T]` works through the
        // reference-forwarding impl (histogram buckets are borrowed slices).
        let v = vec![1u64, 2, 3];
        assert_eq!(v.as_slice().to_json(), v.to_json());
        let empty: &[u64] = &[];
        assert_eq!(empty.to_json(), "[]");
        let nested: &[(u64, f64)] = &[(1, 0.5), (2, 1.5)];
        assert_eq!(nested.to_json(), "[[1,0.5],[2,1.5]]");
    }

    #[test]
    fn containers_and_structs() {
        assert_eq!(vec![1u64, 2, 3].to_json(), "[1,2,3]");
        assert_eq!(("hi".to_string(), 1.5f64).to_json(), "[\"hi\",1.5]");
        let r = Row {
            name: "w".into(),
            n: 7,
            x: 2.0,
            ok: false,
        };
        assert_eq!(
            r.to_json(),
            "{\"name\":\"w\",\"n\":7,\"x\":2.0,\"ok\":false}"
        );
    }
}
