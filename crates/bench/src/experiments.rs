//! Experiment implementations — one per table/figure of the paper.
//!
//! Each function prints a paper-style table on stdout and returns a
//! serializable record that the `reproduce` binary archives as JSON under
//! `target/experiments/`. Shapes (orderings, ratios, crossovers) are
//! measured; absolute trap-delivery constants come from the calibrated
//! cost model (see EXPERIMENTS.md for the measured-vs-modeled split).

use crate::json::json_struct;
use crate::trace::JsonlTraceSink;
use crate::{commas, run_hybrid, run_hybrid_owned, run_hybrid_with, run_native, slowdown_str};
use fpvm_arith::{bigfloat, BigFloat, BigFloatCtx, PositCtx, Round, Vanilla};
use fpvm_core::{Component, FanoutSink, Fpvm, FpvmConfig, ProfilerSink};
use fpvm_ir::{compile, CompileMode};
use fpvm_machine::{CostModel, DeliveryMode, Machine, OutputEvent};
use fpvm_workloads::{all_workloads, breakdown_workloads, lorenz, Size};
use std::path::PathBuf;
use std::time::Instant;

/// The paper's MPFR precision (§5.3).
pub const PAPER_PREC: u32 = 200;

// ---------------------------------------------------------------------------
// Fig. 9: cost of virtualizing one floating point instruction + breakdown
// ---------------------------------------------------------------------------

/// One Fig. 9 bar.
#[derive(Debug, Clone)]
pub struct Fig9Row {
    pub workload: String,
    pub traps: u64,
    pub avg_cycles_per_trap: f64,
    pub hardware: f64,
    pub kernel: f64,
    pub user_delivery: f64,
    pub decode: f64,
    pub bind: f64,
    pub emulate: f64,
    pub gc: f64,
    pub correctness_dispatch: f64,
    pub correctness_handler: f64,
}

/// Fig. 9: average cost of virtualizing a floating point instruction on the
/// R815 profile with 200-bit BigFloat, and its constituent parts.
pub fn fig9(size: Size) -> Vec<Fig9Row> {
    println!("== Fig. 9: avg cost of virtualizing an FP instruction (R815, bigfloat-200) ==");
    println!(
        "{:<18} {:>9} {:>10} | {:>8} {:>8} {:>8} {:>7} {:>6} {:>8} {:>6} {:>9} {:>9}",
        "benchmark",
        "traps",
        "cyc/trap",
        "hw",
        "kernel",
        "user",
        "decode",
        "bind",
        "emulate",
        "gc",
        "corr.disp",
        "corr.hand"
    );
    let mut rows = Vec::new();
    for w in breakdown_workloads(size) {
        let (report, _, _) = run_hybrid(
            &w,
            BigFloatCtx::new(PAPER_PREC),
            CostModel::r815(),
            FpvmConfig::default(),
        );
        let s = &report.stats;
        let t = s.fp_traps.max(1) as f64;
        // Read the breakdown through the accounting sink's component view;
        // correctness costs amortized over FP traps, as in the figure.
        let per = |comp: Component| s.cycles.get(comp) as f64 / t;
        let row = Fig9Row {
            workload: w.name.to_string(),
            traps: s.fp_traps,
            avg_cycles_per_trap: s.avg_trap_cost(),
            hardware: per(Component::Hardware),
            kernel: per(Component::Kernel),
            user_delivery: per(Component::UserDelivery),
            decode: per(Component::Decode),
            bind: per(Component::Bind),
            emulate: per(Component::Emulate),
            gc: per(Component::Gc),
            correctness_dispatch: per(Component::CorrectnessDispatch),
            correctness_handler: per(Component::CorrectnessHandler),
        };
        println!(
            "{:<18} {:>9} {:>10.0} | {:>8.0} {:>8.0} {:>8.0} {:>7.0} {:>6.0} {:>8.0} {:>6.0} {:>9.1} {:>9.1}",
            row.workload,
            commas(row.traps),
            row.avg_cycles_per_trap,
            row.hardware,
            row.kernel,
            row.user_delivery,
            row.decode,
            row.bind,
            row.emulate,
            row.gc,
            row.correctness_dispatch,
            row.correctness_handler
        );
        rows.push(row);
    }
    println!();
    rows
}

// ---------------------------------------------------------------------------
// Fig. 10: garbage collector statistics and performance
// ---------------------------------------------------------------------------

#[derive(Debug, Clone)]
pub struct Fig10Row {
    pub workload: String,
    pub passes: u64,
    pub alive_avg: f64,
    pub freed_total: u64,
    pub latency_us_avg: f64,
    pub collected_fraction: f64,
}

/// Fig. 10: GC alive/freed counts and pass latency per benchmark.
pub fn fig10(size: Size) -> Vec<Fig10Row> {
    println!("== Fig. 10: garbage collector statistics (R815, bigfloat-200) ==");
    println!(
        "{:<18} {:>7} {:>10} {:>12} {:>13} {:>10}",
        "benchmark", "passes", "avg alive", "total freed", "latency(us)", "collected"
    );
    let mut rows = Vec::new();
    for w in breakdown_workloads(size) {
        let cfg = FpvmConfig {
            gc_epoch: 150_000,
            ..FpvmConfig::default()
        };
        let (report, _, _) = run_hybrid(&w, BigFloatCtx::new(PAPER_PREC), CostModel::r815(), cfg);
        let recs = &report.stats.gc_records;
        if recs.is_empty() {
            println!(
                "{:<18} {:>7} {:>10} {:>12} {:>13} {:>10}",
                w.name, 0, "-", "-", "-", "-"
            );
            continue;
        }
        let passes = recs.len() as f64;
        let alive_avg = recs.iter().map(|r| r.alive as f64).sum::<f64>() / passes;
        let freed_total: u64 = recs.iter().map(|r| r.freed as u64).sum();
        let latency_us = recs.iter().map(|r| r.ns as f64 / 1000.0).sum::<f64>() / passes;
        let before_total: u64 = recs.iter().map(|r| r.before as u64).sum();
        let frac = if before_total > 0 {
            freed_total as f64 / before_total as f64
        } else {
            0.0
        };
        let row = Fig10Row {
            workload: w.name.to_string(),
            passes: recs.len() as u64,
            alive_avg,
            freed_total,
            latency_us_avg: latency_us,
            collected_fraction: frac,
        };
        println!(
            "{:<18} {:>7} {:>10.0} {:>12} {:>13.1} {:>9.1}%",
            row.workload,
            row.passes,
            row.alive_avg,
            commas(row.freed_total),
            row.latency_us_avg,
            row.collected_fraction * 100.0
        );
        rows.push(row);
    }
    println!("(paper: >95% of shadow values collected on each pass)");
    println!();
    rows
}

// ---------------------------------------------------------------------------
// Fig. 11: BigFloat (MPFR-substitute) performance vs precision
// ---------------------------------------------------------------------------

#[derive(Debug, Clone)]
pub struct Fig11Row {
    pub log2_prec: u32,
    pub prec_bits: u32,
    pub add_cycles: f64,
    pub sub_cycles: f64,
    pub mul_cycles: f64,
    pub div_cycles: f64,
}

fn bench_op(prec: u32, reps: u32, op: impl Fn(&BigFloat, &BigFloat, u32) -> BigFloat) -> f64 {
    // Operands with full-width mantissas (worst case, like MPFR benchmarks).
    let mk = |seed: u64| -> BigFloat {
        let mut limbs = vec![0u64; (prec as usize).div_ceil(64)];
        let mut s = seed;
        for l in limbs.iter_mut() {
            s = s
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            *l = s | 1;
        }
        *limbs.last_mut().unwrap() |= 1 << 63;
        BigFloat::from_int(
            false,
            -(prec as i64),
            &limbs,
            false,
            prec,
            Round::NearestEven,
        )
        .0
    };
    let a = mk(1);
    let b = mk(2);
    let t = Instant::now();
    let mut sink = 0u64;
    for _ in 0..reps {
        let r = op(&a, &b, prec);
        sink ^= r.exp() as u64;
    }
    let ns = t.elapsed().as_nanos() as f64 / f64::from(reps);
    std::hint::black_box(sink);
    ns
}

/// Fig. 11: add/sub/mul/div cost (cycles at 2.1 GHz, the R815 clock) as a
/// function of mantissa precision, log₂(precision bits) from 5 upward.
pub fn fig11(max_log2: u32) -> Vec<Fig11Row> {
    println!("== Fig. 11: BigFloat (MPFR-substitute) op cost vs precision ==");
    println!(
        "{:<10} {:>10} {:>12} {:>12} {:>12} {:>12}",
        "log2(bits)", "bits", "add(cyc)", "sub(cyc)", "mul(cyc)", "div(cyc)"
    );
    let clock = CostModel::r815().clock_ghz;
    let rm = Round::NearestEven;
    let mut rows = Vec::new();
    for lg in 5..=max_log2 {
        let prec = 1u32 << lg;
        let reps = (200_000u64 >> lg).clamp(3, 20_000) as u32;
        let add = bench_op(prec, reps, |a, b, p| bigfloat::add(a, b, p, rm).0) * clock;
        let sub = bench_op(prec, reps, |a, b, p| bigfloat::sub(a, b, p, rm).0) * clock;
        let mul = bench_op(prec, reps, |a, b, p| bigfloat::mul(a, b, p, rm).0) * clock;
        let div = bench_op(prec, reps.max(3), |a, b, p| bigfloat::div(a, b, p, rm).0) * clock;
        println!(
            "{:<10} {:>10} {:>12.0} {:>12.0} {:>12.0} {:>12.0}",
            lg,
            commas(u64::from(prec)),
            add,
            sub,
            mul,
            div
        );
        rows.push(Fig11Row {
            log2_prec: lg,
            prec_bits: prec,
            add_cycles: add,
            sub_cycles: sub,
            mul_cycles: mul,
            div_cycles: div,
        });
    }
    // Crossover analysis (§5.3): where does arithmetic dominate a 12,000-
    // cycle virtualization overhead?
    let cross = |sel: fn(&Fig11Row) -> f64, name: &str, budget: f64| {
        let hit = rows.iter().find(|r| sel(r) > budget);
        match hit {
            Some(r) => println!(
                "  {name} exceeds {budget:.0} cycles at 2^{} bits",
                r.log2_prec
            ),
            None => println!("  {name} stays below {budget:.0} cycles through 2^{max_log2}"),
        }
    };
    println!("Crossover vs ~12,000-cycle trap overhead (paper: div 2^13, add 2^18):");
    cross(|r| r.div_cycles, "div", 12_000.0);
    cross(|r| r.add_cycles, "add", 12_000.0);
    println!("Crossover vs ~4,000-cycle optimized overhead (paper: div 2^8, add 2^16):");
    cross(|r| r.div_cycles, "div", 4_000.0);
    cross(|r| r.add_cycles, "add", 4_000.0);
    println!();
    rows
}

// ---------------------------------------------------------------------------
// Fig. 12: wall-clock slowdown per benchmark per machine
// ---------------------------------------------------------------------------

#[derive(Debug, Clone)]
pub struct Fig12Row {
    pub benchmark: String,
    pub config: String,
    pub slowdown: Vec<(String, f64)>,
}

/// Fig. 12: slowdown (virtualized cycles / native cycles) for every
/// benchmark on the three machine profiles, 200-bit BigFloat.
pub fn fig12(size: Size) -> Vec<Fig12Row> {
    println!("== Fig. 12: summary of benchmark slowdowns (bigfloat-200) ==");
    let profiles = CostModel::all();
    println!(
        "{:<18} {:<16} {:>10} {:>10} {:>10}",
        "benchmark", "specifics", profiles[0].name, profiles[1].name, profiles[2].name
    );
    let mut rows = Vec::new();
    for w in all_workloads(size) {
        let mut slow = Vec::new();
        for prof in profiles {
            let native = run_native(&w, prof);
            let (report, _, _) = run_hybrid(
                &w,
                BigFloatCtx::new(PAPER_PREC),
                prof,
                FpvmConfig::default(),
            );
            slow.push((
                prof.name.to_string(),
                report.cycles as f64 / native.cycles.max(1) as f64,
            ));
        }
        println!(
            "{:<18} {:<16} {:>10} {:>10} {:>10}",
            w.name,
            w.config,
            slowdown_str(slow[0].1),
            slowdown_str(slow[1].1),
            slowdown_str(slow[2].1),
        );
        rows.push(Fig12Row {
            benchmark: w.name.to_string(),
            config: w.config.to_string(),
            slowdown: slow,
        });
    }
    println!();
    rows
}

// ---------------------------------------------------------------------------
// Fig. 13: Lorenz under IEEE vs Vanilla vs BigFloat
// ---------------------------------------------------------------------------

#[derive(Debug, Clone)]
pub struct Fig13Result {
    pub vanilla_identical: bool,
    pub samples: Vec<(usize, f64, f64, f64)>,
    pub final_ieee: (f64, f64, f64),
    pub final_mpfr: (f64, f64, f64),
    pub divergence_norm: f64,
}

fn triples(out: &[OutputEvent]) -> Vec<(f64, f64, f64)> {
    let f: Vec<f64> = out
        .iter()
        .map(|o| match o {
            OutputEvent::F64(b) => f64::from_bits(*b),
            OutputEvent::I64(x) => *x as f64,
        })
        .collect();
    f.chunks_exact(3).map(|c| (c[0], c[1], c[2])).collect()
}

/// Fig. 13: the Lorenz trajectory under original IEEE, FPVM+Vanilla
/// (identical) and FPVM+BigFloat-200 (divergent).
pub fn fig13() -> Fig13Result {
    println!("== Fig. 13: Lorenz system, IEEE vs FPVM(Vanilla) vs FPVM(bigfloat-200) ==");
    let w = lorenz::workload(Size::S);
    let native = run_native(&w, CostModel::r815());
    let (_, van, _) = run_hybrid(&w, Vanilla, CostModel::r815(), FpvmConfig::default());
    let (_, mpfr, _) = run_hybrid(
        &w,
        BigFloatCtx::new(PAPER_PREC),
        CostModel::r815(),
        FpvmConfig::default(),
    );
    let vanilla_identical = native.output == van;
    println!("FPVM(Vanilla) identical to IEEE: {vanilla_identical}   (paper: identical)");
    let ti = triples(&native.output);
    let tm = triples(&mpfr);
    println!(
        "{:>6} {:>14} {:>14} {:>12}",
        "step", "x (IEEE)", "x (bigfloat)", "|dx|"
    );
    let mut samples = Vec::new();
    for (k, (a, b)) in ti.iter().zip(&tm).enumerate() {
        let step = (k + 1) * 100;
        let d = (a.0 - b.0).abs();
        if k % 5 == 0 || k + 1 == ti.len() {
            println!("{:>6} {:>14.6} {:>14.6} {:>12.3e}", step, a.0, b.0, d);
        }
        samples.push((step, a.0, b.0, d));
    }
    let fi = *ti.last().unwrap();
    let fm = *tm.last().unwrap();
    let divergence_norm =
        ((fi.0 - fm.0).powi(2) + (fi.1 - fm.1).powi(2) + (fi.2 - fm.2).powi(2)).sqrt();
    println!(
        "final IEEE   = ({:.6}, {:.6}, {:.6})\nfinal bigfloat = ({:.6}, {:.6}, {:.6})\n|divergence| = {:.4}  (paper: trajectories and final state differ)\n",
        fi.0, fi.1, fi.2, fm.0, fm.1, fm.2, divergence_norm
    );
    Fig13Result {
        vanilla_identical,
        samples,
        final_ieee: fi,
        final_mpfr: fm,
        divergence_norm,
    }
}

// ---------------------------------------------------------------------------
// Fig. 14: exception delivery overhead, user vs kernel
// ---------------------------------------------------------------------------

#[derive(Debug, Clone)]
pub struct Fig14Row {
    pub machine: String,
    pub user_delivery_cycles: u64,
    pub kernel_delivery_cycles: u64,
    pub ratio: f64,
    pub pipeline_interrupt_cycles: u64,
}

/// Fig. 14: trap delivery overhead across platforms (modeled after the
/// measurements the paper quotes from \[24\]).
pub fn fig14() -> Vec<Fig14Row> {
    println!("== Fig. 14: user- vs kernel-level exception delivery (modeled from [24]) ==");
    println!(
        "{:<10} {:>14} {:>16} {:>8} {:>18}",
        "machine", "user (cyc)", "kernel (cyc)", "ratio", "pipeline-int (cyc)"
    );
    let mut rows = Vec::new();
    for m in CostModel::all() {
        let user = m.delivery(DeliveryMode::UserSignal);
        let kernel = m.delivery(DeliveryMode::KernelModule);
        let row = Fig14Row {
            machine: m.name.to_string(),
            user_delivery_cycles: user,
            kernel_delivery_cycles: kernel,
            ratio: user as f64 / kernel as f64,
            pipeline_interrupt_cycles: m.delivery(DeliveryMode::PipelineInterrupt),
        };
        println!(
            "{:<10} {:>14} {:>16} {:>7.1}x {:>18}",
            row.machine,
            commas(user),
            commas(kernel),
            row.ratio,
            row.pipeline_interrupt_cycles
        );
        rows.push(row);
    }
    println!(
        "(paper: kernel-level delivery is 7-30x cheaper; §6.2 projects ~10-cycle user→user)\n"
    );
    rows
}

// ---------------------------------------------------------------------------
// Fig. 3 / §3.2: the four approaches + trap-and-patch proof of concept
// ---------------------------------------------------------------------------

#[derive(Debug, Clone)]
pub struct ApproachRow {
    pub approach: String,
    pub cycles: u64,
    pub fp_traps: u64,
    pub patch_fast: u64,
    pub patch_slow: u64,
    pub output_identical: bool,
}

/// Fig. 3 (measured): run the same workload under all four approaches.
pub fn approaches() -> Vec<ApproachRow> {
    println!("== Fig. 3 (measured): the four approaches on Lorenz (Vanilla, R815) ==");
    let w = lorenz::workload(Size::Tiny);
    let native = run_native(&w, CostModel::r815());
    let c = compile(&w.module, CompileMode::Native);
    let mut rows = Vec::new();
    let mut run_case = |name: &str, cfg: FpvmConfig, use_static: bool| {
        let (report, out) = if use_static {
            let (r, o, _) = run_hybrid(&w, Vanilla, CostModel::r815(), cfg);
            (r, o)
        } else {
            let mut m = Machine::new(CostModel::r815());
            m.load_program(&c.program);
            let mut rt = Fpvm::new(Vanilla, cfg);
            let r = rt.run(&mut m);
            (r, m.output)
        };
        rows.push(ApproachRow {
            approach: name.to_string(),
            cycles: report.cycles,
            fp_traps: report.stats.fp_traps,
            patch_fast: report.stats.patch_fast,
            patch_slow: report.stats.patch_slow,
            output_identical: out == native.output,
        });
    };
    run_case("trap-and-emulate", FpvmConfig::default(), false);
    run_case(
        "trap-and-patch",
        FpvmConfig {
            trap_and_patch: true,
            ..FpvmConfig::default()
        },
        false,
    );
    run_case("static-analysis+transform", FpvmConfig::default(), true);
    // Compiler-based.
    {
        let ci = compile(&w.module, CompileMode::FpvmInstrumented);
        let mut m = Machine::new(CostModel::r815());
        m.load_program(&ci.program);
        let mut rt = Fpvm::new(Vanilla, FpvmConfig::default());
        rt.preload_patch_sites(ci.patch_sites.clone());
        let report = rt.run(&mut m);
        rows.push(ApproachRow {
            approach: "compiler-based (IR transform)".to_string(),
            cycles: report.cycles,
            fp_traps: report.stats.fp_traps,
            patch_fast: report.stats.patch_fast,
            patch_slow: report.stats.patch_slow,
            output_identical: m.output == native.output,
        });
    }
    println!(
        "{:<30} {:>14} {:>9} {:>11} {:>11} {:>10}",
        "approach", "cycles", "hw traps", "patch fast", "patch slow", "identical"
    );
    println!(
        "{:<30} {:>14} {:>9} {:>11} {:>11} {:>10}",
        "(native baseline)",
        commas(native.cycles),
        "-",
        "-",
        "-",
        "-"
    );
    for r in &rows {
        println!(
            "{:<30} {:>14} {:>9} {:>11} {:>11} {:>10}",
            r.approach,
            commas(r.cycles),
            commas(r.fp_traps),
            commas(r.patch_fast),
            commas(r.patch_slow),
            r.output_identical
        );
    }
    println!();
    rows
}

#[derive(Debug, Clone)]
pub struct TrapPatchPoc {
    pub trap_dispatch_cycles: u64,
    pub patch_check_pass_cycles: u64,
    pub patch_slow_path_cycles: u64,
}

/// §3.2's proof of concept: patch+handler overhead when the pre/post
/// conditions are met versus not, versus a full hardware trap.
pub fn trap_and_patch_poc() -> TrapPatchPoc {
    println!("== §3.2 proof of concept: patch+handler vs trap (single addsd site) ==");
    let m = CostModel::r815();
    let poc = TrapPatchPoc {
        trap_dispatch_cycles: m.delivery(DeliveryMode::UserSignal),
        patch_check_pass_cycles: m.patch_call + m.patch_check,
        patch_slow_path_cycles: m.patch_call + m.patch_check + m.emulate_dispatch,
    };
    println!(
        "hardware trap dispatch:        {:>8} cycles",
        commas(poc.trap_dispatch_cycles)
    );
    println!(
        "patch, conditions met:         {:>8} cycles",
        commas(poc.patch_check_pass_cycles)
    );
    println!(
        "patch, conditions failed (+emulate dispatch): {:>8} cycles",
        commas(poc.patch_slow_path_cycles)
    );
    println!(
        "-> patching wins when a site sees boxed operands more than ~{:.2}% of the time\n",
        100.0 * (poc.patch_check_pass_cycles as f64) / (poc.trap_dispatch_cycles as f64)
    );
    poc
}

// ---------------------------------------------------------------------------
// §6: prospects — overhead under the proposed kernel/hardware changes
// ---------------------------------------------------------------------------

#[derive(Debug, Clone)]
pub struct ProspectRow {
    pub variant: String,
    pub avg_trap_cycles: f64,
    pub lorenz_slowdown: f64,
}

/// §6 / E11: re-run Lorenz under the delivery-mode variants, showing how
/// kernel-level FPVM and the pipeline interrupt shrink the overhead toward
/// the ~4,000-cycle emulation+GC floor; then demonstrate the trap-on-NaN-
/// load hardware extension removing the need for static analysis entirely.
pub fn prospects() -> Vec<ProspectRow> {
    println!("== §6 prospects: overhead under proposed kernel/hardware support ==");
    let w = lorenz::workload(Size::S);
    let native = run_native(&w, CostModel::r815());
    let mut rows = Vec::new();
    for (name, mode, corr_call) in [
        ("prototype (user signals)", DeliveryMode::UserSignal, false),
        (
            "kernel-module FPVM (§6.1)",
            DeliveryMode::KernelModule,
            true,
        ),
        (
            "pipeline interrupt (§6.2)",
            DeliveryMode::PipelineInterrupt,
            true,
        ),
    ] {
        let cfg = FpvmConfig {
            delivery: mode,
            correctness_as_call: corr_call,
            ..FpvmConfig::default()
        };
        let (report, _, _) = run_hybrid(&w, BigFloatCtx::new(PAPER_PREC), CostModel::r815(), cfg);
        let row = ProspectRow {
            variant: name.to_string(),
            avg_trap_cycles: report.stats.avg_trap_cost(),
            lorenz_slowdown: report.cycles as f64 / native.cycles.max(1) as f64,
        };
        println!(
            "{:<28} {:>12.0} cycles/trap {:>10} slowdown",
            row.variant,
            row.avg_trap_cycles,
            slowdown_str(row.lorenz_slowdown)
        );
        rows.push(row);
    }
    // Trap-on-NaN-load: run the bit-punning Enzo workload with NO static
    // analysis at all; the modeled hardware catches the holes.
    let enzo = fpvm_workloads::enzo_like::workload(Size::S);
    let native_enzo = run_native(&enzo, CostModel::r815());
    let c = compile(&enzo.module, CompileMode::Native);
    let mut m = Machine::new(CostModel::r815());
    m.load_program(&c.program);
    let cfg = FpvmConfig {
        nan_load_hw: true,
        delivery: DeliveryMode::PipelineInterrupt,
        ..FpvmConfig::default()
    };
    let mut rt = Fpvm::new(BigFloatCtx::new(PAPER_PREC), cfg);
    let report = rt.run(&mut m);
    let identical_structure = m.output.len() == native_enzo.output.len();
    println!(
        "trap-on-NaN-load HW (§6.2): Enzo UNPATCHED, {} NaN-hole traps caught by hardware,",
        commas(report.stats.nan_hole_traps)
    );
    println!(
        "  no VSA/e9patch pass needed; run completed: {} (output arity matches: {})",
        matches!(report.exit, fpvm_core::ExitReason::Halted),
        identical_structure
    );
    println!();
    rows
}

// ---------------------------------------------------------------------------
// Static analysis summary (§4.2)
// ---------------------------------------------------------------------------

#[derive(Debug, Clone)]
pub struct AnalysisRow {
    pub workload: String,
    pub instructions: usize,
    pub functions: usize,
    pub loads_total: usize,
    pub loads_proven_safe: usize,
    pub sinks_found: usize,
    pub sinks_patched: usize,
    pub sinks_skipped: usize,
    pub correctness_traps_taken: u64,
    pub demote_rate: f64,
}

/// Static analysis + runtime correctness-trap profile per workload (the
/// data behind Fig. 9's correctness components).
pub fn analysis_table(size: Size) -> Vec<AnalysisRow> {
    println!("== §4.2 static analysis: sinks found and their dynamic behavior (Vanilla) ==");
    println!(
        "{:<18} {:>6} {:>5} {:>7} {:>7} {:>6} {:>7} {:>7} {:>10} {:>8}",
        "workload",
        "insts",
        "fns",
        "loads",
        "safe",
        "sinks",
        "patched",
        "skipped",
        "corr.traps",
        "demote%"
    );
    let mut rows = Vec::new();
    for w in all_workloads(size) {
        let (report, _, stats) = run_hybrid(&w, Vanilla, CostModel::r815(), FpvmConfig::default());
        let s = &report.stats;
        let demote_rate = if s.correctness_traps > 0 {
            s.correctness_demotions as f64 / s.correctness_traps as f64
        } else {
            0.0
        };
        let row = AnalysisRow {
            workload: w.name.to_string(),
            instructions: stats.instructions,
            functions: stats.functions,
            loads_total: stats.loads_total,
            loads_proven_safe: stats.loads_proven_safe,
            sinks_found: stats.sinks_found,
            sinks_patched: stats.sinks_patched,
            sinks_skipped: stats.sinks_skipped_table_full + stats.sinks_skipped_straddle,
            correctness_traps_taken: s.correctness_traps,
            demote_rate,
        };
        println!(
            "{:<18} {:>6} {:>5} {:>7} {:>7} {:>6} {:>7} {:>7} {:>10} {:>7.1}%",
            row.workload,
            row.instructions,
            row.functions,
            row.loads_total,
            row.loads_proven_safe,
            row.sinks_found,
            row.sinks_patched,
            row.sinks_skipped,
            commas(row.correctness_traps_taken),
            row.demote_rate * 100.0
        );
        rows.push(row);
    }
    println!();
    rows
}

// ---------------------------------------------------------------------------
// §5.2 validation
// ---------------------------------------------------------------------------

/// §5.2: run every workload natively and under FPVM+Vanilla and compare
/// bit-for-bit. Returns true if all pass.
pub fn validate(size: Size) -> bool {
    println!("== §5.2 validation: FPVM(Vanilla) vs native, bit-identical ==");
    let mut all_ok = true;
    for w in all_workloads(size) {
        let native = run_native(&w, CostModel::r815());
        let (_, out, _) = run_hybrid(&w, Vanilla, CostModel::r815(), FpvmConfig::default());
        let ok = native.output == out;
        all_ok &= ok;
        println!(
            "{:<18} {} ({} outputs)",
            w.name,
            if ok { "IDENTICAL" } else { "MISMATCH" },
            out.len()
        );
    }
    println!();
    all_ok
}

// ---------------------------------------------------------------------------
// Posit effects (§5.4 companion)
// ---------------------------------------------------------------------------

#[derive(Debug, Clone)]
pub struct PositRow {
    pub system: String,
    pub final_x: f64,
    pub delta_vs_ieee: f64,
}

/// Extra effect experiment: three-body final state under IEEE, posit32 and
/// posit64 (the §5.4 chaotic-dynamics story on the paper's third system).
pub fn posit_effects() -> Vec<PositRow> {
    println!("== §5.4 companion: three-body final x under alternative systems ==");
    let w = fpvm_workloads::three_body::workload(Size::S);
    let native = run_native(&w, CostModel::r815());
    let last_f = |out: &[OutputEvent]| match out[out.len() - 6] {
        OutputEvent::F64(b) => f64::from_bits(b),
        OutputEvent::I64(x) => x as f64,
    };
    let ieee = last_f(&native.output);
    let mut rows = vec![PositRow {
        system: "ieee (native)".to_string(),
        final_x: ieee,
        delta_vs_ieee: 0.0,
    }];
    let (_, p32, _) = run_hybrid(
        &w,
        PositCtx::<32, 2>,
        CostModel::r815(),
        FpvmConfig::default(),
    );
    let (_, p64, _) = run_hybrid(
        &w,
        PositCtx::<64, 3>,
        CostModel::r815(),
        FpvmConfig::default(),
    );
    let (_, big, _) = run_hybrid(
        &w,
        BigFloatCtx::new(PAPER_PREC),
        CostModel::r815(),
        FpvmConfig::default(),
    );
    for (name, out) in [("posit32", &p32), ("posit64", &p64), ("bigfloat200", &big)] {
        let x = last_f(out);
        rows.push(PositRow {
            system: name.to_string(),
            final_x: x,
            delta_vs_ieee: (x - ieee).abs(),
        });
    }
    for r in &rows {
        println!(
            "{:<16} final body-1 x = {:>12.8}   |delta vs IEEE| = {:.3e}",
            r.system, r.final_x, r.delta_vs_ieee
        );
    }
    println!();
    rows
}

// ---------------------------------------------------------------------------
// Trace/profile mode: stream a full trap trace + aggregate hot-site profile
// ---------------------------------------------------------------------------

/// One hot-site row of the archived profile.
#[derive(Debug, Clone)]
pub struct HotSiteRow {
    pub rip: u64,
    pub traps: u64,
    pub correctness_traps: u64,
    pub patch_fast: u64,
    pub patch_slow: u64,
    pub cycles_total: u64,
    pub dominant: String,
    pub patched: bool,
}

/// One per-component latency histogram of the archived profile.
#[derive(Debug, Clone)]
pub struct HistRow {
    pub component: String,
    pub count: u64,
    pub mean: f64,
    pub max: u64,
    /// `(bucket_lower_bound_cycles, count)` for each non-empty log₂ bucket.
    pub buckets: Vec<(u64, u64)>,
}

/// The archived record of a `--trace`/`--profile` run.
#[derive(Debug, Clone)]
pub struct TraceProfileResult {
    pub workload: String,
    pub trace_path: String,
    pub trace_lines: u64,
    pub profiler_events: u64,
    pub sites: u64,
    pub hot_sites: Vec<HotSiteRow>,
    pub histograms: Vec<HistRow>,
    /// Arena occupancy time series: `(icount, live_before, live_after)`.
    pub arena: Vec<(u64, u64, u64)>,
}

/// Trace/profile mode: run Lorenz under bigfloat-200 with the JSONL stream
/// and the aggregating profiler fanned out from the same sink, write
/// `target/experiments/trace.jsonl`, and render the top-N hot-site report.
pub fn trace_profile(size: Size) -> TraceProfileResult {
    println!("== trace/profile: Lorenz trap telemetry (bigfloat-200, R815) ==");
    let w = lorenz::workload(size);
    let dir = std::path::PathBuf::from("target/experiments");
    let _ = std::fs::create_dir_all(&dir);
    let trace_path = dir.join("trace.jsonl");
    let jsonl = JsonlTraceSink::create(&trace_path).expect("create trace.jsonl");
    let cfg = FpvmConfig {
        gc_epoch: 150_000, // make the GC contribute to the arena series
        ..FpvmConfig::default()
    };
    let (report, _, _, mut rt) = run_hybrid_owned(
        &w,
        BigFloatCtx::new(PAPER_PREC),
        CostModel::r815(),
        cfg,
        |rt| {
            rt.set_trace_sink(Box::new(FanoutSink::new(vec![
                Box::new(jsonl),
                Box::new(ProfilerSink::new()),
            ])));
        },
    );
    // Teardown: the engine owns the sinks; take the fanout back apart.
    let fan = rt.take_trace_sink().downcast::<FanoutSink>().unwrap();
    let mut sinks = fan.into_sinks().into_iter();
    let jsonl = sinks
        .next()
        .unwrap()
        .downcast::<JsonlTraceSink<std::io::BufWriter<std::fs::File>>>()
        .unwrap();
    let prof = sinks.next().unwrap().downcast::<ProfilerSink>().unwrap();
    let top_n = 10;
    print!("{}", prof.report(top_n));
    let hot_sites: Vec<HotSiteRow> = prof
        .hot_sites(top_n)
        .into_iter()
        .map(|(rip, p)| HotSiteRow {
            rip,
            traps: p.traps,
            correctness_traps: p.correctness_traps,
            patch_fast: p.patch_fast,
            patch_slow: p.patch_slow,
            cycles_total: p.total_cycles(),
            dominant: p.dominant().label().to_string(),
            patched: p.patched,
        })
        .collect();
    let histograms: Vec<HistRow> = Component::ALL
        .into_iter()
        .map(|c| {
            let h = prof.histogram(c);
            HistRow {
                component: c.label().to_string(),
                count: h.count(),
                mean: h.mean(),
                max: h.max(),
                buckets: h.nonzero(),
            }
        })
        .filter(|r| r.count > 0)
        .collect();
    for h in &histograms {
        println!(
            "hist {:<20} n={:<8} mean={:>10.0} max={:>10} buckets={}",
            h.component,
            h.count,
            h.mean,
            h.max,
            h.buckets.len()
        );
    }
    let arena: Vec<(u64, u64, u64)> = prof
        .arena_series()
        .iter()
        .map(|s| (s.icount, s.before, s.alive))
        .collect();
    let lines = jsonl.lines();
    println!(
        "trace: {} events -> {} ({} lines); profiler: {} events over {} sites, {} GC samples",
        commas(report.stats.fp_traps),
        trace_path.display(),
        commas(lines),
        commas(prof.events()),
        prof.sites().len(),
        arena.len()
    );
    println!();
    TraceProfileResult {
        workload: w.name.to_string(),
        trace_path: trace_path.display().to_string(),
        trace_lines: lines,
        profiler_events: prof.events(),
        sites: prof.sites().len() as u64,
        hot_sites,
        histograms,
        arena,
    }
}

// ---------------------------------------------------------------------------
// Profiler-guided trap-and-patch site selection vs the heuristic
// ---------------------------------------------------------------------------

/// The archived comparison row for the `pguided` experiment.
#[derive(Debug, Clone)]
pub struct PguidedResult {
    pub workload: String,
    pub top_k: u64,
    pub profiled_sites: u64,
    pub top_rip: u64,
    /// Acceptance check: the heuristic engine patches the profiler's #1 site.
    pub top_rip_patched_by_heuristic: bool,
    pub baseline_cycles: u64,
    pub heuristic_cycles: u64,
    pub heuristic_sites_patched: u64,
    pub guided_cycles: u64,
    pub guided_sites_patched: u64,
    /// Guided cycles relative to the heuristic (≈1.0 means the top-K sites
    /// capture all the win with a fraction of the patch budget).
    pub guided_vs_heuristic: f64,
}

/// Feed the profiler's hot-site ranking into trap-and-patch site selection
/// and compare against the patch-everything heuristic (§3.2).
pub fn profiler_guided(size: Size) -> PguidedResult {
    println!("== pguided: profiler-guided patch-site selection vs heuristic (Vanilla, R815) ==");
    let w = lorenz::workload(size);
    let top_k = 4usize;
    // Pass 1 — profile a plain trap-and-emulate run to rank the sites.
    let (base, _, _, mut rt1) = run_hybrid_owned(
        &w,
        Vanilla,
        CostModel::r815(),
        FpvmConfig::default(),
        |rt| rt.set_trace_sink(Box::new(ProfilerSink::new())),
    );
    let prof = rt1.take_trace_sink().downcast::<ProfilerSink>().unwrap();
    let ranked = prof.hot_sites(top_k);
    assert!(!ranked.is_empty(), "workload must trap");
    let top_rip = ranked[0].0;
    print!("{}", prof.report(top_k));
    // Pass 2 — the heuristic: patch every eligible site on first trap.
    let patch_cfg = FpvmConfig {
        trap_and_patch: true,
        ..FpvmConfig::default()
    };
    let (heur, _, _, mut rt2) = run_hybrid_owned(&w, Vanilla, CostModel::r815(), patch_cfg, |rt| {
        rt.set_trace_sink(Box::new(ProfilerSink::new()))
    });
    let hprof = rt2.take_trace_sink().downcast::<ProfilerSink>().unwrap();
    let top_rip_patched_by_heuristic = hprof.site(top_rip).is_some_and(|site| site.patched);
    // Pass 3 — guided: spend the patch budget only on the profiled top-K.
    let allow: Vec<u64> = ranked.iter().map(|(rip, _)| *rip).collect();
    let (guided, _, _) = run_hybrid_with(&w, Vanilla, CostModel::r815(), patch_cfg, |rt| {
        rt.restrict_patching(allow.iter().copied())
    });
    let result = PguidedResult {
        workload: w.name.to_string(),
        top_k: top_k as u64,
        profiled_sites: prof.sites().len() as u64,
        top_rip,
        top_rip_patched_by_heuristic,
        baseline_cycles: base.cycles,
        heuristic_cycles: heur.cycles,
        heuristic_sites_patched: heur.stats.sites_patched,
        guided_cycles: guided.cycles,
        guided_sites_patched: guided.stats.sites_patched,
        guided_vs_heuristic: guided.cycles as f64 / heur.cycles.max(1) as f64,
    };
    println!("{:<26} {:>14} {:>14}", "variant", "cycles", "sites patched");
    println!(
        "{:<26} {:>14} {:>14}",
        "trap-and-emulate",
        commas(result.baseline_cycles),
        "-"
    );
    println!(
        "{:<26} {:>14} {:>14}",
        "heuristic (patch all)",
        commas(result.heuristic_cycles),
        result.heuristic_sites_patched
    );
    println!(
        "{:<26} {:>14} {:>14}",
        format!("profiler-guided (top {top_k})"),
        commas(result.guided_cycles),
        result.guided_sites_patched
    );
    println!(
        "top site {:#x} patched by heuristic: {}; guided/heuristic cycle ratio: {:.3}",
        result.top_rip, result.top_rip_patched_by_heuristic, result.guided_vs_heuristic
    );
    println!();
    result
}

// ---------------------------------------------------------------------------
// E4b: per-operation conformance (differential suite over every backend)
// ---------------------------------------------------------------------------

/// One conformance suite's outcome.
#[derive(Debug, Clone)]
pub struct ConformRow {
    pub suite: String,
    pub cases: u64,
    pub mismatches: u64,
    pub oracle_conflicts: u64,
    pub permitted: u64,
    pub reproducers: u64,
    pub clean: bool,
}

/// E4b: drive every `ArithSystem` backend through the persisted regression
/// corpus plus fresh deterministic sweeps, cross-checking value, flags, and
/// comparison outcomes against the oracle per operation and rounding mode.
/// Failing cases are shrunk to one-operation reproducers and archived under
/// `target/experiments/conform_repro.jsonl`, ready to paste into the corpus.
pub fn conform(size: Size) -> Vec<ConformRow> {
    use fpvm_conformance::{parse_corpus, run_cases, shrink, sweep_cases, Case};
    println!("== E4b: per-operation conformance across arithmetic backends ==");
    let mut suites: Vec<(String, Vec<Case>)> = Vec::new();
    // Persisted regression corpus (paths relative to the repo root, where
    // `reproduce` runs; silently absent under an out-of-tree invocation).
    let corpus_dir = std::path::Path::new("crates/conformance/corpus");
    if let Ok(rd) = std::fs::read_dir(corpus_dir) {
        let mut paths: Vec<_> = rd
            .filter_map(|e| e.ok())
            .map(|e| e.path())
            .filter(|p| p.extension().is_some_and(|x| x == "jsonl"))
            .collect();
        paths.sort();
        for p in paths {
            let name = format!(
                "corpus/{}",
                p.file_name().unwrap_or_default().to_string_lossy()
            );
            match std::fs::read_to_string(&p)
                .map_err(|e| e.to_string())
                .and_then(|t| parse_corpus(&t))
            {
                Ok(cases) => suites.push((name, cases)),
                Err(e) => eprintln!("warning: skipping {name}: {e}"),
            }
        }
    }
    let n = if size == Size::Tiny { 2_000 } else { 24_000 };
    suites.push(("sweep(seed=0xf9)".to_string(), sweep_cases(0xF9, n)));
    suites.push(("sweep(seed=0x51)".to_string(), sweep_cases(0x51, n)));
    println!(
        "{:<26} {:>8} {:>9} {:>9} {:>10}",
        "suite", "cases", "mismatch", "conflict", "permitted"
    );
    let mut reproducers: Vec<Case> = Vec::new();
    let mut rows = Vec::new();
    for (suite, cases) in suites {
        let report = run_cases(&cases);
        let permitted: u64 = report.permitted.values().sum();
        for case in &report.failing_cases {
            reproducers.push(shrink(case, |c| {
                !run_cases(std::slice::from_ref(c)).clean()
            }));
        }
        println!(
            "{:<26} {:>8} {:>9} {:>9} {:>10}  {}",
            suite,
            commas(report.cases),
            report.total_mismatches,
            report.oracle_conflicts,
            permitted,
            if report.clean() { "clean" } else { "FAIL" }
        );
        rows.push(ConformRow {
            suite,
            cases: report.cases,
            mismatches: report.total_mismatches,
            oracle_conflicts: report.oracle_conflicts,
            permitted,
            reproducers: report.failing_cases.len() as u64,
            clean: report.clean(),
        });
    }
    if !reproducers.is_empty() {
        let dir = std::path::PathBuf::from("target/experiments");
        let _ = std::fs::create_dir_all(&dir);
        let mut text =
            String::from("# shrunk reproducers from the last `reproduce --exp conform` run\n");
        for c in &reproducers {
            text.push_str(&c.to_jsonl());
            text.push('\n');
        }
        let path = dir.join("conform_repro.jsonl");
        let _ = std::fs::write(&path, text);
        println!(
            "wrote {} shrunk reproducer(s) to {}",
            reproducers.len(),
            path.display()
        );
    }
    println!();
    rows
}

// ---------------------------------------------------------------------------
// E14: soundness/precision audit — dynamic taint oracle vs static sink set
// ---------------------------------------------------------------------------

/// Per-[`fpvm_analysis::SinkReason`] slice of one audit run.
#[derive(Debug, Clone)]
pub struct AuditReasonRow {
    pub reason: String,
    pub confirmed: usize,
    pub spurious: usize,
    pub unexercised: usize,
    pub missed: usize,
    pub precision: f64,
    pub recall: f64,
}

/// One (workload, heap model) audit result.
#[derive(Debug, Clone)]
pub struct AuditRow {
    pub workload: String,
    pub heap_model: String,
    pub analysis: fpvm_analysis::AnalysisStats,
    pub confirmed: usize,
    pub spurious: usize,
    pub unexercised: usize,
    pub missed: usize,
    pub tainted_only: usize,
    pub precision: f64,
    pub recall: f64,
    pub correctness_traps: u64,
    pub wasted_cycles: u64,
    pub per_reason: Vec<AuditReasonRow>,
}

/// Trace sink that folds `CorrectnessTrap` events into per-site dynamic
/// observations for the audit.
#[derive(Default)]
struct TrapLedger {
    per_rip: std::collections::BTreeMap<u64, fpvm_analysis::SiteDyn>,
}

impl fpvm_core::TraceSink for TrapLedger {
    fn emit(&mut self, ev: &fpvm_core::TraceEvent) {
        if let fpvm_core::TraceEvent::CorrectnessTrap {
            rip,
            demoted,
            dispatch_cycles,
            handler_cycles,
            ..
        } = ev
        {
            self.per_rip
                .entry(*rip)
                .or_default()
                .record(*demoted, dispatch_cycles + handler_cycles);
        }
    }

    fn name(&self) -> &'static str {
        "audit-trap-ledger"
    }
}

fn reason_name(r: fpvm_analysis::SinkReason) -> &'static str {
    match r {
        fpvm_analysis::SinkReason::IntLoadOfFp => "int-load",
        fpvm_analysis::SinkReason::MovqLeak => "movq-leak",
        fpvm_analysis::SinkReason::BitwiseFp => "bitwise-fp",
    }
}

fn heap_name(h: fpvm_analysis::HeapModel) -> &'static str {
    match h {
        fpvm_analysis::HeapModel::OneCell => "one-cell",
        fpvm_analysis::HeapModel::AllocSite => "alloc-site",
    }
}

/// FNV-1a over the guest's output events (the bit-identity fingerprint
/// shared with the Fig. 9 baseline pin).
fn output_fnv(out: &[OutputEvent]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for ev in out {
        let bits = match ev {
            OutputEvent::F64(b) => *b,
            OutputEvent::I64(v) => *v as u64,
        };
        for byte in bits.to_le_bytes() {
            h ^= u64::from(byte);
            h = h.wrapping_mul(0x0000_0100_0000_01b3);
        }
    }
    h
}

/// The deterministic slice of one run's Fig. 9 accounting: everything the
/// static-analysis configuration must NOT perturb. Correctness-trap
/// components, promotions/demotions, and icount legitimately move with
/// the patch set; FP-trap counts, their cost-model cycle components, and
/// the guest's observable output must not.
#[derive(Debug, Clone, PartialEq, Eq)]
struct DetAccounting {
    fp_traps: u64,
    emulated: u64,
    emulated_lanes: u64,
    hardware: u64,
    kernel: u64,
    user_delivery: u64,
    decode: u64,
    bind: u64,
    outputs: usize,
    output_fnv: u64,
}

/// One audited run: the audit row plus everything the E19 identity gates
/// compare across configurations.
struct AuditOutcome {
    row: AuditRow,
    skipped: usize,
    acct: DetAccounting,
}

/// Run one workload under the dynamic taint oracle with the given full
/// analysis configuration and diff the run against the static sink set.
fn audit_run(w: &fpvm_workloads::Workload, acfg: &fpvm_analysis::AnalysisConfig) -> AuditOutcome {
    let c = compile(&w.module, CompileMode::Native);
    let patched = fpvm_analysis::analyze_and_patch_with(&c.program, acfg);
    let mut m = Machine::new(CostModel::r815());
    m.load_program(&patched.program);
    let mut rt = Fpvm::new(
        Vanilla,
        FpvmConfig {
            taint_oracle: true,
            ..FpvmConfig::default()
        },
    );
    rt.set_side_table(patched.side_table.clone());
    rt.set_trace_sink(Box::new(TrapLedger::default()));
    let report = rt.run(&mut m);
    assert_eq!(report.exit, fpvm_core::ExitReason::Halted, "{}", w.name);
    let patched_addrs: std::collections::BTreeSet<u64> =
        patched.side_table.iter().map(|e| e.addr).collect();
    let plane = m.taint_plane().expect("taint oracle was enabled");
    let ledger = rt.take_trace_sink().downcast::<TrapLedger>().unwrap();
    let rep = fpvm_analysis::audit(
        &patched.analysis,
        &patched_addrs,
        &ledger.per_rip,
        &plane.sites,
    );
    let per_reason = rep
        .per_reason
        .iter()
        .map(|&(r, met)| AuditReasonRow {
            reason: reason_name(r).to_string(),
            confirmed: met.confirmed,
            spurious: met.spurious,
            unexercised: met.unexercised,
            missed: met.missed,
            precision: met.precision(),
            recall: met.recall(),
        })
        .collect();
    let s = &report.stats;
    let cy = &s.cycles;
    let acct = DetAccounting {
        fp_traps: s.fp_traps,
        emulated: s.emulated,
        emulated_lanes: s.emulated_lanes,
        hardware: cy.get(Component::Hardware),
        kernel: cy.get(Component::Kernel),
        user_delivery: cy.get(Component::UserDelivery),
        decode: cy.get(Component::Decode),
        bind: cy.get(Component::Bind),
        outputs: m.output.len(),
        output_fnv: output_fnv(&m.output),
    };
    AuditOutcome {
        row: AuditRow {
            workload: w.name.to_string(),
            heap_model: heap_name(acfg.heap).to_string(),
            analysis: patched.analysis.stats,
            confirmed: rep.total.confirmed,
            spurious: rep.total.spurious,
            unexercised: rep.total.unexercised,
            missed: rep.total.missed,
            tainted_only: rep.tainted_only,
            precision: rep.total.precision(),
            recall: rep.total.recall(),
            correctness_traps: report.stats.correctness_traps,
            wasted_cycles: rep.wasted_cycles,
            per_reason,
        },
        skipped: patched.skipped.len(),
        acct,
    }
}

/// Run one workload under the dynamic taint oracle with the given heap
/// model and diff the run against the static sink set.
fn audit_one(w: &fpvm_workloads::Workload, heap: fpvm_analysis::HeapModel) -> AuditRow {
    let acfg = fpvm_analysis::AnalysisConfig {
        heap,
        ..Default::default()
    };
    audit_run(w, &acfg).row
}

/// E14: run every workload under the dynamic taint oracle and audit the
/// static sink set — soundness (missed sinks: the oracle saw live NaN-box
/// bits enter the integer world unpatched) and precision (spurious sinks:
/// patched, exercised, never demoted). Each workload runs under both heap
/// models; the one-cell vs alloc-site delta is the measured precision
/// upgrade.
pub fn audit_table(size: Size) -> Vec<AuditRow> {
    println!("== E14 audit: dynamic taint oracle vs static sink set (Vanilla, R815) ==");
    println!(
        "{:<18} {:<10} {:>5} {:>5} {:>5} {:>5} {:>5} {:>6} {:>6} {:>6} {:>12}",
        "workload",
        "heap",
        "sinks",
        "conf",
        "spur",
        "unex",
        "miss",
        "t-only",
        "prec",
        "recall",
        "wasted-cyc"
    );
    let mut rows = Vec::new();
    for w in all_workloads(size) {
        for heap in [
            fpvm_analysis::HeapModel::OneCell,
            fpvm_analysis::HeapModel::AllocSite,
        ] {
            let row = audit_one(&w, heap);
            println!(
                "{:<18} {:<10} {:>5} {:>5} {:>5} {:>5} {:>5} {:>6} {:>6.2} {:>6.2} {:>12}",
                row.workload,
                row.heap_model,
                row.analysis.sinks_found,
                row.confirmed,
                row.spurious,
                row.unexercised,
                row.missed,
                row.tainted_only,
                row.precision,
                row.recall,
                commas(row.wasted_cycles)
            );
            rows.push(row);
        }
    }
    // Ablation summary: what alloc-site partitioning buys per workload.
    for pair in rows.chunks(2) {
        let (one, site) = (&pair[0], &pair[1]);
        if site.spurious < one.spurious {
            println!(
                "  {}: alloc-site removes {} spurious sink(s) ({} -> {}), saving {} wasted cycles",
                one.workload,
                one.spurious - site.spurious,
                one.spurious,
                site.spurious,
                commas(one.wasted_cycles.saturating_sub(site.wasted_cycles))
            );
        }
    }
    let missed: usize = rows.iter().map(|r| r.missed).sum();
    if missed == 0 {
        println!("soundness: zero missed sinks across {} runs", rows.len());
    } else {
        println!("SOUNDNESS HOLES: {missed} missed sink(s) — see per-row `miss`");
    }
    println!();
    rows
}

/// One (workload, config, reason) row of the flat per-`SinkReason`
/// precision/recall artifact (`audit_reasons.json`) — diffable across PRs
/// instead of buried in stdout.
#[derive(Debug, Clone)]
pub struct ReasonFlatRow {
    pub workload: String,
    pub config: String,
    pub reason: String,
    pub confirmed: usize,
    pub spurious: usize,
    pub unexercised: usize,
    pub missed: usize,
    pub precision: f64,
    pub recall: f64,
}

/// Flatten audit rows into the per-reason artifact, labeling each row with
/// the configuration it came from.
pub fn flatten_reasons<'a>(
    rows: impl IntoIterator<Item = (&'a str, &'a AuditRow)>,
) -> Vec<ReasonFlatRow> {
    let mut out = Vec::new();
    for (config, row) in rows {
        for r in &row.per_reason {
            out.push(ReasonFlatRow {
                workload: row.workload.clone(),
                config: config.to_string(),
                reason: r.reason.clone(),
                confirmed: r.confirmed,
                spurious: r.spurious,
                unexercised: r.unexercised,
                missed: r.missed,
                precision: r.precision,
                recall: r.recall,
            });
        }
    }
    out
}

// ---------------------------------------------------------------------------
// E19: second-generation VSA — per-pass ablation through the taint oracle
// ---------------------------------------------------------------------------

/// One (workload, analysis config) row of the E19 ablation.
#[derive(Debug, Clone)]
pub struct Vsa2Row {
    pub workload: String,
    pub config: String,
    pub sinks_found: usize,
    pub sinks_demoted_live: usize,
    pub contexts: usize,
    pub skipped: usize,
    pub confirmed: usize,
    pub spurious: usize,
    pub unexercised: usize,
    pub missed: usize,
    pub tainted_only: usize,
    pub precision: f64,
    pub recall: f64,
    pub correctness_traps: u64,
    pub wasted_cycles: u64,
    pub per_reason: Vec<AuditReasonRow>,
}

/// E19 result record (archived and appended to `BENCH_analysis.json`).
#[derive(Debug, Clone)]
pub struct Vsa2Result {
    pub rows: Vec<Vsa2Row>,
    /// Guest outputs bit-identical across every config, per workload.
    pub outputs_identical: bool,
    /// Deterministic Fig. 9 accounting identical across every config.
    pub accounting_identical: bool,
    /// Missed (unpatched-but-boxed) sinks summed over every run.
    pub missed_total: u64,
    /// Patcher-skipped sinks summed over every run (the flow_mem demotion
    /// model requires every sink to actually be patched).
    pub skipped_total: u64,
    pub enzo_baseline_sinks: u64,
    pub enzo_all_sinks: u64,
    pub enzo_baseline_spurious: u64,
    pub enzo_all_spurious: u64,
}

/// The E19 ablation ladder: alloc-site heap everywhere, then each
/// second-generation pass alone, then all three together.
pub fn vsa2_configs() -> Vec<(&'static str, fpvm_analysis::AnalysisConfig)> {
    use fpvm_analysis::{AnalysisConfig, HeapModel};
    let base = AnalysisConfig {
        heap: HeapModel::AllocSite,
        ..Default::default()
    };
    vec![
        ("baseline", base),
        (
            "+flow",
            AnalysisConfig {
                flow_mem: true,
                ..base
            },
        ),
        (
            "+ctx",
            AnalysisConfig {
                ctx_k1: true,
                ..base
            },
        ),
        (
            "+live",
            AnalysisConfig {
                liveness: true,
                ..base
            },
        ),
        (
            "all",
            AnalysisConfig {
                flow_mem: true,
                ctx_k1: true,
                liveness: true,
                ..base
            },
        ),
    ]
}

/// E19: run every workload through the dynamic taint oracle under each
/// ablation config of the second-generation analysis. Soundness (zero
/// missed sinks in *every* config) and behavior identity (guest outputs
/// and deterministic Fig. 9 accounting bit-identical across configs) are
/// hard gates; the payoff is the spurious-sink / wasted-cycle reduction.
pub fn vsa2(size: Size) -> Vsa2Result {
    println!(
        "== E19 vsa2: second-generation analysis ablation (Vanilla, R815, alloc-site heap) =="
    );
    println!(
        "{:<18} {:<9} {:>5} {:>4} {:>4} {:>5} {:>5} {:>5} {:>5} {:>6} {:>6} {:>12}",
        "workload",
        "config",
        "sinks",
        "demo",
        "ctxs",
        "conf",
        "spur",
        "unex",
        "miss",
        "prec",
        "recall",
        "wasted-cyc"
    );
    let configs = vsa2_configs();
    let mut rows: Vec<Vsa2Row> = Vec::new();
    let mut outputs_identical = true;
    let mut accounting_identical = true;
    let mut skipped_total = 0usize;
    for w in all_workloads(size) {
        let mut first_acct: Option<DetAccounting> = None;
        for (name, acfg) in &configs {
            let o = audit_run(&w, acfg);
            match &first_acct {
                None => first_acct = Some(o.acct.clone()),
                Some(base) => {
                    if base.output_fnv != o.acct.output_fnv || base.outputs != o.acct.outputs {
                        outputs_identical = false;
                        println!("  OUTPUT DRIFT: {} under {}", w.name, name);
                    }
                    if *base != o.acct {
                        accounting_identical = false;
                        println!("  ACCOUNTING DRIFT: {} under {}", w.name, name);
                    }
                }
            }
            skipped_total += o.skipped;
            let r = &o.row;
            println!(
                "{:<18} {:<9} {:>5} {:>4} {:>4} {:>5} {:>5} {:>5} {:>5} {:>6.2} {:>6.2} {:>12}",
                r.workload,
                name,
                r.analysis.sinks_found,
                r.analysis.sinks_demoted_live,
                r.analysis.contexts,
                r.confirmed,
                r.spurious,
                r.unexercised,
                r.missed,
                r.precision,
                r.recall,
                commas(r.wasted_cycles)
            );
            rows.push(Vsa2Row {
                workload: r.workload.clone(),
                config: name.to_string(),
                sinks_found: r.analysis.sinks_found,
                sinks_demoted_live: r.analysis.sinks_demoted_live,
                contexts: r.analysis.contexts,
                skipped: o.skipped,
                confirmed: r.confirmed,
                spurious: r.spurious,
                unexercised: r.unexercised,
                missed: r.missed,
                tainted_only: r.tainted_only,
                precision: r.precision,
                recall: r.recall,
                correctness_traps: r.correctness_traps,
                wasted_cycles: r.wasted_cycles,
                per_reason: r.per_reason.clone(),
            });
        }
    }
    let pick = |workload: &str, config: &str| {
        rows.iter()
            .find(|r| r.workload == workload && r.config == config)
    };
    let (enzo_baseline_sinks, enzo_baseline_spurious) =
        pick("Enzo", "baseline").map_or((0, 0), |r| (r.sinks_found as u64, r.spurious as u64));
    let (enzo_all_sinks, enzo_all_spurious) =
        pick("Enzo", "all").map_or((0, 0), |r| (r.sinks_found as u64, r.spurious as u64));
    let missed_total: u64 = rows.iter().map(|r| r.missed as u64).sum();
    // Per-workload ablation summary against the baseline config.
    for w in all_workloads(size) {
        let Some(base) = pick(w.name, "baseline") else {
            continue;
        };
        let Some(all) = pick(w.name, "all") else {
            continue;
        };
        if all.spurious < base.spurious || all.sinks_found < base.sinks_found {
            println!(
                "  {}: all passes drop sinks {} -> {}, spurious {} -> {}, saving {} wasted cycles",
                w.name,
                base.sinks_found,
                all.sinks_found,
                base.spurious,
                all.spurious,
                commas(base.wasted_cycles.saturating_sub(all.wasted_cycles))
            );
        }
    }
    if missed_total == 0 {
        println!("soundness: zero missed sinks across {} runs", rows.len());
    } else {
        println!("SOUNDNESS HOLES: {missed_total} missed sink(s)");
    }
    println!();
    Vsa2Result {
        rows,
        outputs_identical,
        accounting_identical,
        missed_total,
        skipped_total: skipped_total as u64,
        enzo_baseline_sinks,
        enzo_all_sinks,
        enzo_baseline_spurious,
        enzo_all_spurious,
    }
}

// ---------------------------------------------------------------------------
// E15: fleet scaling — the guest-parallel throughput trajectory
// ---------------------------------------------------------------------------

/// One worker-count point of the fleet scaling trajectory.
#[derive(Debug, Clone)]
pub struct FleetPoint {
    pub workers: u64,
    pub wall_ms: f64,
    pub guests_per_sec: f64,
    pub ns_per_guest_inst: f64,
    /// Throughput relative to the 1-worker point.
    pub speedup: f64,
    /// Merged deterministic stats + hot-site table bit-identical to the
    /// 1-worker run?
    pub deterministic: bool,
    /// More workers than the host exposes cores: the speedup figure
    /// measures scheduling overlap, not parallel throughput. Always true
    /// for multi-worker points on a 1-core host.
    pub degraded: bool,
}

/// The archived fleet scaling record (`BENCH_fleet.json`).
#[derive(Debug, Clone)]
pub struct FleetResult {
    pub jobs: u64,
    pub guest_icount: u64,
    pub fp_traps: u64,
    pub host_parallelism: u64,
    /// Every point's determinism gate passed.
    pub deterministic: bool,
    pub points: Vec<FleetPoint>,
}

/// E15: run the fleet job set at 1/2/4/N workers, gate the determinism
/// contract at every count, and report the throughput trajectory —
/// guests/sec and host-ns per guest instruction per worker count. This is
/// the repo's first perf trajectory: the merged *results* are pinned
/// bit-identical while the wall clock scales with workers.
pub fn fleet(smoke: bool) -> FleetResult {
    use fpvm_fleet::run_fleet;
    println!("== E15: fleet scaling — guest-parallel throughput (Vanilla, R815) ==");
    // Tiny guests either way; the ensemble size sets how much work the
    // scheduler has to balance.
    let jobs = fpvm_fleet::smoke_jobs(if smoke { 22 } else { 54 });
    let host = std::thread::available_parallelism()
        .map(|n| n.get() as u64)
        .unwrap_or(1);
    let mut counts: Vec<usize> = vec![1, 2, 4, host as usize];
    counts.sort_unstable();
    counts.dedup();
    // Warm-up pass: touch every code path once so the first measured
    // point doesn't pay one-time costs (page faults, lazy init).
    let _ = run_fleet(&jobs[..2.min(jobs.len())], 1);
    type FleetBaseline = (f64, fpvm_core::Stats, Vec<(u64, fpvm_core::SiteProfile)>);
    let mut points: Vec<FleetPoint> = Vec::new();
    let mut base: Option<FleetBaseline> = None;
    let mut guest_icount = 0;
    let mut fp_traps = 0;
    println!(
        "{:>8} {:>10} {:>12} {:>14} {:>10} {:>13}",
        "workers", "wall_ms", "guests/s", "ns/guest-inst", "speedup", "deterministic"
    );
    for &w in &counts {
        let r = run_fleet(&jobs, w);
        let view = r.merged.deterministic_view();
        let sites = r.deterministic_hot_sites(usize::MAX);
        let gps = r.guests_per_sec();
        let deterministic = match &base {
            None => {
                base = Some((gps, view.clone(), sites));
                guest_icount = r.icount;
                fp_traps = r.merged.fp_traps;
                true
            }
            Some((_, base_view, base_sites)) => view == *base_view && sites == *base_sites,
        };
        let speedup = gps / base.as_ref().map(|(g, _, _)| *g).unwrap_or(gps);
        let p = FleetPoint {
            workers: w as u64,
            wall_ms: r.wall_ns as f64 / 1e6,
            guests_per_sec: gps,
            ns_per_guest_inst: r.ns_per_guest_inst(),
            speedup,
            deterministic,
            degraded: w as u64 > host,
        };
        println!(
            "{:>8} {:>10.1} {:>12.1} {:>14.2} {:>8.2}x{} {:>13}",
            p.workers,
            p.wall_ms,
            p.guests_per_sec,
            p.ns_per_guest_inst,
            p.speedup,
            if p.degraded { "*" } else { " " },
            if p.deterministic { "yes" } else { "NO" }
        );
        points.push(p);
    }
    let deterministic = points.iter().all(|p| p.deterministic);
    if !deterministic {
        println!("DETERMINISM VIOLATION: merged results depend on worker count");
    }
    if points.iter().any(|p| p.degraded) {
        println!(
            "*: degraded point — more workers than the host's {host} exposed \
             core(s); its speedup measures scheduling overlap, not parallel \
             throughput, and is excluded from scaling claims."
        );
    }
    if host < 4 {
        println!(
            "note: host exposes {host} core(s); the multi-worker speedup column \
             shows scheduling overlap only — the >=1.7x trajectory at 4 workers \
             needs a >=4-core host. The determinism gate is unaffected."
        );
    }
    println!();
    FleetResult {
        jobs: jobs.len() as u64,
        guest_icount,
        fp_traps,
        host_parallelism: host,
        deterministic,
        points,
    }
}

// ---------------------------------------------------------------------------
// E16: observability — stage wall-clock timing and its own overhead
// ---------------------------------------------------------------------------

/// One pipeline stage's wall-clock latency distribution, merged across the
/// fleet (sampled every `2^shift`-th trap).
#[derive(Debug, Clone)]
pub struct ObsStageRow {
    pub stage: String,
    /// Deterministic sample count (`fpvm_stage_samples_*`).
    pub samples: u64,
    pub p50_ns: u64,
    pub p95_ns: u64,
    pub p99_ns: u64,
    pub max_ns: u64,
}

/// The archived observability record (one `BENCH_obs.json` entry).
#[derive(Debug, Clone)]
pub struct ObsResult {
    pub jobs: u64,
    pub workers: u64,
    pub host_parallelism: u64,
    pub sample_shift: u64,
    pub fp_traps: u64,
    /// Median-pair fleet wall with the metrics plane on (ms).
    pub wall_on_ms: f64,
    /// Median-pair fleet wall with the plane never constructed (ms).
    pub wall_off_ms: f64,
    /// Observability's own cost: `max(0, on/off - 1)` in percent.
    pub overhead_pct: f64,
    pub overhead_budget_pct: f64,
    pub overhead_within_budget: bool,
    /// End-to-end ns/trap distribution (the frame stage).
    pub ns_per_trap_p50: u64,
    pub ns_per_trap_p99: u64,
    /// Heartbeat samples the fleet sampler took (incl. the sealed one).
    pub heartbeats: u64,
    pub stragglers: u64,
    /// Merged metrics bit-identical (deterministic view) at 1/2/4 workers.
    pub deterministic: bool,
    /// Merged Fig. 9 stats bit-identical with metrics on vs off.
    pub fig9_pinned: bool,
    pub stages: Vec<ObsStageRow>,
}

/// E16: measure the observability plane itself. Runs the fleet job set
/// with the metrics plane on vs never constructed (best-of-reps walls →
/// overhead %), reports the per-stage wall-clock latency distributions
/// and ns/trap tail from the merged histograms, re-gates the metrics-merge
/// determinism contract at 1/2/4 workers and the Fig. 9 pin, and writes
/// the Prometheus + JSONL exporter artifacts.
pub fn obs(smoke: bool) -> ObsResult {
    use crate::json::ToJson;
    use fpvm_fleet::{run_fleet, run_fleet_observed, smoke_jobs, FleetJob, ObsOptions};
    println!("== E16: observability — stage wall-clock timing and its own overhead ==");
    let ensemble = if smoke { 10 } else { 28 };
    let shift = 5u32; // sample every 32nd trap
    let metered: Vec<FleetJob> = smoke_jobs(ensemble)
        .into_iter()
        .map(|mut j| {
            j.config = FpvmConfig {
                metrics: true,
                metrics_sample_shift: shift,
                ..j.config
            };
            j
        })
        .collect();
    let plain = smoke_jobs(ensemble);
    let host = std::thread::available_parallelism()
        .map(|n| n.get() as u64)
        .unwrap_or(1);
    let workers = (host as usize).clamp(1, 4);
    // Warm-up, then paired reps: each rep runs off and on back-to-back,
    // so slow machine-wide drift cancels within a pair, and the median
    // pair discards reps a noise spike corrupted. (A plain min-of-walls
    // across reps flaps badly on a loaded 1-core host.)
    let _ = run_fleet(&plain[..2.min(plain.len())], workers);
    const REPS: usize = 7;
    let mut pairs: Vec<(u64, u64)> = Vec::new(); // (off_ns, on_ns)
    let mut off_view = None;
    let mut headline = None;
    for rep in 0..REPS {
        // Alternate which side runs first so monotonic drift (thermal,
        // co-tenant load ramping) doesn't systematically charge one side.
        let (off_ns, on) = if rep % 2 == 0 {
            let off = run_fleet(&plain, workers);
            let on = run_fleet_observed(&metered, workers, ObsOptions::default());
            (off, on)
        } else {
            let on = run_fleet_observed(&metered, workers, ObsOptions::default());
            let off = run_fleet(&plain, workers);
            (off, on)
        };
        off_view = Some(off_ns.merged.deterministic_view());
        pairs.push((off_ns.wall_ns, on.observed_wall_ns));
        headline = Some(on);
    }
    pairs.sort_by(|a, b| {
        let ra = a.1 as f64 / a.0.max(1) as f64;
        let rb = b.1 as f64 / b.0.max(1) as f64;
        ra.total_cmp(&rb)
    });
    // The lower-quartile pair: paired ratios still carry ± a few percent
    // of co-tenant noise, so the median flaps around a small true
    // overhead; the lower quartile reads the quietest credible pairing
    // without the min's zero bias.
    let (off_ns, on_ns) = pairs[pairs.len() / 4];
    let on = headline.expect("REPS > 0");
    // Fig. 9 pin: attaching the plane must not move a deterministic stat.
    let fig9_pinned = on.report.merged.deterministic_view() == off_view.expect("REPS > 0");
    let merged = on.merged_metrics.clone().expect("metrics on in every job");
    // Metrics-merge determinism: the job-order fold of per-job snapshots
    // is bit-identical (on its deterministic view) at 1, 2, and 4 workers.
    let base = run_fleet_observed(&metered, 1, ObsOptions::default())
        .merged_metrics
        .expect("metrics on in every job")
        .deterministic_view();
    let mut deterministic = merged.deterministic_view() == base;
    for wc in [2usize, 4] {
        let r = run_fleet_observed(&metered, wc, ObsOptions::default());
        deterministic &= r.merged_metrics.map(|m| m.deterministic_view()) == Some(base.clone());
    }
    // The per-stage latency table, from the merged histograms.
    println!(
        "{:>10} {:>9} {:>9} {:>9} {:>9} {:>10}",
        "stage", "samples", "p50_ns", "p95_ns", "p99_ns", "max_ns"
    );
    let mut stages = Vec::new();
    for stage in ["frame", "decode", "bind", "emulate", "commit", "ext_call"] {
        let Some(h) = merged.histogram(&format!("fpvm_stage_ns_{stage}")) else {
            continue;
        };
        if h.count() == 0 {
            continue;
        }
        let samples = merged
            .counter(&format!("fpvm_stage_samples_{stage}"))
            .unwrap_or(h.count());
        let row = ObsStageRow {
            stage: stage.to_string(),
            samples,
            p50_ns: h.p50(),
            p95_ns: h.p95(),
            p99_ns: h.p99(),
            max_ns: h.max(),
        };
        println!(
            "{:>10} {:>9} {:>9} {:>9} {:>9} {:>10}",
            row.stage, row.samples, row.p50_ns, row.p95_ns, row.p99_ns, row.max_ns
        );
        stages.push(row);
    }
    let trap_ns = merged.histogram("fpvm_trap_ns");
    let (trap_p50, trap_p99) = trap_ns.map(|h| (h.p50(), h.p99())).unwrap_or((0, 0));
    // Exporter artifacts: one Prometheus text file holding the fleet
    // registry plus the merged engine metrics, and the heartbeat series
    // as JSONL.
    let dir = PathBuf::from("target/experiments");
    let _ = std::fs::create_dir_all(&dir);
    let mut export = on.registry.clone();
    export.merge(&merged);
    let _ = std::fs::write(dir.join("metrics.prom"), export.to_prometheus());
    let mut series = String::new();
    for s in &on.samples {
        series.push_str(&s.to_json());
        series.push('\n');
    }
    let _ = std::fs::write(dir.join("metrics.jsonl"), series);
    let overhead_pct = if off_ns == 0 {
        0.0
    } else {
        ((on_ns as f64 - off_ns as f64) / off_ns as f64 * 100.0).max(0.0)
    };
    let budget = 3.0;
    let r = ObsResult {
        jobs: plain.len() as u64,
        workers: workers as u64,
        host_parallelism: host,
        sample_shift: shift as u64,
        fp_traps: merged.counter("fpvm_traps_total").unwrap_or(0),
        wall_on_ms: on_ns as f64 / 1e6,
        wall_off_ms: off_ns as f64 / 1e6,
        overhead_pct,
        overhead_budget_pct: budget,
        overhead_within_budget: overhead_pct <= budget,
        ns_per_trap_p50: trap_p50,
        ns_per_trap_p99: trap_p99,
        heartbeats: on.samples.len() as u64,
        stragglers: on.stragglers.len() as u64,
        deterministic,
        fig9_pinned,
        stages,
    };
    println!(
        "wall: on {:.1} ms vs off {:.1} ms -> overhead {:.2}% (budget {budget}%), \
         ns/trap p50 {} p99 {}",
        r.wall_on_ms, r.wall_off_ms, r.overhead_pct, r.ns_per_trap_p50, r.ns_per_trap_p99
    );
    println!(
        "heartbeats: {} sample(s), {} straggler(s); metrics-merge deterministic: {}; \
         Fig. 9 pinned: {}",
        r.heartbeats,
        r.stragglers,
        if r.deterministic { "yes" } else { "NO" },
        if r.fig9_pinned { "yes" } else { "NO" }
    );
    if !r.overhead_within_budget {
        println!(
            "note: overhead above budget — wall-clock noise on a loaded host; \
             the determinism gates are unaffected."
        );
    }
    println!("exported target/experiments/metrics.prom and metrics.jsonl");
    println!();
    r
}

// ---------------------------------------------------------------------------
// E17: raw interpreter speed — host-ns/trap and host-ns/guest-instruction
// ---------------------------------------------------------------------------

/// One workload's speed measurement (one `BENCH_speed.json` row).
#[derive(Debug, Clone)]
pub struct SpeedRow {
    pub workload: String,
    pub fp_traps: u64,
    pub icount: u64,
    /// Lower-quartile-pair wall with the emulate cache on (ns).
    pub wall_on_ns: u64,
    /// Same pair's wall with the cache off — bind every trap (ns).
    pub wall_off_ns: u64,
    /// Host ns per FP trap, emulate cache on.
    pub ns_per_trap: f64,
    /// Host ns per guest instruction retired, emulate cache on.
    pub ns_per_guest_inst: f64,
    /// `wall_off / wall_on`: > 1 means the cache pays on this workload.
    pub speedup: f64,
    /// Deterministic views + outputs bit-identical across ecache
    /// on / off / passthrough-policy and across engine reuse.
    pub deterministic: bool,
}

/// The archived E17 record (one `BENCH_speed.json` entry).
#[derive(Debug, Clone)]
pub struct SpeedResult {
    pub workloads: u64,
    pub reps: u64,
    /// Microbench: one full bind of the 3-inst mix (ns).
    pub bind_ns: f64,
    /// Microbench: resolving the memoized plans for the same mix (ns).
    pub resolve_ns: f64,
    /// `resolve_ns / bind_ns`: < 1 means the cached hit path is cheaper.
    pub resolve_vs_bind: f64,
    /// Geometric-mean end-to-end speedup across workloads.
    pub speedup_geomean: f64,
    /// Every row's determinism gate held.
    pub deterministic: bool,
    /// Fig. 9 deterministic stats bit-identical across all three emulate
    /// cache modes (fbench + lorenz, bigfloat-200, R815).
    pub fig9_pinned: bool,
    pub rows: Vec<SpeedRow>,
}

/// E17: raw interpreter speed. Measures host-ns/trap and host-ns/guest-
/// instruction across all ten workloads (Vanilla arithmetic so the trap
/// path, not the arithmetic system, dominates), with the emulate cache on
/// vs off in alternating pairs (lower-quartile pair by ratio, the E16
/// protocol); gates per-workload determinism across the three emulate
/// cache modes and engine reuse; pins the Fig. 9 cycle accounting across
/// the same modes on the paper configuration; and microbenches the hit
/// path (`plan.resolve`) against bind-every-trap.
pub fn speed(smoke: bool) -> SpeedResult {
    use crate::microbench::{bench_ns, black_box};
    use fpvm_analysis::analyze_and_patch;
    use fpvm_core::{bind, plan, PassthroughEmulateCache, Planability};
    use fpvm_machine::{Gpr, Inst, Mem, Xmm, XM};

    println!("== E17: raw interpreter speed — host-ns/trap, ns/guest-inst (Vanilla, R815) ==");
    let size = if smoke { Size::Tiny } else { Size::S };
    let reps = if smoke { 3usize } else { 7 };

    // -- Microbench: the hit path against bind-every-trap ------------------
    let mut mb = Machine::new(CostModel::r815());
    mb.gpr[Gpr::RSP.0 as usize] = 0x40_0000;
    let mix = [
        Inst::AddSd {
            dst: Xmm(0),
            src: XM::Reg(Xmm(1)),
        },
        Inst::MulSd {
            dst: Xmm(2),
            src: XM::Mem(Mem::base_disp(Gpr::RSP, 8)),
        },
        Inst::MulPd {
            dst: Xmm(3),
            src: XM::Mem(Mem::base_disp(Gpr::RSP, 16)),
        },
    ];
    let plans: Vec<_> = mix
        .iter()
        .map(|i| match plan(i, 0x2000) {
            Planability::Static(p) => p,
            other => panic!("microbench mix must be statically plannable, got {other:?}"),
        })
        .collect();
    let bind_ns = bench_ns("speed/bind_every_trap_x3", || {
        let mut lanes = 0u32;
        for i in &mix {
            lanes += bind(&mb, i, 0x2000)
                .map(|b| b.lanes.iter().flatten().count() as u32)
                .unwrap_or(0);
        }
        black_box(lanes)
    });
    let resolve_ns = bench_ns("speed/plan_resolve_x3", || {
        let mut lanes = 0u32;
        for p in &plans {
            lanes += p.resolve(&mb).lanes.iter().flatten().count() as u32;
        }
        black_box(lanes)
    });
    println!(
        "hit path: plan.resolve is {:.2}x the bind cost (< 1.0 means the cache pays per trap)",
        resolve_ns / bind_ns
    );
    println!();

    // -- Per-workload timing + determinism ---------------------------------
    println!(
        "{:<18} {:>10} {:>11} {:>11} {:>11} {:>9} {:>8} {:>13}",
        "benchmark", "traps", "wall_on_ms", "ns/trap", "ns/g-inst", "speedup", "determ.", "icount"
    );
    let ecache_off = |cfg: FpvmConfig| FpvmConfig {
        emulate_cache: false,
        ..cfg
    };
    let mut rows: Vec<SpeedRow> = Vec::new();
    for w in all_workloads(size) {
        let c = compile(&w.module, CompileMode::Native);
        let patched = analyze_and_patch(&c.program);
        let run_one = |cfg: FpvmConfig, vm: &mut Fpvm<Vanilla>| {
            let mut m = Machine::new(CostModel::r815());
            m.load_program(&patched.program);
            vm.recycle(cfg);
            vm.set_side_table(patched.side_table.clone());
            let r = vm.run(&mut m);
            assert_eq!(r.exit, fpvm_core::ExitReason::Halted, "{}", w.name);
            (r, m.output)
        };
        let fresh_run = |cfg: FpvmConfig| {
            let mut vm = Fpvm::new(Vanilla, cfg);
            run_one(cfg, &mut vm)
        };

        // Determinism gate: the three emulate-cache modes and an engine
        // reused across runs must agree on the deterministic view and the
        // guest output.
        let (r_on, out_on) = fresh_run(FpvmConfig::default());
        let (r_off, out_off) = fresh_run(ecache_off(FpvmConfig::default()));
        let (r_pass, out_pass) = {
            let mut vm = Fpvm::new(Vanilla, FpvmConfig::default());
            vm.set_emulate_cache(Box::new(PassthroughEmulateCache));
            let mut m = Machine::new(CostModel::r815());
            m.load_program(&patched.program);
            vm.set_side_table(patched.side_table.clone());
            let r = vm.run(&mut m);
            (r, m.output)
        };
        let (r_reuse, out_reuse) = {
            let mut vm = Fpvm::new(Vanilla, FpvmConfig::default());
            let _ = run_one(FpvmConfig::default(), &mut vm);
            run_one(FpvmConfig::default(), &mut vm)
        };
        let base_view = r_on.stats.deterministic_view();
        let deterministic = [&r_off, &r_pass, &r_reuse]
            .iter()
            .all(|r| r.stats.deterministic_view() == base_view)
            && out_off == out_on
            && out_pass == out_on
            && out_reuse == out_on;

        // Timing: alternating (off, on) pairs; the lower-quartile pair by
        // on/off ratio reads the quietest credible pairing (E16 protocol).
        let _ = fresh_run(FpvmConfig::default()); // warm-up
        let mut pairs: Vec<(u64, u64)> = Vec::new(); // (off_ns, on_ns)
        for rep in 0..reps {
            let (off, on) = if rep % 2 == 0 {
                let off = fresh_run(ecache_off(FpvmConfig::default())).0;
                let on = fresh_run(FpvmConfig::default()).0;
                (off, on)
            } else {
                let on = fresh_run(FpvmConfig::default()).0;
                let off = fresh_run(ecache_off(FpvmConfig::default())).0;
                (off, on)
            };
            pairs.push((off.wall_ns, on.wall_ns));
        }
        pairs.sort_by(|a, b| {
            let ra = a.1 as f64 / a.0.max(1) as f64;
            let rb = b.1 as f64 / b.0.max(1) as f64;
            ra.total_cmp(&rb)
        });
        let (wall_off_ns, wall_on_ns) = pairs[pairs.len() / 4];
        let traps = r_on.stats.fp_traps;
        let row = SpeedRow {
            workload: w.name.to_string(),
            fp_traps: traps,
            icount: r_on.icount,
            wall_on_ns,
            wall_off_ns,
            ns_per_trap: wall_on_ns as f64 / traps.max(1) as f64,
            ns_per_guest_inst: wall_on_ns as f64 / r_on.icount.max(1) as f64,
            speedup: wall_off_ns as f64 / wall_on_ns.max(1) as f64,
            deterministic,
        };
        println!(
            "{:<18} {:>10} {:>11.2} {:>11.0} {:>11.1} {:>8.2}x {:>8} {:>13}",
            row.workload,
            commas(row.fp_traps),
            row.wall_on_ns as f64 / 1e6,
            row.ns_per_trap,
            row.ns_per_guest_inst,
            row.speedup,
            if row.deterministic { "yes" } else { "NO" },
            commas(row.icount)
        );
        rows.push(row);
    }
    let deterministic = rows.iter().all(|r| r.deterministic);
    let speedup_geomean = (rows
        .iter()
        .map(|r| r.speedup.max(f64::MIN_POSITIVE).ln())
        .sum::<f64>()
        / rows.len().max(1) as f64)
        .exp();

    // -- Fig. 9 pin on the paper configuration -----------------------------
    // The deterministic cycle accounting must be bit-identical whether the
    // emulate cache is on, off, or a policy that never caches.
    let mut fig9_pinned = true;
    for w in [
        fpvm_workloads::fbench::workload(Size::Tiny),
        lorenz::workload(Size::Tiny),
    ] {
        let run_mode = |cfg: FpvmConfig, pass: bool| {
            let (report, _, _) = run_hybrid_with(
                &w,
                BigFloatCtx::new(PAPER_PREC),
                CostModel::r815(),
                cfg,
                |vm| {
                    if pass {
                        vm.set_emulate_cache(Box::new(PassthroughEmulateCache));
                    }
                },
            );
            report.stats.deterministic_view()
        };
        let on = run_mode(FpvmConfig::default(), false);
        let off = run_mode(ecache_off(FpvmConfig::default()), false);
        let pass = run_mode(FpvmConfig::default(), true);
        fig9_pinned &= on == off && on == pass;
    }
    println!();
    println!(
        "geomean speedup {speedup_geomean:.2}x; deterministic: {}; Fig. 9 pinned \
         across ecache modes: {}",
        if deterministic { "yes" } else { "NO" },
        if fig9_pinned { "yes" } else { "NO" }
    );
    if !deterministic {
        println!("DETERMINISM VIOLATION: an emulate-cache mode changed a deterministic stat");
    }
    if !fig9_pinned {
        println!("FIG. 9 PIN VIOLATION: cycle accounting moved with the emulate cache");
    }
    println!();
    SpeedResult {
        workloads: rows.len() as u64,
        reps: reps as u64,
        bind_ns,
        resolve_ns,
        resolve_vs_bind: resolve_ns / bind_ns,
        speedup_geomean,
        deterministic,
        fig9_pinned,
        rows,
    }
}

// ---------------------------------------------------------------------------
// E18: superblock dispatch — ns/guest-instruction, blocks on vs off
// ---------------------------------------------------------------------------

/// One workload's superblock measurement (one `BENCH_speed.json` row).
#[derive(Debug, Clone)]
pub struct SblockRow {
    pub workload: String,
    pub icount: u64,
    /// Blocks formed in the timed on-run's machine.
    pub blocks_built: u64,
    /// Whole-block dispatches in the timed on-run.
    pub block_dispatches: u64,
    /// Instructions retired through block dispatch in the timed on-run.
    pub block_insts: u64,
    /// Lower-quartile-pair wall with superblocks on (ns).
    pub wall_on_ns: u64,
    /// Same pair's wall with superblocks off — the stepped loop (ns).
    pub wall_off_ns: u64,
    /// Host ns per guest instruction, superblocks on.
    pub ns_per_guest_inst_on: f64,
    /// Host ns per guest instruction, superblocks off.
    pub ns_per_guest_inst_off: f64,
    /// `wall_off / wall_on`: > 1 means block dispatch pays here.
    pub speedup: f64,
    /// Deterministic views, machine accounting (`icount`/`fp_icount`) and
    /// guest outputs bit-identical across superblocks on / off / capped-3
    /// / passthrough (cap 1) and engine reuse.
    pub deterministic: bool,
}

/// The archived E18 record (one `BENCH_speed.json` entry; the `experiment`
/// field discriminates sblock rows from E17 speed rows in the shared
/// trajectory file).
#[derive(Debug, Clone)]
pub struct SblockResult {
    pub experiment: String,
    pub workloads: u64,
    pub reps: u64,
    /// Geometric-mean end-to-end speedup (off/on) across workloads.
    pub speedup_geomean: f64,
    /// Every row's determinism gate held.
    pub deterministic: bool,
    /// Fig. 9 deterministic stats bit-identical across superblocks
    /// on/off/capped/passthrough (fbench + lorenz, bigfloat-200, R815).
    pub fig9_pinned: bool,
    /// The same pin under trap-and-patch (blocks truncated at patched
    /// sites must re-form without moving a deterministic stat).
    pub patch_pinned: bool,
    /// Merged fleet deterministic views identical across 1/2/4 workers
    /// with superblocks on, and identical to a superblocks-off fleet.
    pub fleet_pinned: bool,
    pub rows: Vec<SblockRow>,
}

/// E18: superblock dispatch. Measures host-ns/guest-instruction across all
/// ten workloads (Vanilla arithmetic, R815) with the machine's superblock
/// engine on vs off in alternating pairs (lower-quartile pair by ratio,
/// the E16/E17 protocol); gates per-workload determinism across superblock
/// on/off/capped/passthrough modes and engine reuse; pins the Fig. 9 cycle
/// accounting across the same modes on the paper configuration, under
/// trap-and-patch, and across 1/2/4 fleet workers.
pub fn sblock(smoke: bool) -> SblockResult {
    use fpvm_analysis::analyze_and_patch;

    println!("== E18: superblock dispatch — ns/guest-inst, blocks on/off (Vanilla, R815) ==");
    let size = if smoke { Size::Tiny } else { Size::S };
    let reps = if smoke { 3usize } else { 7 };
    let sb_off = |cfg: FpvmConfig| FpvmConfig {
        superblocks: false,
        ..cfg
    };
    let sb_cap = |cfg: FpvmConfig, cap: u32| FpvmConfig {
        superblock_cap: cap,
        ..cfg
    };

    println!(
        "{:<18} {:>13} {:>11} {:>11} {:>11} {:>9} {:>8} {:>11}",
        "benchmark",
        "icount",
        "wall_on_ms",
        "ns/gi on",
        "ns/gi off",
        "speedup",
        "determ.",
        "blk insts"
    );
    let mut rows: Vec<SblockRow> = Vec::new();
    for w in all_workloads(size) {
        let c = compile(&w.module, CompileMode::Native);
        let patched = analyze_and_patch(&c.program);
        // Returns the report, the guest output, and the machine's
        // superblock counters (host-side observability).
        let fresh_run = |cfg: FpvmConfig| {
            let mut vm = Fpvm::new(Vanilla, cfg);
            let mut m = Machine::new(CostModel::r815());
            m.load_program(&patched.program);
            vm.set_side_table(patched.side_table.clone());
            let r = vm.run(&mut m);
            assert_eq!(r.exit, fpvm_core::ExitReason::Halted, "{}", w.name);
            let st = m.superblock_stats();
            (r, m.output, st)
        };

        // Determinism gate: four superblock modes plus an engine reused
        // across two runs must agree on the deterministic view, the raw
        // machine accounting, and the guest output.
        let (r_on, out_on, _) = fresh_run(FpvmConfig::default());
        let (r_off, out_off, _) = fresh_run(sb_off(FpvmConfig::default()));
        let (r_c3, out_c3, _) = fresh_run(sb_cap(FpvmConfig::default(), 3));
        let (r_c1, out_c1, _) = fresh_run(sb_cap(FpvmConfig::default(), 1));
        let (r_reuse, out_reuse, _) = {
            let mut vm = Fpvm::new(Vanilla, FpvmConfig::default());
            let run_one = |vm: &mut Fpvm<Vanilla>| {
                let mut m = Machine::new(CostModel::r815());
                m.load_program(&patched.program);
                vm.recycle(FpvmConfig::default());
                vm.set_side_table(patched.side_table.clone());
                let r = vm.run(&mut m);
                assert_eq!(r.exit, fpvm_core::ExitReason::Halted, "{}", w.name);
                let st = m.superblock_stats();
                (r, m.output, st)
            };
            let _ = run_one(&mut vm);
            run_one(&mut vm)
        };
        let base_view = r_on.stats.deterministic_view();
        // Raw `cycles` includes host-measured emulate time, so the raw
        // machine accounting compared here is icount/fp_icount; exact
        // cycle equality is pinned at machine level (fpvm_machine::block).
        let accounting = |r: &fpvm_core::RunReport| (r.icount, r.fp_icount);
        let deterministic = [&r_off, &r_c3, &r_c1, &r_reuse].iter().all(|r| {
            r.stats.deterministic_view() == base_view && accounting(r) == accounting(&r_on)
        }) && out_off == out_on
            && out_c3 == out_on
            && out_c1 == out_on
            && out_reuse == out_on;

        // Timing: alternating (off, on) pairs; lower-quartile pair by
        // on/off ratio (E16/E17 protocol). Each pair records
        // (off_ns, on_ns, the on-run's superblock counters).
        let _ = fresh_run(FpvmConfig::default()); // warm-up
        let mut pairs: Vec<(u64, u64, fpvm_machine::BlockCacheStats)> = Vec::new();
        for rep in 0..reps {
            let (off, on) = if rep % 2 == 0 {
                let off = fresh_run(sb_off(FpvmConfig::default()));
                let on = fresh_run(FpvmConfig::default());
                (off, on)
            } else {
                let on = fresh_run(FpvmConfig::default());
                let off = fresh_run(sb_off(FpvmConfig::default()));
                (off, on)
            };
            pairs.push((off.0.wall_ns, on.0.wall_ns, on.2));
        }
        pairs.sort_by(|a, b| {
            let ra = a.1 as f64 / a.0.max(1) as f64;
            let rb = b.1 as f64 / b.0.max(1) as f64;
            ra.total_cmp(&rb)
        });
        let (wall_off_ns, wall_on_ns, st) = pairs[pairs.len() / 4];
        let row = SblockRow {
            workload: w.name.to_string(),
            icount: r_on.icount,
            blocks_built: st.built,
            block_dispatches: st.dispatches,
            block_insts: st.block_insts,
            wall_on_ns,
            wall_off_ns,
            ns_per_guest_inst_on: wall_on_ns as f64 / r_on.icount.max(1) as f64,
            ns_per_guest_inst_off: wall_off_ns as f64 / r_on.icount.max(1) as f64,
            speedup: wall_off_ns as f64 / wall_on_ns.max(1) as f64,
            deterministic,
        };
        println!(
            "{:<18} {:>13} {:>11.2} {:>11.1} {:>11.1} {:>8.2}x {:>8} {:>11}",
            row.workload,
            commas(row.icount),
            row.wall_on_ns as f64 / 1e6,
            row.ns_per_guest_inst_on,
            row.ns_per_guest_inst_off,
            row.speedup,
            if row.deterministic { "yes" } else { "NO" },
            commas(row.block_insts),
        );
        rows.push(row);
    }
    let deterministic = rows.iter().all(|r| r.deterministic);
    let speedup_geomean = (rows
        .iter()
        .map(|r| r.speedup.max(f64::MIN_POSITIVE).ln())
        .sum::<f64>()
        / rows.len().max(1) as f64)
        .exp();

    // -- Fig. 9 pin on the paper configuration -----------------------------
    // The deterministic cycle accounting must be bit-identical whether the
    // machine dispatches superblocks, steps, or caps blocks short.
    let mut fig9_pinned = true;
    for w in [
        fpvm_workloads::fbench::workload(Size::Tiny),
        lorenz::workload(Size::Tiny),
    ] {
        let run_mode = |cfg: FpvmConfig| {
            let (report, out, _) = run_hybrid_with(
                &w,
                BigFloatCtx::new(PAPER_PREC),
                CostModel::r815(),
                cfg,
                |_| {},
            );
            (report.stats.deterministic_view(), out)
        };
        let on = run_mode(FpvmConfig::default());
        for cfg in [
            sb_off(FpvmConfig::default()),
            sb_cap(FpvmConfig::default(), 3),
            sb_cap(FpvmConfig::default(), 1),
        ] {
            let m = run_mode(cfg);
            fig9_pinned &= m == on;
        }
    }

    // -- The same pin under trap-and-patch ---------------------------------
    // Blocks truncated at patched sites must re-form after invalidation
    // without moving a deterministic stat.
    let tp = FpvmConfig {
        trap_and_patch: true,
        ..FpvmConfig::default()
    };
    let w = lorenz::workload(Size::Tiny);
    let run_tp = |cfg: FpvmConfig| {
        let (report, out, _) = run_hybrid_with(
            &w,
            BigFloatCtx::new(PAPER_PREC),
            CostModel::r815(),
            cfg,
            |_| {},
        );
        (report.stats, out)
    };
    let (tp_on, tp_out_on) = run_tp(tp);
    let (tp_off, tp_out_off) = run_tp(sb_off(tp));
    let patch_pinned = tp_on.deterministic_view() == tp_off.deterministic_view()
        && tp_out_on == tp_out_off
        && tp_on.sites_patched > 0;

    // -- Fleet pin: worker-count and superblock independence ---------------
    // Merged deterministic views identical at 1/2/4 workers with
    // superblocks on, and identical to a superblocks-off fleet — machine
    // reuse across jobs must not perturb anything.
    let jobs = fpvm_fleet::smoke_jobs(2);
    let views: Vec<_> = [1usize, 2, 4]
        .iter()
        .map(|&wk| fpvm_fleet::run_fleet(&jobs, wk).merged.deterministic_view())
        .collect();
    let mut jobs_off = jobs.clone();
    for j in &mut jobs_off {
        j.config.superblocks = false;
    }
    let view_off = fpvm_fleet::run_fleet(&jobs_off, 1)
        .merged
        .deterministic_view();
    let fleet_pinned = views.iter().all(|v| *v == views[0]) && view_off == views[0];

    println!();
    println!(
        "geomean speedup {speedup_geomean:.2}x; deterministic: {}; Fig. 9 pinned: {}; \
         trap-and-patch pinned: {}; fleet pinned (1/2/4 workers): {}",
        if deterministic { "yes" } else { "NO" },
        if fig9_pinned { "yes" } else { "NO" },
        if patch_pinned { "yes" } else { "NO" },
        if fleet_pinned { "yes" } else { "NO" }
    );
    if !deterministic {
        println!("DETERMINISM VIOLATION: a superblock mode changed a deterministic stat");
    }
    if !fig9_pinned {
        println!("FIG. 9 PIN VIOLATION: cycle accounting moved with superblock dispatch");
    }
    if !patch_pinned {
        println!("TRAP-AND-PATCH PIN VIOLATION: superblocks interact with patching");
    }
    if !fleet_pinned {
        println!("FLEET PIN VIOLATION: merged views moved with superblocks/worker count");
    }
    println!();
    SblockResult {
        experiment: "sblock".to_string(),
        workloads: rows.len() as u64,
        reps: reps as u64,
        speedup_geomean,
        deterministic,
        fig9_pinned,
        patch_pinned,
        fleet_pinned,
        rows,
    }
}

// ---------------------------------------------------------------------------
// JSON archival encodings
// ---------------------------------------------------------------------------

json_struct!(SpeedRow {
    workload,
    fp_traps,
    icount,
    wall_on_ns,
    wall_off_ns,
    ns_per_trap,
    ns_per_guest_inst,
    speedup,
    deterministic,
});

json_struct!(SpeedResult {
    workloads,
    reps,
    bind_ns,
    resolve_ns,
    resolve_vs_bind,
    speedup_geomean,
    deterministic,
    fig9_pinned,
    rows,
});

json_struct!(SblockRow {
    workload,
    icount,
    blocks_built,
    block_dispatches,
    block_insts,
    wall_on_ns,
    wall_off_ns,
    ns_per_guest_inst_on,
    ns_per_guest_inst_off,
    speedup,
    deterministic,
});

json_struct!(SblockResult {
    experiment,
    workloads,
    reps,
    speedup_geomean,
    deterministic,
    fig9_pinned,
    patch_pinned,
    fleet_pinned,
    rows,
});

json_struct!(ObsStageRow {
    stage,
    samples,
    p50_ns,
    p95_ns,
    p99_ns,
    max_ns,
});

json_struct!(ObsResult {
    jobs,
    workers,
    host_parallelism,
    sample_shift,
    fp_traps,
    wall_on_ms,
    wall_off_ms,
    overhead_pct,
    overhead_budget_pct,
    overhead_within_budget,
    ns_per_trap_p50,
    ns_per_trap_p99,
    heartbeats,
    stragglers,
    deterministic,
    fig9_pinned,
    stages,
});

json_struct!(fpvm_fleet::FleetSample {
    t_ns,
    jobs_completed,
    queue_depth,
    busy_workers,
    guests_per_sec,
    sealed,
});

json_struct!(FleetPoint {
    workers,
    wall_ms,
    guests_per_sec,
    ns_per_guest_inst,
    speedup,
    deterministic,
    degraded,
});

json_struct!(FleetResult {
    jobs,
    guest_icount,
    fp_traps,
    host_parallelism,
    deterministic,
    points,
});

json_struct!(fpvm_analysis::AnalysisStats {
    instructions,
    blocks,
    functions,
    contexts,
    loads_total,
    loads_proven_safe,
    rounds,
    sinks_found,
    sinks_demoted_live,
    sinks_patched,
    sinks_skipped_table_full,
    sinks_skipped_straddle,
});

json_struct!(AuditReasonRow {
    reason,
    confirmed,
    spurious,
    unexercised,
    missed,
    precision,
    recall,
});

json_struct!(AuditRow {
    workload,
    heap_model,
    analysis,
    confirmed,
    spurious,
    unexercised,
    missed,
    tainted_only,
    precision,
    recall,
    correctness_traps,
    wasted_cycles,
    per_reason,
});

json_struct!(ReasonFlatRow {
    workload,
    config,
    reason,
    confirmed,
    spurious,
    unexercised,
    missed,
    precision,
    recall,
});

json_struct!(Vsa2Row {
    workload,
    config,
    sinks_found,
    sinks_demoted_live,
    contexts,
    skipped,
    confirmed,
    spurious,
    unexercised,
    missed,
    tainted_only,
    precision,
    recall,
    correctness_traps,
    wasted_cycles,
    per_reason,
});

json_struct!(Vsa2Result {
    rows,
    outputs_identical,
    accounting_identical,
    missed_total,
    skipped_total,
    enzo_baseline_sinks,
    enzo_all_sinks,
    enzo_baseline_spurious,
    enzo_all_spurious,
});

json_struct!(Fig9Row {
    workload,
    traps,
    avg_cycles_per_trap,
    hardware,
    kernel,
    user_delivery,
    decode,
    bind,
    emulate,
    gc,
    correctness_dispatch,
    correctness_handler,
});
json_struct!(Fig10Row {
    workload,
    passes,
    alive_avg,
    freed_total,
    latency_us_avg,
    collected_fraction,
});
json_struct!(Fig11Row {
    log2_prec,
    prec_bits,
    add_cycles,
    sub_cycles,
    mul_cycles,
    div_cycles,
});
json_struct!(Fig12Row {
    benchmark,
    config,
    slowdown,
});
json_struct!(Fig13Result {
    vanilla_identical,
    samples,
    final_ieee,
    final_mpfr,
    divergence_norm,
});
json_struct!(Fig14Row {
    machine,
    user_delivery_cycles,
    kernel_delivery_cycles,
    ratio,
    pipeline_interrupt_cycles,
});
json_struct!(ApproachRow {
    approach,
    cycles,
    fp_traps,
    patch_fast,
    patch_slow,
    output_identical,
});
json_struct!(TrapPatchPoc {
    trap_dispatch_cycles,
    patch_check_pass_cycles,
    patch_slow_path_cycles,
});
json_struct!(ProspectRow {
    variant,
    avg_trap_cycles,
    lorenz_slowdown,
});
json_struct!(AnalysisRow {
    workload,
    instructions,
    functions,
    loads_total,
    loads_proven_safe,
    sinks_found,
    sinks_patched,
    sinks_skipped,
    correctness_traps_taken,
    demote_rate,
});
json_struct!(PositRow {
    system,
    final_x,
    delta_vs_ieee,
});
json_struct!(ConformRow {
    suite,
    cases,
    mismatches,
    oracle_conflicts,
    permitted,
    reproducers,
    clean,
});
json_struct!(HotSiteRow {
    rip,
    traps,
    correctness_traps,
    patch_fast,
    patch_slow,
    cycles_total,
    dominant,
    patched,
});
json_struct!(HistRow {
    component,
    count,
    mean,
    max,
    buckets,
});
json_struct!(TraceProfileResult {
    workload,
    trace_path,
    trace_lines,
    profiler_events,
    sites,
    hot_sites,
    histograms,
    arena,
});
json_struct!(PguidedResult {
    workload,
    top_k,
    profiled_sites,
    top_rip,
    top_rip_patched_by_heuristic,
    baseline_cycles,
    heuristic_cycles,
    heuristic_sites_patched,
    guided_cycles,
    guided_sites_patched,
    guided_vs_heuristic,
});
