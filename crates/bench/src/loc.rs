//! §5.5 "software engineering complexity": lines-of-code inventory.

use crate::json::json_struct;
use std::path::Path;

/// LoC for one component.
#[derive(Debug, Clone)]
pub struct LocRow {
    /// Component (crate) name.
    pub component: String,
    /// Role in the reproduction.
    pub role: &'static str,
    /// Non-blank lines of Rust.
    pub lines: usize,
}

json_struct!(LocRow {
    component,
    role,
    lines,
});

fn count_dir(dir: &Path) -> usize {
    let mut total = 0;
    if let Ok(entries) = std::fs::read_dir(dir) {
        for e in entries.flatten() {
            let p = e.path();
            if p.is_dir() {
                total += count_dir(&p);
            } else if p.extension().is_some_and(|x| x == "rs") {
                if let Ok(s) = std::fs::read_to_string(&p) {
                    total += s.lines().filter(|l| !l.trim().is_empty()).count();
                }
            }
        }
    }
    total
}

/// Count lines per crate (paper §5.5 reports 6,300 lines of C/C++ for the
/// trap-and-emulate component + 1,484 lines of Python for the analyzer +
/// ~350 lines per arithmetic binding).
pub fn loc_table(repo_root: &Path) -> Vec<LocRow> {
    println!("== §5.5 software engineering complexity (non-blank Rust lines) ==");
    let components: [(&str, &str); 9] = [
        (
            "crates/core",
            "trap-and-emulate runtime + GC + trap-and-patch",
        ),
        ("crates/analysis", "static analysis (VSA) + binary patcher"),
        (
            "crates/arith",
            "arithmetic systems (vanilla/bigfloat/posit) + softfp",
        ),
        ("crates/machine", "x64-FP machine substrate"),
        ("crates/ir", "IR + compiler (incl. compiler-based FPVM)"),
        ("crates/nanbox", "NaN-boxing"),
        ("crates/workloads", "benchmark suite + references"),
        ("crates/bench", "experiment harness"),
        ("tests", "cross-crate integration tests"),
    ];
    let mut rows = Vec::new();
    for (dir, role) in components {
        let lines = count_dir(&repo_root.join(dir));
        println!("{dir:<20} {lines:>7}  {role}");
        rows.push(LocRow {
            component: dir.to_string(),
            role,
            lines,
        });
    }
    let total: usize = rows.iter().map(|r| r.lines).sum();
    println!("{:<20} {total:>7}", "total");
    println!("(paper: 6,300 C/C++ trap-and-emulate, 1,484 Python analyzer, ~350/binding)\n");
    rows
}
