//! Trajectory-style `BENCH_*.json` writers.
//!
//! Earlier PRs overwrote `BENCH_fleet.json` on every run, so the archived
//! perf record only ever held the latest point. This module appends each
//! run as one entry of a growing trajectory instead:
//!
//! ```json
//! {"schema_version":1,"experiment":"fleet","entries":[
//!   {"meta":{"unix_ts":...,"host_parallelism":...,"smoke":false},"data":{...}},
//!   ...
//! ]}
//! ```
//!
//! Legacy single-object files (the pre-trajectory format) are wrapped in
//! place as the first entry, with `{"legacy":true}` metadata, so no history
//! is lost on upgrade. Appending splices before the trailing `]` of
//! `entries`, which is always the last array in the document — the writer
//! never re-parses or re-serializes earlier entries.

use std::path::Path;

/// Format version stamped into every trajectory file.
pub const SCHEMA_VERSION: u64 = 1;

/// Standard per-run metadata: wall-clock epoch seconds, the host's exposed
/// parallelism, and whether this was a smoke-sized run.
pub fn run_meta(smoke: bool) -> String {
    let unix_ts = std::time::SystemTime::now()
        .duration_since(std::time::UNIX_EPOCH)
        .map(|d| d.as_secs())
        .unwrap_or(0);
    let host = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);
    format!("{{\"unix_ts\":{unix_ts},\"host_parallelism\":{host},\"smoke\":{smoke}}}")
}

/// Append one `{"meta":...,"data":...}` entry to the trajectory at `path`,
/// creating the file (or wrapping a legacy single-object file) as needed.
/// `meta_json` and `data_json` must each be a complete JSON value.
pub fn append_entry(
    path: &Path,
    experiment: &str,
    meta_json: &str,
    data_json: &str,
) -> std::io::Result<()> {
    let entry = format!("{{\"meta\":{meta_json},\"data\":{data_json}}}");
    let head = format!("{{\"schema_version\":{SCHEMA_VERSION},\"experiment\":\"{experiment}\"");
    let existing = match std::fs::read_to_string(path) {
        Ok(s) if !s.trim().is_empty() => Some(s),
        _ => None,
    };
    let out = match existing {
        None => format!("{head},\"entries\":[{entry}]}}"),
        Some(s) if s.trim_start().starts_with("{\"schema_version\"") => {
            // Already a trajectory: splice before the closing `]` of
            // `entries` (the last `]` in the document).
            let Some(close) = s.rfind(']') else {
                // Corrupt tail; start the trajectory over rather than
                // writing unparseable JSON.
                return std::fs::write(path, format!("{head},\"entries\":[{entry}]}}"));
            };
            let empty = s[..close].trim_end().ends_with('[');
            let sep = if empty { "" } else { "," };
            format!("{}{sep}{entry}{}", &s[..close], &s[close..])
        }
        Some(s) => {
            // Legacy single-object record: keep it as entry zero.
            let legacy = s.trim();
            format!(
                "{head},\"entries\":[{{\"meta\":{{\"legacy\":true}},\"data\":{legacy}}},{entry}]}}"
            )
        }
    };
    std::fs::write(path, out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::path::PathBuf;

    fn scratch(name: &str) -> PathBuf {
        let p = std::env::temp_dir().join(format!("fpvm_traj_{}_{name}.json", std::process::id()));
        let _ = std::fs::remove_file(&p);
        p
    }

    #[test]
    fn fresh_file_holds_one_entry() {
        let p = scratch("fresh");
        append_entry(&p, "obs", "{\"smoke\":true}", "{\"x\":1}").unwrap();
        let s = std::fs::read_to_string(&p).unwrap();
        assert_eq!(
            s,
            "{\"schema_version\":1,\"experiment\":\"obs\",\
             \"entries\":[{\"meta\":{\"smoke\":true},\"data\":{\"x\":1}}]}"
        );
        let _ = std::fs::remove_file(&p);
    }

    #[test]
    fn appends_grow_the_entries_array() {
        let p = scratch("append");
        append_entry(&p, "fleet", "{\"run\":1}", "{\"x\":1}").unwrap();
        append_entry(&p, "fleet", "{\"run\":2}", "{\"x\":2}").unwrap();
        append_entry(&p, "fleet", "{\"run\":3}", "{\"x\":3}").unwrap();
        let s = std::fs::read_to_string(&p).unwrap();
        assert_eq!(s.matches("\"data\"").count(), 3);
        assert_eq!(s.matches("\"schema_version\":1").count(), 1);
        assert!(s.ends_with("{\"meta\":{\"run\":3},\"data\":{\"x\":3}}]}"));
        // Entries stay in append order.
        assert!(s.find("\"run\":1").unwrap() < s.find("\"run\":2").unwrap());
        assert!(s.find("\"run\":2").unwrap() < s.find("\"run\":3").unwrap());
        let _ = std::fs::remove_file(&p);
    }

    #[test]
    fn legacy_single_object_is_wrapped_as_entry_zero() {
        let p = scratch("legacy");
        std::fs::write(&p, "{\"jobs\":54,\"points\":[{\"workers\":1}]}").unwrap();
        append_entry(&p, "fleet", "{\"run\":2}", "{\"jobs\":54}").unwrap();
        let s = std::fs::read_to_string(&p).unwrap();
        assert!(s.starts_with("{\"schema_version\":1,\"experiment\":\"fleet\""));
        assert!(s.contains(
            "{\"meta\":{\"legacy\":true},\"data\":{\"jobs\":54,\"points\":[{\"workers\":1}]}}"
        ));
        assert!(s.ends_with("{\"meta\":{\"run\":2},\"data\":{\"jobs\":54}}]}"));
        // A further append still splices (the legacy `]` inside entry zero
        // must not confuse the writer).
        append_entry(&p, "fleet", "{\"run\":3}", "{\"jobs\":54}").unwrap();
        let s = std::fs::read_to_string(&p).unwrap();
        assert_eq!(s.matches("\"data\"").count(), 3);
        assert!(s.ends_with("{\"meta\":{\"run\":3},\"data\":{\"jobs\":54}}]}"));
        let _ = std::fs::remove_file(&p);
    }

    #[test]
    fn empty_file_is_treated_as_fresh() {
        let p = scratch("empty");
        std::fs::write(&p, "  \n").unwrap();
        append_entry(&p, "obs", "{}", "{\"x\":1}").unwrap();
        let s = std::fs::read_to_string(&p).unwrap();
        assert!(s.starts_with("{\"schema_version\":1"));
        assert_eq!(s.matches("\"data\"").count(), 1);
        let _ = std::fs::remove_file(&p);
    }
}
