//! Streaming JSONL trace writer: one JSON object per [`TraceEvent`], one
//! event per line, encoded with the harness's own [`ToJson`] values (the
//! build is offline, so no serde).
//!
//! The object shape is flat and stable: every line carries an `"ev"` kind
//! tag (from [`TraceEvent::kind`]) followed by that variant's fields, so
//! `jq 'select(.ev == "emulate")'`-style filtering works without schema
//! knowledge.

use crate::json::ToJson;
use fpvm_core::trace::{TraceEvent, TraceSink};
use std::fs::File;
use std::io::{self, BufWriter, Write};
use std::path::Path;

fn field(out: &mut String, name: &str, v: &impl ToJson) {
    out.push(',');
    name.write_json(out);
    out.push(':');
    v.write_json(out);
}

/// Render one event as a single-line JSON object.
pub fn event_json(ev: &TraceEvent) -> String {
    let mut s = String::from("{\"ev\":");
    ev.kind().write_json(&mut s);
    match *ev {
        TraceEvent::TrapBegin {
            rip,
            icount,
            hardware,
            kernel,
            user,
        } => {
            field(&mut s, "rip", &rip);
            field(&mut s, "icount", &icount);
            field(&mut s, "hardware", &hardware);
            field(&mut s, "kernel", &kernel);
            field(&mut s, "user", &user);
        }
        TraceEvent::Decode { rip, hit, cycles } => {
            field(&mut s, "rip", &rip);
            field(&mut s, "hit", &hit);
            field(&mut s, "cycles", &cycles);
        }
        TraceEvent::Bind { rip, cycles } => {
            field(&mut s, "rip", &rip);
            field(&mut s, "cycles", &cycles);
        }
        TraceEvent::Emulate { rip, lanes, cycles } => {
            field(&mut s, "rip", &rip);
            field(&mut s, "lanes", &lanes);
            field(&mut s, "cycles", &cycles);
        }
        TraceEvent::Commit { rip, next_rip } => {
            field(&mut s, "rip", &rip);
            field(&mut s, "next_rip", &next_rip);
        }
        TraceEvent::CorrectnessTrap {
            rip,
            site,
            demoted,
            dispatch_cycles,
            handler_cycles,
        } => {
            field(&mut s, "rip", &rip);
            field(&mut s, "site", &site);
            field(&mut s, "demoted", &demoted);
            field(&mut s, "dispatch_cycles", &dispatch_cycles);
            field(&mut s, "handler_cycles", &handler_cycles);
        }
        TraceEvent::NanHoleTrap {
            rip,
            demoted,
            dispatch_cycles,
            handler_cycles,
        } => {
            field(&mut s, "rip", &rip);
            field(&mut s, "demoted", &demoted);
            field(&mut s, "dispatch_cycles", &dispatch_cycles);
            field(&mut s, "handler_cycles", &handler_cycles);
        }
        TraceEvent::ExtCall {
            rip,
            f,
            disposition,
            cycles,
        } => {
            field(&mut s, "rip", &rip);
            field(&mut s, "fn", &format!("{f:?}"));
            field(&mut s, "disposition", &disposition.label());
            field(&mut s, "cycles", &cycles);
        }
        TraceEvent::PatchInstalled { rip, site } => {
            field(&mut s, "rip", &rip);
            field(&mut s, "site", &site);
        }
        TraceEvent::PatchCall {
            rip,
            site,
            fast,
            cycles,
        } => {
            field(&mut s, "rip", &rip);
            field(&mut s, "site", &site);
            field(&mut s, "fast", &fast);
            field(&mut s, "cycles", &cycles);
        }
        TraceEvent::GcPass {
            icount,
            before,
            freed,
            alive,
            cycles,
        } => {
            field(&mut s, "icount", &icount);
            field(&mut s, "before", &before);
            field(&mut s, "freed", &freed);
            field(&mut s, "alive", &alive);
            field(&mut s, "cycles", &cycles);
        }
        TraceEvent::RuntimeError { stage, rip, site } => {
            field(&mut s, "stage", &format!("{stage:?}"));
            field(&mut s, "rip", &rip);
            field(&mut s, "site", &site);
        }
    }
    s.push('}');
    s
}

/// A [`TraceSink`] streaming one JSON object per event to a writer.
pub struct JsonlTraceSink<W: Write> {
    // `Option` only so `into_inner` can move the writer out past `Drop`.
    w: Option<W>,
    lines: u64,
}

impl<W: Write> JsonlTraceSink<W> {
    /// Stream events into `w`.
    pub fn new(w: W) -> Self {
        JsonlTraceSink {
            w: Some(w),
            lines: 0,
        }
    }

    /// Lines written so far.
    pub fn lines(&self) -> u64 {
        self.lines
    }

    /// Flush and hand back the writer.
    pub fn into_inner(mut self) -> W {
        let mut w = self.w.take().expect("writer present until into_inner");
        let _ = w.flush();
        w
    }
}

impl JsonlTraceSink<BufWriter<File>> {
    /// Stream events to a file at `path` (truncating), buffered.
    pub fn create(path: impl AsRef<Path>) -> io::Result<Self> {
        Ok(JsonlTraceSink::new(BufWriter::new(File::create(path)?)))
    }
}

impl<W: Write + Send + 'static> TraceSink for JsonlTraceSink<W> {
    fn emit(&mut self, ev: &TraceEvent) {
        // Errors are swallowed: telemetry must never turn a good run into a
        // failed one. The line count lets callers notice a short file.
        let Some(w) = &mut self.w else { return };
        if writeln!(w, "{}", event_json(ev)).is_ok() {
            self.lines += 1;
        }
    }

    fn name(&self) -> &'static str {
        "jsonl"
    }
}

impl<W: Write> Drop for JsonlTraceSink<W> {
    fn drop(&mut self) {
        if let Some(w) = &mut self.w {
            let _ = w.flush();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fpvm_core::Stage;

    #[test]
    fn event_lines_have_the_flat_tagged_shape() {
        let e = TraceEvent::Decode {
            rip: 0x101c,
            hit: false,
            cycles: 45,
        };
        assert_eq!(
            event_json(&e),
            "{\"ev\":\"decode\",\"rip\":4124,\"hit\":false,\"cycles\":45}"
        );
        let e = TraceEvent::RuntimeError {
            stage: Stage::Correctness,
            rip: 0x1000,
            site: None,
        };
        assert_eq!(
            event_json(&e),
            "{\"ev\":\"runtime_error\",\"stage\":\"Correctness\",\"rip\":4096,\"site\":null}"
        );
        let e = TraceEvent::RuntimeError {
            stage: Stage::Patch,
            rip: 0x1000,
            site: Some(7),
        };
        assert!(event_json(&e).ends_with("\"site\":7}"));
    }

    #[test]
    fn sink_streams_one_line_per_event() {
        let mut sink = JsonlTraceSink::new(Vec::new());
        sink.emit(&TraceEvent::Bind {
            rip: 0x1000,
            cycles: 10,
        });
        sink.emit(&TraceEvent::Commit {
            rip: 0x1000,
            next_rip: 0x1004,
        });
        assert_eq!(sink.lines(), 2);
        let buf = sink.into_inner();
        let text = String::from_utf8(buf).unwrap();
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines.len(), 2);
        for line in lines {
            assert!(line.starts_with("{\"ev\":\"") && line.ends_with('}'));
        }
    }
}
