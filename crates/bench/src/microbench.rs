//! A tiny `Instant`-based micro-benchmark harness.
//!
//! The offline build environment has no criterion, so the `benches/`
//! targets (all `harness = false`) drive their scenarios through this
//! module instead: auto-calibrated iteration counts, best-of-three
//! samples, one printed line per scenario.

use std::time::Instant;

pub use std::hint::black_box;

/// Target per-sample duration for calibration.
const SAMPLE_NS: u64 = 20_000_000;

/// Measure the mean latency of `f` and print a `name … ns/iter` line.
///
/// Runs `f` once to calibrate an iteration count targeting ~20 ms per
/// sample, then takes three samples and reports the best (least-noisy)
/// mean, in nanoseconds per iteration.
pub fn bench_ns<T>(name: &str, mut f: impl FnMut() -> T) -> f64 {
    let t = Instant::now();
    black_box(f());
    let once = (t.elapsed().as_nanos() as u64).max(1);
    let iters = (SAMPLE_NS / once).clamp(1, 1_000_000) as u32;
    let mut best = f64::INFINITY;
    for _ in 0..3 {
        let t = Instant::now();
        for _ in 0..iters {
            black_box(f());
        }
        let per = t.elapsed().as_nanos() as f64 / f64::from(iters);
        best = best.min(per);
    }
    println!("{name:<52} {best:>14.1} ns/iter");
    best
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_ns_returns_positive_finite() {
        let ns = bench_ns("selftest/noop_sum", || {
            let mut s = 0u64;
            for i in 0..64u64 {
                s = s.wrapping_add(i);
            }
            s
        });
        assert!(ns.is_finite() && ns > 0.0);
    }
}
