//! # fpvm-bench — the experiment harness
//!
//! One entry point per table/figure in the paper's evaluation (§5) plus the
//! §6 projections; the `reproduce` binary drives them and prints
//! paper-style tables. See DESIGN.md §5 for the experiment index and
//! EXPERIMENTS.md for paper-vs-measured results.

#![forbid(unsafe_code)]

pub mod experiments;
pub mod json;
pub mod loc;
pub mod microbench;
pub mod trace;
pub mod trajectory;

use fpvm_analysis::analyze_and_patch;
use fpvm_arith::ArithSystem;
use fpvm_core::{ExitReason, Fpvm, FpvmConfig, RunReport};
use fpvm_ir::{compile, CompileMode};
use fpvm_machine::{CostModel, Event, Machine, OutputEvent};
use fpvm_workloads::Workload;

/// Result of a native (baseline) run.
pub struct NativeRun {
    /// Cycles under the cost model.
    pub cycles: u64,
    /// Instructions retired.
    pub icount: u64,
    /// FP instructions retired.
    pub fp_icount: u64,
    /// Guest output.
    pub output: Vec<OutputEvent>,
}

/// Run a workload natively under a cost profile.
pub fn run_native(w: &Workload, cost: CostModel) -> NativeRun {
    let c = compile(&w.module, CompileMode::Native);
    let mut m = Machine::new(cost);
    let ev = fpvm_core::run_native(&mut m, &c.program, 20_000_000_000);
    assert_eq!(ev, Event::Halted, "{}: {ev:?}", w.name);
    NativeRun {
        cycles: m.cycles,
        icount: m.icount,
        fp_icount: m.fp_icount,
        output: m.output,
    }
}

/// Run the full hybrid pipeline (compile → analyze+patch → virtualize).
pub fn run_hybrid<A: ArithSystem>(
    w: &Workload,
    arith: A,
    cost: CostModel,
    cfg: FpvmConfig,
) -> (RunReport, Vec<OutputEvent>, fpvm_analysis::AnalysisStats) {
    run_hybrid_with(w, arith, cost, cfg, |_| {})
}

/// [`run_hybrid`] with a setup hook that sees the runtime before it runs —
/// install a trace sink, restrict patch sites, etc.
pub fn run_hybrid_with<A: ArithSystem>(
    w: &Workload,
    arith: A,
    cost: CostModel,
    cfg: FpvmConfig,
    setup: impl FnOnce(&mut Fpvm<A>),
) -> (RunReport, Vec<OutputEvent>, fpvm_analysis::AnalysisStats) {
    let (report, output, stats, _) = run_hybrid_owned(w, arith, cost, cfg, setup);
    (report, output, stats)
}

/// [`run_hybrid_with`] that also hands back the runtime itself, so callers
/// can tear down installed sinks ([`Fpvm::take_trace_sink`] + `downcast`)
/// or inspect patch state after the run. Sinks are owned by the engine —
/// this is the only way to read them back.
pub fn run_hybrid_owned<A: ArithSystem>(
    w: &Workload,
    arith: A,
    cost: CostModel,
    cfg: FpvmConfig,
    setup: impl FnOnce(&mut Fpvm<A>),
) -> (
    RunReport,
    Vec<OutputEvent>,
    fpvm_analysis::AnalysisStats,
    Fpvm<A>,
) {
    let c = compile(&w.module, CompileMode::Native);
    let patched = analyze_and_patch(&c.program);
    let mut m = Machine::new(cost);
    m.load_program(&patched.program);
    let mut rt = Fpvm::new(arith, cfg);
    rt.set_side_table(patched.side_table);
    setup(&mut rt);
    let report = rt.run(&mut m);
    assert_eq!(report.exit, ExitReason::Halted, "{}", w.name);
    (report, m.output, patched.analysis.stats, rt)
}

/// Format a count with thousands separators.
pub fn commas(n: u64) -> String {
    let s = n.to_string();
    let mut out = String::new();
    for (i, ch) in s.chars().enumerate() {
        if i > 0 && (s.len() - i).is_multiple_of(3) {
            out.push(',');
        }
        out.push(ch);
    }
    out
}

/// Format a slowdown like the paper's Fig. 12 ("1,808x").
pub fn slowdown_str(x: f64) -> String {
    format!("{}x", commas(x.round() as u64))
}
