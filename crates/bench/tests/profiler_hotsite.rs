//! Acceptance tests for profiler-guided patch-site selection: the
//! profiler's hot-site ranking must agree with what the trap-and-patch
//! engine actually patches, and the `pguided` experiment must archive a
//! well-formed comparison row.

use fpvm_arith::Vanilla;
use fpvm_bench::experiments;
use fpvm_bench::json::ToJson;
use fpvm_bench::run_hybrid_owned;
use fpvm_core::{FpvmConfig, ProfilerSink};
use fpvm_machine::CostModel;
use fpvm_workloads::{lorenz, Size};

#[test]
fn top_profiled_rip_matches_the_site_the_engine_patches() {
    let w = lorenz::workload(Size::Tiny);
    // Profile a plain trap-and-emulate run to rank sites by cost; the
    // engine owns the sink, so the teardown hands it back for inspection.
    let (_, _, _, mut rt) = run_hybrid_owned(
        &w,
        Vanilla,
        CostModel::r815(),
        FpvmConfig::default(),
        |rt| rt.set_trace_sink(Box::new(ProfilerSink::new())),
    );
    let prof = rt.take_trace_sink().downcast::<ProfilerSink>().unwrap();
    let ranked = prof.hot_sites(1);
    assert!(!ranked.is_empty(), "lorenz traps");
    let (top_rip, top) = &ranked[0];
    assert!(top.traps > 0);
    // Re-run with the heuristic trap-and-patch engine: the profiler's #1
    // site must be among the sites the engine patches.
    let cfg = FpvmConfig {
        trap_and_patch: true,
        ..FpvmConfig::default()
    };
    let (report, _, _, mut rt2) = run_hybrid_owned(&w, Vanilla, CostModel::r815(), cfg, |rt| {
        rt.set_trace_sink(Box::new(ProfilerSink::new()))
    });
    assert!(report.stats.sites_patched > 0);
    let patched_prof = rt2.take_trace_sink().downcast::<ProfilerSink>().unwrap();
    let site = patched_prof
        .site(*top_rip)
        .expect("top profiled site traps again");
    assert!(
        site.patched,
        "engine must patch the profiler's top site {top_rip:#x}"
    );
}

#[test]
fn pguided_experiment_emits_a_comparison_row() {
    let r = experiments::profiler_guided(Size::Tiny);
    assert!(r.top_rip_patched_by_heuristic);
    assert!(r.guided_sites_patched <= r.top_k);
    assert!(r.guided_sites_patched >= 1);
    assert!(r.heuristic_sites_patched >= r.guided_sites_patched);
    // Guided patching must beat plain trap-and-emulate — the top-K sites
    // carry real weight.
    assert!(r.guided_cycles < r.baseline_cycles);
    let j = r.to_json();
    for key in [
        "\"workload\":",
        "\"top_rip\":",
        "\"top_rip_patched_by_heuristic\":true",
        "\"baseline_cycles\":",
        "\"heuristic_cycles\":",
        "\"guided_cycles\":",
        "\"guided_vs_heuristic\":",
    ] {
        assert!(j.contains(key), "missing {key} in {j}");
    }
}
