//! Pins the deterministic half of the Fig. 9 trap-cost breakdown for two
//! reference workloads against constants captured from the pre-refactor
//! monolithic runtime. Every value asserted here is deterministic: trap
//! counters, cost-model-derived cycle components, guest outputs (as an
//! FNV-1a hash), and retired instruction counts. The measured components
//! (emulate/gc wall time) are intentionally excluded.
//!
//! If the staged engine ever drifts from the monolith's accounting, these
//! tests name the exact component that moved.
//!
//! Re-captured after the softfp flag-semantics fixes (spurious INEXACT on
//! `0 * finite` removed): a handful of multiplies per workload no longer
//! raise an unmasked exception, so they retire natively instead of
//! trapping. Guest outputs are bit-identical to the previous capture.

use fpvm_arith::BigFloatCtx;
use fpvm_bench::run_hybrid;
use fpvm_core::{Component, FpvmConfig, Stats};
use fpvm_machine::{CostModel, OutputEvent};
use fpvm_workloads::{fbench, lorenz, Size};

/// FNV-1a over the guest's output events, little-endian per event.
fn fnv(out: &[OutputEvent]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for ev in out {
        let bits = match ev {
            OutputEvent::F64(b) => *b,
            OutputEvent::I64(v) => *v as u64,
        };
        for byte in bits.to_le_bytes() {
            h ^= u64::from(byte);
            h = h.wrapping_mul(0x0000_0100_0000_01b3);
        }
    }
    h
}

/// Deterministic fingerprint of one hybrid run.
#[derive(Debug, PartialEq, Eq)]
struct Baseline {
    fp_traps: u64,
    emulated: u64,
    emulated_lanes: u64,
    decode_hits: u64,
    decode_misses: u64,
    promotions: u64,
    boxes_created: u64,
    demotions: u64,
    hardware: u64,
    kernel: u64,
    user_delivery: u64,
    decode: u64,
    bind: u64,
    outputs: usize,
    output_fnv: u64,
    icount: u64,
}

fn run(w: &fpvm_workloads::Workload) -> (Stats, Baseline) {
    let (report, out, _) = run_hybrid(
        w,
        BigFloatCtx::new(200),
        CostModel::r815(),
        FpvmConfig::default(),
    );
    let s = report.stats.clone();
    let c = &s.cycles;
    let b = Baseline {
        fp_traps: s.fp_traps,
        emulated: s.emulated,
        emulated_lanes: s.emulated_lanes,
        decode_hits: s.decode_hits,
        decode_misses: s.decode_misses,
        promotions: s.promotions,
        boxes_created: s.boxes_created,
        demotions: s.demotions,
        hardware: c.get(Component::Hardware),
        kernel: c.get(Component::Kernel),
        user_delivery: c.get(Component::UserDelivery),
        decode: c.get(Component::Decode),
        bind: c.get(Component::Bind),
        outputs: out.len(),
        output_fnv: fnv(&out),
        icount: report.icount,
    };
    // The default config installs no software traps, so those components
    // stay zero on every baseline workload.
    assert_eq!(c.get(Component::CorrectnessDispatch), 0, "{}", w.name);
    assert_eq!(c.get(Component::Patch), 0, "{}", w.name);
    (s, b)
}

#[test]
fn fbench_tiny_matches_monolith_baseline() {
    let (_, b) = run(&fbench::workload(Size::Tiny));
    assert_eq!(
        b,
        Baseline {
            fp_traps: 698,
            emulated: 698,
            emulated_lanes: 698,
            decode_hits: 523,
            decode_misses: 175,
            promotions: 341,
            boxes_created: 1058,
            demotions: 1,
            hardware: 698_000,
            kernel: 174_500,
            user_delivery: 8_899_500,
            decode: 461_035,
            bind: 223_360,
            outputs: 1,
            output_fnv: 0xe188_03e4_b7af_78bc,
            icount: 2924,
        }
    );
}

#[test]
fn fbench_s_matches_monolith_baseline() {
    let (s, b) = run(&fbench::workload(Size::S));
    assert_eq!(
        b,
        Baseline {
            fp_traps: 10_498,
            emulated: 10_498,
            emulated_lanes: 10_498,
            decode_hits: 10_323,
            decode_misses: 175,
            promotions: 5_101,
            boxes_created: 15_898,
            demotions: 1,
            hardware: 10_498_000,
            kernel: 2_624_500,
            user_delivery: 133_849_500,
            decode: 902_035,
            bind: 3_359_360,
            outputs: 1,
            output_fnv: 0x95c0_f99d_151c_5835,
            icount: 43_356,
        }
    );
    // The Fig. 9 derived metrics recompute from the pinned breakdown.
    assert!((s.decode_hit_rate() - 10_323.0 / 10_498.0).abs() < 1e-12);
    assert!(s.avg_trap_cost() >= ((b.hardware + b.kernel + b.user_delivery) / b.fp_traps) as f64);
}

#[test]
fn lorenz_tiny_matches_monolith_baseline() {
    let (_, b) = run(&lorenz::workload(Size::Tiny));
    assert_eq!(
        b,
        Baseline {
            fp_traps: 2_790,
            emulated: 2_790,
            emulated_lanes: 2_790,
            decode_hits: 2_776,
            decode_misses: 14,
            promotions: 1_204,
            boxes_created: 2_790,
            demotions: 15,
            hardware: 2_790_000,
            kernel: 697_500,
            user_delivery: 35_572_500,
            decode: 159_920,
            bind: 892_800,
            outputs: 15,
            output_fnv: 0x6ade_03e4_6b29_f70d,
            icount: 17_890,
        }
    );
}

#[test]
fn lorenz_s_matches_monolith_baseline() {
    let (_, b) = run(&lorenz::workload(Size::S));
    assert_eq!(
        b,
        Baseline {
            fp_traps: 34_990,
            emulated: 34_990,
            emulated_lanes: 34_990,
            decode_hits: 34_976,
            decode_misses: 14,
            promotions: 15_004,
            boxes_created: 34_990,
            demotions: 78,
            hardware: 34_990_000,
            kernel: 8_747_500,
            user_delivery: 446_122_500,
            decode: 1_608_920,
            bind: 11_196_800,
            outputs: 78,
            output_fnv: 0x5c35_bca2_e1ff_7c26,
            icount: 222_758,
        }
    );
}
