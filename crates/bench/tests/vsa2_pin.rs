//! E19 behavior pins for the second-generation analysis passes.
//!
//! The ablation knobs (`flow_mem`, `ctx_k1`, `liveness`) may only *refine*
//! the sink set — never add sinks, never change guest-visible behavior.
//! These tests pin, at Tiny sizes so they run in CI's test pass:
//!
//! 1. the static refinement invariant on every workload × config (each
//!    config's sinks ⊆ the baseline's sinks),
//! 2. dynamic bit-identity of guest outputs and deterministic accounting
//!    across configs on FP-heavy and sink-heavy reference workloads,
//! 3. soundness through the taint oracle (zero missed) in every config on
//!    the sink-bearing workloads, and the headline Enzo refinement.

use fpvm_analysis::{analyze_and_patch_with, analyze_with, AnalysisConfig, HeapModel};
use fpvm_arith::Vanilla;
use fpvm_core::{ExitReason, Fpvm, FpvmConfig};
use fpvm_ir::{compile, CompileMode};
use fpvm_machine::{CostModel, Machine, OutputEvent};
use fpvm_workloads::{all_workloads, Size};
use std::collections::BTreeSet;

/// The five E19 ablation configs (alloc-site heap everywhere).
fn configs() -> Vec<(&'static str, AnalysisConfig)> {
    let base = AnalysisConfig {
        heap: HeapModel::AllocSite,
        ..Default::default()
    };
    vec![
        ("baseline", base),
        (
            "+flow",
            AnalysisConfig {
                flow_mem: true,
                ..base
            },
        ),
        (
            "+ctx",
            AnalysisConfig {
                ctx_k1: true,
                ..base
            },
        ),
        (
            "+live",
            AnalysisConfig {
                liveness: true,
                ..base
            },
        ),
        (
            "all",
            AnalysisConfig {
                flow_mem: true,
                ctx_k1: true,
                liveness: true,
                ..base
            },
        ),
    ]
}

#[test]
fn every_config_only_refines_the_baseline_sink_set() {
    for w in all_workloads(Size::Tiny) {
        let c = compile(&w.module, CompileMode::Native);
        let cfgs = configs();
        let base = analyze_with(&c.program, &cfgs[0].1);
        let base_addrs: BTreeSet<u64> = base.sinks.iter().map(|s| s.addr).collect();
        for (name, acfg) in &cfgs[1..] {
            let an = analyze_with(&c.program, acfg);
            let addrs: BTreeSet<u64> = an.sinks.iter().map(|s| s.addr).collect();
            assert!(
                addrs.is_subset(&base_addrs),
                "{} under {name}: sinks grew beyond baseline ({:?} ⊄ {:?})",
                w.name,
                addrs.difference(&base_addrs).collect::<Vec<_>>(),
                base_addrs
            );
        }
    }
}

#[test]
fn all_passes_strictly_refine_enzo() {
    let w = all_workloads(Size::Tiny)
        .into_iter()
        .find(|w| w.name == "Enzo")
        .expect("Enzo exists");
    let c = compile(&w.module, CompileMode::Native);
    let cfgs = configs();
    let base = analyze_with(&c.program, &cfgs[0].1);
    let all = analyze_with(&c.program, &cfgs[4].1);
    assert!(
        all.sinks.len() < base.sinks.len(),
        "the combined passes must drop Enzo sinks: {} !< {}",
        all.sinks.len(),
        base.sinks.len()
    );
}

/// One config's dynamic fingerprint on one workload.
#[derive(Debug, PartialEq, Eq)]
struct RunPrint {
    fp_traps: u64,
    emulated: u64,
    output: Vec<OutputEvent>,
    missed: usize,
    skipped: usize,
}

/// Folds `CorrectnessTrap` trace events into per-site observations.
#[derive(Default)]
struct TrapLedger {
    per_rip: std::collections::BTreeMap<u64, fpvm_analysis::SiteDyn>,
}

impl fpvm_core::TraceSink for TrapLedger {
    fn emit(&mut self, ev: &fpvm_core::TraceEvent) {
        if let fpvm_core::TraceEvent::CorrectnessTrap {
            rip,
            demoted,
            dispatch_cycles,
            handler_cycles,
            ..
        } = ev
        {
            self.per_rip
                .entry(*rip)
                .or_default()
                .record(*demoted, dispatch_cycles + handler_cycles);
        }
    }
}

fn run_config(w: &fpvm_workloads::Workload, acfg: &AnalysisConfig) -> RunPrint {
    let c = compile(&w.module, CompileMode::Native);
    let patched = analyze_and_patch_with(&c.program, acfg);
    let mut m = Machine::new(CostModel::r815());
    m.load_program(&patched.program);
    let mut rt = Fpvm::new(
        Vanilla,
        FpvmConfig {
            taint_oracle: true,
            ..FpvmConfig::default()
        },
    );
    rt.set_side_table(patched.side_table.clone());
    rt.set_trace_sink(Box::new(TrapLedger::default()));
    let report = rt.run(&mut m);
    assert_eq!(report.exit, ExitReason::Halted, "{}", w.name);
    let patched_addrs = patched.side_table.iter().map(|e| e.addr).collect();
    let plane = m.taint_plane().expect("oracle enabled");
    let ledger = rt.take_trace_sink().downcast::<TrapLedger>().unwrap();
    let rep = fpvm_analysis::audit(
        &patched.analysis,
        &patched_addrs,
        &ledger.per_rip,
        &plane.sites,
    );
    RunPrint {
        fp_traps: report.stats.fp_traps,
        emulated: report.stats.emulated,
        output: m.output,
        missed: rep.total.missed,
        skipped: patched.skipped.len(),
    }
}

#[test]
fn guest_behavior_is_bit_identical_across_configs() {
    // FP-heavy with zero sinks (Lorenz), sink-heavy heap workload (Enzo),
    // and the other audit-positive workload (miniAero): every ablation
    // config must produce the same outputs and FP-trap accounting, stay
    // sound (zero missed), and leave no sink unpatched.
    for name in ["Lorenz Attractor", "Enzo", "miniAero"] {
        let w = all_workloads(Size::Tiny)
            .into_iter()
            .find(|w| w.name == name)
            .expect("workload exists");
        let mut first: Option<RunPrint> = None;
        for (cname, acfg) in configs() {
            let r = run_config(&w, &acfg);
            assert_eq!(r.missed, 0, "{name} under {cname}: missed sinks");
            assert_eq!(r.skipped, 0, "{name} under {cname}: unpatched sinks");
            match &first {
                None => first = Some(r),
                Some(f) => {
                    assert_eq!(f.output, r.output, "{name} under {cname}: output drift");
                    assert_eq!(
                        (f.fp_traps, f.emulated),
                        (r.fp_traps, r.emulated),
                        "{name} under {cname}: FP-trap accounting drift"
                    );
                }
            }
        }
    }
}
