//! Pins the Fig. 9 cycle accounting across emulate-cache modes: the
//! deterministic view of a run must be bit-identical whether the emulate
//! cache is on (direct-mapped), off (`emulate_cache: false`, bind every
//! trap), or an enabled-but-never-caching passthrough policy — and
//! whether the engine is fresh or recycled. The cache may only move host
//! wall time, never a deterministic stat.

use fpvm_arith::BigFloatCtx;
use fpvm_bench::{run_hybrid, run_hybrid_with};
use fpvm_core::{FpvmConfig, PassthroughEmulateCache, Stats};
use fpvm_machine::{CostModel, OutputEvent};
use fpvm_workloads::{fbench, lorenz, Size, Workload};

fn run_mode(w: &Workload, cfg: FpvmConfig, passthrough: bool) -> (Stats, Vec<OutputEvent>) {
    let (report, out, _) =
        run_hybrid_with(w, BigFloatCtx::new(200), CostModel::r815(), cfg, |vm| {
            if passthrough {
                vm.set_emulate_cache(Box::new(PassthroughEmulateCache));
            }
        });
    (report.stats, out)
}

fn pin_workload(w: &Workload) {
    let (s_on, out_on) = run_mode(w, FpvmConfig::default(), false);
    let (s_off, out_off) = run_mode(
        w,
        FpvmConfig {
            emulate_cache: false,
            ..FpvmConfig::default()
        },
        false,
    );
    let (s_pass, out_pass) = run_mode(w, FpvmConfig::default(), true);

    let base = s_on.deterministic_view();
    assert_eq!(
        s_off.deterministic_view(),
        base,
        "{}: ecache off moved a deterministic stat",
        w.name
    );
    assert_eq!(
        s_pass.deterministic_view(),
        base,
        "{}: passthrough ecache policy moved a deterministic stat",
        w.name
    );
    assert_eq!(out_off, out_on, "{}: guest output diverged (off)", w.name);
    assert_eq!(out_pass, out_on, "{}: guest output diverged (pass)", w.name);
    // The accounting replay on the hit path books hits, not misses: the
    // decode counters are identical in all three modes.
    assert_eq!(s_off.decode_hits, s_on.decode_hits, "{}", w.name);
    assert_eq!(s_off.decode_misses, s_on.decode_misses, "{}", w.name);
}

#[test]
fn fig9_pinned_across_emulate_cache_modes() {
    pin_workload(&fbench::workload(Size::Tiny));
    pin_workload(&lorenz::workload(Size::Tiny));
}

/// The same pin under trap-and-patch: patched sites interact with the
/// emulate cache (install_patch invalidates the entry), so the accounting
/// must stay identical there too.
#[test]
fn fig9_pinned_across_emulate_cache_modes_with_patching() {
    let w = lorenz::workload(Size::Tiny);
    let tp = FpvmConfig {
        trap_and_patch: true,
        ..FpvmConfig::default()
    };
    let (on, out_on, _) = {
        let (r, o, a) = run_hybrid(&w, BigFloatCtx::new(200), CostModel::r815(), tp);
        (r.stats, o, a)
    };
    let (off, out_off, _) = run_hybrid(
        &w,
        BigFloatCtx::new(200),
        CostModel::r815(),
        FpvmConfig {
            emulate_cache: false,
            ..tp
        },
    );
    assert_eq!(off.stats.deterministic_view(), on.deterministic_view());
    assert_eq!(out_off, out_on);
    assert!(on.sites_patched > 0, "patching must actually happen");
}
