//! The dynamic taint oracle must be a pure observer: enabling
//! `FpvmConfig::taint_oracle` may not perturb any deterministic statistic,
//! guest-visible output, or the instruction/cycle accounting Fig. 9 is
//! built from. These tests pin that, plus the workload-level value of the
//! alloc-site heap model the audit measures.

use fpvm_analysis::{analyze_and_patch_with, AnalysisConfig, HeapModel};
use fpvm_arith::Vanilla;
use fpvm_core::{ExitReason, Fpvm, FpvmConfig};
use fpvm_ir::{compile, CompileMode};
use fpvm_machine::{CostModel, Machine};
use fpvm_workloads::{all_workloads, Size};

#[test]
fn fig9_accounting_identical_with_taint_oracle_on_and_off() {
    for w in all_workloads(Size::Tiny) {
        let off = fpvm_bench::run_hybrid(&w, Vanilla, CostModel::r815(), FpvmConfig::default());
        let on = fpvm_bench::run_hybrid(
            &w,
            Vanilla,
            CostModel::r815(),
            FpvmConfig {
                taint_oracle: true,
                ..FpvmConfig::default()
            },
        );
        let (r_off, out_off, _) = off;
        let (r_on, out_on, _) = on;
        assert_eq!(
            r_on.stats.deterministic_view(),
            r_off.stats.deterministic_view(),
            "{}: stats diverge under the taint oracle",
            w.name
        );
        assert_eq!(r_on.icount, r_off.icount, "{}", w.name);
        assert_eq!(r_on.fp_icount, r_off.fp_icount, "{}", w.name);
        assert_eq!(out_on, out_off, "{}: guest output", w.name);
    }
}

/// Folds `CorrectnessTrap` trace events into per-site observations.
#[derive(Default)]
struct TrapLedger {
    per_rip: std::collections::BTreeMap<u64, fpvm_analysis::SiteDyn>,
}

impl fpvm_core::TraceSink for TrapLedger {
    fn emit(&mut self, ev: &fpvm_core::TraceEvent) {
        if let fpvm_core::TraceEvent::CorrectnessTrap {
            rip,
            demoted,
            dispatch_cycles,
            handler_cycles,
            ..
        } = ev
        {
            self.per_rip
                .entry(*rip)
                .or_default()
                .record(*demoted, dispatch_cycles + handler_cycles);
        }
    }
}

/// Run one workload under the oracle with the given heap model and return
/// the audit report.
fn audit_workload(name: &str, heap: HeapModel) -> fpvm_analysis::AuditReport {
    let w = all_workloads(Size::Tiny)
        .into_iter()
        .find(|w| w.name == name)
        .expect("workload exists");
    let c = compile(&w.module, CompileMode::Native);
    let patched = analyze_and_patch_with(
        &c.program,
        &AnalysisConfig {
            heap,
            ..Default::default()
        },
    );
    let mut m = Machine::new(CostModel::r815());
    m.load_program(&patched.program);
    let mut rt = Fpvm::new(
        Vanilla,
        FpvmConfig {
            taint_oracle: true,
            ..FpvmConfig::default()
        },
    );
    rt.set_side_table(patched.side_table.clone());
    rt.set_trace_sink(Box::new(TrapLedger::default()));
    let report = rt.run(&mut m);
    assert_eq!(report.exit, ExitReason::Halted);
    let patched_addrs = patched.side_table.iter().map(|e| e.addr).collect();
    let plane = m.taint_plane().expect("oracle enabled");
    let ledger = rt.take_trace_sink().downcast::<TrapLedger>().unwrap();
    fpvm_analysis::audit(
        &patched.analysis,
        &patched_addrs,
        &ledger.per_rip,
        &plane.sites,
    )
}

#[test]
fn alloc_site_model_reduces_enzo_spurious_sinks_without_missed() {
    let one = audit_workload("Enzo", HeapModel::OneCell);
    let site = audit_workload("Enzo", HeapModel::AllocSite);
    assert!(one.is_sound(), "one-cell must have zero missed sinks");
    assert!(site.is_sound(), "alloc-site must have zero missed sinks");
    assert!(
        site.total.spurious < one.total.spurious,
        "alloc-site must prove the integer-only order table safe: {} !< {}",
        site.total.spurious,
        one.total.spurious
    );
    assert!(site.total.confirmed >= one.total.confirmed);
}
