//! E16 plumbing tests: the heartbeat JSONL encoding, the archived
//! `ObsResult` shape, and the trajectory writer handling a real record.

use fpvm_bench::experiments::{ObsResult, ObsStageRow};
use fpvm_bench::json::ToJson;
use fpvm_bench::trajectory;
use fpvm_fleet::{run_fleet_observed, smoke_jobs, ObsOptions};

#[test]
fn heartbeat_series_encodes_one_json_object_per_sample() {
    let jobs = smoke_jobs(2);
    let obs = run_fleet_observed(&jobs, 2, ObsOptions::default());
    assert!(!obs.samples.is_empty());
    for s in &obs.samples {
        let line = s.to_json();
        assert!(line.starts_with("{\"t_ns\":"), "{line}");
        for key in [
            "\"jobs_completed\":",
            "\"queue_depth\":",
            "\"busy_workers\":",
            "\"guests_per_sec\":",
            "\"sealed\":",
        ] {
            assert!(line.contains(key), "{line} missing {key}");
        }
        assert!(!line.contains('\n'), "JSONL lines must be single-line");
    }
    let last = obs.samples.last().unwrap();
    assert!(last.to_json().ends_with("\"sealed\":true}"));
}

fn sample_result() -> ObsResult {
    ObsResult {
        jobs: 10,
        workers: 2,
        host_parallelism: 2,
        sample_shift: 5,
        fp_traps: 1234,
        wall_on_ms: 10.5,
        wall_off_ms: 10.25,
        overhead_pct: 2.44,
        overhead_budget_pct: 3.0,
        overhead_within_budget: true,
        ns_per_trap_p50: 511,
        ns_per_trap_p99: 4095,
        heartbeats: 3,
        stragglers: 0,
        deterministic: true,
        fig9_pinned: true,
        stages: vec![ObsStageRow {
            stage: "frame".to_string(),
            samples: 39,
            p50_ns: 511,
            p95_ns: 2047,
            p99_ns: 4095,
            max_ns: 5000,
        }],
    }
}

#[test]
fn obs_result_json_carries_the_gates_and_stage_rows() {
    let j = sample_result().to_json();
    for key in [
        "\"overhead_pct\":2.44",
        "\"overhead_within_budget\":true",
        "\"deterministic\":true",
        "\"fig9_pinned\":true",
        "\"ns_per_trap_p50\":511",
        "\"stages\":[{\"stage\":\"frame\",\"samples\":39",
    ] {
        assert!(j.contains(key), "{j} missing {key}");
    }
}

#[test]
fn bench_obs_trajectory_accumulates_runs() {
    let p = std::env::temp_dir().join(format!("fpvm_bench_obs_{}.json", std::process::id()));
    let _ = std::fs::remove_file(&p);
    let r = sample_result();
    trajectory::append_entry(&p, "obs", &trajectory::run_meta(true), &r.to_json()).unwrap();
    trajectory::append_entry(&p, "obs", &trajectory::run_meta(true), &r.to_json()).unwrap();
    let s = std::fs::read_to_string(&p).unwrap();
    assert!(s.starts_with("{\"schema_version\":1,\"experiment\":\"obs\""));
    assert_eq!(s.matches("\"fig9_pinned\":true").count(), 2);
    assert_eq!(s.matches("\"smoke\":true").count(), 2);
    let _ = std::fs::remove_file(&p);
}
